// Interaction analysis: beyond per-feature feedback.
//
// The paper's feedback is per-feature (first-order ALE variance) and its
// §5 lists "identifying confounding variables" as future work. This
// example shows the building blocks this library provides toward that:
// permutation importance (how much the model relies on each feature),
// second-order ALE surfaces (how two features interact), and the
// committee's *interaction disagreement* — the 2-D analogue of the
// paper's signal.
//
//	go run ./examples/interactions
package main

import (
	"fmt"
	"log"

	"github.com/netml/alefb/internal/automl"
	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/interpret"
	"github.com/netml/alefb/internal/plot"
	"github.com/netml/alefb/internal/rng"
)

func main() {
	// A problem with a planted interaction: congestion collapse happens
	// when BOTH utilization and burstiness are high; either one alone is
	// harmless. A third feature is pure noise.
	schema := &data.Schema{
		Features: []data.Feature{
			{Name: "utilization", Min: 0, Max: 1},
			{Name: "burstiness", Min: 0, Max: 1},
			{Name: "noise", Min: 0, Max: 1},
		},
		Classes: []string{"healthy", "collapse"},
	}
	r := rng.New(5)
	train := data.New(schema)
	for i := 0; i < 1500; i++ {
		u, b, n := r.Float64(), r.Float64(), r.Float64()
		y := 0
		if u > 0.6 && b > 0.6 {
			y = 1
		}
		if r.Bool(0.05) {
			y = 1 - y // label noise
		}
		train.Append([]float64{u, b, n}, y)
	}

	ens, err := automl.Run(train, automl.Config{MaxCandidates: 10, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %s (val %.3f)\n\n", ens.Name(), ens.ValScore)

	// 1. Which features does the model rely on?
	imp, err := interpret.PermutationImportance(ens, train, 3, rng.New(7))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("permutation importance (accuracy drop when shuffled):")
	for j, v := range imp {
		fmt.Printf("  %-12s %.4f\n", schema.Features[j].Name, v)
	}
	fmt.Println()

	// 2. Do utilization and burstiness interact?
	surface, err := interpret.ALE2D(ens, train, 0, 1, interpret.Options{Bins: 8, Class: 1})
	if err != nil {
		log.Fatal(err)
	}
	hm := &plot.Heatmap{
		Title:  "second-order ALE: utilization x burstiness (class 'collapse')",
		XLabel: "utilization",
		YLabel: "burstiness",
		X:      surface.GridX,
		Y:      surface.GridY,
		Values: surface.Values,
	}
	fmt.Println(hm.RenderASCII())

	// 3. Compare against a non-interacting pair.
	flat, err := interpret.ALE2D(ens, train, 0, 2, interpret.Options{Bins: 8, Class: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("max |interaction|: utilization x burstiness = %.4f, utilization x noise = %.4f\n",
		surface.MaxAbs(), flat.MaxAbs())

	// 4. Committee-level interaction disagreement — the 2-D analogue of
	// the paper's ALE-variance feedback signal.
	mean, std, err := interpret.InteractionStrength(ens.Models(), train, 0, 1, interpret.Options{Bins: 8, Class: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("committee interaction strength: mean %.4f, cross-model std %.4f\n", mean, std)
	fmt.Println("\nhigh std here would tell the operator the committee cannot agree on")
	fmt.Println("HOW the two features combine — more data in the joint region needed.")
}
