// DDoS detection from firewall logs — the paper's running example
// (§2.1 example 1, Figure 2).
//
// An operator trains AutoML on firewall sessions to predict the action
// (allow/deny/drop/reset-both). Plain active learning would hand back an
// opaque list of rows to label; the ALE-variance feedback instead returns
// *per-feature* disagreement the operator can read with domain knowledge:
// the source-port signal is kernel-assigned noise they can discard, while
// the destination-port spike around 443 — the DDoS target — is worth
// collecting more data for. Here the extra data comes from a fixed
// candidate pool (the paper's pool-restricted setting).
//
//	go run ./examples/ddos
package main

import (
	"fmt"
	"log"

	"github.com/netml/alefb"
	"github.com/netml/alefb/internal/firewall"
	"github.com/netml/alefb/internal/metrics"
	"github.com/netml/alefb/internal/plot"
	"github.com/netml/alefb/internal/rng"
)

func main() {
	r := rng.New(7)
	full := firewall.Generate(3000, r)
	train, rest := full.StratifiedSplit(0.4, r)
	test, pool := rest.StratifiedSplit(0.33, r)
	fmt.Printf("firewall log: %d train / %d test / %d candidate pool\n\n",
		train.Len(), test.Len(), pool.Len())

	ens, err := alefb.Train(train, alefb.AutoMLConfig{MaxCandidates: 12, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	accBefore := metrics.BalancedAccuracy(4, test.Y, ens.Predict(test.X))
	fmt.Printf("AutoML without feedback: balanced accuracy %.3f\n\n", accBefore)

	srcIdx, dstIdx := firewall.InterestingFeatures()
	fb, err := alefb.WithinFeedback(ens, train, alefb.FeedbackConfig{
		Bins:     24,
		Features: []int{srcIdx, dstIdx},
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, fa := range fb.Analyses {
		p := &plot.Plot{
			Title:  fmt.Sprintf("ALE for %s (mean +/- committee std)", fa.Name),
			XLabel: fa.Name,
			YLabel: "ALE",
			Series: []plot.Series{{X: fa.Grid, Y: fa.Mean, YErr: fa.Std}},
			HLines: []float64{fb.Threshold},
		}
		fmt.Println(p.RenderASCII(72, 12))
	}
	fmt.Println(fb.Explain())
	fmt.Println("operator judgement: source ports are assigned by host kernels —")
	fmt.Println("ignore that bound; focus data collection on the destination-port")
	fmt.Println("region around 443 (the HTTPS DDoS target).")
	fmt.Println()

	// Keep only dst-port regions (the operator's call), then pull matching
	// rows from the candidate pool.
	fbDst, err := alefb.WithinFeedback(ens, train, alefb.FeedbackConfig{
		Bins:     24,
		Features: []int{dstIdx},
	})
	if err != nil {
		log.Fatal(err)
	}
	idx := fbDst.FilterPool(pool)
	if len(idx) > 200 {
		idx = idx[:200]
	}
	add := pool.Subset(idx)
	fmt.Printf("pulled %d pool rows from the flagged destination-port regions\n", add.Len())

	augmented, err := train.Concat(add)
	if err != nil {
		log.Fatal(err)
	}
	after, err := alefb.Train(augmented, alefb.AutoMLConfig{MaxCandidates: 12, Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	accAfter := metrics.BalancedAccuracy(4, test.Y, after.Predict(test.X))
	fmt.Printf("AutoML with targeted pool feedback: balanced accuracy %.3f (was %.3f)\n", accAfter, accBefore)
}
