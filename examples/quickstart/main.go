// Quickstart: the complete feedback loop in ~60 lines.
//
// We build a toy problem whose labels are deterministic except inside a
// band of one feature, train AutoML, ask the feedback algorithm where the
// ensemble's models disagree, sample new points from the flagged regions,
// label them with an oracle, retrain, and compare accuracy.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"github.com/netml/alefb"
	"github.com/netml/alefb/internal/metrics"
	"github.com/netml/alefb/internal/rng"
)

// oracle is the ground truth: class 1 iff load > 0.5.
func oracle(x []float64) int {
	if x[0] > 0.5 {
		return 1
	}
	return 0
}

// noisyDataset mimics a real measurement campaign: labels are clean far
// from the decision boundary and noisy near it (load in 0.4..0.6), and
// the campaign under-sampled exactly that band.
func noisyDataset(n int, seed uint64) *alefb.Dataset {
	schema := &alefb.Schema{
		Features: []alefb.Feature{
			{Name: "load", Min: 0, Max: 1},
			{Name: "jitter", Min: 0, Max: 1},
		},
		Classes: []string{"healthy", "overloaded"},
	}
	r := rng.New(seed)
	d := alefb.NewDataset(schema)
	for d.Len() < n {
		load, jitter := r.Float64(), r.Float64()
		y := oracle([]float64{load, jitter})
		if load > 0.4 && load < 0.6 {
			if r.Bool(0.7) {
				continue // the band is under-sampled...
			}
			y = r.Intn(2) // ...and noisy
		}
		d.Append([]float64{load, jitter}, y)
	}
	return d
}

func main() {
	train := noisyDataset(400, 1)
	test := alefb.NewDataset(train.Schema)
	r := rng.New(2)
	for i := 0; i < 1000; i++ {
		x := []float64{r.Float64(), r.Float64()}
		test.Append(x, oracle(x))
	}

	res, err := alefb.Improve(
		train,
		alefb.AutoMLConfig{MaxCandidates: 12, Seed: 7},
		alefb.FeedbackConfig{Bins: 24, Classes: []int{1}},
		80, // points the operator is willing to label
		alefb.OracleFunc(oracle),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println(res.Feedback.Explain())

	before := metrics.BalancedAccuracy(2, test.Y, res.Before.Predict(test.X))
	after := metrics.BalancedAccuracy(2, test.Y, res.After.Predict(test.X))
	fmt.Printf("balanced accuracy before feedback: %.3f\n", before)
	fmt.Printf("balanced accuracy after adding %d suggested points: %.3f\n", res.Added.Len(), after)
}
