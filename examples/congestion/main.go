// Congestion-control protocol selection — the paper's running example
// (§2.1 example 2, Figure 1).
//
// A developer wants a model that predicts whether the SCReAM protocol
// will deliver the lowest end-to-end latency under given network
// conditions. Training data comes from the packet-level emulator (the
// Pantheon stand-in). When AutoML disappoints, the ALE-variance feedback
// points at the link-rate ranges where the ensemble's models disagree —
// and because the oracle is an emulator, we can collect exactly the data
// it asks for and retrain.
//
//	go run ./examples/congestion
package main

import (
	"fmt"
	"log"

	"github.com/netml/alefb"
	"github.com/netml/alefb/internal/metrics"
	"github.com/netml/alefb/internal/plot"
	"github.com/netml/alefb/internal/rng"
	"github.com/netml/alefb/internal/screamset"
)

func main() {
	gen := screamset.NewGenerator(42)
	r := rng.New(42)

	fmt.Println("collecting training data from the emulator (this runs 5 protocols per point)...")
	train := gen.GenerateProduction(300, r.Split())
	test := gen.GenerateProduction(400, r.Split())
	counts := train.ClassCounts()
	fmt.Printf("training set: %d points (%d scream-wins / %d other)\n\n",
		train.Len(), counts[screamset.LabelScream], counts[screamset.LabelOther])

	automlCfg := alefb.AutoMLConfig{MaxCandidates: 12, Seed: 9}
	fbCfg := alefb.FeedbackConfig{Bins: 24, Classes: []int{screamset.LabelScream}}

	before, err := alefb.Train(train, automlCfg)
	if err != nil {
		log.Fatal(err)
	}
	accBefore := metrics.BalancedAccuracy(2, test.Y, before.Predict(test.X))
	fmt.Printf("AutoML without feedback: balanced accuracy %.3f\n\n", accBefore)

	fb, err := alefb.WithinFeedback(before, train, fbCfg)
	if err != nil {
		log.Fatal(err)
	}

	// Figure-1-style plot: mean ALE for config.link_rate with error bars.
	for _, fa := range fb.Analyses {
		if fa.Name != "config.link_rate" {
			continue
		}
		p := &plot.Plot{
			Title:  "ALE for config.link_rate (mean +/- committee std)",
			XLabel: "config.link_rate (Mbps)",
			YLabel: "ALE",
			Series: []plot.Series{{X: fa.Grid, Y: fa.Mean, YErr: fa.Std}},
			HLines: []float64{fb.Threshold},
		}
		fmt.Println(p.RenderASCII(72, 14))
	}
	fmt.Println(fb.Explain())

	// Collect what the feedback asks for: sample the flagged subspaces and
	// label each point by emulation.
	suggestions := alefb.Sample(fb, 80, 1001)
	if len(suggestions) == 0 {
		fmt.Println("the committee agrees everywhere — nothing to collect")
		return
	}
	fmt.Printf("collecting %d suggested conditions from the emulator...\n", len(suggestions))
	augmented := train.Clone()
	for _, x := range suggestions {
		augmented.Append(x, gen.Label(x))
	}

	retrainCfg := automlCfg
	retrainCfg.Seed++
	after, err := alefb.Train(augmented, retrainCfg)
	if err != nil {
		log.Fatal(err)
	}
	accAfter := metrics.BalancedAccuracy(2, test.Y, after.Predict(test.X))
	fmt.Printf("AutoML with ALE feedback:  balanced accuracy %.3f (was %.3f)\n", accAfter, accBefore)
}
