// Emulator tour: using the packet-level network emulator directly.
//
// This example skips the ML entirely and shows the substrate the
// Scream-vs-rest dataset is generated from: a droptail bottleneck shared
// by N flows, five congestion-control protocols, and the throughput /
// latency trade-offs between them across three canonical regimes.
//
//	go run ./examples/emulator
package main

import (
	"fmt"
	"log"

	"github.com/netml/alefb/internal/netsim"
	"github.com/netml/alefb/internal/netsim/cc"
)

func main() {
	scenarios := []struct {
		name string
		link netsim.LinkConfig
	}{
		{
			name: "bufferbloat: 40 Mbps, 40 ms, deep buffer",
			link: netsim.LinkConfig{RateMbps: 40, DelayMs: 40, QueuePackets: 500},
		},
		{
			name: "shallow buffer: 40 Mbps, 40 ms, 40-packet queue",
			link: netsim.LinkConfig{RateMbps: 40, DelayMs: 40, QueuePackets: 40},
		},
		{
			name: "lossy path: 20 Mbps, 30 ms, 2% random loss",
			link: netsim.LinkConfig{RateMbps: 20, DelayMs: 30, QueuePackets: 200, LossRate: 0.02},
		},
	}
	registry := cc.Registry(1500)
	for _, sc := range scenarios {
		fmt.Println(sc.name)
		fmt.Printf("  %-8s %12s %14s %12s %10s\n", "proto", "goodput", "mean delay", "p95 delay", "loss")
		for _, name := range cc.Names() {
			res, err := netsim.Run(netsim.Config{
				Link:     sc.link,
				Flows:    2,
				Protocol: registry[name],
				Duration: 4,
				Seed:     1,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-8s %9.2f Mb/s %11.1f ms %9.1f ms %9.1f%%\n",
				name, res.TotalThroughputMbps, res.MeanOWDMs, res.P95OWDMs, res.LossRate*100)
		}
		fmt.Println()
	}
	fmt.Println("note how scream/vegas hold delay near the propagation floor in deep")
	fmt.Println("buffers while cubic/reno/bbr fill them — the structure the dataset's")
	fmt.Println("labels (and the paper's Figure 1) are built on.")
}
