// Package alefb is an interpretable feedback layer for AutoML, built for
// network operators who are not ML experts. It reproduces the system from
// "Interpretable Feedback for AutoML and a Proposal for Domain-customized
// AutoML for Networking" (HotNets 2021).
//
// The workflow it supports:
//
//  1. Train: run the built-in AutoML engine on a labelled dataset. Like
//     AutoSklearn/TPOT it returns an *ensemble* of diverse models.
//  2. Feedback: when accuracy disappoints, compute where the ensemble's
//     models *disagree* about each feature — measured as the standard
//     deviation of their ALE (accumulated local effects) curves — and get
//     back (a) human-readable explanations, (b) the feature subspaces
//     ∪ᵢ Aᵢx ≤ bᵢ where disagreement exceeds a threshold, and (c) fresh
//     sample suggestions drawn from those subspaces.
//  3. Retrain: label the suggestions (via an oracle such as an emulator,
//     or by filtering an existing unlabeled pool) and train again.
//
// Two committee constructions are provided: Within feedback uses the
// models inside one AutoML ensemble; Cross feedback runs AutoML several
// times and treats each run's ensemble as one committee member — more
// robust, proportionally more expensive.
//
// The subpackages under internal/ implement everything from scratch on
// the standard library: the model zoo and AutoML engine, ALE/PDP
// interpretation, active-learning baselines, a packet-level congestion-
// control emulator standing in for Pantheon, a synthetic firewall-log
// generator standing in for the UCI Internet Firewall dataset, and the
// harness reproducing every table and figure of the paper (see DESIGN.md
// and EXPERIMENTS.md).
package alefb

import (
	"context"
	"io"

	"github.com/netml/alefb/internal/automl"
	"github.com/netml/alefb/internal/core"
	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/ml"
	"github.com/netml/alefb/internal/rng"
)

// Re-exported core types. The aliases make the public API self-contained:
// library users never import internal packages.
type (
	// Dataset is a dense labelled dataset with a feature schema.
	Dataset = data.Dataset
	// Schema describes features (with their domains) and class names.
	Schema = data.Schema
	// Feature is one input variable and its valid range.
	Feature = data.Feature
	// Classifier is a trainable probabilistic classifier.
	Classifier = ml.Classifier
	// Ensemble is a trained AutoML result (weighted model ensemble).
	Ensemble = automl.Ensemble
	// AutoMLConfig is the AutoML search budget and seed.
	AutoMLConfig = automl.Config
	// TrainEngine selects the tree-growing engine for tree-family
	// candidates (EnginePresort or EngineHist); see
	// AutoMLConfig.TrainEngine.
	TrainEngine = ml.TrainEngine
	// Feedback is a computed feedback result: per-feature disagreement
	// curves, flagged regions, sampling, and explanations.
	Feedback = core.Feedback
	// FeedbackConfig controls the feedback computation (grid resolution,
	// threshold, classes).
	FeedbackConfig = core.Config
	// FeatureAnalysis is one feature's disagreement analysis.
	FeatureAnalysis = core.FeatureAnalysis
	// Interval is a flagged range of one feature.
	Interval = core.Interval
	// Box is one flagged subspace as a half-space system Ax <= b.
	Box = core.Box
	// Oracle labels suggested data points.
	Oracle = core.Oracle
	// OracleFunc adapts a function to the Oracle interface.
	OracleFunc = core.OracleFunc
)

// Iterative-campaign types (multi-round suggest-label-retrain).
type (
	// LoopConfig drives RunLoop.
	LoopConfig = core.LoopConfig
	// LoopResult is a feedback campaign's outcome.
	LoopResult = core.LoopResult
	// LoopRound records one cycle of a campaign.
	LoopRound = core.LoopRound
)

// Free-feature sampling policies for Feedback.Sample.
const (
	// FreeUniform samples non-flagged coordinates uniformly (default).
	FreeUniform = core.FreeUniform
	// FreeEmpirical samples them from the training data's rows.
	FreeEmpirical = core.FreeEmpirical
)

// Tree-family training engines for AutoMLConfig.TrainEngine.
const (
	// EnginePresort grows trees over presorted value runs (the exact
	// default).
	EnginePresort = ml.EnginePresort
	// EngineHist grows trees over binned feature histograms with
	// parent−sibling subtraction — faster on larger datasets, exact on
	// low-cardinality columns and a close statistical match elsewhere.
	EngineHist = ml.EngineHist
)

// ParseTrainEngine parses a -trainengine style flag value ("presort" or
// "hist") into a TrainEngine.
func ParseTrainEngine(s string) (TrainEngine, error) { return ml.ParseTrainEngine(s) }

// RunLoop runs an iterative feedback campaign: up to LoopConfig.Rounds
// cycles of train -> Within feedback -> sample -> oracle-label -> retrain,
// with optional early stopping once the committee stops disagreeing.
func RunLoop(train *Dataset, cfg LoopConfig) (*LoopResult, error) {
	return core.RunLoop(train, cfg)
}

// NewDataset returns an empty dataset over the schema.
func NewDataset(schema *Schema) *Dataset { return data.New(schema) }

// ReadCSV loads a dataset from CSV (feature columns then a label column).
var ReadCSV = data.ReadCSV

// SaveEnsemble writes a compact JSON description of a trained ensemble:
// the selected pipelines, their weights and a refit seed. Reconstruction
// needs the original training data (models are refit deterministically),
// which keeps the format tiny and version-stable.
func SaveEnsemble(w io.Writer, ens *Ensemble, refitSeed uint64) error {
	return ens.Save(w, refitSeed)
}

// LoadEnsemble reconstructs an ensemble saved with SaveEnsemble by
// refitting its members on train.
func LoadEnsemble(r io.Reader, train *Dataset) (*Ensemble, error) {
	return automl.Load(r, train)
}

// Train runs one AutoML search and returns the ensemble. The zero config
// uses sensible defaults; set AutoMLConfig.Seed for reproducibility.
func Train(train *Dataset, cfg AutoMLConfig) (*Ensemble, error) {
	return automl.Run(train, cfg)
}

// TrainCtx is Train under a hard deadline or cancellation: when ctx
// expires the search stops at the next candidate boundary and returns
// ctx.Err(). Use AutoMLConfig.TimeBudget instead for a soft budget that
// completes with whatever was evaluated in time.
func TrainCtx(ctx context.Context, train *Dataset, cfg AutoMLConfig) (*Ensemble, error) {
	return automl.RunCtx(ctx, train, cfg)
}

// ErrCommitteeTooSmall is returned (wrapped) by training when candidate
// failures leave fewer ensemble members than AutoMLConfig.MinCommittee.
var ErrCommitteeTooSmall = automl.ErrCommitteeTooSmall

// WithinFeedback computes feedback from the committee of models inside a
// single trained ensemble (the paper's Within-ALE algorithm).
func WithinFeedback(ens *Ensemble, train *Dataset, cfg FeedbackConfig) (*Feedback, error) {
	return core.Compute(core.WithinCommittee(ens), train, cfg)
}

// CrossFeedback runs AutoML `runs` times (each run's ensemble becomes one
// committee member — the paper's Cross-ALE variant, which it evaluates
// with 10 runs) and computes feedback from that committee. It returns the
// feedback and the ensembles so the caller can keep the best one.
func CrossFeedback(train *Dataset, automlCfg AutoMLConfig, runs int, cfg FeedbackConfig) (*Feedback, []*Ensemble, error) {
	committee, ensembles, err := core.CrossCommittee(train, automlCfg, runs)
	if err != nil {
		return nil, nil, err
	}
	fb, err := core.Compute(committee, train, cfg)
	if err != nil {
		return nil, nil, err
	}
	return fb, ensembles, nil
}

// Sample draws n suggested data points from the feedback's flagged
// regions, deterministically for a given seed.
func Sample(fb *Feedback, n int, seed uint64) [][]float64 {
	return fb.Sample(n, rng.New(seed))
}

// ImproveResult reports one feedback-retrain cycle.
type ImproveResult struct {
	// Before is the ensemble trained on the original data.
	Before *Ensemble
	// After is the ensemble retrained with the suggested points added.
	After *Ensemble
	// Feedback is the analysis that produced the suggestions.
	Feedback *Feedback
	// Added holds the suggested, oracle-labelled points.
	Added *Dataset
}

// Improve runs one complete cycle of the paper's loop: train, compute
// Within feedback, sample n points from the flagged regions, label them
// with the oracle, and retrain on the augmented data. If the committee
// agrees everywhere, After == Before and Added is empty.
func Improve(train *Dataset, automlCfg AutoMLConfig, fbCfg FeedbackConfig, n int, oracle Oracle) (*ImproveResult, error) {
	before, err := automl.Run(train, automlCfg)
	if err != nil {
		return nil, err
	}
	r := rng.New(automlCfg.Seed ^ 0x5eedf00d)
	added, fb, err := core.Suggest(core.WithinCommittee(before), train, fbCfg, n, oracle, r)
	if err != nil {
		return nil, err
	}
	res := &ImproveResult{Before: before, Feedback: fb, Added: added, After: before}
	if added.Len() == 0 {
		return res, nil
	}
	retrainCfg := automlCfg
	retrainCfg.Seed = automlCfg.Seed + 1
	augmented, err := train.Concat(added)
	if err != nil {
		return nil, err
	}
	after, err := automl.Run(augmented, retrainCfg)
	if err != nil {
		return nil, err
	}
	res.After = after
	return res, nil
}
