# Standard development entry points. All targets use only the Go
# toolchain; there are no external dependencies.

GO ?= go

.PHONY: all build test race bench bench-ml bench-serve bench-smoke bench-json bench-check ci fmt-check vet fmt fuzz test-fault test-serve test-serve-race test-hist test-feedback test-persist test-interp-cache

all: build test

build:
	$(GO) build ./...

# test runs the full suite, including the Workers=1 vs Workers=N
# equivalence suites and the golden-file loop regression.
test:
	$(GO) test ./...

# race re-runs everything under the race detector; the worker pool and
# every parallelized hot path must stay clean here.
race:
	$(GO) test -race ./...

# bench reports the paper-reproduction metrics and the serial-vs-parallel
# scaling of the three parallelized hot paths.
bench:
	$(GO) test -bench . -benchmem -benchtime 1x -run XXX .

# bench-ml sweeps the engine benchmarks — training paths (tree/forest/
# GBDT/AdaBoost fit, AutoML generation), batch predict paths, ALE/PDP
# committee, feedback loop — into results/bench_current.txt.
bench-ml:
	$(GO) test -run '^$$' -bench . -benchmem \
		./internal/ml/ ./internal/interpret/ ./internal/core/ ./internal/automl/ \
		| tee results/bench_current.txt

# bench-serve runs the end-to-end serving throughput benchmarks twice —
# every amortization off (per-request predict sweep, inline drift
# evaluation, uncached interpretation: the legacy baseline) and every
# amortization on (micro-batch scheduler, off-path debounced drift
# evaluator, snapshot-keyed ALE/regions cache) — so the recorded
# speedups are the mechanisms themselves, measured over identical HTTP,
# JSON, and model layers.
SERVE_BENCHES = BenchmarkServePredictLoad64|BenchmarkFeedbackIngestDrift|BenchmarkInterpretLoad32
bench-serve:
	$(GO) test ./internal/serve/ -run '^$$' -bench '$(SERVE_BENCHES)' \
		-benchmem -benchtime 2s -serve.batch=off -serve.drift=sync -serve.interp=off \
		| tee results/bench_serve_baseline.txt
	$(GO) test ./internal/serve/ -run '^$$' -bench '$(SERVE_BENCHES)' \
		-benchmem -benchtime 2s -serve.batch=on -serve.drift=async -serve.interp=on \
		| tee results/bench_serve_current.txt

# bench-smoke executes every benchmark exactly once as a correctness
# gate (not a measurement): a benchmark that panics or regresses into an
# error fails CI even when nobody is timing it.
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x \
		./internal/ml/ ./internal/interpret/ ./internal/core/ \
		./internal/automl/ ./internal/serve/

# bench-json renders the baseline-vs-current sweep comparisons to
# BENCH_ML.json and BENCH_SERVE.json at the repo root (run bench-ml and
# bench-serve first to refresh the inputs).
bench-json:
	$(GO) run ./cmd/benchjson \
		-baseline results/bench_baseline.txt \
		-current results/bench_current.txt \
		-out BENCH_ML.json
	$(GO) run ./cmd/benchjson \
		-baseline results/bench_serve_baseline.txt \
		-current results/bench_serve_current.txt \
		-out BENCH_SERVE.json

# test-fault runs the robustness suites under the race detector: the
# fault-injection drop-equivalence tests (a panicking/erroring/NaN
# candidate must leave a search bit-identical to one without it), the
# loop degradation tests, the deadline/cancellation tests with their
# goroutine-leak checks, the kill-and-resume golden tests (resumed
# experiment bytes must equal an uninterrupted run's), and the CSV
# loader's structured-error tests.
test-fault:
	$(GO) test -race \
		-run 'Fault|Drop|Committee|Refit|RunCtx|Ctx|Degrade|Fatal|Resume|Checkpoint|Deadline|ReadCSV|Panic|MapCtx|ForEachCtx|ZeroValue|Injector' \
		./internal/parallel/ ./internal/automl/ ./internal/core/ \
		./internal/experiments/ ./internal/data/ ./internal/faultinject/

# test-serve runs the serving-layer chaos and soak suites under the race
# detector: overload shedding (429 + Retry-After, shed-don't-queue),
# injected handler panics/5xx rendered as structured errors, failed
# retrains degrading to last-good snapshots, the retrain circuit breaker
# state machine, torn-snapshot-read detection, graceful-drain shutdown
# with goroutine-leak checks, and the deterministic load generator.
test-serve:
	$(GO) test -race -count=1 ./internal/serve/

# test-serve-race pins the batch-scheduler and multi-tenant contracts by
# name under the race detector: coalesced-vs-sequential byte identity,
# timer flushes and row-cap splits under injected scheduler stalls,
# snapshot swaps mid-batch (no torn batches), sweep-panic containment,
# cross-tenant retrain/breaker/panic isolation, LRU eviction with the
# default model pinned, registry churn against in-flight predicts, and
# the per-tenant load-report breakdown. test-serve already covers these
# files, but naming the suites means a renamed-away test is noticed.
test-serve-race:
	$(GO) test -race -count=1 \
		-run 'TestCoalesced|TestBatch|TestSnapshotSwapMidBatch|TestSweepPanic|TestCrossTenant|TestRegistryChurn|TestLRUEviction|TestModelRouting|TestModelsStats|TestLoadMultiTenant|TestLoadSingleTenant' \
		./internal/serve/

# test-hist pins the histogram training engine's contracts by name under
# the race detector: binned-vs-presort fit equality on low-cardinality
# and dyadic data, zero-alloc steady-state pins, engine-knob propagation
# through specs / the eval cache / persisted descriptions, fault-injected
# candidates bypassing hist-path cache writes, Families-restricted
# searches staying inside their zoo, and Workers=1 vs 8 bit-identity for
# all of the above.
test-hist:
	$(GO) test -race -count=1 \
		-run 'Hist|Families|KNNHeap|Cumulative' \
		./internal/rng/ ./internal/ml/ ./internal/automl/

# test-feedback pins the always-on feedback loop's contracts by name
# under the race detector: WAL kill-and-replay at every record boundary
# and torn-tail byte offset, checkpoint compaction crash windows,
# injected WAL/fsync/replay faults, durable ingest across a server
# restart with bootstrap folding, drift-triggered warm-start retrains
# bit-identical to a cold rerun from the replayed store, the failed-
# retrain degradation policy, the concurrent ingest/predict/retrain
# chaos run, and the client's shed-only feedback retry policy.
test-feedback:
	$(GO) test -race -count=1 \
		-run 'TestStore|TestKill|TestTornTail|TestCorrupt|TestCompaction|TestWALFault|TestFsyncFault|TestReplayFault|TestMemoryStore|TestAppendValidation|TestFeedback|TestDrift|TestClientFeedback|TestLoadFeedbackMix|TestWarmStart|TestWindowDisagreement' \
		./internal/feedback/ ./internal/faultinject/ ./internal/core/ ./internal/serve/

# test-persist pins the durable model snapshot store's contracts by name
# under the race detector: wire codec truncation/determinism, model and
# ensemble codec round-trips (decoded fits predict bit-identically to
# the originals), versioned history with retention pruning,
# corrupt-newest-falls-back recovery, the kill-at-any-byte restart
# sweep (recovered servers serve oracle-identical predictions with zero
# retrains), persist-before-publish degradation on write faults, the
# shutdown flush, rollback through the HTTP endpoint and client, and
# LRU-evicted models reloading from disk with fresh breaker state.
test-persist:
	$(GO) test -race -count=1 \
		-run 'TestWire|TestModelCodec|TestEnsembleCodec|TestModelStore|TestPersist|TestRecoverModel|TestRollback|TestEviction|TestStatusSnapshot' \
		./internal/wire/ ./internal/ml/ ./internal/automl/ \
		./internal/modelstore/ ./internal/serve/

# test-interp-cache pins the amortized interpretation engine's contracts
# by name under the race detector: snapshot-keyed ALE/regions cache
# bit-identity with hit accounting, invalidation on publish, rollback
# and LRU eviction, the stale-curve chaos run (a swapped snapshot must
# never serve another version's curves), the curve cache's single-flight
# and cancellation semantics, warm-start curve reuse, the sliding-window
# dataset vs its naive oracle, the off-path drift evaluator's
# bit-identity oracle with Workers 1 vs 8, deterministic gate spacing,
# burst-coalescing conservation, client-disconnect survival, and the
# pooled quantile-grid allocation pin.
test-interp-cache:
	$(GO) test -race -count=1 \
		-run 'TestALECache|TestRegionsCached|TestInterpCache|TestALEStaleCurve|TestCurveCache|TestMemberShifts|TestWarmStartOldCurves|TestWindowDisagreementData|TestSlidingWindow|TestAsyncDrift|TestDriftEval|TestDriftCoalescing|TestQuantileGridPooled' \
		./internal/core/ ./internal/interpret/ ./internal/serve/

# bench-check gates the committed sweeps against the committed JSON
# reports: a sweep whose ns/op exceeds the recorded value by more than
# BENCH_THRESHOLD fails, so a perf regression must be fixed or explicitly
# acknowledged by regenerating the JSON (bench-ml/bench-serve +
# bench-json). Pure file comparison: no benchmarks run here.
BENCH_THRESHOLD ?= 1.30
bench-check:
	$(GO) run ./cmd/benchjson -check -json BENCH_ML.json \
		-current results/bench_current.txt -threshold $(BENCH_THRESHOLD)
	$(GO) run ./cmd/benchjson -check -json BENCH_SERVE.json \
		-current results/bench_serve_current.txt -threshold $(BENCH_THRESHOLD)

# ci is the full gate: formatting, vet, tests, race detector, fault
# suite, serving chaos suites, the histogram-engine suite, the feedback
# durability/drift suite (the named suites overlap with race but pin the
# robustness contracts by name, so a renamed-away test is noticed), the
# committed-sweep regression gate, and a single-iteration benchmark
# smoke run.
ci: fmt-check vet test race test-fault test-serve test-serve-race test-hist test-feedback test-persist test-interp-cache bench-check bench-smoke

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

# fuzz gives each fuzz target a short budget; extend FUZZTIME for deeper
# runs.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -fuzz FuzzMergeIntervals -fuzztime $(FUZZTIME) ./internal/core/
	$(GO) test -fuzz FuzzIntervalRoundTrip -fuzztime $(FUZZTIME) ./internal/core/
	$(GO) test -fuzz FuzzReadCSV -fuzztime $(FUZZTIME) ./internal/data/
