# Standard development entry points. All targets use only the Go
# toolchain; there are no external dependencies.

GO ?= go

.PHONY: all build test race bench vet fmt fuzz

all: build test

build:
	$(GO) build ./...

# test runs the full suite, including the Workers=1 vs Workers=N
# equivalence suites and the golden-file loop regression.
test:
	$(GO) test ./...

# race re-runs everything under the race detector; the worker pool and
# every parallelized hot path must stay clean here.
race:
	$(GO) test -race ./...

# bench reports the paper-reproduction metrics and the serial-vs-parallel
# scaling of the three parallelized hot paths.
bench:
	$(GO) test -bench . -benchmem -benchtime 1x -run XXX .

vet:
	$(GO) vet ./...

fmt:
	gofmt -l .

# fuzz gives each fuzz target a short budget; extend FUZZTIME for deeper
# runs.
FUZZTIME ?= 30s
fuzz:
	$(GO) test -fuzz FuzzMergeIntervals -fuzztime $(FUZZTIME) ./internal/core/
	$(GO) test -fuzz FuzzIntervalRoundTrip -fuzztime $(FUZZTIME) ./internal/core/
