package alefb

import (
	"strings"
	"testing"

	"github.com/netml/alefb/internal/core"
	"github.com/netml/alefb/internal/metrics"
	"github.com/netml/alefb/internal/rng"
)

// confusableDataset builds a problem whose labels are deterministic except
// in x0 ∈ [0.4, 0.6], where they are random — so the committee should
// disagree there and the feedback loop should target that band.
func confusableDataset(n int, seed uint64) *Dataset {
	schema := &Schema{
		Features: []Feature{
			{Name: "x0", Min: 0, Max: 1},
			{Name: "x1", Min: 0, Max: 1},
		},
		Classes: []string{"no", "yes"},
	}
	r := rng.New(seed)
	d := NewDataset(schema)
	for i := 0; i < n; i++ {
		x0, x1 := r.Float64(), r.Float64()
		var y int
		switch {
		case x0 < 0.4:
			y = 0
		case x0 > 0.6:
			y = 1
		default:
			y = r.Intn(2)
		}
		d.Append([]float64{x0, x1}, y)
	}
	return d
}

func testOracle() Oracle {
	return OracleFunc(func(x []float64) int {
		if x[0] > 0.5 {
			return 1
		}
		return 0
	})
}

func smallAutoML(seed uint64) AutoMLConfig {
	return AutoMLConfig{MaxCandidates: 6, Generations: 1, EnsembleSize: 4, Seed: seed}
}

func TestTrainAndPredict(t *testing.T) {
	train := confusableDataset(300, 1)
	ens, err := Train(train, smallAutoML(7))
	if err != nil {
		t.Fatal(err)
	}
	test := confusableDataset(200, 2)
	pred := ens.Predict(test.X)
	if acc := metrics.Accuracy(test.Y, pred); acc < 0.7 {
		t.Fatalf("accuracy %.3f", acc)
	}
}

func TestWithinFeedbackExplains(t *testing.T) {
	train := confusableDataset(300, 3)
	ens, err := Train(train, smallAutoML(9))
	if err != nil {
		t.Fatal(err)
	}
	fb, err := WithinFeedback(ens, train, FeedbackConfig{Bins: 20, Classes: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	text := fb.Explain()
	if !strings.Contains(text, "ALE") {
		t.Fatalf("explanation missing method name:\n%s", text)
	}
	if len(fb.Analyses) != 2 {
		t.Fatalf("analyses = %d", len(fb.Analyses))
	}
}

func TestCrossFeedback(t *testing.T) {
	train := confusableDataset(250, 4)
	fb, ensembles, err := CrossFeedback(train, smallAutoML(11), 3, FeedbackConfig{Bins: 16, Classes: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ensembles) != 3 {
		t.Fatalf("ensembles = %d", len(ensembles))
	}
	if fb.Threshold < 0 {
		t.Fatalf("threshold = %v", fb.Threshold)
	}
}

func TestSampleDeterministic(t *testing.T) {
	train := confusableDataset(300, 5)
	ens, err := Train(train, smallAutoML(13))
	if err != nil {
		t.Fatal(err)
	}
	fb, err := WithinFeedback(ens, train, FeedbackConfig{Bins: 20, Classes: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	a := Sample(fb, 10, 99)
	b := Sample(fb, 10, 99)
	if len(a) != len(b) {
		t.Fatal("sample sizes differ")
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatal("same seed, different samples")
			}
		}
	}
}

func TestImproveCycle(t *testing.T) {
	train := confusableDataset(300, 6)
	res, err := Improve(train, smallAutoML(15), FeedbackConfig{Bins: 20, Classes: []int{1}}, 60, testOracle())
	if err != nil {
		t.Fatal(err)
	}
	if res.Before == nil || res.After == nil || res.Feedback == nil {
		t.Fatal("incomplete result")
	}
	if res.Added.Len() == 0 {
		t.Skip("committee agreed everywhere on this seed; nothing to verify")
	}
	// Added points must carry oracle labels.
	oracle := testOracle()
	for i, x := range res.Added.X {
		if res.Added.Y[i] != oracle.Label(x) {
			t.Fatal("added point mislabelled")
		}
	}
	// After must be a distinct ensemble trained on more data.
	if res.After == res.Before {
		t.Fatal("retrain did not happen despite added points")
	}
}

func TestReadCSVExported(t *testing.T) {
	d, err := ReadCSV(strings.NewReader("f,label\n1,a\n2,b\n"))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 {
		t.Fatalf("len = %d", d.Len())
	}
}

func TestFacadeRunLoop(t *testing.T) {
	train := confusableDataset(200, 7)
	res, err := RunLoop(train, LoopConfig{
		Rounds:   2,
		PerRound: 30,
		AutoML:   smallAutoML(17),
		Feedback: FeedbackConfig{Bins: 16, Classes: []int{1}},
		Oracle:   testOracle(),
		Seed:     19,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Final == nil || len(res.Rounds) == 0 {
		t.Fatal("incomplete loop result")
	}
	if res.Train.Len() < train.Len() {
		t.Fatal("loop lost training data")
	}
}

func TestFacadeFreePolicies(t *testing.T) {
	train := confusableDataset(250, 8)
	ens, err := Train(train, smallAutoML(21))
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []core.FreeFeaturePolicy{FreeUniform, FreeEmpirical} {
		fb, err := WithinFeedback(ens, train, FeedbackConfig{Bins: 16, Classes: []int{1}, FreeFeatures: policy})
		if err != nil {
			t.Fatal(err)
		}
		pts := Sample(fb, 20, 5)
		for _, x := range pts {
			if x[0] < 0 || x[0] > 1 || x[1] < 0 || x[1] > 1 {
				t.Fatalf("policy %v sampled out of range: %v", policy, x)
			}
		}
	}
}
