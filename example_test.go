package alefb_test

import (
	"fmt"
	"log"

	"github.com/netml/alefb"
)

// buildDataset assembles a small labelled dataset by hand.
func buildDataset() *alefb.Dataset {
	schema := &alefb.Schema{
		Features: []alefb.Feature{
			{Name: "rtt_ms", Min: 0, Max: 200},
			{Name: "loss_rate", Min: 0, Max: 0.1},
		},
		Classes: []string{"healthy", "degraded"},
	}
	d := alefb.NewDataset(schema)
	for i := 0; i < 200; i++ {
		rtt := float64(i)
		label := 0
		if rtt > 100 {
			label = 1
		}
		d.Append([]float64{rtt, 0.01}, label)
	}
	return d
}

// Example shows the minimal train-then-explain workflow.
func Example() {
	train := buildDataset()
	ens, err := alefb.Train(train, alefb.AutoMLConfig{MaxCandidates: 6, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fb, err := alefb.WithinFeedback(ens, train, alefb.FeedbackConfig{Bins: 16})
	if err != nil {
		log.Fatal(err)
	}
	// fb.Explain() describes, per feature, where the ensemble's models
	// disagree and what data to collect; fb.Subspaces() returns the same
	// regions as half-space systems; alefb.Sample draws points from them.
	_ = fb.Explain()
	fmt.Println(len(fb.Analyses) > 0)
	// Output: true
}

// ExampleImprove runs one full suggest-label-retrain cycle against an
// oracle (here: ground truth; in practice a testbed or an operator).
func ExampleImprove() {
	oracle := alefb.OracleFunc(func(x []float64) int {
		if x[0] > 100 {
			return 1
		}
		return 0
	})
	res, err := alefb.Improve(
		buildDataset(),
		alefb.AutoMLConfig{MaxCandidates: 6, Seed: 2},
		alefb.FeedbackConfig{Bins: 16},
		20,
		oracle,
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Before != nil && res.After != nil)
	// Output: true
}
