// Package modelstore is the durable, versioned snapshot store for
// fitted ensembles: the model-side twin of the feedback label WAL. A
// snapshot persists everything the serving layer needs to answer
// predictions after a restart without retraining — the fitted committee
// (via the automl/ml fitted-state codecs), the training set it was fit
// on (so drift retrains and ALE recomputation can continue), and the
// metadata that anchors it in the feedback timeline (version lineage,
// seed, and the FeedbackRows high-water mark that tells recovery which
// WAL records are already folded in).
//
// # File format
//
// One snapshot per file, named v%020d.snap (zero-padded so
// lexicographic order is version order), inside <dir>/<model>/:
//
//	[8]  magic "ALFBSNAP"
//	[4]  u32 format version (currently 1)
//	     section × 3 (meta, train, ensemble), each:
//	[4]  u32 payload length (little-endian)
//	[4]  u32 CRC-32 (IEEE) of the payload
//	[n]  payload
//
// The framing is the feedback WAL's discipline applied per section: a
// torn tail or a flipped bit fails the length or CRC check and the
// whole file is treated as absent, never partially applied. The meta
// section additionally records an FNV-1a fingerprint of the train and
// ensemble payloads, cross-checking that the three sections belong to
// the same write.
//
// Writes go through the repository's atomic publish sequence — temp
// file, fsync, rename, directory fsync — so a crash leaves either the
// complete new snapshot or no trace of it. Reads scan versions newest
// first and return the first file that decodes; corrupt or torn
// snapshots are skipped (the fall-back-to-prior-version policy), so
// recovery degrades by at most one retrain's worth of history, never to
// an unusable store.
//
// A manifest.json alongside the snapshots mirrors the version history
// for humans and external tooling. It is advisory: written atomically
// after each save, never read back for recovery decisions (the
// CRC-validated snapshot files are the source of truth).
package modelstore

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"github.com/netml/alefb/internal/automl"
	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/faultinject"
	"github.com/netml/alefb/internal/wire"
)

const (
	magic         = "ALFBSNAP"
	formatVersion = 1
	snapSuffix    = ".snap"
	manifestFile  = "manifest.json"
)

// ErrNotFound reports that no decodable snapshot exists for the request
// (no directory, no files, or an explicitly missing version).
var ErrNotFound = errors.New("modelstore: snapshot not found")

// Snapshot is one durable model version: the fitted ensemble, its
// training set, and the lineage metadata recovery and rollback key on.
type Snapshot struct {
	// Version is the serving-layer snapshot version this file persists.
	Version int64
	// Parent is the version this one was retrained from (0 for the
	// bootstrap snapshot).
	Parent int64
	// Seed is the search seed the ensemble was fit with.
	Seed uint64
	// FeedbackRows is the feedback-store high-water mark folded into
	// Train: recovery replays only WAL records past this count.
	FeedbackRows int64
	// ValScore is the ensemble's holdout score at persist time.
	ValScore float64
	// SavedAtUnixMS is the wall-clock persist time (advisory, for
	// status age reporting).
	SavedAtUnixMS int64

	// Ensemble is the fitted committee, predict-ready after decode.
	Ensemble *automl.Ensemble
	// Train is the training set the ensemble was fit on, including any
	// feedback rows folded in up to FeedbackRows.
	Train *data.Dataset
}

// Config configures a Store.
type Config struct {
	// Dir is the root directory; each model gets a subdirectory.
	Dir string
	// Retain is how many snapshot versions to keep per model (older
	// ones are pruned after each save). 0 means the default of 4;
	// negative means keep everything.
	Retain int
	// Fault injects snapshot write/load faults for the chaos suites.
	Fault *faultinject.Injector
}

// Store reads and writes versioned model snapshots under one root
// directory. Methods are safe for concurrent use.
type Store struct {
	dir    string
	retain int
	fault  *faultinject.Injector

	mu    sync.Mutex
	loads int // decode attempt counter, keys load fault injection
}

// New returns a store over cfg.Dir. The directory is created lazily on
// first save, so a read-only store over a missing directory is valid
// (Has and LoadLatest simply report nothing).
func New(cfg Config) *Store {
	retain := cfg.Retain
	if retain == 0 {
		retain = 4
	}
	return &Store{dir: cfg.Dir, retain: retain, fault: cfg.Fault}
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func (s *Store) modelDir(model string) string { return filepath.Join(s.dir, model) }

func snapName(v int64) string { return fmt.Sprintf("v%020d%s", v, snapSuffix) }

// Save persists snap for model durably: encode, temp file, fsync,
// rename into place, directory fsync, then retention pruning and an
// advisory manifest update. On error nothing decodable is left at the
// final path (an injected Panic fault deliberately leaves a torn
// prefix, simulating a crash mid-write — which recovery must skip).
func (s *Store) Save(model string, snap *Snapshot) error {
	s.mu.Lock()
	defer s.mu.Unlock()

	dir := s.modelDir(model)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("modelstore: create %s: %w", dir, err)
	}
	blob, err := encodeSnapshot(snap)
	if err != nil {
		return err
	}
	final := filepath.Join(dir, snapName(snap.Version))

	switch s.fault.SnapshotWriteFault(snap.Version) {
	case faultinject.Error:
		return fmt.Errorf("modelstore: write v%d: %w", snap.Version, faultinject.ErrInjected)
	case faultinject.Panic:
		// Crash mid-write: a torn prefix lands at the final path. (A
		// real crash between rename and dir-fsync can also leave a
		// complete-but-unsynced file; the torn prefix is the harder
		// case, so it is the one injected.)
		_ = os.WriteFile(final, blob[:len(blob)/2], 0o644)
		return fmt.Errorf("modelstore: torn write v%d: %w", snap.Version, faultinject.ErrInjected)
	}

	tmp, err := os.CreateTemp(dir, snapName(snap.Version)+".tmp-*")
	if err != nil {
		return fmt.Errorf("modelstore: snapshot temp: %w", err)
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("modelstore: write snapshot: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("modelstore: fsync snapshot: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("modelstore: close snapshot: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("modelstore: publish snapshot: %w", err)
	}
	if dirF, err := os.Open(dir); err == nil {
		_ = dirF.Sync()
		dirF.Close()
	}

	s.pruneLocked(model)
	s.writeManifestLocked(model)
	return nil
}

// LoadLatest returns the newest decodable snapshot for model, skipping
// corrupt or torn files (each skip is the prior-version fall-back the
// chaos suites exercise). ErrNotFound when no version decodes.
func (s *Store) LoadLatest(model string) (*Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	versions := s.versionsLocked(model)
	for i := len(versions) - 1; i >= 0; i-- {
		snap, err := s.loadLocked(model, versions[i])
		if err == nil {
			return snap, nil
		}
	}
	return nil, fmt.Errorf("%w (model %q)", ErrNotFound, model)
}

// LoadVersion returns one specific snapshot version. A missing file is
// ErrNotFound; a corrupt one is a decode error (no silent fall-back —
// rollback to an explicit version must not quietly land elsewhere).
func (s *Store) LoadVersion(model string, v int64) (*Snapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, err := os.Stat(filepath.Join(s.modelDir(model), snapName(v))); err != nil {
		return nil, fmt.Errorf("%w (model %q version %d)", ErrNotFound, model, v)
	}
	return s.loadLocked(model, v)
}

// loadLocked reads and decodes one snapshot file, honoring injected
// load faults (counted per decode attempt).
func (s *Store) loadLocked(model string, v int64) (*Snapshot, error) {
	n := s.loads
	s.loads++
	if s.fault.SnapshotLoadFault(n) {
		return nil, fmt.Errorf("modelstore: load %d: %w", n, faultinject.ErrInjected)
	}
	blob, err := os.ReadFile(filepath.Join(s.modelDir(model), snapName(v)))
	if err != nil {
		return nil, fmt.Errorf("modelstore: read v%d: %w", v, err)
	}
	return decodeSnapshot(blob)
}

// Has reports whether any snapshot file exists for model (decodability
// is not checked — recovery decides that).
func (s *Store) Has(model string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.versionsLocked(model)) > 0
}

// Versions returns model's on-disk snapshot versions in ascending
// order (nil when none).
func (s *Store) Versions(model string) []int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.versionsLocked(model)
}

// PreviousVersion returns the newest on-disk version strictly below v,
// or false when none exists.
func (s *Store) PreviousVersion(model string, v int64) (int64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	versions := s.versionsLocked(model)
	for i := len(versions) - 1; i >= 0; i-- {
		if versions[i] < v {
			return versions[i], true
		}
	}
	return 0, false
}

// Models returns the model names with at least one snapshot file.
func (s *Store) Models() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() && len(s.versionsLocked(e.Name())) > 0 {
			out = append(out, e.Name())
		}
	}
	return out
}

func (s *Store) versionsLocked(model string) []int64 {
	entries, err := os.ReadDir(s.modelDir(model))
	if err != nil {
		return nil
	}
	var out []int64
	for _, e := range entries {
		name := e.Name()
		if len(name) != len(snapName(0)) || name[0] != 'v' || filepath.Ext(name) != snapSuffix {
			continue
		}
		var v int64
		if _, err := fmt.Sscanf(name, "v%d.snap", &v); err == nil {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// pruneLocked removes versions beyond the retention knob, oldest first.
func (s *Store) pruneLocked(model string) {
	if s.retain < 0 {
		return
	}
	versions := s.versionsLocked(model)
	for len(versions) > s.retain {
		_ = os.Remove(filepath.Join(s.modelDir(model), snapName(versions[0])))
		versions = versions[1:]
	}
}

// manifestEntry is one version's row in the advisory manifest.
type manifestEntry struct {
	Version       int64   `json:"version"`
	Parent        int64   `json:"parent"`
	Seed          uint64  `json:"seed"`
	FeedbackRows  int64   `json:"feedback_rows"`
	ValScore      float64 `json:"val_score"`
	SavedAtUnixMS int64   `json:"saved_at_unix_ms"`
	Fingerprint   string  `json:"fingerprint"`
}

// writeManifestLocked rebuilds manifest.json from the decodable
// snapshot files. Best-effort and advisory: failures are swallowed, and
// recovery never reads it.
func (s *Store) writeManifestLocked(model string) {
	var entries []manifestEntry
	for _, v := range s.versionsLocked(model) {
		blob, err := os.ReadFile(filepath.Join(s.modelDir(model), snapName(v)))
		if err != nil {
			continue
		}
		meta, fp, err := decodeMetaOnly(blob)
		if err != nil {
			continue
		}
		meta.Fingerprint = fmt.Sprintf("%016x", fp)
		entries = append(entries, meta)
	}
	blob, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return
	}
	dir := s.modelDir(model)
	tmp, err := os.CreateTemp(dir, manifestFile+".tmp-*")
	if err != nil {
		return
	}
	if _, err := tmp.Write(blob); err == nil {
		tmp.Close()
		_ = os.Rename(tmp.Name(), filepath.Join(dir, manifestFile))
	} else {
		tmp.Close()
	}
	os.Remove(tmp.Name())
}

// --- encoding -------------------------------------------------------------

// appendSection frames payload with its length and CRC-32, the feedback
// WAL's record discipline applied per section.
func appendSection(buf, payload []byte) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	return append(buf, payload...)
}

// readSection validates and returns the next framed section.
func readSection(blob []byte) (payload, rest []byte, err error) {
	if len(blob) < 8 {
		return nil, nil, fmt.Errorf("modelstore: truncated section header")
	}
	n := binary.LittleEndian.Uint32(blob[:4])
	crc := binary.LittleEndian.Uint32(blob[4:8])
	body := blob[8:]
	if uint32(len(body)) < n {
		return nil, nil, fmt.Errorf("modelstore: torn section (%d of %d bytes)", len(body), n)
	}
	payload = body[:n]
	if crc32.ChecksumIEEE(payload) != crc {
		return nil, nil, fmt.Errorf("modelstore: section CRC mismatch")
	}
	return payload, body[n:], nil
}

// fingerprint is FNV-1a over the train and ensemble payloads: a cheap
// cross-section integrity check recorded in the meta section.
func fingerprint(train, ensemble []byte) uint64 {
	h := fnv.New64a()
	h.Write(train)
	h.Write(ensemble)
	return h.Sum64()
}

func encodeSnapshot(snap *Snapshot) ([]byte, error) {
	train := appendDataset(nil, snap.Train)
	ensemble, err := automl.AppendEnsemble(nil, snap.Ensemble)
	if err != nil {
		return nil, fmt.Errorf("modelstore: encode ensemble: %w", err)
	}

	var meta []byte
	meta = wire.AppendI64(meta, snap.Version)
	meta = wire.AppendI64(meta, snap.Parent)
	meta = wire.AppendU64(meta, snap.Seed)
	meta = wire.AppendI64(meta, snap.FeedbackRows)
	meta = wire.AppendF64(meta, snap.ValScore)
	meta = wire.AppendI64(meta, snap.SavedAtUnixMS)
	meta = wire.AppendU64(meta, fingerprint(train, ensemble))

	buf := make([]byte, 0, len(magic)+4+len(meta)+len(train)+len(ensemble)+24)
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint32(buf, formatVersion)
	buf = appendSection(buf, meta)
	buf = appendSection(buf, train)
	buf = appendSection(buf, ensemble)
	return buf, nil
}

// decodeHeader validates magic + format and returns the section bytes.
func decodeHeader(blob []byte) ([]byte, error) {
	if len(blob) < len(magic)+4 || string(blob[:len(magic)]) != magic {
		return nil, fmt.Errorf("modelstore: bad magic")
	}
	if f := binary.LittleEndian.Uint32(blob[len(magic) : len(magic)+4]); f != formatVersion {
		return nil, fmt.Errorf("modelstore: unsupported format %d", f)
	}
	return blob[len(magic)+4:], nil
}

func decodeSnapshot(blob []byte) (*Snapshot, error) {
	rest, err := decodeHeader(blob)
	if err != nil {
		return nil, err
	}
	meta, rest, err := readSection(rest)
	if err != nil {
		return nil, err
	}
	train, rest, err := readSection(rest)
	if err != nil {
		return nil, err
	}
	ensemble, _, err := readSection(rest)
	if err != nil {
		return nil, err
	}

	r := wire.NewReader(meta)
	snap := &Snapshot{
		Version:      r.I64(),
		Parent:       r.I64(),
		Seed:         r.U64(),
		FeedbackRows: r.I64(),
		ValScore:     r.F64(),
	}
	snap.SavedAtUnixMS = r.I64()
	fp := r.U64()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("modelstore: decode meta: %w", err)
	}
	if fp != fingerprint(train, ensemble) {
		return nil, fmt.Errorf("modelstore: fingerprint mismatch")
	}

	tr := wire.NewReader(train)
	snap.Train, err = decodeDataset(tr)
	if err != nil {
		return nil, err
	}
	er := wire.NewReader(ensemble)
	snap.Ensemble, err = automl.DecodeEnsemble(er)
	if err != nil {
		return nil, err
	}
	return snap, nil
}

// decodeMetaOnly extracts the manifest fields without decoding the
// model payloads (manifest rebuilds stay cheap).
func decodeMetaOnly(blob []byte) (manifestEntry, uint64, error) {
	rest, err := decodeHeader(blob)
	if err != nil {
		return manifestEntry{}, 0, err
	}
	meta, _, err := readSection(rest)
	if err != nil {
		return manifestEntry{}, 0, err
	}
	r := wire.NewReader(meta)
	e := manifestEntry{
		Version:      r.I64(),
		Parent:       r.I64(),
		Seed:         r.U64(),
		FeedbackRows: r.I64(),
		ValScore:     r.F64(),
	}
	e.SavedAtUnixMS = r.I64()
	fp := r.U64()
	return e, fp, r.Err()
}

// appendDataset encodes schema + rows. The schema travels inside the
// snapshot so recovery needs no side channel to rebuild feature bounds
// and class names.
func appendDataset(buf []byte, d *data.Dataset) []byte {
	buf = wire.AppendU32(buf, uint32(len(d.Schema.Features)))
	for _, f := range d.Schema.Features {
		buf = wire.AppendString(buf, f.Name)
		buf = wire.AppendF64(buf, f.Min)
		buf = wire.AppendF64(buf, f.Max)
		buf = wire.AppendBool(buf, f.Integer)
	}
	buf = wire.AppendStrings(buf, d.Schema.Classes)
	buf = wire.AppendF64Matrix(buf, d.X)
	return wire.AppendInts(buf, d.Y)
}

func decodeDataset(r *wire.Reader) (*data.Dataset, error) {
	schema := &data.Schema{}
	n := int(r.U32())
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("modelstore: decode schema: %w", err)
	}
	if n > 0 {
		schema.Features = make([]data.Feature, n)
		for i := range schema.Features {
			schema.Features[i] = data.Feature{
				Name:    r.String(),
				Min:     r.F64(),
				Max:     r.F64(),
				Integer: r.Bool(),
			}
		}
	}
	schema.Classes = r.Strings()
	d := &data.Dataset{Schema: schema, X: r.F64Matrix(), Y: r.Ints()}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("modelstore: decode dataset: %w", err)
	}
	return d, nil
}
