package modelstore

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/netml/alefb/internal/automl"
	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/faultinject"
	"github.com/netml/alefb/internal/rng"
)

// fixture fits one small real ensemble per seed for the round-trip and
// recovery suites.
func fixture(t *testing.T, seed uint64) (*data.Dataset, *automl.Ensemble) {
	t.Helper()
	schema := &data.Schema{
		Features: []data.Feature{
			{Name: "x0", Min: -10, Max: 10},
			{Name: "x1", Min: -10, Max: 10, Integer: true},
		},
		Classes: []string{"A", "B", "C"},
	}
	d := data.New(schema)
	r := rng.New(seed)
	centers := [][]float64{{-4, -4}, {4, 4}, {-4, 4}}
	for i := 0; i < 240; i++ {
		c := i % 3
		d.Append([]float64{r.Normal(centers[c][0], 1.2), r.Normal(centers[c][1], 1.2)}, c)
	}
	ens, err := automl.Run(d, automl.Config{MaxCandidates: 5, Generations: 1, EnsembleSize: 4, Seed: seed})
	if err != nil {
		t.Fatalf("automl.Run: %v", err)
	}
	return d, ens
}

func snapFor(v int64, seed uint64, d *data.Dataset, ens *automl.Ensemble) *Snapshot {
	return &Snapshot{
		Version:       v,
		Parent:        v - 1,
		Seed:          seed,
		FeedbackRows:  int64(v) * 10,
		ValScore:      ens.ValScore,
		SavedAtUnixMS: 1700000000000 + v,
		Ensemble:      ens,
		Train:         d,
	}
}

// probes compares batch predictions bit-for-bit.
func assertSamePredictions(t *testing.T, want, got *automl.Ensemble, X [][]float64) {
	t.Helper()
	w := make([][]float64, len(X))
	g := make([][]float64, len(X))
	for i := range X {
		w[i] = make([]float64, want.NumClasses)
		g[i] = make([]float64, got.NumClasses)
	}
	want.PredictProbaBatchInto(X, w)
	got.PredictProbaBatchInto(X, g)
	for i := range w {
		for j := range w[i] {
			if math.Float64bits(w[i][j]) != math.Float64bits(g[i][j]) {
				t.Fatalf("row %d class %d: %v != %v (bit mismatch)", i, j, g[i][j], w[i][j])
			}
		}
	}
}

// TestModelStoreRoundTrip pins Save→LoadLatest fidelity: metadata and
// predictions survive the disk round trip exactly.
func TestModelStoreRoundTrip(t *testing.T) {
	d, ens := fixture(t, 11)
	st := New(Config{Dir: t.TempDir()})
	snap := snapFor(1, 11, d, ens)
	if err := st.Save("default", snap); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := st.LoadLatest("default")
	if err != nil {
		t.Fatalf("LoadLatest: %v", err)
	}
	if got.Version != 1 || got.Parent != 0 || got.Seed != 11 ||
		got.FeedbackRows != 10 || got.SavedAtUnixMS != snap.SavedAtUnixMS ||
		math.Float64bits(got.ValScore) != math.Float64bits(snap.ValScore) {
		t.Fatalf("meta mismatch: %+v", got)
	}
	if len(got.Train.X) != len(d.X) || len(got.Train.Y) != len(d.Y) {
		t.Fatalf("train size mismatch: %d/%d rows", len(got.Train.X), len(d.X))
	}
	if got.Train.Schema.Features[1].Name != "x1" || !got.Train.Schema.Features[1].Integer {
		t.Fatalf("schema mismatch: %+v", got.Train.Schema.Features)
	}
	if len(got.Train.Schema.Classes) != 3 || got.Train.Schema.Classes[2] != "C" {
		t.Fatalf("classes mismatch: %v", got.Train.Schema.Classes)
	}
	assertSamePredictions(t, ens, got.Ensemble, d.X[:32])
}

// TestModelStoreVersionHistory pins version listing, LoadVersion,
// PreviousVersion, and retention pruning.
func TestModelStoreVersionHistory(t *testing.T) {
	d, ens := fixture(t, 5)
	st := New(Config{Dir: t.TempDir(), Retain: 3})
	for v := int64(1); v <= 5; v++ {
		if err := st.Save("m", snapFor(v, 5, d, ens)); err != nil {
			t.Fatalf("Save v%d: %v", v, err)
		}
	}
	got := st.Versions("m")
	if len(got) != 3 || got[0] != 3 || got[2] != 5 {
		t.Fatalf("Versions = %v, want [3 4 5] (retain=3 pruned oldest)", got)
	}
	snap, err := st.LoadVersion("m", 4)
	if err != nil || snap.Version != 4 {
		t.Fatalf("LoadVersion(4) = %v, %v", snap, err)
	}
	if _, err := st.LoadVersion("m", 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("LoadVersion(pruned) err = %v, want ErrNotFound", err)
	}
	if prev, ok := st.PreviousVersion("m", 5); !ok || prev != 4 {
		t.Fatalf("PreviousVersion(5) = %d, %v", prev, ok)
	}
	if _, ok := st.PreviousVersion("m", 3); ok {
		t.Fatal("PreviousVersion below the oldest must report none")
	}
	if !st.Has("m") || st.Has("ghost") {
		t.Fatal("Has() wrong")
	}
	if models := st.Models(); len(models) != 1 || models[0] != "m" {
		t.Fatalf("Models = %v", models)
	}
	// The advisory manifest mirrors the retained history.
	blob, err := os.ReadFile(filepath.Join(st.Dir(), "m", manifestFile))
	if err != nil {
		t.Fatalf("manifest: %v", err)
	}
	if len(blob) == 0 {
		t.Fatal("empty manifest")
	}
}

// TestModelStoreCorruptNewestFallsBack is the acceptance-criteria core:
// corrupting the newest snapshot at EVERY byte offset (truncation) and
// by single-bit flips must make LoadLatest fall back to the prior
// version, never crash, never serve a half-decoded model.
func TestModelStoreCorruptNewestFallsBack(t *testing.T) {
	d, ens := fixture(t, 7)
	st := New(Config{Dir: t.TempDir()})
	if err := st.Save("m", snapFor(1, 7, d, ens)); err != nil {
		t.Fatalf("Save v1: %v", err)
	}
	if err := st.Save("m", snapFor(2, 7, d, ens)); err != nil {
		t.Fatalf("Save v2: %v", err)
	}
	newest := filepath.Join(st.Dir(), "m", snapName(2))
	blob, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}

	// Truncation at a sweep of byte offsets, including every offset in
	// the header+meta region and a stride through the model payload.
	offsets := make([]int, 0, 256)
	for n := 0; n < 128 && n < len(blob); n++ {
		offsets = append(offsets, n)
	}
	for n := 128; n < len(blob); n += 101 {
		offsets = append(offsets, n)
	}
	for _, n := range offsets {
		if err := os.WriteFile(newest, blob[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := st.LoadLatest("m")
		if err != nil {
			t.Fatalf("truncate@%d: LoadLatest: %v", n, err)
		}
		if got.Version != 1 {
			t.Fatalf("truncate@%d: served v%d, want fall-back to v1", n, got.Version)
		}
	}

	// Bit flips at a stride through the intact file.
	for n := 0; n < len(blob); n += 137 {
		mut := append([]byte(nil), blob...)
		mut[n] ^= 0x40
		if err := os.WriteFile(newest, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		got, err := st.LoadLatest("m")
		if err != nil {
			t.Fatalf("flip@%d: LoadLatest: %v", n, err)
		}
		if got.Version == 2 {
			// A flip inside slack bytes cannot exist: every byte is
			// covered by a section CRC or the header check.
			t.Fatalf("flip@%d: corrupt v2 still served", n)
		}
	}

	// All versions corrupt → ErrNotFound, not a panic.
	if err := os.WriteFile(newest, blob[:10], 0o644); err != nil {
		t.Fatal(err)
	}
	oldest := filepath.Join(st.Dir(), "m", snapName(1))
	if err := os.WriteFile(oldest, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.LoadLatest("m"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("all-corrupt err = %v, want ErrNotFound", err)
	}
}

// TestModelStoreWriteFaults pins the injected write faults: Error leaves
// no file at all; Panic leaves a torn file that recovery skips.
func TestModelStoreWriteFaults(t *testing.T) {
	d, ens := fixture(t, 3)
	inj := faultinject.New().
		WithSnapshotWriteFault(2, faultinject.Error).
		WithSnapshotWriteFault(3, faultinject.Panic)
	st := New(Config{Dir: t.TempDir(), Fault: inj})

	if err := st.Save("m", snapFor(1, 3, d, ens)); err != nil {
		t.Fatalf("Save v1: %v", err)
	}
	if err := st.Save("m", snapFor(2, 3, d, ens)); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Save v2 err = %v, want ErrInjected", err)
	}
	if _, err := os.Stat(filepath.Join(st.Dir(), "m", snapName(2))); !os.IsNotExist(err) {
		t.Fatal("clean write fault must leave nothing at the final path")
	}
	if err := st.Save("m", snapFor(3, 3, d, ens)); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Save v3 err = %v, want ErrInjected", err)
	}
	if _, err := os.Stat(filepath.Join(st.Dir(), "m", snapName(3))); err != nil {
		t.Fatal("torn write fault must leave a torn file at the final path")
	}
	got, err := st.LoadLatest("m")
	if err != nil || got.Version != 1 {
		t.Fatalf("LoadLatest after torn v3 = v%d, %v; want v1", got.Version, err)
	}
}

// TestModelStoreLoadFault pins count-keyed load faults: the first decode
// attempt fails as corrupt and LoadLatest falls back to the prior
// version.
func TestModelStoreLoadFault(t *testing.T) {
	d, ens := fixture(t, 9)
	inj := faultinject.New().WithSnapshotLoadFault(0)
	st := New(Config{Dir: t.TempDir(), Fault: inj})
	if err := st.Save("m", snapFor(1, 9, d, ens)); err != nil {
		t.Fatal(err)
	}
	if err := st.Save("m", snapFor(2, 9, d, ens)); err != nil {
		t.Fatal(err)
	}
	got, err := st.LoadLatest("m")
	if err != nil {
		t.Fatalf("LoadLatest: %v", err)
	}
	if got.Version != 1 {
		t.Fatalf("load fault on newest: served v%d, want v1", got.Version)
	}
}

// TestModelStoreMissing pins the empty-store behavior New promises.
func TestModelStoreMissing(t *testing.T) {
	st := New(Config{Dir: filepath.Join(t.TempDir(), "never-created")})
	if st.Has("m") {
		t.Fatal("Has on missing dir")
	}
	if _, err := st.LoadLatest("m"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v, want ErrNotFound", err)
	}
	if v := st.Versions("m"); v != nil {
		t.Fatalf("Versions = %v", v)
	}
	if models := st.Models(); models != nil {
		t.Fatalf("Models = %v", models)
	}
}

// TestModelStoreRetainNegativeKeepsAll pins the keep-everything knob.
func TestModelStoreRetainNegativeKeepsAll(t *testing.T) {
	d, ens := fixture(t, 2)
	st := New(Config{Dir: t.TempDir(), Retain: -1})
	for v := int64(1); v <= 6; v++ {
		if err := st.Save("m", snapFor(v, 2, d, ens)); err != nil {
			t.Fatal(err)
		}
	}
	if got := st.Versions("m"); len(got) != 6 {
		t.Fatalf("Versions = %v, want all 6", got)
	}
}
