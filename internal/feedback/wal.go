package feedback

import (
	"encoding/binary"
	"hash/crc32"
	"math"
)

// WAL frame layout. Every labelled row is one self-describing frame:
//
//	[4 bytes] payload length (uint32 LE)
//	[4 bytes] CRC-32 (IEEE) of the payload (uint32 LE)
//	[payload] seq (uint64 LE) · label (int32 LE) · nfeat (uint32 LE) ·
//	          nfeat × feature value (float64 bits, LE)
//
// The length+CRC header is what makes replay self-terminating: a torn
// tail — a partial header, a length pointing past EOF, a payload whose
// CRC does not match — is not an error but the exact signature of a
// crash mid-write, and replay truncates the log at the last frame whose
// checksum verified. The record sequence number inside the payload makes
// frames idempotent across checkpoint compaction: a crash between
// checkpoint publication and log truncation leaves already-checkpointed
// frames in the log, and replay skips every frame whose seq is below the
// checkpoint's high-water mark.
const (
	frameHeaderSize = 8
	// payloadFixed is the payload size before the feature values.
	payloadFixed = 8 + 4 + 4
	// maxFeatures bounds a frame's feature count so a corrupt length
	// field can never make replay allocate gigabytes.
	maxFeatures = 1 << 16
	maxPayload  = payloadFixed + 8*maxFeatures
)

// record is one decoded WAL frame: a labelled feature row plus its store
// sequence number.
type record struct {
	seq   uint64
	label int32
	row   []float64
}

// appendFrame encodes rec as one frame and appends it to buf.
func appendFrame(buf []byte, rec record) []byte {
	payload := make([]byte, payloadFixed+8*len(rec.row))
	binary.LittleEndian.PutUint64(payload[0:8], rec.seq)
	binary.LittleEndian.PutUint32(payload[8:12], uint32(rec.label))
	binary.LittleEndian.PutUint32(payload[12:16], uint32(len(rec.row)))
	for i, v := range rec.row {
		binary.LittleEndian.PutUint64(payload[payloadFixed+8*i:], math.Float64bits(v))
	}
	var hdr [frameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// frameSize returns the encoded size of a frame holding nfeat features.
func frameSize(nfeat int) int { return frameHeaderSize + payloadFixed + 8*nfeat }

// decodeFrame parses the frame starting at buf[off:]. It returns the
// decoded record and the offset of the next frame. ok is false when the
// bytes at off are not a complete, checksum-valid frame — the torn-tail
// signal that ends a replay scan; it is never an error.
func decodeFrame(buf []byte, off int) (rec record, next int, ok bool) {
	if off+frameHeaderSize > len(buf) {
		return record{}, 0, false
	}
	n := int(binary.LittleEndian.Uint32(buf[off : off+4]))
	crc := binary.LittleEndian.Uint32(buf[off+4 : off+8])
	if n < payloadFixed || n > maxPayload || off+frameHeaderSize+n > len(buf) {
		return record{}, 0, false
	}
	payload := buf[off+frameHeaderSize : off+frameHeaderSize+n]
	if crc32.ChecksumIEEE(payload) != crc {
		return record{}, 0, false
	}
	nfeat := int(binary.LittleEndian.Uint32(payload[12:16]))
	if nfeat > maxFeatures || payloadFixed+8*nfeat != n {
		return record{}, 0, false
	}
	rec.seq = binary.LittleEndian.Uint64(payload[0:8])
	rec.label = int32(binary.LittleEndian.Uint32(payload[8:12]))
	rec.row = make([]float64, nfeat)
	for i := range rec.row {
		rec.row[i] = math.Float64frombits(binary.LittleEndian.Uint64(payload[payloadFixed+8*i:]))
	}
	return rec, off + frameHeaderSize + n, true
}
