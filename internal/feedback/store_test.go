package feedback

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/netml/alefb/internal/faultinject"
)

// testRows returns n deterministic 2-feature rows with labels.
func testRows(n, from int) ([][]float64, []int) {
	rows := make([][]float64, n)
	labels := make([]int, n)
	for i := range rows {
		k := from + i
		rows[i] = []float64{float64(k) * 0.25, float64(k*k) * 0.125}
		labels[i] = k % 3
	}
	return rows, labels
}

// openAppend builds a store at dir holding the first n test records,
// appended one batch at a time.
func openAppend(t *testing.T, dir string, n int, cfg Config) *Store {
	t.Helper()
	cfg.Dir = dir
	st, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < n; i++ {
		rows, labels := testRows(1, i)
		if _, err := st.Append(rows, labels, 3); err != nil {
			t.Fatalf("Append record %d: %v", i, err)
		}
	}
	return st
}

// prefixFingerprint is the fingerprint of a fresh memory store holding
// the first n test records — the oracle every replay is compared to.
func prefixFingerprint(t *testing.T, n int) uint64 {
	t.Helper()
	st, err := Open(Config{})
	if err != nil {
		t.Fatalf("Open memory store: %v", err)
	}
	rows, labels := testRows(n, 0)
	if _, err := st.Append(rows, labels, 3); err != nil {
		t.Fatalf("Append: %v", err)
	}
	return st.Fingerprint()
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := openAppend(t, dir, 7, Config{})
	want := st.Fingerprint()
	if st.Seq() != 7 || st.Len() != 7 || st.WALRecords() != 7 {
		t.Fatalf("seq=%d len=%d wal=%d, want 7/7/7", st.Seq(), st.Len(), st.WALRecords())
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	re, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if got := re.Fingerprint(); got != want {
		t.Fatalf("replayed fingerprint %x != original %x", got, want)
	}
	if got := prefixFingerprint(t, 7); got != want {
		t.Fatalf("durable fingerprint %x != memory-built %x", want, got)
	}
}

// TestKillAtEveryRecordBoundary truncates the WAL at each frame boundary
// — the on-disk image of a process killed between record commits — and
// asserts the replayed state is byte-identical to a store that only ever
// saw that prefix.
func TestKillAtEveryRecordBoundary(t *testing.T) {
	const n = 6
	src := t.TempDir()
	st := openAppend(t, src, n, Config{})
	st.Close()
	wal, err := os.ReadFile(filepath.Join(src, walFile))
	if err != nil {
		t.Fatal(err)
	}
	frame := frameSize(2)
	if len(wal) != n*frame {
		t.Fatalf("wal is %d bytes, want %d", len(wal), n*frame)
	}
	for k := 0; k <= n; k++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walFile), wal[:k*frame], 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := Open(Config{Dir: dir})
		if err != nil {
			t.Fatalf("boundary %d: reopen: %v", k, err)
		}
		if re.Len() != k {
			t.Fatalf("boundary %d: replayed %d rows", k, re.Len())
		}
		if got, want := re.Fingerprint(), prefixFingerprint(t, k); got != want {
			t.Fatalf("boundary %d: fingerprint %x != prefix oracle %x", k, got, want)
		}
		re.Close()
	}
}

// TestTornTailEveryByteOffset truncates the WAL at every byte offset
// inside the last frame — every possible torn final write — and asserts
// replay truncates cleanly back to the previous frame boundary with
// byte-identical state, and that the repaired store accepts new appends.
func TestTornTailEveryByteOffset(t *testing.T) {
	const n = 4
	src := t.TempDir()
	st := openAppend(t, src, n, Config{})
	st.Close()
	wal, err := os.ReadFile(filepath.Join(src, walFile))
	if err != nil {
		t.Fatal(err)
	}
	frame := frameSize(2)
	lastStart := (n - 1) * frame
	wantFP := prefixFingerprint(t, n-1)
	for cut := lastStart; cut < len(wal); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walFile), wal[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := Open(Config{Dir: dir})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		if got := re.Fingerprint(); got != wantFP {
			t.Fatalf("cut %d: fingerprint %x != %d-record oracle %x", cut, got, n-1, wantFP)
		}
		fi, err := os.Stat(filepath.Join(dir, walFile))
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() != int64(lastStart) {
			t.Fatalf("cut %d: wal is %d bytes after repair, want %d", cut, fi.Size(), lastStart)
		}
		// The repaired store must keep working: re-append the lost record.
		rows, labels := testRows(1, n-1)
		if _, err := re.Append(rows, labels, 3); err != nil {
			t.Fatalf("cut %d: append after repair: %v", cut, err)
		}
		if got := re.Fingerprint(); got != prefixFingerprint(t, n) {
			t.Fatalf("cut %d: post-repair append diverged", cut)
		}
		re.Close()
	}
}

// TestCorruptMiddleRecord flips one payload byte of an interior frame:
// replay must stop at the corruption and truncate, keeping the valid
// prefix only.
func TestCorruptMiddleRecord(t *testing.T) {
	const n = 5
	src := t.TempDir()
	st := openAppend(t, src, n, Config{})
	st.Close()
	walPath := filepath.Join(src, walFile)
	wal, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	frame := frameSize(2)
	wal[2*frame+frameHeaderSize+3] ^= 0xff // corrupt record 2's payload
	if err := os.WriteFile(walPath, wal, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(Config{Dir: src})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if re.Len() != 2 {
		t.Fatalf("replayed %d rows past a corrupt record 2", re.Len())
	}
	if got, want := re.Fingerprint(), prefixFingerprint(t, 2); got != want {
		t.Fatalf("fingerprint %x != 2-record oracle %x", got, want)
	}
}

func TestCompactionRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := openAppend(t, dir, 10, Config{CompactEvery: 4})
	want := st.Fingerprint()
	if st.Compactions() != 2 {
		t.Fatalf("compactions=%d, want 2", st.Compactions())
	}
	if st.WALRecords() != 2 {
		t.Fatalf("wal records=%d after compaction, want 2", st.WALRecords())
	}
	if _, err := os.Stat(filepath.Join(dir, checkpointFile)); err != nil {
		t.Fatalf("checkpoint missing: %v", err)
	}
	st.Close()
	re, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if got := re.Fingerprint(); got != want {
		t.Fatalf("fingerprint %x != %x after compaction replay", got, want)
	}
	if got := prefixFingerprint(t, 10); got != want {
		t.Fatalf("compacted state diverged from memory oracle")
	}
}

// TestCompactionCrashWindow simulates a crash between checkpoint
// publication and WAL truncation: the checkpoint already holds the first
// records and the log still lists them. Replay must skip the stale
// frames by sequence number and apply only the newer ones.
func TestCompactionCrashWindow(t *testing.T) {
	// Build the "before" log: 5 records, no compaction.
	a := t.TempDir()
	st := openAppend(t, a, 5, Config{CompactEvery: -1})
	st.Close()
	staleWAL, err := os.ReadFile(filepath.Join(a, walFile))
	if err != nil {
		t.Fatal(err)
	}
	// Build the "after" state: compacted at 5, then 2 more records.
	st2, err := Open(Config{Dir: a, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := st2.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	rows, labels := testRows(2, 5)
	if _, err := st2.Append(rows, labels, 3); err != nil {
		t.Fatal(err)
	}
	want := st2.Fingerprint()
	st2.Close()
	freshWAL, err := os.ReadFile(filepath.Join(a, walFile))
	if err != nil {
		t.Fatal(err)
	}
	ck, err := os.ReadFile(filepath.Join(a, checkpointFile))
	if err != nil {
		t.Fatal(err)
	}
	// Crash image: new checkpoint + the stale pre-compaction log with the
	// two new frames appended after it.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, checkpointFile), ck, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, walFile), append(append([]byte{}, staleWAL...), freshWAL...), 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatalf("reopen crash image: %v", err)
	}
	defer re.Close()
	if re.Len() != 7 {
		t.Fatalf("replayed %d rows, want 7", re.Len())
	}
	if got := re.Fingerprint(); got != want {
		t.Fatalf("fingerprint %x != post-compaction oracle %x", got, want)
	}
}

func TestWALFaultError(t *testing.T) {
	dir := t.TempDir()
	in := faultinject.New().WithWALFault(2, faultinject.Error)
	st := openAppend(t, dir, 2, Config{Fault: in})
	rows, labels := testRows(1, 2)
	// The fault is keyed by store sequence number, and a clean failure
	// does not advance the sequence, so every attempt at record 2 fails
	// identically — that determinism is the point of the injector.
	for attempt := 0; attempt < 2; attempt++ {
		if _, err := st.Append(rows, labels, 3); !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("attempt %d: err=%v, want injected", attempt, err)
		}
	}
	// A clean injected failure writes nothing and keeps the store usable:
	// not dirty, state unchanged, replay matches.
	if st.Len() != 2 {
		t.Fatalf("len=%d, want 2", st.Len())
	}
	want := st.Fingerprint()
	st.Close()
	re, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Fingerprint(); got != want {
		t.Fatalf("replay %x != in-memory %x", got, want)
	}
	// Without the injector the append goes through.
	if _, err := re.Append(rows, labels, 3); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
	if got := re.Fingerprint(); got != prefixFingerprint(t, 3) {
		t.Fatalf("post-reopen append diverged")
	}
}

func TestWALFaultTorn(t *testing.T) {
	dir := t.TempDir()
	in := faultinject.New().WithWALFault(3, faultinject.Panic)
	st := openAppend(t, dir, 3, Config{Fault: in})
	rows, labels := testRows(1, 3)
	if _, err := st.Append(rows, labels, 3); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("torn append err=%v, want injected", err)
	}
	// The store is dirty: the log holds a torn frame it cannot account for.
	if _, err := st.Append(rows, labels, 3); !errors.Is(err, ErrDirty) {
		t.Fatalf("append after torn write err=%v, want ErrDirty", err)
	}
	if st.Len() != 3 {
		t.Fatalf("torn write acknowledged: len=%d", st.Len())
	}
	st.Close()
	// The log really is torn on disk.
	fi, err := os.Stat(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() <= int64(3*frameSize(2)) || fi.Size() >= int64(4*frameSize(2)) {
		t.Fatalf("wal size %d does not show a torn 4th frame", fi.Size())
	}
	// Reopen repairs: truncate the torn tail, keep the 3 good records.
	re, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got, want := re.Fingerprint(), prefixFingerprint(t, 3); got != want {
		t.Fatalf("repaired fingerprint %x != 3-record oracle %x", got, want)
	}
	if _, err := re.Append(rows, labels, 3); err != nil {
		t.Fatalf("append after repair: %v", err)
	}
}

func TestFsyncFault(t *testing.T) {
	dir := t.TempDir()
	in := faultinject.New().WithFsyncFault(1)
	st := openAppend(t, dir, 1, Config{Fault: in})
	rows, labels := testRows(1, 1)
	if _, err := st.Append(rows, labels, 3); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("fsync-faulted append err=%v, want injected", err)
	}
	if st.Len() != 1 {
		t.Fatalf("unsynced append acknowledged: len=%d", st.Len())
	}
	if _, err := st.Append(rows, labels, 3); !errors.Is(err, ErrDirty) {
		t.Fatalf("append after fsync failure err=%v, want ErrDirty", err)
	}
	st.Close()
}

func TestReplayFault(t *testing.T) {
	dir := t.TempDir()
	st := openAppend(t, dir, 3, Config{})
	st.Close()
	in := faultinject.New().WithWALReplayFault(1)
	if _, err := Open(Config{Dir: dir, Fault: in}); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("replay fault err=%v, want injected", err)
	}
}

func TestMemoryStore(t *testing.T) {
	st, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Durable() {
		t.Fatal("memory store claims durability")
	}
	rows, labels := testRows(4, 0)
	if _, err := st.Append(rows, labels, 3); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 4 || st.Seq() != 4 {
		t.Fatalf("len=%d seq=%d", st.Len(), st.Seq())
	}
	w, wl := st.Window(2)
	if len(w) != 2 || len(wl) != 2 || w[0][0] != rows[2][0] {
		t.Fatalf("Window(2) returned wrong rows")
	}
	after, al := st.RowsAfter(3)
	if len(after) != 1 || len(al) != 1 || after[0][0] != rows[3][0] {
		t.Fatalf("RowsAfter(3) returned wrong rows")
	}
}

func TestAppendValidation(t *testing.T) {
	st, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append([][]float64{{1, 2}}, []int{0, 1}, 2); err == nil {
		t.Fatal("rows/labels mismatch accepted")
	}
	if _, err := st.Append([][]float64{{1, 2}}, []int{5}, 2); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	if _, err := st.Append([][]float64{{1, inf()}}, []int{0}, 2); err == nil {
		t.Fatal("non-finite row accepted")
	}
	if _, err := st.Append([][]float64{{1, 2}}, []int{1}, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append([][]float64{{1, 2, 3}}, []int{1}, 2); err == nil {
		t.Fatal("width flip accepted")
	}
}

func inf() float64 { return math.Inf(1) }
