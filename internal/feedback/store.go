// Package feedback is the durability layer of the always-on feedback
// service: an append-only store of operator-labelled rows that survives
// process crashes and replays deterministically.
//
// The design is a classic WAL + checkpoint pair, sized for the serving
// layer's ingestion path:
//
//   - Every labelled row is appended to a write-ahead log as a
//     length+CRC-framed record (wal.go) and fsynced before the append is
//     acknowledged — one fsync per Append batch, not per row.
//   - Replay tolerates a torn or corrupt tail: scanning stops at the
//     first frame that fails its checksum and the log is truncated back
//     to the last valid frame boundary, so a crash at any byte offset
//     recovers to the longest committed prefix.
//   - Once the log exceeds CompactEvery records the full state is
//     checkpointed with the repository's atomic temp+rename+fsync
//     machinery and the log is reset. Records carry monotone sequence
//     numbers, so a crash between checkpoint publication and log
//     truncation is harmless: replay skips frames below the checkpoint's
//     high-water mark.
//   - Failed writes poison the store. After any append, fsync or
//     checkpoint error the store marks itself dirty and refuses further
//     mutation — the on-disk bytes are in an unknown state and only a
//     reopen (which replays and repairs) may continue. This is the
//     fsync-failure-is-fatal rule; pretending a failed fsync succeeded is
//     how databases lose data.
//
// Determinism is the second contract: the store's state is a pure
// function of the sequence of acknowledged appends, and Fingerprint
// hashes a canonical binary encoding of that state, which is what the
// kill-and-replay suites compare byte for byte.
package feedback

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"sync"

	"github.com/netml/alefb/internal/faultinject"
)

// ErrDirty is returned by mutating calls after a write error left the
// on-disk state unknown. The only recovery is Close and re-Open, which
// replays the log and truncates whatever the failed write left behind.
var ErrDirty = errors.New("feedback: store dirty after failed write; reopen to recover")

const (
	walFile        = "wal.log"
	checkpointFile = "checkpoint.json"
)

// Config configures one Store.
type Config struct {
	// Dir is the durability directory (one store per directory). Empty
	// selects a memory-only store: same API and in-memory semantics, no
	// files, nothing survives the process — the zero-config mode tests
	// and WAL-less deployments use.
	Dir string
	// CompactEvery is the WAL record count that triggers checkpoint
	// compaction (default 1024; negative disables compaction).
	CompactEvery int
	// Fault is the test-only fault injector; nil injects nothing.
	Fault *faultinject.Injector
}

// checkpoint is the JSON image of the full store state at a sequence
// high-water mark. Go's JSON encoder renders float64 values in their
// shortest round-trippable form, so a load recovers every bit.
type checkpoint struct {
	Seq       int64       `json:"seq"`
	NFeatures int         `json:"n_features"`
	Rows      [][]float64 `json:"rows"`
	Labels    []int       `json:"labels"`
}

// Store is a durable append-only set of labelled feature rows. All
// methods are safe for concurrent use. Row slices handed out by Rows,
// RowsAfter and Window are immutable by contract — the store never
// mutates a row after acknowledging it, and callers must not either.
type Store struct {
	mu sync.Mutex

	dir          string
	wal          *os.File
	walRecords   int   // frames in the log since the last compaction
	goodOffset   int64 // log size after the last acknowledged write
	compactEvery int
	compactions  int64
	fsyncs       int // fsync call counter, keys fsync fault injection
	dirty        bool
	fault        *faultinject.Injector

	seq       int64 // total acknowledged records (checkpoint + log)
	nFeatures int   // fixed by the first row; -1 until then
	rows      [][]float64
	labels    []int
}

// Open opens (creating if needed) the store in cfg.Dir and replays it:
// checkpoint first, then every valid WAL frame, truncating a torn or
// corrupt tail back to the last valid frame boundary.
func Open(cfg Config) (*Store, error) {
	s := &Store{
		dir:          cfg.Dir,
		compactEvery: cfg.CompactEvery,
		fault:        cfg.Fault,
		nFeatures:    -1,
	}
	if s.compactEvery == 0 {
		s.compactEvery = 1024
	}
	if s.dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return nil, fmt.Errorf("feedback: open store: %w", err)
	}
	if err := s.loadCheckpoint(); err != nil {
		return nil, err
	}
	if err := s.replayWAL(); err != nil {
		if s.wal != nil {
			s.wal.Close()
		}
		return nil, err
	}
	return s, nil
}

// loadCheckpoint restores the compacted state, if any.
func (s *Store) loadCheckpoint() error {
	blob, err := os.ReadFile(filepath.Join(s.dir, checkpointFile))
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("feedback: read checkpoint: %w", err)
	}
	var ck checkpoint
	if err := json.Unmarshal(blob, &ck); err != nil {
		return fmt.Errorf("feedback: checkpoint corrupt: %w", err)
	}
	if ck.Seq != int64(len(ck.Rows)) || len(ck.Rows) != len(ck.Labels) {
		return fmt.Errorf("feedback: checkpoint inconsistent: seq %d over %d rows / %d labels",
			ck.Seq, len(ck.Rows), len(ck.Labels))
	}
	s.seq = ck.Seq
	s.rows = ck.Rows
	s.labels = ck.Labels
	if ck.Seq > 0 {
		s.nFeatures = ck.NFeatures
	}
	return nil
}

// replayWAL opens the log, applies every valid frame past the checkpoint
// high-water mark, and truncates the file at the last valid boundary.
func (s *Store) replayWAL() error {
	f, err := os.OpenFile(filepath.Join(s.dir, walFile), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return fmt.Errorf("feedback: open wal: %w", err)
	}
	s.wal = f
	buf, err := io.ReadAll(f)
	if err != nil {
		return fmt.Errorf("feedback: read wal: %w", err)
	}
	off, frame := 0, 0
	for {
		rec, next, ok := decodeFrame(buf, off)
		if !ok {
			break // torn or corrupt tail: truncate here
		}
		if s.fault.WALReplayFault(frame) {
			return fmt.Errorf("feedback: wal replay record %d: %w", frame, faultinject.ErrInjected)
		}
		frame++
		if rec.seq < uint64(s.seq) {
			// Stale frame from a crash between checkpoint publication and
			// log truncation: already folded into the checkpoint.
			off = next
			continue
		}
		if rec.seq != uint64(s.seq) || (s.nFeatures >= 0 && len(rec.row) != s.nFeatures) {
			break // sequence gap or width flip: corrupt, truncate here
		}
		if s.nFeatures < 0 {
			s.nFeatures = len(rec.row)
		}
		s.rows = append(s.rows, rec.row)
		s.labels = append(s.labels, int(rec.label))
		s.seq++
		s.walRecords++
		off = next
	}
	if int64(off) != int64(len(buf)) {
		if err := f.Truncate(int64(off)); err != nil {
			return fmt.Errorf("feedback: truncate torn wal tail: %w", err)
		}
		if err := s.fsync(f); err != nil {
			return fmt.Errorf("feedback: sync truncated wal: %w", err)
		}
	}
	if _, err := f.Seek(int64(off), io.SeekStart); err != nil {
		return fmt.Errorf("feedback: seek wal: %w", err)
	}
	s.goodOffset = int64(off)
	return nil
}

// fsync syncs f, honoring injected fsync faults. An injected fault does
// not sync: the caller must treat the write as lost.
func (s *Store) fsync(f *os.File) error {
	n := s.fsyncs
	s.fsyncs++
	if s.fault.FsyncFault(n) {
		return fmt.Errorf("feedback: fsync %d: %w", n, faultinject.ErrInjected)
	}
	return f.Sync()
}

// Append validates and durably appends a batch of labelled rows,
// returning the store sequence number after the batch. The batch is
// framed record by record, written with one file write and one fsync,
// and acknowledged (applied to the in-memory state) only after the sync
// succeeds — a crash before the sync loses the whole batch, never half
// of it in memory. maxLabel bounds the labels (exclusive); pass the
// schema's class count, or 0 to skip the check.
func (s *Store) Append(rows [][]float64, labels []int, maxLabel int) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dirty {
		return s.seq, ErrDirty
	}
	if len(rows) != len(labels) {
		return s.seq, fmt.Errorf("feedback: %d rows but %d labels", len(rows), len(labels))
	}
	if len(rows) == 0 {
		return s.seq, nil
	}
	nf := s.nFeatures
	for i, row := range rows {
		if nf < 0 {
			nf = len(row)
		}
		if len(row) != nf || len(row) == 0 {
			return s.seq, fmt.Errorf("feedback: row %d has %d features, store has %d", i, len(row), nf)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return s.seq, fmt.Errorf("feedback: row %d column %d is not finite", i, j)
			}
		}
		if labels[i] < 0 || (maxLabel > 0 && labels[i] >= maxLabel) {
			return s.seq, fmt.Errorf("feedback: row %d label %d out of range [0, %d)", i, labels[i], maxLabel)
		}
	}

	if s.dir != "" {
		var buf []byte
		for i, row := range rows {
			seq := s.seq + int64(i)
			switch s.fault.WALFault(int(seq)) {
			case faultinject.Error:
				// Clean injected failure before any byte of this batch is
				// written: the append fails whole, the store stays usable.
				return s.seq, fmt.Errorf("feedback: wal append record %d: %w", seq, faultinject.ErrInjected)
			case faultinject.Panic:
				// Torn write: the batch's earlier frames plus half of this
				// one reach the log, then the "process dies". The store is
				// dirty until a reopen replays and truncates the torn tail.
				torn := appendFrame(buf, record{seq: uint64(seq), label: int32(labels[i]), row: row})
				torn = torn[:len(buf)+frameSize(len(row))/2]
				_, _ = s.wal.Write(torn)
				s.dirty = true
				return s.seq, fmt.Errorf("feedback: wal append record %d torn: %w", seq, faultinject.ErrInjected)
			}
			buf = appendFrame(buf, record{seq: uint64(seq), label: int32(labels[i]), row: row})
		}
		if _, err := s.wal.Write(buf); err != nil {
			s.dirty = true
			return s.seq, fmt.Errorf("feedback: wal append: %w", err)
		}
		if err := s.fsync(s.wal); err != nil {
			s.dirty = true
			return s.seq, err
		}
		s.goodOffset += int64(len(buf))
		s.walRecords += len(rows)
	}

	s.nFeatures = nf
	for i, row := range rows {
		cp := make([]float64, len(row))
		copy(cp, row)
		s.rows = append(s.rows, cp)
		s.labels = append(s.labels, labels[i])
	}
	s.seq += int64(len(rows))

	if s.dir != "" && s.compactEvery > 0 && s.walRecords >= s.compactEvery {
		if err := s.compactLocked(); err != nil {
			return s.seq, err
		}
	}
	return s.seq, nil
}

// Compact forces a checkpoint compaction: the full state is written to a
// temp file, fsynced, renamed over the checkpoint, the directory synced,
// and the WAL reset to empty. A crash anywhere in that sequence is safe —
// before the rename the old checkpoint plus the full log replay the same
// state; after it, stale log frames are skipped by sequence number.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.dirty {
		return ErrDirty
	}
	if s.dir == "" {
		return nil
	}
	return s.compactLocked()
}

func (s *Store) compactLocked() error {
	ck := checkpoint{Seq: s.seq, NFeatures: s.nFeatures, Rows: s.rows, Labels: s.labels}
	if ck.Rows == nil {
		ck.Rows = [][]float64{}
	}
	if ck.Labels == nil {
		ck.Labels = []int{}
	}
	blob, err := json.Marshal(ck)
	if err != nil {
		return fmt.Errorf("feedback: encode checkpoint: %w", err)
	}
	tmp, err := os.CreateTemp(s.dir, checkpointFile+".tmp-*")
	if err != nil {
		return fmt.Errorf("feedback: checkpoint temp: %w", err)
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("feedback: write checkpoint: %w", err)
	}
	if err := s.fsync(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("feedback: close checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, checkpointFile)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("feedback: publish checkpoint: %w", err)
	}
	if dirF, err := os.Open(s.dir); err == nil {
		_ = s.fsync(dirF)
		dirF.Close()
	}
	// The checkpoint is durable; resetting the log is now safe. A failure
	// here dirties the store (the log content no longer matches the
	// bookkeeping), but replay stays correct either way: stale frames are
	// skipped by seq.
	if err := s.wal.Truncate(0); err != nil {
		s.dirty = true
		return fmt.Errorf("feedback: reset wal: %w", err)
	}
	if _, err := s.wal.Seek(0, io.SeekStart); err != nil {
		s.dirty = true
		return fmt.Errorf("feedback: seek wal: %w", err)
	}
	if err := s.fsync(s.wal); err != nil {
		s.dirty = true
		return err
	}
	s.walRecords = 0
	s.goodOffset = 0
	s.compactions++
	return nil
}

// Close releases the WAL file handle. The store must not be used after.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal != nil {
		err := s.wal.Close()
		s.wal = nil
		return err
	}
	return nil
}

// Len returns the number of acknowledged rows.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.rows)
}

// Seq returns the store sequence number: total rows ever acknowledged.
func (s *Store) Seq() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// WALRecords returns the frames in the log since the last compaction.
func (s *Store) WALRecords() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.walRecords
}

// Compactions returns how many checkpoint compactions have run.
func (s *Store) Compactions() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactions
}

// Durable reports whether the store is backed by a directory.
func (s *Store) Durable() bool { return s.dir != "" }

// Rows returns all acknowledged rows and labels. The returned slices are
// stable snapshots: later appends never mutate them.
func (s *Store) Rows() ([][]float64, []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rows[:len(s.rows):len(s.rows)], s.labels[:len(s.labels):len(s.labels)]
}

// RowsAfter returns the rows with sequence number >= n — the suffix a
// retrain folds in on top of a snapshot that already contains the first
// n store rows.
func (s *Store) RowsAfter(n int64) ([][]float64, []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n < 0 {
		n = 0
	}
	if n > int64(len(s.rows)) {
		n = int64(len(s.rows))
	}
	return s.rows[n:len(s.rows):len(s.rows)], s.labels[n:len(s.labels):len(s.labels)]
}

// Window returns the most recent n rows (fewer when the store is
// shorter) — the drift monitor's sliding window.
func (s *Store) Window(n int) ([][]float64, []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n <= 0 || n > len(s.rows) {
		n = len(s.rows)
	}
	lo := len(s.rows) - n
	return s.rows[lo:len(s.rows):len(s.rows)], s.labels[lo:len(s.labels):len(s.labels)]
}

// Fingerprint hashes the canonical binary encoding of the full store
// state (sequence number, feature width, every row's float64 bits and
// label). Two stores with equal fingerprints hold byte-identical state;
// the kill-and-replay suites assert exactly this across crash points.
func (s *Store) Fingerprint() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	h := fnv.New64a()
	var b [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(b[:], v)
		h.Write(b[:])
	}
	put(uint64(s.seq))
	put(uint64(int64(s.nFeatures)))
	for i, row := range s.rows {
		for _, v := range row {
			put(math.Float64bits(v))
		}
		put(uint64(int64(s.labels[i])))
	}
	return h.Sum64()
}
