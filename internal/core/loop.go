package core

import (
	"errors"
	"fmt"

	"github.com/netml/alefb/internal/automl"
	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/rng"
)

// LoopConfig drives an iterative feedback campaign: the paper evaluates a
// single suggest-label-retrain round; in practice an operator repeats the
// cycle until the committee stops disagreeing or the labelling budget runs
// out. RunLoop implements that protocol.
type LoopConfig struct {
	// Rounds is the maximum number of feedback cycles (default 3).
	Rounds int
	// PerRound is the number of points suggested and labelled per cycle.
	PerRound int
	// AutoML is the search budget for each cycle's (re)training.
	AutoML automl.Config
	// Feedback configures the disagreement analysis.
	Feedback Config
	// Oracle labels the suggested points.
	Oracle Oracle
	// StopStd ends the campaign early once the largest committee
	// disagreement falls below this value; 0 disables early stopping.
	StopStd float64
	// Seed drives sampling.
	Seed uint64
}

// LoopRound records one cycle of the campaign.
type LoopRound struct {
	// Round counts from 1.
	Round int
	// Ensemble is the model trained at the start of the round.
	Ensemble *automl.Ensemble
	// Feedback is the disagreement analysis of that ensemble.
	Feedback *Feedback
	// Added is the number of points labelled and appended this round.
	Added int
	// TrainSize is the training-set size the ensemble saw.
	TrainSize int
	// PeakStd is the largest per-feature committee disagreement.
	PeakStd float64
}

// LoopResult is the campaign outcome.
type LoopResult struct {
	Rounds []LoopRound
	// Final is the ensemble trained on all accumulated data.
	Final *automl.Ensemble
	// Train is the augmented training set after all rounds.
	Train *data.Dataset
	// Converged reports whether StopStd ended the campaign early.
	Converged bool
}

// RunLoop runs up to cfg.Rounds suggest-label-retrain cycles of Within
// feedback, accumulating the suggested points into the training set.
func RunLoop(train *data.Dataset, cfg LoopConfig) (*LoopResult, error) {
	if cfg.Oracle == nil {
		return nil, errors.New("core: RunLoop needs an oracle")
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 3
	}
	if cfg.PerRound <= 0 {
		return nil, errors.New("core: RunLoop needs PerRound > 0")
	}
	r := rng.New(cfg.Seed ^ 0x100b)
	cur := train.Clone()
	res := &LoopResult{}

	for round := 1; round <= cfg.Rounds; round++ {
		mlCfg := cfg.AutoML
		mlCfg.Seed = cfg.AutoML.Seed + uint64(round)*131
		ens, err := automl.Run(cur, mlCfg)
		if err != nil {
			return nil, fmt.Errorf("core: loop round %d: %w", round, err)
		}
		fb, err := Compute(WithinCommittee(ens), cur, cfg.Feedback)
		if err != nil {
			return nil, fmt.Errorf("core: loop round %d feedback: %w", round, err)
		}
		peak := 0.0
		for _, fa := range fb.Analyses {
			if fa.PeakStd > peak {
				peak = fa.PeakStd
			}
		}
		lr := LoopRound{
			Round:     round,
			Ensemble:  ens,
			Feedback:  fb,
			TrainSize: cur.Len(),
			PeakStd:   peak,
		}
		res.Final = ens
		if cfg.StopStd > 0 && peak < cfg.StopStd {
			res.Rounds = append(res.Rounds, lr)
			res.Converged = true
			break
		}
		pts := fb.Sample(cfg.PerRound, r)
		for _, x := range pts {
			cur.Append(x, cfg.Oracle.Label(x))
		}
		lr.Added = len(pts)
		res.Rounds = append(res.Rounds, lr)
		if len(pts) == 0 {
			res.Converged = true
			break
		}
	}
	// Final refit on everything collected.
	mlCfg := cfg.AutoML
	mlCfg.Seed = cfg.AutoML.Seed + 997
	final, err := automl.Run(cur, mlCfg)
	if err != nil {
		return nil, fmt.Errorf("core: loop final fit: %w", err)
	}
	res.Final = final
	res.Train = cur
	return res, nil
}
