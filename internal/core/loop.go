package core

import (
	"context"
	"errors"
	"fmt"
	"io"

	"github.com/netml/alefb/internal/automl"
	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/faultinject"
	"github.com/netml/alefb/internal/rng"
)

// LoopConfig drives an iterative feedback campaign: the paper evaluates a
// single suggest-label-retrain round; in practice an operator repeats the
// cycle until the committee stops disagreeing or the labelling budget runs
// out. RunLoop implements that protocol.
type LoopConfig struct {
	// Rounds is the maximum number of feedback cycles (default 3).
	Rounds int
	// PerRound is the number of points suggested and labelled per cycle.
	PerRound int
	// AutoML is the search budget for each cycle's (re)training.
	AutoML automl.Config
	// Feedback configures the disagreement analysis.
	Feedback Config
	// Oracle labels the suggested points.
	Oracle Oracle
	// StopStd ends the campaign early once the largest committee
	// disagreement falls below this value; 0 disables early stopping.
	StopStd float64
	// Log, when non-nil, receives one line per degradation event.
	Log io.Writer
	// Fault is the test-only fault injector; nil injects nothing. Unit n
	// of the loop is round n's retrain (rounds count from 1); unit 0 is
	// the final refit.
	Fault *faultinject.Injector
	// Seed drives sampling.
	Seed uint64
}

// LoopRound records one cycle of the campaign.
type LoopRound struct {
	// Round counts from 1.
	Round int
	// Ensemble is the model trained at the start of the round.
	Ensemble *automl.Ensemble
	// Feedback is the disagreement analysis of that ensemble.
	Feedback *Feedback
	// Added is the number of points labelled and appended this round.
	Added int
	// TrainSize is the training-set size the ensemble saw.
	TrainSize int
	// PeakStd is the largest per-feature committee disagreement.
	PeakStd float64
}

// LoopResult is the campaign outcome.
type LoopResult struct {
	Rounds []LoopRound
	// Final is the ensemble trained on all accumulated data — or, on a
	// degraded campaign, the last round's ensemble.
	Final *automl.Ensemble
	// Train is the augmented training set after all rounds.
	Train *data.Dataset
	// Converged reports whether StopStd ended the campaign early.
	Converged bool
	// Degraded reports that a retrain or feedback computation failed after
	// the first round and the campaign fell back to its last good state
	// instead of aborting. Final then holds the last successful ensemble
	// and Rounds the cycles that completed.
	Degraded bool
	// DegradedReason describes the failure that triggered degradation.
	DegradedReason string
}

// RunLoop runs up to cfg.Rounds suggest-label-retrain cycles of Within
// feedback, accumulating the suggested points into the training set.
func RunLoop(train *data.Dataset, cfg LoopConfig) (*LoopResult, error) {
	return RunLoopCtx(context.Background(), train, cfg)
}

// RunLoopCtx is RunLoop under a hard deadline (ctx expiry aborts with
// ctx.Err()) and with graceful degradation: a failure in round 1 is fatal
// — there is no previous state to fall back to — but a retrain or
// feedback failure in a later round, or in the final refit, ends the
// campaign with the previous round's ensemble, Degraded set, and a nil
// error. An operator halfway through a labelling campaign keeps the
// rounds already paid for.
func RunLoopCtx(ctx context.Context, train *data.Dataset, cfg LoopConfig) (*LoopResult, error) {
	if cfg.Oracle == nil {
		return nil, errors.New("core: RunLoop needs an oracle")
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 3
	}
	if cfg.PerRound <= 0 {
		return nil, errors.New("core: RunLoop needs PerRound > 0")
	}
	logf := func(format string, args ...interface{}) {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, format+"\n", args...)
		}
	}
	// abortive reports failures that must not degrade: context expiry is
	// the caller's deadline, not a model failure.
	abortive := func(err error) bool {
		return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
	}
	r := rng.New(cfg.Seed ^ 0x100b)
	cur := train.Clone()
	res := &LoopResult{}

	for round := 1; round <= cfg.Rounds; round++ {
		mlCfg := cfg.AutoML
		mlCfg.Seed = cfg.AutoML.Seed + uint64(round)*131
		var ens *automl.Ensemble
		var err error
		if cfg.Fault.UnitFails(round) {
			err = faultinject.ErrInjected
		} else {
			ens, err = automl.RunCtx(ctx, cur, mlCfg)
		}
		var fb *Feedback
		if err == nil {
			fb, err = ComputeCtx(ctx, WithinCommittee(ens), cur, cfg.Feedback)
		}
		if err != nil {
			if abortive(err) {
				return nil, err
			}
			if round == 1 {
				return nil, fmt.Errorf("core: loop round %d: %w", round, err)
			}
			res.Degraded = true
			res.DegradedReason = fmt.Sprintf("round %d failed: %v", round, err)
			res.Train = cur
			logf("core: loop degraded, keeping round %d ensemble: %v", round-1, err)
			return res, nil
		}
		peak := 0.0
		for _, fa := range fb.Analyses {
			if fa.PeakStd > peak {
				peak = fa.PeakStd
			}
		}
		lr := LoopRound{
			Round:     round,
			Ensemble:  ens,
			Feedback:  fb,
			TrainSize: cur.Len(),
			PeakStd:   peak,
		}
		res.Final = ens
		if cfg.StopStd > 0 && peak < cfg.StopStd {
			res.Rounds = append(res.Rounds, lr)
			res.Converged = true
			break
		}
		pts := fb.Sample(cfg.PerRound, r)
		for _, x := range pts {
			cur.Append(x, cfg.Oracle.Label(x))
		}
		lr.Added = len(pts)
		res.Rounds = append(res.Rounds, lr)
		if len(pts) == 0 {
			res.Converged = true
			break
		}
	}
	// Final refit on everything collected. A failure here degrades to the
	// last round's ensemble: the suggestions are already labelled, and a
	// committee trained on most of the data beats no committee at all.
	mlCfg := cfg.AutoML
	mlCfg.Seed = cfg.AutoML.Seed + 997
	var final *automl.Ensemble
	var err error
	if cfg.Fault.UnitFails(0) {
		err = faultinject.ErrInjected
	} else {
		final, err = automl.RunCtx(ctx, cur, mlCfg)
	}
	if err != nil {
		if abortive(err) {
			return nil, err
		}
		res.Degraded = true
		res.DegradedReason = fmt.Sprintf("final refit failed: %v", err)
		logf("core: loop degraded, final refit failed, keeping last round ensemble: %v", err)
	} else {
		res.Final = final
	}
	res.Train = cur
	return res, nil
}
