package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"github.com/netml/alefb/internal/automl"
	"github.com/netml/alefb/internal/faultinject"
	"github.com/netml/alefb/internal/testutil"
)

// TestRunLoopDegradesOnLaterRoundFailure checks the campaign fallback: a
// retrain failure after round 1 keeps the rounds already paid for instead
// of aborting, with Final pointing at the last successful ensemble.
func TestRunLoopDegradesOnLaterRoundFailure(t *testing.T) {
	train, oracle := loopProblem(250, 1)
	cfg := LoopConfig{
		Rounds:   3,
		PerRound: 40,
		AutoML:   loopAutoML(7),
		Feedback: Config{Bins: 16, Classes: []int{1}},
		Oracle:   oracle,
		Fault:    faultinject.New().WithFailUnit(2),
		Seed:     9,
	}
	res, err := RunLoop(train, cfg)
	if err != nil {
		t.Fatalf("round-2 failure should degrade, not abort: %v", err)
	}
	if !res.Degraded {
		t.Fatal("Degraded not set")
	}
	if !strings.Contains(res.DegradedReason, "round 2") {
		t.Fatalf("DegradedReason = %q", res.DegradedReason)
	}
	if len(res.Rounds) != 1 {
		t.Fatalf("kept %d rounds, want 1", len(res.Rounds))
	}
	if res.Final != res.Rounds[0].Ensemble {
		t.Fatal("Final is not the last successful round's ensemble")
	}
	if res.Train == nil || res.Train.Len() <= train.Len() {
		t.Fatal("degraded result lost the labelled points")
	}
}

// TestRunLoopFirstRoundFailureIsFatal: with no previous state there is
// nothing to degrade to, so round 1 failures abort.
func TestRunLoopFirstRoundFailureIsFatal(t *testing.T) {
	train, oracle := loopProblem(250, 1)
	cfg := LoopConfig{
		Rounds:   2,
		PerRound: 40,
		AutoML:   loopAutoML(7),
		Feedback: Config{Bins: 16, Classes: []int{1}},
		Oracle:   oracle,
		Fault:    faultinject.New().WithFailUnit(1),
		Seed:     9,
	}
	if _, err := RunLoop(train, cfg); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("round-1 failure: err = %v, want ErrInjected", err)
	}
}

// TestRunLoopDegradesOnFinalRefitFailure: the final all-data refit is a
// bonus on top of the last round's ensemble; losing it degrades.
func TestRunLoopDegradesOnFinalRefitFailure(t *testing.T) {
	train, oracle := loopProblem(250, 1)
	cfg := LoopConfig{
		Rounds:   2,
		PerRound: 40,
		AutoML:   loopAutoML(7),
		Feedback: Config{Bins: 16, Classes: []int{1}},
		Oracle:   oracle,
		Fault:    faultinject.New().WithFailUnit(0), // unit 0 = final refit
		Seed:     9,
	}
	res, err := RunLoop(train, cfg)
	if err != nil {
		t.Fatalf("final-refit failure should degrade, not abort: %v", err)
	}
	if !res.Degraded || !strings.Contains(res.DegradedReason, "final refit") {
		t.Fatalf("Degraded=%v reason=%q", res.Degraded, res.DegradedReason)
	}
	last := res.Rounds[len(res.Rounds)-1]
	if res.Final != last.Ensemble {
		t.Fatal("Final is not the last round's ensemble")
	}
}

// TestRunLoopCtxDeadlineAborts: a caller deadline is not a model failure
// — it aborts with the context error even when degradation is possible.
func TestRunLoopCtxDeadlineAborts(t *testing.T) {
	defer testutil.LeakCheck(t)()
	train, oracle := loopProblem(250, 1)
	cfg := LoopConfig{
		Rounds:   3,
		PerRound: 40,
		AutoML:   loopAutoML(7),
		Feedback: Config{Bins: 16, Classes: []int{1}},
		Oracle:   oracle,
		Seed:     9,
	}
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := RunLoopCtx(ctx, train, cfg); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestComputeCtxCancelled checks the feedback computation honours
// cancellation at member boundaries.
func TestComputeCtxCancelled(t *testing.T) {
	train, _ := loopProblem(250, 1)
	ens, err := automl.Run(train, loopAutoML(7))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ComputeCtx(ctx, WithinCommittee(ens), train, Config{Bins: 16}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestCrossCommitteeCtxCancelled checks the cross-run committee stops on
// a cancelled context instead of launching all runs.
func TestCrossCommitteeCtxCancelled(t *testing.T) {
	train, _ := loopProblem(250, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := CrossCommitteeCtx(ctx, train, loopAutoML(7), 3); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
