package core

// Oracle-equality suites for the amortized interpretation engine: the
// committee-shaped memberShifts against a reimplementation of the seed's
// per-member serial loop, the ring-buffer window against the naive
// rebuild, and the curve cache against direct computation — all exact
// float64 equality, across worker counts and seeds.

import (
	"context"
	"errors"
	"math"
	"reflect"
	"sync"
	"testing"

	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/interpret"
	"github.com/netml/alefb/internal/ml"
	"github.com/netml/alefb/internal/rng"
)

// legacyMemberShift reimplements the seed's shift detection verbatim: one
// member at a time, per-(feature, class) interpret.ALE on both datasets
// with Workers forced to 1, linear interpolation of the new curve at the
// old grid. It is the oracle the committee-shaped memberShifts must
// match bit for bit.
func legacyMemberShift(t *testing.T, model ml.Classifier, oldTrain, newTrain *data.Dataset, fc Config) float64 {
	t.Helper()
	var worst float64
	for _, j := range fc.Features {
		for _, class := range fc.Classes {
			opt := interpret.Options{Bins: fc.Bins, Class: class, Workers: 1}
			oldC, err := interpret.ALE(model, oldTrain, j, opt)
			if errors.Is(err, interpret.ErrConstantFeature) {
				continue
			}
			if err != nil {
				t.Fatalf("legacy shift old: %v", err)
			}
			newC, err := interpret.ALE(model, newTrain, j, opt)
			if errors.Is(err, interpret.ErrConstantFeature) {
				continue
			}
			if err != nil {
				t.Fatalf("legacy shift new: %v", err)
			}
			var sum float64
			for i, x := range oldC.Grid {
				sum += math.Abs(oldC.Values[i] - interpAt(newC.Grid, newC.Values, x))
			}
			if d := sum / float64(len(oldC.Grid)); d > worst {
				worst = d
			}
		}
	}
	return worst
}

// TestMemberShiftsMatchesLegacy locks in bit-identity of the
// committee-shaped shift detection against the seed's per-member serial
// loop: three seeds, Workers 1 vs 8, with and without a primed old-side
// curve cache — every member's shift must be exactly equal.
func TestMemberShiftsMatchesLegacy(t *testing.T) {
	for _, seed := range []uint64{3, 11, 77} {
		train, ens := warmStartProblem(t, 120, seed)
		newTrain := shiftedTrain(train, 60, seed+99)
		models := ens.Models()
		fc := Config{Bins: 8}.withDefaults(ens.NumClasses, len(train.Schema.Features))

		want := make([]float64, len(models))
		for i, m := range models {
			want[i] = legacyMemberShift(t, m, train, newTrain, fc)
		}

		for _, workers := range []int{1, 8} {
			fcW := fc
			fcW.Workers = workers
			for _, withCache := range []bool{false, true} {
				var cache *CurveCache
				if withCache {
					cache = NewCurveCache(models, train)
					// Prime part of the cache, as /v1/ale traffic would.
					if _, err := cache.Committee(context.Background(), 0, interpret.MethodALE, interpret.Options{Bins: fc.Bins, Class: fc.Classes[0]}); err != nil {
						t.Fatal(err)
					}
				}
				got, err := memberShifts(context.Background(), models, train, newTrain, fcW, cache)
				if err != nil {
					t.Fatal(err)
				}
				for i := range models {
					if got[i] != want[i] {
						t.Fatalf("seed %d workers %d cache %v member %d: shift %v != legacy %v",
							seed, workers, withCache, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestWarmStartOldCurvesBitIdentity proves a warm start fed the
// snapshot's curve cache produces exactly the ensemble a cache-less warm
// start does: same report, bitwise-equal predictions.
func TestWarmStartOldCurvesBitIdentity(t *testing.T) {
	train, ens := warmStartProblem(t, 120, 3)
	newTrain := shiftedTrain(train, 60, 99)
	base := WarmStartConfig{
		Feedback:         Config{Bins: 8},
		ShiftTolerance:   1e-12,
		MaxRefitFraction: 1.0,
		RefitSeed:        7,
		Workers:          8,
	}
	plain, repPlain, err := WarmStartCtx(context.Background(), ens, train, newTrain, base)
	if err != nil {
		t.Fatal(err)
	}
	cached := base
	cached.OldCurves = NewCurveCache(ens.Models(), train)
	withCache, repCache, err := WarmStartCtx(context.Background(), ens, train, newTrain, cached)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(repPlain, repCache) {
		t.Fatalf("reports diverge: %+v vs %+v", repPlain, repCache)
	}
	for _, x := range [][]float64{{0.1, 0.2}, {0.45, 0.8}, {0.55, 0.1}, {0.9, 0.9}} {
		pa, pb := plain.PredictProba(x), withCache.PredictProba(x)
		for c := range pa {
			if pa[c] != pb[c] {
				t.Fatalf("cached warm start diverged at %v: %v vs %v", x, pa, pb)
			}
		}
	}
	// The first cached run populates the old-side entries (all misses); a
	// second warm start against the same snapshot reads them back.
	if _, misses := cached.OldCurves.Stats(); misses == 0 {
		t.Fatal("warm start never consulted the old-side curve cache")
	}
	if _, _, err := WarmStartCtx(context.Background(), ens, train, newTrain, cached); err != nil {
		t.Fatal(err)
	}
	if hits, _ := cached.OldCurves.Stats(); hits == 0 {
		t.Fatal("repeat warm start never hit the old-side curve cache")
	}
}

// TestWindowDisagreementDataMatchesCtx locks in equality of the
// dataset entry point (over a ring-buffer snapshot) with the seed's
// row-slice entry point, for full and partially filled rings.
func TestWindowDisagreementDataMatchesCtx(t *testing.T) {
	models := disagreeCommittee()
	schema := twoFeatureData(1, rng.New(1)).Schema
	cfg := Config{Bins: 8}
	rows, labels := windowRows(48, true)

	win := NewSlidingWindow(schema, 16)
	var snap *data.Dataset
	// Push in uneven batches; after each, the ring snapshot must evaluate
	// exactly like the seed path over the trailing window.
	for off := 0; off < len(rows); {
		n := 5
		if off+n > len(rows) {
			n = len(rows) - off
		}
		win.Push(rows[off:off+n], labels[off:off+n])
		off += n

		start := off - 16
		if start < 0 {
			start = 0
		}
		want, err := WindowDisagreementCtx(context.Background(), models, schema, rows[start:off], labels[start:off], 0.05, cfg)
		if err != nil {
			t.Fatal(err)
		}
		snap = win.Snapshot(snap)
		got, err := WindowDisagreementData(context.Background(), models, snap, 0.05, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("after %d rows: ring report %+v != seed report %+v", off, got, want)
		}
	}
}

// TestSlidingWindowMatchesNaive drives the ring with randomized batch
// sizes and checks every snapshot against the naive
// append-everything-take-the-tail oracle, including snapshot isolation
// from later pushes.
func TestSlidingWindowMatchesNaive(t *testing.T) {
	schema := twoFeatureData(1, rng.New(1)).Schema
	for _, seed := range []uint64{1, 2, 3} {
		r := rng.New(seed)
		const capRows = 12
		win := NewSlidingWindow(schema, capRows)
		var allRows [][]float64
		var allLabels []int
		var snap *data.Dataset
		for step := 0; step < 30; step++ {
			n := 1 + r.Intn(7) // batches of 1..7, crossing capacity repeatedly
			batch := make([][]float64, n)
			labels := make([]int, n)
			for i := range batch {
				batch[i] = []float64{r.Float64(), r.Float64()}
				labels[i] = r.Intn(2)
			}
			win.Push(batch, labels)
			allRows = append(allRows, batch...)
			allLabels = append(allLabels, labels...)

			if win.Total() != int64(len(allRows)) {
				t.Fatalf("total %d != pushed %d", win.Total(), len(allRows))
			}
			start := len(allRows) - capRows
			if start < 0 {
				start = 0
			}
			snap = win.Snapshot(snap)
			if snap.Len() != len(allRows)-start {
				t.Fatalf("snapshot %d rows, want %d", snap.Len(), len(allRows)-start)
			}
			for i := 0; i < snap.Len(); i++ {
				if !reflect.DeepEqual(snap.X[i], allRows[start+i]) || snap.Y[i] != allLabels[start+i] {
					t.Fatalf("step %d row %d: snapshot %v/%d != oracle %v/%d",
						step, i, snap.X[i], snap.Y[i], allRows[start+i], allLabels[start+i])
				}
			}
		}
		// A taken snapshot must not alias the ring: push more rows and the
		// old materialization is unchanged.
		frozen := win.Snapshot(nil)
		before := append([]float64(nil), frozen.X[0]...)
		win.Push([][]float64{{9, 9}, {8, 8}, {7, 7}}, []int{1, 1, 1})
		if !reflect.DeepEqual(frozen.X[0], before) {
			t.Fatal("snapshot aliases the ring: later push mutated it")
		}
		// Reset reprimes from a row slice, trimming to capacity.
		win.Reset(allRows, allLabels, int64(len(allRows)))
		snap = win.Snapshot(snap)
		start := len(allRows) - capRows
		for i := 0; i < snap.Len(); i++ {
			if !reflect.DeepEqual(snap.X[i], allRows[start+i]) {
				t.Fatalf("after Reset row %d: %v != %v", i, snap.X[i], allRows[start+i])
			}
		}
	}
}

// TestCurveCacheBitIdenticalAndStats: cached reads return exactly the
// directly computed curve (same computation, stored), and the hit/miss
// counters track lookups.
func TestCurveCacheBitIdenticalAndStats(t *testing.T) {
	models := disagreeCommittee()
	d := twoFeatureData(500, rng.New(4))
	cache := NewCurveCache(models, d)
	opt := interpret.Options{Bins: 8, Class: 1}

	direct, err := interpret.CommitteeCtx(context.Background(), models, d, 0, interpret.MethodALE, opt)
	if err != nil {
		t.Fatal(err)
	}
	first, err := cache.Committee(context.Background(), 0, interpret.MethodALE, opt)
	if err != nil {
		t.Fatal(err)
	}
	second, err := cache.Committee(context.Background(), 0, interpret.MethodALE, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(direct, first) || !reflect.DeepEqual(direct, second) {
		t.Fatal("cached curve differs from direct computation")
	}
	if hits, misses := cache.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("stats hits=%d misses=%d, want 1/1", hits, misses)
	}
	// Bins 0 normalizes to the default 32: two spellings, one entry.
	if _, err := cache.Committee(context.Background(), 1, interpret.MethodALE, interpret.Options{Bins: 0, Class: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := cache.Committee(context.Background(), 1, interpret.MethodALE, interpret.Options{Bins: 32, Class: 1}); err != nil {
		t.Fatal(err)
	}
	if hits, misses := cache.Stats(); hits != 2 || misses != 2 {
		t.Fatalf("normalized stats hits=%d misses=%d, want 2/2", hits, misses)
	}
	// Deterministic errors are cached too: a constant feature misses once
	// then hits.
	flat := data.New(d.Schema)
	for i := 0; i < 16; i++ {
		flat.Append([]float64{0.5, 0.5}, 0)
	}
	flatCache := NewCurveCache(models, flat)
	for i := 0; i < 2; i++ {
		if _, err := flatCache.Committee(context.Background(), 0, interpret.MethodALE, opt); !errors.Is(err, interpret.ErrConstantFeature) {
			t.Fatalf("call %d: err = %v, want ErrConstantFeature", i, err)
		}
	}
	if hits, misses := flatCache.Stats(); hits != 1 || misses != 1 {
		t.Fatalf("error-entry stats hits=%d misses=%d, want 1/1", hits, misses)
	}
}

// TestCurveCacheCancelNotCached: a context error must never poison the
// cache — the next caller recomputes and succeeds.
func TestCurveCacheCancelNotCached(t *testing.T) {
	models := disagreeCommittee()
	d := twoFeatureData(500, rng.New(4))
	cache := NewCurveCache(models, d)
	opt := interpret.Options{Bins: 8, Class: 1}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := cache.Committee(cancelled, 0, interpret.MethodALE, opt); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	cc, err := cache.Committee(context.Background(), 0, interpret.MethodALE, opt)
	if err != nil {
		t.Fatalf("recompute after cancel: %v", err)
	}
	if len(cc.Grid) == 0 {
		t.Fatal("recompute returned an empty curve")
	}
}

// TestCurveCacheSingleFlight: concurrent lookups of one key run the
// computation once; everyone gets the identical stored value.
func TestCurveCacheSingleFlight(t *testing.T) {
	models := disagreeCommittee()
	d := twoFeatureData(2000, rng.New(4))
	cache := NewCurveCache(models, d)
	opt := interpret.Options{Bins: 16, Class: 1}

	const goroutines = 16
	results := make([]interpret.CommitteeCurve, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cc, err := cache.Committee(context.Background(), 0, interpret.MethodALE, opt)
			if err != nil {
				t.Error(err)
				return
			}
			results[g] = cc
		}(g)
	}
	wg.Wait()
	if _, misses := cache.Stats(); misses != 1 {
		t.Fatalf("misses = %d, want 1 (single flight)", misses)
	}
	for g := 1; g < goroutines; g++ {
		if !reflect.DeepEqual(results[0], results[g]) {
			t.Fatalf("goroutine %d saw a different curve", g)
		}
	}
}
