package core

import (
	"testing"

	"github.com/netml/alefb/internal/ml"
	"github.com/netml/alefb/internal/rng"
)

// BenchmarkFeedbackCompute measures the end-to-end feedback analysis (all
// features, all classes) for a trained tree committee — the per-round cost
// of the paper's loop.
func BenchmarkFeedbackCompute(b *testing.B) {
	d := twoFeatureData(1000, rng.New(61))
	committee := []ml.Classifier{
		ml.NewRandomForest(15, 8),
		ml.NewExtraTrees(15, 8),
		ml.NewGBDT(ml.GBDTConfig{NumRounds: 15}),
	}
	for i, m := range committee {
		if err := m.Fit(d, rng.New(uint64(70+i))); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Compute(committee, d, Config{Bins: 24, Threshold: 0.1, Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
