package core

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"github.com/netml/alefb/internal/metrics"
	"github.com/netml/alefb/internal/ml"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// goldenRound is the serialized trace of one feedback-loop round: the
// flagged regions and the round model's held-out balanced accuracy.
// Floats are encoded with strconv 'g'/-1 so the file is bit-exact and
// diffs are meaningful.
type goldenRound struct {
	Round     int                 `json:"round"`
	TrainSize int                 `json:"train_size"`
	Added     int                 `json:"added"`
	PeakStd   string              `json:"peak_std"`
	Regions   map[string][]string `json:"regions"`
	Accuracy  string              `json:"balanced_accuracy"`
}

// TestLoopGolden locks the end-to-end feedback loop to a recorded trace:
// per-round flagged regions and balanced accuracy for a fixed seed. Any
// change to the RNG streams, the search, the ALE analysis or the interval
// extraction shows up here as a readable JSON diff. Regenerate the file
// with `go test ./internal/core/ -run LoopGolden -update` after an
// intentional behaviour change.
func TestLoopGolden(t *testing.T) {
	train, oracle := loopProblem(220, 5)
	test, _ := loopProblem(800, 6)
	res, err := RunLoop(train, LoopConfig{
		Rounds:   3,
		PerRound: 25,
		AutoML:   loopAutoML(11),
		Feedback: Config{Bins: 16, Classes: []int{1}},
		Oracle:   oracle,
		Seed:     99,
	})
	if err != nil {
		t.Fatal(err)
	}

	var got []goldenRound
	for _, lr := range res.Rounds {
		g := goldenRound{
			Round:     lr.Round,
			TrainSize: lr.TrainSize,
			Added:     lr.Added,
			PeakStd:   strconv.FormatFloat(lr.PeakStd, 'g', -1, 64),
			Regions:   map[string][]string{},
		}
		for _, fa := range lr.Feedback.Analyses {
			if !fa.Flagged() {
				continue
			}
			var ivs []string
			for _, iv := range fa.Intervals {
				txt, err := iv.MarshalText()
				if err != nil {
					t.Fatalf("round %d: marshal interval: %v", lr.Round, err)
				}
				ivs = append(ivs, string(txt))
			}
			g.Regions[fa.Name] = ivs
		}
		pred := ml.Predict(lr.Ensemble, test.X)
		acc := metrics.BalancedAccuracy(test.Schema.NumClasses(), test.Y, pred)
		g.Accuracy = strconv.FormatFloat(acc, 'g', -1, 64)
		got = append(got, g)
	}

	buf, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	buf = append(buf, '\n')

	path := filepath.Join("testdata", "loop_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d rounds)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to record the trace)", err)
	}
	if !bytes.Equal(buf, want) {
		t.Errorf("loop trace drifted from %s (rerun with -update if intended)\ngot:\n%s\nwant:\n%s", path, buf, want)
	}

	// The golden trace must not depend on the worker count: replay the
	// identical campaign with parallel search and compare in memory.
	cfgPar := LoopConfig{
		Rounds:   3,
		PerRound: 25,
		AutoML:   loopAutoML(11),
		Feedback: Config{Bins: 16, Classes: []int{1}, Workers: 8},
		Oracle:   oracle,
		Seed:     99,
	}
	cfgPar.AutoML.Workers = 8
	train2, _ := loopProblem(220, 5)
	res2, err := RunLoop(train2, cfgPar)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Rounds) != len(res.Rounds) {
		t.Fatalf("parallel replay: %d rounds vs %d", len(res2.Rounds), len(res.Rounds))
	}
	for i, lr := range res2.Rounds {
		if lr.PeakStd != res.Rounds[i].PeakStd || lr.TrainSize != res.Rounds[i].TrainSize || lr.Added != res.Rounds[i].Added {
			t.Errorf("parallel replay round %d diverges: peak %v vs %v", lr.Round, lr.PeakStd, res.Rounds[i].PeakStd)
		}
	}
}
