package core

// Drift monitoring and warm-start retraining for the always-on feedback
// service (ROADMAP item 3). The serving layer ingests labelled rows into
// a durable store (internal/feedback) and calls WindowDisagreementCtx
// over a sliding window of the most recent rows: the committee's
// Cross-ALE disagreement on fresh data is the drift signal — when the
// ensemble's members stop agreeing about how features drive the label on
// the data actually arriving, the served model has drifted off its
// training distribution. Past a configurable threshold the server
// retrains, preferring WarmStartCtx: refit only the committee members
// whose interpretation of the data shifted, fall back to a full AutoML
// search when too much of the committee moved.

import (
	"context"
	"errors"
	"fmt"
	"math"

	"github.com/netml/alefb/internal/automl"
	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/interpret"
	"github.com/netml/alefb/internal/ml"
	"github.com/netml/alefb/internal/parallel"
	"github.com/netml/alefb/internal/rng"
)

// minDriftWindow is the smallest window the monitor will analyse:
// quantile-binned ALE over fewer rows is dominated by noise, so shorter
// windows report zero drift instead of a meaningless number.
const minDriftWindow = 8

// DriftReport is the outcome of one sliding-window drift evaluation.
type DriftReport struct {
	// Rows is the window size actually analysed.
	Rows int
	// PeakStd is the committee's maximum Cross-ALE disagreement over all
	// features, classes and grid points of the window.
	PeakStd float64
	// Feature and Name identify the feature with the peak disagreement
	// (-1 / "" when the window had no analysable features).
	Feature int
	Name    string
	// Threshold echoes the configured trigger level.
	Threshold float64
	// Drifted reports PeakStd > Threshold.
	Drifted bool
}

// WindowDisagreementCtx computes the committee's Cross-ALE disagreement
// over a window of labelled rows and compares its peak to threshold. A
// window too small to analyse, or one where every feature is constant,
// reports zero drift rather than an error — no signal is not a failure.
// The computation is deterministic for fixed inputs and worker counts
// have no effect on the result (cfg.Workers only bounds parallelism).
func WindowDisagreementCtx(ctx context.Context, models []ml.Classifier, schema *data.Schema, rows [][]float64, labels []int, threshold float64, cfg Config) (DriftReport, error) {
	rep := DriftReport{Rows: len(rows), Feature: -1, Threshold: threshold}
	if len(rows) < minDriftWindow || len(models) < 2 {
		return rep, nil
	}
	d := data.New(schema)
	for i, row := range rows {
		if err := d.AppendRow(row, labels[i]); err != nil {
			return rep, fmt.Errorf("core: drift window row %d: %w", i, err)
		}
	}
	return WindowDisagreementData(ctx, models, d, threshold, cfg)
}

// WindowDisagreementData is WindowDisagreementCtx over an already-built
// window dataset. The debounced drift evaluator maintains its window as
// a ring buffer (SlidingWindow) and materializes snapshots into a reused
// dataset, so evaluations cost O(new rows) of copying instead of a full
// data.New + AppendRow rebuild per call; results are identical to the
// row-slice entry point for equal window contents.
func WindowDisagreementData(ctx context.Context, models []ml.Classifier, d *data.Dataset, threshold float64, cfg Config) (DriftReport, error) {
	rep := DriftReport{Rows: d.Len(), Feature: -1, Threshold: threshold}
	if d.Len() < minDriftWindow || len(models) < 2 {
		return rep, nil
	}
	// A huge fixed threshold disables both the median heuristic and
	// interval extraction: the monitor only needs the per-feature peak
	// disagreement, not flagged regions.
	cfg.Threshold = math.MaxFloat64
	fb, err := ComputeCtx(ctx, models, d, cfg)
	if errors.Is(err, ErrNoAnalysableFeatures) {
		return rep, nil
	}
	if err != nil {
		return rep, err
	}
	for _, fa := range fb.Analyses {
		if fa.PeakStd > rep.PeakStd {
			rep.PeakStd = fa.PeakStd
			rep.Feature = fa.Feature
			rep.Name = fa.Name
		}
	}
	rep.Drifted = rep.PeakStd > threshold
	return rep, nil
}

// WarmStartConfig controls a warm-start retrain.
type WarmStartConfig struct {
	// Feedback supplies the interpretation settings (bins, classes,
	// features, workers) used for shift detection.
	Feedback Config
	// ShiftTolerance is the mean absolute ALE delta (old training data vs
	// new, same member) above which a member counts as shifted and is
	// refitted. Default 0.02 — two probability points of mean movement.
	ShiftTolerance float64
	// MaxRefitFraction is the shifted fraction of the committee above
	// which warm start gives up and asks for a full retrain (default 0.5).
	MaxRefitFraction float64
	// RefitSeed keys the per-member refit rngs (rng.Derive(RefitSeed, i)),
	// so a warm start is bit-identical no matter how many workers run it
	// or which members shifted.
	RefitSeed uint64
	// Workers bounds refit parallelism (0 = GOMAXPROCS, 1 = serial).
	Workers int
	// OldCurves optionally memoizes the old-training-data committee
	// curves used for shift detection. It is consulted only when built
	// for exactly the committee and old training set being compared
	// (pointer identity) — the serving layer hands in the snapshot's
	// interpretation cache, so a drift retrain reuses the curves that
	// /v1/ale and /v1/regions requests already computed. Shift results
	// are bit-identical with or without it.
	OldCurves *CurveCache
}

func (c WarmStartConfig) withDefaults() WarmStartConfig {
	if c.ShiftTolerance <= 0 {
		c.ShiftTolerance = 0.02
	}
	if c.MaxRefitFraction <= 0 {
		c.MaxRefitFraction = 0.5
	}
	return c
}

// WarmStartReport describes what a warm start did.
type WarmStartReport struct {
	// Members is the committee size.
	Members int
	// Shifted lists the member indices whose ALE interpretation moved
	// beyond ShiftTolerance between the old and new training data.
	Shifted []int
	// MaxShift is the largest per-member shift observed.
	MaxShift float64
	// FellBack reports that the shifted fraction exceeded
	// MaxRefitFraction: the returned ensemble is nil and the caller must
	// run a full retrain.
	FellBack bool
}

// WarmStartCtx retrains an ensemble incrementally for new training data.
// For every committee member it compares the member's ALE curves on the
// old and the new training data (the same fitted model interpreted
// against both distributions — curve movement means the data shifted
// where that member is sensitive) and refits only the members whose mean
// absolute curve delta exceeds cfg.ShiftTolerance, from their existing
// specs with index-keyed seeds. Three outcomes:
//
//   - nothing shifted: the input ensemble is returned unchanged;
//   - some members shifted, fraction ≤ MaxRefitFraction: a new ensemble
//     with exactly those members refitted on newTrain is returned;
//   - too many shifted: (nil, report with FellBack=true, nil) — the
//     caller falls back to a full AutoML search.
//
// The result is a pure function of (ensemble description, oldTrain,
// newTrain, cfg): bit-identical across worker counts and across process
// restarts, which is what lets the crash-recovery suite re-run a warm
// start cold from a replayed feedback store and compare snapshots.
func WarmStartCtx(ctx context.Context, ens *automl.Ensemble, oldTrain, newTrain *data.Dataset, cfg WarmStartConfig) (*automl.Ensemble, WarmStartReport, error) {
	cfg = cfg.withDefaults()
	rep := WarmStartReport{Members: len(ens.Members)}
	if len(ens.Members) == 0 {
		return ens, rep, nil
	}
	fc := cfg.Feedback.withDefaults(ens.NumClasses, len(newTrain.Schema.Features))

	shifts, err := memberShifts(ctx, ens.Models(), oldTrain, newTrain, fc, cfg.OldCurves)
	if err != nil {
		return nil, rep, err
	}
	for i, s := range shifts {
		if s > rep.MaxShift {
			rep.MaxShift = s
		}
		if s > cfg.ShiftTolerance {
			rep.Shifted = append(rep.Shifted, i)
		}
	}
	if len(rep.Shifted) == 0 {
		return ens, rep, nil
	}
	if float64(len(rep.Shifted)) > cfg.MaxRefitFraction*float64(len(ens.Members)) {
		rep.FellBack = true
		return nil, rep, nil
	}

	// Refit the shifted members from their specs. The ensemble value is
	// copied so the caller's (possibly still-serving) ensemble is never
	// mutated; unshifted members keep their fitted models.
	next := *ens
	next.Members = append([]automl.Member(nil), ens.Members...)
	err = parallel.ForEachCtx(ctx, len(rep.Shifted), cfg.Workers, func(k int) error {
		i := rep.Shifted[k]
		m := automl.Build(next.Members[i].Spec)
		if err := m.Fit(newTrain, rng.Derive(cfg.RefitSeed, uint64(i))); err != nil {
			return fmt.Errorf("core: warm-start refit member %d (%s): %w", i, next.Members[i].Spec.String(), err)
		}
		next.Members[i].Model = m
		return nil
	})
	if err != nil {
		return nil, rep, err
	}
	return &next, rep, nil
}

// memberShifts measures how far every fitted member's ALE interpretation
// moves between two datasets: shifts[i] is the maximum over features and
// classes of the mean absolute difference between member i's old-data
// curve and its new-data curve. The two curves live on different
// quantile grids (grid edges are data-dependent and deduplicated), so
// the new curve is linearly interpolated at the old grid's positions
// before differencing. Features constant on either dataset contribute
// nothing — the quantile grid, and hence constancy, is a property of the
// dataset alone, so the skip is identical for every member.
//
// The computation is committee-shaped: for each (feature, class) pair
// the shared-grid committee curves on both datasets are computed once,
// fanning members out via internal/parallel with fc.Workers, instead of
// the seed's per-member serial loop that re-derived the same quantile
// grid len(models) times. Per-member curves are read back from
// CommitteeCurve.PerModel at the member's index, the same aleOnGrid
// output the serial loop produced, so shifts are bit-identical to the
// seed implementation for every worker count. When oldCurves matches
// (committee and old dataset by identity), old-side curves come from the
// cache — in the serving layer these are the exact curves /v1/ale
// already computed for the snapshot.
func memberShifts(ctx context.Context, models []ml.Classifier, oldTrain, newTrain *data.Dataset, fc Config, oldCurves *CurveCache) ([]float64, error) {
	shifts := make([]float64, len(models))
	useCache := oldCurves != nil && oldCurves.Dataset() == oldTrain && sameModels(oldCurves.Models(), models)
	for _, j := range fc.Features {
		for _, class := range fc.Classes {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			opt := interpret.Options{Bins: fc.Bins, Class: class, Workers: fc.Workers}
			var oldCC interpret.CommitteeCurve
			var err error
			if useCache {
				oldCC, err = oldCurves.Committee(ctx, j, interpret.MethodALE, opt)
			} else {
				oldCC, err = interpret.CommitteeCtx(ctx, models, oldTrain, j, interpret.MethodALE, opt)
			}
			if errors.Is(err, interpret.ErrConstantFeature) {
				continue
			}
			if err != nil {
				return nil, fmt.Errorf("core: shift feature %d class %d (old): %w", j, class, err)
			}
			newCC, err := interpret.CommitteeCtx(ctx, models, newTrain, j, interpret.MethodALE, opt)
			if errors.Is(err, interpret.ErrConstantFeature) {
				continue
			}
			if err != nil {
				return nil, fmt.Errorf("core: shift feature %d class %d (new): %w", j, class, err)
			}
			for m := range models {
				var sum float64
				for i, x := range oldCC.Grid {
					sum += math.Abs(oldCC.PerModel[m][i] - interpAt(newCC.Grid, newCC.PerModel[m], x))
				}
				if d := sum / float64(len(oldCC.Grid)); d > shifts[m] {
					shifts[m] = d
				}
			}
		}
	}
	return shifts, nil
}

// sameModels reports whether two committees hold the same classifiers in
// the same order (interface identity; classifiers are pointer types).
func sameModels(a, b []ml.Classifier) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// interpAt linearly interpolates the piecewise-linear curve (grid,
// values) at x, clamping outside the grid range. grid is ascending and
// non-empty.
func interpAt(grid, values []float64, x float64) float64 {
	n := len(grid)
	if x <= grid[0] {
		return values[0]
	}
	if x >= grid[n-1] {
		return values[n-1]
	}
	lo, hi := 0, n-1
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if grid[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	if grid[hi] == grid[lo] {
		return values[lo]
	}
	t := (x - grid[lo]) / (grid[hi] - grid[lo])
	return values[lo] + t*(values[hi]-values[lo])
}
