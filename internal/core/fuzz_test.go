package core

import (
	"math"
	"testing"
)

// FuzzMergeIntervals checks the invariants of the region merger under
// arbitrary (including degenerate, adjacent, overlapping and reversed)
// inputs of up to three intervals: output sorted and pairwise disjoint,
// idempotent under re-merging, and membership-preserving — every point
// covered before is covered after, and vice versa.
func FuzzMergeIntervals(f *testing.F) {
	// Degenerate point, adjacent (touching) ranges, overlap, reversed
	// bounds, duplicates, infinities.
	f.Add(0.5, 0.5, 0.2, 0.4, 0.4, 0.9)
	f.Add(0.0, 1.0, 1.0, 2.0, 2.0, 3.0)
	f.Add(0.0, 0.6, 0.4, 1.0, 0.5, 0.5)
	f.Add(0.9, 0.1, 3.0, 2.0, -1.0, -5.0)
	f.Add(0.3, 0.7, 0.3, 0.7, 0.3, 0.7)
	f.Add(math.Inf(-1), 0.0, 0.0, math.Inf(1), 1.0, 2.0)

	f.Fuzz(func(t *testing.T, lo1, hi1, lo2, hi2, lo3, hi3 float64) {
		in := []Interval{{lo1, hi1}, {lo2, hi2}, {lo3, hi3}}
		for _, iv := range in {
			if math.IsNaN(iv.Lo) || math.IsNaN(iv.Hi) {
				t.Skip("NaN bounds have no containment semantics")
			}
		}
		out := MergeIntervals(in)
		if len(out) == 0 {
			t.Fatalf("merge of %d intervals returned none", len(in))
		}
		for i, iv := range out {
			if iv.Lo > iv.Hi {
				t.Fatalf("out[%d] = %v is reversed", i, iv)
			}
			if i > 0 && out[i-1].Hi >= iv.Lo {
				t.Fatalf("out[%d-1]=%v and out[%d]=%v are not disjoint/sorted", i, out[i-1], i, iv)
			}
		}
		again := MergeIntervals(out)
		if len(again) != len(out) {
			t.Fatalf("not idempotent: %v -> %v", out, again)
		}
		for i := range out {
			if out[i] != again[i] {
				t.Fatalf("not idempotent: %v -> %v", out, again)
			}
		}
		// Membership: probe the bounds of every input and output interval
		// plus nearby points; coverage must be identical before and after.
		contains := func(ivs []Interval, v float64) bool {
			for _, iv := range ivs {
				lo, hi := iv.Lo, iv.Hi
				if lo > hi {
					lo, hi = hi, lo
				}
				if v >= lo && v <= hi {
					return true
				}
			}
			return false
		}
		var probes []float64
		for _, iv := range append(append([]Interval{}, in...), out...) {
			probes = append(probes, iv.Lo, iv.Hi, (iv.Lo+iv.Hi)/2,
				math.Nextafter(iv.Lo, math.Inf(-1)), math.Nextafter(iv.Hi, math.Inf(1)))
		}
		for _, v := range probes {
			if math.IsNaN(v) {
				continue
			}
			if contains(in, v) != contains(out, v) {
				t.Fatalf("coverage of %v changed: in=%v out=%v", v, contains(in, v), contains(out, v))
			}
		}
	})
}

// FuzzIntervalRoundTrip checks that MarshalText/UnmarshalText recover any
// non-NaN interval bit for bit, and that NaN bounds are rejected rather
// than silently corrupted.
func FuzzIntervalRoundTrip(f *testing.F) {
	f.Add(0.0, 0.0)
	f.Add(-0.0, 0.0)
	f.Add(1e-308, 1e308)
	f.Add(0.1, 0.30000000000000004)
	f.Add(math.Inf(-1), math.Inf(1))
	f.Add(math.NaN(), 1.0)

	f.Fuzz(func(t *testing.T, lo, hi float64) {
		iv := Interval{Lo: lo, Hi: hi}
		text, err := iv.MarshalText()
		if math.IsNaN(lo) || math.IsNaN(hi) {
			if err == nil {
				t.Fatalf("NaN interval marshalled to %q", text)
			}
			return
		}
		if err != nil {
			t.Fatalf("marshal %v: %v", iv, err)
		}
		var back Interval
		if err := back.UnmarshalText(text); err != nil {
			t.Fatalf("unmarshal %q: %v", text, err)
		}
		// Compare bit patterns so -0 vs 0 drift would be caught too.
		if math.Float64bits(back.Lo) != math.Float64bits(iv.Lo) ||
			math.Float64bits(back.Hi) != math.Float64bits(iv.Hi) {
			t.Fatalf("round trip %v -> %q -> %v is not bit-exact", iv, text, back)
		}
	})
}
