package core

import (
	"strings"
	"testing"

	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/ml"
	"github.com/netml/alefb/internal/rng"
)

func TestPerFeatureThresholds(t *testing.T) {
	r := rng.New(1)
	d := twoFeatureData(3000, r)
	committee := []ml.Classifier{
		&stepBoth{cut: 0.45},
		&stepBoth{cut: 0.55},
	}
	// With a global threshold both features flag; raising feature 1's
	// threshold to an unreachable level must unflag only feature 1.
	fb, err := Compute(committee, d, Config{Bins: 30, Threshold: 0.08, Classes: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(fb.Flagged()) != 2 {
		t.Fatalf("baseline flagged %d features, want 2", len(fb.Flagged()))
	}
	fb, err = Compute(committee, d, Config{
		Bins: 30, Threshold: 0.08, Classes: []int{1},
		FeatureThresholds: map[int]float64{1: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	flagged := fb.Flagged()
	if len(flagged) != 1 || flagged[0].Feature != 0 {
		t.Fatalf("per-feature threshold did not unflag feature 1: %+v", flagged)
	}
	// The per-feature threshold must be recorded and rendered.
	for _, fa := range fb.Analyses {
		switch fa.Feature {
		case 0:
			if fa.Threshold != 0.08 {
				t.Fatalf("feature 0 threshold %v", fa.Threshold)
			}
		case 1:
			if fa.Threshold != 10 {
				t.Fatalf("feature 1 threshold %v", fa.Threshold)
			}
		}
	}
	if !strings.Contains(fb.Explain(), "T=0.08") {
		t.Fatalf("Explain missing per-feature threshold:\n%s", fb.Explain())
	}
}

// stepBoth steps on both features at the same cut.
type stepBoth struct{ cut float64 }

func (s *stepBoth) Name() string                           { return "stepboth" }
func (s *stepBoth) Fit(d *data.Dataset, r *rng.Rand) error { return nil }
func (s *stepBoth) PredictProba(x []float64) []float64 {
	p := 0.2
	if x[0] > s.cut {
		p += 0.3
	}
	if x[1] > s.cut {
		p += 0.3
	}
	return []float64{1 - p, p}
}

func TestPrioritiesSteerSampling(t *testing.T) {
	r := rng.New(2)
	d := twoFeatureData(3000, r)
	committee := []ml.Classifier{
		&stepBoth{cut: 0.45},
		&stepBoth{cut: 0.55},
	}
	// De-prioritize feature 0 entirely: every suggestion must target
	// feature 1's flagged interval (feature 0 becomes a free variable,
	// uniform over its range).
	fb, err := Compute(committee, d, Config{
		Bins: 30, Threshold: 0.08, Classes: []int{1},
		Priorities: map[int]float64{0: 0, 1: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(fb.Flagged()) != 2 {
		t.Skipf("expected both features flagged, got %d", len(fb.Flagged()))
	}
	var f1Intervals []Interval
	for _, fa := range fb.Analyses {
		if fa.Feature == 1 {
			f1Intervals = fa.Intervals
		}
	}
	pts := fb.Sample(300, r)
	if len(pts) != 300 {
		t.Fatalf("sampled %d", len(pts))
	}
	inF1 := 0
	for _, x := range pts {
		for _, iv := range f1Intervals {
			if iv.Contains(x[1]) {
				inF1++
				break
			}
		}
	}
	// All samples should have feature 1 inside its flagged intervals;
	// feature 0 free means many samples fall outside feature 0's narrow
	// flagged band.
	if inF1 != 300 {
		t.Fatalf("only %d/300 samples target feature 1's regions", inF1)
	}
	outF0 := 0
	for _, x := range pts {
		if x[0] < 0.35 || x[0] > 0.65 {
			outF0++
		}
	}
	if outF0 == 0 {
		t.Fatal("feature 0 never sampled outside its band; priorities ignored")
	}
}

func TestAllZeroPrioritiesSampleNothing(t *testing.T) {
	r := rng.New(3)
	d := twoFeatureData(2000, r)
	fb, err := Compute(disagreeCommittee(), d, Config{
		Bins: 30, Threshold: 0.1, Classes: []int{1},
		Priorities: map[int]float64{0: 0, 1: 0},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := fb.Sample(10, r); got != nil {
		t.Fatalf("zero priorities sampled %d points", len(got))
	}
}

func TestNegativePrioritiesTreatedAsZero(t *testing.T) {
	r := rng.New(4)
	d := twoFeatureData(2000, r)
	fb, err := Compute(disagreeCommittee(), d, Config{
		Bins: 30, Threshold: 0.1, Classes: []int{1},
		Priorities: map[int]float64{0: -5},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Feature 0 is the only flagged one and its priority is negative:
	// nothing to sample.
	if got := fb.Sample(10, r); got != nil {
		t.Fatalf("negative priority sampled %d points", len(got))
	}
}

var _ ml.Classifier = (*stepBoth)(nil)
