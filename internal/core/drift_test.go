package core

import (
	"context"
	"testing"

	"github.com/netml/alefb/internal/automl"
	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/rng"
)

// windowRows returns n rows straddling the region where the fixture
// committee disagrees (feature 0 across the step cuts 0.4 and 0.6) when
// band is true, or entirely below both cuts — where the members' ALE
// curves coincide — when false.
func windowRows(n int, band bool) ([][]float64, []int) {
	rows := make([][]float64, n)
	labels := make([]int, n)
	for i := range rows {
		f := float64(i) / float64(n)
		x0 := 0.05 + 0.25*f // entirely below the 0.4 cut
		if band {
			x0 = 0.3 + 0.4*f // spans both cuts: the curves step apart
		}
		rows[i] = []float64{x0, f}
		labels[i] = i % 2
	}
	return rows, labels
}

func TestWindowDisagreementDrift(t *testing.T) {
	models := disagreeCommittee()
	schema := twoFeatureData(1, rng.New(1)).Schema
	cfg := Config{Bins: 8}

	rows, labels := windowRows(16, true)
	rep, err := WindowDisagreementCtx(context.Background(), models, schema, rows, labels, 0.05, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Drifted || rep.Name != "link_rate" || rep.Rows != 16 {
		t.Fatalf("band window report = %+v, want drift on link_rate over 16 rows", rep)
	}
	if rep.PeakStd <= 0.05 {
		t.Fatalf("band window peak std %.4f not above threshold", rep.PeakStd)
	}
	// The same evaluation again is bit-identical: the monitor is a pure
	// function of its inputs.
	rep2, err := WindowDisagreementCtx(context.Background(), models, schema, rows, labels, 0.05, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep2 != rep {
		t.Fatalf("drift evaluation not deterministic: %+v vs %+v", rep, rep2)
	}

	// Rows away from the cuts: the committee agrees, no drift.
	calm, calmLabels := windowRows(16, false)
	rep, err = WindowDisagreementCtx(context.Background(), models, schema, calm, calmLabels, 0.05, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Drifted {
		t.Fatalf("calm window reported drift: %+v", rep)
	}
}

func TestWindowDisagreementShortWindow(t *testing.T) {
	models := disagreeCommittee()
	schema := twoFeatureData(1, rng.New(1)).Schema
	rows, labels := windowRows(minDriftWindow-1, true)
	rep, err := WindowDisagreementCtx(context.Background(), models, schema, rows, labels, 1e-9, Config{Bins: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Drifted || rep.PeakStd != 0 || rep.Feature != -1 {
		t.Fatalf("short window report = %+v, want zero drift", rep)
	}
	// A constant window has no analysable features — zero drift, not an
	// error.
	flat := make([][]float64, 12)
	flatLabels := make([]int, 12)
	for i := range flat {
		flat[i] = []float64{0.5, 0.5}
	}
	rep, err = WindowDisagreementCtx(context.Background(), models, schema, flat, flatLabels, 1e-9, Config{Bins: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Drifted || rep.PeakStd != 0 {
		t.Fatalf("constant window report = %+v, want zero drift", rep)
	}
}

// warmStartProblem builds a learnable dataset and a small real ensemble
// over it.
func warmStartProblem(t *testing.T, n int, seed uint64) (*data.Dataset, *automl.Ensemble) {
	t.Helper()
	r := rng.New(seed)
	schema := &data.Schema{
		Features: []data.Feature{
			{Name: "x0", Min: 0, Max: 1},
			{Name: "x1", Min: 0, Max: 1},
		},
		Classes: []string{"a", "b"},
	}
	d := data.New(schema)
	for i := 0; i < n; i++ {
		x0, x1 := r.Float64(), r.Float64()
		y := 0
		if x0 > 0.5 {
			y = 1
		}
		d.Append([]float64{x0, x1}, y)
	}
	ens, err := automl.Run(d, automl.Config{MaxCandidates: 4, Generations: 1, EnsembleSize: 3, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return d, ens
}

// shiftedTrain appends rows drawn from a visibly different distribution
// (x0 compressed into the upper half, labels flipped in the band).
func shiftedTrain(train *data.Dataset, n int, seed uint64) *data.Dataset {
	r := rng.New(seed)
	next := train.Clone()
	for i := 0; i < n; i++ {
		x0 := 0.5 + 0.5*r.Float64()
		next.Append([]float64{x0, r.Float64()}, i%2)
	}
	return next
}

func TestWarmStartNoShiftReturnsInput(t *testing.T) {
	train, ens := warmStartProblem(t, 120, 3)
	got, rep, err := WarmStartCtx(context.Background(), ens, train, train, WarmStartConfig{Feedback: Config{Bins: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if got != ens {
		t.Fatal("identical data did not return the input ensemble unchanged")
	}
	if len(rep.Shifted) != 0 || rep.MaxShift != 0 || rep.FellBack {
		t.Fatalf("identical data report = %+v, want no shift", rep)
	}
}

func TestWarmStartRefitDeterministicAcrossWorkers(t *testing.T) {
	train, ens := warmStartProblem(t, 120, 3)
	newTrain := shiftedTrain(train, 60, 99)
	run := func(workers int) (*automl.Ensemble, WarmStartReport) {
		cfg := WarmStartConfig{
			Feedback:         Config{Bins: 8},
			ShiftTolerance:   1e-12, // everything counts as shifted
			MaxRefitFraction: 1.0,   // never fall back
			RefitSeed:        7,
			Workers:          workers,
		}
		got, rep, err := WarmStartCtx(context.Background(), ens, train, newTrain, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return got, rep
	}
	a, repA := run(1)
	b, repB := run(8)
	if len(repA.Shifted) != len(ens.Members) || len(repB.Shifted) != len(repA.Shifted) {
		t.Fatalf("shift detection diverged: %+v vs %+v", repA, repB)
	}
	if a == ens || b == ens {
		t.Fatal("refit returned the input ensemble")
	}
	probes := [][]float64{{0.1, 0.2}, {0.45, 0.8}, {0.55, 0.1}, {0.9, 0.9}}
	for _, x := range probes {
		pa, pb := a.PredictProba(x), b.PredictProba(x)
		for c := range pa {
			if pa[c] != pb[c] {
				t.Fatalf("refit not worker-count invariant at %v: %v vs %v", x, pa, pb)
			}
		}
	}
	// The caller's ensemble must not have been mutated: its members still
	// predict exactly what a freshly trained copy of the same search does.
	_, ens2 := warmStartProblem(t, 120, 3)
	for _, x := range probes {
		p0, p1 := ens.PredictProba(x), ens2.PredictProba(x)
		for c := range p0 {
			if p0[c] != p1[c] {
				t.Fatalf("warm start mutated the input ensemble at %v: %v vs %v", x, p0, p1)
			}
		}
	}
}

func TestWarmStartFallsBackWhenCommitteeMoves(t *testing.T) {
	train, ens := warmStartProblem(t, 120, 3)
	newTrain := shiftedTrain(train, 60, 99)
	cfg := WarmStartConfig{
		Feedback:       Config{Bins: 8},
		ShiftTolerance: 1e-12, // everything shifts, exceeding the default 0.5 fraction
		RefitSeed:      7,
	}
	got, rep, err := WarmStartCtx(context.Background(), ens, train, newTrain, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FellBack || got != nil {
		t.Fatalf("full-committee shift did not fall back: ens=%v report=%+v", got, rep)
	}
}
