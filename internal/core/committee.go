package core

import (
	"context"
	"fmt"

	"github.com/netml/alefb/internal/automl"
	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/ml"
	"github.com/netml/alefb/internal/parallel"
	"github.com/netml/alefb/internal/rng"
)

// Oracle labels suggested data points. In the paper's first setting
// ("the user has complete control and can collect any data") this is the
// Pantheon-like emulator; in the fixed-pool setting labels come from the
// candidate pool instead and no oracle is needed.
type Oracle interface {
	Label(x []float64) int
}

// OracleFunc adapts a function to the Oracle interface.
type OracleFunc func(x []float64) int

// Label implements Oracle.
func (f OracleFunc) Label(x []float64) int { return f(x) }

// WithinCommittee returns the committee for Within-ALE feedback: the
// individual models inside one AutoML ensemble (§3, main algorithm).
func WithinCommittee(e *automl.Ensemble) []ml.Classifier {
	return e.Models()
}

// CrossCommittee builds the committee for Cross-ALE feedback (§3,
// "Algorithm variants"): it runs AutoML `runs` times with distinct seeds
// and returns each run's full ensemble as one committee member. It also
// returns the ensembles so the caller can reuse the best one.
//
// The runs execute concurrently on base.Workers goroutines. Each run is
// fully determined by its own derived seed and committed at its run index,
// so the committee is bit-identical for any worker count. When more than
// one run executes at a time the runs themselves are forced serial
// (Workers=1) to keep total concurrency near base.Workers — a
// pure scheduling choice that, by the same determinism guarantee, cannot
// change any result.
func CrossCommittee(train *data.Dataset, base automl.Config, runs int) ([]ml.Classifier, []*automl.Ensemble, error) {
	return CrossCommitteeCtx(context.Background(), train, base, runs)
}

// CrossCommitteeCtx is CrossCommittee under a hard deadline: when ctx
// expires or is cancelled, in-flight AutoML runs stop at their next
// candidate boundary and the call returns ctx.Err().
func CrossCommitteeCtx(ctx context.Context, train *data.Dataset, base automl.Config, runs int) ([]ml.Classifier, []*automl.Ensemble, error) {
	if runs <= 0 {
		runs = 10 // the paper's evaluation uses 10 AutoML runs
	}
	ensembles, err := parallel.MapCtx(ctx, runs, base.Workers, func(i int) (*automl.Ensemble, error) {
		cfg := base
		cfg.Seed = base.Seed + uint64(i)*0x9e3779b97f4a7c15
		if runs > 1 && parallel.Workers(base.Workers) > 1 {
			cfg.Workers = 1
		}
		ens, err := automl.RunCtx(ctx, train, cfg)
		if err != nil {
			return nil, fmt.Errorf("core: AutoML run %d of %d: %w", i+1, runs, err)
		}
		return ens, nil
	})
	if err != nil {
		return nil, nil, err
	}
	committee := make([]ml.Classifier, 0, runs)
	for _, ens := range ensembles {
		committee = append(committee, ens)
	}
	return committee, ensembles, nil
}

// Suggest runs the complete feedback pipeline against a labelling oracle:
// it computes feedback for the committee, samples n points from the
// flagged subspaces, labels them with the oracle, and returns the
// suggested points as a dataset sharing train's schema, together with the
// feedback object for explanation. The returned dataset is empty (but
// non-nil) when the committee agrees everywhere.
func Suggest(committee []ml.Classifier, train *data.Dataset, cfg Config, n int, oracle Oracle, r *rng.Rand) (*data.Dataset, *Feedback, error) {
	fb, err := Compute(committee, train, cfg)
	if err != nil {
		return nil, nil, err
	}
	add := data.New(train.Schema)
	for _, x := range fb.Sample(n, r) {
		add.Append(x, oracle.Label(x))
	}
	return add, fb, nil
}

// SuggestFromPool runs the pool-restricted variant: instead of sampling
// fresh points it selects up to n pool rows that fall inside the flagged
// subspaces (labels come with the pool). The paper evaluates this as
// Within-ALE-Pool / Cross-ALE-Pool; the region intersection usually yields
// fewer than n points, which Table 1 reports in parentheses.
func SuggestFromPool(committee []ml.Classifier, train, pool *data.Dataset, cfg Config, n int, r *rng.Rand) (*data.Dataset, *Feedback, error) {
	fb, err := Compute(committee, train, cfg)
	if err != nil {
		return nil, nil, err
	}
	idx := fb.FilterPool(pool)
	if len(idx) > n {
		chosen := r.Sample(len(idx), n)
		sub := make([]int, n)
		for i, c := range chosen {
			sub[i] = idx[c]
		}
		idx = sub
	}
	return pool.Subset(idx), fb, nil
}
