package core

import (
	"strings"
	"testing"
	"testing/quick"

	"github.com/netml/alefb/internal/automl"
	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/ml"
	"github.com/netml/alefb/internal/rng"
)

// stepModel predicts P(class 1) = hi for x[feature] > cut else lo.
type stepModel struct {
	feature int
	cut     float64
	lo, hi  float64
}

func (s *stepModel) Name() string                           { return "step" }
func (s *stepModel) Fit(d *data.Dataset, r *rng.Rand) error { return nil }
func (s *stepModel) PredictProba(x []float64) []float64 {
	p := s.lo
	if x[s.feature] > s.cut {
		p = s.hi
	}
	return []float64{1 - p, p}
}

func twoFeatureData(n int, r *rng.Rand) *data.Dataset {
	schema := &data.Schema{
		Features: []data.Feature{
			{Name: "link_rate", Min: 0, Max: 1},
			{Name: "loss", Min: 0, Max: 1},
		},
		Classes: []string{"other", "scream"},
	}
	d := data.New(schema)
	for i := 0; i < n; i++ {
		d.Append([]float64{r.Float64(), r.Float64()}, r.Intn(2))
	}
	return d
}

// disagreeCommittee returns two models that disagree about feature 0 only
// between the two cut points.
func disagreeCommittee() []ml.Classifier {
	return []ml.Classifier{
		&stepModel{feature: 0, cut: 0.4, lo: 0.2, hi: 0.8},
		&stepModel{feature: 0, cut: 0.6, lo: 0.2, hi: 0.8},
	}
}

func TestComputeFlagsDisagreementRegion(t *testing.T) {
	r := rng.New(1)
	d := twoFeatureData(3000, r)
	// Threshold 0.1 sits between the centering spill-over (~0.06 std far
	// from the cuts) and the true disagreement between the cuts (~0.24).
	fb, err := Compute(disagreeCommittee(), d, Config{Bins: 40, Threshold: 0.1, Classes: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	flagged := fb.Flagged()
	if len(flagged) != 1 {
		t.Fatalf("flagged %d features, want 1 (got %+v)", len(flagged), flagged)
	}
	fa := flagged[0]
	if fa.Name != "link_rate" {
		t.Fatalf("flagged feature %q, want link_rate", fa.Name)
	}
	if len(fa.Intervals) == 0 {
		t.Fatal("no intervals")
	}
	// The disagreement lives between the cuts (0.4, 0.6); the flagged
	// union must cover the midpoint 0.5 and stay away from the extremes.
	covers := false
	for _, iv := range fa.Intervals {
		if iv.Contains(0.5) {
			covers = true
		}
		if iv.Contains(0.05) || iv.Contains(0.95) {
			t.Fatalf("interval %v covers agreement region", iv)
		}
	}
	if !covers {
		t.Fatalf("intervals %v do not cover disagreement midpoint", fa.Intervals)
	}
}

func TestComputeAgreementFlagsNothing(t *testing.T) {
	r := rng.New(2)
	d := twoFeatureData(1000, r)
	same := []ml.Classifier{
		&stepModel{feature: 0, cut: 0.5, lo: 0.2, hi: 0.8},
		&stepModel{feature: 0, cut: 0.5, lo: 0.2, hi: 0.8},
	}
	fb, err := Compute(same, d, Config{Bins: 20, Threshold: 0.01, Classes: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(fb.Flagged()); n != 0 {
		t.Fatalf("identical models flagged %d features", n)
	}
	if !strings.Contains(fb.Explain(), "agree everywhere") {
		t.Fatalf("Explain for agreement: %q", fb.Explain())
	}
	if fb.Sample(10, r) != nil {
		t.Fatal("Sample should return nil with nothing flagged")
	}
}

func TestMedianThresholdHeuristic(t *testing.T) {
	r := rng.New(3)
	d := twoFeatureData(2000, r)
	fb, err := Compute(disagreeCommittee(), d, Config{Bins: 30, Classes: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if fb.Threshold <= 0 {
		t.Fatalf("median threshold = %v", fb.Threshold)
	}
	// With a localized disagreement, the median std is below the peak, so
	// something must be flagged.
	if len(fb.Flagged()) == 0 {
		t.Fatal("median heuristic flagged nothing despite disagreement")
	}
}

func TestThresholdMonotonicity(t *testing.T) {
	// Higher thresholds must flag smaller (or equal) total region width —
	// the paper's "Setting the threshold" discussion.
	r := rng.New(4)
	d := twoFeatureData(2000, r)
	width := func(th float64) float64 {
		fb, err := Compute(disagreeCommittee(), d, Config{Bins: 40, Threshold: th, Classes: []int{1}})
		if err != nil {
			t.Fatal(err)
		}
		total := 0.0
		for _, fa := range fb.Flagged() {
			for _, iv := range fa.Intervals {
				total += iv.Width()
			}
		}
		return total
	}
	w1, w2, w3 := width(0.01), width(0.05), width(0.2)
	if !(w1 >= w2 && w2 >= w3) {
		t.Fatalf("region width not monotone in threshold: %v %v %v", w1, w2, w3)
	}
}

func TestSubspacesMatchIntervals(t *testing.T) {
	r := rng.New(5)
	d := twoFeatureData(2000, r)
	fb, err := Compute(disagreeCommittee(), d, Config{Bins: 40, Threshold: 0.05, Classes: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	boxes := fb.Subspaces()
	if len(boxes) == 0 {
		t.Fatal("no subspaces")
	}
	for _, b := range boxes {
		if len(b.Constraints) != 2 {
			t.Fatalf("box has %d constraints, want 2", len(b.Constraints))
		}
		mid := []float64{0, 0.5}
		mid[b.Feature] = (b.Interval.Lo + b.Interval.Hi) / 2
		if !b.Contains(mid) {
			t.Fatalf("box does not contain its interval midpoint")
		}
		outside := []float64{0, 0.5}
		outside[b.Feature] = b.Interval.Hi + 1
		if b.Contains(outside) {
			t.Fatal("box contains point beyond its interval")
		}
	}
}

func TestSampleRespectsRegions(t *testing.T) {
	r := rng.New(6)
	d := twoFeatureData(2000, r)
	fb, err := Compute(disagreeCommittee(), d, Config{Bins: 40, Threshold: 0.05, Classes: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	pts := fb.Sample(200, r)
	if len(pts) != 200 {
		t.Fatalf("Sample returned %d points", len(pts))
	}
	boxes := fb.Subspaces()
	for _, x := range pts {
		inAny := false
		for _, b := range boxes {
			if b.Contains(x) {
				inAny = true
				break
			}
		}
		if !inAny {
			t.Fatalf("sampled point %v outside all flagged regions", x)
		}
		// Non-flagged features must respect the schema range.
		if x[1] < 0 || x[1] > 1 {
			t.Fatalf("free feature out of range: %v", x)
		}
	}
}

func TestSampleRoundsIntegerFeatures(t *testing.T) {
	schema := &data.Schema{
		Features: []data.Feature{
			{Name: "port", Min: 0, Max: 65535, Integer: true},
			{Name: "bytes", Min: 0, Max: 1e6},
		},
		Classes: []string{"a", "b"},
	}
	d := data.New(schema)
	r := rng.New(7)
	for i := 0; i < 1500; i++ {
		d.Append([]float64{float64(r.Intn(65536)), r.Uniform(0, 1e6)}, r.Intn(2))
	}
	committee := []ml.Classifier{
		&stepModel{feature: 0, cut: 20000, lo: 0.2, hi: 0.8},
		&stepModel{feature: 0, cut: 40000, lo: 0.2, hi: 0.8},
	}
	fb, err := Compute(committee, d, Config{Bins: 30, Threshold: 0.05, Classes: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range fb.Sample(50, r) {
		if x[0] != float64(int(x[0])) {
			t.Fatalf("integer feature sampled non-integer %v", x[0])
		}
	}
}

func TestFilterPool(t *testing.T) {
	r := rng.New(8)
	d := twoFeatureData(2000, r)
	fb, err := Compute(disagreeCommittee(), d, Config{Bins: 40, Threshold: 0.05, Classes: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	pool := twoFeatureData(500, r)
	idx := fb.FilterPool(pool)
	if len(idx) == 0 {
		t.Fatal("pool intersection empty")
	}
	boxes := fb.Subspaces()
	inRegion := map[int]bool{}
	for i, row := range pool.X {
		for _, b := range boxes {
			if b.Contains(row) {
				inRegion[i] = true
				break
			}
		}
	}
	if len(idx) != len(inRegion) {
		t.Fatalf("FilterPool returned %d rows, expected %d", len(idx), len(inRegion))
	}
	for _, i := range idx {
		if !inRegion[i] {
			t.Fatalf("row %d not in any region", i)
		}
	}
}

func TestExplainMentionsRegions(t *testing.T) {
	r := rng.New(9)
	d := twoFeatureData(2000, r)
	fb, err := Compute(disagreeCommittee(), d, Config{Bins: 40, Threshold: 0.05, Classes: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	text := fb.Explain()
	for _, want := range []string{"link_rate", "disagree", "Collect", "loss"} {
		if !strings.Contains(text, want) {
			t.Fatalf("Explain missing %q:\n%s", want, text)
		}
	}
}

func TestExplainOneSidedNotation(t *testing.T) {
	// Committee disagreeing at the low end should produce "x <= ..".
	r := rng.New(10)
	d := twoFeatureData(3000, r)
	committee := []ml.Classifier{
		&stepModel{feature: 0, cut: 0.02, lo: 0.2, hi: 0.8},
		&stepModel{feature: 0, cut: 0.12, lo: 0.2, hi: 0.8},
	}
	fb, err := Compute(committee, d, Config{Bins: 20, Threshold: 0.05, Classes: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if text := fb.Explain(); !strings.Contains(text, "x <= ") {
		t.Fatalf("low-end disagreement not rendered one-sided:\n%s", text)
	}
}

func TestComputeErrors(t *testing.T) {
	r := rng.New(11)
	d := twoFeatureData(100, r)
	if _, err := Compute(nil, d, Config{}); err != ErrNoCommittee {
		t.Fatalf("want ErrNoCommittee, got %v", err)
	}
	empty := data.New(d.Schema)
	if _, err := Compute(disagreeCommittee(), empty, Config{}); err == nil {
		t.Fatal("empty dataset should error")
	}
}

func TestComputeSkipsConstantFeatures(t *testing.T) {
	schema := &data.Schema{
		Features: []data.Feature{
			{Name: "varies", Min: 0, Max: 1},
			{Name: "constant", Min: 0, Max: 1},
		},
		Classes: []string{"a", "b"},
	}
	d := data.New(schema)
	r := rng.New(12)
	for i := 0; i < 1000; i++ {
		d.Append([]float64{r.Float64(), 0.5}, r.Intn(2))
	}
	committee := []ml.Classifier{
		&stepModel{feature: 0, cut: 0.4, lo: 0.2, hi: 0.8},
		&stepModel{feature: 0, cut: 0.6, lo: 0.2, hi: 0.8},
	}
	fb, err := Compute(committee, d, Config{Bins: 20, Threshold: 0.05, Classes: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(fb.Analyses) != 1 {
		t.Fatalf("analyses = %d, want 1 (constant feature skipped)", len(fb.Analyses))
	}
}

func TestExtractIntervals(t *testing.T) {
	grid := []float64{0, 1, 2, 3, 4, 5}
	cases := []struct {
		std  []float64
		want int
	}{
		{[]float64{0, 0, 0, 0, 0, 0}, 0},
		{[]float64{1, 1, 0, 0, 1, 1}, 2},
		{[]float64{0, 1, 0, 1, 0, 1}, 3},
		{[]float64{1, 1, 1, 1, 1, 1}, 1},
	}
	for _, c := range cases {
		got := extractIntervals(grid, c.std, 0.5, -10, 10)
		if len(got) != c.want {
			t.Fatalf("std=%v: %d intervals, want %d (%v)", c.std, len(got), c.want, got)
		}
	}
	// Boundary runs extend to the feature range.
	ivs := extractIntervals(grid, []float64{1, 1, 0, 0, 0, 0}, 0.5, -10, 10)
	if ivs[0].Lo != -10 {
		t.Fatalf("boundary run lo = %v, want -10", ivs[0].Lo)
	}
	ivs = extractIntervals(grid, []float64{0, 0, 0, 0, 1, 1}, 0.5, -10, 10)
	if ivs[0].Hi != 10 {
		t.Fatalf("boundary run hi = %v, want 10", ivs[0].Hi)
	}
}

func TestQuickIntervalInvariants(t *testing.T) {
	r := rng.New(13)
	f := func(seed uint16) bool {
		rr := rng.New(uint64(seed))
		n := 5 + rr.Intn(30)
		grid := make([]float64, n)
		std := make([]float64, n)
		for i := range grid {
			grid[i] = float64(i)
			std[i] = rr.Float64()
		}
		ivs := extractIntervals(grid, std, 0.5, -1, float64(n))
		prevHi := -2.0
		for _, iv := range ivs {
			if iv.Lo > iv.Hi {
				return false
			}
			if iv.Lo <= prevHi {
				return false // intervals must be disjoint and ordered
			}
			prevHi = iv.Hi
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
	_ = r
}

func TestSuggestWithOracle(t *testing.T) {
	r := rng.New(14)
	d := twoFeatureData(2000, r)
	oracle := OracleFunc(func(x []float64) int {
		if x[0] > 0.5 {
			return 1
		}
		return 0
	})
	add, fb, err := Suggest(disagreeCommittee(), d, Config{Bins: 40, Threshold: 0.05, Classes: []int{1}}, 50, oracle, r)
	if err != nil {
		t.Fatal(err)
	}
	if add.Len() != 50 {
		t.Fatalf("Suggest returned %d rows", add.Len())
	}
	if len(fb.Flagged()) == 0 {
		t.Fatal("no flagged features")
	}
	for i, x := range add.X {
		if want := oracle.Label(x); add.Y[i] != want {
			t.Fatalf("row %d label %d, want %d", i, add.Y[i], want)
		}
	}
}

func TestSuggestFromPoolBounded(t *testing.T) {
	r := rng.New(15)
	d := twoFeatureData(2000, r)
	pool := twoFeatureData(1000, r)
	add, _, err := SuggestFromPool(disagreeCommittee(), d, pool, Config{Bins: 40, Threshold: 0.05, Classes: []int{1}}, 30, r)
	if err != nil {
		t.Fatal(err)
	}
	if add.Len() > 30 {
		t.Fatalf("pool suggestion returned %d rows, cap 30", add.Len())
	}
	if add.Len() == 0 {
		t.Fatal("pool suggestion empty")
	}
}

func TestCrossCommitteeDistinctSeeds(t *testing.T) {
	r := rng.New(16)
	schema := &data.Schema{
		Features: []data.Feature{
			{Name: "x0", Min: -8, Max: 8},
			{Name: "x1", Min: -8, Max: 8},
		},
		Classes: []string{"A", "B"},
	}
	train := data.New(schema)
	for i := 0; i < 150; i++ {
		c := i % 2
		cx := -3.0
		if c == 1 {
			cx = 3
		}
		train.Append([]float64{r.Normal(cx, 1), r.Normal(cx, 1)}, c)
	}
	committee, ensembles, err := CrossCommittee(train, automl.Config{MaxCandidates: 6, Generations: 1, EnsembleSize: 3, Seed: 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(committee) != 3 || len(ensembles) != 3 {
		t.Fatalf("committee %d ensembles %d", len(committee), len(ensembles))
	}
	// Committee members must be usable classifiers.
	for _, m := range committee {
		if p := m.PredictProba([]float64{0, 0}); len(p) != 2 {
			t.Fatal("committee member proba wrong length")
		}
	}
}

func TestFeedbackWithRealEnsemble(t *testing.T) {
	// End-to-end within-ALE on a problem with a known confusing region:
	// labels are random in x0 ∈ [0.4, 0.6], deterministic elsewhere.
	r := rng.New(17)
	schema := &data.Schema{
		Features: []data.Feature{
			{Name: "x0", Min: 0, Max: 1},
			{Name: "x1", Min: 0, Max: 1},
		},
		Classes: []string{"no", "yes"},
	}
	train := data.New(schema)
	for i := 0; i < 400; i++ {
		x0, x1 := r.Float64(), r.Float64()
		var y int
		switch {
		case x0 < 0.4:
			y = 0
		case x0 > 0.6:
			y = 1
		default:
			y = r.Intn(2)
		}
		train.Append([]float64{x0, x1}, y)
	}
	ens, err := automl.Run(train, automl.Config{MaxCandidates: 8, Generations: 1, EnsembleSize: 5, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	fb, err := Compute(WithinCommittee(ens), train, Config{Bins: 24, Classes: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(fb.Analyses) != 2 {
		t.Fatalf("analyses = %d", len(fb.Analyses))
	}
	// The committee must be diverse enough for the median heuristic to
	// produce a usable (positive) threshold.
	if fb.Threshold <= 0 {
		t.Fatalf("median threshold = %v; committee too homogeneous (%d members)", fb.Threshold, len(ens.Members))
	}
}

var _ ml.Classifier = (*stepModel)(nil)
