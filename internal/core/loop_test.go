package core

import (
	"testing"

	"github.com/netml/alefb/internal/automl"
	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/metrics"
	"github.com/netml/alefb/internal/ml"
	"github.com/netml/alefb/internal/rng"
)

// loopProblem builds the confusable-band dataset plus its oracle.
func loopProblem(n int, seed uint64) (*data.Dataset, Oracle) {
	schema := &data.Schema{
		Features: []data.Feature{
			{Name: "x0", Min: 0, Max: 1},
			{Name: "x1", Min: 0, Max: 1},
		},
		Classes: []string{"no", "yes"},
	}
	oracle := OracleFunc(func(x []float64) int {
		if x[0] > 0.5 {
			return 1
		}
		return 0
	})
	r := rng.New(seed)
	d := data.New(schema)
	for i := 0; i < n; i++ {
		x0, x1 := r.Float64(), r.Float64()
		var y int
		switch {
		case x0 < 0.4:
			y = 0
		case x0 > 0.6:
			y = 1
		default:
			y = r.Intn(2)
		}
		d.Append([]float64{x0, x1}, y)
	}
	return d, oracle
}

func loopAutoML(seed uint64) automl.Config {
	return automl.Config{MaxCandidates: 5, Generations: 1, EnsembleSize: 4, Seed: seed}
}

func TestRunLoopAccumulates(t *testing.T) {
	train, oracle := loopProblem(250, 1)
	res, err := RunLoop(train, LoopConfig{
		Rounds:   3,
		PerRound: 40,
		AutoML:   loopAutoML(7),
		Feedback: Config{Bins: 16, Classes: []int{1}},
		Oracle:   oracle,
		Seed:     9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rounds) == 0 || len(res.Rounds) > 3 {
		t.Fatalf("rounds = %d", len(res.Rounds))
	}
	if res.Final == nil || res.Train == nil {
		t.Fatal("incomplete result")
	}
	// The training set must have grown by the added counts.
	added := 0
	for _, lr := range res.Rounds {
		added += lr.Added
		if lr.TrainSize < train.Len() {
			t.Fatalf("round %d saw %d rows < initial %d", lr.Round, lr.TrainSize, train.Len())
		}
	}
	if res.Train.Len() != train.Len()+added {
		t.Fatalf("final train %d != %d + %d", res.Train.Len(), train.Len(), added)
	}
	// The original dataset must be untouched.
	if train.Len() != 250 {
		t.Fatal("RunLoop mutated the input dataset")
	}
}

func TestRunLoopImprovesAccuracy(t *testing.T) {
	train, oracle := loopProblem(250, 2)
	res, err := RunLoop(train, LoopConfig{
		Rounds:   2,
		PerRound: 60,
		AutoML:   loopAutoML(11),
		Feedback: Config{Bins: 16, Classes: []int{1}},
		Oracle:   oracle,
		Seed:     13,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate first-round vs final ensembles on clean data.
	test := data.New(train.Schema)
	r := rng.New(3)
	for i := 0; i < 800; i++ {
		x := []float64{r.Float64(), r.Float64()}
		test.Append(x, oracle.Label(x))
	}
	first := metrics.BalancedAccuracy(2, test.Y, res.Rounds[0].Ensemble.Predict(test.X))
	final := metrics.BalancedAccuracy(2, test.Y, res.Final.Predict(test.X))
	if final < first-0.03 {
		t.Fatalf("loop degraded accuracy: %.3f -> %.3f", first, final)
	}
}

func TestRunLoopEarlyStop(t *testing.T) {
	train, oracle := loopProblem(250, 4)
	res, err := RunLoop(train, LoopConfig{
		Rounds:   5,
		PerRound: 20,
		AutoML:   loopAutoML(15),
		Feedback: Config{Bins: 16, Classes: []int{1}},
		Oracle:   oracle,
		StopStd:  10, // absurdly high: stops immediately
		Seed:     17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("loop did not converge with StopStd=10")
	}
	if len(res.Rounds) != 1 || res.Rounds[0].Added != 0 {
		t.Fatalf("early stop shape wrong: %+v", res.Rounds)
	}
}

func TestRunLoopValidation(t *testing.T) {
	train, oracle := loopProblem(50, 5)
	if _, err := RunLoop(train, LoopConfig{PerRound: 10}); err == nil {
		t.Fatal("missing oracle accepted")
	}
	if _, err := RunLoop(train, LoopConfig{Oracle: oracle}); err == nil {
		t.Fatal("missing PerRound accepted")
	}
}

var _ ml.Classifier = (*automl.Ensemble)(nil)
