package core

// SlidingWindow is the drift evaluator's incremental window dataset: a
// fixed-capacity ring of the most recent labelled rows. The seed
// implementation rebuilt a data.Dataset with data.New + AppendRow over
// the whole window on every evaluation; the ring updates in O(new rows)
// and materializes a window snapshot by copying into a reusable
// destination dataset. The materialized order is oldest row first —
// exactly the order feedback.Store.Window returns — so a drift
// evaluation over a ring snapshot is bit-identical to one over the
// store's window at the same record sequence.
//
// SlidingWindow is not safe for concurrent use; the owner (one per-model
// drift evaluator) serializes access.

import "github.com/netml/alefb/internal/data"

// SlidingWindow holds the last `capacity` pushed rows.
type SlidingWindow struct {
	schema *data.Schema
	cap    int
	rows   [][]float64 // ring slots, one contiguous preallocated backing
	labels []int
	next   int   // ring slot the next pushed row lands in
	n      int   // rows currently held (≤ cap)
	total  int64 // rows ever pushed; mirrors the feedback store sequence
}

// NewSlidingWindow builds a window of the given capacity over the schema.
func NewSlidingWindow(schema *data.Schema, capacity int) *SlidingWindow {
	if capacity < 1 {
		capacity = 1
	}
	w := &SlidingWindow{
		schema: schema,
		cap:    capacity,
		rows:   make([][]float64, capacity),
		labels: make([]int, capacity),
	}
	nf := schema.NumFeatures()
	back := make([]float64, capacity*nf)
	for i := range w.rows {
		w.rows[i] = back[i*nf : (i+1)*nf : (i+1)*nf]
	}
	return w
}

// Len returns the number of rows currently held.
func (w *SlidingWindow) Len() int { return w.n }

// Cap returns the window capacity.
func (w *SlidingWindow) Cap() int { return w.cap }

// Total returns the number of rows ever pushed. When every acknowledged
// store batch is pushed exactly once, Total equals the store sequence,
// which is how the evaluator detects out-of-order arrival and resyncs.
func (w *SlidingWindow) Total() int64 { return w.total }

// Push appends a batch of rows, evicting the oldest beyond capacity.
// Rows are copied into the ring's own backing; callers keep ownership of
// their slices. Rows must match the schema width (trusted boundary — the
// serving layer validates before the WAL append).
func (w *SlidingWindow) Push(rows [][]float64, labels []int) {
	for i, row := range rows {
		copy(w.rows[w.next], row)
		w.labels[w.next] = labels[i]
		w.next++
		if w.next == w.cap {
			w.next = 0
		}
		if w.n < w.cap {
			w.n++
		}
	}
	w.total += int64(len(rows))
}

// Reset replaces the window contents with the given rows (oldest first,
// at most the last `capacity` of them) and sets Total to total. The
// evaluator uses it to (re)prime the ring from the durable store — at
// creation, and if batches ever arrive out of order.
func (w *SlidingWindow) Reset(rows [][]float64, labels []int, total int64) {
	w.n, w.next = 0, 0
	if len(rows) > w.cap {
		labels = labels[len(rows)-w.cap:]
		rows = rows[len(rows)-w.cap:]
	}
	w.Push(rows, labels)
	w.total = total
}

// Snapshot materializes the window into dst, oldest row first, reusing
// dst's row backing when shapes allow, and returns it. Pass nil (or a
// dataset from a previous Snapshot of the same window) — the steady
// state, where the window is full and dst was produced by the previous
// call, copies rows with zero allocations. The returned dataset does not
// alias the ring: later pushes never mutate a taken snapshot.
func (w *SlidingWindow) Snapshot(dst *data.Dataset) *data.Dataset {
	nf := w.schema.NumFeatures()
	if dst == nil || dst.Schema != w.schema {
		dst = data.New(w.schema)
	}
	if cap(dst.X) < w.n {
		grown := make([][]float64, len(dst.X), w.n)
		copy(grown, dst.X)
		dst.X = grown
		dst.Y = append(make([]int, 0, w.n), dst.Y...)
	}
	for len(dst.X) < w.n {
		dst.X = append(dst.X, make([]float64, nf))
		dst.Y = append(dst.Y, 0)
	}
	dst.X = dst.X[:w.n]
	dst.Y = dst.Y[:w.n]
	start := w.next - w.n
	if start < 0 {
		start += w.cap
	}
	for i := 0; i < w.n; i++ {
		src := start + i
		if src >= w.cap {
			src -= w.cap
		}
		if len(dst.X[i]) != nf {
			dst.X[i] = make([]float64, nf)
		}
		copy(dst.X[i], w.rows[src])
		dst.Y[i] = w.labels[src]
	}
	return dst
}
