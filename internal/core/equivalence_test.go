package core

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/netml/alefb/internal/automl"
	"github.com/netml/alefb/internal/rng"
)

// TestComputeWorkersEquivalence checks that the full feedback analysis
// (committee curves, thresholds, flagged intervals) is bit-identical for
// Workers=1 and Workers=8 across 3 dataset seeds.
func TestComputeWorkersEquivalence(t *testing.T) {
	for _, seed := range []uint64{1, 17, 333} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			d := twoFeatureData(1200, rng.New(seed))
			committee := disagreeCommittee()
			serial, err := Compute(committee, d, Config{Bins: 24, Threshold: 0.1, Classes: []int{1}, Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			par, err := Compute(committee, d, Config{Bins: 24, Threshold: 0.1, Classes: []int{1}, Workers: 8})
			if err != nil {
				t.Fatal(err)
			}
			if len(serial.Analyses) != len(par.Analyses) {
				t.Fatalf("analysis count: %d vs %d", len(serial.Analyses), len(par.Analyses))
			}
			for i := range serial.Analyses {
				sa, pa := serial.Analyses[i], par.Analyses[i]
				if !reflect.DeepEqual(sa.Grid, pa.Grid) ||
					!reflect.DeepEqual(sa.Mean, pa.Mean) ||
					!reflect.DeepEqual(sa.Std, pa.Std) {
					t.Errorf("feature %d curves differ between worker counts", i)
				}
				if sa.Threshold != pa.Threshold {
					t.Errorf("feature %d threshold: %v vs %v", i, sa.Threshold, pa.Threshold)
				}
				if !reflect.DeepEqual(sa.Intervals, pa.Intervals) {
					t.Errorf("feature %d intervals: %v vs %v", i, sa.Intervals, pa.Intervals)
				}
			}
		})
	}
}

// TestCrossCommitteeWorkersEquivalence checks that the ensembles of a
// Cross-ALE committee come out identical whether the AutoML runs execute
// serially or concurrently: same member specs, weights and scores at
// every run index, across 3 seeds.
func TestCrossCommitteeWorkersEquivalence(t *testing.T) {
	for _, seed := range []uint64{2, 19, 404} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			d := twoFeatureData(300, rng.New(seed+5))
			base := automl.Config{MaxCandidates: 6, Generations: 1, EnsembleSize: 3, Seed: seed}

			base.Workers = 1
			_, serial, err := CrossCommittee(d, base, 3)
			if err != nil {
				t.Fatal(err)
			}
			base.Workers = 8
			_, par, err := CrossCommittee(d, base, 3)
			if err != nil {
				t.Fatal(err)
			}
			if len(serial) != len(par) {
				t.Fatalf("run count: %d vs %d", len(serial), len(par))
			}
			for i := range serial {
				se, pe := serial[i], par[i]
				if se.ValScore != pe.ValScore || se.Evaluated != pe.Evaluated {
					t.Errorf("run %d: scores (%v, %d) vs (%v, %d)",
						i, se.ValScore, se.Evaluated, pe.ValScore, pe.Evaluated)
				}
				if len(se.Members) != len(pe.Members) {
					t.Fatalf("run %d member count: %d vs %d", i, len(se.Members), len(pe.Members))
				}
				for j := range se.Members {
					sm, pm := se.Members[j], pe.Members[j]
					if sm.Spec.Family != pm.Spec.Family ||
						!reflect.DeepEqual(sm.Spec.Params, pm.Spec.Params) ||
						sm.Weight != pm.Weight || sm.ValScore != pm.ValScore {
						t.Errorf("run %d member %d differs: %+v vs %+v", i, j, sm.Spec, pm.Spec)
					}
				}
				for _, x := range d.X[:4] {
					if !reflect.DeepEqual(se.PredictProba(x), pe.PredictProba(x)) {
						t.Errorf("run %d PredictProba differs at %v", i, x)
					}
				}
			}
		})
	}
}
