// Package core implements the paper's contribution: an interpretable
// feedback algorithm for AutoML (§3).
//
// Given the committee of models inside an AutoML ensemble (Within-ALE) or
// across several AutoML runs (Cross-ALE), the algorithm
//
//  1. computes a model-agnostic interpretation (ALE) of every feature for
//     every committee member on a shared grid,
//  2. measures the cross-model standard deviation of the interpretation at
//     each grid point — the committee's "disagreement" about that feature
//     value,
//  3. returns the feature subspaces where the disagreement exceeds a
//     threshold T, as a union of axis-aligned half-space systems
//     ∪ᵢ Aᵢx ≤ bᵢ (for example "link_rate ≤ 45 ∪ link_rate ≥ 99"),
//  4. suggests new data points sampled uniformly from those subspaces, and
//  5. explains itself with the mean ALE curves plus error bars, so a
//     domain expert with no ML background can decide which parts of the
//     feedback to trust.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/interpret"
	"github.com/netml/alefb/internal/ml"
	"github.com/netml/alefb/internal/rng"
	"github.com/netml/alefb/internal/stats"
)

// ErrNoAnalysableFeatures is returned by ComputeCtx when every requested
// feature is constant (or otherwise unanalysable) on the given data.
// Callers that analyse small sliding windows — the drift monitor — treat
// it as "no signal", not as a failure.
var ErrNoAnalysableFeatures = errors.New("core: no analysable features")

// Config controls a feedback computation.
type Config struct {
	// Method selects the interpretation algorithm (default ALE, the
	// paper's choice; PDP is available for ablations).
	Method interpret.Method
	// Bins is the interpretation grid resolution (default 32).
	Bins int
	// Threshold is the disagreement tolerance T. Zero selects the paper's
	// heuristic: the median standard deviation across all features and
	// grid points.
	Threshold float64
	// FeatureThresholds overrides Threshold per feature index (§5: the
	// operator can "tune the threshold they use for each feature based on
	// their domain knowledge"). Features not present use Threshold.
	FeatureThresholds map[int]float64
	// Priorities weights features when sampling suggestions (§5: the
	// operator can "prioritize bounds containing features they know can
	// influence the label"). A feature with weight 0 is never sampled
	// from (but is still analysed and reported); missing features weigh 1.
	Priorities map[int]float64
	// FreeFeatures selects how the non-flagged features of a suggestion
	// are drawn (the paper only prescribes uniform sampling *within the
	// flagged region*; the free coordinates are unspecified).
	FreeFeatures FreeFeaturePolicy
	// Classes restricts which class probabilities are interpreted; nil
	// means every class. Disagreement is aggregated across classes by
	// taking the maximum standard deviation at each grid point.
	Classes []int
	// Features restricts the analysis to these feature indices; nil means
	// every feature.
	Features []int
	// Workers bounds the goroutines used for the committee interpretation
	// (one task per committee member). 0 selects runtime.GOMAXPROCS(0);
	// 1 forces serial execution. Results are bit-identical either way.
	Workers int
	// Curves optionally memoizes committee curves across computations.
	// ComputeCtx consults it only when the cache was built for exactly
	// the dataset being analysed (pointer identity) and ignores it
	// otherwise, so a stale cache can slow a computation down but never
	// change its result: the cache stores exact CommitteeCtx outputs.
	Curves *CurveCache
}

func (c Config) withDefaults(nClasses, nFeatures int) Config {
	if c.Bins <= 0 {
		c.Bins = 32
	}
	if len(c.Classes) == 0 {
		c.Classes = make([]int, nClasses)
		for i := range c.Classes {
			c.Classes[i] = i
		}
	}
	if len(c.Features) == 0 {
		c.Features = make([]int, nFeatures)
		for i := range c.Features {
			c.Features[i] = i
		}
	}
	return c
}

// FreeFeaturePolicy selects how suggestion coordinates outside the flagged
// feature are sampled.
type FreeFeaturePolicy int

const (
	// FreeUniform draws every free coordinate uniformly from its schema
	// range — the paper's "uniformly sample from the regions" policy
	// (the default).
	FreeUniform FreeFeaturePolicy = iota
	// FreeEmpirical draws the free coordinates from a random row of the
	// background (training) data instead, so suggestions stay on the data
	// distribution except along the flagged axis.
	FreeEmpirical
)

// String names the policy.
func (p FreeFeaturePolicy) String() string {
	if p == FreeUniform {
		return "uniform"
	}
	return "empirical"
}

// Interval is a closed range of one feature's values.
type Interval struct {
	Lo, Hi float64
}

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v float64) bool { return v >= iv.Lo && v <= iv.Hi }

// Width returns the interval length.
func (iv Interval) Width() float64 { return iv.Hi - iv.Lo }

// String renders the interval like "[3.0, 7.5]" for display. The
// rendering rounds to four significant digits; use MarshalText for an
// exact round-trippable form.
func (iv Interval) String() string { return fmt.Sprintf("[%.4g, %.4g]", iv.Lo, iv.Hi) }

// MarshalText renders the interval as "[lo, hi]" with full float64
// precision, so UnmarshalText recovers the exact bounds bit for bit.
// Intervals with NaN bounds cannot round-trip and are rejected.
func (iv Interval) MarshalText() ([]byte, error) {
	if math.IsNaN(iv.Lo) || math.IsNaN(iv.Hi) {
		return nil, errors.New("core: interval with NaN bound cannot be marshalled")
	}
	return []byte(fmt.Sprintf("[%s, %s]",
		strconv.FormatFloat(iv.Lo, 'g', -1, 64),
		strconv.FormatFloat(iv.Hi, 'g', -1, 64))), nil
}

// UnmarshalText parses the MarshalText form.
func (iv *Interval) UnmarshalText(text []byte) error {
	s := strings.TrimSpace(string(text))
	if len(s) < 2 || s[0] != '[' || s[len(s)-1] != ']' {
		return fmt.Errorf("core: interval %q is not of the form [lo, hi]", s)
	}
	lo, hi, ok := strings.Cut(s[1:len(s)-1], ",")
	if !ok {
		return fmt.Errorf("core: interval %q is not of the form [lo, hi]", s)
	}
	loV, err := strconv.ParseFloat(strings.TrimSpace(lo), 64)
	if err != nil {
		return fmt.Errorf("core: interval %q: %w", s, err)
	}
	hiV, err := strconv.ParseFloat(strings.TrimSpace(hi), 64)
	if err != nil {
		return fmt.Errorf("core: interval %q: %w", s, err)
	}
	iv.Lo, iv.Hi = loV, hiV
	return nil
}

// MergeIntervals normalizes a set of intervals into the canonical form the
// rest of the package assumes: sorted by lower bound, with overlapping and
// touching ranges fused. Degenerate inputs (Lo == Hi) are kept as points
// unless a wider range absorbs them; reversed inputs (Lo > Hi) are
// repaired by swapping. Use it when pooling flagged regions from several
// feedback computations or when taking interval lists from an operator.
func MergeIntervals(ivs []Interval) []Interval {
	if len(ivs) == 0 {
		return nil
	}
	norm := make([]Interval, len(ivs))
	for i, iv := range ivs {
		if iv.Lo > iv.Hi {
			iv.Lo, iv.Hi = iv.Hi, iv.Lo
		}
		norm[i] = iv
	}
	sort.SliceStable(norm, func(i, j int) bool {
		if norm[i].Lo != norm[j].Lo {
			return norm[i].Lo < norm[j].Lo
		}
		return norm[i].Hi < norm[j].Hi
	})
	out := norm[:1]
	for _, iv := range norm[1:] {
		last := &out[len(out)-1]
		if iv.Lo <= last.Hi {
			if iv.Hi > last.Hi {
				last.Hi = iv.Hi
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// FeatureAnalysis is the per-feature output of the algorithm.
type FeatureAnalysis struct {
	// Feature indexes the dataset schema; Name repeats its name.
	Feature int
	Name    string
	// Grid holds the shared interpretation grid.
	Grid []float64
	// Std[i] is the aggregated (max over analysed classes) cross-model
	// standard deviation at Grid[i].
	Std []float64
	// Mean[i] is the cross-model mean interpretation at Grid[i] for the
	// dominant class (the class with the largest peak disagreement).
	Mean []float64
	// DominantClass is the class index Mean refers to.
	DominantClass int
	// Intervals is the union of ranges where Std exceeds the threshold.
	// Empty means the committee agrees about this feature everywhere.
	Intervals []Interval
	// PeakStd is the maximum of Std.
	PeakStd float64
	// Threshold is the tolerance applied to this feature (the global T
	// unless the operator overrode it via Config.FeatureThresholds).
	Threshold float64
}

// Flagged reports whether the feature has any high-disagreement region.
func (fa *FeatureAnalysis) Flagged() bool { return len(fa.Intervals) > 0 }

// HalfSpace is one linear constraint a·x <= b over the feature vector.
type HalfSpace struct {
	A []float64
	B float64
}

// Box is a conjunction of half-space constraints Aᵢx ≤ bᵢ describing one
// axis-aligned region of the feature space.
type Box struct {
	Constraints []HalfSpace
	// Feature and Interval record which flagged range produced the box.
	Feature  int
	Interval Interval
}

// Contains reports whether x satisfies all constraints of the box.
func (b Box) Contains(x []float64) bool {
	for _, h := range b.Constraints {
		dot := 0.0
		for j, a := range h.A {
			dot += a * x[j]
		}
		if dot > h.B+1e-12 {
			return false
		}
	}
	return true
}

// Feedback is the complete output of one feedback computation.
type Feedback struct {
	// Threshold is the disagreement tolerance actually used (after the
	// median heuristic is applied).
	Threshold float64
	// Analyses holds one entry per analysed feature, in feature order.
	Analyses []FeatureAnalysis
	// Method is the interpretation algorithm used.
	Method interpret.Method

	schema     *data.Schema
	priorities map[int]float64
	freePolicy FreeFeaturePolicy
	background [][]float64
}

// ErrNoCommittee is returned when no models were provided.
var ErrNoCommittee = errors.New("core: empty committee")

// Compute runs the feedback algorithm (§3 of the paper) for the committee
// of models over the background dataset d.
func Compute(models []ml.Classifier, d *data.Dataset, cfg Config) (*Feedback, error) {
	return ComputeCtx(context.Background(), models, d, cfg)
}

// ComputeCtx is Compute under a hard deadline: when ctx expires or is
// cancelled the computation stops at the next per-member interpretation
// boundary and returns ctx.Err(). Results are unchanged by the context
// otherwise.
func ComputeCtx(ctx context.Context, models []ml.Classifier, d *data.Dataset, cfg Config) (*Feedback, error) {
	if len(models) == 0 {
		return nil, ErrNoCommittee
	}
	if d.Len() == 0 {
		return nil, errors.New("core: empty background dataset")
	}
	cfg = cfg.withDefaults(d.Schema.NumClasses(), d.Schema.NumFeatures())

	fb := &Feedback{
		Method:     cfg.Method,
		schema:     d.Schema,
		priorities: cfg.Priorities,
		freePolicy: cfg.FreeFeatures,
		background: d.X,
	}
	var allStds []float64
	type perFeature struct {
		analysis FeatureAnalysis
		ok       bool
	}
	feats := make([]perFeature, 0, len(cfg.Features))

	for _, j := range cfg.Features {
		fa := FeatureAnalysis{Feature: j, Name: d.Schema.Features[j].Name, DominantClass: cfg.Classes[0]}
		var curves []interpret.CommitteeCurve
		skip := false
		for _, class := range cfg.Classes {
			opt := interpret.Options{Bins: cfg.Bins, Class: class, Workers: cfg.Workers}
			var cc interpret.CommitteeCurve
			var err error
			if cfg.Curves != nil && cfg.Curves.Dataset() == d {
				cc, err = cfg.Curves.Committee(ctx, j, cfg.Method, opt)
			} else {
				cc, err = interpret.CommitteeCtx(ctx, models, d, j, cfg.Method, opt)
			}
			if err != nil {
				if errors.Is(err, interpret.ErrConstantFeature) {
					skip = true
					break
				}
				return nil, fmt.Errorf("core: feature %q class %d: %w", fa.Name, class, err)
			}
			curves = append(curves, cc)
		}
		if skip {
			feats = append(feats, perFeature{ok: false})
			continue
		}
		fa.Grid = curves[0].Grid
		n := len(fa.Grid)
		fa.Std = make([]float64, n)
		dominant, dominantPeak := 0, -1.0
		for ci, cc := range curves {
			peak := cc.MaxStd()
			if peak > dominantPeak {
				dominantPeak = peak
				dominant = ci
			}
			for i := 0; i < n; i++ {
				if cc.Std[i] > fa.Std[i] {
					fa.Std[i] = cc.Std[i]
				}
			}
		}
		fa.Mean = curves[dominant].Mean
		fa.DominantClass = cfg.Classes[dominant]
		fa.PeakStd = 0
		for _, s := range fa.Std {
			if s > fa.PeakStd {
				fa.PeakStd = s
			}
		}
		allStds = append(allStds, fa.Std...)
		feats = append(feats, perFeature{analysis: fa, ok: true})
	}

	fb.Threshold = cfg.Threshold
	if fb.Threshold <= 0 {
		if len(allStds) == 0 {
			return nil, ErrNoAnalysableFeatures
		}
		fb.Threshold = stats.Median(allStds)
	}

	for _, pf := range feats {
		if !pf.ok {
			continue
		}
		fa := pf.analysis
		feat := d.Schema.Features[fa.Feature]
		fa.Threshold = fb.Threshold
		if t, ok := cfg.FeatureThresholds[fa.Feature]; ok && t > 0 {
			fa.Threshold = t
		}
		fa.Intervals = extractIntervals(fa.Grid, fa.Std, fa.Threshold, feat.Min, feat.Max)
		fb.Analyses = append(fb.Analyses, fa)
	}
	if len(fb.Analyses) == 0 {
		return nil, ErrNoAnalysableFeatures
	}
	return fb, nil
}

// extractIntervals merges consecutive grid points whose std exceeds the
// threshold into maximal intervals. Runs touching the grid boundary are
// extended to the feature's schema range (the paper's "x <= 45" means
// everything below 45, not just above the lowest observed value); interior
// run edges are widened to the midpoints toward the neighbouring
// below-threshold grid points so single-point runs are not degenerate.
func extractIntervals(grid, std []float64, threshold, featMin, featMax float64) []Interval {
	var out []Interval
	n := len(grid)
	i := 0
	for i < n {
		if std[i] <= threshold {
			i++
			continue
		}
		j := i
		for j+1 < n && std[j+1] > threshold {
			j++
		}
		lo := featMin
		if i > 0 {
			lo = (grid[i-1] + grid[i]) / 2
		}
		hi := featMax
		if j < n-1 {
			hi = (grid[j] + grid[j+1]) / 2
		}
		if lo > hi {
			lo, hi = hi, lo
		}
		out = append(out, Interval{Lo: lo, Hi: hi})
		i = j + 1
	}
	// Boundary extension can make a run touch its neighbour; normalize so
	// downstream consumers always see disjoint, sorted intervals.
	return MergeIntervals(out)
}

// Flagged returns the analyses with at least one high-disagreement region,
// sorted by descending peak disagreement.
func (f *Feedback) Flagged() []FeatureAnalysis {
	var out []FeatureAnalysis
	for _, fa := range f.Analyses {
		if fa.Flagged() {
			out = append(out, fa)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].PeakStd > out[j].PeakStd })
	return out
}

// Subspaces returns the flagged regions as half-space systems ∪ᵢ Aᵢx ≤ bᵢ
// over the full feature vector (§3 step 5). Each interval of each flagged
// feature yields one Box with two active constraints.
func (f *Feedback) Subspaces() []Box {
	nf := f.schema.NumFeatures()
	var out []Box
	for _, fa := range f.Analyses {
		for _, iv := range fa.Intervals {
			upper := HalfSpace{A: make([]float64, nf), B: iv.Hi}
			upper.A[fa.Feature] = 1
			lower := HalfSpace{A: make([]float64, nf), B: -iv.Lo}
			lower.A[fa.Feature] = -1
			out = append(out, Box{
				Constraints: []HalfSpace{upper, lower},
				Feature:     fa.Feature,
				Interval:    iv,
			})
		}
	}
	return out
}

// Sample draws n suggested data points: for each point one flagged region
// is chosen (features weighted by operator priority, intervals by width)
// and the flagged feature is sampled uniformly inside the interval — the
// paper's stated lower-bound policy (§4 Implementation). The remaining
// coordinates follow Config.FreeFeatures: a random background row
// (default) or uniform over the schema ranges.
// It returns nil if nothing is flagged.
func (f *Feedback) Sample(n int, r *rng.Rand) [][]float64 {
	flagged := f.Flagged()
	if len(flagged) == 0 || n <= 0 {
		return nil
	}
	// Operator priorities weight which flagged feature each suggestion
	// targets; weight-0 features are reported but never sampled from.
	weightsByFeature := make([]float64, len(flagged))
	total := 0.0
	for i, fa := range flagged {
		w := 1.0
		if f.priorities != nil {
			if p, ok := f.priorities[fa.Feature]; ok {
				w = p
			}
		}
		if w < 0 {
			w = 0
		}
		weightsByFeature[i] = w
		total += w
	}
	if total == 0 {
		return nil // every flagged feature was de-prioritized
	}
	out := make([][]float64, 0, n)
	for i := 0; i < n; i++ {
		fa := flagged[r.Weighted(weightsByFeature)]
		weights := make([]float64, len(fa.Intervals))
		for wi, iv := range fa.Intervals {
			weights[wi] = iv.Width()
		}
		iv := fa.Intervals[r.Weighted(weights)]
		row := make([]float64, f.schema.NumFeatures())
		if f.freePolicy == FreeEmpirical && len(f.background) > 0 {
			copy(row, f.background[r.Intn(len(f.background))])
		} else {
			for j, feat := range f.schema.Features {
				v := r.Uniform(feat.Min, feat.Max)
				if feat.Integer {
					v = math.Round(v)
				}
				row[j] = v
			}
		}
		v := r.Uniform(iv.Lo, iv.Hi)
		if f.schema.Features[fa.Feature].Integer {
			v = math.Round(v)
		}
		row[fa.Feature] = v
		out = append(out, row)
	}
	return out
}

// FilterPool returns the indices of pool rows that fall inside any flagged
// region — the pool-restricted variant the paper evaluates as
// Within-ALE-Pool and Cross-ALE-Pool. The number of returned points is
// bounded by the pool's intersection with the regions, which is why those
// variants add fewer points in Table 1. Operator priorities affect
// Sample only; pool filtering reports every region hit so the operator
// can make the call per row.
func (f *Feedback) FilterPool(pool *data.Dataset) []int {
	boxes := f.Subspaces()
	if len(boxes) == 0 {
		return nil
	}
	var idx []int
	for i, row := range pool.X {
		for _, b := range boxes {
			if b.Contains(row) {
				idx = append(idx, i)
				break
			}
		}
	}
	return idx
}

// Explain renders the feedback as text a domain expert can act on: one
// paragraph per flagged feature with the disagreement ranges, the peak
// disagreement, and the shape of the mean ALE curve, followed by the
// features the committee agrees on.
func (f *Feedback) Explain() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s-variance feedback (threshold T=%.4g)\n", f.Method, f.Threshold)
	flagged := f.Flagged()
	if len(flagged) == 0 {
		sb.WriteString("The models agree everywhere: no additional data is suggested. ")
		sb.WriteString("If accuracy is still unsatisfactory the problem may need new features rather than more rows.\n")
		return sb.String()
	}
	for _, fa := range flagged {
		parts := make([]string, len(fa.Intervals))
		for i, iv := range fa.Intervals {
			parts[i] = describeInterval(f.schema.Features[fa.Feature], iv)
		}
		fmt.Fprintf(&sb, "\n- feature %q: the models in the committee disagree (std up to %.4g > T=%.4g) where %s.\n",
			fa.Name, fa.PeakStd, fa.Threshold, strings.Join(parts, " or "))
		fmt.Fprintf(&sb, "  Collect and label more samples with %q in %s, then retrain.\n",
			fa.Name, strings.Join(parts, " and "))
		fmt.Fprintf(&sb, "  Shape of the mean %s curve (class %q): %s.\n",
			f.Method, f.schema.Classes[fa.DominantClass], describeTrend(fa.Grid, fa.Mean))
	}
	var agreed []string
	for _, fa := range f.Analyses {
		if !fa.Flagged() {
			agreed = append(agreed, fa.Name)
		}
	}
	if len(agreed) > 0 {
		fmt.Fprintf(&sb, "\nThe committee agrees about: %s. Your domain knowledge decides which flagged features above are worth acting on.\n",
			strings.Join(agreed, ", "))
	}
	return sb.String()
}

// describeInterval renders an interval, using one-sided notation when it
// touches the feature's domain boundary, as the paper's examples do
// ("x <= 45 ∪ x >= 99").
func describeInterval(feat data.Feature, iv Interval) string {
	atMin := iv.Lo <= feat.Min
	atMax := iv.Hi >= feat.Max
	switch {
	case atMin && atMax:
		return "x takes any value"
	case atMin:
		return fmt.Sprintf("x <= %.4g", iv.Hi)
	case atMax:
		return fmt.Sprintf("x >= %.4g", iv.Lo)
	default:
		return fmt.Sprintf("%.4g <= x <= %.4g", iv.Lo, iv.Hi)
	}
}

// describeTrend gives a coarse verbal description of a curve.
func describeTrend(grid, values []float64) string {
	if len(values) < 2 {
		return "flat"
	}
	first, last := values[0], values[len(values)-1]
	span := 0.0
	lo, hi := values[0], values[0]
	for _, v := range values {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	span = hi - lo
	if span < 1e-9 {
		return "flat"
	}
	delta := last - first
	switch {
	case delta > 0.6*span:
		return "rising with the feature value"
	case delta < -0.6*span:
		return "falling with the feature value"
	default:
		return "non-monotone across the range"
	}
}
