package core

// CurveCache memoizes committee interpretation curves. A committee curve
// is a pure function of (models, dataset, method, feature, class, bins):
// for a fixed model snapshot and training set, every /v1/ale request,
// every /v1/regions sweep and every warm-start shift detection that asks
// for the same curve recomputes byte-identical output. The cache stores
// the exact interpret.CommitteeCtx result the first caller produced, so
// cached reads are bit-identical to uncached ones by construction.
//
// One CurveCache is valid for exactly one (models, dataset) pair — the
// serving layer hangs one off each published snapshot and drops it on
// snapshot swap, rollback or eviction. Consumers that might be handed a
// cache built for a different dataset (ComputeCtx via Config.Curves)
// gate on pointer identity of the dataset and fall back to direct
// computation on mismatch.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/interpret"
	"github.com/netml/alefb/internal/ml"
)

// maxCurveEntries bounds the cache so request-controlled knobs (a client
// can ask /v1/ale for arbitrary bin counts) cannot grow it without limit.
// Past the bound, unseen keys are computed directly and not stored; the
// steady-state working set (features × classes × a few bin settings) is
// far below it.
const maxCurveEntries = 512

type curveKey struct {
	method  interpret.Method
	feature int
	class   int
	bins    int
}

// curveEntry is a single-flight slot: the first goroutine to claim a key
// computes and closes done; followers block on done (or their own ctx).
type curveEntry struct {
	done chan struct{}
	cc   interpret.CommitteeCurve
	err  error
}

// CurveCache memoizes interpret.CommitteeCtx results for one fixed
// committee and background dataset. Safe for concurrent use. The zero
// value is not usable; construct with NewCurveCache.
type CurveCache struct {
	models []ml.Classifier
	d      *data.Dataset

	mu      sync.Mutex
	entries map[curveKey]*curveEntry

	hits, misses atomic.Int64
}

// NewCurveCache builds a cache for the given committee over the given
// background dataset. Both must stay immutable for the cache's lifetime
// (snapshots in the serving layer are immutable after publish).
func NewCurveCache(models []ml.Classifier, d *data.Dataset) *CurveCache {
	return &CurveCache{models: models, d: d, entries: make(map[curveKey]*curveEntry)}
}

// Dataset returns the background dataset the cache was built for.
// Callers use pointer identity to decide whether the cache applies.
func (c *CurveCache) Dataset() *data.Dataset { return c.d }

// Models returns the committee the cache was built for.
func (c *CurveCache) Models() []ml.Classifier { return c.models }

// Stats returns the cumulative hit and miss counts. A "hit" is a lookup
// answered from a completed or in-flight entry; a "miss" is a lookup
// that had to start (or, past the size bound, run uncached) the
// underlying computation.
func (c *CurveCache) Stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

// Committee returns the committee curve for (feature, method, opt),
// computing it at most once per key. Concurrent callers for the same key
// single-flight: one computes, the rest wait on the result (or their own
// context). Context cancellation and deadline errors are never cached —
// the entry is removed so the next caller retries — while deterministic
// errors (interpret.ErrConstantFeature) are cached like values.
func (c *CurveCache) Committee(ctx context.Context, feature int, method interpret.Method, opt interpret.Options) (interpret.CommitteeCurve, error) {
	opt = opt.Normalized()
	key := curveKey{method: method, feature: feature, class: opt.Class, bins: opt.Bins}
	for {
		c.mu.Lock()
		e, ok := c.entries[key]
		if !ok {
			if len(c.entries) >= maxCurveEntries {
				// Bounded: compute directly without storing.
				c.mu.Unlock()
				c.misses.Add(1)
				return interpret.CommitteeCtx(ctx, c.models, c.d, feature, method, opt)
			}
			e = &curveEntry{done: make(chan struct{})}
			c.entries[key] = e
			c.mu.Unlock()
			c.misses.Add(1)
			cc, err := interpret.CommitteeCtx(ctx, c.models, c.d, feature, method, opt)
			if isCtxErr(err) {
				// This caller's context expired, not a property of the
				// inputs: drop the entry so followers recompute.
				c.mu.Lock()
				delete(c.entries, key)
				c.mu.Unlock()
				e.err = err
				close(e.done)
				return interpret.CommitteeCurve{}, err
			}
			e.cc, e.err = cc, err
			close(e.done)
			return cc, err
		}
		c.mu.Unlock()
		select {
		case <-e.done:
			if isCtxErr(e.err) {
				continue // the computing goroutine was cancelled; retry
			}
			c.hits.Add(1)
			return e.cc, e.err
		case <-ctx.Done():
			return interpret.CommitteeCurve{}, ctx.Err()
		}
	}
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
