package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"

	"github.com/netml/alefb/internal/active"
	"github.com/netml/alefb/internal/core"
	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/faultinject"
	"github.com/netml/alefb/internal/ml"
	"github.com/netml/alefb/internal/parallel"
	"github.com/netml/alefb/internal/rng"
	"github.com/netml/alefb/internal/screamset"
	"github.com/netml/alefb/internal/stats"
)

// RunOptions carries the robustness knobs of an experiment run. They live
// outside ScreamConfig/UCLConfig on purpose: the config is embedded in
// the persisted result, and a resumed run must serialize byte-identically
// to an uninterrupted one.
type RunOptions struct {
	// Checkpoint, when non-nil, saves one snapshot per completed trial.
	Checkpoint *Checkpoint
	// Resume additionally restores already-completed trials from
	// Checkpoint instead of recomputing them.
	Resume bool
	// Fault is the test-only injector; Crash(trial) simulates a process
	// kill before that trial.
	Fault *faultinject.Injector
}

// Table-1 algorithm names, in the paper's row order.
const (
	AlgNoFeedback    = "Without feedback"
	AlgWithinALE     = "Within-ALE"
	AlgCrossALE      = "Cross-ALE"
	AlgUniform       = "Uniform"
	AlgConfidence    = "Confidence based"
	AlgUpsampling    = "Upsampling"
	AlgQBC           = "QBC"
	AlgWithinALEPool = "Within-ALE-Pool"
	AlgCrossALEPool  = "Cross-ALE-Pool"
)

// Table1Row is one line of Table 1.
type Table1Row struct {
	Algorithm string
	// Accuracies holds balanced accuracy per (repetition, test set),
	// ordered rep-major so rows are pairable for the Wilcoxon test.
	Accuracies []float64
	Mean, Std  float64
	// PvsNoFeedback / PvsWithin / PvsCross are one-sided Wilcoxon
	// p-values with the alternative "this row < the reference row"
	// (small means the reference algorithm is significantly better),
	// mirroring the paper's P(x, y) columns. NaN on the diagonal.
	PvsNoFeedback, PvsWithin, PvsCross float64
	// MeanPointsAdded is the average number of feedback points actually
	// added (pool-restricted variants add fewer; the paper reports the
	// count in parentheses).
	MeanPointsAdded float64
}

// Table1Result is the full table.
type Table1Result struct {
	Config ScreamConfig
	Rows   []Table1Row
}

// Row returns the named row, or nil.
func (t *Table1Result) Row(name string) *Table1Row {
	for i := range t.Rows {
		if t.Rows[i].Algorithm == name {
			return &t.Rows[i]
		}
	}
	return nil
}

// RunTable1 reproduces Table 1: it generates the Scream-vs-rest dataset
// from the emulator, runs every feedback algorithm Reps times, and
// reports balanced accuracy with Wilcoxon significance. progress, if
// non-nil, receives one line per completed step.
func RunTable1(cfg ScreamConfig, progress io.Writer) (*Table1Result, error) {
	return RunTable1Ctx(context.Background(), cfg, RunOptions{}, progress)
}

// RunTable1Ctx is RunTable1 under a hard deadline and with trial-level
// checkpointing: each repetition is snapshotted on completion, and a
// resumed run restores completed repetitions bit-identically (every rep
// seeds its own rng from the rep index, so skipping one perturbs nothing).
func RunTable1Ctx(ctx context.Context, cfg ScreamConfig, opts RunOptions, progress io.Writer) (*Table1Result, error) {
	logf := func(format string, args ...interface{}) {
		if progress != nil {
			fmt.Fprintf(progress, format+"\n", args...)
		}
	}
	gen := screamOracle(cfg)
	r := rng.New(cfg.Seed)

	logf("generating datasets: train=%d test=%d pool=%d", cfg.TrainN, cfg.TestN, cfg.PoolN)
	train := gen.GenerateProduction(cfg.TrainN, r.Split())
	testAll := gen.GenerateProduction(cfg.TestN, r.Split())
	testSets, err := testAll.KChunks(cfg.TestSets, r.Split())
	if err != nil {
		return nil, err
	}
	pool := active.UniformPoints(screamset.Schema(), cfg.PoolN, r.Split())

	algs := []string{
		AlgNoFeedback, AlgWithinALE, AlgCrossALE, AlgUniform,
		AlgConfidence, AlgUpsampling, AlgQBC, AlgWithinALEPool, AlgCrossALEPool,
	}
	acc := make(map[string][]float64, len(algs))
	added := make(map[string][]float64, len(algs))

	fbCfg := core.Config{Bins: cfg.Bins, Classes: []int{screamset.LabelScream}, Workers: cfg.Workers}

	// commit folds one repetition's contribution into the accumulators, in
	// fixed algorithm order, whether the rep was computed or restored.
	commit := func(snap trialSnapshot) {
		for _, alg := range algs {
			acc[alg] = append(acc[alg], snap.Acc[alg]...)
			added[alg] = append(added[alg], snap.Added[alg])
		}
	}

	for rep := 0; rep < cfg.Reps; rep++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		key := fmt.Sprintf("table1-rep-%03d", rep)
		if opts.Resume {
			var snap trialSnapshot
			if ok, err := opts.Checkpoint.Load(key, &snap); err != nil {
				return nil, err
			} else if ok {
				commit(snap)
				logf("rep %d/%d: restored from checkpoint", rep+1, cfg.Reps)
				continue
			}
		}
		if opts.Fault.Crash(rep) {
			return nil, fmt.Errorf("experiments: before rep %d: %w", rep, faultinject.ErrSimulatedCrash)
		}
		snap := trialSnapshot{Acc: map[string][]float64{}, Added: map[string]float64{}}
		repSeed := cfg.Seed + uint64(rep+1)*1_000_003
		repRand := rng.New(repSeed)
		// Each rep labels through its own oracle fork so its measurement
		// noise depends only on the rep index — the checkpoint/resume
		// bit-identity hinges on it (see Generator.Fork).
		repGen := gen.Fork(uint64(rep))

		base, err := runAutoMLCtx(ctx, train, cfg.AutoML, repSeed)
		if err != nil {
			return nil, err
		}
		snap.Acc[AlgNoFeedback] = evalOnSets(base, testSets)
		snap.Added[AlgNoFeedback] = 0
		logf("rep %d/%d: baseline done (val %.3f)", rep+1, cfg.Reps, base.ValScore)

		// Committees.
		within := core.WithinCommittee(base)
		crossCfg := cfg.AutoML
		crossCfg.Seed = repSeed
		cross, _, err := core.CrossCommitteeCtx(ctx, train, crossCfg, cfg.CrossRuns)
		if err != nil {
			return nil, err
		}
		logf("rep %d/%d: cross committee (%d runs) done", rep+1, cfg.Reps, cfg.CrossRuns)

		// Each algorithm produces an augmentation dataset; then a fresh
		// AutoML run on train+augmentation is evaluated.
		type algResult struct {
			add *data.Dataset
			err error
		}
		augment := map[string]algResult{}

		suggest := func(committee []ml.Classifier) algResult {
			add, _, err := core.Suggest(committee, train, fbCfg, cfg.FeedbackN, repGen, repRand.Split())
			return algResult{add: add, err: err}
		}
		suggestPool := func(committee []ml.Classifier) algResult {
			fb, err := core.Compute(committee, train, fbCfg)
			if err != nil {
				return algResult{err: err}
			}
			poolSet := data.New(train.Schema)
			for _, x := range pool {
				poolSet.Append(x, 0) // labels assigned on selection below
			}
			idx := fb.FilterPool(poolSet)
			if len(idx) > cfg.FeedbackN {
				sel := repRand.Sample(len(idx), cfg.FeedbackN)
				sub := make([]int, len(sel))
				for i, s := range sel {
					sub[i] = idx[s]
				}
				idx = sub
			}
			add := data.New(train.Schema)
			for _, i := range idx {
				add.Append(pool[i], repGen.Label(pool[i]))
			}
			return algResult{add: add}
		}
		labelled := func(idx []int) algResult {
			add := data.New(train.Schema)
			for _, i := range idx {
				add.Append(pool[i], repGen.Label(pool[i]))
			}
			return algResult{add: add}
		}

		augment[AlgWithinALE] = suggest(within)
		augment[AlgCrossALE] = suggest(cross)
		augment[AlgUniform] = algResult{add: active.Uniform(train.Schema, cfg.FeedbackN, repGen, repRand.Split())}
		augment[AlgConfidence] = labelled(active.LeastConfidence(base, pool, cfg.FeedbackN))
		augment[AlgQBC] = labelled(active.QBC(within, pool, cfg.FeedbackN, active.QBCVoteEntropy))
		augment[AlgUpsampling] = algResult{add: active.SMOTE(train, cfg.FeedbackN, 5, repRand.Split())}
		augment[AlgWithinALEPool] = suggestPool(within)
		augment[AlgCrossALEPool] = suggestPool(cross)

		// The eight retrains are independent trials: each is fully
		// determined by its derived seed, so they run concurrently on the
		// experiment's worker pool and are committed in algorithm order.
		retrainCfg := innerAutoML(cfg.AutoML, cfg.Workers)
		type trial struct {
			accs  []float64
			added float64
		}
		trials, err := parallel.MapCtx(ctx, len(algs), cfg.Workers, func(ai int) (trial, error) {
			alg := algs[ai]
			if alg == AlgNoFeedback {
				return trial{}, nil
			}
			res := augment[alg]
			if res.err != nil {
				return trial{}, fmt.Errorf("experiments: %s: %w", alg, res.err)
			}
			retrain, err := train.Concat(res.add)
			if err != nil {
				return trial{}, fmt.Errorf("experiments: %s: %w", alg, err)
			}
			ens, err := runAutoMLCtx(ctx, retrain, retrainCfg, repSeed+uint64(ai+1)*97)
			if err != nil {
				return trial{}, fmt.Errorf("experiments: retrain %s: %w", alg, err)
			}
			return trial{accs: evalOnSets(ens, testSets), added: float64(res.add.Len())}, nil
		})
		if err != nil {
			return nil, err
		}
		for ai, alg := range algs {
			if alg == AlgNoFeedback {
				continue
			}
			snap.Acc[alg] = trials[ai].accs
			snap.Added[alg] = trials[ai].added
			logf("rep %d/%d: %s done (+%.0f points)", rep+1, cfg.Reps, alg, trials[ai].added)
		}
		commit(snap)
		if err := opts.Checkpoint.Save(key, snap); err != nil {
			return nil, err
		}
	}

	result := &Table1Result{Config: cfg}
	// pval computes P(ref, X): the one-sided Wilcoxon p-value for the
	// alternative "X has greater balanced accuracy than ref" (the paper's
	// convention; small means X significantly improves on ref).
	pval := func(x, ref []float64) float64 {
		res, err := stats.WilcoxonGreater(ref, x)
		if err != nil {
			return 1
		}
		return res.P
	}
	for _, alg := range algs {
		row := Table1Row{
			Algorithm:       alg,
			Accuracies:      acc[alg],
			Mean:            stats.Mean(acc[alg]),
			Std:             stats.StdDev(acc[alg]),
			MeanPointsAdded: stats.Mean(added[alg]),
		}
		// The paper's P(ref, X): alternative hypothesis "ref < X", i.e.
		// evidence that X improves on ref.
		row.PvsNoFeedback = pval(acc[alg], acc[AlgNoFeedback])
		row.PvsWithin = pval(acc[alg], acc[AlgWithinALE])
		row.PvsCross = pval(acc[alg], acc[AlgCrossALE])
		result.Rows = append(result.Rows, row)
	}
	return result, nil
}

// String renders the result in the paper's Table 1 layout.
func (t *Table1Result) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 1: Scream vs rest balanced accuracy (%d reps x %d test sets)\n",
		t.Config.Reps, t.Config.TestSets)
	fmt.Fprintf(&sb, "%-22s %-18s %-16s %-16s %-16s %s\n",
		"Algorithm (X)", "balanced accuracy", "P(no fb, X)", "P(within, X)", "P(cross, X)", "points")
	for _, row := range t.Rows {
		fmt.Fprintf(&sb, "%-22s %6.1f%% +/- %4.1f%% %-16s %-16s %-16s %.0f\n",
			row.Algorithm, row.Mean*100, row.Std*100,
			fmtP(row.Algorithm, AlgNoFeedback, row.PvsNoFeedback),
			fmtP(row.Algorithm, AlgWithinALE, row.PvsWithin),
			fmtP(row.Algorithm, AlgCrossALE, row.PvsCross),
			row.MeanPointsAdded)
	}
	// Holm-Bonferroni correction over the eight comparisons against the
	// no-feedback baseline (the paper reports raw p-values; careful
	// readers should threshold these instead).
	var raw []float64
	var names []string
	for _, row := range t.Rows {
		if row.Algorithm == AlgNoFeedback {
			continue
		}
		raw = append(raw, row.PvsNoFeedback)
		names = append(names, row.Algorithm)
	}
	adjusted := stats.HolmBonferroni(raw)
	sb.WriteString("Holm-adjusted P(no fb, X):")
	for i, name := range names {
		fmt.Fprintf(&sb, " %s=%.3g", name, adjusted[i])
	}
	sb.WriteString("\n")
	return sb.String()
}

func fmtP(alg, ref string, p float64) string {
	if alg == ref {
		return "NA"
	}
	return fmt.Sprintf("%.3g", p)
}
