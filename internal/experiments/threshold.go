package experiments

import (
	"fmt"
	"io"
	"strings"

	"github.com/netml/alefb/internal/core"
	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/rng"
	"github.com/netml/alefb/internal/screamset"
	"github.com/netml/alefb/internal/stats"
)

// ThresholdPoint is one row of the threshold sweep (§4.2 "Setting the
// threshold"): how the flagged subspace shrinks as T grows.
type ThresholdPoint struct {
	// Quantile of the std distribution T was set to (0.5 = the paper's
	// median heuristic).
	Quantile float64
	// Threshold is the resulting T.
	Threshold float64
	// FlaggedFeatures counts features with at least one region.
	FlaggedFeatures int
	// RegionFraction is the flagged width summed over features, divided
	// by the total feature-range width (a size measure of the sampling
	// area the user is given).
	RegionFraction float64
	// PoolHits is the number of candidate-pool points inside the regions.
	PoolHits int
}

// ThresholdResult is the sweep outcome.
type ThresholdResult struct {
	Points []ThresholdPoint
	// MedianThreshold is the T the paper's heuristic picks.
	MedianThreshold float64
}

// RunThresholdSweep quantifies the paper's threshold discussion on the
// Scream problem: lower thresholds yield larger feature subspaces (better
// when the sampling budget is high), higher thresholds concentrate on the
// most contested regions (better when it is low).
func RunThresholdSweep(cfg ScreamConfig, progress io.Writer) (*ThresholdResult, error) {
	gen := screamOracle(cfg)
	r := rng.New(cfg.Seed + 17)
	train := gen.GenerateProduction(cfg.TrainN, r.Split())
	poolPts := make([][]float64, 0, cfg.PoolN)
	schema := screamset.Schema()
	for i := 0; i < cfg.PoolN; i++ {
		poolPts = append(poolPts, screamset.SampleCondition(r))
	}
	pool := data.New(schema)
	for _, x := range poolPts {
		pool.Append(x, 0)
	}
	if progress != nil {
		fmt.Fprintf(progress, "threshold sweep: training AutoML on %d rows\n", train.Len())
	}
	ens, err := runAutoML(train, cfg.AutoML, cfg.Seed+17)
	if err != nil {
		return nil, err
	}
	committee := core.WithinCommittee(ens)

	// First pass with the median heuristic to learn the std distribution.
	fb0, err := core.Compute(committee, train, core.Config{Bins: cfg.Bins, Classes: []int{screamset.LabelScream}, Workers: cfg.Workers})
	if err != nil {
		return nil, err
	}
	var allStds []float64
	for _, fa := range fb0.Analyses {
		allStds = append(allStds, fa.Std...)
	}

	res := &ThresholdResult{MedianThreshold: fb0.Threshold}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.95} {
		th := stats.Quantile(allStds, q)
		if th <= 0 {
			th = 1e-12
		}
		fb, err := core.Compute(committee, train, core.Config{
			Bins:      cfg.Bins,
			Threshold: th,
			Classes:   []int{screamset.LabelScream},
			Workers:   cfg.Workers,
		})
		if err != nil {
			return nil, err
		}
		pt := ThresholdPoint{Quantile: q, Threshold: th}
		totalWidth, flaggedWidth := 0.0, 0.0
		for _, fa := range fb.Analyses {
			f := schema.Features[fa.Feature]
			totalWidth += f.Max - f.Min
			for _, iv := range fa.Intervals {
				flaggedWidth += iv.Width()
			}
			if fa.Flagged() {
				pt.FlaggedFeatures++
			}
		}
		if totalWidth > 0 {
			pt.RegionFraction = flaggedWidth / totalWidth
		}
		pt.PoolHits = len(fb.FilterPool(pool))
		res.Points = append(res.Points, pt)
		if progress != nil {
			fmt.Fprintf(progress, "threshold q=%.2f T=%.4g: %d features, %.1f%% of space, %d pool hits\n",
				q, th, pt.FlaggedFeatures, pt.RegionFraction*100, pt.PoolHits)
		}
	}
	return res, nil
}

// String renders the sweep as a table.
func (t *ThresholdResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Threshold sweep (median heuristic T=%.4g)\n", t.MedianThreshold)
	fmt.Fprintf(&sb, "%-10s %-12s %-10s %-14s %s\n", "quantile", "T", "features", "space share", "pool hits")
	for _, p := range t.Points {
		fmt.Fprintf(&sb, "%-10.2f %-12.4g %-10d %-14.3f %d\n",
			p.Quantile, p.Threshold, p.FlaggedFeatures, p.RegionFraction, p.PoolHits)
	}
	return sb.String()
}
