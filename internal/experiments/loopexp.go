package experiments

import (
	"fmt"
	"io"
	"strings"

	"github.com/netml/alefb/internal/core"
	"github.com/netml/alefb/internal/metrics"
	"github.com/netml/alefb/internal/rng"
	"github.com/netml/alefb/internal/screamset"
	"github.com/netml/alefb/internal/stats"
)

// LoopPoint is one round of the convergence experiment.
type LoopPoint struct {
	Round     int
	TrainSize int
	// PeakStd is the committee's largest disagreement at this round.
	PeakStd float64
	// BalancedAccuracy on the held-out test sets after this round's model.
	BalancedAccuracy float64
}

// LoopExpResult is the iterative-feedback convergence study: an extension
// of the paper's single-round protocol showing how accuracy and committee
// disagreement evolve over repeated suggest-label-retrain cycles.
type LoopExpResult struct {
	Points []LoopPoint
	// FinalAccuracy after the last refit.
	FinalAccuracy float64
}

// RunLoopExperiment runs a multi-round Within-ALE campaign on the Scream
// problem, splitting the per-experiment budget across rounds.
func RunLoopExperiment(cfg ScreamConfig, rounds int, progress io.Writer) (*LoopExpResult, error) {
	if rounds <= 0 {
		rounds = 3
	}
	gen := screamOracle(cfg)
	r := rng.New(cfg.Seed + 53)
	train := gen.GenerateProduction(cfg.TrainN, r.Split())
	testAll := gen.GenerateProduction(cfg.TestN, r.Split())
	testSets, err := testAll.KChunks(cfg.TestSets, r.Split())
	if err != nil {
		return nil, err
	}

	perRound := cfg.FeedbackN / rounds
	if perRound < 1 {
		perRound = 1
	}
	mlCfg := cfg.AutoML
	mlCfg.Seed = cfg.Seed + 53
	loopRes, err := core.RunLoop(train, core.LoopConfig{
		Rounds:   rounds,
		PerRound: perRound,
		AutoML:   mlCfg,
		Feedback: core.Config{Bins: cfg.Bins, Classes: []int{screamset.LabelScream}, Workers: cfg.Workers},
		Oracle:   gen,
		Seed:     cfg.Seed + 59,
	})
	if err != nil {
		return nil, err
	}
	res := &LoopExpResult{}
	for _, lr := range loopRes.Rounds {
		acc := evalOnSets(lr.Ensemble, testSets)
		res.Points = append(res.Points, LoopPoint{
			Round:            lr.Round,
			TrainSize:        lr.TrainSize,
			PeakStd:          lr.PeakStd,
			BalancedAccuracy: stats.Mean(acc),
		})
		if progress != nil {
			fmt.Fprintf(progress, "loop round %d: train=%d peakStd=%.4g acc=%.3f\n",
				lr.Round, lr.TrainSize, lr.PeakStd, stats.Mean(acc))
		}
	}
	finalPred := loopRes.Final.Predict(testAll.X)
	res.FinalAccuracy = metrics.BalancedAccuracy(testAll.Schema.NumClasses(), testAll.Y, finalPred)
	return res, nil
}

// String renders the convergence table.
func (l *LoopExpResult) String() string {
	var sb strings.Builder
	sb.WriteString("Iterative feedback convergence (Within-ALE, per-round budget)\n")
	fmt.Fprintf(&sb, "%-8s %-12s %-12s %s\n", "round", "train size", "peak std", "balanced accuracy")
	for _, p := range l.Points {
		fmt.Fprintf(&sb, "%-8d %-12d %-12.4g %.3f\n", p.Round, p.TrainSize, p.PeakStd, p.BalancedAccuracy)
	}
	fmt.Fprintf(&sb, "final (all rounds merged): %.3f\n", l.FinalAccuracy)
	return sb.String()
}
