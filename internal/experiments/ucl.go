package experiments

import (
	"context"
	"fmt"
	"io"
	"strings"

	"github.com/netml/alefb/internal/active"
	"github.com/netml/alefb/internal/core"
	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/faultinject"
	"github.com/netml/alefb/internal/firewall"
	"github.com/netml/alefb/internal/ml"
	"github.com/netml/alefb/internal/parallel"
	"github.com/netml/alefb/internal/rng"
	"github.com/netml/alefb/internal/stats"
)

// UCLRow is one algorithm's outcome on the firewall dataset.
type UCLRow struct {
	Algorithm  string
	Accuracies []float64 // per (split, test set)
	Mean, Std  float64
	// PvsNoFeedback is the one-sided p-value that this algorithm beats
	// the raw training data (the paper reports 0.02 / 0.04 for the ALE
	// variants).
	PvsNoFeedback   float64
	MeanPointsAdded float64
}

// UCLResult is the §4.2 experiment outcome.
type UCLResult struct {
	Config UCLConfig
	Rows   []UCLRow
}

// Row returns the named row, or nil.
func (u *UCLResult) Row(name string) *UCLRow {
	for i := range u.Rows {
		if u.Rows[i].Algorithm == name {
			return &u.Rows[i]
		}
	}
	return nil
}

// RunUCL reproduces the §4.2 experiment on the synthetic firewall data:
// 40% train / 20% test (split into TestSets) / 40% candidate pool,
// re-split cfg.Splits times. All feedback here is pool-based — there is
// no oracle for firewall logs — matching the paper's fixed-pool setting.
func RunUCL(cfg UCLConfig, progress io.Writer) (*UCLResult, error) {
	return RunUCLCtx(context.Background(), cfg, RunOptions{}, progress)
}

// RunUCLCtx is RunUCL under a hard deadline and with per-split
// checkpointing; see RunTable1Ctx for the resume contract (each split
// seeds its own rng from the split index, so restoring completed splits
// is bit-identical).
func RunUCLCtx(ctx context.Context, cfg UCLConfig, opts RunOptions, progress io.Writer) (*UCLResult, error) {
	logf := func(format string, args ...interface{}) {
		if progress != nil {
			fmt.Fprintf(progress, format+"\n", args...)
		}
	}
	r := rng.New(cfg.Seed)
	full := firewall.Generate(cfg.TotalN, r.Split())
	logf("generated %d firewall rows", full.Len())

	algs := []string{AlgNoFeedback, AlgWithinALEPool, AlgCrossALEPool, AlgUniform, AlgConfidence, AlgQBC}
	acc := make(map[string][]float64)
	added := make(map[string][]float64)
	fbCfg := core.Config{Bins: cfg.Bins, Workers: cfg.Workers}

	commit := func(snap trialSnapshot) {
		for _, alg := range algs {
			acc[alg] = append(acc[alg], snap.Acc[alg]...)
			added[alg] = append(added[alg], snap.Added[alg])
		}
	}

	for split := 0; split < cfg.Splits; split++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		key := fmt.Sprintf("ucl-split-%03d", split)
		if opts.Resume {
			var snap trialSnapshot
			if ok, err := opts.Checkpoint.Load(key, &snap); err != nil {
				return nil, err
			} else if ok {
				commit(snap)
				logf("split %d/%d: restored from checkpoint", split+1, cfg.Splits)
				continue
			}
		}
		if opts.Fault.Crash(split) {
			return nil, fmt.Errorf("experiments: before split %d: %w", split, faultinject.ErrSimulatedCrash)
		}
		snap := trialSnapshot{Acc: map[string][]float64{}, Added: map[string]float64{}}
		splitSeed := cfg.Seed + uint64(split+1)*2_000_003
		splitRand := rng.New(splitSeed)
		shuffled := full.Clone()
		shuffled.Shuffle(splitRand)
		n := shuffled.Len()
		train := shuffled.Subset(seq(0, 2*n/5))
		test := shuffled.Subset(seq(2*n/5, 3*n/5))
		pool := shuffled.Subset(seq(3*n/5, n))
		testSets, err := test.KChunks(cfg.TestSets, splitRand)
		if err != nil {
			return nil, err
		}

		base, err := runAutoMLCtx(ctx, train, cfg.AutoML, splitSeed)
		if err != nil {
			return nil, err
		}
		snap.Acc[AlgNoFeedback] = evalOnSets(base, testSets)
		snap.Added[AlgNoFeedback] = 0
		logf("split %d/%d: baseline done (val %.3f)", split+1, cfg.Splits, base.ValScore)

		within := core.WithinCommittee(base)
		crossCfg := cfg.AutoML
		crossCfg.Seed = splitSeed
		cross, _, err := core.CrossCommitteeCtx(ctx, train, crossCfg, cfg.CrossRuns)
		if err != nil {
			return nil, err
		}

		poolPick := func(committee []ml.Classifier) (*data.Dataset, error) {
			add, _, err := core.SuggestFromPool(committee, train, pool, fbCfg, cfg.FeedbackN, splitRand.Split())
			return add, err
		}
		uniformPick := func() *data.Dataset {
			k := cfg.FeedbackN
			if k > pool.Len() {
				k = pool.Len()
			}
			return pool.Subset(splitRand.Sample(pool.Len(), k))
		}

		augment := map[string]*data.Dataset{}
		if augment[AlgWithinALEPool], err = poolPick(within); err != nil {
			return nil, err
		}
		if augment[AlgCrossALEPool], err = poolPick(cross); err != nil {
			return nil, err
		}
		augment[AlgUniform] = uniformPick()
		augment[AlgConfidence] = pool.Subset(active.LeastConfidence(base, pool.X, cfg.FeedbackN))
		augment[AlgQBC] = pool.Subset(active.QBC(within, pool.X, cfg.FeedbackN, active.QBCVoteEntropy))

		// Independent retrain trials, run concurrently and committed in
		// algorithm order (see RunTable1).
		retrainCfg := innerAutoML(cfg.AutoML, cfg.Workers)
		trials, err := parallel.MapCtx(ctx, len(algs), cfg.Workers, func(ai int) ([]float64, error) {
			alg := algs[ai]
			if alg == AlgNoFeedback {
				return nil, nil
			}
			retrain, err := train.Concat(augment[alg])
			if err != nil {
				return nil, fmt.Errorf("experiments: ucl retrain %s: %w", alg, err)
			}
			ens, err := runAutoMLCtx(ctx, retrain, retrainCfg, splitSeed+uint64(ai+1)*89)
			if err != nil {
				return nil, fmt.Errorf("experiments: ucl retrain %s: %w", alg, err)
			}
			return evalOnSets(ens, testSets), nil
		})
		if err != nil {
			return nil, err
		}
		for ai, alg := range algs {
			if alg == AlgNoFeedback {
				continue
			}
			add := augment[alg]
			snap.Acc[alg] = trials[ai]
			snap.Added[alg] = float64(add.Len())
			logf("split %d/%d: %s done (+%d points)", split+1, cfg.Splits, alg, add.Len())
		}
		commit(snap)
		if err := opts.Checkpoint.Save(key, snap); err != nil {
			return nil, err
		}
	}

	result := &UCLResult{Config: cfg}
	for _, alg := range algs {
		row := UCLRow{
			Algorithm:       alg,
			Accuracies:      acc[alg],
			Mean:            stats.Mean(acc[alg]),
			Std:             stats.StdDev(acc[alg]),
			MeanPointsAdded: stats.Mean(added[alg]),
		}
		if alg != AlgNoFeedback {
			if res, err := stats.WilcoxonGreater(acc[AlgNoFeedback], acc[alg]); err == nil {
				row.PvsNoFeedback = res.P
			} else {
				row.PvsNoFeedback = 1
			}
		}
		result.Rows = append(result.Rows, row)
	}
	return result, nil
}

// seq returns [lo, hi).
func seq(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

// String renders the UCL summary in the style of §4.2.
func (u *UCLResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "UCL (synthetic firewall) balanced accuracy, %d splits x %d test sets\n",
		u.Config.Splits, u.Config.TestSets)
	fmt.Fprintf(&sb, "%-22s %-20s %-14s %s\n", "Algorithm", "balanced accuracy", "P(no fb, X)", "points")
	for _, row := range u.Rows {
		p := "NA"
		if row.Algorithm != AlgNoFeedback {
			p = fmt.Sprintf("%.3g", row.PvsNoFeedback)
		}
		fmt.Fprintf(&sb, "%-22s %6.1f%% +/- %5.1f%%  %-14s %.0f\n",
			row.Algorithm, row.Mean*100, row.Std*100, p, row.MeanPointsAdded)
	}
	return sb.String()
}
