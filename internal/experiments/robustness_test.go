package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/netml/alefb/internal/faultinject"
)

// corruptFile truncates a snapshot mid-JSON.
func corruptFile(dir, name string) error {
	return os.WriteFile(filepath.Join(dir, name), []byte(`{"acc":{`), 0o644)
}

// marshal reduces a result to the bytes the CLI would persist; the
// resume contract is stated over exactly these bytes.
func marshal(t *testing.T, v interface{}) []byte {
	t.Helper()
	blob, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestTable1KillAndResume is the crash-recovery golden test: a run killed
// (via injected crash) before its second repetition, then resumed from
// its checkpoints, must serialize byte-identically to an uninterrupted
// run. Repetition 0 is restored from disk, repetition 1 is computed live
// — any nondeterminism in the snapshot round-trip would show up here.
func TestTable1KillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	cfg := tinyScream()
	cfg.Reps = 2

	uninterrupted, err := RunTable1(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := marshal(t, uninterrupted)

	ckpt, err := OpenCheckpoint(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	crash := RunOptions{Checkpoint: ckpt, Fault: faultinject.New().WithCrashBefore(1)}
	if _, err := RunTable1Ctx(context.Background(), cfg, crash, nil); !errors.Is(err, faultinject.ErrSimulatedCrash) {
		t.Fatalf("crash run: err = %v, want ErrSimulatedCrash", err)
	}

	resumed, err := RunTable1Ctx(context.Background(), cfg, RunOptions{Checkpoint: ckpt, Resume: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := marshal(t, resumed); !bytes.Equal(got, want) {
		t.Fatalf("resumed result differs from uninterrupted run:\n got: %s\nwant: %s", got, want)
	}
}

// TestUCLKillAndResume is the same contract for the UCL experiment's
// per-split snapshots.
func TestUCLKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	cfg := tinyUCL()
	cfg.Splits = 2

	uninterrupted, err := RunUCL(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := marshal(t, uninterrupted)

	ckpt, err := OpenCheckpoint(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	crash := RunOptions{Checkpoint: ckpt, Fault: faultinject.New().WithCrashBefore(1)}
	if _, err := RunUCLCtx(context.Background(), cfg, crash, nil); !errors.Is(err, faultinject.ErrSimulatedCrash) {
		t.Fatalf("crash run: err = %v, want ErrSimulatedCrash", err)
	}

	resumed, err := RunUCLCtx(context.Background(), cfg, RunOptions{Checkpoint: ckpt, Resume: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := marshal(t, resumed); !bytes.Equal(got, want) {
		t.Fatalf("resumed result differs from uninterrupted run:\n got: %s\nwant: %s", got, want)
	}
}

// TestTable1CtxDeadline: an expired deadline aborts the experiment with
// the context error instead of producing a partial table.
func TestTable1CtxDeadline(t *testing.T) {
	cfg := tinyScream()
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := RunTable1Ctx(ctx, cfg, RunOptions{}, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if _, err := RunUCLCtx(ctx, tinyUCL(), RunOptions{}, nil); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ucl: err = %v, want context.DeadlineExceeded", err)
	}
}

// TestCheckpointStore covers the store's contract directly: miss on
// absent keys, round-trip on present ones, corrupt snapshots reported
// rather than skipped, nil store inert.
func TestCheckpointStore(t *testing.T) {
	ckpt, err := OpenCheckpoint(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var out trialSnapshot
	if ok, err := ckpt.Load("missing", &out); ok || err != nil {
		t.Fatalf("absent key: ok=%v err=%v", ok, err)
	}
	in := trialSnapshot{
		Acc:   map[string][]float64{"a": {0.5, 0.75}},
		Added: map[string]float64{"a": 3},
	}
	if err := ckpt.Save("trial-000", in); err != nil {
		t.Fatal(err)
	}
	if ok, err := ckpt.Load("trial-000", &out); !ok || err != nil {
		t.Fatalf("present key: ok=%v err=%v", ok, err)
	}
	if out.Acc["a"][1] != 0.75 || out.Added["a"] != 3 {
		t.Fatalf("round trip lost data: %+v", out)
	}

	var nilStore *Checkpoint
	if err := nilStore.Save("x", in); err != nil {
		t.Fatalf("nil store Save: %v", err)
	}
	if ok, err := nilStore.Load("x", &out); ok || err != nil {
		t.Fatalf("nil store Load: ok=%v err=%v", ok, err)
	}
}

// TestCheckpointCorruptSnapshot: a truncated snapshot must fail the
// resume loudly — silently recomputing would mask the corruption, and
// silently skipping would produce a wrong table.
func TestCheckpointCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	ckpt, err := OpenCheckpoint(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := ckpt.Save("trial-000", trialSnapshot{}); err != nil {
		t.Fatal(err)
	}
	if err := corruptFile(dir, "trial-000.json"); err != nil {
		t.Fatal(err)
	}
	var out trialSnapshot
	if _, err := ckpt.Load("trial-000", &out); err == nil {
		t.Fatal("corrupt snapshot loaded without error")
	}
}
