// Package experiments reproduces every table and figure of the paper's
// evaluation (§4): Table 1 (Scream-vs-rest balanced accuracy across nine
// feedback algorithms with Wilcoxon p-values), the §4.2 UCL-dataset
// results, Figure 1 and Figure 2 (ALE plots), the threshold-setting
// analysis, and the ablations DESIGN.md lists.
//
// Every experiment has a Paper-scale configuration matching the paper's
// sizes and a Reduced configuration for quick runs and benchmarks. The
// reproduction targets the paper's *shape* — which algorithm wins, by
// roughly what factor, and where the crossovers fall — not its absolute
// numbers, since the substrate is an emulator rather than the authors'
// testbed.
package experiments

import (
	"context"
	"fmt"

	"github.com/netml/alefb/internal/automl"
	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/metrics"
	"github.com/netml/alefb/internal/parallel"
	"github.com/netml/alefb/internal/screamset"
)

// ScreamConfig sizes the Scream-vs-rest experiments (Table 1, Figure 1,
// threshold sweep, ablations).
type ScreamConfig struct {
	// TrainN is the initial training-set size (paper: 1161).
	TrainN int
	// FeedbackN is the number of points every feedback algorithm may add
	// (paper: 280).
	FeedbackN int
	// TestN is the total test-point count (paper: 4850), split into
	// TestSets near-equal sets (paper: 20).
	TestN    int
	TestSets int
	// PoolN is the uniformly-sampled unlabeled candidate pool for the
	// pool-based methods (paper: 2000).
	PoolN int
	// Reps is the number of experiment repetitions over AutoML seeds
	// (paper: 10).
	Reps int
	// CrossRuns is the number of AutoML runs in the Cross-ALE committee
	// (paper: 10).
	CrossRuns int
	// Bins is the ALE grid resolution.
	Bins int
	// AutoML is the per-run search budget.
	AutoML automl.Config
	// OracleDuration overrides the emulator run length in seconds; 0
	// keeps the generator's RTT-scaled default. Tests use short runs.
	OracleDuration float64
	// Seed drives everything.
	Seed uint64
	// Workers bounds the goroutines used for the independent trials of an
	// experiment (per-algorithm retrains, committee runs, ALE curves).
	// 0 selects runtime.GOMAXPROCS(0); 1 forces serial execution. Every
	// value produces identical tables and figures.
	Workers int
}

// PaperScreamConfig returns the paper's experiment sizes.
func PaperScreamConfig() ScreamConfig {
	return ScreamConfig{
		TrainN:    1161,
		FeedbackN: 280,
		TestN:     4850,
		TestSets:  20,
		PoolN:     2000,
		Reps:      10,
		CrossRuns: 10,
		Bins:      32,
		AutoML:    automl.Config{MaxCandidates: 24, Generations: 2, EnsembleSize: 10},
		Seed:      1,
	}
}

// ReducedScreamConfig returns a configuration small enough for benchmarks
// and CI while keeping every moving part of the pipeline.
func ReducedScreamConfig() ScreamConfig {
	return ScreamConfig{
		TrainN:    260,
		FeedbackN: 70,
		TestN:     800,
		TestSets:  8,
		PoolN:     400,
		Reps:      2,
		CrossRuns: 3,
		Bins:      24,
		AutoML:    automl.Config{MaxCandidates: 8, Generations: 1, EnsembleSize: 5},
		Seed:      1,
	}
}

// UCLConfig sizes the firewall-dataset experiments (§4.2, Figure 2).
type UCLConfig struct {
	// TotalN is the synthetic dataset size; the paper's splits are 40 %
	// train / 20 % test (in 20 sets) / 40 % candidate pool.
	TotalN int
	// Splits is the number of independent re-splits (paper: 5).
	Splits int
	// TestSets divides the test share (paper: 20).
	TestSets int
	// FeedbackN caps the points added from the pool.
	FeedbackN int
	// Bins is the ALE grid resolution.
	Bins int
	// CrossRuns for the Cross-ALE committee.
	CrossRuns int
	// AutoML is the per-run search budget.
	AutoML automl.Config
	// Seed drives everything.
	Seed uint64
	// Workers bounds the goroutines used for the independent trials of
	// the experiment; see ScreamConfig.Workers.
	Workers int
}

// PaperUCLConfig returns the UCL experiment at a size our AutoML engine
// can train in reasonable time (the original dataset has 65k rows; the
// split ratios and protocol match the paper).
func PaperUCLConfig() UCLConfig {
	return UCLConfig{
		TotalN:    12000,
		Splits:    5,
		TestSets:  20,
		FeedbackN: 280,
		Bins:      32,
		CrossRuns: 10,
		AutoML:    automl.Config{MaxCandidates: 20, Generations: 2, EnsembleSize: 8},
		Seed:      2,
	}
}

// ReducedUCLConfig returns a benchmark-sized UCL experiment.
func ReducedUCLConfig() UCLConfig {
	return UCLConfig{
		TotalN:    2000,
		Splits:    2,
		TestSets:  5,
		FeedbackN: 80,
		Bins:      24,
		CrossRuns: 3,
		AutoML:    automl.Config{MaxCandidates: 8, Generations: 1, EnsembleSize: 5},
		Seed:      2,
	}
}

// innerAutoML returns base reconfigured for use inside a batch of
// concurrent trials: when the batch itself parallelizes, the per-trial
// searches run serially so total concurrency stays near the knob. By the
// determinism guarantee (automl.Config.Workers) this is a pure scheduling
// choice and cannot change any result.
func innerAutoML(base automl.Config, batchWorkers int) automl.Config {
	if parallel.Workers(batchWorkers) > 1 {
		base.Workers = 1
	}
	return base
}

// runAutoML executes one AutoML run with a derived seed.
func runAutoML(train *data.Dataset, base automl.Config, seed uint64) (*automl.Ensemble, error) {
	return runAutoMLCtx(context.Background(), train, base, seed)
}

// runAutoMLCtx is runAutoML under the experiment's hard deadline.
func runAutoMLCtx(ctx context.Context, train *data.Dataset, base automl.Config, seed uint64) (*automl.Ensemble, error) {
	cfg := base
	cfg.Seed = seed
	ens, err := automl.RunCtx(ctx, train, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: automl: %w", err)
	}
	return ens, nil
}

// evalOnSets returns the ensemble's balanced accuracy on each test set.
func evalOnSets(ens *automl.Ensemble, sets []*data.Dataset) []float64 {
	out := make([]float64, len(sets))
	for i, s := range sets {
		pred := ens.Predict(s.X)
		out[i] = metrics.BalancedAccuracy(s.Schema.NumClasses(), s.Y, pred)
	}
	return out
}

// screamOracle builds the emulator oracle for a config.
func screamOracle(cfg ScreamConfig) *screamset.Generator {
	g := screamset.NewGenerator(cfg.Seed * 7919)
	g.Duration = cfg.OracleDuration
	return g
}
