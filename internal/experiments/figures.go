package experiments

import (
	"fmt"
	"io"

	"github.com/netml/alefb/internal/core"
	"github.com/netml/alefb/internal/firewall"
	"github.com/netml/alefb/internal/plot"
	"github.com/netml/alefb/internal/rng"
	"github.com/netml/alefb/internal/screamset"
	"github.com/netml/alefb/internal/stats"
)

// FigureResult bundles one reproduced figure: the analysed feature curve
// with per-point disagreement plus renderings.
type FigureResult struct {
	Name     string
	Analysis core.FeatureAnalysis
	// Threshold is the variance tolerance used for the flagged regions.
	Threshold float64
	// Plot is the renderable chart (mean ALE with std error bars and the
	// threshold reference line).
	Plot *plot.Plot
}

// Regions formats the flagged intervals like the paper ("x <= 45 ∪ x >= 99").
func (f *FigureResult) Regions() string {
	if len(f.Analysis.Intervals) == 0 {
		return "(none)"
	}
	s := ""
	for i, iv := range f.Analysis.Intervals {
		if i > 0 {
			s += " U "
		}
		s += iv.String()
	}
	return s
}

// buildFigure converts a feature analysis into a FigureResult.
func buildFigure(name string, fa core.FeatureAnalysis, threshold float64) *FigureResult {
	p := &plot.Plot{
		Title:  fmt.Sprintf("%s: ALE for %s", name, fa.Name),
		XLabel: fa.Name,
		YLabel: "ALE (mean +/- std across committee)",
		Series: []plot.Series{{
			Label: "mean ALE",
			X:     fa.Grid,
			Y:     fa.Mean,
			YErr:  fa.Std,
		}},
		HLines: []float64{threshold},
	}
	return &FigureResult{Name: name, Analysis: fa, Threshold: threshold, Plot: p}
}

// RunFigure1 reproduces Figure 1: the ALE plot (mean with cross-model
// error bars) for config.link_rate on the Scream-vs-rest problem, using a
// Within-ALE committee.
func RunFigure1(cfg ScreamConfig, progress io.Writer) (*FigureResult, error) {
	gen := screamOracle(cfg)
	r := rng.New(cfg.Seed + 11)
	train := gen.GenerateProduction(cfg.TrainN, r.Split())
	if progress != nil {
		fmt.Fprintf(progress, "figure1: dataset generated (%d rows), training AutoML\n", train.Len())
	}
	ens, err := runAutoML(train, cfg.AutoML, cfg.Seed+11)
	if err != nil {
		return nil, err
	}
	fb, err := core.Compute(core.WithinCommittee(ens), train, core.Config{
		Bins:    cfg.Bins,
		Classes: []int{screamset.LabelScream},
		Workers: cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	for _, fa := range fb.Analyses {
		if fa.Feature == screamset.FeatLinkRate {
			return buildFigure("Figure 1", fa, fb.Threshold), nil
		}
	}
	return nil, fmt.Errorf("experiments: link_rate analysis missing")
}

// Figure2Result holds the two panels of Figure 2.
type Figure2Result struct {
	SrcPort *FigureResult // Figure 2a
	DstPort *FigureResult // Figure 2b
}

// RunFigure2 reproduces Figure 2: ALE plots for the source port (2a) and
// destination port (2b) features of the firewall dataset, using a
// Within-ALE committee. The paper's narrative — noisy variance at low
// source ports, a variance spike at destination ports 443-445 — emerges
// from the synthetic generator's planted phenomena.
func RunFigure2(cfg UCLConfig, progress io.Writer) (*Figure2Result, error) {
	r := rng.New(cfg.Seed + 13)
	train := firewall.Generate(2*cfg.TotalN/5, r.Split())
	if progress != nil {
		fmt.Fprintf(progress, "figure2: dataset generated (%d rows), training AutoML\n", train.Len())
	}
	ens, err := runAutoML(train, cfg.AutoML, cfg.Seed+13)
	if err != nil {
		return nil, err
	}
	srcIdx, dstIdx := firewall.InterestingFeatures()
	committee := core.WithinCommittee(ens)
	// First pass with the median heuristic to learn the std distribution,
	// then re-extract regions at the 75th percentile: the port features
	// have disagreement almost everywhere at a low level, and the figure's
	// story is about where it *peaks* (low source ports, 443-445).
	fb, err := core.Compute(committee, train, core.Config{
		Bins:     cfg.Bins,
		Features: []int{srcIdx, dstIdx},
		Workers:  cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	var allStds []float64
	for _, fa := range fb.Analyses {
		allStds = append(allStds, fa.Std...)
	}
	threshold := stats.Quantile(allStds, 0.75)
	if threshold <= 0 {
		threshold = fb.Threshold
	}
	fb, err = core.Compute(committee, train, core.Config{
		Bins:      cfg.Bins,
		Threshold: threshold,
		Features:  []int{srcIdx, dstIdx},
		Workers:   cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	out := &Figure2Result{}
	for _, fa := range fb.Analyses {
		switch fa.Feature {
		case srcIdx:
			out.SrcPort = buildFigure("Figure 2a", fa, fb.Threshold)
		case dstIdx:
			out.DstPort = buildFigure("Figure 2b", zoomAnalysis(fa, 0, 1024), fb.Threshold)
		}
	}
	if out.SrcPort == nil || out.DstPort == nil {
		return nil, fmt.Errorf("experiments: port analyses missing")
	}
	return out, nil
}

// zoomAnalysis restricts an analysis to grid points within [lo, hi] for
// display (the paper's Figure 2b is zoomed to the 443-area of the
// destination-port axis). Intervals are clipped to the window; the full
// std/mean curves are truncated accordingly.
func zoomAnalysis(fa core.FeatureAnalysis, lo, hi float64) core.FeatureAnalysis {
	out := fa
	out.Grid = nil
	out.Mean = nil
	out.Std = nil
	for i, z := range fa.Grid {
		if z < lo || z > hi {
			continue
		}
		out.Grid = append(out.Grid, z)
		out.Mean = append(out.Mean, fa.Mean[i])
		out.Std = append(out.Std, fa.Std[i])
	}
	if len(out.Grid) < 2 {
		return fa // window too narrow; keep the full view
	}
	out.Intervals = nil
	for _, iv := range fa.Intervals {
		if iv.Hi < lo || iv.Lo > hi {
			continue
		}
		clipped := iv
		if clipped.Lo < lo {
			clipped.Lo = lo
		}
		if clipped.Hi > hi {
			clipped.Hi = hi
		}
		out.Intervals = append(out.Intervals, clipped)
	}
	return out
}
