package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
)

// Checkpoint is a directory of per-trial JSON snapshots. An experiment
// saves one snapshot after each completed trial (a Table-1 repetition, a
// UCL re-split); on resume, trials whose snapshot exists are restored
// instead of recomputed.
//
// Restoring is bit-identical by construction: each trial draws all of its
// randomness from an rng freshly seeded by the trial index (never from a
// stream shared across trials), so skipping a completed trial leaves every
// later trial's inputs untouched, and the snapshot holds the trial's full
// contribution to the result.
//
// The nil *Checkpoint is a no-op store: Save discards, Load always misses.
type Checkpoint struct {
	dir string
}

// OpenCheckpoint creates (if needed) and opens a snapshot directory.
func OpenCheckpoint(dir string) (*Checkpoint, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiments: checkpoint dir: %w", err)
	}
	return &Checkpoint{dir: dir}, nil
}

// Save writes v as the snapshot for key, atomically: the JSON is written
// to a temp file and renamed into place, so a crash mid-save can never
// leave a truncated snapshot for a later resume to trust.
func (c *Checkpoint) Save(key string, v interface{}) error {
	if c == nil {
		return nil
	}
	blob, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("experiments: checkpoint %s: %w", key, err)
	}
	final := filepath.Join(c.dir, key+".json")
	tmp, err := os.CreateTemp(c.dir, key+".tmp-*")
	if err != nil {
		return fmt.Errorf("experiments: checkpoint %s: %w", key, err)
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("experiments: checkpoint %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("experiments: checkpoint %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("experiments: checkpoint %s: %w", key, err)
	}
	return nil
}

// Load reads the snapshot for key into v. It returns (false, nil) when no
// snapshot exists — including on the nil store — and an error only for a
// present-but-unreadable snapshot, which a resume must not silently skip.
func (c *Checkpoint) Load(key string, v interface{}) (bool, error) {
	if c == nil {
		return false, nil
	}
	blob, err := os.ReadFile(filepath.Join(c.dir, key+".json"))
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("experiments: checkpoint %s: %w", key, err)
	}
	if err := json.Unmarshal(blob, v); err != nil {
		return false, fmt.Errorf("experiments: checkpoint %s corrupt: %w", key, err)
	}
	return true, nil
}

// trialSnapshot is one trial's full contribution to an experiment result:
// the per-algorithm accuracies and added-point counts it appended.
type trialSnapshot struct {
	Acc   map[string][]float64 `json:"acc"`
	Added map[string]float64   `json:"added"`
}
