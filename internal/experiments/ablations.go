package experiments

import (
	"fmt"
	"io"
	"strings"

	"github.com/netml/alefb/internal/active"
	"github.com/netml/alefb/internal/core"
	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/interpret"
	"github.com/netml/alefb/internal/metrics"
	"github.com/netml/alefb/internal/ml"
	"github.com/netml/alefb/internal/parallel"
	"github.com/netml/alefb/internal/priors"
	"github.com/netml/alefb/internal/rng"
	"github.com/netml/alefb/internal/screamset"
	"github.com/netml/alefb/internal/stats"
)

// AblationRow is one configuration's outcome in an ablation.
type AblationRow struct {
	Name      string
	Mean, Std float64
	// Extra holds study-specific metadata (e.g. points added, runs used).
	Extra float64
}

// AblationResult is a generic ablation table.
type AblationResult struct {
	Title string
	Rows  []AblationRow
}

// String renders the ablation table.
func (a *AblationResult) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", a.Title)
	for _, row := range a.Rows {
		fmt.Fprintf(&sb, "  %-38s %6.1f%% +/- %4.1f%%  (%.2f)\n", row.Name, row.Mean*100, row.Std*100, row.Extra)
	}
	return sb.String()
}

// RunAblationDisagreement (AB1) isolates the paper's §3 design choice:
// the same committee and the same suggestion budget, but disagreement
// measured by ALE variance (this work) vs prediction entropy (classic
// QBC) vs PDP variance. All three use the oracle setting.
func RunAblationDisagreement(cfg ScreamConfig, progress io.Writer) (*AblationResult, error) {
	gen := screamOracle(cfg)
	r := rng.New(cfg.Seed + 23)
	train := gen.GenerateProduction(cfg.TrainN, r.Split())
	testAll := gen.GenerateProduction(cfg.TestN, r.Split())
	testSets, err := testAll.KChunks(cfg.TestSets, r.Split())
	if err != nil {
		return nil, err
	}
	pool := active.UniformPoints(screamset.Schema(), cfg.PoolN, r.Split())

	acc := map[string][]float64{}
	added := map[string][]float64{}
	for rep := 0; rep < cfg.Reps; rep++ {
		seed := cfg.Seed + 23 + uint64(rep+1)*31_013
		repRand := rng.New(seed)
		base, err := runAutoML(train, cfg.AutoML, seed)
		if err != nil {
			return nil, err
		}
		committee := core.WithinCommittee(base)

		variants := []struct {
			name  string
			build func() (*data.Dataset, error)
		}{
			{"ALE-variance (this work)", func() (*data.Dataset, error) {
				add, _, err := core.Suggest(committee, train, core.Config{
					Bins: cfg.Bins, Classes: []int{screamset.LabelScream}, Workers: cfg.Workers,
				}, cfg.FeedbackN, gen, repRand.Split())
				return add, err
			}},
			{"PDP-variance", func() (*data.Dataset, error) {
				add, _, err := core.Suggest(committee, train, core.Config{
					Method: interpret.MethodPDP,
					Bins:   cfg.Bins, Classes: []int{screamset.LabelScream}, Workers: cfg.Workers,
				}, cfg.FeedbackN, gen, repRand.Split())
				return add, err
			}},
			{"prediction entropy (QBC)", func() (*data.Dataset, error) {
				idx := active.QBC(committee, pool, cfg.FeedbackN, active.QBCVoteEntropy)
				add := data.New(train.Schema)
				for _, i := range idx {
					add.Append(pool[i], gen.Label(pool[i]))
				}
				return add, nil
			}},
		}
		// Suggestion building consumes repRand and the oracle serially;
		// the three retrains are then independent concurrent trials.
		adds := make([]*data.Dataset, len(variants))
		for vi, v := range variants {
			add, err := v.build()
			if err != nil {
				return nil, fmt.Errorf("experiments: ablation %s: %w", v.name, err)
			}
			adds[vi] = add
		}
		retrainCfg := innerAutoML(cfg.AutoML, cfg.Workers)
		trials, err := parallel.Map(len(variants), cfg.Workers, func(vi int) ([]float64, error) {
			retrain, err := train.Concat(adds[vi])
			if err != nil {
				return nil, err
			}
			ens, err := runAutoML(retrain, retrainCfg, seed+uint64(vi+1)*101)
			if err != nil {
				return nil, err
			}
			return evalOnSets(ens, testSets), nil
		})
		if err != nil {
			return nil, err
		}
		for vi, v := range variants {
			acc[v.name] = append(acc[v.name], trials[vi]...)
			added[v.name] = append(added[v.name], float64(adds[vi].Len()))
			if progress != nil {
				fmt.Fprintf(progress, "ablation rep %d: %s done\n", rep+1, v.name)
			}
		}
	}
	res := &AblationResult{Title: "Ablation AB1: disagreement measure (same committee, same budget)"}
	for _, name := range []string{"ALE-variance (this work)", "PDP-variance", "prediction entropy (QBC)"} {
		res.Rows = append(res.Rows, AblationRow{
			Name: name,
			Mean: stats.Mean(acc[name]),
			Std:  stats.StdDev(acc[name]),
			Extra: func() float64 {
				return stats.Mean(added[name])
			}(),
		})
	}
	return res, nil
}

// RunAblationCrossRuns (AB2) varies the number of AutoML runs in the
// Cross-ALE committee (the paper uses 10 and notes the cost trade-off).
func RunAblationCrossRuns(cfg ScreamConfig, runCounts []int, progress io.Writer) (*AblationResult, error) {
	if len(runCounts) == 0 {
		runCounts = []int{1, 2, 5, 10}
	}
	gen := screamOracle(cfg)
	r := rng.New(cfg.Seed + 29)
	train := gen.GenerateProduction(cfg.TrainN, r.Split())
	testAll := gen.GenerateProduction(cfg.TestN, r.Split())
	testSets, err := testAll.KChunks(cfg.TestSets, r.Split())
	if err != nil {
		return nil, err
	}

	res := &AblationResult{Title: "Ablation AB2: AutoML runs in the Cross-ALE committee"}
	for _, runs := range runCounts {
		var accs []float64
		for rep := 0; rep < cfg.Reps; rep++ {
			seed := cfg.Seed + 29 + uint64(rep+1)*41_011
			repRand := rng.New(seed)
			crossCfg := cfg.AutoML
			crossCfg.Seed = seed
			committee, _, err := core.CrossCommittee(train, crossCfg, runs)
			if err != nil {
				return nil, err
			}
			add, _, err := core.Suggest(committee, train, core.Config{
				Bins: cfg.Bins, Classes: []int{screamset.LabelScream}, Workers: cfg.Workers,
			}, cfg.FeedbackN, gen, repRand.Split())
			if err != nil {
				return nil, err
			}
			retrain, err := train.Concat(add)
			if err != nil {
				return nil, err
			}
			ens, err := runAutoML(retrain, cfg.AutoML, seed+7)
			if err != nil {
				return nil, err
			}
			accs = append(accs, evalOnSets(ens, testSets)...)
		}
		res.Rows = append(res.Rows, AblationRow{
			Name:  fmt.Sprintf("Cross-ALE with %d runs", runs),
			Mean:  stats.Mean(accs),
			Std:   stats.StdDev(accs),
			Extra: float64(runs),
		})
		if progress != nil {
			fmt.Fprintf(progress, "ablation cross-runs=%d done\n", runs)
		}
	}
	return res, nil
}

// RunAblationPriors (AB3) exercises the §1 domain-customization straw-man:
// a maximum-likelihood Gaussian classifier with and without explicit
// feature-independence priors, on small Scream training sets where the
// prior should matter most.
func RunAblationPriors(cfg ScreamConfig, progress io.Writer) (*AblationResult, error) {
	gen := screamOracle(cfg)
	r := rng.New(cfg.Seed + 37)
	// The Scream features (link rate, delay, loss, flows) are sampled
	// independently by construction, so full independence is a *correct*
	// domain prior here.
	var cs []priors.Constraint
	for a := 0; a < 4; a++ {
		for b := a + 1; b < 4; b++ {
			cs = append(cs, priors.Constraint{A: a, B: b})
		}
	}
	variants := []struct {
		name  string
		build func() ml.Classifier
	}{
		{"Gaussian MLE (full covariance)", func() ml.Classifier { return priors.NewGaussian() }},
		{"Gaussian MLE + independence priors", func() ml.Classifier { return priors.NewConstrainedGaussian(cs) }},
	}
	trainN := cfg.TrainN / 8 // small-data regime, where priors pay off
	if trainN < 24 {
		trainN = 24
	}
	test := gen.Generate(cfg.TestN/4+100, r.Split())

	res := &AblationResult{Title: fmt.Sprintf("Ablation AB3: domain priors (train n=%d)", trainN)}
	for _, v := range variants {
		// Each repetition's rng is split off serially before the batch
		// runs, so the per-rep trials (dataset emulation + fit) can run
		// concurrently without changing any result.
		reps := cfg.Reps * 3
		rands := make([]*rng.Rand, reps)
		for rep := range rands {
			rands[rep] = r.Split()
		}
		accs, err := parallel.Map(reps, cfg.Workers, func(rep int) (float64, error) {
			rr := rands[rep]
			train := gen.Generate(trainN, rr)
			m := v.build()
			if err := m.Fit(train, rr); err != nil {
				return 0, err
			}
			pred := ml.Predict(m, test.X)
			return metrics.BalancedAccuracy(2, test.Y, pred), nil
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, AblationRow{
			Name: v.name,
			Mean: stats.Mean(accs),
			Std:  stats.StdDev(accs),
		})
		if progress != nil {
			fmt.Fprintf(progress, "ablation priors: %s done\n", v.name)
		}
	}
	return res, nil
}
