package experiments

import (
	"math"
	"strings"
	"testing"

	"github.com/netml/alefb/internal/automl"
)

// tinyScream is a minimal-but-complete Table-1 configuration for tests.
func tinyScream() ScreamConfig {
	return ScreamConfig{
		TrainN:         90,
		FeedbackN:      30,
		TestN:          150,
		TestSets:       5,
		PoolN:          150,
		Reps:           1,
		CrossRuns:      2,
		Bins:           16,
		AutoML:         automl.Config{MaxCandidates: 5, Generations: 1, EnsembleSize: 4},
		OracleDuration: 0.7,
		Seed:           3,
	}
}

func tinyUCL() UCLConfig {
	return UCLConfig{
		TotalN:    900,
		Splits:    1,
		TestSets:  4,
		FeedbackN: 40,
		Bins:      16,
		CrossRuns: 2,
		AutoML:    automl.Config{MaxCandidates: 5, Generations: 1, EnsembleSize: 4},
		Seed:      4,
	}
}

func TestRunTable1Complete(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	res, err := RunTable1(tinyScream(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(res.Rows))
	}
	cfg := res.Config
	for _, row := range res.Rows {
		if len(row.Accuracies) != cfg.Reps*cfg.TestSets {
			t.Fatalf("%s: %d accuracies, want %d", row.Algorithm, len(row.Accuracies), cfg.Reps*cfg.TestSets)
		}
		if math.IsNaN(row.Mean) || row.Mean < 0 || row.Mean > 1 {
			t.Fatalf("%s: mean %v", row.Algorithm, row.Mean)
		}
		for _, p := range []float64{row.PvsNoFeedback, row.PvsWithin, row.PvsCross} {
			if !math.IsNaN(p) && (p < 0 || p > 1) {
				t.Fatalf("%s: p-value %v", row.Algorithm, p)
			}
		}
	}
	// Oracle-based algorithms add the full budget; pool-restricted ALE
	// variants may add fewer (the paper's parenthetical counts).
	if got := res.Row(AlgWithinALE).MeanPointsAdded; got != float64(cfg.FeedbackN) {
		t.Fatalf("Within-ALE added %v points, want %d", got, cfg.FeedbackN)
	}
	if got := res.Row(AlgWithinALEPool).MeanPointsAdded; got > float64(cfg.FeedbackN) {
		t.Fatalf("pool variant added %v points > budget", got)
	}
	// The rendered table mentions every algorithm.
	text := res.String()
	for _, alg := range []string{AlgNoFeedback, AlgCrossALE, AlgUpsampling} {
		if !strings.Contains(text, alg) {
			t.Fatalf("table missing %q:\n%s", alg, text)
		}
	}
}

func TestRunUCLComplete(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	res, err := RunUCL(tinyUCL(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	base := res.Row(AlgNoFeedback)
	if base == nil || base.Mean <= 0.25 {
		t.Fatalf("baseline mean %v — below chance for 4 classes", base.Mean)
	}
	for _, row := range res.Rows {
		if row.Algorithm == AlgNoFeedback {
			continue
		}
		if row.MeanPointsAdded <= 0 {
			t.Fatalf("%s added no points", row.Algorithm)
		}
		if row.PvsNoFeedback < 0 || row.PvsNoFeedback > 1 {
			t.Fatalf("%s p-value %v", row.Algorithm, row.PvsNoFeedback)
		}
	}
	if !strings.Contains(res.String(), "firewall") {
		t.Fatal("summary missing dataset name")
	}
}

func TestRunFigure1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	fig, err := RunFigure1(tinyScream(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if fig.Analysis.Name != "config.link_rate" {
		t.Fatalf("figure feature %q", fig.Analysis.Name)
	}
	if len(fig.Analysis.Grid) < 8 {
		t.Fatalf("grid too coarse: %d", len(fig.Analysis.Grid))
	}
	if fig.Threshold <= 0 {
		t.Fatalf("threshold %v", fig.Threshold)
	}
	ascii := fig.Plot.RenderASCII(60, 12)
	if !strings.Contains(ascii, "config.link_rate") {
		t.Fatal("plot missing axis label")
	}
	svg := fig.Plot.RenderSVG(640, 400)
	if !strings.Contains(svg, "<svg") {
		t.Fatal("svg broken")
	}
}

func TestRunFigure2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	fig, err := RunFigure2(tinyUCL(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if fig.SrcPort.Analysis.Name != "src_port" || fig.DstPort.Analysis.Name != "dst_port" {
		t.Fatalf("figure features %q / %q", fig.SrcPort.Analysis.Name, fig.DstPort.Analysis.Name)
	}
	// Both features must have a computed std curve; the dst-port curve
	// should show positive disagreement somewhere (the 443-445 mixture).
	if fig.DstPort.Analysis.PeakStd <= 0 {
		t.Fatal("dst_port committee std identically zero")
	}
	if fig.SrcPort.Regions() == "" || fig.DstPort.Regions() == "" {
		t.Fatal("Regions() empty string")
	}
}

func TestRunThresholdSweepMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	res, err := RunThresholdSweep(tinyScream(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 4 {
		t.Fatalf("sweep points = %d", len(res.Points))
	}
	// Region fraction and pool hits must be non-increasing in T.
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].RegionFraction > res.Points[i-1].RegionFraction+1e-9 {
			t.Fatalf("region fraction grew with threshold: %+v", res.Points)
		}
		if res.Points[i].PoolHits > res.Points[i-1].PoolHits {
			t.Fatalf("pool hits grew with threshold: %+v", res.Points)
		}
	}
	if !strings.Contains(res.String(), "quantile") {
		t.Fatal("summary malformed")
	}
}

func TestAblationPriors(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	cfg := tinyScream()
	res, err := RunAblationPriors(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if math.IsNaN(row.Mean) || row.Mean <= 0 {
			t.Fatalf("%s mean %v", row.Name, row.Mean)
		}
	}
}

func TestSeqHelper(t *testing.T) {
	s := seq(2, 5)
	if len(s) != 3 || s[0] != 2 || s[2] != 4 {
		t.Fatalf("seq = %v", s)
	}
	if len(seq(3, 3)) != 0 {
		t.Fatal("empty seq broken")
	}
}

func TestConfigPresets(t *testing.T) {
	p := PaperScreamConfig()
	if p.TrainN != 1161 || p.FeedbackN != 280 || p.TestN != 4850 || p.TestSets != 20 || p.PoolN != 2000 || p.Reps != 10 || p.CrossRuns != 10 {
		t.Fatalf("paper scream config deviates from §4: %+v", p)
	}
	r := ReducedScreamConfig()
	if r.TrainN >= p.TrainN || r.Reps >= p.Reps {
		t.Fatal("reduced config not reduced")
	}
	u := PaperUCLConfig()
	if u.Splits != 5 || u.TestSets != 20 {
		t.Fatalf("paper UCL config deviates: %+v", u)
	}
}

func TestAblationDisagreementShape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	cfg := tinyScream()
	res, err := RunAblationDisagreement(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if math.IsNaN(row.Mean) || row.Mean < 0.2 || row.Mean > 1 {
			t.Fatalf("%s mean %v", row.Name, row.Mean)
		}
		if row.Extra <= 0 {
			t.Fatalf("%s added no points", row.Name)
		}
	}
	if !strings.Contains(res.String(), "disagreement measure") {
		t.Fatal("title wrong")
	}
}

func TestAblationCrossRunsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	cfg := tinyScream()
	res, err := RunAblationCrossRuns(cfg, []int{1, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0].Extra != 1 || res.Rows[1].Extra != 2 {
		t.Fatalf("run counts wrong: %+v", res.Rows)
	}
}

func TestRunLoopExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("integration experiment")
	}
	res, err := RunLoopExperiment(tinyScream(), 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 || len(res.Points) > 2 {
		t.Fatalf("points = %d", len(res.Points))
	}
	for _, p := range res.Points {
		if p.BalancedAccuracy <= 0 || p.BalancedAccuracy > 1 {
			t.Fatalf("round %d accuracy %v", p.Round, p.BalancedAccuracy)
		}
	}
	if res.FinalAccuracy <= 0.3 {
		t.Fatalf("final accuracy %v", res.FinalAccuracy)
	}
	if !strings.Contains(res.String(), "convergence") {
		t.Fatal("summary malformed")
	}
}
