// Package rng provides a small, fast, deterministic pseudo-random number
// generator used by every stochastic component in this repository.
//
// Reproducibility is a hard requirement for the experiment harness: every
// model, search procedure, simulator and dataset generator takes an
// explicit *Rand so that a single top-level seed fully determines an
// experiment. The generator is xoshiro256** seeded through SplitMix64,
// the combination recommended by the xoshiro authors; it is not
// cryptographically secure and must never be used for security purposes.
package rng

import "math"

// Rand is a deterministic pseudo-random number generator.
// It is NOT safe for concurrent use; use Split to derive independent
// generators for concurrent work.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via SplitMix64, so that nearby
// seeds still produce well-separated streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	// xoshiro state must not be all zero; SplitMix64 guarantees that for
	// any seed, but keep the invariant explicit.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 1
	}
	return r
}

// Split derives a new generator whose stream is independent of the parent's
// subsequent output. It consumes two values from the parent.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ (r.Uint64() << 1))
}

// Derive returns the generator for task i of a parallel computation keyed
// by seed. Unlike a sequential Split chain, the result depends only on
// (seed, i) — never on which worker runs the task or in what order — which
// is the rule that makes Workers=1 and Workers=N runs bit-identical.
// The index is folded into the seed through a SplitMix64 finalization
// (on top of the one New applies) so that nearby indices and nearby seeds
// still yield well-separated streams.
func Derive(seed, i uint64) *Rand {
	z := seed + (i+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return New(z ^ (z >> 31))
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the xoshiro256** sequence.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := mul128(x, bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			x = r.Uint64()
			hi, lo = mul128(x, bound)
		}
	}
	return int(hi)
}

// mul128 returns the 128-bit product of a and b as (hi, lo).
func mul128(a, b uint64) (hi, lo uint64) {
	const mask = 0xffffffff
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aLo * bLo
	lo = t & mask
	c := t >> 32
	t = aHi*bLo + c
	c = t >> 32
	m := t & mask
	t = aLo*bHi + m
	lo |= (t & mask) << 32
	hi = aHi*bHi + c + (t >> 32)
	return hi, lo
}

// Uniform returns a uniform value in [lo, hi). If hi <= lo it returns lo.
func (r *Rand) Uniform(lo, hi float64) float64 {
	if hi <= lo {
		return lo
	}
	f := r.Float64()
	v := lo + (hi-lo)*f
	if math.IsInf(hi-lo, 0) {
		// The span overflowed; interpolate without forming it.
		v = lo*(1-f) + hi*f
	}
	if v >= hi {
		v = math.Nextafter(hi, lo)
	}
	if v < lo {
		v = lo
	}
	return v
}

// NormFloat64 returns a standard normal variate (Marsaglia polar method).
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Normal returns a normal variate with the given mean and standard
// deviation.
func (r *Rand) Normal(mean, std float64) float64 {
	return mean + std*r.NormFloat64()
}

// Exp returns an exponential variate with the given rate (mean 1/rate).
// It panics if rate <= 0.
func (r *Rand) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("rng: Exp called with rate <= 0")
	}
	// 1-Float64() is in (0,1], so the log is finite.
	return -math.Log(1-r.Float64()) / rate
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool { return r.Float64() < p }

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// Shuffle performs a Fisher-Yates shuffle over n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Sample returns k distinct indices drawn uniformly from [0, n) in random
// order. If k >= n it returns a permutation of [0, n).
func (r *Rand) Sample(n, k int) []int {
	if k >= n {
		return r.Perm(n)
	}
	// Floyd's algorithm keeps this O(k) in memory.
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if _, ok := chosen[t]; ok {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// SampleInto is Sample with a caller-provided buffer: it consumes exactly
// the same stream and returns exactly the same indices as Sample(n, k),
// but reuses buf (grown as needed) instead of allocating. Hot loops — the
// per-node feature draw in tree training — call this with a scratch
// buffer so sampling costs no allocations.
func (r *Rand) SampleInto(n, k int, buf []int) []int {
	if cap(buf) < n {
		buf = make([]int, n)
	}
	if k >= n {
		out := buf[:n]
		for i := range out {
			out[i] = i
		}
		r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
		return out
	}
	// Floyd's algorithm, with the membership test as a linear scan over
	// the values chosen so far (k is small; the scan replaces Sample's
	// per-call map without touching the Intn stream).
	out := buf[:0]
	for j := n - k; j < n; j++ {
		t := r.Intn(j + 1)
		if containsInt(out, t) {
			t = j
		}
		out = append(out, t)
	}
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// Weighted returns an index in [0, len(weights)) drawn proportionally to
// weights. Non-positive weights are treated as zero. If all weights are
// zero it falls back to uniform.
func (r *Rand) Weighted(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return r.Intn(len(weights))
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Cumulative is a weighted index sampler over a fixed weight vector:
// building it costs O(n) and every draw O(log n), against O(n) per draw
// for Weighted — the difference between an O(n²) and an O(n log n)
// weighted resample when n indices are drawn from the same weights (as
// AdaBoost does every boosting round). Each Next consumes exactly one
// Float64 from r, like Weighted, and selects by inverting the running
// prefix sum of the positive weights; the returned index can differ from
// Weighted's only when the draw lands within float-rounding distance of
// a weight boundary.
type Cumulative struct {
	cum []float64 // inclusive prefix sums; flat runs are zero weights
}

// NewCumulative builds a sampler over weights. Non-positive weights are
// treated as zero (never returned while any weight is positive); if all
// weights are zero, draws fall back to uniform. The weights slice is not
// retained.
func NewCumulative(weights []float64) *Cumulative {
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w > 0 {
			total += w
		}
		cum[i] = total
	}
	return &Cumulative{cum: cum}
}

// Next draws one index proportionally to the sampler's weights.
func (c *Cumulative) Next(r *Rand) int {
	n := len(c.cum)
	total := c.cum[n-1]
	if total <= 0 {
		return r.Intn(n)
	}
	x := r.Float64() * total
	// First index with cum[i] > x. Zero-weight entries repeat the previous
	// prefix sum, so the strict inequality can never select them.
	lo, hi := 0, n-1
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.cum[mid] > x {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
