package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 collided %d/100 times", same)
	}
}

func TestZeroSeedIsValid(t *testing.T) {
	r := New(0)
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a degenerate stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(7)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	counts := make([]int, 7)
	for i := 0; i < 70000; i++ {
		counts[r.Intn(7)]++
	}
	for v, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("Intn(7) value %d appeared %d times in 70000 draws", v, c)
		}
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUniform(t *testing.T) {
	r := New(11)
	for i := 0; i < 1000; i++ {
		v := r.Uniform(-3, 5)
		if v < -3 || v >= 5 {
			t.Fatalf("Uniform(-3,5) = %v", v)
		}
	}
	if got := r.Uniform(2, 2); got != 2 {
		t.Fatalf("degenerate Uniform(2,2) = %v, want 2", got)
	}
	if got := r.Uniform(5, 1); got != 5 {
		t.Fatalf("inverted Uniform(5,1) = %v, want lo", got)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(13)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal(2, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-2) > 0.05 {
		t.Fatalf("Normal mean = %v, want ~2", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Fatalf("Normal std = %v, want ~3", math.Sqrt(variance))
	}
}

func TestExpMean(t *testing.T) {
	r := New(17)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := r.Exp(2)
		if v < 0 {
			t.Fatalf("Exp returned negative value %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Exp(2) mean = %v, want ~0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(19)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm produced invalid/duplicate value %d", v)
		}
		seen[v] = true
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(23)
	for trial := 0; trial < 100; trial++ {
		s := r.Sample(50, 10)
		if len(s) != 10 {
			t.Fatalf("Sample(50,10) returned %d values", len(s))
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= 50 || seen[v] {
				t.Fatalf("Sample produced invalid/duplicate value %d", v)
			}
			seen[v] = true
		}
	}
}

func TestSampleAll(t *testing.T) {
	r := New(29)
	s := r.Sample(5, 10)
	if len(s) != 5 {
		t.Fatalf("Sample(5,10) returned %d values, want 5", len(s))
	}
}

func TestSampleCoversRange(t *testing.T) {
	// Every index must be reachable, including index n-1 via the j-collision
	// branch of Floyd's algorithm.
	r := New(31)
	hit := make([]bool, 8)
	for trial := 0; trial < 2000; trial++ {
		for _, v := range r.Sample(8, 3) {
			hit[v] = true
		}
	}
	for i, h := range hit {
		if !h {
			t.Fatalf("Sample never produced index %d", i)
		}
	}
}

func TestWeighted(t *testing.T) {
	r := New(37)
	counts := [3]int{}
	for i := 0; i < 30000; i++ {
		counts[r.Weighted([]float64{1, 2, 7})]++
	}
	if counts[2] < counts[1] || counts[1] < counts[0] {
		t.Fatalf("Weighted ordering wrong: %v", counts)
	}
	if counts[2] < 18000 || counts[2] > 24000 {
		t.Fatalf("Weighted heavy index frequency %d, want ~21000", counts[2])
	}
}

func TestWeightedDegenerate(t *testing.T) {
	r := New(41)
	// All-zero weights fall back to uniform and must stay in range.
	for i := 0; i < 100; i++ {
		if got := r.Weighted([]float64{0, 0, 0}); got < 0 || got > 2 {
			t.Fatalf("Weighted zero-weights out of range: %d", got)
		}
	}
	// Negative weights are ignored.
	for i := 0; i < 100; i++ {
		if got := r.Weighted([]float64{-5, 0, 1}); got != 2 {
			t.Fatalf("Weighted with one positive weight = %d, want 2", got)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(99)
	child := parent.Split()
	// Child and parent streams should not be identical.
	same := 0
	for i := 0; i < 64; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("Split stream overlaps parent %d/64 draws", same)
	}
}

func TestQuickIntnInRange(t *testing.T) {
	r := New(5)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickUniformInRange(t *testing.T) {
	r := New(6)
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		lo, hi := a, b
		if lo > hi {
			lo, hi = hi, lo
		}
		v := r.Uniform(lo, hi)
		return v >= lo && (v < hi || hi == lo)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkNormFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.NormFloat64()
	}
	_ = sink
}

// TestSampleIntoMatchesSample pins the stream-compatibility contract:
// SampleInto must return the same indices as Sample and leave the
// generator in the same state, for every (n, k) shape including the
// permutation fallback, so the tree trainer can switch to the buffered
// variant without perturbing any fitted model.
func TestSampleIntoMatchesSample(t *testing.T) {
	buf := make([]int, 0, 64)
	for seed := uint64(1); seed <= 50; seed++ {
		a, b := New(seed), New(seed)
		n := 1 + int(seed%13)
		for _, k := range []int{1, n / 2, n - 1, n, n + 3} {
			if k < 1 {
				k = 1
			}
			want := a.Sample(n, k)
			got := b.SampleInto(n, k, buf)
			if len(want) != len(got) {
				t.Fatalf("seed %d n=%d k=%d: len %d != %d", seed, n, k, len(got), len(want))
			}
			for i := range want {
				if want[i] != got[i] {
					t.Fatalf("seed %d n=%d k=%d: index %d: %d != %d", seed, n, k, i, got[i], want[i])
				}
			}
			if a.Uint64() != b.Uint64() {
				t.Fatalf("seed %d n=%d k=%d: stream diverged after sampling", seed, n, k)
			}
		}
	}
}

// TestSampleIntoZeroAllocs checks the warm path allocates nothing.
func TestSampleIntoZeroAllocs(t *testing.T) {
	r := New(3)
	buf := make([]int, 0, 32)
	if allocs := testing.AllocsPerRun(100, func() { buf = r.SampleInto(20, 5, buf) }); allocs != 0 {
		t.Errorf("SampleInto allocates %.1f objects per call, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(100, func() { buf = r.SampleInto(20, 20, buf) }); allocs != 0 {
		t.Errorf("SampleInto (perm path) allocates %.1f objects per call, want 0", allocs)
	}
}

// TestCumulativeMatchesWeighted pins the O(log n) sampler to the linear
// Weighted scan on dyadic weight vectors, where prefix sums are exact and
// the two selection rules must agree draw for draw — including vectors
// with zero and negative entries, which neither sampler may ever return
// while a positive weight exists.
func TestCumulativeMatchesWeighted(t *testing.T) {
	vectors := [][]float64{
		{0.5, 0.25, 0.25},
		{1, 0, 2, 0, 1},
		{0, 0, 4},
		{2, -3, 1, 0, 0.5, 0.5},
		{0.125, 0.125, 0.25, 0.5},
	}
	for vi, w := range vectors {
		a, b := New(uint64(vi)+1), New(uint64(vi)+1)
		c := NewCumulative(w)
		for draw := 0; draw < 2000; draw++ {
			want := a.Weighted(w)
			got := c.Next(b)
			if got != want {
				t.Fatalf("vector %d draw %d: Cumulative=%d Weighted=%d", vi, draw, got, want)
			}
			if w[got] <= 0 {
				t.Fatalf("vector %d draw %d: selected non-positive weight index %d", vi, draw, got)
			}
		}
	}
}

// TestCumulativeAllZeroUniform checks the all-zero fallback draws
// uniformly, matching Weighted's.
func TestCumulativeAllZeroUniform(t *testing.T) {
	c := NewCumulative([]float64{0, 0, 0, 0})
	r := New(7)
	counts := make([]int, 4)
	for i := 0; i < 8000; i++ {
		counts[c.Next(r)]++
	}
	for i, n := range counts {
		if n < 1700 || n > 2300 {
			t.Fatalf("all-zero fallback not uniform: index %d drawn %d/8000", i, n)
		}
	}
}

// TestCumulativeProportions checks draw frequencies track the weights.
func TestCumulativeProportions(t *testing.T) {
	w := []float64{1, 3, 0, 6}
	c := NewCumulative(w)
	r := New(11)
	counts := make([]int, len(w))
	const draws = 20000
	for i := 0; i < draws; i++ {
		counts[c.Next(r)]++
	}
	if counts[2] != 0 {
		t.Fatalf("zero weight drawn %d times", counts[2])
	}
	for i, wi := range w {
		if wi == 0 {
			continue
		}
		got := float64(counts[i]) / draws
		want := wi / 10
		if got < want-0.02 || got > want+0.02 {
			t.Fatalf("index %d: frequency %.3f, want ~%.3f", i, got, want)
		}
	}
}
