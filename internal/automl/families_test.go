package automl

import (
	"fmt"
	"strings"
	"testing"

	"github.com/netml/alefb/internal/ml"
	"github.com/netml/alefb/internal/rng"
)

// treeFamilies is the domain-customized zoo the histogram-engine
// benchmark searches: every family the engine knob applies to.
var treeFamilies = []string{"tree", "forest", "xtrees", "gbdt", "adaboost"}

// TestFamiliesResolve pins name resolution: order-preserving, full list
// exposed through FamilyNames, unknown and duplicate names rejected.
func TestFamiliesResolve(t *testing.T) {
	if got := FamilyNames(); len(got) != int(numFamilies) || got[0] != "tree" || got[len(got)-1] != "adaboost" {
		t.Fatalf("FamilyNames = %v", got)
	}
	allowed, err := resolveFamilies([]string{"gbdt", "knn"})
	if err != nil || len(allowed) != 2 || allowed[0] != famGBDT || allowed[1] != famKNN {
		t.Fatalf("resolveFamilies = %v, %v", allowed, err)
	}
	if sub, err := resolveFamilies(nil); sub != nil || err != nil {
		t.Fatalf("empty list: %v, %v", sub, err)
	}
	if _, err := resolveFamilies([]string{"gbdt", "xgboost"}); err == nil || !strings.Contains(err.Error(), "unknown model family") {
		t.Fatalf("unknown name accepted: %v", err)
	}
	if _, err := resolveFamilies([]string{"gbdt", "gbdt"}); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("duplicate name accepted: %v", err)
	}
}

// TestFamiliesDrawsStayInside checks the two spec sources directly: over
// many seeds both the uniform draw and mutation (whose structural
// re-draw is the escape hatch) stay inside the allowed subset.
func TestFamiliesDrawsStayInside(t *testing.T) {
	allowed, err := resolveFamilies(treeFamilies)
	if err != nil {
		t.Fatal(err)
	}
	in := map[family]bool{}
	for _, f := range allowed {
		in[f] = true
	}
	base := Spec{Family: famGBDT, Params: map[string]float64{"rounds": 20, "lr": 0.1, "depth": 3}}
	for seed := uint64(0); seed < 300; seed++ {
		r := rng.New(seed)
		if s := randomSpecIn(r, allowed); !in[s.Family] {
			t.Fatalf("seed %d: randomSpecIn escaped the subset: %v", seed, s)
		}
		if s := mutateIn(base, r, allowed); !in[s.Family] {
			t.Fatalf("seed %d: mutateIn escaped the subset: %v", seed, s)
		}
	}
	// The nil subset must replay RandomSpec's stream exactly.
	for seed := uint64(0); seed < 50; seed++ {
		a := RandomSpec(rng.New(seed))
		b := randomSpecIn(rng.New(seed), nil)
		if !specEqual(a, b) {
			t.Fatalf("seed %d: nil-subset stream diverged: %v vs %v", seed, a, b)
		}
	}
}

// TestFamiliesSearchStaysInside runs full searches — random phase,
// pre-screening, and two evolutionary generations — and checks that no
// ensemble member ever leaves the restricted zoo.
func TestFamiliesSearchStaysInside(t *testing.T) {
	allowed, _ := resolveFamilies(treeFamilies)
	in := map[family]bool{}
	for _, f := range allowed {
		in[f] = true
	}
	for _, seed := range []uint64{1, 7, 19} {
		for _, prescreen := range []int{0, 3} {
			t.Run(fmt.Sprintf("seed%d/prescreen%d", seed, prescreen), func(t *testing.T) {
				train := blobs(240, 3, rng.New(seed+100))
				cfg := smallCfg(seed)
				cfg.MaxCandidates = 18
				cfg.Generations = 2
				cfg.Families = treeFamilies
				cfg.PreScreen = prescreen
				cfg.TrainEngine = ml.EngineHist
				ens, err := Run(train, cfg)
				if err != nil {
					t.Fatal(err)
				}
				for i, m := range ens.Members {
					if !in[m.Spec.Family] {
						t.Errorf("member %d escaped the restricted zoo: %v", i, m.Spec)
					}
					if engineOf(m.Spec) != ml.EngineHist {
						t.Errorf("member %d lost the hist engine: %v", i, m.Spec)
					}
				}
			})
		}
	}
}

// TestFamiliesUnknownRejected checks Run surfaces the validation error
// instead of silently searching the full zoo.
func TestFamiliesUnknownRejected(t *testing.T) {
	train := blobs(60, 3, rng.New(5))
	cfg := smallCfg(1)
	cfg.Families = []string{"deepnet"}
	if _, err := Run(train, cfg); err == nil || !strings.Contains(err.Error(), "unknown model family") {
		t.Fatalf("Run accepted an unknown family: %v", err)
	}
}

// TestFamiliesWorkersEquivalence extends the determinism contract to
// restricted searches: Workers=1 and Workers=8 must stay bit-identical
// when the zoo is pruned, under both engines.
func TestFamiliesWorkersEquivalence(t *testing.T) {
	for _, engine := range []ml.TrainEngine{ml.EnginePresort, ml.EngineHist} {
		t.Run(engine.String(), func(t *testing.T) {
			train := blobs(240, 3, rng.New(44))
			cfg := smallCfg(12)
			cfg.Families = treeFamilies
			cfg.TrainEngine = engine

			cfg.Workers = 1
			serial, err := Run(train, cfg)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Workers = 8
			par, err := Run(train, cfg)
			if err != nil {
				t.Fatal(err)
			}
			assertEnsemblesIdentical(t, serial, par, train.X[:5])
		})
	}
}
