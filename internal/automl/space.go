// Package automl implements the AutoML engine the feedback solution wraps:
// a budgeted randomized + evolutionary search over the model zoo's
// pipelines, validated on a stratified holdout, followed by Caruana-style
// greedy ensemble selection. Like AutoSklearn and TPOT — the systems the
// paper builds on — it returns an *ensemble* of diverse models, which is
// exactly the property the ALE-variance feedback algorithm exploits.
package automl

import (
	"fmt"
	"math"
	"sort"

	"github.com/netml/alefb/internal/ml"
	"github.com/netml/alefb/internal/rng"
)

// family enumerates the model families in the search space.
type family int

const (
	famTree family = iota
	famForest
	famExtraTrees
	famGBDT
	famKNN
	famLogReg
	famGNB
	famSVM
	famMLP
	famAdaBoost
	numFamilies
)

var familyNames = [...]string{
	"tree", "forest", "xtrees", "gbdt", "knn", "logreg", "gnb", "svm", "mlp",
	"adaboost",
}

// FamilyNames lists every model family in the search space, in the order
// used for Config.Families validation and error messages.
func FamilyNames() []string {
	return append([]string(nil), familyNames[:]...)
}

// resolveFamilies maps Config.Families names onto the family subset the
// search may draw from, preserving the caller's order (which fixes the
// rng mapping: allowed[i] is drawn with probability 1/len(allowed)). A
// nil or empty list selects the whole zoo, reported as a nil subset.
func resolveFamilies(names []string) ([]family, error) {
	if len(names) == 0 {
		return nil, nil
	}
	byName := map[string]family{}
	for f, n := range familyNames {
		byName[n] = family(f)
	}
	allowed := make([]family, 0, len(names))
	seen := map[family]bool{}
	for _, n := range names {
		f, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("automl: unknown model family %q (known: %v)", n, familyNames)
		}
		if seen[f] {
			return nil, fmt.Errorf("automl: duplicate model family %q", n)
		}
		seen[f] = true
		allowed = append(allowed, f)
	}
	return allowed, nil
}

// Spec is one point in the pipeline search space: a model family plus its
// hyperparameters. Specs are value types so they can be mutated cheaply
// during the evolutionary phase.
type Spec struct {
	Family family
	// Params holds family-specific hyperparameters by name.
	Params map[string]float64
}

// String describes the spec for logs and explanations.
func (s Spec) String() string {
	return fmt.Sprintf("%s%v", familyNames[s.Family], s.Params)
}

// clone deep-copies the spec.
func (s Spec) clone() Spec {
	p := make(map[string]float64, len(s.Params))
	for k, v := range s.Params {
		p[k] = v
	}
	return Spec{Family: s.Family, Params: p}
}

// RandomSpec draws a spec uniformly over all families with
// hyperparameters drawn from per-family distributions.
func RandomSpec(r *rng.Rand) Spec {
	return randomSpecIn(r, nil)
}

// randomSpecIn draws a spec uniformly over the allowed subset (nil means
// every family). With a nil subset it consumes exactly the rng draws
// RandomSpec always has, so full-zoo searches are stream-compatible with
// configs that predate Families.
func randomSpecIn(r *rng.Rand, allowed []family) Spec {
	var f family
	if len(allowed) == 0 {
		f = family(r.Intn(int(numFamilies)))
	} else {
		f = allowed[r.Intn(len(allowed))]
	}
	s := Spec{Family: f, Params: map[string]float64{}}
	switch f {
	case famTree:
		s.Params["depth"] = float64(2 + r.Intn(12))
		s.Params["leaf"] = float64(1 + r.Intn(10))
	case famForest, famExtraTrees:
		s.Params["trees"] = float64(10 + r.Intn(40))
		s.Params["depth"] = float64(4 + r.Intn(10))
		s.Params["leaf"] = float64(1 + r.Intn(5))
	case famGBDT:
		s.Params["rounds"] = float64(10 + r.Intn(40))
		s.Params["lr"] = math.Pow(10, r.Uniform(-1.5, -0.3))
		s.Params["depth"] = float64(2 + r.Intn(4))
	case famKNN:
		s.Params["k"] = float64(1 + r.Intn(20))
		s.Params["weighted"] = float64(r.Intn(2))
	case famLogReg:
		s.Params["lr"] = math.Pow(10, r.Uniform(-2, -0.3))
		s.Params["l2"] = math.Pow(10, r.Uniform(-6, -2))
		s.Params["epochs"] = float64(20 + r.Intn(60))
	case famGNB:
		// No tunables; variance smoothing is fixed.
	case famSVM:
		s.Params["lambda"] = math.Pow(10, r.Uniform(-5, -1))
		s.Params["epochs"] = float64(15 + r.Intn(35))
	case famMLP:
		s.Params["hidden"] = float64(8 + 8*r.Intn(6))
		s.Params["lr"] = math.Pow(10, r.Uniform(-2, -0.7))
		s.Params["epochs"] = float64(30 + r.Intn(70))
	case famAdaBoost:
		s.Params["rounds"] = float64(15 + r.Intn(45))
		s.Params["depth"] = float64(1 + r.Intn(3))
	}
	return s
}

// Mutate returns a jittered copy of the spec: each hyperparameter is
// perturbed with probability 1/2; with small probability the family is
// re-drawn entirely (TPOT-style structural mutation).
func Mutate(s Spec, r *rng.Rand) Spec {
	return mutateIn(s, r, nil)
}

// mutateIn is Mutate with structural re-draws confined to the allowed
// family subset, so a Families-restricted search never escapes its zoo
// through evolution.
func mutateIn(s Spec, r *rng.Rand, allowed []family) Spec {
	if r.Bool(0.15) {
		return randomSpecIn(r, allowed)
	}
	m := s.clone()
	// Visit hyperparameters in sorted order: ranging over the map directly
	// would consume rng draws in Go's randomized iteration order, making
	// mutation nondeterministic even under a fixed seed.
	keys := make([]string, 0, len(m.Params))
	for k := range m.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if k == "hist" {
			// Engine selection, not a tunable: jittering it would corrupt
			// the knob, and skipping before the coin flip keeps the
			// mutation rng stream identical across engines.
			continue
		}
		v := m.Params[k]
		if !r.Bool(0.5) {
			continue
		}
		switch k {
		case "weighted":
			m.Params[k] = float64(r.Intn(2))
		case "lr", "l2", "lambda":
			m.Params[k] = clampF(v*math.Pow(2, r.Uniform(-1, 1)), 1e-7, 1)
		default:
			delta := float64(r.Intn(5) - 2)
			m.Params[k] = clampF(v+delta, 1, 200)
		}
	}
	return m
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// applyEngine marks a tree-family spec to train with the given engine by
// setting the "hist" parameter, making the engine part of the spec itself:
// it enters specHash (so the evaluation cache and the candidate rng
// streams distinguish engines), the persisted description, and Build. The
// knob consumes no rng, non-tree families are returned unchanged, and the
// presort default leaves the spec untouched so existing hashes and
// persisted descriptions are unaffected.
func applyEngine(s Spec, e ml.TrainEngine) Spec {
	if e != ml.EngineHist {
		return s
	}
	switch s.Family {
	case famTree, famForest, famExtraTrees, famGBDT, famAdaBoost:
		s.Params["hist"] = 1
	}
	return s
}

// engineOf reads the spec's training engine back out of its parameters.
func engineOf(s Spec) ml.TrainEngine {
	if pInt(s, "hist", 0) == 1 {
		return ml.EngineHist
	}
	return ml.EnginePresort
}

func pInt(s Spec, key string, def int) int {
	if v, ok := s.Params[key]; ok {
		return int(math.Round(v))
	}
	return def
}

func pFloat(s Spec, key string, def float64) float64 {
	if v, ok := s.Params[key]; ok {
		return v
	}
	return def
}

// Build instantiates a fresh untrained pipeline from the spec.
func Build(s Spec) ml.Classifier {
	switch s.Family {
	case famTree:
		return ml.NewTree(ml.TreeConfig{
			MaxDepth:       pInt(s, "depth", 8),
			MinSamplesLeaf: pInt(s, "leaf", 1),
			Engine:         engineOf(s),
		})
	case famForest:
		return ml.NewForest(ml.ForestConfig{
			NumTrees:       pInt(s, "trees", 30),
			MaxDepth:       pInt(s, "depth", 8),
			MinSamplesLeaf: pInt(s, "leaf", 1),
			Bootstrap:      true,
			Engine:         engineOf(s),
		})
	case famExtraTrees:
		return ml.NewForest(ml.ForestConfig{
			NumTrees:       pInt(s, "trees", 30),
			MaxDepth:       pInt(s, "depth", 8),
			MinSamplesLeaf: pInt(s, "leaf", 1),
			ExtraTrees:     true,
			Engine:         engineOf(s),
		})
	case famGBDT:
		return ml.NewGBDT(ml.GBDTConfig{
			NumRounds:    pInt(s, "rounds", 30),
			LearningRate: pFloat(s, "lr", 0.1),
			MaxDepth:     pInt(s, "depth", 3),
			Engine:       engineOf(s),
		})
	case famKNN:
		return &ml.Pipeline{
			Scaler: &ml.StandardScaler{},
			Model: ml.NewKNN(ml.KNNConfig{
				K:                pInt(s, "k", 5),
				DistanceWeighted: pInt(s, "weighted", 0) == 1,
			}),
		}
	case famLogReg:
		return &ml.Pipeline{
			Scaler: &ml.StandardScaler{},
			Model: ml.NewLogReg(ml.LogRegConfig{
				LearningRate: pFloat(s, "lr", 0.1),
				L2:           pFloat(s, "l2", 1e-4),
				Epochs:       pInt(s, "epochs", 50),
			}),
		}
	case famGNB:
		return ml.NewGaussianNB()
	case famSVM:
		return &ml.Pipeline{
			Scaler: &ml.StandardScaler{},
			Model: ml.NewSVM(ml.SVMConfig{
				Lambda: pFloat(s, "lambda", 1e-3),
				Epochs: pInt(s, "epochs", 30),
			}),
		}
	case famMLP:
		return &ml.Pipeline{
			Scaler: &ml.StandardScaler{},
			Model: ml.NewMLP(ml.MLPConfig{
				Hidden:       pInt(s, "hidden", 16),
				LearningRate: pFloat(s, "lr", 0.05),
				Epochs:       pInt(s, "epochs", 60),
			}),
		}
	case famAdaBoost:
		return ml.NewAdaBoost(ml.AdaBoostConfig{
			Rounds:   pInt(s, "rounds", 30),
			MaxDepth: pInt(s, "depth", 2),
			Engine:   engineOf(s),
		})
	default:
		panic(fmt.Sprintf("automl: unknown family %d", s.Family))
	}
}
