package automl

// Fitted-ensemble codec: the automl half of the durable snapshot
// payload. It composes the internal/ml fitted-model codec with the
// committee metadata that lives at this layer — each member's search
// spec (family + hyperparameters, the provenance feedback explanations
// and warm-start retrains key on), selection weight and holdout score,
// plus the search statistics surfaced by /v1/status. Params maps are
// written with sorted keys, so the same ensemble always encodes to the
// same bytes (the snapshot-fingerprint contract). Like the ml codec,
// this is a raw payload: framing, CRCs and versioning belong to
// internal/modelstore.

import (
	"fmt"
	"sort"

	"github.com/netml/alefb/internal/ml"
	"github.com/netml/alefb/internal/wire"
)

// AppendEnsemble encodes the fitted ensemble e onto buf.
func AppendEnsemble(buf []byte, e *Ensemble) ([]byte, error) {
	buf = wire.AppendU32(buf, uint32(len(e.Members)))
	for i := range e.Members {
		m := &e.Members[i]
		buf = wire.AppendI64(buf, int64(m.Spec.Family))
		keys := make([]string, 0, len(m.Spec.Params))
		for k := range m.Spec.Params {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		buf = wire.AppendU32(buf, uint32(len(keys)))
		for _, k := range keys {
			buf = wire.AppendString(buf, k)
			buf = wire.AppendF64(buf, m.Spec.Params[k])
		}
		buf = wire.AppendF64(buf, m.Weight)
		buf = wire.AppendF64(buf, m.ValScore)
		var err error
		if buf, err = ml.AppendModel(buf, m.Model); err != nil {
			return nil, fmt.Errorf("automl: member %d: %w", i, err)
		}
	}
	buf = wire.AppendI64(buf, int64(e.NumClasses))
	buf = wire.AppendF64(buf, e.ValScore)
	buf = wire.AppendI64(buf, int64(e.Evaluated))
	buf = wire.AppendI64(buf, int64(e.Dropped.Panics))
	buf = wire.AppendI64(buf, int64(e.Dropped.Errors))
	buf = wire.AppendI64(buf, int64(e.Dropped.NaNs))
	buf = wire.AppendI64(buf, int64(e.Dropped.Timeouts))
	buf = wire.AppendI64(buf, int64(e.CacheHits))
	buf = wire.AppendI64(buf, int64(e.workers))
	return buf, nil
}

// DecodeEnsemble decodes one ensemble from r, the inverse of
// AppendEnsemble. The decoded ensemble is ready for the zero-alloc
// predict path with no refit: member models carry their flat arrays.
func DecodeEnsemble(r *wire.Reader) (*Ensemble, error) {
	e := &Ensemble{}
	n := int(r.U32())
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("automl: decode ensemble: %w", err)
	}
	if n > 0 {
		e.Members = make([]Member, n)
	}
	for i := range e.Members {
		m := &e.Members[i]
		m.Spec.Family = family(r.I64())
		np := int(r.U32())
		if err := r.Err(); err != nil {
			return nil, fmt.Errorf("automl: decode member %d: %w", i, err)
		}
		if np > 0 {
			m.Spec.Params = make(map[string]float64, np)
			for j := 0; j < np; j++ {
				k := r.String()
				m.Spec.Params[k] = r.F64()
			}
		}
		m.Weight = r.F64()
		m.ValScore = r.F64()
		model, err := ml.DecodeModel(r)
		if err != nil {
			return nil, fmt.Errorf("automl: decode member %d: %w", i, err)
		}
		m.Model = model
	}
	e.NumClasses = int(r.I64())
	e.ValScore = r.F64()
	e.Evaluated = int(r.I64())
	e.Dropped.Panics = int(r.I64())
	e.Dropped.Errors = int(r.I64())
	e.Dropped.NaNs = int(r.I64())
	e.Dropped.Timeouts = int(r.I64())
	e.CacheHits = int(r.I64())
	e.workers = int(r.I64())
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("automl: decode ensemble: %w", err)
	}
	return e, nil
}
