package automl

import (
	"fmt"
	"testing"

	"github.com/netml/alefb/internal/rng"
)

// TestEvalCacheEquivalence is the correctness contract for the
// evaluation cache: a search with memoization enabled must return an
// ensemble bit-identical to the same search with DisableEvalCache set,
// at every worker count. The variants all enable evolution, since the
// evolutionary phase is what re-proposes duplicate specs and exercises
// cache hits; the sweep covers both holdout and k-fold scoring.
func TestEvalCacheEquivalence(t *testing.T) {
	variants := []struct {
		name   string
		mutate func(*Config)
	}{
		{"evolve", func(c *Config) { c.Generations = 2 }},
		{"cv3+evolve", func(c *Config) { c.CVFolds = 3; c.Generations = 3 }},
	}
	for _, v := range variants {
		for _, seed := range []uint64{3, 11, 202} {
			for _, workers := range []int{1, 8} {
				t.Run(fmt.Sprintf("%s/seed%d/w%d", v.name, seed, workers), func(t *testing.T) {
					train := blobs(240, 3, rng.New(seed*7+1))
					cfg := smallCfg(seed)
					cfg.MaxCandidates = 18
					cfg.Workers = workers
					v.mutate(&cfg)

					cached, err := Run(train, cfg)
					if err != nil {
						t.Fatal(err)
					}
					cfg.DisableEvalCache = true
					uncached, err := Run(train, cfg)
					if err != nil {
						t.Fatal(err)
					}
					if uncached.CacheHits != 0 {
						t.Errorf("disabled cache reported %d hits", uncached.CacheHits)
					}
					// CacheHits legitimately differ between the two runs (that is
					// the point); equalize it so the shared assertion compares
					// only the search outcome.
					cached.CacheHits = 0
					uncached.CacheHits = 0
					assertEnsemblesIdentical(t, cached, uncached, train.X[:5])
				})
			}
		}
	}
}

// TestCacheHitsCounted pins a config/seed empirically known to
// re-propose duplicate specs during evolution, and checks that the hit
// counter reports them — and reports the same number at any worker
// count, since cache bookkeeping runs in evalBatch's serial passes.
func TestCacheHitsCounted(t *testing.T) {
	// Seed 14 with this search shape yields 4 duplicate proposals across
	// 3 generations (probed over seeds 1..30; most seeds yield 1-4).
	train := blobs(240, 3, rng.New(14*7+1))
	cfg := Config{MaxCandidates: 18, Generations: 3, EnsembleSize: 5, Seed: 14, Workers: 1}
	serial, err := Run(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if serial.CacheHits == 0 {
		t.Fatal("expected cache hits during evolution, got 0")
	}
	cfg.Workers = 8
	par, err := Run(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if par.CacheHits != serial.CacheHits {
		t.Errorf("CacheHits depends on worker count: %d (w=1) vs %d (w=8)", serial.CacheHits, par.CacheHits)
	}
}

// TestSpecHashCanonical checks that the hash is a pure function of the
// spec's contents: insertion order of the params map must not matter,
// and any difference in family, parameter set, or parameter bits must
// change the hash (for these hand-picked neighbours).
func TestSpecHashCanonical(t *testing.T) {
	a := Spec{Family: 2, Params: map[string]float64{}}
	a.Params["depth"] = 6
	a.Params["lr"] = 0.1
	a.Params["rounds"] = 50

	b := Spec{Family: 2, Params: map[string]float64{}}
	b.Params["rounds"] = 50
	b.Params["lr"] = 0.1
	b.Params["depth"] = 6

	if specHash(a) != specHash(b) {
		t.Error("hash depends on insertion order")
	}
	if !specEqual(a, b) {
		t.Error("specEqual rejects equal specs")
	}

	for name, other := range map[string]Spec{
		"family":      {Family: 1, Params: map[string]float64{"depth": 6, "lr": 0.1, "rounds": 50}},
		"value":       {Family: 2, Params: map[string]float64{"depth": 7, "lr": 0.1, "rounds": 50}},
		"missing key": {Family: 2, Params: map[string]float64{"depth": 6, "lr": 0.1}},
		"renamed key": {Family: 2, Params: map[string]float64{"depth": 6, "lr": 0.1, "round": 50, "s": 0}},
	} {
		if specHash(other) == specHash(a) {
			t.Errorf("%s: hash unchanged", name)
		}
		if specEqual(other, a) {
			t.Errorf("%s: specEqual true", name)
		}
	}
}

// TestEvalCacheCollisionSafety forces two distinct specs onto the same
// hash bucket and checks the documented degradation: the first entry is
// kept, the second spec neither overwrites it nor resolves on lookup.
func TestEvalCacheCollisionSafety(t *testing.T) {
	c := newEvalCache()
	first := Spec{Family: 0, Params: map[string]float64{"depth": 4}}
	second := Spec{Family: 1, Params: map[string]float64{"lr": 0.3}}
	const h = 12345 // same artificial bucket for both

	c.store(h, first, candidate{score: 0.9}, dropNone)
	c.store(h, second, candidate{score: 0.1}, dropNone)

	e, ok := c.lookup(h, first)
	if !ok || e.cand.score != 0.9 {
		t.Fatalf("first entry lost: ok=%v score=%v", ok, e.cand.score)
	}
	if _, ok := c.lookup(h, second); ok {
		t.Fatal("colliding spec resolved to the wrong entry")
	}

	// The stored spec must be a defensive copy: mutating the caller's map
	// after store must not corrupt the cache's equality check.
	first.Params["depth"] = 99
	if _, ok := c.lookup(h, Spec{Family: 0, Params: map[string]float64{"depth": 4}}); !ok {
		t.Fatal("stored spec aliased the caller's map")
	}
}
