package automl

import (
	"testing"

	"github.com/netml/alefb/internal/metrics"
	"github.com/netml/alefb/internal/rng"
)

func TestRunWithCVFolds(t *testing.T) {
	r := rng.New(21)
	train := blobs(200, 2, r)
	test := blobs(150, 2, r)
	cfg := smallCfg(31)
	cfg.CVFolds = 3
	ens, err := Run(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pred := ens.Predict(test.X)
	if acc := metrics.BalancedAccuracy(2, test.Y, pred); acc < 0.9 {
		t.Fatalf("CV ensemble accuracy %.3f", acc)
	}
	if ens.ValScore <= 0 || ens.ValScore > 1 {
		t.Fatalf("CV val score %v", ens.ValScore)
	}
}

func TestCVDeterministicPerSeed(t *testing.T) {
	train := blobs(150, 2, rng.New(22))
	cfg := smallCfg(33)
	cfg.CVFolds = 3
	a, err := Run(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.7, -1.1}
	pa, pb := a.PredictProba(x), b.PredictProba(x)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("CV same seed differs: %v vs %v", pa, pb)
		}
	}
}

func TestCVFoldsOneFallsBackToHoldout(t *testing.T) {
	train := blobs(120, 2, rng.New(23))
	cfg := smallCfg(35)
	cfg.CVFolds = 1 // < 2: holdout path
	if _, err := Run(train, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithPreScreen(t *testing.T) {
	r := rng.New(41)
	train := blobs(300, 3, r)
	test := blobs(200, 3, r)
	cfg := smallCfg(43)
	cfg.PreScreen = 3
	ens, err := Run(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	pred := ens.Predict(test.X)
	if acc := metrics.BalancedAccuracy(3, test.Y, pred); acc < 0.9 {
		t.Fatalf("prescreened ensemble accuracy %.3f", acc)
	}
}

func TestPreScreenTinyData(t *testing.T) {
	// With almost no data the screen must fall back gracefully.
	r := rng.New(44)
	train := blobs(12, 2, r)
	cfg := smallCfg(45)
	cfg.PreScreen = 4
	if _, err := Run(train, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPreScreenDeterministic(t *testing.T) {
	train := blobs(150, 2, rng.New(46))
	cfg := smallCfg(47)
	cfg.PreScreen = 2
	a, err := Run(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.2, 0.4}
	pa, pb := a.PredictProba(x), b.PredictProba(x)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("prescreen same seed differs")
		}
	}
}
