package automl

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"github.com/netml/alefb/internal/rng"
)

// TestWorkersEquivalence is the determinism contract for the parallel
// search: Workers=1 and Workers=8 must produce bit-identical ensembles
// because every task derives its rng from the task index, not from
// claim order. It sweeps the three search modes that parallelize
// (holdout, k-fold CV, successive-halving pre-screen) across 3 seeds.
func TestWorkersEquivalence(t *testing.T) {
	variants := []struct {
		name   string
		mutate func(*Config)
	}{
		{"holdout", func(c *Config) {}},
		{"cv3", func(c *Config) { c.CVFolds = 3 }},
		{"prescreen", func(c *Config) { c.PreScreen = 3 }},
		{"cv3+evolve", func(c *Config) { c.CVFolds = 3; c.Generations = 2 }},
	}
	for _, v := range variants {
		for _, seed := range []uint64{3, 11, 202} {
			t.Run(fmt.Sprintf("%s/seed%d", v.name, seed), func(t *testing.T) {
				train := blobs(240, 3, rng.New(seed*7+1))
				cfg := smallCfg(seed)
				v.mutate(&cfg)

				cfg.Workers = 1
				serial, err := Run(train, cfg)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Workers = 8
				par, err := Run(train, cfg)
				if err != nil {
					t.Fatal(err)
				}
				assertEnsemblesIdentical(t, serial, par, train.X[:5])
			})
		}
	}
}

// assertEnsemblesIdentical compares two ensembles bit for bit: search
// bookkeeping, member specs and weights, and predicted probabilities on
// probe points.
func assertEnsemblesIdentical(t *testing.T, a, b *Ensemble, probes [][]float64) {
	t.Helper()
	if a.Evaluated != b.Evaluated {
		t.Errorf("Evaluated: %d vs %d", a.Evaluated, b.Evaluated)
	}
	if a.ValScore != b.ValScore {
		t.Errorf("ValScore: %v vs %v (diff %g)", a.ValScore, b.ValScore, math.Abs(a.ValScore-b.ValScore))
	}
	if a.CacheHits != b.CacheHits {
		t.Errorf("CacheHits: %d vs %d", a.CacheHits, b.CacheHits)
	}
	if len(a.Members) != len(b.Members) {
		t.Fatalf("member count: %d vs %d", len(a.Members), len(b.Members))
	}
	for i := range a.Members {
		ma, mb := a.Members[i], b.Members[i]
		if ma.Spec.Family != mb.Spec.Family || !reflect.DeepEqual(ma.Spec.Params, mb.Spec.Params) {
			t.Errorf("member %d spec: %v vs %v", i, ma.Spec, mb.Spec)
		}
		if ma.Weight != mb.Weight {
			t.Errorf("member %d weight: %v vs %v", i, ma.Weight, mb.Weight)
		}
		if ma.ValScore != mb.ValScore {
			t.Errorf("member %d val score: %v vs %v", i, ma.ValScore, mb.ValScore)
		}
	}
	for _, x := range probes {
		pa, pb := a.PredictProba(x), b.PredictProba(x)
		if !reflect.DeepEqual(pa, pb) {
			t.Errorf("PredictProba(%v): %v vs %v", x, pa, pb)
		}
	}
}

// TestWorkersEquivalenceRefit checks the parallel Ensemble.Fit path:
// refitting the same ensemble description with different worker counts
// must give identical models.
func TestWorkersEquivalenceRefit(t *testing.T) {
	train := blobs(200, 2, rng.New(9))
	cfg := smallCfg(5)
	cfg.Workers = 1
	ens, err := Run(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fresh := blobs(200, 2, rng.New(10))

	serial := &Ensemble{Members: append([]Member(nil), ens.Members...), NumClasses: ens.NumClasses, workers: 1}
	if err := serial.Fit(fresh, rng.New(77)); err != nil {
		t.Fatal(err)
	}
	par := &Ensemble{Members: append([]Member(nil), ens.Members...), NumClasses: ens.NumClasses, workers: 8}
	if err := par.Fit(fresh, rng.New(77)); err != nil {
		t.Fatal(err)
	}
	for _, x := range fresh.X[:8] {
		if !reflect.DeepEqual(serial.PredictProba(x), par.PredictProba(x)) {
			t.Fatalf("refit diverges at %v", x)
		}
	}
}
