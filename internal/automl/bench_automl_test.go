package automl

import (
	"testing"

	"github.com/netml/alefb/internal/rng"
)

// BenchmarkAutoMLGeneration measures one full search with an evolutionary
// phase: mutation frequently re-proposes candidates it already tried, so
// this benchmark is where the deterministic evaluation cache pays off.
func BenchmarkAutoMLGeneration(b *testing.B) {
	train := blobs(300, 3, rng.New(41))
	cfg := Config{MaxCandidates: 18, Generations: 3, EnsembleSize: 5, Seed: 9, Workers: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(train, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
