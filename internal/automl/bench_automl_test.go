package automl

import (
	"flag"
	"fmt"
	"testing"

	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/ml"
	"github.com/netml/alefb/internal/rng"
)

// BenchmarkAutoMLGeneration measures one full search with an evolutionary
// phase: mutation frequently re-proposes candidates it already tried, so
// this benchmark is where the deterministic evaluation cache pays off.
func BenchmarkAutoMLGeneration(b *testing.B) {
	train := blobs(300, 3, rng.New(41))
	cfg := Config{MaxCandidates: 18, Generations: 3, EnsembleSize: 5, Seed: 9, Workers: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(train, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// automlEngine selects the engine BenchmarkAutoMLGenerationHist searches
// with, defaulting to hist. The committed baseline lines are generated
// with -automl.engine=presort on the identical search, so the recorded
// speedup isolates the tree-family training engine inside a full AutoML
// run (same specs modulo the engine knob, same data, same search rng).
var automlEngine = flag.String("automl.engine", "hist", "train engine for BenchmarkAutoMLGenerationHist (presort or hist)")

// blobsWide is blobs with nf features (blobs is fixed at 2): feature f
// of class c clusters around ((c+f) mod k)*3-3, the same layout the ml
// package's fit benchmarks use. Wider rows are where the training-engine
// choice matters — presort partitions O(rows×features) per node while
// hist partitions O(rows) — so the engine benchmark uses this dataset.
func blobsWide(n, nf, k int, r *rng.Rand) *data.Dataset {
	schema := &data.Schema{}
	for f := 0; f < nf; f++ {
		schema.Features = append(schema.Features, data.Feature{Name: fmt.Sprintf("x%d", f), Min: -10, Max: 10})
	}
	for c := 0; c < k; c++ {
		schema.Classes = append(schema.Classes, string(rune('A'+c)))
	}
	d := data.New(schema)
	row := make([]float64, nf)
	for i := 0; i < n; i++ {
		c := i % k
		for f := 0; f < nf; f++ {
			center := float64((c+f)%k)*3 - 3
			row[f] = r.Normal(center, 1.5)
		}
		d.Append(append([]float64(nil), row...), c)
	}
	return d
}

// BenchmarkAutoMLGenerationHist is the engine benchmark for a
// domain-customized search: Families restricts the zoo to the five tree
// families (the configuration a networking operator who wants
// ALE-interpretable tree ensembles would run), so candidate cost is
// dominated by tree fits and the hist-vs-presort ratio measures the
// engine rather than KNN/MLP candidates that train identically under
// both. The data is sized for the regime the histogram engine targets:
// 2000 rows — far past the lossless threshold, so continuous columns bin
// to 64 quantiles — and 10 features. (The 300-row 2-feature full-zoo
// original stays as BenchmarkAutoMLGeneration: at that size the engines
// are at parity and the presort default remains the right choice.)
func BenchmarkAutoMLGenerationHist(b *testing.B) {
	engine, err := ml.ParseTrainEngine(*automlEngine)
	if err != nil {
		b.Fatal(err)
	}
	train := blobsWide(2000, 10, 3, rng.New(41))
	cfg := Config{
		MaxCandidates: 18, Generations: 3, EnsembleSize: 5, Seed: 9, Workers: 1,
		TrainEngine: engine,
		Families:    []string{"tree", "forest", "xtrees", "gbdt", "adaboost"},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(train, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
