package automl

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/netml/alefb/internal/faultinject"
	"github.com/netml/alefb/internal/ml"
	"github.com/netml/alefb/internal/rng"
)

// histCfg is smallCfg with the histogram engine selected.
func histCfg(seed uint64) Config {
	cfg := smallCfg(seed)
	cfg.TrainEngine = ml.EngineHist
	return cfg
}

// TestHistEngineSpecsCarryKnob checks that a hist-engine search records
// the engine on every tree-family member spec — the knob must survive all
// the way into the returned ensemble so persisted descriptions rebuild
// with the same engine — and never on non-tree families.
func TestHistEngineSpecsCarryKnob(t *testing.T) {
	train := blobs(240, 3, rng.New(8))
	cfg := histCfg(4)
	cfg.MaxCandidates = 18
	cfg.Generations = 2
	ens, err := Run(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	treeFams := map[family]bool{famTree: true, famForest: true, famExtraTrees: true, famGBDT: true, famAdaBoost: true}
	for i, m := range ens.Members {
		v, has := m.Spec.Params["hist"]
		if treeFams[m.Spec.Family] {
			if !has || v != 1 {
				t.Errorf("member %d (%s): tree-family spec lost the hist knob: %v", i, m.Spec, m.Spec.Params)
			}
			if engineOf(m.Spec) != ml.EngineHist {
				t.Errorf("member %d: engineOf = %v, want hist", i, engineOf(m.Spec))
			}
		} else if has {
			t.Errorf("member %d (%s): non-tree family carries hist knob", i, m.Spec)
		}
	}
}

// TestHistSpecHashDistinguishesEngines checks the cache-key contract: the
// same hyperparameter point under the two engines must hash differently
// (they train different models), and applyEngine must be a no-op for the
// presort default and for non-tree families.
func TestHistSpecHashDistinguishesEngines(t *testing.T) {
	base := Spec{Family: famGBDT, Params: map[string]float64{"rounds": 20, "lr": 0.1, "depth": 3}}
	hist := applyEngine(base.clone(), ml.EngineHist)
	if specHash(base) == specHash(hist) {
		t.Error("specHash conflates presort and hist specs")
	}
	if engineOf(base) != ml.EnginePresort || engineOf(hist) != ml.EngineHist {
		t.Errorf("engineOf round-trip broken: %v / %v", engineOf(base), engineOf(hist))
	}
	if got := applyEngine(base.clone(), ml.EnginePresort); !specEqual(got, base) {
		t.Errorf("presort applyEngine mutated the spec: %v", got)
	}
	knn := Spec{Family: famKNN, Params: map[string]float64{"k": 5}}
	if got := applyEngine(knn.clone(), ml.EngineHist); !specEqual(got, knn) {
		t.Errorf("hist applyEngine touched a non-tree family: %v", got)
	}
}

// TestHistMutatePreservesKnob checks that mutation treats the engine as
// structural, not tunable: the knob is never jittered, and because it is
// skipped before the per-key coin flip, the mutation rng stream is
// identical with and without it — the same seed perturbs the same
// hyperparameters to the same values.
func TestHistMutatePreservesKnob(t *testing.T) {
	base := Spec{Family: famForest, Params: map[string]float64{"trees": 30, "depth": 8, "leaf": 2}}
	hist := applyEngine(base.clone(), ml.EngineHist)
	for seed := uint64(0); seed < 20; seed++ {
		mp := Mutate(base, rng.New(seed))
		mh := Mutate(hist, rng.New(seed))
		if engineOf(mp) != ml.EnginePresort {
			t.Fatalf("seed %d: presort mutation gained a hist knob: %v", seed, mp)
		}
		if mh.Family != mp.Family {
			// Structural re-draw: families must still match (same stream).
			t.Fatalf("seed %d: families diverged: %v vs %v", seed, mp, mh)
		}
		if mh.Family != famForest {
			continue // re-drawn spec carries no knob until applyEngine
		}
		if v := mh.Params["hist"]; v != 1 {
			t.Fatalf("seed %d: mutation corrupted the hist knob: %v", seed, mh)
		}
		for k, v := range mp.Params {
			if mh.Params[k] != v {
				t.Fatalf("seed %d: param %q diverged: %v vs %v", seed, k, mp, mh)
			}
		}
	}
}

// TestHistEvalCacheEquivalence is TestEvalCacheEquivalence under the
// histogram engine: memoized and uncached hist-mode searches must return
// bit-identical ensembles at any worker count.
func TestHistEvalCacheEquivalence(t *testing.T) {
	for _, seed := range []uint64{3, 11} {
		for _, workers := range []int{1, 8} {
			t.Run(fmt.Sprintf("seed%d/w%d", seed, workers), func(t *testing.T) {
				train := blobs(240, 3, rng.New(seed*7+1))
				cfg := histCfg(seed)
				cfg.MaxCandidates = 18
				cfg.Generations = 2
				cfg.Workers = workers

				cached, err := Run(train, cfg)
				if err != nil {
					t.Fatal(err)
				}
				cfg.DisableEvalCache = true
				uncached, err := Run(train, cfg)
				if err != nil {
					t.Fatal(err)
				}
				cached.CacheHits = 0
				uncached.CacheHits = 0
				assertEnsemblesIdentical(t, cached, uncached, train.X[:5])
			})
		}
	}
}

// TestHistWorkersEquivalence is the hist-engine determinism contract:
// Workers=1 and Workers=8 searches must be bit-identical, including with
// pre-screening (whose screening fits also run binned).
func TestHistWorkersEquivalence(t *testing.T) {
	variants := []struct {
		name   string
		mutate func(*Config)
	}{
		{"holdout", func(c *Config) {}},
		{"prescreen", func(c *Config) { c.PreScreen = 3 }},
	}
	for _, v := range variants {
		for _, seed := range []uint64{3, 202} {
			t.Run(fmt.Sprintf("%s/seed%d", v.name, seed), func(t *testing.T) {
				train := blobs(240, 3, rng.New(seed*7+1))
				cfg := histCfg(seed)
				v.mutate(&cfg)

				cfg.Workers = 1
				serial, err := Run(train, cfg)
				if err != nil {
					t.Fatal(err)
				}
				cfg.Workers = 8
				par, err := Run(train, cfg)
				if err != nil {
					t.Fatal(err)
				}
				assertEnsemblesIdentical(t, serial, par, train.X[:5])
			})
		}
	}
}

// TestHistFaultedCandidateBypassesCache pins the fault/cache interaction
// under the histogram engine: a candidate under an injected fault or
// injected delay must bypass the evaluation cache in both directions
// (fault keys are per-index, not per-spec), so a faulted hist search is
// bit-identical to its Drop control arm — and to itself — at any worker
// count, with the drop counted exactly once.
func TestHistFaultedCandidateBypassesCache(t *testing.T) {
	const faultIdx = 3
	train := blobs(240, 3, rng.New(21))
	base := histCfg(17)

	run := func(f *faultinject.Injector, workers int) *Ensemble {
		t.Helper()
		cfg := base
		cfg.Workers = workers
		cfg.Fault = f
		ens, err := Run(train, cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return ens
	}

	control := run(faultinject.New().WithFit(faultIdx, faultinject.Drop), 1)
	cases := []struct {
		name  string
		kind  faultinject.Kind
		count func(DropCounts) int
	}{
		{"panic", faultinject.Panic, func(d DropCounts) int { return d.Panics }},
		{"error", faultinject.Error, func(d DropCounts) int { return d.Errors }},
		{"nan", faultinject.NaN, func(d DropCounts) int { return d.NaNs }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, workers := range []int{1, 8} {
				ens := run(faultinject.New().WithFit(faultIdx, tc.kind), workers)
				if got := tc.count(ens.Dropped); got != 1 {
					t.Errorf("workers=%d: drop count = %d, want 1 (all: %+v)", workers, got, ens.Dropped)
				}
				assertEnsemblesIdentical(t, control, ens, train.X[:5])
			}
		})
	}

	// An injected delay only slows the candidate; its evaluation still
	// succeeds but is never written to the cache. The result must equal
	// the fault-free search bit for bit at both worker counts.
	t.Run("slow", func(t *testing.T) {
		clean := run(nil, 1)
		for _, workers := range []int{1, 8} {
			slow := run(faultinject.New().WithSlowFit(faultIdx, 2*time.Millisecond), workers)
			if slow.Dropped.Total() != clean.Dropped.Total() {
				t.Errorf("workers=%d: slow candidate dropped: %+v", workers, slow.Dropped)
			}
			assertEnsemblesIdentical(t, clean, slow, train.X[:5])
		}
	})
}

// TestHistPersistRoundTrip checks that the hist knob survives
// description round-trips: a rebuilt hist-engine ensemble must predict
// bit-identically to the original after refitting on the same data.
func TestHistPersistRoundTrip(t *testing.T) {
	train := blobs(240, 3, rng.New(33))
	cfg := histCfg(6)
	ens, err := Run(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := Rebuild(ens.Describe(77), train)
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range rebuilt.Members {
		if !reflect.DeepEqual(m.Spec.Params, ens.Members[i].Spec.Params) {
			t.Errorf("member %d params changed in round-trip: %v vs %v", i, m.Spec.Params, ens.Members[i].Spec.Params)
		}
		if treeFam := m.Spec.Family; treeFam == famTree || treeFam == famForest ||
			treeFam == famExtraTrees || treeFam == famGBDT || treeFam == famAdaBoost {
			if engineOf(m.Spec) != ml.EngineHist {
				t.Errorf("member %d lost the hist engine in round-trip: %v", i, m.Spec)
			}
		}
	}
}
