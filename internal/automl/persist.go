package automl

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/rng"
)

// Description is a serializable record of an AutoML result: the selected
// pipeline specs, their weights, and the refit seed. Together with the
// training data it reconstructs the exact ensemble (every model in this
// repository is deterministic given data and seed), which keeps the format
// tiny and forward-compatible — no per-model weight dumps.
type Description struct {
	// Version guards the format.
	Version int `json:"version"`
	// RefitSeed drives the deterministic refit.
	RefitSeed uint64 `json:"refit_seed"`
	// NumClasses sanity-checks the training data at load time.
	NumClasses int `json:"num_classes"`
	// ValScore is the recorded validation balanced accuracy.
	ValScore float64 `json:"val_score"`
	// Members lists the selected pipelines.
	Members []MemberDescription `json:"members"`
}

// MemberDescription is one serialized ensemble member.
type MemberDescription struct {
	Family   int                `json:"family"`
	Params   map[string]float64 `json:"params"`
	Weight   float64            `json:"weight"`
	ValScore float64            `json:"val_score"`
}

// currentVersion of the description format.
const currentVersion = 1

// Describe captures the ensemble's reconstruction record with the given
// refit seed.
func (e *Ensemble) Describe(refitSeed uint64) Description {
	d := Description{
		Version:    currentVersion,
		RefitSeed:  refitSeed,
		NumClasses: e.NumClasses,
		ValScore:   e.ValScore,
	}
	for _, m := range e.Members {
		d.Members = append(d.Members, MemberDescription{
			Family:   int(m.Spec.Family),
			Params:   m.Spec.Params,
			Weight:   m.Weight,
			ValScore: m.ValScore,
		})
	}
	return d
}

// Save writes the ensemble's description as JSON.
func (e *Ensemble) Save(w io.Writer, refitSeed uint64) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(e.Describe(refitSeed)); err != nil {
		return fmt.Errorf("automl: save ensemble: %w", err)
	}
	return nil
}

// Load reads a description and reconstructs the ensemble by refitting
// every member on train with the recorded seed. The training data must be
// the dataset the ensemble was built for (same schema).
func Load(r io.Reader, train *data.Dataset) (*Ensemble, error) {
	var d Description
	if err := json.NewDecoder(r).Decode(&d); err != nil {
		return nil, fmt.Errorf("automl: load ensemble: %w", err)
	}
	return Rebuild(d, train)
}

// Rebuild reconstructs an ensemble from its description.
func Rebuild(d Description, train *data.Dataset) (*Ensemble, error) {
	if d.Version != currentVersion {
		return nil, fmt.Errorf("automl: description version %d unsupported (want %d)", d.Version, currentVersion)
	}
	if len(d.Members) == 0 {
		return nil, fmt.Errorf("automl: description has no members")
	}
	if d.NumClasses != train.Schema.NumClasses() {
		return nil, fmt.Errorf("automl: description built for %d classes, data has %d",
			d.NumClasses, train.Schema.NumClasses())
	}
	ens := &Ensemble{NumClasses: d.NumClasses, ValScore: d.ValScore}
	for i, md := range d.Members {
		if md.Family < 0 || md.Family >= int(numFamilies) {
			return nil, fmt.Errorf("automl: member %d has unknown family %d", i, md.Family)
		}
		if md.Weight <= 0 {
			return nil, fmt.Errorf("automl: member %d has non-positive weight %v", i, md.Weight)
		}
		ens.Members = append(ens.Members, Member{
			Spec:     Spec{Family: family(md.Family), Params: md.Params},
			Weight:   md.Weight,
			ValScore: md.ValScore,
		})
	}
	// Normalize weights defensively (they should already sum to 1).
	total := 0.0
	for _, m := range ens.Members {
		total += m.Weight
	}
	for i := range ens.Members {
		ens.Members[i].Weight /= total
	}
	if err := ens.Fit(train, rng.New(d.RefitSeed)); err != nil {
		return nil, err
	}
	return ens, nil
}
