package automl

import (
	"bytes"
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"github.com/netml/alefb/internal/faultinject"
	"github.com/netml/alefb/internal/rng"
	"github.com/netml/alefb/internal/testutil"
)

// TestFaultedCandidateEqualsDrop is the degradation-equivalence contract:
// a search where candidate i panics (or errors, or scores NaN) must be
// bit-identical to a search where candidate i is silently skipped
// (faultinject.Drop, the control arm), for any worker count. Every task
// draws from its own index-derived rng stream, so losing one candidate
// cannot perturb any other.
func TestFaultedCandidateEqualsDrop(t *testing.T) {
	const faultIdx = 3
	train := blobs(240, 3, rng.New(21))
	base := smallCfg(17)

	run := func(kind faultinject.Kind, workers int) *Ensemble {
		t.Helper()
		cfg := base
		cfg.Workers = workers
		cfg.Fault = faultinject.New().WithFit(faultIdx, kind)
		ens, err := Run(train, cfg)
		if err != nil {
			t.Fatalf("kind=%v workers=%d: %v", kind, workers, err)
		}
		return ens
	}

	control := run(faultinject.Drop, 1)
	cases := []struct {
		name  string
		kind  faultinject.Kind
		count func(DropCounts) int
	}{
		{"panic", faultinject.Panic, func(d DropCounts) int { return d.Panics }},
		{"error", faultinject.Error, func(d DropCounts) int { return d.Errors }},
		{"nan", faultinject.NaN, func(d DropCounts) int { return d.NaNs }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, workers := range []int{1, 8} {
				ens := run(tc.kind, workers)
				if got := tc.count(ens.Dropped); got != 1 {
					t.Errorf("workers=%d: drop count = %d, want 1 (all: %+v)", workers, got, ens.Dropped)
				}
				assertEnsemblesIdentical(t, control, ens, train.X[:5])
			}
		})
	}
}

// TestDropIsLoggedDeterministically checks that a dropped candidate is
// reported once, keyed by its global evaluation index and reason.
func TestDropIsLoggedDeterministically(t *testing.T) {
	train := blobs(240, 3, rng.New(22))
	cfg := smallCfg(17)
	cfg.Fault = faultinject.New().WithFit(2, faultinject.Panic)
	var log bytes.Buffer
	cfg.Log = &log
	if _, err := Run(train, cfg); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(log.String(), "dropped candidate 2 (fit panic)") {
		t.Fatalf("degradation log missing drop line:\n%s", log.String())
	}
}

// TestCandidateBudgetDropsStraggler checks the per-candidate wall-clock
// budget: an injected straggler is dropped and counted as a timeout
// instead of stalling the search.
func TestCandidateBudgetDropsStraggler(t *testing.T) {
	train := blobs(240, 3, rng.New(23))
	cfg := smallCfg(17)
	cfg.CandidateBudget = 100 * time.Millisecond
	cfg.Fault = faultinject.New().WithSlowFit(1, time.Second)
	ens, err := Run(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if ens.Dropped.Timeouts < 1 {
		t.Fatalf("straggler not dropped: %+v", ens.Dropped)
	}
}

// TestMinCommitteeEnforced checks both floors: a floor higher than the
// selection can reach, and a search where every candidate fails.
func TestMinCommitteeEnforced(t *testing.T) {
	train := blobs(240, 3, rng.New(24))

	cfg := smallCfg(17)
	cfg.MinCommittee = 100
	if _, err := Run(train, cfg); !errors.Is(err, ErrCommitteeTooSmall) {
		t.Fatalf("MinCommittee=100: err = %v, want ErrCommitteeTooSmall", err)
	}

	cfg = smallCfg(17)
	fault := faultinject.New()
	for i := 0; i < cfg.MaxCandidates; i++ {
		fault.WithFit(i, faultinject.Error)
	}
	cfg.Fault = fault
	if _, err := Run(train, cfg); !errors.Is(err, ErrCommitteeTooSmall) {
		t.Fatalf("all candidates failing: err = %v, want ErrCommitteeTooSmall", err)
	}
}

// TestRefitFaultDegrades checks member-level degradation: a member whose
// full-train refit panics is dropped, the surviving weights renormalize,
// and the run still succeeds while the committee stays above the floor.
func TestRefitFaultDegrades(t *testing.T) {
	train := blobs(240, 3, rng.New(25))
	cfg := smallCfg(17)
	baseline, err := Run(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(baseline.Members) < 2 {
		t.Skipf("need >= 2 members to degrade, got %d", len(baseline.Members))
	}

	cfg.Fault = faultinject.New().WithFit(-1, faultinject.Panic) // member 0's refit
	degraded, err := Run(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(degraded.Members) != len(baseline.Members)-1 {
		t.Fatalf("members after refit fault: %d, want %d", len(degraded.Members), len(baseline.Members)-1)
	}
	if degraded.Dropped.Panics != 1 {
		t.Fatalf("Dropped = %+v, want exactly one panic", degraded.Dropped)
	}
	sum := 0.0
	for _, m := range degraded.Members {
		sum += m.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("surviving weights sum to %v, want 1", sum)
	}
}

// TestRunCtxDeadline checks the hard-deadline contract: an expired or
// cancelled context aborts the search with the context's error, and no
// worker goroutines are left behind.
func TestRunCtxDeadline(t *testing.T) {
	train := blobs(240, 3, rng.New(26))
	cfg := smallCfg(17)
	cfg.Workers = 4

	defer testutil.LeakCheck(t)()

	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := RunCtx(ctx, train, cfg); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: err = %v, want context.DeadlineExceeded", err)
	}

	cancelled, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := RunCtx(cancelled, train, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled ctx: err = %v, want context.Canceled", err)
	}

	// Deadline expiring mid-search: workers notice at the next candidate
	// boundary. The injected straggler keeps the first batch busy long
	// enough that the 20ms deadline reliably lands inside it.
	ctx3, cancel3 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel3()
	midCfg := cfg
	midCfg.Fault = faultinject.New().WithSlowFit(0, 300*time.Millisecond)
	if _, err := RunCtx(ctx3, train, midCfg); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("mid-search deadline: err = %v, want context.DeadlineExceeded", err)
	}
}

// TestRunCtxBackgroundMatchesRun checks that threading a background
// context changes nothing: RunCtx(Background) is bit-identical to Run.
func TestRunCtxBackgroundMatchesRun(t *testing.T) {
	train := blobs(240, 3, rng.New(27))
	cfg := smallCfg(17)
	a, err := Run(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCtx(context.Background(), train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertEnsemblesIdentical(t, a, b, train.X[:5])
}
