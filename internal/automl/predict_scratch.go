package automl

import "github.com/netml/alefb/internal/ml"

// PredictScratch holds the reusable working memory of one member-major
// ensemble batch sweep: the per-member probability matrix and the shared
// pipeline-scaling scratch. A zero value is ready to use; the serving
// layer pools these so steady-state coalesced inference allocates
// nothing.
type PredictScratch struct {
	member ml.Matrix
	batch  ml.BatchScratch
}

// PredictProbaBatchIntoScratch writes the ensemble probability matrix of
// X into out, bit-identical to PredictProbaBatchInto but member-major:
// each member's own batch path sweeps the whole row matrix at once (the
// flat SoA engine's 4-row lockstep walk amortizes tree traversal across
// every row of a coalesced batch), and the weighted accumulation into out
// visits members in the same order as the row-major path, so every
// (row, class) cell sees the identical float64 addition sequence.
func (e *Ensemble) PredictProbaBatchIntoScratch(X, out [][]float64, sc *PredictScratch) {
	if len(X) == 0 {
		return
	}
	for i := range out {
		o := out[i]
		for c := range o {
			o[c] = 0
		}
	}
	member := sc.member.Rows(len(X), e.NumClasses)
	for _, m := range e.Members {
		ml.PredictProbaBatchIntoScratch(m.Model, X, member, &sc.batch)
		for i, row := range member {
			o := out[i]
			for c, v := range row {
				o[c] += m.Weight * v
			}
		}
	}
}
