package automl

import (
	"context"
	"testing"

	"github.com/netml/alefb/internal/rng"
)

// TestPredictScratchBitIdentity pins the member-major shared-scratch
// ensemble sweep to the row-major path bit for bit, on an ensemble found
// by a real search (so the member set mixes model families and
// pipelines). The serving layer's coalesced-batch determinism claim
// reduces to exactly this equality.
func TestPredictScratchBitIdentity(t *testing.T) {
	d := blobs(240, 3, rng.New(5))
	ens, err := RunCtx(context.Background(), d, smallCfg(21))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(64)
	X := make([][]float64, 300) // spans one 256-row serving chunk boundary
	for i := range X {
		X[i] = []float64{r.Uniform(-4, 8), r.Uniform(-4, 8)}
	}
	k := ens.NumClasses
	mk := func() [][]float64 {
		backing := make([]float64, len(X)*k)
		out := make([][]float64, len(X))
		for i := range out {
			out[i] = backing[i*k : (i+1)*k : (i+1)*k]
		}
		return out
	}
	want := mk()
	ens.PredictProbaBatchInto(X, want)

	var sc PredictScratch
	for pass := 0; pass < 2; pass++ { // pass 2 reuses warm scratch
		got := mk()
		ens.PredictProbaBatchIntoScratch(X, got, &sc)
		for i := range want {
			for c := range want[i] {
				if want[i][c] != got[i][c] {
					t.Fatalf("pass %d row %d class %d: scratch %v != row-major %v",
						pass, i, c, got[i][c], want[i][c])
				}
			}
		}
	}
}

// TestPredictScratchZeroAlloc pins the steady-state allocation count of
// the coalesced sweep core at zero: warm scratch plus caller-owned output
// means repeated sweeps touch the allocator not at all.
func TestPredictScratchZeroAlloc(t *testing.T) {
	d := blobs(240, 3, rng.New(5))
	ens, err := RunCtx(context.Background(), d, smallCfg(21))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(64)
	X := make([][]float64, 128)
	for i := range X {
		X[i] = []float64{r.Uniform(-4, 8), r.Uniform(-4, 8)}
	}
	k := ens.NumClasses
	backing := make([]float64, len(X)*k)
	out := make([][]float64, len(X))
	for i := range out {
		out[i] = backing[i*k : (i+1)*k : (i+1)*k]
	}
	var sc PredictScratch
	ens.PredictProbaBatchIntoScratch(X, out, &sc) // warm the scratch
	allocs := testing.AllocsPerRun(50, func() {
		ens.PredictProbaBatchIntoScratch(X, out, &sc)
	})
	if allocs != 0 {
		t.Fatalf("steady-state coalesced sweep allocates %.1f/op, want 0", allocs)
	}
}
