package automl

import (
	"bytes"
	"strings"
	"testing"

	"github.com/netml/alefb/internal/rng"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	r := rng.New(61)
	train := blobs(200, 2, r)
	ens, err := Run(train, smallCfg(63))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ens.Save(&buf, 42); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, train)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Members) != len(ens.Members) {
		t.Fatalf("members %d != %d", len(loaded.Members), len(ens.Members))
	}
	// Rebuilt weights must match.
	for i := range ens.Members {
		if diff := loaded.Members[i].Weight - ens.Members[i].Weight; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("member %d weight %v != %v", i, loaded.Members[i].Weight, ens.Members[i].Weight)
		}
	}
	// Predictions should be valid probabilities on arbitrary points.
	p := loaded.PredictProba([]float64{1, -2})
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("loaded proba sums to %v", sum)
	}
}

func TestLoadDeterministic(t *testing.T) {
	r := rng.New(65)
	train := blobs(150, 2, r)
	ens, err := Run(train, smallCfg(67))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ens.Save(&buf, 7); err != nil {
		t.Fatal(err)
	}
	saved := buf.String()
	a, err := Load(strings.NewReader(saved), train)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Load(strings.NewReader(saved), train)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.3, -0.7}
	pa, pb := a.PredictProba(x), b.PredictProba(x)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatal("loads diverge")
		}
	}
}

func TestLoadRejectsBadDescriptions(t *testing.T) {
	r := rng.New(69)
	train := blobs(50, 2, r)
	cases := []string{
		`not json`,
		`{"version": 99, "members": [{"family":0,"params":{},"weight":1}]}`,
		`{"version": 1, "num_classes": 2, "members": []}`,
		`{"version": 1, "num_classes": 5, "members": [{"family":0,"params":{},"weight":1}]}`,
		`{"version": 1, "num_classes": 2, "members": [{"family":99,"params":{},"weight":1}]}`,
		`{"version": 1, "num_classes": 2, "members": [{"family":0,"params":{},"weight":0}]}`,
	}
	for _, in := range cases {
		if _, err := Load(strings.NewReader(in), train); err == nil {
			t.Fatalf("bad description accepted: %s", in)
		}
	}
}
