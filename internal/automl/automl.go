package automl

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"runtime"
	"sort"
	"time"

	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/faultinject"
	"github.com/netml/alefb/internal/metrics"
	"github.com/netml/alefb/internal/ml"
	"github.com/netml/alefb/internal/parallel"
	"github.com/netml/alefb/internal/rng"
)

// ErrCommitteeTooSmall is returned (wrapped, with counts) when fewer
// committee members survive search and refit than Config.MinCommittee
// demands. The feedback algorithms need a committee to measure
// disagreement on; below the floor the caller must fall back — retry with
// a different seed, reuse a previous ensemble — rather than silently run
// feedback over a degenerate committee.
var ErrCommitteeTooSmall = errors.New("automl: committee below minimum size")

// Config controls one AutoML run.
type Config struct {
	// MaxCandidates is the number of pipelines evaluated, counting both
	// the random phase and the evolutionary phase (default 24).
	MaxCandidates int
	// Generations of evolutionary refinement after the random phase
	// (default 2). 0 disables evolution.
	Generations int
	// EnsembleSize is the number of greedy selection rounds; members may
	// repeat, which weights them (default 10).
	EnsembleSize int
	// MinDistinctMembers seeds the ensemble with this many of the
	// best-scoring distinct pipelines before greedy selection starts
	// (default 3, capped by EnsembleSize and the candidate count). The
	// ALE-variance and QBC feedback algorithms need a committee of
	// *diverse* models, which pure greedy selection does not guarantee.
	MinDistinctMembers int
	// ValFraction is the stratified holdout fraction used for model
	// selection and ensemble construction (default 0.25). Ignored when
	// CVFolds is set.
	ValFraction float64
	// CVFolds switches model selection from a single holdout to k-fold
	// cross-validation: every candidate is scored on out-of-fold
	// predictions covering the whole training set, which stabilizes both
	// selection and greedy ensembling on small datasets at k times the
	// fit cost. 0 keeps the holdout.
	CVFolds int
	// PreScreen enables successive-halving: PreScreen x the random budget
	// of specs are first scored cheaply on a small data subsample, and
	// only the best survive to full evaluation. Values <= 1 disable it.
	PreScreen int
	// TimeBudget optionally bounds wall-clock search time; 0 means no
	// bound. At least one candidate is always evaluated. TimeBudget is a
	// soft budget: the search completes with whatever it evaluated in
	// time. A hard deadline — abort with context.DeadlineExceeded — is a
	// context passed to RunCtx instead.
	TimeBudget time.Duration
	// CandidateBudget optionally bounds the wall-clock cost of a single
	// candidate evaluation; a candidate whose fits exceed it is dropped
	// (counted in Ensemble.Dropped.Timeouts) instead of stalling the
	// search. 0 means no bound. Like TimeBudget this trades determinism
	// for liveness: only fault-free runs without budgets are guaranteed
	// bit-identical across worker counts.
	CandidateBudget time.Duration
	// MinCommittee is the minimum number of ensemble members that must
	// survive selection and refit (default 1). When degradation — dropped
	// candidates, failed refits — leaves fewer, the run fails with an
	// error wrapping ErrCommitteeTooSmall instead of returning a
	// committee too degenerate for disagreement-based feedback.
	MinCommittee int
	// Log, when non-nil, receives one line per degradation event (dropped
	// candidate, dropped member) in deterministic candidate order.
	Log io.Writer
	// Fault is the test-only fault injector; nil (the default) injects
	// nothing. Fit faults are keyed by the global candidate-evaluation
	// index; member refits use negative keys (-1 is member 0's refit).
	Fault *faultinject.Injector
	// Seed drives all stochastic choices of the run. Distinct seeds give
	// the run-to-run diversity Cross-ALE feedback relies on.
	Seed uint64
	// Workers bounds the goroutines used for candidate evaluation,
	// pre-screening and member refits. 0 selects runtime.GOMAXPROCS(0);
	// 1 forces serial execution. Every value produces bit-identical
	// results (when TimeBudget is 0): each evaluation draws from its own
	// rng stream keyed by the candidate's spec hash, never from a shared
	// one.
	Workers int
	// TrainEngine selects the tree-growing engine for every tree-family
	// candidate the search proposes (Tree, Forest, ExtraTrees, GBDT,
	// AdaBoost): ml.EnginePresort (the zero default, unchanged behavior)
	// or ml.EngineHist for histogram-binned split finding. The engine is
	// recorded on each spec as the "hist" parameter, so it flows into
	// specHash — the evaluation cache and the per-candidate rng streams
	// never conflate engines — and into persisted descriptions.
	TrainEngine ml.TrainEngine
	// Families restricts the search space to the named model families
	// (see FamilyNames; e.g. "gbdt", "knn"). This is the paper's
	// domain-customization hook: a networking operator who knows which
	// model classes suit the task prunes the zoo up front instead of
	// paying to rediscover it every search. Both the random phase and the
	// evolutionary phase (including TPOT-style structural re-draws) stay
	// inside the subset. Empty means the full zoo; unknown or duplicate
	// names are rejected by Run.
	Families []string
	// DisableEvalCache turns off the deterministic evaluation cache, so
	// every candidate is fit even when an identical spec was already
	// evaluated this run. Because evaluation rng is keyed by the spec,
	// cached and uncached searches return bit-identical ensembles; the
	// switch exists for benchmarking and for the equivalence tests that
	// prove that claim.
	DisableEvalCache bool
}

func (c Config) withDefaults() Config {
	if c.MaxCandidates <= 0 {
		c.MaxCandidates = 24
	}
	if c.Generations < 0 {
		c.Generations = 0
	} else if c.Generations == 0 {
		c.Generations = 2
	}
	if c.EnsembleSize <= 0 {
		c.EnsembleSize = 10
	}
	if c.MinDistinctMembers <= 0 {
		c.MinDistinctMembers = 3
	}
	if c.MinDistinctMembers > c.EnsembleSize {
		c.MinDistinctMembers = c.EnsembleSize
	}
	if c.ValFraction <= 0 || c.ValFraction >= 1 {
		c.ValFraction = 0.25
	}
	if c.MinCommittee <= 0 {
		c.MinCommittee = 1
	}
	return c
}

// DropCounts tallies candidates and members discarded during one search,
// by reason. The counts are diagnostics: they do not enter the persisted
// Description, so a degraded run and its fault-free twin reconstruct the
// same ensemble.
type DropCounts struct {
	// Panics counts fits that panicked (recovered and isolated).
	Panics int
	// Errors counts fits that returned an error.
	Errors int
	// NaNs counts candidates whose validation score was NaN.
	NaNs int
	// Timeouts counts candidates that exceeded CandidateBudget.
	Timeouts int
}

// Total returns the number of dropped candidates and members.
func (d DropCounts) Total() int { return d.Panics + d.Errors + d.NaNs + d.Timeouts }

// Member is one ensemble component.
type Member struct {
	// Model is trained on the full training set.
	Model ml.Classifier
	// Spec is the hyperparameter point the model was built from.
	Spec Spec
	// Weight is the normalized greedy-selection weight.
	Weight float64
	// ValScore is the member's own holdout balanced accuracy.
	ValScore float64
}

// Ensemble is the output of an AutoML run: a weighted model ensemble plus
// search metadata.
type Ensemble struct {
	Members []Member
	// NumClasses of the training schema.
	NumClasses int
	// ValScore is the greedy ensemble's holdout balanced accuracy.
	ValScore float64
	// Evaluated is the number of candidate pipelines scored.
	Evaluated int
	// Dropped tallies candidates and members the search discarded instead
	// of aborting on: panicking fits, failing fits, NaN scores, budget
	// overruns.
	Dropped DropCounts
	// CacheHits is the number of candidate evaluations answered by the
	// deterministic evaluation cache instead of a fresh fit (identical
	// specs re-proposed by the evolutionary phase). Hits are counted in
	// deterministic candidate order, so the tally is identical at every
	// worker count.
	CacheHits int

	// workers is the refit pool size inherited from Config.Workers
	// (0 = GOMAXPROCS). It never affects results, only wall-clock.
	workers int
}

// PredictProba returns the weighted average of member probabilities.
func (e *Ensemble) PredictProba(x []float64) []float64 {
	out := make([]float64, e.NumClasses)
	e.predictInto(x, out, make([]float64, e.NumClasses))
	return out
}

// PredictProbaInto implements ml.IntoPredictor. It allocates one member
// probability buffer per call; the batch path shares it across rows.
func (e *Ensemble) PredictProbaInto(x, out []float64) {
	e.predictInto(x, out, make([]float64, e.NumClasses))
}

// PredictProbaBatchInto implements ml.BatchPredictor with one member
// probability buffer shared across all rows of the batch.
func (e *Ensemble) PredictProbaBatchInto(X, out [][]float64) {
	buf := make([]float64, e.NumClasses)
	for i, x := range X {
		e.predictInto(x, out[i], buf)
	}
}

// predictInto accumulates the weight-averaged member probabilities into
// out, using buf as the per-member probability scratch.
func (e *Ensemble) predictInto(x, out, buf []float64) {
	for i := range out {
		out[i] = 0
	}
	for _, m := range e.Members {
		ml.PredictProbaInto(m.Model, x, buf)
		for i, v := range buf {
			out[i] += m.Weight * v
		}
	}
}

// Predict returns argmax labels for every row of X.
func (e *Ensemble) Predict(X [][]float64) []int {
	out := make([]int, len(X))
	p := make([]float64, e.NumClasses)
	buf := make([]float64, e.NumClasses)
	for i, x := range X {
		e.predictInto(x, p, buf)
		out[i] = metrics.Argmax(p)
	}
	return out
}

// Name implements ml.Classifier so ensembles can be used anywhere a
// single model can.
func (e *Ensemble) Name() string { return fmt.Sprintf("ensemble(%d members)", len(e.Members)) }

// Fit implements ml.Classifier by refitting every member on d. Refits run
// on the worker pool of the Run that built the ensemble (GOMAXPROCS for
// loaded ensembles); each member's rng is split off serially first, so the
// result does not depend on the worker count.
func (e *Ensemble) Fit(d *data.Dataset, r *rng.Rand) error {
	rands := make([]*rng.Rand, len(e.Members))
	for i := range rands {
		rands[i] = r.Split()
	}
	return parallel.ForEach(len(e.Members), e.workers, func(i int) error {
		fresh := Build(e.Members[i].Spec)
		if err := fresh.Fit(d, rands[i]); err != nil {
			return fmt.Errorf("automl: refit member %d: %w", i, err)
		}
		e.Members[i].Model = fresh
		return nil
	})
}

// Models returns the distinct trained models of the ensemble — the
// committee the feedback algorithms (QBC, ALE-variance) operate on.
func (e *Ensemble) Models() []ml.Classifier {
	out := make([]ml.Classifier, 0, len(e.Members))
	for _, m := range e.Members {
		out = append(out, m.Model)
	}
	return out
}

// Confidence returns max-class probability, the standard confidence score
// used by the confidence-based active-learning baseline.
func (e *Ensemble) Confidence(x []float64) float64 {
	p := e.PredictProba(x)
	return p[metrics.Argmax(p)]
}

// candidate couples a spec with its holdout evaluation.
type candidate struct {
	spec  Spec
	model ml.Classifier
	// valProba[i] is the probability row for validation row i.
	valProba [][]float64
	score    float64
}

// dropReason classifies why a candidate evaluation produced no candidate.
type dropReason int

const (
	dropNone dropReason = iota
	// dropError: the fit returned an error.
	dropError
	// dropPanic: the fit panicked; the panic was recovered and isolated.
	dropPanic
	// dropNaN: the validation score was NaN (degenerate confusion rows).
	dropNaN
	// dropTimeout: the evaluation exceeded CandidateBudget.
	dropTimeout
	// dropSkipped: the task never ran (soft TimeBudget expiry, injected
	// control drop); not counted as a failure.
	dropSkipped
)

// String names the reason for degradation logs.
func (d dropReason) String() string {
	switch d {
	case dropError:
		return "fit error"
	case dropPanic:
		return "fit panic"
	case dropNaN:
		return "NaN score"
	case dropTimeout:
		return "candidate budget exceeded"
	case dropSkipped:
		return "skipped"
	default:
		return "ok"
	}
}

// fitOne fits m on d with panic isolation, applying any injected fault
// registered under fault index gi. A recovered panic is returned as a
// *parallel.PanicError with the fitting goroutine's stack preserved, so
// one misbehaving candidate can never take down the whole search.
func fitOne(m ml.Classifier, d *data.Dataset, r *rng.Rand, fault *faultinject.Injector, gi int) (err error) {
	defer func() {
		if v := recover(); v != nil {
			buf := make([]byte, 64<<10)
			err = &parallel.PanicError{Value: v, Stack: buf[:runtime.Stack(buf, false)]}
		}
	}()
	if delay := fault.Slow(gi); delay > 0 {
		time.Sleep(delay)
	}
	switch fault.Fit(gi) {
	case faultinject.Panic:
		panic(faultinject.ErrInjected)
	case faultinject.Error:
		return faultinject.ErrInjected
	}
	return m.Fit(d, r)
}

// dropOf maps a fit failure to its drop reason.
func dropOf(err error) dropReason {
	var pe *parallel.PanicError
	if errors.As(err, &pe) {
		return dropPanic
	}
	return dropError
}

// Run executes one AutoML search on train and returns the ensemble.
// All members of the returned ensemble are refit on the complete training
// set; the holdout is only used for selection.
func Run(train *data.Dataset, cfg Config) (*Ensemble, error) {
	return RunCtx(context.Background(), train, cfg)
}

// RunCtx is Run under a hard deadline: when ctx expires or is cancelled
// the search stops issuing work at the next candidate boundary and
// returns ctx.Err() (context.DeadlineExceeded / context.Canceled). This
// is distinct from the soft Config.TimeBudget, which completes the search
// with whatever was evaluated in time.
//
// Failure semantics within a run: a candidate whose fit panics, errors,
// scores NaN, or exceeds CandidateBudget is dropped deterministically
// (same candidate, every worker count), counted in Ensemble.Dropped and
// logged to Config.Log. The search aborts only when no candidate trains
// at all, when fewer than MinCommittee members survive, or when ctx
// expires.
func RunCtx(ctx context.Context, train *data.Dataset, cfg Config) (*Ensemble, error) {
	cfg = cfg.withDefaults()
	if train.Len() < 10 {
		return nil, errors.New("automl: need at least 10 training rows")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	allowed, err := resolveFamilies(cfg.Families)
	if err != nil {
		return nil, err
	}
	r := rng.New(cfg.Seed)
	// evalSeed keys every candidate's private rng stream via
	// rng.Derive(evalSeed, specHash(spec)). Drawn exactly once, before any
	// evaluation, it makes each evaluation a pure function of (seed, spec,
	// data) — equal specs consume equal randomness — which is what lets
	// the evaluation cache replay results bit-identically (see cache.go).
	evalSeed := r.Uint64()
	var cache *evalCache
	if !cfg.DisableEvalCache {
		cache = newEvalCache()
	}
	cacheHits := 0
	k := train.Schema.NumClasses()

	logf := func(format string, args ...interface{}) {
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, format+"\n", args...)
		}
	}
	var drops DropCounts

	deadline := time.Time{}
	if cfg.TimeBudget > 0 {
		deadline = time.Now().Add(cfg.TimeBudget)
	}
	expired := func() bool { return !deadline.IsZero() && time.Now().After(deadline) }

	// evaluate fits and scores one spec using tr, the task's private rng
	// stream. Task streams are derived from the batch seed and the task
	// index (rng.Derive), never shared, so a batch of evaluations yields
	// the same candidates no matter how many workers process it. gi is
	// the global candidate-evaluation index, the deterministic key for
	// fault injection and degradation logs.
	var evaluate func(gi int, spec Spec, tr *rng.Rand) (candidate, dropReason)
	var valY []int
	if cfg.CVFolds >= 2 {
		folds, err := train.Folds(cfg.CVFolds, r)
		if err != nil {
			return nil, fmt.Errorf("automl: cross-validation: %w", err)
		}
		for _, f := range folds {
			valY = append(valY, f.Val.Y...)
		}
		evaluate = func(gi int, spec Spec, tr *rng.Rand) (candidate, dropReason) {
			if cfg.Fault.Fit(gi) == faultinject.Drop {
				return candidate{}, dropSkipped
			}
			start := time.Now()
			var proba [][]float64
			var model ml.Classifier
			for _, f := range folds {
				m := Build(spec)
				if err := fitOne(m, f.Train, tr.Split(), cfg.Fault, gi); err != nil {
					return candidate{}, dropOf(err)
				}
				proba = append(proba, ml.PredictProbaBatch(m, f.Val.X)...)
				model = m // keep the last fold's model; refit replaces it
			}
			pred := make([]int, len(proba))
			for i, p := range proba {
				pred[i] = metrics.Argmax(p)
			}
			score := metrics.BalancedAccuracy(k, valY, pred)
			if cfg.Fault.Fit(gi) == faultinject.NaN {
				score = math.NaN()
			}
			if cfg.CandidateBudget > 0 && time.Since(start) > cfg.CandidateBudget {
				return candidate{}, dropTimeout
			}
			if math.IsNaN(score) {
				return candidate{}, dropNaN
			}
			return candidate{spec: spec, model: model, valProba: proba, score: score}, dropNone
		}
	} else {
		fitSet, valSet := train.StratifiedSplit(1-cfg.ValFraction, r)
		if fitSet.Len() == 0 || valSet.Len() == 0 {
			return nil, errors.New("automl: degenerate train/validation split")
		}
		valY = valSet.Y
		evaluate = func(gi int, spec Spec, tr *rng.Rand) (candidate, dropReason) {
			if cfg.Fault.Fit(gi) == faultinject.Drop {
				return candidate{}, dropSkipped
			}
			start := time.Now()
			model := Build(spec)
			if err := fitOne(model, fitSet, tr.Split(), cfg.Fault, gi); err != nil {
				return candidate{}, dropOf(err)
			}
			proba := ml.PredictProbaBatch(model, valSet.X)
			pred := make([]int, len(proba))
			for i, p := range proba {
				pred[i] = metrics.Argmax(p)
			}
			score := metrics.BalancedAccuracy(k, valSet.Y, pred)
			if cfg.Fault.Fit(gi) == faultinject.NaN {
				score = math.NaN()
			}
			if cfg.CandidateBudget > 0 && time.Since(start) > cfg.CandidateBudget {
				return candidate{}, dropTimeout
			}
			if math.IsNaN(score) {
				return candidate{}, dropNaN
			}
			return candidate{spec: spec, model: model, valProba: proba, score: score}, dropNone
		}
	}

	// evalBatch evaluates a batch of specs on the worker pool and returns
	// the successful candidates in spec order. Each task's rng stream is
	// keyed by its spec hash (never a shared stream), so a batch yields
	// the same candidates no matter how many workers process it. The
	// evaluation cache is consulted in a serial pre-pass and filled in a
	// serial post-pass — only cache misses reach the pool — so cache
	// state, hit counts and logs are deterministic too. Evaluations under
	// an injected fault or delay (keyed by global candidate index, not
	// spec) bypass the cache in both directions. Under a soft TimeBudget,
	// tasks that start after the deadline are skipped (except task 0 of
	// the first batch, so at least one candidate is always evaluated);
	// that is the only worker-count-dependent behavior.
	evalCount := 0
	evalBatch := func(specs []Spec, first bool) ([]candidate, error) {
		base := evalCount
		evalCount += len(specs)
		type result struct {
			c      candidate
			reason dropReason
			hit    bool
		}
		results := make([]result, len(specs))
		bypass := func(i int) bool {
			gi := base + i
			return cache == nil || cfg.Fault.Fit(gi) != faultinject.None || cfg.Fault.Slow(gi) > 0
		}
		todo := make([]int, 0, len(specs))
		for i, spec := range specs {
			if !bypass(i) {
				if e, ok := cache.lookup(specHash(spec), spec); ok {
					results[i] = result{c: e.cand, reason: e.reason, hit: true}
					continue
				}
			}
			todo = append(todo, i)
		}
		computed, err := parallel.MapCtx(ctx, len(todo), cfg.Workers, func(ti int) (result, error) {
			i := todo[ti]
			if expired() && !(first && i == 0) {
				return result{reason: dropSkipped}, nil
			}
			c, reason := evaluate(base+i, specs[i], rng.Derive(evalSeed, specHash(specs[i])))
			return result{c: c, reason: reason}, nil
		})
		if err != nil {
			return nil, err
		}
		for ti, i := range todo {
			results[i] = computed[ti]
		}
		out := make([]candidate, 0, len(results))
		for i, res := range results {
			if res.hit {
				cacheHits++
				logf("automl: candidate %d cache hit: %s", base+i, specs[i])
			} else if !bypass(i) && cacheable(res.reason) {
				cache.store(specHash(specs[i]), specs[i], res.c, res.reason)
			}
			switch res.reason {
			case dropNone:
				out = append(out, res.c)
				continue
			case dropPanic:
				drops.Panics++
			case dropError:
				drops.Errors++
			case dropNaN:
				drops.NaNs++
			case dropTimeout:
				drops.Timeouts++
			case dropSkipped:
				continue
			}
			logf("automl: dropped candidate %d (%s): %s", base+i, res.reason, specs[i])
		}
		return out, nil
	}

	// Phase 1: random search. Reserve a share of the budget for evolution.
	evoBudget := 0
	if cfg.Generations > 0 {
		evoBudget = cfg.MaxCandidates / 3
	}
	randomBudget := cfg.MaxCandidates - evoBudget
	specs := make([]Spec, 0, randomBudget)
	if cfg.PreScreen > 1 {
		var err error
		specs, err = preScreen(ctx, train, cfg.PreScreen*randomBudget, randomBudget, k, cfg.Workers, cfg.TrainEngine, allowed, r)
		if err != nil {
			return nil, err
		}
	} else {
		for i := 0; i < randomBudget; i++ {
			specs = append(specs, applyEngine(randomSpecIn(r, allowed), cfg.TrainEngine))
		}
	}
	cands, err := evalBatch(specs, true)
	if err != nil {
		return nil, err
	}
	if len(cands) == 0 {
		return nil, fmt.Errorf("automl: no candidate pipeline trained successfully (%d dropped: %d panics, %d errors, %d NaN, %d timeouts): %w",
			drops.Total(), drops.Panics, drops.Errors, drops.NaNs, drops.Timeouts, ErrCommitteeTooSmall)
	}

	// Phase 2: evolutionary refinement of the best quartile. Parent picks
	// and mutations are drawn serially from r before the batch runs: the
	// parent pool is fixed at generation start, so evaluation order within
	// the batch cannot influence which specs the generation tries.
	for gen := 0; gen < cfg.Generations && evoBudget > 0; gen++ {
		sort.SliceStable(cands, func(i, j int) bool { return cands[i].score > cands[j].score })
		parents := len(cands) / 4
		if parents < 1 {
			parents = 1
		}
		perGen := evoBudget / cfg.Generations
		if perGen < 1 {
			perGen = 1
		}
		mutated := make([]Spec, 0, perGen)
		for i := 0; i < perGen; i++ {
			// Re-apply the engine after mutation: a structural mutation
			// re-draws the family from scratch, losing the "hist" knob.
			mutated = append(mutated, applyEngine(mutateIn(cands[r.Intn(parents)].spec, r, allowed), cfg.TrainEngine))
		}
		more, err := evalBatch(mutated, false)
		if err != nil {
			return nil, err
		}
		cands = append(cands, more...)
	}

	// Phase 3: Caruana greedy ensemble selection with replacement on the
	// holdout predictions.
	counts := greedySelect(cands, valY, k, cfg.EnsembleSize, cfg.MinDistinctMembers)

	ens := &Ensemble{NumClasses: k, Evaluated: len(cands), workers: cfg.Workers}
	totalCount := 0
	for _, c := range counts {
		totalCount += c
	}
	for ci, count := range counts {
		if count == 0 {
			continue
		}
		ens.Members = append(ens.Members, Member{
			Model:    cands[ci].model,
			Spec:     cands[ci].spec,
			Weight:   float64(count) / float64(totalCount),
			ValScore: cands[ci].score,
		})
	}
	ens.ValScore = ensembleScore(cands, counts, valY, k)
	if len(ens.Members) < cfg.MinCommittee {
		return nil, fmt.Errorf("automl: selection kept %d members, need %d: %w",
			len(ens.Members), cfg.MinCommittee, ErrCommitteeTooSmall)
	}

	// Refit members on the full training set so no data is wasted. The
	// per-member rng streams are split from r serially first, so the refit
	// is bit-identical for any worker count. A member whose refit fails is
	// dropped and the surviving weights renormalized — degradation, not
	// abort — unless that leaves fewer than MinCommittee members. Refit
	// fault-injection keys are negative: -(i+1) targets member i.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rands := make([]*rng.Rand, len(ens.Members))
	for i := range rands {
		rands[i] = r.Split()
	}
	type refit struct {
		model ml.Classifier
		err   error
	}
	refits, err := parallel.MapCtx(ctx, len(ens.Members), cfg.Workers, func(i int) (refit, error) {
		fresh := Build(ens.Members[i].Spec)
		if err := fitOne(fresh, train, rands[i], cfg.Fault, -(i + 1)); err != nil {
			return refit{err: err}, nil
		}
		return refit{model: fresh}, nil
	})
	if err != nil {
		return nil, err
	}
	kept := make([]Member, 0, len(ens.Members))
	for i, rf := range refits {
		if rf.err != nil {
			if dropOf(rf.err) == dropPanic {
				drops.Panics++
			} else {
				drops.Errors++
			}
			logf("automl: dropped member %d on refit (%s)", i, dropOf(rf.err))
			continue
		}
		m := ens.Members[i]
		m.Model = rf.model
		kept = append(kept, m)
	}
	if len(kept) < cfg.MinCommittee {
		return nil, fmt.Errorf("automl: %d of %d members survived refit, need %d: %w",
			len(kept), len(ens.Members), cfg.MinCommittee, ErrCommitteeTooSmall)
	}
	totalW := 0.0
	for _, m := range kept {
		totalW += m.Weight
	}
	for i := range kept {
		kept[i].Weight /= totalW
	}
	ens.Members = kept
	ens.Dropped = drops
	ens.CacheHits = cacheHits
	return ens, nil
}

// preScreen implements the cheap rung of successive halving: it draws
// `total` random specs, scores each on a small stratified subsample of
// train with a fast holdout, and returns the best `keep` specs for full
// evaluation. Screening fits run on the worker pool; every spec is drawn
// serially from r first and scored with its own index-derived rng. A
// screening fit that fails or panics, or a NaN screening score, silently
// disqualifies the spec — screening is best-effort by construction.
func preScreen(ctx context.Context, train *data.Dataset, total, keep, k, workers int, engine ml.TrainEngine, allowed []family, r *rng.Rand) ([]Spec, error) {
	subN := 200
	if subN > train.Len() {
		subN = train.Len()
	}
	sub := train.Subset(r.Sample(train.Len(), subN))
	fitSet, valSet := sub.StratifiedSplit(0.7, r)
	if fitSet.Len() < 5 || valSet.Len() < 2 {
		// Too little data to screen meaningfully: fall back to random.
		out := make([]Spec, keep)
		for i := range out {
			out[i] = applyEngine(randomSpecIn(r, allowed), engine)
		}
		return out, nil
	}
	specs := make([]Spec, total)
	for i := range specs {
		specs[i] = applyEngine(randomSpecIn(r, allowed), engine)
	}
	screenSeed := r.Uint64()
	type scored struct {
		spec  Spec
		score float64
		ok    bool
	}
	results, err := parallel.MapCtx(ctx, total, workers, func(i int) (scored, error) {
		m := Build(specs[i])
		if err := fitOne(m, fitSet, rng.Derive(screenSeed, uint64(i)), nil, 0); err != nil {
			return scored{}, nil
		}
		pred := ml.Predict(m, valSet.X)
		score := metrics.BalancedAccuracy(k, valSet.Y, pred)
		if math.IsNaN(score) {
			return scored{}, nil
		}
		return scored{spec: specs[i], score: score, ok: true}, nil
	})
	if err != nil {
		return nil, err
	}
	all := make([]scored, 0, total)
	for _, s := range results {
		if s.ok {
			all = append(all, s)
		}
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].score > all[j].score })
	if keep > len(all) {
		keep = len(all)
	}
	out := make([]Spec, keep)
	for i := 0; i < keep; i++ {
		out[i] = all[i].spec
	}
	return out, nil
}

// greedySelect returns per-candidate selection counts after rounds of
// greedy forward selection (with replacement) maximizing balanced accuracy
// on the validation labels. The first minDistinct rounds are reserved for
// the best distinct pipelines, guaranteeing committee diversity.
func greedySelect(cands []candidate, valY []int, k, rounds, minDistinct int) []int {
	counts := make([]int, len(cands))
	n := len(valY)
	sum := make([][]float64, n)
	for i := range sum {
		sum[i] = make([]float64, k)
	}
	total := 0
	pred := make([]int, n)
	addTo := func(dst [][]float64, c candidate) {
		for i := range dst {
			for j, v := range c.valProba[i] {
				dst[i][j] += v
			}
		}
	}
	// Seed with the top distinct candidates by individual score.
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return cands[order[a]].score > cands[order[b]].score })
	seed := minDistinct
	if seed > len(cands) {
		seed = len(cands)
	}
	if seed > rounds {
		seed = rounds
	}
	if seed < 1 {
		seed = 1
	}
	for _, ci := range order[:seed] {
		addTo(sum, cands[ci])
		counts[ci]++
		total++
	}

	scoreWith := func(c candidate) float64 {
		for i := range sum {
			bestJ, bestV := 0, sum[i][0]+c.valProba[i][0]
			for j := 1; j < k; j++ {
				if v := sum[i][j] + c.valProba[i][j]; v > bestV {
					bestJ, bestV = j, v
				}
			}
			pred[i] = bestJ
		}
		return metrics.BalancedAccuracy(k, valY, pred)
	}

	for round := total; round < rounds; round++ {
		bestIdx, bestScore := -1, -1.0
		for ci := range cands {
			if s := scoreWith(cands[ci]); s > bestScore {
				bestIdx, bestScore = ci, s
			}
		}
		if bestIdx < 0 {
			break
		}
		addTo(sum, cands[bestIdx])
		counts[bestIdx]++
		total++
	}
	return counts
}

// ensembleScore computes the balanced accuracy of the count-weighted
// ensemble on the validation labels.
func ensembleScore(cands []candidate, counts []int, valY []int, k int) float64 {
	n := len(valY)
	pred := make([]int, n)
	row := make([]float64, k)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = 0
		}
		for ci, c := range counts {
			if c == 0 {
				continue
			}
			for j, v := range cands[ci].valProba[i] {
				row[j] += float64(c) * v
			}
		}
		pred[i] = metrics.Argmax(row)
	}
	return metrics.BalancedAccuracy(k, valY, pred)
}
