package automl

import (
	"math"
	"sort"
)

// This file implements the deterministic candidate-evaluation cache.
//
// The evolutionary phase frequently re-proposes hyperparameter points the
// search already tried: mutation perturbs each parameter with probability
// 1/2, so a child can equal its parent or an earlier cousin exactly. The
// seed engine re-fit such duplicates from scratch. The cache memoizes
// evaluations by spec instead — and the reason this is *bit-identical*,
// not approximately right, is how evaluation rng is keyed. Every
// candidate's private stream is rng.Derive(evalSeed, specHash(spec)),
// where evalSeed is drawn from the run's root rng exactly once, before
// any evaluation. Two evaluations of the same spec therefore consume
// identical randomness over identical data: the evaluation is a pure
// function of (run seed, spec, dataset), and replaying a stored result is
// indistinguishable from recomputing it — at any worker count, since
// cache reads and writes happen in the serial pre/post passes of
// evalBatch, never inside the worker pool.
//
// What is cached: clean evaluations, including deterministic failures
// (fit error, fit panic, NaN score) — replaying a failure drops the
// candidate again exactly as recomputing would. What is never cached:
// evaluations under an injected fault or injected delay (the fault is
// keyed by the global candidate index, not the spec, so replaying it for
// a different index would be wrong in both directions) and budget
// outcomes (dropTimeout/dropSkipped depend on wall-clock, not the spec).

// evalEntry is one memoized evaluation: the candidate (empty for cached
// failures) plus the deterministic drop reason.
type evalEntry struct {
	spec   Spec // stored for exact-equality verification of hash matches
	cand   candidate
	reason dropReason
}

// evalCache memoizes candidate evaluations within one run, keyed by
// specHash with stored-spec equality checked on lookup, so a hash
// collision degrades to a miss instead of returning the wrong model.
type evalCache struct {
	entries map[uint64]evalEntry
}

func newEvalCache() *evalCache {
	return &evalCache{entries: map[uint64]evalEntry{}}
}

func (c *evalCache) lookup(h uint64, spec Spec) (evalEntry, bool) {
	e, ok := c.entries[h]
	if !ok || !specEqual(e.spec, spec) {
		return evalEntry{}, false
	}
	return e, true
}

func (c *evalCache) store(h uint64, spec Spec, cand candidate, reason dropReason) {
	if old, ok := c.entries[h]; ok && !specEqual(old.spec, spec) {
		return // hash collision: keep the first entry, never overwrite
	}
	c.entries[h] = evalEntry{spec: spec.clone(), cand: cand, reason: reason}
}

// cacheable reports whether an evaluation outcome is a pure function of
// the spec. Budget expiries and injected skips are wall-clock artifacts
// and must be re-tried, not replayed.
func cacheable(reason dropReason) bool {
	switch reason {
	case dropNone, dropError, dropPanic, dropNaN:
		return true
	}
	return false
}

// specHash returns the canonical FNV-1a hash of a spec: the family index
// followed by the parameters as (name, float64-bits) pairs in sorted name
// order, so map iteration order can never leak into the key. The hash
// doubles as the candidate's rng-stream index, which is what makes equal
// specs evaluate identically and the cache exact.
func specHash(s Spec) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	byte8 := func(v uint64) {
		for shift := 0; shift < 64; shift += 8 {
			h ^= (v >> shift) & 0xff
			h *= prime64
		}
	}
	byte8(uint64(s.Family))
	keys := make([]string, 0, len(s.Params))
	for k := range s.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		for i := 0; i < len(k); i++ {
			h ^= uint64(k[i])
			h *= prime64
		}
		h ^= 0xff // terminator so "ab"+"c" and "a"+"bc" differ
		h *= prime64
		byte8(math.Float64bits(s.Params[k]))
	}
	return h
}

// specEqual reports exact equality of two specs (same family, same
// parameter set, bit-equal values).
func specEqual(a, b Spec) bool {
	if a.Family != b.Family || len(a.Params) != len(b.Params) {
		return false
	}
	for k, v := range a.Params {
		w, ok := b.Params[k]
		if !ok || math.Float64bits(v) != math.Float64bits(w) {
			return false
		}
	}
	return true
}
