package automl

import (
	"math"
	"testing"

	"github.com/netml/alefb/internal/rng"
	"github.com/netml/alefb/internal/wire"
)

// TestEnsembleCodecRoundTrip runs a real (small) search per seed, then
// pins that encode→decode yields an ensemble whose batch predictions
// are bit-identical to the original's and whose committee metadata
// (specs, weights, scores, search stats) survives intact.
func TestEnsembleCodecRoundTrip(t *testing.T) {
	for _, seed := range []uint64{1, 42, 99} {
		r := rng.New(seed)
		train := blobs(260, 3, r)
		test := blobs(80, 3, r)
		ens, err := Run(train, smallCfg(seed))
		if err != nil {
			t.Fatalf("seed %d: Run: %v", seed, err)
		}

		buf, err := AppendEnsemble(nil, ens)
		if err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		rd := wire.NewReader(buf)
		got, err := DecodeEnsemble(rd)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		if rd.Remaining() != 0 {
			t.Fatalf("seed %d: %d bytes left after decode", seed, rd.Remaining())
		}

		if got.NumClasses != ens.NumClasses || got.ValScore != ens.ValScore ||
			got.Evaluated != ens.Evaluated || got.Dropped != ens.Dropped ||
			got.CacheHits != ens.CacheHits || got.workers != ens.workers {
			t.Fatalf("seed %d: ensemble metadata mismatch: %+v vs %+v", seed, got, ens)
		}
		if len(got.Members) != len(ens.Members) {
			t.Fatalf("seed %d: %d members, want %d", seed, len(got.Members), len(ens.Members))
		}
		for i := range ens.Members {
			w, g := &ens.Members[i], &got.Members[i]
			if g.Spec.Family != w.Spec.Family || g.Weight != w.Weight || g.ValScore != w.ValScore {
				t.Fatalf("seed %d member %d: metadata mismatch", seed, i)
			}
			if len(g.Spec.Params) != len(w.Spec.Params) {
				t.Fatalf("seed %d member %d: params size mismatch", seed, i)
			}
			for k, v := range w.Spec.Params {
				if gv, ok := g.Spec.Params[k]; !ok || math.Float64bits(gv) != math.Float64bits(v) {
					t.Fatalf("seed %d member %d: param %q %v != %v", seed, i, k, gv, v)
				}
			}
		}

		want := make([][]float64, len(test.X))
		have := make([][]float64, len(test.X))
		for i := range test.X {
			want[i] = make([]float64, ens.NumClasses)
			have[i] = make([]float64, ens.NumClasses)
		}
		ens.PredictProbaBatchInto(test.X, want)
		got.PredictProbaBatchInto(test.X, have)
		for i := range want {
			for j := range want[i] {
				if math.Float64bits(want[i][j]) != math.Float64bits(have[i][j]) {
					t.Fatalf("seed %d: row %d class %d: %v != %v (bit mismatch)",
						seed, i, j, have[i][j], want[i][j])
				}
			}
		}
	}
}

// TestEnsembleCodecDeterministic pins byte-identical re-encoding —
// Params maps must not leak map iteration order into the output.
func TestEnsembleCodecDeterministic(t *testing.T) {
	train := blobs(200, 3, rng.New(7))
	ens, err := Run(train, smallCfg(7))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	a, err := AppendEnsemble(nil, ens)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	for i := 0; i < 8; i++ {
		b, err := AppendEnsemble(nil, ens)
		if err != nil {
			t.Fatalf("encode %d: %v", i, err)
		}
		if string(a) != string(b) {
			t.Fatalf("encoding %d differs from first", i)
		}
	}
}

// TestEnsembleCodecTruncation pins clean failure on every truncated
// prefix — a snapshot section that passes CRC but ends early is a
// reported error, not a panic.
func TestEnsembleCodecTruncation(t *testing.T) {
	train := blobs(160, 3, rng.New(3))
	ens, err := Run(train, smallCfg(3))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	buf, err := AppendEnsemble(nil, ens)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	for n := 0; n < len(buf); n += 13 {
		if _, err := DecodeEnsemble(wire.NewReader(buf[:n])); err == nil {
			t.Fatalf("prefix %d of %d decoded without error", n, len(buf))
		}
	}
}
