package automl

import (
	"math"
	"testing"

	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/metrics"
	"github.com/netml/alefb/internal/ml"
	"github.com/netml/alefb/internal/rng"
)

func blobs(n, k int, r *rng.Rand) *data.Dataset {
	schema := &data.Schema{
		Features: []data.Feature{
			{Name: "x0", Min: -10, Max: 10},
			{Name: "x1", Min: -10, Max: 10},
		},
	}
	for c := 0; c < k; c++ {
		schema.Classes = append(schema.Classes, string(rune('A'+c)))
	}
	d := data.New(schema)
	centers := [][]float64{{-4, -4}, {4, 4}, {-4, 4}, {4, -4}}
	for i := 0; i < n; i++ {
		c := i % k
		d.Append([]float64{r.Normal(centers[c][0], 1.2), r.Normal(centers[c][1], 1.2)}, c)
	}
	return d
}

func smallCfg(seed uint64) Config {
	return Config{MaxCandidates: 9, Generations: 1, EnsembleSize: 5, Seed: seed}
}

func TestRunProducesAccurateEnsemble(t *testing.T) {
	r := rng.New(1)
	train := blobs(300, 3, r)
	test := blobs(200, 3, r)
	ens, err := Run(train, smallCfg(42))
	if err != nil {
		t.Fatal(err)
	}
	pred := ens.Predict(test.X)
	if acc := metrics.BalancedAccuracy(3, test.Y, pred); acc < 0.9 {
		t.Fatalf("ensemble balanced accuracy %.3f < 0.9", acc)
	}
	if len(ens.Members) == 0 {
		t.Fatal("empty ensemble")
	}
	if ens.Evaluated < 5 {
		t.Fatalf("evaluated only %d candidates", ens.Evaluated)
	}
}

func TestEnsembleWeightsNormalized(t *testing.T) {
	train := blobs(200, 2, rng.New(2))
	ens, err := Run(train, smallCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, m := range ens.Members {
		if m.Weight <= 0 {
			t.Fatalf("member %s has non-positive weight %v", m.Model.Name(), m.Weight)
		}
		sum += m.Weight
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", sum)
	}
}

func TestEnsemblePredictProbaValid(t *testing.T) {
	train := blobs(200, 3, rng.New(3))
	ens, err := Run(train, smallCfg(8))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4)
	for i := 0; i < 50; i++ {
		p := ens.PredictProba([]float64{r.Uniform(-10, 10), r.Uniform(-10, 10)})
		sum := 0.0
		for _, v := range p {
			if v < -1e-12 || math.IsNaN(v) {
				t.Fatalf("invalid proba %v", p)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("proba sums to %v", sum)
		}
	}
}

func TestRunDeterministicPerSeed(t *testing.T) {
	train := blobs(150, 2, rng.New(5))
	a, err := Run(train, smallCfg(99))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(train, smallCfg(99))
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{1.5, -2.5}
	pa, pb := a.PredictProba(x), b.PredictProba(x)
	for i := range pa {
		if pa[i] != pb[i] {
			t.Fatalf("same seed, different ensembles: %v vs %v", pa, pb)
		}
	}
}

func TestRunSeedsDiffer(t *testing.T) {
	// Distinct seeds should usually produce distinct ensembles — the
	// property Cross-ALE feedback depends on.
	train := blobs(150, 2, rng.New(6))
	a, err := Run(train, smallCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(train, smallCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	r := rng.New(7)
	for i := 0; i < 20 && !diff; i++ {
		x := []float64{r.Uniform(-10, 10), r.Uniform(-10, 10)}
		pa, pb := a.PredictProba(x), b.PredictProba(x)
		for j := range pa {
			if math.Abs(pa[j]-pb[j]) > 1e-9 {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Fatal("seeds 1 and 2 produced identical ensembles on 20 probes")
	}
}

func TestRunErrorsOnTinyData(t *testing.T) {
	train := blobs(5, 2, rng.New(8))
	if _, err := Run(train, smallCfg(1)); err == nil {
		t.Fatal("Run should fail with < 10 rows")
	}
}

func TestEnsembleRefitOnNewData(t *testing.T) {
	r := rng.New(9)
	train := blobs(200, 2, r)
	ens, err := Run(train, smallCfg(10))
	if err != nil {
		t.Fatal(err)
	}
	// Refit the same ensemble structure on different data; must not error
	// and must still predict well.
	train2 := blobs(300, 2, r)
	if err := ens.Fit(train2, rng.New(11)); err != nil {
		t.Fatal(err)
	}
	test := blobs(100, 2, r)
	if acc := metrics.Accuracy(test.Y, ens.Predict(test.X)); acc < 0.9 {
		t.Fatalf("refit accuracy %.3f", acc)
	}
}

func TestModelsReturnsCommittee(t *testing.T) {
	train := blobs(150, 2, rng.New(12))
	ens, err := Run(train, smallCfg(13))
	if err != nil {
		t.Fatal(err)
	}
	models := ens.Models()
	if len(models) != len(ens.Members) {
		t.Fatalf("Models() len %d != members %d", len(models), len(ens.Members))
	}
	for _, m := range models {
		if p := m.PredictProba([]float64{0, 0}); len(p) != 2 {
			t.Fatalf("committee model %s proba len %d", m.Name(), len(p))
		}
	}
}

func TestConfidence(t *testing.T) {
	train := blobs(200, 2, rng.New(14))
	ens, err := Run(train, smallCfg(15))
	if err != nil {
		t.Fatal(err)
	}
	// Deep inside a blob: confident. On the decision boundary: less so.
	inBlob := ens.Confidence([]float64{-4, -4})
	onEdge := ens.Confidence([]float64{0, 0})
	if inBlob < 0.5 || inBlob > 1 {
		t.Fatalf("in-blob confidence %v", inBlob)
	}
	if onEdge > inBlob {
		t.Fatalf("edge confidence %v exceeds in-blob %v", onEdge, inBlob)
	}
}

func TestRandomSpecAndBuildAllFamilies(t *testing.T) {
	r := rng.New(16)
	seen := map[family]bool{}
	train := blobs(60, 2, r)
	for i := 0; i < 300 && len(seen) < int(numFamilies); i++ {
		s := RandomSpec(r)
		seen[s.Family] = true
		m := Build(s)
		if err := m.Fit(train, r.Split()); err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if p := m.PredictProba([]float64{0, 0}); len(p) != 2 {
			t.Fatalf("%s: bad proba", s)
		}
	}
	if len(seen) < int(numFamilies) {
		t.Fatalf("RandomSpec covered only %d/%d families", len(seen), numFamilies)
	}
}

func TestMutateKeepsSpecsValid(t *testing.T) {
	r := rng.New(17)
	train := blobs(60, 2, r)
	s := RandomSpec(r)
	for i := 0; i < 100; i++ {
		s = Mutate(s, r)
		m := Build(s)
		if err := m.Fit(train, r.Split()); err != nil {
			t.Fatalf("mutated spec %s failed to fit: %v", s, err)
		}
	}
}

func TestMutateDoesNotAliasParent(t *testing.T) {
	r := rng.New(18)
	s := RandomSpec(r)
	orig := s.clone()
	for i := 0; i < 50; i++ {
		_ = Mutate(s, r)
	}
	for k, v := range orig.Params {
		if s.Params[k] != v {
			t.Fatalf("Mutate modified parent param %s: %v -> %v", k, v, s.Params[k])
		}
	}
}

func TestGreedySelectImprovesOnWorst(t *testing.T) {
	// The greedy ensemble's validation score must be at least that of the
	// single best candidate (it can always pick only that model).
	train := blobs(250, 3, rng.New(19))
	ens, err := Run(train, smallCfg(20))
	if err != nil {
		t.Fatal(err)
	}
	bestMember := 0.0
	for _, m := range ens.Members {
		if m.ValScore > bestMember {
			bestMember = m.ValScore
		}
	}
	if ens.ValScore < bestMember-0.05 {
		t.Fatalf("ensemble val %.3f well below best member %.3f", ens.ValScore, bestMember)
	}
}

var _ ml.Classifier = (*Ensemble)(nil)
