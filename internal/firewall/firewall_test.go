package firewall

import (
	"math"
	"testing"

	"github.com/netml/alefb/internal/automl"
	"github.com/netml/alefb/internal/metrics"
	"github.com/netml/alefb/internal/rng"
)

func TestSchemaMatchesUCIShape(t *testing.T) {
	s := Schema()
	if s.NumFeatures() != 11 {
		t.Fatalf("features = %d, want 11", s.NumFeatures())
	}
	if s.NumClasses() != 4 {
		t.Fatalf("classes = %d, want 4", s.NumClasses())
	}
	if s.Classes[ActionAllow] != "allow" || s.Classes[ActionResetBoth] != "reset-both" {
		t.Fatalf("class names wrong: %v", s.Classes)
	}
}

func TestGenerateShapeAndRanges(t *testing.T) {
	r := rng.New(1)
	d := Generate(2000, r)
	if d.Len() != 2000 {
		t.Fatalf("len = %d", d.Len())
	}
	s := Schema()
	for i, row := range d.X {
		for j, f := range s.Features {
			if row[j] < f.Min || row[j] > f.Max {
				t.Fatalf("row %d feature %s = %v outside [%v,%v]", i, f.Name, row[j], f.Min, f.Max)
			}
			if f.Integer && row[j] != math.Round(row[j]) {
				t.Fatalf("row %d feature %s not integral: %v", i, f.Name, row[j])
			}
		}
	}
}

func TestClassDistributionRealistic(t *testing.T) {
	r := rng.New(2)
	d := Generate(20000, r)
	counts := d.ClassCounts()
	frac := func(c int) float64 { return float64(counts[c]) / float64(d.Len()) }
	if frac(ActionAllow) < 0.4 || frac(ActionAllow) > 0.7 {
		t.Fatalf("allow fraction %.3f outside [0.4,0.7]", frac(ActionAllow))
	}
	if frac(ActionDeny) < 0.1 || frac(ActionDeny) > 0.3 {
		t.Fatalf("deny fraction %.3f", frac(ActionDeny))
	}
	if frac(ActionDrop) < 0.1 || frac(ActionDrop) > 0.35 {
		t.Fatalf("drop fraction %.3f", frac(ActionDrop))
	}
	if counts[ActionResetBoth] == 0 {
		t.Fatal("reset-both absent")
	}
	if frac(ActionResetBoth) > 0.05 {
		t.Fatalf("reset-both fraction %.3f too common", frac(ActionResetBoth))
	}
}

func TestAccountingConsistency(t *testing.T) {
	r := rng.New(3)
	d := Generate(5000, r)
	for i, row := range d.X {
		if row[FeatBytes] != row[FeatBytesSent]+row[FeatBytesReceived] {
			t.Fatalf("row %d: bytes %v != sent %v + received %v", i,
				row[FeatBytes], row[FeatBytesSent], row[FeatBytesReceived])
		}
		if row[FeatPackets] != row[FeatPktsSent]+row[FeatPktsReceived] {
			t.Fatalf("row %d: packets inconsistent", i)
		}
	}
}

func TestDeniedSessionsLackNAT(t *testing.T) {
	r := rng.New(4)
	d := Generate(5000, r)
	for i, row := range d.X {
		if d.Y[i] == ActionDeny || d.Y[i] == ActionDrop {
			if row[FeatNATSrcPort] != 0 || row[FeatNATDstPort] != 0 {
				t.Fatalf("blocked row %d has NAT ports %v/%v", i, row[FeatNATSrcPort], row[FeatNATDstPort])
			}
		}
	}
}

func TestAllowedSessionsMostlyNATted(t *testing.T) {
	r := rng.New(5)
	d := Generate(5000, r)
	natted, allowed := 0, 0
	for i, row := range d.X {
		if d.Y[i] != ActionAllow {
			continue
		}
		allowed++
		if row[FeatNATSrcPort] > 0 {
			natted++
		}
	}
	f := float64(natted) / float64(allowed)
	if f < 0.8 || f == 1 {
		t.Fatalf("NAT fraction among allowed = %.3f, want high but < 1 (imperfect logging)", f)
	}
}

func TestPort443IsAmbiguous(t *testing.T) {
	// The planted Figure-2b phenomenon: traffic to 443-445 must contain a
	// real mixture of allow and drop — not separable by port alone.
	r := rng.New(6)
	d := Generate(30000, r)
	counts := map[int]int{}
	total := 0
	for i, row := range d.X {
		p := row[FeatDstPort]
		if p >= 443 && p <= 445 {
			counts[d.Y[i]]++
			total++
		}
	}
	if total < 1000 {
		t.Fatalf("too little 443-445 traffic: %d", total)
	}
	fAllow := float64(counts[ActionAllow]) / float64(total)
	fDrop := float64(counts[ActionDrop]) / float64(total)
	if fAllow < 0.15 || fDrop < 0.15 {
		t.Fatalf("443-445 not ambiguous: allow=%.2f drop=%.2f", fAllow, fDrop)
	}
}

func TestLowSourcePortsWeaklyInformative(t *testing.T) {
	// Low (spoofed) source ports should skew toward drop, but not
	// deterministically — that weak signal is Figure 2a's story.
	r := rng.New(7)
	d := Generate(30000, r)
	lowDrop, lowTotal := 0, 0
	dropTotal := 0
	for i, row := range d.X {
		if d.Y[i] == ActionDrop {
			dropTotal++
		}
		if row[FeatSrcPort] < 1024 {
			lowTotal++
			if d.Y[i] == ActionDrop {
				lowDrop++
			}
		}
	}
	if lowTotal == 0 {
		t.Fatal("no low source ports generated")
	}
	baseRate := float64(dropTotal) / float64(d.Len())
	lowRate := float64(lowDrop) / float64(lowTotal)
	if lowRate <= baseRate {
		t.Fatalf("low source ports not skewed toward drop: %.2f vs base %.2f", lowRate, baseRate)
	}
	if lowRate > 0.99 {
		t.Fatalf("low source ports deterministic (%.3f): signal should be noisy", lowRate)
	}
}

func TestDatasetIsLearnable(t *testing.T) {
	// An AutoML ensemble must beat the majority-class baseline clearly —
	// otherwise the UCL reproduction is meaningless.
	r := rng.New(8)
	d := Generate(4000, r)
	train, test := d.StratifiedSplit(0.7, r)
	ens, err := automl.Run(train, automl.Config{MaxCandidates: 8, Generations: 1, EnsembleSize: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	pred := ens.Predict(test.X)
	ba := metrics.BalancedAccuracy(4, test.Y, pred)
	if ba < 0.6 {
		t.Fatalf("balanced accuracy %.3f — dataset not learnable", ba)
	}
	if ba >= 0.999 {
		t.Fatalf("balanced accuracy %.3f — dataset trivially separable, ambiguity missing", ba)
	}
}

func TestDeterministicGeneration(t *testing.T) {
	a := Generate(100, rng.New(9))
	b := Generate(100, rng.New(9))
	for i := range a.X {
		if a.Y[i] != b.Y[i] {
			t.Fatal("same seed, different labels")
		}
		for j := range a.X[i] {
			if a.X[i][j] != b.X[i][j] {
				t.Fatal("same seed, different rows")
			}
		}
	}
}

func TestInterestingFeatures(t *testing.T) {
	s, d := InterestingFeatures()
	if s != FeatSrcPort || d != FeatDstPort {
		t.Fatal("InterestingFeatures wrong")
	}
}
