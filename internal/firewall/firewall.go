// Package firewall generates a synthetic stand-in for the UCI "Internet
// Firewall Data" dataset [25] the paper uses for its second evaluation
// (§4.2): an 11-feature, 4-class (allow/deny/drop/reset-both) log of
// firewall sessions.
//
// The generator is a rule-based firewall applied to a mixture of traffic
// kinds (web, DNS, SSH, SMTP, blocked services, port scans, and a DDoS
// campaign against HTTPS). Two phenomena from the paper's Figure 2 are
// modelled explicitly so the interpretability story can be reproduced:
//
//   - Source ports are kernel-assigned ephemeral values and therefore
//     mostly noise; a small fraction of attack traffic spoofs low source
//     ports, giving models a weak, unstable signal there (Figure 2a).
//   - Destination ports 443-445 carry a mixture of legitimate HTTPS and
//     DDoS traffic whose separation is genuinely ambiguous, so models
//     disagree in that range (Figure 2b).
package firewall

import (
	"math"

	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/rng"
)

// Feature indices, mirroring the UCI dataset's columns.
const (
	FeatSrcPort = iota
	FeatDstPort
	FeatNATSrcPort
	FeatNATDstPort
	FeatBytes
	FeatBytesSent
	FeatBytesReceived
	FeatPackets
	FeatElapsed
	FeatPktsSent
	FeatPktsReceived
	numFeatures
)

// Actions (class labels), ordered as in the UCI dataset.
const (
	ActionAllow = iota
	ActionDeny
	ActionDrop
	ActionResetBoth
)

// Schema returns the dataset schema.
func Schema() *data.Schema {
	return &data.Schema{
		Features: []data.Feature{
			{Name: "src_port", Min: 0, Max: 65535, Integer: true},
			{Name: "dst_port", Min: 0, Max: 65535, Integer: true},
			{Name: "nat_src_port", Min: 0, Max: 65535, Integer: true},
			{Name: "nat_dst_port", Min: 0, Max: 65535, Integer: true},
			{Name: "bytes", Min: 0, Max: 1e7},
			{Name: "bytes_sent", Min: 0, Max: 5e6},
			{Name: "bytes_received", Min: 0, Max: 5e6},
			{Name: "packets", Min: 0, Max: 20000},
			{Name: "elapsed_sec", Min: 0, Max: 1800},
			{Name: "pkts_sent", Min: 0, Max: 10000},
			{Name: "pkts_received", Min: 0, Max: 10000},
		},
		Classes: []string{"allow", "deny", "drop", "reset-both"},
	}
}

// trafficKind enumerates generator mixture components.
type trafficKind int

const (
	kindWeb trafficKind = iota
	kindDNS
	kindSSH
	kindSMTP
	kindBlocked
	kindScan
	kindDDoS
	kindLegitHTTPS
)

// kindWeights is the mixture over traffic kinds, tuned so the class
// distribution resembles the UCI data (allow ≈ 57%, deny ≈ 18%,
// drop ≈ 24%, reset-both ≈ 1%).
var kindWeights = []float64{
	kindWeb:        0.34,
	kindDNS:        0.12,
	kindSSH:        0.05,
	kindSMTP:       0.07,
	kindBlocked:    0.12,
	kindScan:       0.14,
	kindDDoS:       0.10,
	kindLegitHTTPS: 0.06,
}

// Generate draws n synthetic firewall log rows.
func Generate(n int, r *rng.Rand) *data.Dataset {
	d := data.New(Schema())
	for i := 0; i < n; i++ {
		x, y := sample(r)
		d.Append(x, y)
	}
	return d
}

// ephemeralPort returns a kernel-assigned source port.
func ephemeralPort(r *rng.Rand) float64 {
	return float64(1024 + r.Intn(65536-1024))
}

// lognormal returns a positive heavy-tailed sample.
func lognormal(r *rng.Rand, mu, sigma, max float64) float64 {
	v := math.Exp(r.Normal(mu, sigma))
	if v > max {
		v = max
	}
	return math.Round(v)
}

// sample draws one session and its firewall action.
func sample(r *rng.Rand) ([]float64, int) {
	x := make([]float64, numFeatures)
	kind := trafficKind(r.Weighted(kindWeights))

	srcPort := ephemeralPort(r)
	var dstPort float64
	var action int

	// Session-shape defaults, overridden per kind below.
	pktsSent := lognormal(r, 3.0, 1.0, 10000)
	pktsRecv := lognormal(r, 3.0, 1.0, 10000)
	bytesPerPktS := 200 + r.Float64()*1100
	bytesPerPktR := 200 + r.Float64()*1100
	elapsed := lognormal(r, 2.0, 1.5, 1800)

	switch kind {
	case kindWeb:
		dstPort = []float64{80, 8080, 443}[r.Intn(3)]
		action = ActionAllow
		pktsRecv = lognormal(r, 4.0, 1.2, 10000)
	case kindDNS:
		dstPort = 53
		action = ActionAllow
		pktsSent, pktsRecv = 1+float64(r.Intn(3)), 1+float64(r.Intn(3))
		bytesPerPktS, bytesPerPktR = 60+r.Float64()*100, 100+r.Float64()*400
		elapsed = float64(r.Intn(2))
	case kindSSH:
		dstPort = 22
		if r.Bool(0.15) {
			// Brute-force attempts trip the IDS: resets both sides.
			action = ActionResetBoth
			pktsSent = lognormal(r, 4.5, 0.6, 10000)
			pktsRecv = lognormal(r, 2.0, 0.6, 10000)
			bytesPerPktS = 60 + r.Float64()*80
		} else {
			action = ActionAllow
			elapsed = lognormal(r, 4.0, 1.2, 1800)
		}
	case kindSMTP:
		dstPort = 25
		// Outbound SMTP is policy-denied except for the mail relay.
		if r.Bool(0.85) {
			action = ActionDeny
		} else {
			action = ActionAllow
		}
	case kindBlocked:
		dstPort = []float64{135, 137, 138, 139, 23, 21, 111}[r.Intn(7)]
		action = ActionDeny
	case kindScan:
		dstPort = float64(r.Intn(65536))
		action = ActionDrop
		if r.Bool(0.3) {
			srcPort = float64(r.Intn(1024)) // spoofed low source port
		}
	case kindDDoS:
		// Campaign against the HTTPS service: 443 mostly, occasionally
		// neighbouring 444/445. Detection is noisy: volumetric flows are
		// dropped, low-and-slow ones leak through as "allow".
		dstPort = []float64{443, 443, 443, 444, 445}[r.Intn(5)]
		volumetric := r.Bool(0.6)
		if volumetric {
			action = ActionDrop
			pktsSent = lognormal(r, 5.5, 0.8, 10000)
			pktsRecv = float64(r.Intn(4))
			bytesPerPktS = 60 + r.Float64()*120
			elapsed = lognormal(r, 1.0, 0.8, 1800)
		} else if r.Bool(0.5) {
			action = ActionDrop // detected anyway
		} else {
			action = ActionAllow // leaked through
		}
		if r.Bool(0.25) {
			srcPort = float64(r.Intn(1024)) // spoofed low source port
		}
	case kindLegitHTTPS:
		// Legitimate HTTPS during the campaign; a noisy detector
		// misclassifies a share of it.
		dstPort = 443
		if r.Bool(0.15) {
			action = ActionDrop // collateral damage
		} else {
			action = ActionAllow
		}
		pktsRecv = lognormal(r, 4.2, 1.0, 10000)
	}

	// Denied and dropped sessions never complete: a handful of packets,
	// no NAT translation (as in the UCI data).
	switch action {
	case ActionDeny, ActionDrop:
		if kind != kindDDoS || !r.Bool(0.4) {
			pktsSent = 1 + float64(r.Intn(4))
			pktsRecv = 0
			elapsed = 0
		}
		x[FeatNATSrcPort] = 0
		x[FeatNATDstPort] = 0
	case ActionResetBoth:
		x[FeatNATSrcPort] = 0
		x[FeatNATDstPort] = 0
		pktsRecv = math.Min(pktsRecv, 10)
		elapsed = math.Min(elapsed, 5)
	default:
		x[FeatNATSrcPort] = ephemeralPort(r)
		x[FeatNATDstPort] = dstPort
		// NAT logging is imperfect: a slice of allowed traffic records
		// no translation, so NAT ports alone cannot decide the class.
		if r.Bool(0.12) {
			x[FeatNATSrcPort] = 0
			x[FeatNATDstPort] = 0
		}
	}

	bytesSent := math.Round(pktsSent * bytesPerPktS)
	bytesRecv := math.Round(pktsRecv * bytesPerPktR)
	x[FeatSrcPort] = srcPort
	x[FeatDstPort] = dstPort
	x[FeatBytes] = bytesSent + bytesRecv
	x[FeatBytesSent] = bytesSent
	x[FeatBytesReceived] = bytesRecv
	x[FeatPackets] = pktsSent + pktsRecv
	x[FeatElapsed] = elapsed
	x[FeatPktsSent] = pktsSent
	x[FeatPktsReceived] = pktsRecv
	return x, action
}

// InterestingFeatures returns the indices of the two features Figure 2
// interprets: source port and destination port.
func InterestingFeatures() (srcPort, dstPort int) {
	return FeatSrcPort, FeatDstPort
}
