// Package priors implements the paper's §1 straw-man for domain-customized
// AutoML: letting an operator encode *explicit* feature-independence
// assumptions — "add zeros in the covariance matrix for maximum likelihood
// estimators with Gaussian priors" — and letting a wrapper *infer* such
// assumptions from the network topology.
//
// The vehicle is a full-covariance Gaussian classifier (quadratic
// discriminant analysis fitted by maximum likelihood). Without
// constraints it estimates a dense per-class covariance; each declared
// independence zeroes the corresponding covariance entries before the
// model is inverted, exactly the straw-man's mechanism. The classifier
// implements ml.Classifier, so constrained models drop into the AutoML
// ensemble and the feedback committee like any other model.
package priors

import (
	"errors"
	"fmt"
	"math"

	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/ml"
	"github.com/netml/alefb/internal/rng"
)

// Constraint declares that features A and B are independent (conditional
// on the class), i.e. covariance[A][B] = covariance[B][A] = 0.
type Constraint struct {
	A, B int
}

// FromTopology infers independence constraints from a network topology:
// featureNode[j] is the topology node feature j is measured at, and adj
// lists node adjacency. Features measured at non-adjacent nodes are
// declared independent — the paper's example of the "logical and physical
// topology as an implicit indicator of such relationships".
func FromTopology(adj map[int][]int, featureNode []int) []Constraint {
	neighbour := func(a, b int) bool {
		if a == b {
			return true
		}
		for _, n := range adj[a] {
			if n == b {
				return true
			}
		}
		for _, n := range adj[b] {
			if n == a {
				return true
			}
		}
		return false
	}
	var out []Constraint
	for i := 0; i < len(featureNode); i++ {
		for j := i + 1; j < len(featureNode); j++ {
			if !neighbour(featureNode[i], featureNode[j]) {
				out = append(out, Constraint{A: i, B: j})
			}
		}
	}
	return out
}

// Gaussian is a maximum-likelihood Gaussian classifier (QDA) with optional
// independence constraints on the per-class covariance.
type Gaussian struct {
	// Constraints lists feature pairs whose covariance is forced to 0.
	Constraints []Constraint
	// Shrinkage blends the covariance toward its diagonal for stability
	// (0..1, default 0.1).
	Shrinkage float64

	classes  int
	logPrior []float64
	mean     [][]float64
	// invCov and logDet describe each class's constrained covariance.
	invCov  [][][]float64
	logDet  []float64
	fitted  bool
	nFeat   int
	fallbck []float64
}

// NewGaussian returns an unconstrained maximum-likelihood Gaussian
// classifier.
func NewGaussian() *Gaussian { return &Gaussian{Shrinkage: 0.1} }

// NewConstrainedGaussian returns a Gaussian classifier with the given
// independence constraints applied.
func NewConstrainedGaussian(cs []Constraint) *Gaussian {
	return &Gaussian{Constraints: cs, Shrinkage: 0.1}
}

// Name implements ml.Classifier.
func (g *Gaussian) Name() string {
	if len(g.Constraints) == 0 {
		return "qda"
	}
	return fmt.Sprintf("qda(+%d independence priors)", len(g.Constraints))
}

// Fit implements ml.Classifier.
func (g *Gaussian) Fit(d *data.Dataset, r *rng.Rand) error {
	if d.Len() == 0 {
		return ml.ErrEmptyDataset
	}
	_ = r
	k := d.Schema.NumClasses()
	nf := d.Schema.NumFeatures()
	g.classes, g.nFeat = k, nf
	for _, c := range g.Constraints {
		if c.A < 0 || c.A >= nf || c.B < 0 || c.B >= nf {
			return fmt.Errorf("priors: constraint (%d,%d) outside %d features", c.A, c.B, nf)
		}
	}
	counts := make([]float64, k)
	g.mean = make([][]float64, k)
	for c := range g.mean {
		g.mean[c] = make([]float64, nf)
	}
	for i, row := range d.X {
		counts[d.Y[i]]++
		for j, v := range row {
			g.mean[d.Y[i]][j] += v
		}
	}
	for c := 0; c < k; c++ {
		if counts[c] > 0 {
			for j := range g.mean[c] {
				g.mean[c][j] /= counts[c]
			}
		}
	}
	g.logPrior = make([]float64, k)
	total := float64(d.Len() + k)
	for c := 0; c < k; c++ {
		g.logPrior[c] = math.Log((counts[c] + 1) / total)
	}
	g.fallbck = make([]float64, k)
	for c := range g.fallbck {
		g.fallbck[c] = math.Exp(g.logPrior[c])
	}

	shrink := g.Shrinkage
	if shrink <= 0 || shrink > 1 {
		shrink = 0.1
	}
	g.invCov = make([][][]float64, k)
	g.logDet = make([]float64, k)
	for c := 0; c < k; c++ {
		cov := newMatrix(nf)
		if counts[c] >= 2 {
			for i, row := range d.X {
				if d.Y[i] != c {
					continue
				}
				for a := 0; a < nf; a++ {
					da := row[a] - g.mean[c][a]
					for b := a; b < nf; b++ {
						cov[a][b] += da * (row[b] - g.mean[c][b])
					}
				}
			}
			for a := 0; a < nf; a++ {
				for b := a; b < nf; b++ {
					cov[a][b] /= counts[c]
					cov[b][a] = cov[a][b]
				}
			}
		}
		// Shrink toward the diagonal and regularize.
		for a := 0; a < nf; a++ {
			for b := 0; b < nf; b++ {
				if a != b {
					cov[a][b] *= 1 - shrink
				}
			}
			if cov[a][a] <= 1e-9 {
				cov[a][a] = 1e-9
			}
		}
		ApplyConstraints(cov, g.Constraints)
		inv, logDet, err := invertSPD(cov)
		if err != nil {
			// Constrained matrix lost positive-definiteness: fall back to
			// the diagonal (full independence), which is always SPD.
			diag := newMatrix(nf)
			for a := 0; a < nf; a++ {
				diag[a][a] = cov[a][a]
			}
			inv, logDet, err = invertSPD(diag)
			if err != nil {
				return fmt.Errorf("priors: class %d covariance: %w", c, err)
			}
		}
		g.invCov[c] = inv
		g.logDet[c] = logDet
	}
	g.fitted = true
	return nil
}

// PredictProba implements ml.Classifier.
func (g *Gaussian) PredictProba(x []float64) []float64 {
	if !g.fitted {
		return append([]float64(nil), g.fallbck...)
	}
	scores := make([]float64, g.classes)
	diff := make([]float64, g.nFeat)
	for c := 0; c < g.classes; c++ {
		for j := range diff {
			diff[j] = x[j] - g.mean[c][j]
		}
		// Mahalanobis distance through the constrained precision matrix.
		quad := 0.0
		for a := 0; a < g.nFeat; a++ {
			row := g.invCov[c][a]
			s := 0.0
			for b := 0; b < g.nFeat; b++ {
				s += row[b] * diff[b]
			}
			quad += diff[a] * s
		}
		scores[c] = g.logPrior[c] - 0.5*(g.logDet[c]+quad)
	}
	out := make([]float64, g.classes)
	softmax(scores, out)
	return out
}

// ApplyConstraints zeroes the covariance entries named by the constraints
// (both symmetric positions), in place — the straw-man's exact operation.
func ApplyConstraints(cov [][]float64, cs []Constraint) {
	for _, c := range cs {
		if c.A == c.B {
			continue
		}
		cov[c.A][c.B] = 0
		cov[c.B][c.A] = 0
	}
}

// newMatrix allocates an n x n zero matrix.
func newMatrix(n int) [][]float64 {
	m := make([][]float64, n)
	buf := make([]float64, n*n)
	for i := range m {
		m[i], buf = buf[:n], buf[n:]
	}
	return m
}

// errNotSPD reports a matrix that is not symmetric positive definite.
var errNotSPD = errors.New("priors: matrix is not positive definite")

// invertSPD inverts a symmetric positive-definite matrix via Cholesky
// decomposition and returns the inverse plus log-determinant.
func invertSPD(m [][]float64) (inv [][]float64, logDet float64, err error) {
	n := len(m)
	// Cholesky: m = L L^T.
	L := newMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := m[i][j]
			for k := 0; k < j; k++ {
				sum -= L[i][k] * L[j][k]
			}
			if i == j {
				if sum <= 0 {
					return nil, 0, errNotSPD
				}
				L[i][i] = math.Sqrt(sum)
			} else {
				L[i][j] = sum / L[j][j]
			}
		}
	}
	for i := 0; i < n; i++ {
		logDet += 2 * math.Log(L[i][i])
	}
	// Invert L (lower triangular), then inv(m) = L^-T L^-1.
	Linv := newMatrix(n)
	for i := 0; i < n; i++ {
		Linv[i][i] = 1 / L[i][i]
		for j := 0; j < i; j++ {
			sum := 0.0
			for k := j; k < i; k++ {
				sum -= L[i][k] * Linv[k][j]
			}
			Linv[i][j] = sum / L[i][i]
		}
	}
	inv = newMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := 0.0
			for k := i; k < n; k++ { // Linv is lower triangular
				sum += Linv[k][i] * Linv[k][j]
			}
			inv[i][j] = sum
			inv[j][i] = sum
		}
	}
	return inv, logDet, nil
}

// softmax writes softmax(scores) into out.
func softmax(scores, out []float64) {
	maxS := math.Inf(-1)
	for _, s := range scores {
		if s > maxS {
			maxS = s
		}
	}
	sum := 0.0
	for i, s := range scores {
		e := math.Exp(s - maxS)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
}
