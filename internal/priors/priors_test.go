package priors

import (
	"math"
	"testing"

	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/metrics"
	"github.com/netml/alefb/internal/ml"
	"github.com/netml/alefb/internal/rng"
)

func TestInvertSPDIdentity(t *testing.T) {
	m := newMatrix(3)
	for i := 0; i < 3; i++ {
		m[i][i] = 1
	}
	inv, logDet, err := invertSPD(m)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(logDet) > 1e-12 {
		t.Fatalf("logDet = %v", logDet)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(inv[i][j]-want) > 1e-12 {
				t.Fatalf("inv[%d][%d] = %v", i, j, inv[i][j])
			}
		}
	}
}

func TestInvertSPDKnownMatrix(t *testing.T) {
	// [[4,2],[2,3]] has inverse [[3,-2],[-2,4]]/8 and det 8.
	m := [][]float64{{4, 2}, {2, 3}}
	inv, logDet, err := invertSPD(m)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{3.0 / 8, -2.0 / 8}, {-2.0 / 8, 4.0 / 8}}
	for i := range want {
		for j := range want[i] {
			if math.Abs(inv[i][j]-want[i][j]) > 1e-12 {
				t.Fatalf("inv[%d][%d] = %v, want %v", i, j, inv[i][j], want[i][j])
			}
		}
	}
	if math.Abs(logDet-math.Log(8)) > 1e-12 {
		t.Fatalf("logDet = %v, want log 8", logDet)
	}
}

func TestInvertSPDRejectsIndefinite(t *testing.T) {
	m := [][]float64{{1, 2}, {2, 1}} // eigenvalues 3, -1
	if _, _, err := invertSPD(m); err == nil {
		t.Fatal("indefinite matrix accepted")
	}
}

func TestApplyConstraints(t *testing.T) {
	cov := [][]float64{{1, 0.5, 0.3}, {0.5, 1, 0.2}, {0.3, 0.2, 1}}
	ApplyConstraints(cov, []Constraint{{A: 0, B: 2}, {A: 1, B: 1}})
	if cov[0][2] != 0 || cov[2][0] != 0 {
		t.Fatal("constraint not applied symmetrically")
	}
	if cov[1][1] != 1 {
		t.Fatal("diagonal constraint must be ignored")
	}
	if cov[0][1] != 0.5 {
		t.Fatal("unconstrained entry modified")
	}
}

func TestFromTopology(t *testing.T) {
	// Nodes: 0-1 adjacent, 2 isolated. Features at nodes [0, 1, 2].
	adj := map[int][]int{0: {1}}
	cs := FromTopology(adj, []int{0, 1, 2})
	// Pairs: (0,1) adjacent -> no constraint; (0,2) and (1,2) constrained.
	if len(cs) != 2 {
		t.Fatalf("constraints = %v", cs)
	}
	for _, c := range cs {
		if c.B != 2 {
			t.Fatalf("unexpected constraint %v", c)
		}
	}
	// Two features at the same node are never constrained.
	cs = FromTopology(adj, []int{0, 0})
	if len(cs) != 0 {
		t.Fatalf("same-node features constrained: %v", cs)
	}
}

// correlatedBlobs builds a 2-class problem where features are correlated
// within each class.
func correlatedBlobs(n int, rho float64, r *rng.Rand) *data.Dataset {
	schema := &data.Schema{
		Features: []data.Feature{
			{Name: "x0", Min: -10, Max: 10},
			{Name: "x1", Min: -10, Max: 10},
		},
		Classes: []string{"a", "b"},
	}
	d := data.New(schema)
	for i := 0; i < n; i++ {
		c := i % 2
		mu := -1.5
		if c == 1 {
			mu = 1.5
		}
		z1 := r.NormFloat64()
		z2 := rho*z1 + math.Sqrt(1-rho*rho)*r.NormFloat64()
		d.Append([]float64{mu + z1, mu + z2}, c)
	}
	return d
}

func TestGaussianLearns(t *testing.T) {
	r := rng.New(1)
	train := correlatedBlobs(600, 0.6, r)
	test := correlatedBlobs(400, 0.6, r)
	g := NewGaussian()
	if err := g.Fit(train, r); err != nil {
		t.Fatal(err)
	}
	pred := ml.Predict(g, test.X)
	if acc := metrics.Accuracy(test.Y, pred); acc < 0.85 {
		t.Fatalf("QDA accuracy %.3f", acc)
	}
}

func TestCorrectConstraintHelpsSmallData(t *testing.T) {
	// With truly independent features and tiny training data, declaring
	// the (true) independence should not hurt and typically helps by
	// removing noisy covariance estimates. Compare on many resamples.
	base := rng.New(2)
	wins, ties, losses := 0, 0, 0
	for trial := 0; trial < 30; trial++ {
		r := base.Split()
		train := correlatedBlobs(24, 0, r) // independent features, tiny n
		test := correlatedBlobs(400, 0, r)
		free := NewGaussian()
		constrained := NewConstrainedGaussian([]Constraint{{A: 0, B: 1}})
		if err := free.Fit(train, r); err != nil {
			t.Fatal(err)
		}
		if err := constrained.Fit(train, r); err != nil {
			t.Fatal(err)
		}
		aFree := metrics.Accuracy(test.Y, ml.Predict(free, test.X))
		aCon := metrics.Accuracy(test.Y, ml.Predict(constrained, test.X))
		switch {
		case aCon > aFree:
			wins++
		case aCon == aFree:
			ties++
		default:
			losses++
		}
	}
	if wins <= losses {
		t.Fatalf("true-independence prior not helping: wins=%d ties=%d losses=%d", wins, ties, losses)
	}
}

func TestConstrainedGaussianStillLearnsCorrelatedData(t *testing.T) {
	// A wrong constraint degrades but must not break the model.
	r := rng.New(3)
	train := correlatedBlobs(600, 0.8, r)
	test := correlatedBlobs(400, 0.8, r)
	g := NewConstrainedGaussian([]Constraint{{A: 0, B: 1}})
	if err := g.Fit(train, r); err != nil {
		t.Fatal(err)
	}
	if acc := metrics.Accuracy(test.Y, ml.Predict(g, test.X)); acc < 0.8 {
		t.Fatalf("constrained accuracy %.3f", acc)
	}
}

func TestGaussianProbabilitiesValid(t *testing.T) {
	r := rng.New(4)
	train := correlatedBlobs(200, 0.4, r)
	g := NewGaussian()
	if err := g.Fit(train, r); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		p := g.PredictProba([]float64{r.Uniform(-5, 5), r.Uniform(-5, 5)})
		sum := 0.0
		for _, v := range p {
			if v < 0 || math.IsNaN(v) {
				t.Fatalf("bad proba %v", p)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("proba sums to %v", sum)
		}
	}
}

func TestGaussianRejectsBadConstraint(t *testing.T) {
	r := rng.New(5)
	train := correlatedBlobs(100, 0, r)
	g := NewConstrainedGaussian([]Constraint{{A: 0, B: 7}})
	if err := g.Fit(train, r); err == nil {
		t.Fatal("out-of-range constraint accepted")
	}
}

func TestGaussianEmptyDataset(t *testing.T) {
	schema := &data.Schema{
		Features: []data.Feature{{Name: "x", Min: 0, Max: 1}},
		Classes:  []string{"a", "b"},
	}
	if err := NewGaussian().Fit(data.New(schema), rng.New(1)); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestGaussianSingleClassSafe(t *testing.T) {
	schema := &data.Schema{
		Features: []data.Feature{{Name: "x", Min: 0, Max: 1}},
		Classes:  []string{"a", "b"},
	}
	d := data.New(schema)
	r := rng.New(6)
	for i := 0; i < 30; i++ {
		d.Append([]float64{r.Float64()}, 0)
	}
	g := NewGaussian()
	if err := g.Fit(d, r); err != nil {
		t.Fatal(err)
	}
	p := g.PredictProba([]float64{0.5})
	if metrics.Argmax(p) != 0 {
		t.Fatalf("single-class prediction %v", p)
	}
}

var _ ml.Classifier = (*Gaussian)(nil)
