package interpret

import (
	"testing"

	"github.com/netml/alefb/internal/ml"
	"github.com/netml/alefb/internal/rng"
)

// PredictProbaInto lifts the hand-built test models onto the
// allocation-free path, so benchmarks and alloc assertions exercise the
// same dispatch real models use.
func (l *linearModel) PredictProbaInto(x, out []float64) {
	p := l.a + l.b*x[0]
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	out[0], out[1] = 1-p, p
}

func (s *stepModel) PredictProbaInto(x, out []float64) {
	p := s.lo
	if x[0] > s.cut {
		p = s.hi
	}
	out[0], out[1] = 1-p, p
}

// TestALEAccumulateZeroAllocs proves the steady-state ALE loop — fill the
// perturbed-row matrix, two batch predicts, accumulate per-bin deltas —
// performs zero heap allocations once the gridScratch exists, for a model
// with an allocation-free batch path (a fitted forest).
func TestALEAccumulateZeroAllocs(t *testing.T) {
	r := rng.New(3)
	d := uniformDataset(400, r)
	f := ml.NewForest(ml.ForestConfig{NumTrees: 10, MaxDepth: 5})
	if err := f.Fit(d, rng.New(9)); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	edges, err := quantileGrid(d, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	s := newGridScratch(d.Len(), d.Schema.NumFeatures(), probeClasses(f, d.X[0]))
	sumDelta := make([]float64, len(edges))
	counts := make([]float64, len(edges))
	allocs := testing.AllocsPerRun(20, func() {
		for i := range sumDelta {
			sumDelta[i], counts[i] = 0, 0
		}
		aleAccumulate(f, d.X, 0, edges, 1, s, sumDelta, counts)
	})
	if allocs != 0 {
		t.Errorf("aleAccumulate allocates %.1f objects per run, want 0", allocs)
	}
}

// TestQuantileGridPooledAllocs pins the steady-state allocation count of
// quantileGrid: with the sorted-column scratch pooled, the only remaining
// allocation is the returned edges slice itself. A regression back to
// copying the column per call (d.Column allocates O(n)) trips this.
func TestQuantileGridPooledAllocs(t *testing.T) {
	r := rng.New(5)
	d := uniformDataset(4096, r)
	// Warm the pool so the measured runs reuse the scratch.
	if _, err := quantileGrid(d, 0, 16); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := quantileGrid(d, 0, 16); err != nil {
			t.Fatal(err)
		}
	})
	// One allocation: the edges slice. The 4096-element column scratch
	// must come from the pool.
	if allocs > 1 {
		t.Errorf("quantileGrid allocates %.1f objects per run, want <= 1", allocs)
	}
}

// TestBatchedALEMatchesRowAtATime locks in bit-identity of the batched
// grid evaluation against a direct row-at-a-time reimplementation of the
// pre-batch algorithm, exact float64 equality, across models and features.
func TestBatchedALEMatchesRowAtATime(t *testing.T) {
	r := rng.New(8)
	d := uniformDataset(300, r)
	f := ml.NewForest(ml.ForestConfig{NumTrees: 8, MaxDepth: 4})
	if err := f.Fit(d, rng.New(21)); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	for _, model := range []ml.Classifier{f, &linearModel{a: 0.2, b: 0.5}} {
		for feature := 0; feature < 2; feature++ {
			edges, err := quantileGrid(d, feature, 12)
			if err != nil {
				t.Fatal(err)
			}
			got := aleOnGrid(model, d, feature, edges, 1)

			// Reference: the original per-row evaluation order.
			K := len(edges) - 1
			sumDelta := make([]float64, K+1)
			counts := make([]float64, K+1)
			buf := make([]float64, d.Schema.NumFeatures())
			for _, row := range d.X {
				k := binIndex(edges, row[feature])
				copy(buf, row)
				buf[feature] = edges[k]
				hi := model.PredictProba(buf)[1]
				buf[feature] = edges[k-1]
				lo := model.PredictProba(buf)[1]
				sumDelta[k] += hi - lo
				counts[k]++
			}
			values := make([]float64, K+1)
			acc := 0.0
			for k := 1; k <= K; k++ {
				if counts[k] > 0 {
					acc += sumDelta[k] / counts[k]
				}
				values[k] = acc
			}
			totalW, mean := 0.0, 0.0
			for k := 1; k <= K; k++ {
				w := counts[k]
				if w == 0 {
					continue
				}
				mean += w * (values[k-1] + values[k]) / 2
				totalW += w
			}
			if totalW > 0 {
				mean /= totalW
				for k := range values {
					values[k] -= mean
				}
			}
			for k := range values {
				if got.Values[k] != values[k] {
					t.Fatalf("%s feature %d bin %d: batched %v != row-at-a-time %v",
						model.Name(), feature, k, got.Values[k], values[k])
				}
			}
		}
	}
}

// TestBatchedPDPMatchesRowAtATime does the same for partial dependence.
func TestBatchedPDPMatchesRowAtATime(t *testing.T) {
	r := rng.New(9)
	d := uniformDataset(200, r)
	f := ml.NewForest(ml.ForestConfig{NumTrees: 6, MaxDepth: 4})
	if err := f.Fit(d, rng.New(22)); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	edges, err := quantileGrid(d, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	got := pdpOnGrid(f, d, 0, edges, 1)
	buf := make([]float64, d.Schema.NumFeatures())
	for gi, z := range edges {
		sum := 0.0
		for _, row := range d.X {
			copy(buf, row)
			buf[0] = z
			sum += f.PredictProba(buf)[1]
		}
		want := sum / float64(d.Len())
		if got.Values[gi] != want {
			t.Fatalf("grid %d: batched %v != row-at-a-time %v", gi, got.Values[gi], want)
		}
	}
}
