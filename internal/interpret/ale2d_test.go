package interpret

import (
	"math"
	"testing"

	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/ml"
	"github.com/netml/alefb/internal/rng"
)

// additiveModel has NO interaction: P(1) = clamp(0.2 + 0.3*x0 + 0.3*x1).
type additiveModel struct{}

func (a *additiveModel) Name() string                           { return "additive" }
func (a *additiveModel) Fit(d *data.Dataset, r *rng.Rand) error { return nil }
func (a *additiveModel) PredictProba(x []float64) []float64 {
	p := 0.2 + 0.3*x[0] + 0.3*x[1]
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return []float64{1 - p, p}
}

// xorModel has a PURE interaction: P(1) high iff exactly one of x0, x1 is
// above 0.5.
type xorModel struct{}

func (x *xorModel) Name() string                           { return "xor" }
func (x *xorModel) Fit(d *data.Dataset, r *rng.Rand) error { return nil }
func (x *xorModel) PredictProba(v []float64) []float64 {
	p := 0.2
	if (v[0] > 0.5) != (v[1] > 0.5) {
		p = 0.8
	}
	return []float64{1 - p, p}
}

func TestALE2DAdditiveModelIsFlat(t *testing.T) {
	r := rng.New(1)
	d := uniformDataset(3000, r)
	s, err := ALE2D(&additiveModel{}, d, 0, 1, Options{Bins: 10, Class: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.MaxAbs(); got > 0.02 {
		t.Fatalf("additive model interaction %v, want ~0", got)
	}
}

func TestALE2DXorModelIsStrong(t *testing.T) {
	r := rng.New(2)
	d := uniformDataset(3000, r)
	s, err := ALE2D(&xorModel{}, d, 0, 1, Options{Bins: 10, Class: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.MaxAbs(); got < 0.1 {
		t.Fatalf("xor model interaction %v, want substantial", got)
	}
}

func TestALE2DSameFeatureRejected(t *testing.T) {
	r := rng.New(3)
	d := uniformDataset(100, r)
	if _, err := ALE2D(&additiveModel{}, d, 0, 0, Options{}); err == nil {
		t.Fatal("same-feature pair accepted")
	}
}

func TestALE2DEmptyDataset(t *testing.T) {
	schema := &data.Schema{
		Features: []data.Feature{{Name: "a", Min: 0, Max: 1}, {Name: "b", Min: 0, Max: 1}},
		Classes:  []string{"x", "y"},
	}
	if _, err := ALE2D(&additiveModel{}, data.New(schema), 0, 1, Options{}); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestALE2DGridShape(t *testing.T) {
	r := rng.New(4)
	d := uniformDataset(500, r)
	s, err := ALE2D(&xorModel{}, d, 0, 1, Options{Bins: 8, Class: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Values) != len(s.GridX) {
		t.Fatalf("rows %d != gridX %d", len(s.Values), len(s.GridX))
	}
	for _, row := range s.Values {
		if len(row) != len(s.GridY) {
			t.Fatalf("cols %d != gridY %d", len(row), len(s.GridY))
		}
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("non-finite surface value %v", v)
			}
		}
	}
}

func TestInteractionStrengthSeparates(t *testing.T) {
	r := rng.New(5)
	d := uniformDataset(2000, r)
	meanAdd, _, err := InteractionStrength([]ml.Classifier{&additiveModel{}, &additiveModel{}}, d, 0, 1, Options{Bins: 8, Class: 1})
	if err != nil {
		t.Fatal(err)
	}
	meanXor, stdXor, err := InteractionStrength([]ml.Classifier{&xorModel{}, &xorModel{}}, d, 0, 1, Options{Bins: 8, Class: 1})
	if err != nil {
		t.Fatal(err)
	}
	if meanXor < 5*meanAdd {
		t.Fatalf("interaction strengths not separated: xor=%v additive=%v", meanXor, meanAdd)
	}
	if stdXor > 1e-9 {
		t.Fatalf("identical models disagree: std=%v", stdXor)
	}
	// A mixed committee (one of each) must disagree about the interaction.
	_, stdMixed, err := InteractionStrength([]ml.Classifier{&xorModel{}, &additiveModel{}}, d, 0, 1, Options{Bins: 8, Class: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stdMixed <= 0 {
		t.Fatal("mixed committee shows zero interaction disagreement")
	}
}

func TestInteractionStrengthEmptyCommittee(t *testing.T) {
	r := rng.New(6)
	d := uniformDataset(100, r)
	if _, _, err := InteractionStrength(nil, d, 0, 1, Options{}); err == nil {
		t.Fatal("empty committee accepted")
	}
}
