package interpret

import (
	"errors"
	"fmt"

	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/ml"
	"github.com/netml/alefb/internal/stats"
)

// Surface is a second-order (interaction) ALE: Values[i][j] is the pure
// interaction effect of (feature1=GridX[i], feature2=GridY[j]) on the
// predicted probability, with both main effects removed. A surface that is
// ~0 everywhere means the two features do not interact in the model —
// the paper's "identifying confounding variables" future-work direction
// builds on exactly this quantity.
type Surface struct {
	Feature1, Feature2 int
	GridX, GridY       []float64
	Values             [][]float64
}

// MaxAbs returns the largest absolute interaction effect on the surface.
func (s *Surface) MaxAbs() float64 {
	best := 0.0
	for _, row := range s.Values {
		for _, v := range row {
			if v < 0 {
				v = -v
			}
			if v > best {
				best = v
			}
		}
	}
	return best
}

// ALE2D computes the second-order accumulated local effects of the feature
// pair (f1, f2) following Apley & Zhu: per 2-D bin, the average
// second-order finite difference of the prediction; accumulated over both
// axes; centred by subtracting the accumulated first-order effects and the
// global mean.
func ALE2D(model ml.Classifier, d *data.Dataset, f1, f2 int, opt Options) (Surface, error) {
	opt = opt.withDefaults()
	if d.Len() == 0 {
		return Surface{}, errors.New("interpret: empty background dataset")
	}
	if f1 == f2 {
		return Surface{}, fmt.Errorf("interpret: ALE2D needs two distinct features, got %d twice", f1)
	}
	// Coarser default for the 2-D grid: cost scales with bins^2.
	bins := opt.Bins
	if bins > 12 {
		bins = 12
	}
	gx, err := quantileGrid(d, f1, bins)
	if err != nil {
		return Surface{}, err
	}
	gy, err := quantileGrid(d, f2, bins)
	if err != nil {
		return Surface{}, err
	}
	K, L := len(gx)-1, len(gy)-1

	sumDelta := make([][]float64, K+1)
	counts := make([][]float64, K+1)
	for i := range sumDelta {
		sumDelta[i] = make([]float64, L+1)
		counts[i] = make([]float64, L+1)
	}
	buf := make([]float64, d.Schema.NumFeatures())
	predict := func(row []float64, x, y float64) float64 {
		copy(buf, row)
		buf[f1], buf[f2] = x, y
		return model.PredictProba(buf)[opt.Class]
	}
	for _, row := range d.X {
		k := binIndex(gx, row[f1])
		l := binIndex(gy, row[f2])
		// Second-order finite difference over the bin's four corners.
		dd := predict(row, gx[k], gy[l]) - predict(row, gx[k-1], gy[l]) -
			predict(row, gx[k], gy[l-1]) + predict(row, gx[k-1], gy[l-1])
		sumDelta[k][l] += dd
		counts[k][l]++
	}

	// Accumulate the mean local interaction over both axes.
	acc := make([][]float64, K+1)
	for i := range acc {
		acc[i] = make([]float64, L+1)
	}
	for k := 1; k <= K; k++ {
		for l := 1; l <= L; l++ {
			mean := 0.0
			if counts[k][l] > 0 {
				mean = sumDelta[k][l] / counts[k][l]
			}
			acc[k][l] = mean + acc[k-1][l] + acc[k][l-1] - acc[k-1][l-1]
		}
	}

	// Remove the accumulated first-order (main) effects: subtract the
	// data-weighted average over each axis.
	rowCounts := make([]float64, K+1) // per k-bin mass
	colCounts := make([]float64, L+1)
	total := 0.0
	for k := 1; k <= K; k++ {
		for l := 1; l <= L; l++ {
			rowCounts[k] += counts[k][l]
			colCounts[l] += counts[k][l]
			total += counts[k][l]
		}
	}
	// Main effect of f1 at k: weighted mean over l of the bin-averaged acc
	// differences; the standard estimator averages neighbouring cells.
	mainX := make([]float64, K+1)
	for k := 1; k <= K; k++ {
		num, den := 0.0, 0.0
		for l := 1; l <= L; l++ {
			w := counts[k][l]
			if w == 0 {
				continue
			}
			num += w * (acc[k][l] + acc[k][l-1] - acc[k-1][l] - acc[k-1][l-1]) / 2
			den += w
		}
		prev := mainX[k-1]
		if den > 0 {
			mainX[k] = prev + num/den
		} else {
			mainX[k] = prev
		}
	}
	mainY := make([]float64, L+1)
	for l := 1; l <= L; l++ {
		num, den := 0.0, 0.0
		for k := 1; k <= K; k++ {
			w := counts[k][l]
			if w == 0 {
				continue
			}
			num += w * (acc[k][l] + acc[k-1][l] - acc[k][l-1] - acc[k-1][l-1]) / 2
			den += w
		}
		prev := mainY[l-1]
		if den > 0 {
			mainY[l] = prev + num/den
		} else {
			mainY[l] = prev
		}
	}
	values := make([][]float64, K+1)
	for k := range values {
		values[k] = make([]float64, L+1)
		for l := range values[k] {
			values[k][l] = acc[k][l] - mainX[k] - mainY[l]
		}
	}
	// Centre to zero data-weighted mean.
	if total > 0 {
		mean := 0.0
		for k := 1; k <= K; k++ {
			for l := 1; l <= L; l++ {
				w := counts[k][l]
				if w == 0 {
					continue
				}
				mean += w * (values[k][l] + values[k-1][l] + values[k][l-1] + values[k-1][l-1]) / 4
			}
		}
		mean /= total
		for k := range values {
			for l := range values[k] {
				values[k][l] -= mean
			}
		}
	}
	return Surface{Feature1: f1, Feature2: f2, GridX: gx, GridY: gy, Values: values}, nil
}

// InteractionStrength summarizes the committee's view of a feature pair:
// the mean of each model's maximum absolute interaction effect, plus the
// cross-model standard deviation of that quantity. High mean = the models
// agree the features interact; high std = the committee disagrees about
// the interaction, a deeper form of the paper's disagreement signal.
func InteractionStrength(models []ml.Classifier, d *data.Dataset, f1, f2 int, opt Options) (mean, std float64, err error) {
	if len(models) == 0 {
		return 0, 0, errors.New("interpret: empty committee")
	}
	maxes := make([]float64, 0, len(models))
	for _, m := range models {
		s, err := ALE2D(m, d, f1, f2, opt)
		if err != nil {
			return 0, 0, err
		}
		maxes = append(maxes, s.MaxAbs())
	}
	return stats.Mean(maxes), stats.PopStdDev(maxes), nil
}
