package interpret

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/netml/alefb/internal/ml"
	"github.com/netml/alefb/internal/rng"
)

// TestCommitteeWorkersEquivalence checks the determinism contract for
// the parallel committee: per-model curves are computed concurrently but
// committed at the model's index, so Workers=1 and Workers=8 must agree
// bit for bit on Grid, PerModel, Mean and Std, for both ALE and PDP.
func TestCommitteeWorkersEquivalence(t *testing.T) {
	models := []ml.Classifier{
		&stepModel{cut: 0.3, lo: 0.1, hi: 0.9},
		&stepModel{cut: 0.5, lo: 0.2, hi: 0.8},
		&stepModel{cut: 0.7, lo: 0.05, hi: 0.95},
		&linearModel{a: 0.1, b: 0.7},
		&linearModel{a: 0.4, b: 0.2},
	}
	for _, method := range []Method{MethodALE, MethodPDP} {
		for _, seed := range []uint64{1, 44, 901} {
			t.Run(fmt.Sprintf("method%d/seed%d", method, seed), func(t *testing.T) {
				d := uniformDataset(500, rng.New(seed))
				serial, err := Committee(models, d, 0, method, Options{Bins: 16, Class: 1, Workers: 1})
				if err != nil {
					t.Fatal(err)
				}
				par, err := Committee(models, d, 0, method, Options{Bins: 16, Class: 1, Workers: 8})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(serial.Grid, par.Grid) {
					t.Errorf("Grid differs: %v vs %v", serial.Grid, par.Grid)
				}
				if !reflect.DeepEqual(serial.PerModel, par.PerModel) {
					t.Errorf("PerModel differs")
				}
				if !reflect.DeepEqual(serial.Mean, par.Mean) {
					t.Errorf("Mean differs: %v vs %v", serial.Mean, par.Mean)
				}
				if !reflect.DeepEqual(serial.Std, par.Std) {
					t.Errorf("Std differs: %v vs %v", serial.Std, par.Std)
				}
				if len(par.PerModel) != len(models) {
					t.Errorf("PerModel rows = %d, want %d", len(par.PerModel), len(models))
				}
			})
		}
	}
}
