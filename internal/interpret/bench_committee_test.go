package interpret

import (
	"testing"

	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/ml"
	"github.com/netml/alefb/internal/rng"
)

// treeCommittee trains a small committee of tree-family models — the model
// mix real AutoML ensembles are dominated by — on d.
func treeCommittee(b *testing.B, d *data.Dataset) []ml.Classifier {
	b.Helper()
	models := []ml.Classifier{
		ml.NewRandomForest(15, 8),
		ml.NewExtraTrees(15, 8),
		ml.NewGBDT(ml.GBDTConfig{NumRounds: 15}),
		ml.NewTree(ml.TreeConfig{MaxDepth: 8}),
		ml.NewAdaBoost(ml.AdaBoostConfig{Rounds: 15, MaxDepth: 2}),
	}
	for i, m := range models {
		if err := m.Fit(d, rng.New(uint64(40+i))); err != nil {
			b.Fatal(err)
		}
	}
	return models
}

// BenchmarkALECommittee measures a full committee ALE sweep of one feature
// — the inner loop of the paper's feedback algorithm. Workers is pinned to
// 1 so the benchmark tracks per-model cost, not pool scaling.
func BenchmarkALECommittee(b *testing.B) {
	r := rng.New(51)
	d := uniformDataset(1500, r)
	models := treeCommittee(b, d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Committee(models, d, 0, MethodALE, Options{Bins: 32, Class: 1, Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPDPCommittee is the PDP twin of BenchmarkALECommittee (PDP
// evaluates every row at every edge, so it is the heavier sweep).
func BenchmarkPDPCommittee(b *testing.B) {
	r := rng.New(52)
	d := uniformDataset(500, r)
	models := treeCommittee(b, d)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Committee(models, d, 0, MethodPDP, Options{Bins: 32, Class: 1, Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
