package interpret

import (
	"errors"
	"math"
	"testing"

	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/ml"
	"github.com/netml/alefb/internal/rng"
)

// linearModel is a hand-built classifier with P(class 1) = clamp(a + b*x0).
// Its analytic ALE curve is known, which lets tests verify correctness.
type linearModel struct{ a, b float64 }

func (l *linearModel) Name() string { return "linear" }
func (l *linearModel) Fit(d *data.Dataset, r *rng.Rand) error {
	return nil
}
func (l *linearModel) PredictProba(x []float64) []float64 {
	p := l.a + l.b*x[0]
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return []float64{1 - p, p}
}

// stepModel predicts P(class 1) = high for x0 > cut else low.
type stepModel struct{ cut, lo, hi float64 }

func (s *stepModel) Name() string                           { return "step" }
func (s *stepModel) Fit(d *data.Dataset, r *rng.Rand) error { return nil }
func (s *stepModel) PredictProba(x []float64) []float64 {
	p := s.lo
	if x[0] > s.cut {
		p = s.hi
	}
	return []float64{1 - p, p}
}

func uniformDataset(n int, r *rng.Rand) *data.Dataset {
	schema := &data.Schema{
		Features: []data.Feature{
			{Name: "x0", Min: 0, Max: 1},
			{Name: "x1", Min: 0, Max: 1},
		},
		Classes: []string{"neg", "pos"},
	}
	d := data.New(schema)
	for i := 0; i < n; i++ {
		d.Append([]float64{r.Float64(), r.Float64()}, r.Intn(2))
	}
	return d
}

func TestALELinearModelSlope(t *testing.T) {
	r := rng.New(1)
	d := uniformDataset(2000, r)
	m := &linearModel{a: 0.2, b: 0.5} // stays in [0.2, 0.7] over x0 in [0,1]
	c, err := ALE(m, d, 0, Options{Bins: 20, Class: 1})
	if err != nil {
		t.Fatal(err)
	}
	// ALE of a linear effect is linear with the same slope, centred at 0.
	for i, z := range c.Grid {
		want := 0.5 * (z - 0.5) // centred around the x0 mean ~0.5
		if math.Abs(c.Values[i]-want) > 0.03 {
			t.Fatalf("ALE at %.3f = %.4f, want ~%.4f", z, c.Values[i], want)
		}
	}
}

func TestALEIgnoresOtherFeatures(t *testing.T) {
	// The model only uses x0, so ALE for x1 must be ~flat zero.
	r := rng.New(2)
	d := uniformDataset(1000, r)
	m := &linearModel{a: 0.2, b: 0.5}
	c, err := ALE(m, d, 1, Options{Bins: 16, Class: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range c.Values {
		if math.Abs(v) > 1e-9 {
			t.Fatalf("ALE of unused feature at grid %d = %v, want 0", i, v)
		}
	}
}

func TestALEStepModel(t *testing.T) {
	r := rng.New(3)
	d := uniformDataset(3000, r)
	m := &stepModel{cut: 0.5, lo: 0.2, hi: 0.8}
	c, err := ALE(m, d, 0, Options{Bins: 30, Class: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The curve should be ~-0.3 before the cut and ~+0.3 after.
	first, last := c.Values[0], c.Values[len(c.Values)-1]
	if math.Abs(first+0.3) > 0.05 || math.Abs(last-0.3) > 0.05 {
		t.Fatalf("step ALE endpoints = %.3f / %.3f, want -0.3 / +0.3", first, last)
	}
}

func TestALECentred(t *testing.T) {
	r := rng.New(4)
	d := uniformDataset(800, r)
	m := &stepModel{cut: 0.3, lo: 0.1, hi: 0.9}
	c, err := ALE(m, d, 0, Options{Bins: 24, Class: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Data-weighted mean of bin-averaged consecutive values must be ~0.
	// Approximate with the simple mean over interior grid values; for a
	// uniform feature it should be near zero.
	sum := 0.0
	for _, v := range c.Values {
		sum += v
	}
	if mean := sum / float64(len(c.Values)); math.Abs(mean) > 0.05 {
		t.Fatalf("ALE mean %v, want ~0", mean)
	}
}

func TestALEConstantFeature(t *testing.T) {
	schema := &data.Schema{
		Features: []data.Feature{{Name: "x", Min: 0, Max: 1}},
		Classes:  []string{"a", "b"},
	}
	d := data.New(schema)
	for i := 0; i < 10; i++ {
		d.Append([]float64{0.5}, i%2)
	}
	if _, err := ALE(&linearModel{}, d, 0, Options{}); !errors.Is(err, ErrConstantFeature) {
		t.Fatalf("want ErrConstantFeature, got %v", err)
	}
}

func TestALEEmptyDataset(t *testing.T) {
	schema := &data.Schema{
		Features: []data.Feature{{Name: "x", Min: 0, Max: 1}},
		Classes:  []string{"a", "b"},
	}
	if _, err := ALE(&linearModel{}, data.New(schema), 0, Options{}); err == nil {
		t.Fatal("empty dataset should error")
	}
}

func TestPDPLinearModel(t *testing.T) {
	r := rng.New(5)
	d := uniformDataset(1000, r)
	m := &linearModel{a: 0.2, b: 0.5}
	c, err := PDP(m, d, 0, Options{Bins: 10, Class: 1})
	if err != nil {
		t.Fatal(err)
	}
	// PDP of the linear model is a + b*z exactly (x1 is unused).
	for i, z := range c.Grid {
		want := 0.2 + 0.5*z
		if math.Abs(c.Values[i]-want) > 1e-9 {
			t.Fatalf("PDP at %.3f = %.4f, want %.4f", z, c.Values[i], want)
		}
	}
}

func TestCommitteeAgreementGivesZeroStd(t *testing.T) {
	r := rng.New(6)
	d := uniformDataset(500, r)
	models := []ml.Classifier{
		&linearModel{a: 0.2, b: 0.5},
		&linearModel{a: 0.2, b: 0.5},
		&linearModel{a: 0.2, b: 0.5},
	}
	cc, err := Committee(models, d, 0, MethodALE, Options{Bins: 16, Class: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range cc.Std {
		if s > 1e-12 {
			t.Fatalf("identical models disagree at grid %d: std=%v", i, s)
		}
	}
	if cc.MaxStd() > 1e-12 {
		t.Fatalf("MaxStd = %v", cc.MaxStd())
	}
}

func TestCommitteeDisagreementLocalized(t *testing.T) {
	// Two step models with different cut points disagree only between the
	// cuts; the std must peak there and be ~0 far away.
	r := rng.New(7)
	d := uniformDataset(4000, r)
	models := []ml.Classifier{
		&stepModel{cut: 0.45, lo: 0.2, hi: 0.8},
		&stepModel{cut: 0.55, lo: 0.2, hi: 0.8},
	}
	cc, err := Committee(models, d, 0, MethodALE, Options{Bins: 40, Class: 1})
	if err != nil {
		t.Fatal(err)
	}
	var inside, outside float64
	for i, z := range cc.Grid {
		if z > 0.46 && z < 0.54 {
			if cc.Std[i] > inside {
				inside = cc.Std[i]
			}
		}
		if z < 0.2 || z > 0.8 {
			if cc.Std[i] > outside {
				outside = cc.Std[i]
			}
		}
	}
	if inside < 3*outside || inside == 0 {
		t.Fatalf("disagreement not localized: inside=%v outside=%v", inside, outside)
	}
}

func TestCommitteeErrors(t *testing.T) {
	r := rng.New(8)
	d := uniformDataset(100, r)
	if _, err := Committee(nil, d, 0, MethodALE, Options{}); err == nil {
		t.Fatal("empty committee should error")
	}
}

func TestCommitteePDPMethod(t *testing.T) {
	r := rng.New(9)
	d := uniformDataset(300, r)
	models := []ml.Classifier{
		&linearModel{a: 0.2, b: 0.5},
		&linearModel{a: 0.3, b: 0.4},
	}
	cc, err := Committee(models, d, 0, MethodPDP, Options{Bins: 8, Class: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(cc.PerModel) != 2 || len(cc.Mean) != len(cc.Grid) {
		t.Fatal("PDP committee shape wrong")
	}
	// Models differ in intercept and slope: std should be nonzero somewhere.
	if cc.MaxStd() == 0 {
		t.Fatal("different models produced zero PDP std")
	}
}

func TestBinIndexEdges(t *testing.T) {
	edges := []float64{0, 1, 2, 3}
	cases := []struct {
		v    float64
		want int
	}{
		{-5, 1}, {0, 1}, {0.5, 1}, {1, 1}, {1.5, 2}, {3, 3}, {99, 3},
	}
	for _, c := range cases {
		if got := binIndex(edges, c.v); got != c.want {
			t.Fatalf("binIndex(%v) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestQuantileGridDedup(t *testing.T) {
	schema := &data.Schema{
		Features: []data.Feature{{Name: "x", Min: 0, Max: 10}},
		Classes:  []string{"a", "b"},
	}
	d := data.New(schema)
	// Heavy ties: most mass at 1, a little spread elsewhere.
	for i := 0; i < 90; i++ {
		d.Append([]float64{1}, 0)
	}
	for i := 0; i < 10; i++ {
		d.Append([]float64{float64(i)}, 1)
	}
	edges, err := quantileGrid(d, 0, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			t.Fatalf("edges not strictly increasing: %v", edges)
		}
	}
}

func TestMethodString(t *testing.T) {
	if MethodALE.String() != "ALE" || MethodPDP.String() != "PDP" {
		t.Fatal("Method.String wrong")
	}
}

func TestALEOnTrainedModel(t *testing.T) {
	// End-to-end: a forest trained on data where class depends on x0 only
	// should yield a monotone-ish ALE for x0 and near-flat for x1.
	r := rng.New(10)
	schema := &data.Schema{
		Features: []data.Feature{
			{Name: "x0", Min: 0, Max: 1},
			{Name: "x1", Min: 0, Max: 1},
		},
		Classes: []string{"neg", "pos"},
	}
	d := data.New(schema)
	for i := 0; i < 1200; i++ {
		x0, x1 := r.Float64(), r.Float64()
		y := 0
		if x0 > 0.5 {
			y = 1
		}
		d.Append([]float64{x0, x1}, y)
	}
	f := ml.NewRandomForest(20, 8)
	if err := f.Fit(d, r); err != nil {
		t.Fatal(err)
	}
	c0, err := ALE(f, d, 0, Options{Bins: 20, Class: 1})
	if err != nil {
		t.Fatal(err)
	}
	c1, err := ALE(f, d, 1, Options{Bins: 20, Class: 1})
	if err != nil {
		t.Fatal(err)
	}
	span0 := c0.Values[len(c0.Values)-1] - c0.Values[0]
	span1 := math.Abs(c1.Values[len(c1.Values)-1] - c1.Values[0])
	if span0 < 0.5 {
		t.Fatalf("informative feature ALE span %v, want > 0.5", span0)
	}
	if span1 > span0/4 {
		t.Fatalf("noise feature ALE span %v vs informative %v", span1, span0)
	}
}

func BenchmarkALE(b *testing.B) {
	r := rng.New(11)
	d := uniformDataset(500, r)
	m := &stepModel{cut: 0.5, lo: 0.2, hi: 0.8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ALE(m, d, 0, Options{Bins: 32, Class: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
