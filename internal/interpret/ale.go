// Package interpret implements model-agnostic interpretation methods:
// first-order Accumulated Local Effects (ALE, Apley & Zhu) — the method the
// paper's feedback solution is built on — and Partial Dependence (PDP) as a
// comparison point for ablations.
//
// The package's central object is the committee computation: every model
// of an AutoML ensemble is evaluated on a *shared* per-feature grid so the
// cross-model standard deviation of the interpretation is well defined at
// each grid point. That standard deviation is the paper's measure of model
// disagreement (§3 step 4).
package interpret

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/ml"
	"github.com/netml/alefb/internal/parallel"
	"github.com/netml/alefb/internal/rng"
	"github.com/netml/alefb/internal/stats"
)

// Options configures an interpretation computation.
type Options struct {
	// Bins is the number of quantile bins (default 32).
	Bins int
	// Class selects the predicted-probability output explained.
	Class int
	// Workers bounds the goroutines used to evaluate committee members.
	// 0 selects runtime.GOMAXPROCS(0); 1 forces serial execution. The
	// computation has no stochastic component, and each member's curve is
	// committed at its model index, so every value is bit-identical.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Bins <= 0 {
		o.Bins = 32
	}
	if o.Class < 0 {
		o.Class = 0
	}
	return o
}

// Normalized resolves defaulted fields (Bins, Class) to their effective
// values. Caches that key results by options must normalize first so that
// e.g. Bins 0 and Bins 32 share one entry.
func (o Options) Normalized() Options { return o.withDefaults() }

// Curve is one model's interpretation of one feature: Values[i] is the
// effect at Grid[i]. For ALE, values are centred so their weighted mean
// over the data distribution is zero.
type Curve struct {
	Feature int
	Grid    []float64
	Values  []float64
}

// ErrConstantFeature is returned when a feature takes a single value in
// the background data, making local effects undefined.
var ErrConstantFeature = errors.New("interpret: feature is constant in the background data")

// colScratch holds the pooled buffer quantileGrid gathers and sorts a
// feature column in. Datasets are immutable during interpretation, so the
// column must be copied before sorting; pooling the copy removes the
// per-call O(n) allocation (the sort itself is in-place). A dedicated
// struct (rather than pooling []float64 directly) keeps Put allocation
// free: the pool stores one stable pointer per scratch.
type colScratch struct{ buf []float64 }

var colPool sync.Pool

func getColScratch(n int) *colScratch {
	c, _ := colPool.Get().(*colScratch)
	if c == nil {
		c = &colScratch{}
	}
	if cap(c.buf) < n {
		c.buf = make([]float64, n)
	}
	c.buf = c.buf[:n]
	return c
}

// quantileGrid returns deduplicated quantile edges z_0..z_K for feature j.
// The column copy+sort runs in pooled scratch: gathering in row order and
// sorting yields exactly the same sorted values as sorting a fresh
// d.Column copy, so grids are bit-identical to the unpooled path.
func quantileGrid(d *data.Dataset, feature, bins int) ([]float64, error) {
	sc := getColScratch(d.Len())
	defer colPool.Put(sc)
	col := sc.buf
	for i, row := range d.X {
		col[i] = row[feature]
	}
	sort.Float64s(col)
	if col[0] == col[len(col)-1] {
		return nil, fmt.Errorf("%w: feature %d", ErrConstantFeature, feature)
	}
	edges := make([]float64, 0, bins+1)
	for i := 0; i <= bins; i++ {
		q := float64(i) / float64(bins)
		pos := q * float64(len(col)-1)
		lo := int(pos)
		hi := lo
		if lo+1 < len(col) {
			hi = lo + 1
		}
		frac := pos - float64(lo)
		v := col[lo]*(1-frac) + col[hi]*frac
		if len(edges) == 0 || v > edges[len(edges)-1] {
			edges = append(edges, v)
		}
	}
	if len(edges) < 2 {
		return nil, fmt.Errorf("%w: feature %d", ErrConstantFeature, feature)
	}
	return edges, nil
}

// binIndex returns the bin (1..K) of value v for edges z_0..z_K, where bin
// k covers (z_{k-1}, z_k] and values at or below z_0 land in bin 1.
func binIndex(edges []float64, v float64) int {
	k := sort.SearchFloat64s(edges, v) // first index with edges[i] >= v
	if k == 0 {
		return 1
	}
	if k >= len(edges) {
		return len(edges) - 1
	}
	return k
}

// gridScratch holds the preallocated buffers one model's grid evaluation
// reuses across bins: the perturbed-row matrix, the hi/lo probability
// matrices (each one contiguous backing array), and the per-row bin index.
// With these in place the evaluation loop performs zero heap allocations
// for models with allocation-free batch paths (see the AllocsPerRun test).
type gridScratch struct {
	rows   [][]float64
	hi, lo [][]float64
	bins   []int
	// Dimensions the buffers were built for, checked on pool reuse.
	n, nf, classes int
}

func newGridScratch(n, nf, classes int) *gridScratch {
	s := &gridScratch{
		rows: make([][]float64, n),
		hi:   make([][]float64, n),
		lo:   make([][]float64, n),
		bins: make([]int, n),
		n:    n, nf: nf, classes: classes,
	}
	rowBack := make([]float64, n*nf)
	hiBack := make([]float64, n*classes)
	loBack := make([]float64, n*classes)
	for i := 0; i < n; i++ {
		s.rows[i] = rowBack[i*nf : (i+1)*nf : (i+1)*nf]
		s.hi[i] = hiBack[i*classes : (i+1)*classes : (i+1)*classes]
		s.lo[i] = loBack[i*classes : (i+1)*classes : (i+1)*classes]
	}
	return s
}

// gridPool recycles gridScratch buffers across grid evaluations. A full
// scratch for n rows is ~3 slice-header arrays plus 3 backing arrays —
// tens of kilobytes that used to be reallocated for every model of every
// committee sweep. Reuse is safe because every evaluation overwrites the
// whole scratch (rows are copied in, hi/lo fully written by the batch
// predict, bins reassigned per row) before reading it.
var gridPool sync.Pool

// getGridScratch returns a pooled scratch when one with exactly the
// requested dimensions is available, else builds a fresh one. Committee
// sweeps and repeated feedback rounds evaluate the same dataset with the
// same class count, so exact-match reuse covers the steady state without
// the aliasing subtleties of re-slicing a larger buffer.
func getGridScratch(n, nf, classes int) *gridScratch {
	if v := gridPool.Get(); v != nil {
		s := v.(*gridScratch)
		if s.n == n && s.nf == nf && s.classes == classes {
			return s
		}
	}
	return newGridScratch(n, nf, classes)
}

func putGridScratch(s *gridScratch) {
	gridPool.Put(s)
}

// probe learns the model's class count from one (allocating) prediction so
// the scratch probability matrices can be sized up front.
func probeClasses(model ml.Classifier, x []float64) int {
	return len(model.PredictProba(x))
}

// aleOnGrid computes the first-order ALE curve for one model on a fixed
// grid of bin edges.
func aleOnGrid(model ml.Classifier, d *data.Dataset, feature int, edges []float64, class int) Curve {
	K := len(edges) - 1
	sumDelta := make([]float64, K+1) // index k: effects of bin k (1-based)
	counts := make([]float64, K+1)
	s := getGridScratch(d.Len(), d.Schema.NumFeatures(), probeClasses(model, d.X[0]))
	defer putGridScratch(s)
	aleAccumulate(model, d.X, feature, edges, class, s, sumDelta, counts)

	values := make([]float64, K+1)
	acc := 0.0
	for k := 1; k <= K; k++ {
		if counts[k] > 0 {
			acc += sumDelta[k] / counts[k]
		}
		values[k] = acc
	}
	// Centre: subtract the data-weighted mean of the accumulated curve.
	// Each data point in bin k sits between values[k-1] and values[k]; the
	// standard estimator uses the bin-average of the two edge values.
	totalW, mean := 0.0, 0.0
	for k := 1; k <= K; k++ {
		w := counts[k]
		if w == 0 {
			continue
		}
		mean += w * (values[k-1] + values[k]) / 2
		totalW += w
	}
	if totalW > 0 {
		mean /= totalW
		for k := range values {
			values[k] -= mean
		}
	}
	return Curve{Feature: feature, Grid: edges, Values: values}
}

// aleAccumulate is the steady-state ALE loop: it fills the perturbed-row
// matrix with every row snapped to its bin's upper edge, batch-predicts,
// flips the feature column to the lower edges, batch-predicts again, and
// accumulates the per-bin probability deltas. Accumulation runs in original
// row order — the same float addition order as row-at-a-time evaluation —
// so results are bit-identical to the pre-batch implementation.
func aleAccumulate(model ml.Classifier, X [][]float64, feature int, edges []float64, class int, s *gridScratch, sumDelta, counts []float64) {
	for i, row := range X {
		k := binIndex(edges, row[feature])
		s.bins[i] = k
		copy(s.rows[i], row)
		s.rows[i][feature] = edges[k]
	}
	ml.PredictProbaBatchInto(model, s.rows, s.hi)
	for i := range X {
		s.rows[i][feature] = edges[s.bins[i]-1]
	}
	ml.PredictProbaBatchInto(model, s.rows, s.lo)
	for i := range X {
		k := s.bins[i]
		sumDelta[k] += s.hi[i][class] - s.lo[i][class]
		counts[k]++
	}
}

// pdpOnGrid computes the partial-dependence curve for one model on a fixed
// grid of bin edges. Rows are copied into the scratch matrix once; each
// grid point only rewrites the feature column before a batch predict.
func pdpOnGrid(model ml.Classifier, d *data.Dataset, feature int, edges []float64, class int) Curve {
	values := make([]float64, len(edges))
	s := getGridScratch(d.Len(), d.Schema.NumFeatures(), probeClasses(model, d.X[0]))
	defer putGridScratch(s)
	for i, row := range d.X {
		copy(s.rows[i], row)
	}
	for gi, z := range edges {
		for i := range s.rows {
			s.rows[i][feature] = z
		}
		ml.PredictProbaBatchInto(model, s.rows, s.hi)
		sum := 0.0
		for i := range s.rows {
			sum += s.hi[i][class]
		}
		values[gi] = sum / float64(d.Len())
	}
	return Curve{Feature: feature, Grid: edges, Values: values}
}

// ALE computes the first-order accumulated local effects of feature on the
// model's predicted probability of opt.Class, using quantile bins over d.
func ALE(model ml.Classifier, d *data.Dataset, feature int, opt Options) (Curve, error) {
	opt = opt.withDefaults()
	if d.Len() == 0 {
		return Curve{}, errors.New("interpret: empty background dataset")
	}
	edges, err := quantileGrid(d, feature, opt.Bins)
	if err != nil {
		return Curve{}, err
	}
	return aleOnGrid(model, d, feature, edges, opt.Class), nil
}

// PDP computes the partial-dependence curve of feature on the model's
// predicted probability of opt.Class on the same quantile grid ALE uses.
func PDP(model ml.Classifier, d *data.Dataset, feature int, opt Options) (Curve, error) {
	opt = opt.withDefaults()
	if d.Len() == 0 {
		return Curve{}, errors.New("interpret: empty background dataset")
	}
	edges, err := quantileGrid(d, feature, opt.Bins)
	if err != nil {
		return Curve{}, err
	}
	return pdpOnGrid(model, d, feature, edges, opt.Class), nil
}

// Method selects the interpretation algorithm for committee computations.
type Method int

const (
	// MethodALE uses accumulated local effects (the paper's choice).
	MethodALE Method = iota
	// MethodPDP uses partial dependence (ablation comparison).
	MethodPDP
)

// String names the method.
func (m Method) String() string {
	if m == MethodPDP {
		return "PDP"
	}
	return "ALE"
}

// CommitteeCurve aggregates the interpretation of one feature across all
// models of a committee, on a shared grid.
type CommitteeCurve struct {
	Feature int
	Grid    []float64
	// PerModel[m][i] is model m's effect at Grid[i].
	PerModel [][]float64
	// Mean[i] and Std[i] are the cross-model mean and population standard
	// deviation at Grid[i]. Std is the paper's disagreement signal.
	Mean, Std []float64
}

// Committee computes the shared-grid interpretation of one feature for
// every model and aggregates mean and cross-model standard deviation.
func Committee(models []ml.Classifier, d *data.Dataset, feature int, method Method, opt Options) (CommitteeCurve, error) {
	return CommitteeCtx(context.Background(), models, d, feature, method, opt)
}

// CommitteeCtx is Committee under a hard deadline: when ctx expires or is
// cancelled the computation stops at the next member boundary and returns
// ctx.Err(). Results are unchanged by the context otherwise.
func CommitteeCtx(ctx context.Context, models []ml.Classifier, d *data.Dataset, feature int, method Method, opt Options) (CommitteeCurve, error) {
	opt = opt.withDefaults()
	if len(models) == 0 {
		return CommitteeCurve{}, errors.New("interpret: empty committee")
	}
	if d.Len() == 0 {
		return CommitteeCurve{}, errors.New("interpret: empty background dataset")
	}
	edges, err := quantileGrid(d, feature, opt.Bins)
	if err != nil {
		return CommitteeCurve{}, err
	}
	cc := CommitteeCurve{Feature: feature, Grid: edges}
	// Every member evaluates the shared grid independently on the worker
	// pool; curves are committed at the member's index, so PerModel (and
	// everything derived from it) is identical for any worker count.
	perModel, err := parallel.MapCtx(ctx, len(models), opt.Workers, func(i int) ([]float64, error) {
		var c Curve
		switch method {
		case MethodPDP:
			c = pdpOnGrid(models[i], d, feature, edges, opt.Class)
		default:
			c = aleOnGrid(models[i], d, feature, edges, opt.Class)
		}
		return c.Values, nil
	})
	if err != nil {
		return CommitteeCurve{}, err
	}
	cc.PerModel = perModel
	n := len(edges)
	cc.Mean = make([]float64, n)
	cc.Std = make([]float64, n)
	col := make([]float64, len(models))
	for i := 0; i < n; i++ {
		for m := range cc.PerModel {
			col[m] = cc.PerModel[m][i]
		}
		cc.Mean[i] = stats.Mean(col)
		cc.Std[i] = stats.PopStdDev(col)
	}
	return cc, nil
}

// MaxStd returns the largest cross-model standard deviation on the curve.
func (c *CommitteeCurve) MaxStd() float64 {
	best := 0.0
	for _, s := range c.Std {
		if s > best {
			best = s
		}
	}
	return best
}

// PermutationImportance measures each feature's importance to the model as
// the drop in accuracy when that feature's column is randomly permuted
// [Breiman 2001]. It complements ALE in explanations: ALE says *how* a
// feature influences predictions, importance says *how much* the model
// relies on it. Returns one value per feature (larger = more important;
// values can be slightly negative for irrelevant features).
func PermutationImportance(model ml.Classifier, d *data.Dataset, repeats int, r *rng.Rand) ([]float64, error) {
	if d.Len() == 0 {
		return nil, errors.New("interpret: empty dataset")
	}
	if repeats <= 0 {
		repeats = 3
	}
	baseline := accuracyOf(model, d.X, d.Y)
	nf := d.Schema.NumFeatures()
	out := make([]float64, nf)
	buf := make([][]float64, d.Len())
	for i, row := range d.X {
		buf[i] = append([]float64(nil), row...)
	}
	for j := 0; j < nf; j++ {
		drop := 0.0
		for rep := 0; rep < repeats; rep++ {
			perm := r.Perm(d.Len())
			for i := range buf {
				buf[i][j] = d.X[perm[i]][j]
			}
			drop += baseline - accuracyOf(model, buf, d.Y)
		}
		for i := range buf {
			buf[i][j] = d.X[i][j] // restore the column
		}
		out[j] = drop / float64(repeats)
	}
	return out, nil
}

func accuracyOf(model ml.Classifier, X [][]float64, y []int) float64 {
	correct := 0
	for i, yi := range ml.Predict(model, X) {
		if yi == y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(X))
}
