package interpret

import (
	"testing"

	"github.com/netml/alefb/internal/ml"
	"github.com/netml/alefb/internal/rng"
)

func TestPermutationImportanceRanksFeatures(t *testing.T) {
	// A forest trained on data where only x0 matters should assign much
	// higher importance to x0 than to x1.
	r := rng.New(1)
	d := uniformDataset(800, r)
	for i := range d.X {
		d.Y[i] = 0
		if d.X[i][0] > 0.5 {
			d.Y[i] = 1
		}
	}
	f := ml.NewRandomForest(15, 8)
	if err := f.Fit(d, r); err != nil {
		t.Fatal(err)
	}
	imp, err := PermutationImportance(f, d, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(imp) != 2 {
		t.Fatalf("importance length %d", len(imp))
	}
	if imp[0] < 0.2 {
		t.Fatalf("informative feature importance %v", imp[0])
	}
	if imp[1] > imp[0]/4 {
		t.Fatalf("noise feature importance %v vs %v", imp[1], imp[0])
	}
}

func TestPermutationImportanceEmptyData(t *testing.T) {
	r := rng.New(2)
	d := uniformDataset(0, r)
	if _, err := PermutationImportance(&linearModel{}, d, 3, r); err == nil {
		t.Fatal("empty dataset accepted")
	}
}

func TestPermutationImportanceRestoresData(t *testing.T) {
	r := rng.New(3)
	d := uniformDataset(100, r)
	before := make([]float64, d.Len())
	for i := range d.X {
		before[i] = d.X[i][0]
	}
	if _, err := PermutationImportance(&linearModel{a: 0.2, b: 0.5}, d, 2, r); err != nil {
		t.Fatal(err)
	}
	for i := range d.X {
		if d.X[i][0] != before[i] {
			t.Fatal("PermutationImportance mutated the dataset")
		}
	}
}

func TestPermutationImportanceDefaultRepeats(t *testing.T) {
	r := rng.New(4)
	d := uniformDataset(50, r)
	if _, err := PermutationImportance(&linearModel{a: 0.2, b: 0.5}, d, 0, r); err != nil {
		t.Fatal(err)
	}
}
