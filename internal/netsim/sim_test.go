package netsim

import (
	"math"
	"testing"

	"github.com/netml/alefb/internal/netsim/cc"
	"github.com/netml/alefb/internal/rng"
)

func TestSimulatorOrdering(t *testing.T) {
	s := NewSimulator()
	var order []int
	s.Schedule(0.3, func() { order = append(order, 3) })
	s.Schedule(0.1, func() { order = append(order, 1) })
	s.Schedule(0.2, func() { order = append(order, 2) })
	s.Run(1)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if s.Now() != 1 {
		t.Fatalf("Now = %v, want 1", s.Now())
	}
}

func TestSimulatorTieBreakFIFO(t *testing.T) {
	s := NewSimulator()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(0.5, func() { order = append(order, i) })
	}
	s.Run(1)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestSimulatorRunStopsAtDeadline(t *testing.T) {
	s := NewSimulator()
	fired := false
	s.Schedule(2, func() { fired = true })
	s.Run(1)
	if fired {
		t.Fatal("event beyond deadline fired")
	}
	s.Run(3)
	if !fired {
		t.Fatal("event not fired after extending deadline")
	}
}

func TestSimulatorNestedScheduling(t *testing.T) {
	s := NewSimulator()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 5 {
			s.Schedule(0.1, tick)
		}
	}
	s.Schedule(0, tick)
	s.Run(1)
	if count != 5 {
		t.Fatalf("count = %d", count)
	}
}

func TestSimulatorNegativeDelayClamped(t *testing.T) {
	s := NewSimulator()
	s.Schedule(0.5, func() {
		s.Schedule(-1, func() {
			if s.Now() < 0.5 {
				t.Fatal("time went backwards")
			}
		})
	})
	s.Run(1)
}

func TestLinkConfigValidate(t *testing.T) {
	bad := []LinkConfig{
		{RateMbps: 0, DelayMs: 10, QueuePackets: 10},
		{RateMbps: 10, DelayMs: -1, QueuePackets: 10},
		{RateMbps: 10, DelayMs: 10, QueuePackets: 0},
		{RateMbps: 10, DelayMs: 10, QueuePackets: 10, LossRate: 1},
		{RateMbps: 10, DelayMs: 10, QueuePackets: 10, LossRate: -0.1},
	}
	for _, cfg := range bad {
		if cfg.Validate() == nil {
			t.Fatalf("config %+v should be invalid", cfg)
		}
	}
	good := LinkConfig{RateMbps: 10, DelayMs: 10, QueuePackets: 10, LossRate: 0.01}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLinkSerializationRate(t *testing.T) {
	// Saturate a 12 Mbps link with 1500 B packets for 1 second: exactly
	// 1000 packets/s can be serialized.
	sim := NewSimulator()
	link, err := NewLink(sim, LinkConfig{RateMbps: 12, DelayMs: 1, QueuePackets: 100000}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	delivered := 0
	link.Deliver = func(p Packet, qd float64) { delivered++ }
	for i := 0; i < 2000; i++ {
		link.Send(Packet{Seq: int64(i), Size: 1500})
	}
	sim.Run(1.0)
	// 12e6 bits/s / 12000 bits = 1000 pkts/s; minus propagation straggler.
	if delivered < 990 || delivered > 1001 {
		t.Fatalf("delivered %d packets in 1 s on a 1000 pkt/s link", delivered)
	}
}

func TestLinkPropagationDelay(t *testing.T) {
	sim := NewSimulator()
	link, err := NewLink(sim, LinkConfig{RateMbps: 1000, DelayMs: 25, QueuePackets: 10}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	var arrival float64
	link.Deliver = func(p Packet, qd float64) { arrival = sim.Now() }
	link.Send(Packet{Size: 1500})
	sim.Run(1)
	tx := 1500.0 * 8 / 1e9
	want := 0.025 + tx
	if math.Abs(arrival-want) > 1e-9 {
		t.Fatalf("arrival = %v, want %v", arrival, want)
	}
}

func TestLinkDroptail(t *testing.T) {
	sim := NewSimulator()
	link, err := NewLink(sim, LinkConfig{RateMbps: 1, DelayMs: 1, QueuePackets: 5}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	drops := 0
	link.OnDrop = func(p Packet, random bool) {
		if random {
			t.Fatal("drop misreported as random loss")
		}
		drops++
	}
	// Burst of 20 packets into a queue of 5 (plus 1 in service).
	for i := 0; i < 20; i++ {
		link.Send(Packet{Seq: int64(i), Size: 1500})
	}
	// 1 transmitted immediately + 5 queued = 6 accepted; 14 dropped.
	if drops != 14 {
		t.Fatalf("drops = %d, want 14", drops)
	}
	if link.QueueLen() != 5 {
		t.Fatalf("queue length %d, want 5", link.QueueLen())
	}
}

func TestLinkRandomLossRate(t *testing.T) {
	sim := NewSimulator()
	link, err := NewLink(sim, LinkConfig{RateMbps: 1e6, DelayMs: 0, QueuePackets: 1 << 20, LossRate: 0.2}, rng.New(7))
	if err != nil {
		t.Fatal(err)
	}
	lost := 0
	link.OnDrop = func(p Packet, random bool) {
		if !random {
			t.Fatal("overflow drop on a huge queue")
		}
		lost++
	}
	const n = 20000
	for i := 0; i < n; i++ {
		link.Send(Packet{Seq: int64(i), Size: 100})
	}
	rate := float64(lost) / n
	if math.Abs(rate-0.2) > 0.02 {
		t.Fatalf("observed loss rate %v, want ~0.2", rate)
	}
}

func TestLinkQueueDelayReported(t *testing.T) {
	// Two packets back to back: the second should report one extra
	// serialization time of queueing delay.
	sim := NewSimulator()
	link, err := NewLink(sim, LinkConfig{RateMbps: 12, DelayMs: 5, QueuePackets: 10}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	var delays []float64
	link.Deliver = func(p Packet, qd float64) { delays = append(delays, qd) }
	link.Send(Packet{Seq: 0, Size: 1500})
	link.Send(Packet{Seq: 1, Size: 1500})
	sim.Run(1)
	tx := 1500.0 * 8 / 12e6
	if len(delays) != 2 {
		t.Fatalf("delivered %d", len(delays))
	}
	if math.Abs(delays[0]-tx) > 1e-9 {
		t.Fatalf("first packet delay %v, want tx %v", delays[0], tx)
	}
	if math.Abs(delays[1]-2*tx) > 1e-9 {
		t.Fatalf("second packet delay %v, want 2*tx %v", delays[1], 2*tx)
	}
}

func TestBDPPackets(t *testing.T) {
	cfg := LinkConfig{RateMbps: 12, DelayMs: 50, QueuePackets: 1}
	// BDP = 12e6 * 0.1 s = 1.2e6 bits = 100 packets of 1500 B.
	if got := cfg.BDPPackets(1500); got != 100 {
		t.Fatalf("BDP = %d, want 100", got)
	}
	tiny := LinkConfig{RateMbps: 0.1, DelayMs: 1, QueuePackets: 1}
	if got := tiny.BDPPackets(1500); got < 1 {
		t.Fatalf("BDP must be at least 1, got %d", got)
	}
}

func runProto(t *testing.T, factory cc.Factory, link LinkConfig, flows int, seed uint64) Result {
	t.Helper()
	res, err := Run(Config{
		Link:     link,
		Flows:    flows,
		Protocol: factory,
		Duration: 2.0,
		Seed:     seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestThroughputBoundedByCapacity(t *testing.T) {
	link := LinkConfig{RateMbps: 10, DelayMs: 20, QueuePackets: 60}
	for name, factory := range cc.Registry(1500) {
		res := runProto(t, factory, link, 2, 3)
		if res.TotalThroughputMbps > 10.5 {
			t.Errorf("%s: throughput %.2f Mbps exceeds 10 Mbps link", name, res.TotalThroughputMbps)
		}
		if res.TotalThroughputMbps <= 0 {
			t.Errorf("%s: zero throughput", name)
		}
	}
}

func TestLossBasedProtocolsFillBuffers(t *testing.T) {
	// Deep buffer: Cubic should achieve high utilization AND high delay;
	// Scream should keep delay near target while still moving data.
	link := LinkConfig{RateMbps: 20, DelayMs: 25, QueuePackets: 400}
	cubic := runProto(t, func() cc.Protocol { return cc.NewCubic() }, link, 1, 5)
	scream := runProto(t, func() cc.Protocol { return cc.NewScream() }, link, 1, 5)

	if cubic.TotalThroughputMbps < 12 {
		t.Fatalf("cubic only reached %.2f Mbps on an empty 20 Mbps link", cubic.TotalThroughputMbps)
	}
	// Propagation OWD is 25 ms; bufferbloat should push cubic well above
	// scream's delay.
	if scream.MeanOWDMs >= cubic.MeanOWDMs {
		t.Fatalf("scream OWD %.1f ms not below cubic %.1f ms in deep buffer", scream.MeanOWDMs, cubic.MeanOWDMs)
	}
	// Scream must keep queueing delay near its 60 ms target.
	if scream.MeanOWDMs > 25+100 {
		t.Fatalf("scream mean OWD %.1f ms far above target", scream.MeanOWDMs)
	}
}

func TestHighLossDegradesThroughput(t *testing.T) {
	clean := LinkConfig{RateMbps: 10, DelayMs: 20, QueuePackets: 100}
	lossy := clean
	lossy.LossRate = 0.05
	for _, name := range []string{"reno", "cubic"} {
		factory := cc.Registry(1500)[name]
		c := runProto(t, factory, clean, 1, 7)
		l := runProto(t, factory, lossy, 1, 7)
		if l.TotalThroughputMbps >= c.TotalThroughputMbps {
			t.Errorf("%s: lossy throughput %.2f >= clean %.2f", name, l.TotalThroughputMbps, c.TotalThroughputMbps)
		}
	}
}

func TestMultipleFlowsShareLink(t *testing.T) {
	link := LinkConfig{RateMbps: 10, DelayMs: 10, QueuePackets: 100}
	res := runProto(t, func() cc.Protocol { return cc.NewReno() }, link, 4, 9)
	if len(res.PerFlow) != 4 {
		t.Fatalf("per-flow stats %d", len(res.PerFlow))
	}
	active := 0
	for _, f := range res.PerFlow {
		if f.Delivered > 0 {
			active++
		}
	}
	if active < 4 {
		t.Fatalf("only %d/4 flows delivered packets", active)
	}
	if res.TotalThroughputMbps > 10.5 {
		t.Fatalf("aggregate %.2f Mbps over 10 Mbps link", res.TotalThroughputMbps)
	}
}

func TestRunDeterministic(t *testing.T) {
	link := LinkConfig{RateMbps: 15, DelayMs: 15, QueuePackets: 80, LossRate: 0.01}
	a := runProto(t, func() cc.Protocol { return cc.NewCubic() }, link, 2, 42)
	b := runProto(t, func() cc.Protocol { return cc.NewCubic() }, link, 2, 42)
	if a.TotalThroughputMbps != b.TotalThroughputMbps || a.MeanOWDMs != b.MeanOWDMs {
		t.Fatalf("same seed produced different results: %+v vs %+v", a, b)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(Config{Link: LinkConfig{RateMbps: -1, DelayMs: 1, QueuePackets: 1}, Protocol: func() cc.Protocol { return cc.NewReno() }}); err == nil {
		t.Fatal("negative rate accepted")
	}
	if _, err := Run(Config{Link: LinkConfig{RateMbps: 1, DelayMs: 1, QueuePackets: 1}}); err == nil {
		t.Fatal("nil protocol accepted")
	}
}

func TestVegasKeepsQueuesShort(t *testing.T) {
	link := LinkConfig{RateMbps: 20, DelayMs: 25, QueuePackets: 400}
	vegas := runProto(t, func() cc.Protocol { return cc.NewVegas() }, link, 1, 11)
	cubic := runProto(t, func() cc.Protocol { return cc.NewCubic() }, link, 1, 11)
	if vegas.MeanOWDMs >= cubic.MeanOWDMs {
		t.Fatalf("vegas OWD %.1f >= cubic %.1f in deep buffers", vegas.MeanOWDMs, cubic.MeanOWDMs)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if got := percentile(xs, 0.95); got != 5 {
		t.Fatalf("p95 = %v", got)
	}
	if got := percentile(xs, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Fatal("percentile sorted its input")
	}
}

func BenchmarkEmulation(b *testing.B) {
	link := LinkConfig{RateMbps: 20, DelayMs: 20, QueuePackets: 100, LossRate: 0.005}
	for i := 0; i < b.N; i++ {
		_, err := Run(Config{Link: link, Flows: 2, Protocol: func() cc.Protocol { return cc.NewCubic() }, Duration: 1.0, Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
	}
}
