package netsim

import "fmt"

// AQM selects the bottleneck queue discipline.
type AQM int

const (
	// AQMDropTail drops arrivals when the buffer is full (the default).
	AQMDropTail AQM = iota
	// AQMRED runs Random Early Detection on the EWMA queue length,
	// optionally marking (ECN) instead of dropping.
	AQMRED
)

// String names the discipline.
func (a AQM) String() string {
	if a == AQMRED {
		return "red"
	}
	return "droptail"
}

// REDConfig parameterizes Random Early Detection [Floyd & Jacobson 1993].
type REDConfig struct {
	// MinThresh and MaxThresh bound the early-action region, in packets
	// of EWMA average queue length.
	MinThresh, MaxThresh float64
	// MaxP is the mark/drop probability as the average reaches MaxThresh.
	MaxP float64
	// Weight is the EWMA weight for the average queue length
	// (default 0.002, the classic recommendation).
	Weight float64
	// ECN marks packets instead of dropping them in the early-action
	// region (above MaxThresh, packets are always dropped).
	ECN bool
}

// Validate reports configuration errors.
func (c REDConfig) Validate() error {
	if c.MinThresh < 0 || c.MaxThresh <= c.MinThresh {
		return fmt.Errorf("netsim: RED thresholds min=%v max=%v invalid", c.MinThresh, c.MaxThresh)
	}
	if c.MaxP <= 0 || c.MaxP > 1 {
		return fmt.Errorf("netsim: RED maxP %v outside (0,1]", c.MaxP)
	}
	if c.Weight < 0 || c.Weight > 1 {
		return fmt.Errorf("netsim: RED weight %v outside [0,1]", c.Weight)
	}
	return nil
}

func (c REDConfig) withDefaults() REDConfig {
	if c.Weight == 0 {
		c.Weight = 0.002
	}
	return c
}

// redState tracks the EWMA average queue length and the count since the
// last early action (the count term spaces marks out, per the paper).
type redState struct {
	cfg   REDConfig
	avg   float64
	count int
}

// redDecision is the outcome of RED admission control.
type redDecision int

const (
	redEnqueue redDecision = iota
	redMark
	redDrop
)

// onArrival updates the average for the instantaneous queue length q and
// decides what to do with the arriving packet.
func (s *redState) onArrival(q int, rand func() float64) redDecision {
	s.avg = (1-s.cfg.Weight)*s.avg + s.cfg.Weight*float64(q)
	switch {
	case s.avg < s.cfg.MinThresh:
		s.count = 0
		return redEnqueue
	case s.avg >= s.cfg.MaxThresh:
		s.count = 0
		return redDrop
	default:
		s.count++
		pb := s.cfg.MaxP * (s.avg - s.cfg.MinThresh) / (s.cfg.MaxThresh - s.cfg.MinThresh)
		// Spacing correction: probability grows with packets since the
		// last action.
		pa := pb / (1 - float64(s.count)*pb)
		if pa < 0 || pa > 1 {
			pa = 1
		}
		if rand() < pa {
			s.count = 0
			if s.cfg.ECN {
				return redMark
			}
			return redDrop
		}
		return redEnqueue
	}
}
