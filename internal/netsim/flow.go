package netsim

import (
	"fmt"
	"math"
	"sort"

	"github.com/netml/alefb/internal/netsim/cc"
	"github.com/netml/alefb/internal/rng"
)

// Flow is one sender/receiver pair running a congestion-control protocol
// over the shared bottleneck. Delivery is not reliable (lost packets are
// not retransmitted); the emulator measures transport dynamics, which is
// what the congestion-control comparison needs.
type Flow struct {
	id    int
	sim   *Simulator
	link  *Link
	proto cc.Protocol

	pktSize  int
	nextSeq  int64
	inflight int
	stopAt   float64
	pacing   bool

	// detectDelay approximates duplicate-ACK loss detection latency.
	srtt float64

	// Statistics, collected after warmup only.
	warmup     float64
	ackedBytes int64
	acked      int64
	losses     int64
	owdSum     float64 // one-way delay sum (queue + serialization + prop)
	owds       []float64
	rttSum     float64
}

// FlowStats summarizes one flow's performance.
type FlowStats struct {
	// ThroughputMbps is goodput measured after warmup.
	ThroughputMbps float64
	// MeanOWDMs is the mean one-way packet delay in milliseconds.
	MeanOWDMs float64
	// P95OWDMs is the 95th-percentile one-way delay in milliseconds.
	P95OWDMs float64
	// MeanRTTMs is the mean measured round-trip time in milliseconds.
	MeanRTTMs float64
	// Delivered is the number of packets acked after warmup.
	Delivered int64
	// Losses is the number of losses detected after warmup.
	Losses int64
}

// Config describes one emulation run: a bottleneck, a protocol and a flow
// count. All flows run the same protocol, matching the paper's question
// "should this application use SCReAM under these network conditions?".
type Config struct {
	Link LinkConfig
	// Flows is the number of concurrent flows (>= 1).
	Flows int
	// Protocol builds each flow's controller.
	Protocol cc.Factory
	// PacketSize in bytes (default 1500).
	PacketSize int
	// Duration is the emulated time in seconds (default 1.5).
	Duration float64
	// Warmup excludes the first seconds from statistics (default 20% of
	// Duration).
	Warmup float64
	// Seed drives random loss and flow start jitter.
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.PacketSize <= 0 {
		c.PacketSize = 1500
	}
	if c.Duration <= 0 {
		c.Duration = 1.5
	}
	if c.Warmup <= 0 {
		c.Warmup = 0.2 * c.Duration
	}
	if c.Flows <= 0 {
		c.Flows = 1
	}
	return c
}

// Result aggregates an emulation run.
type Result struct {
	PerFlow []FlowStats
	// TotalThroughputMbps sums flow goodputs.
	TotalThroughputMbps float64
	// MeanOWDMs is the packet-weighted mean one-way delay.
	MeanOWDMs float64
	// P95OWDMs is the 95th percentile across all measured packets.
	P95OWDMs float64
	// LossRate is detected losses / (losses + delivered) after warmup.
	LossRate float64
	// FairnessIndex is Jain's fairness index over per-flow goodputs
	// (1 = perfectly fair, 1/n = one flow hogs the link).
	FairnessIndex float64
}

// JainIndex computes Jain's fairness index of the allocations xs:
// (sum xs)^2 / (n * sum xs^2). It returns 0 for empty or all-zero input.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum, sumSq := 0.0, 0.0
	for _, x := range xs {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sumSq)
}

// Run executes one emulation and returns aggregate statistics.
func Run(cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Protocol == nil {
		return Result{}, fmt.Errorf("netsim: nil protocol factory")
	}
	if err := cfg.Link.Validate(); err != nil {
		return Result{}, err
	}
	sim := NewSimulator()
	r := rng.New(cfg.Seed)
	link, err := NewLink(sim, cfg.Link, r.Split())
	if err != nil {
		return Result{}, err
	}

	flows := make([]*Flow, cfg.Flows)
	for i := range flows {
		flows[i] = &Flow{
			id:      i,
			sim:     sim,
			link:    link,
			proto:   cfg.Protocol(),
			pktSize: cfg.PacketSize,
			stopAt:  cfg.Duration,
			warmup:  cfg.Warmup,
			srtt:    2 * cfg.Link.DelayMs / 1e3,
		}
	}
	link.Deliver = func(p Packet, queueDelay float64) {
		flows[p.FlowID].onDeliver(p, queueDelay)
	}
	link.OnDrop = func(p Packet, random bool) {
		flows[p.FlowID].onDrop(p)
	}
	// Stagger flow starts over the first 100 ms to avoid phase locking.
	for i, f := range flows {
		start := float64(i) * 0.1 / float64(cfg.Flows)
		start += r.Uniform(0, 0.01)
		flow := f
		sim.Schedule(start, flow.start)
	}
	sim.Run(cfg.Duration)

	res := Result{PerFlow: make([]FlowStats, len(flows))}
	var allOWDs []float64
	var owdSum float64
	var delivered, losses int64
	window := cfg.Duration - cfg.Warmup
	for i, f := range flows {
		st := FlowStats{
			Delivered: f.acked,
			Losses:    f.losses,
		}
		if window > 0 {
			st.ThroughputMbps = float64(f.ackedBytes) * 8 / window / 1e6
		}
		if f.acked > 0 {
			st.MeanOWDMs = f.owdSum / float64(f.acked) * 1e3
			st.MeanRTTMs = f.rttSum / float64(f.acked) * 1e3
			st.P95OWDMs = percentile(f.owds, 0.95) * 1e3
		}
		res.PerFlow[i] = st
		res.TotalThroughputMbps += st.ThroughputMbps
		allOWDs = append(allOWDs, f.owds...)
		owdSum += f.owdSum
		delivered += f.acked
		losses += f.losses
	}
	if delivered > 0 {
		res.MeanOWDMs = owdSum / float64(delivered) * 1e3
		res.P95OWDMs = percentile(allOWDs, 0.95) * 1e3
	}
	if delivered+losses > 0 {
		res.LossRate = float64(losses) / float64(delivered+losses)
	}
	goodputs := make([]float64, len(res.PerFlow))
	for i, st := range res.PerFlow {
		goodputs[i] = st.ThroughputMbps
	}
	res.FairnessIndex = JainIndex(goodputs)
	return res, nil
}

func percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := int(math.Ceil(q * float64(len(s)-1)))
	return s[idx]
}

// start begins sending.
func (f *Flow) start() {
	f.maybeSend()
	f.armPacer()
}

// armPacer schedules rate-based transmissions for pacing protocols.
func (f *Flow) armPacer() {
	rate := f.proto.PacingRate()
	if rate <= 0 {
		f.pacing = false
		return
	}
	f.pacing = true
	delay := float64(f.pktSize) / rate
	// Bound pathological rates so the event queue stays sane.
	if delay < 1e-5 {
		delay = 1e-5
	}
	f.sim.Schedule(delay, func() {
		if f.sim.Now() >= f.stopAt {
			return
		}
		if float64(f.inflight) < f.proto.Window() {
			f.send()
		}
		f.armPacer()
	})
}

// maybeSend transmits while the window allows (ack-clocked protocols).
func (f *Flow) maybeSend() {
	if f.pacing || f.sim.Now() >= f.stopAt {
		return
	}
	for float64(f.inflight) < math.Floor(f.proto.Window()) {
		f.send()
	}
}

// send releases one packet into the bottleneck.
func (f *Flow) send() {
	p := Packet{FlowID: f.id, Seq: f.nextSeq, Size: f.pktSize, SentAt: f.sim.Now()}
	f.nextSeq++
	f.inflight++
	f.link.Send(p)
}

// onDeliver handles arrival at the receiver: an ACK returns after the
// reverse propagation delay (the ACK path is uncongested).
func (f *Flow) onDeliver(p Packet, queueDelay float64) {
	owd := f.sim.Now() - p.SentAt
	f.sim.Schedule(f.link.Config().DelayMs/1e3, func() {
		f.inflight--
		now := f.sim.Now()
		rtt := now - p.SentAt
		f.srtt = 0.875*f.srtt + 0.125*rtt
		f.proto.OnAck(cc.Ack{Now: now, RTT: rtt, QueueDelay: queueDelay, Bytes: p.Size, ECN: p.ECN})
		if now >= f.warmup {
			f.acked++
			f.ackedBytes += int64(p.Size)
			f.owdSum += owd
			f.owds = append(f.owds, owd)
			f.rttSum += rtt
		}
		f.maybeSend()
	})
}

// onDrop models loss detection: the sender learns about the loss roughly
// one smoothed RTT after it happened (duplicate-ACK detection latency).
func (f *Flow) onDrop(p Packet) {
	f.sim.Schedule(f.srtt, func() {
		f.inflight--
		if f.sim.Now() >= f.warmup {
			f.losses++
		}
		f.proto.OnLoss(f.sim.Now())
		f.maybeSend()
	})
}
