// Package cc implements the congestion-control protocols the emulator
// compares, mirroring the protocol set a Pantheon experiment would run:
// NewReno (loss-based AIMD), Cubic (loss-based, cubic growth), Vegas
// (delay-based AIAD), a simplified BBR (model-based pacing), and a
// SCReAM-like controller (RFC 8298: self-clocked rate adaptation that
// keeps queueing delay near a small target — designed for latency-
// sensitive applications, the protagonist of the paper's running example).
//
// All protocols are expressed against one small interface so the emulator
// can swap them freely. Units: seconds for time, packets for windows,
// bytes/second for pacing rates.
package cc

import "math"

// Ack carries the measurements available to a sender when an ACK arrives.
type Ack struct {
	// Now is the sender-side arrival time of the ACK.
	Now float64
	// RTT is the measured round-trip time of the acked packet.
	RTT float64
	// QueueDelay is the bottleneck queueing (+serialization) delay the
	// packet observed. Real stacks estimate this as RTT - minRTT; the
	// emulator reports it exactly, and protocols below still derive their
	// own estimate from RTT to stay faithful.
	QueueDelay float64
	// Bytes is the number of payload bytes acknowledged.
	Bytes int
	// ECN reports that the packet was congestion-marked by an AQM and
	// the receiver echoed the mark (RFC 3168 CE -> ECE).
	ECN bool
}

// Protocol is a congestion controller driven by ACK and loss events.
type Protocol interface {
	// Name identifies the protocol ("scream", "cubic", ...).
	Name() string
	// OnAck processes one acknowledgement.
	OnAck(a Ack)
	// OnLoss signals one detected packet loss at time now.
	OnLoss(now float64)
	// Window returns the congestion window in packets (>= 1).
	Window() float64
	// PacingRate returns the pacing rate in bytes/second for rate-based
	// protocols, or 0 for purely ack-clocked (window-limited) senders.
	PacingRate() float64
}

// Factory creates a fresh protocol instance for one flow.
type Factory func() Protocol

// minWindow is the floor every controller enforces.
const minWindow = 2.0

// srttFilter is a classic exponentially-weighted RTT estimator shared by
// the controllers.
type srttFilter struct {
	srtt float64
}

func (f *srttFilter) update(rtt float64) {
	if f.srtt == 0 {
		f.srtt = rtt
		return
	}
	f.srtt = 0.875*f.srtt + 0.125*rtt
}

// --- Reno ---

// Reno is TCP NewReno: slow start then additive increase, multiplicative
// decrease on loss, with a one-RTT reaction cooldown approximating fast
// recovery.
type Reno struct {
	cwnd     float64
	ssthresh float64
	rtt      srttFilter
	lastCut  float64
}

// NewReno returns a NewReno controller. The initial slow-start threshold
// is unbounded, as in real stacks: the first loss sets it.
func NewReno() *Reno { return &Reno{cwnd: minWindow, ssthresh: math.Inf(1)} }

// Name implements Protocol.
func (r *Reno) Name() string { return "reno" }

// Window implements Protocol.
func (r *Reno) Window() float64 { return r.cwnd }

// PacingRate implements Protocol (ack-clocked).
func (r *Reno) PacingRate() float64 { return 0 }

// OnAck implements Protocol. An ECN echo is treated exactly like a loss
// signal (RFC 3168), but the packet itself was delivered.
func (r *Reno) OnAck(a Ack) {
	r.rtt.update(a.RTT)
	if a.ECN {
		r.OnLoss(a.Now)
		return
	}
	if r.cwnd < r.ssthresh {
		r.cwnd++
	} else {
		r.cwnd += 1 / r.cwnd
	}
}

// OnLoss implements Protocol.
func (r *Reno) OnLoss(now float64) {
	if now < r.lastCut+r.rtt.srtt {
		return // one reaction per RTT
	}
	r.lastCut = now
	r.ssthresh = math.Max(r.cwnd/2, minWindow)
	r.cwnd = r.ssthresh
}

// --- Cubic ---

// Cubic is TCP Cubic: window growth follows a cubic function of the time
// since the last loss, aggressive far from the previous maximum and
// conservative near it.
type Cubic struct {
	cwnd       float64
	ssthresh   float64
	wMax       float64
	k          float64
	epochStart float64
	rtt        srttFilter
	lastCut    float64
}

const (
	cubicC    = 0.4
	cubicBeta = 0.7
)

// NewCubic returns a Cubic controller with unbounded initial slow-start
// threshold (set by the first loss, as in real stacks).
func NewCubic() *Cubic { return &Cubic{cwnd: minWindow, ssthresh: math.Inf(1), epochStart: -1} }

// Name implements Protocol.
func (c *Cubic) Name() string { return "cubic" }

// Window implements Protocol.
func (c *Cubic) Window() float64 { return c.cwnd }

// PacingRate implements Protocol (ack-clocked).
func (c *Cubic) PacingRate() float64 { return 0 }

// OnAck implements Protocol. ECN echoes trigger the loss response
// (RFC 3168) without an actual packet loss.
func (c *Cubic) OnAck(a Ack) {
	c.rtt.update(a.RTT)
	if a.ECN {
		c.OnLoss(a.Now)
		return
	}
	if c.cwnd < c.ssthresh {
		c.cwnd++
		return
	}
	if c.epochStart < 0 {
		c.epochStart = a.Now
		c.wMax = c.cwnd
		c.k = 0
	}
	t := a.Now - c.epochStart + c.rtt.srtt
	target := cubicC*math.Pow(t-c.k, 3) + c.wMax
	if target > c.cwnd {
		c.cwnd += (target - c.cwnd) / c.cwnd
	} else {
		c.cwnd += 0.01 / c.cwnd // minimal probing near the plateau
	}
}

// OnLoss implements Protocol.
func (c *Cubic) OnLoss(now float64) {
	if now < c.lastCut+c.rtt.srtt {
		return
	}
	c.lastCut = now
	c.wMax = c.cwnd
	c.cwnd = math.Max(c.cwnd*cubicBeta, minWindow)
	c.ssthresh = c.cwnd
	c.k = math.Cbrt(c.wMax * (1 - cubicBeta) / cubicC)
	c.epochStart = now
}

// --- Vegas ---

// Vegas is delay-based TCP Vegas: it estimates the number of its own
// packets queued at the bottleneck and holds that between alpha and beta.
type Vegas struct {
	cwnd      float64
	baseRTT   float64
	rtt       srttFilter
	lastCut   float64
	slowStart bool
}

const (
	vegasAlpha = 2.0
	vegasBeta  = 4.0
	vegasGamma = 3.0 // slow-start exit threshold (queued packets)
)

// NewVegas returns a Vegas controller.
func NewVegas() *Vegas { return &Vegas{cwnd: minWindow, baseRTT: math.Inf(1), slowStart: true} }

// Name implements Protocol.
func (v *Vegas) Name() string { return "vegas" }

// Window implements Protocol.
func (v *Vegas) Window() float64 { return v.cwnd }

// PacingRate implements Protocol (ack-clocked).
func (v *Vegas) PacingRate() float64 { return 0 }

// OnAck implements Protocol.
func (v *Vegas) OnAck(a Ack) {
	v.rtt.update(a.RTT)
	if a.RTT < v.baseRTT {
		v.baseRTT = a.RTT
	}
	expected := v.cwnd / v.baseRTT
	actual := v.cwnd / a.RTT
	diff := (expected - actual) * v.baseRTT // packets queued by this flow
	if v.slowStart {
		if diff < vegasGamma {
			v.cwnd++ // doubling per RTT while the path is queue-free
			return
		}
		v.slowStart = false
	}
	switch {
	case diff < vegasAlpha:
		v.cwnd += 1 / v.cwnd
	case diff > vegasBeta:
		v.cwnd = math.Max(v.cwnd-1/v.cwnd, minWindow)
	}
}

// OnLoss implements Protocol.
func (v *Vegas) OnLoss(now float64) {
	if now < v.lastCut+v.rtt.srtt {
		return
	}
	v.lastCut = now
	v.slowStart = false
	v.cwnd = math.Max(v.cwnd*0.75, minWindow)
}

// --- BBR (simplified) ---

// BBR is a simplified BBRv1: it keeps windowed maximum-bandwidth and
// minimum-RTT estimates and paces at gain * bandwidth, cycling gains to
// probe. Loss is ignored (as in BBRv1); the inflight cap of 2x BDP bounds
// self-inflicted queueing.
type BBR struct {
	pktSize    int
	minRTT     float64
	rtt        srttFilter
	lastAck    float64
	cycleIdx   int
	cycleStamp float64
	startup    bool
	fullCnt    int
	lastBw     float64

	// Windowed max-bandwidth filter (two rotating buckets approximating
	// BBR's 10-RTT windowed max, so stale overestimates expire).
	bwCur, bwPrev float64
	bwStamp       float64
}

var bbrGains = [...]float64{1.25, 0.75, 1, 1, 1, 1, 1, 1}

// NewBBR returns a simplified BBR controller for the given packet size.
func NewBBR(pktSize int) *BBR {
	return &BBR{pktSize: pktSize, minRTT: math.Inf(1), startup: true}
}

// Name implements Protocol.
func (b *BBR) Name() string { return "bbr" }

// btlBw returns the windowed maximum delivery-rate estimate in bytes/sec.
func (b *BBR) btlBw() float64 { return math.Max(b.bwCur, b.bwPrev) }

// Window implements Protocol: cap inflight at 2x estimated BDP.
func (b *BBR) Window() float64 {
	bw := b.btlBw()
	if bw == 0 || math.IsInf(b.minRTT, 1) {
		return 10 // startup default
	}
	bdpPkts := bw * b.minRTT / float64(b.pktSize)
	return math.Max(2*bdpPkts, minWindow)
}

// PacingRate implements Protocol.
func (b *BBR) PacingRate() float64 {
	bw := b.btlBw()
	if bw == 0 {
		// Initial rate: 10 packets per 100 ms.
		return float64(b.pktSize) * 100
	}
	gain := bbrGains[b.cycleIdx]
	if b.startup {
		gain = 2.0
	}
	return gain * bw
}

// OnAck implements Protocol.
func (b *BBR) OnAck(a Ack) {
	b.rtt.update(a.RTT)
	if a.RTT < b.minRTT {
		b.minRTT = a.RTT
	}
	if b.lastAck > 0 {
		gap := a.Now - b.lastAck
		if gap > 1e-9 {
			sample := float64(a.Bytes) / gap
			if sample > b.bwCur {
				b.bwCur = sample
			}
		}
	}
	// Rotate the bandwidth filter buckets every ~5 smoothed RTTs so stale
	// startup overestimates age out.
	if a.Now > b.bwStamp+5*math.Max(b.rtt.srtt, 1e-3) {
		b.bwStamp = a.Now
		b.bwPrev = b.bwCur
		b.bwCur = 0
	}
	b.lastAck = a.Now
	// Startup exit: bandwidth stopped growing for 3 RTT-spaced checks.
	if b.startup && a.Now > b.cycleStamp+b.rtt.srtt {
		b.cycleStamp = a.Now
		if b.btlBw() < b.lastBw*1.25 {
			b.fullCnt++
			if b.fullCnt >= 3 {
				b.startup = false
			}
		} else {
			b.fullCnt = 0
		}
		b.lastBw = b.btlBw()
	} else if !b.startup && a.Now > b.cycleStamp+b.rtt.srtt {
		b.cycleStamp = a.Now
		b.cycleIdx = (b.cycleIdx + 1) % len(bbrGains)
	}
}

// OnLoss implements Protocol: BBRv1 does not react to individual losses.
func (b *BBR) OnLoss(now float64) {}

// --- SCReAM-like ---

// Scream is a SCReAM-like controller (RFC 8298): self-clocked rate
// adaptation that steers the congestion window so the estimated queueing
// delay stays near a small target. It was designed for latency-sensitive
// (real-time media) traffic: it deliberately sacrifices throughput to keep
// the bottleneck queue short.
type Scream struct {
	cwnd      float64
	baseRTT   float64
	rtt       srttFilter
	lastCut   float64
	fastStart bool

	// QDelayTarget is the queueing-delay target in seconds (RFC 8298
	// suggests 50-100 ms; default 60 ms).
	QDelayTarget float64
	// GainUp scales additive increase when below target (default 1.0).
	GainUp float64
	// GainDown scales multiplicative decrease above target (default 2.0).
	GainDown float64
}

// NewScream returns a SCReAM-like controller with default parameters.
func NewScream() *Scream {
	return &Scream{
		cwnd:         minWindow,
		baseRTT:      math.Inf(1),
		fastStart:    true,
		QDelayTarget: 0.06,
		GainUp:       1.0,
		GainDown:     2.0,
	}
}

// Name implements Protocol.
func (s *Scream) Name() string { return "scream" }

// Window implements Protocol.
func (s *Scream) Window() float64 { return s.cwnd }

// PacingRate implements Protocol (window-based with ack clocking, like the
// RFC's self-clocked design).
func (s *Scream) PacingRate() float64 { return 0 }

// OnAck implements Protocol. SCReAM is ECN-capable (RFC 8298 §4.1.2): a
// congestion mark causes a multiplicative decrease milder than the loss
// response, at most once per RTT.
func (s *Scream) OnAck(a Ack) {
	s.rtt.update(a.RTT)
	if a.RTT < s.baseRTT {
		s.baseRTT = a.RTT
	}
	if a.ECN && a.Now >= s.lastCut+s.rtt.srtt {
		s.lastCut = a.Now
		s.fastStart = false
		s.cwnd = math.Max(s.cwnd*0.8, minWindow)
		return
	}
	qdelay := a.RTT - s.baseRTT
	off := (s.QDelayTarget - qdelay) / s.QDelayTarget
	if s.fastStart {
		// RFC 8298 fast-increase mode: ramp quickly while the queue is
		// far below target; exit permanently on meaningful queueing.
		if qdelay < 0.25*s.QDelayTarget {
			s.cwnd++
			return
		}
		s.fastStart = false
	}
	if off >= 0 {
		// Below target: additive increase scaled by how far below the
		// target the queue is (up to ~10 packets per RTT when the queue
		// is empty, vanishing smoothly at the target).
		s.cwnd += s.GainUp * off / s.cwnd * 10
	} else {
		// Above target: gentle multiplicative decrease per ACK,
		// proportional to the overshoot (capped).
		over := math.Min(-off, 1)
		s.cwnd *= 1 - s.GainDown*0.02*over
		s.cwnd = math.Max(s.cwnd, minWindow)
	}
}

// OnLoss implements Protocol.
func (s *Scream) OnLoss(now float64) {
	if now < s.lastCut+s.rtt.srtt {
		return
	}
	s.lastCut = now
	s.fastStart = false
	s.cwnd = math.Max(s.cwnd*0.5, minWindow)
}

// Registry maps protocol names to factories for the given packet size.
// "scream" is the protagonist; the rest form the "rest" in scream-vs-rest.
func Registry(pktSize int) map[string]Factory {
	return map[string]Factory{
		"reno":   func() Protocol { return NewReno() },
		"cubic":  func() Protocol { return NewCubic() },
		"vegas":  func() Protocol { return NewVegas() },
		"bbr":    func() Protocol { return NewBBR(pktSize) },
		"scream": func() Protocol { return NewScream() },
	}
}

// Names returns the registry's protocol names in a fixed order.
func Names() []string { return []string{"scream", "cubic", "reno", "vegas", "bbr"} }
