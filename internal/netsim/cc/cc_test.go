package cc

import (
	"math"
	"testing"
)

// ackSeries feeds n acks with constant RTT spaced dt apart.
func ackSeries(p Protocol, n int, rtt, dt, start float64) {
	for i := 0; i < n; i++ {
		p.OnAck(Ack{Now: start + float64(i)*dt, RTT: rtt, Bytes: 1500})
	}
}

func TestRenoSlowStartDoubles(t *testing.T) {
	r := NewReno()
	w0 := r.Window()
	ackSeries(r, int(w0), 0.05, 0.001, 0)
	if got := r.Window(); got != 2*w0 {
		t.Fatalf("after cwnd acks: window %v, want %v", got, 2*w0)
	}
}

func TestRenoLossHalves(t *testing.T) {
	r := NewReno()
	ackSeries(r, 30, 0.05, 0.001, 0)
	before := r.Window()
	r.OnLoss(1.0)
	if got := r.Window(); math.Abs(got-before/2) > 1e-9 {
		t.Fatalf("loss: window %v, want %v", got, before/2)
	}
}

func TestRenoLossCooldown(t *testing.T) {
	r := NewReno()
	ackSeries(r, 30, 0.05, 0.001, 0)
	r.OnLoss(1.0)
	after1 := r.Window()
	r.OnLoss(1.001) // within one RTT: ignored
	if r.Window() != after1 {
		t.Fatalf("second loss within an RTT changed window")
	}
	r.OnLoss(1.2) // beyond one RTT: reacts again
	if r.Window() >= after1 {
		t.Fatalf("loss after cooldown did not reduce window")
	}
}

func TestRenoCongestionAvoidanceLinear(t *testing.T) {
	r := NewReno()
	ackSeries(r, 20, 0.05, 0.001, 0)
	r.OnLoss(0.5) // sets ssthresh = cwnd/2, enters CA
	w := r.Window()
	// One window of acks should grow cwnd by ~1.
	ackSeries(r, int(w), 0.05, 0.001, 1.0)
	if got := r.Window(); got < w+0.9 || got > w+1.5 {
		t.Fatalf("CA growth: %v -> %v, want +~1", w, got)
	}
}

func TestCubicConcaveGrowthAfterLoss(t *testing.T) {
	c := NewCubic()
	ackSeries(c, 100, 0.05, 0.001, 0)
	c.OnLoss(0.5)
	w1 := c.Window()
	// Shortly after loss: growth is slow (concave region).
	ackSeries(c, 20, 0.05, 0.002, 0.6)
	w2 := c.Window()
	// Far from loss: growth accelerates (convex region).
	ackSeries(c, 20, 0.05, 0.002, 6.0)
	w3 := c.Window()
	if !(w2 >= w1 && w3 > w2) {
		t.Fatalf("cubic growth not monotone: %v %v %v", w1, w2, w3)
	}
	if (w3 - w2) < (w2 - w1) {
		t.Fatalf("cubic not accelerating away from wMax: d1=%v d2=%v", w2-w1, w3-w2)
	}
}

func TestCubicBetaDecrease(t *testing.T) {
	c := NewCubic()
	ackSeries(c, 100, 0.05, 0.001, 0)
	before := c.Window()
	c.OnLoss(1.0)
	want := before * cubicBeta
	if got := c.Window(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("cubic loss: %v, want %v", got, want)
	}
}

func TestVegasHoldsQueueTarget(t *testing.T) {
	v := NewVegas()
	base := 0.05
	// Feed RTTs implying ~3 queued packets (between alpha=2 and beta=4):
	// diff = cwnd * (1 - base/rtt) ... choose rtt so diff stays in band.
	for i := 0; i < 500; i++ {
		w := v.Window()
		// rtt such that (w)*(1-base/rtt)*? => queued = w*(rtt-base)/rtt
		rtt := base * w / (w - 3) // queued exactly 3
		if rtt < base {
			rtt = base
		}
		v.OnAck(Ack{Now: float64(i) * 0.001, RTT: rtt, Bytes: 1500})
	}
	// With queued pinned at 3 packets, the window should stay put (3 is
	// inside [alpha, beta]); allow slow drift from the slow-start exit.
	if v.Window() > 60 {
		t.Fatalf("vegas window grew unboundedly: %v", v.Window())
	}
}

func TestVegasBacksOffOnQueueing(t *testing.T) {
	v := NewVegas()
	ackSeries(v, 100, 0.05, 0.001, 0) // establish base RTT
	grown := v.Window()
	// Now heavy queueing: RTT doubles, diff >> beta.
	ackSeries(v, 200, 0.10, 0.001, 1)
	if v.Window() >= grown {
		t.Fatalf("vegas did not back off under queueing: %v -> %v", grown, v.Window())
	}
}

func TestBBREstimatesBandwidth(t *testing.T) {
	b := NewBBR(1500)
	// ACKs arriving every 1 ms, 1500 B each => 1.5 MB/s.
	ackSeries(b, 200, 0.04, 0.001, 0)
	if b.btlBw() < 1.4e6 || b.btlBw() > 1.6e6 {
		t.Fatalf("btlBw = %v, want ~1.5e6 B/s", b.btlBw())
	}
	if b.PacingRate() <= 0 {
		t.Fatal("non-positive pacing rate")
	}
	// Window cap should reflect ~2x BDP.
	bdp := b.btlBw() * b.minRTT / 1500
	if w := b.Window(); math.Abs(w-2*bdp) > 1 {
		t.Fatalf("window %v, want ~%v", w, 2*bdp)
	}
}

func TestBBRIgnoresLoss(t *testing.T) {
	b := NewBBR(1500)
	ackSeries(b, 100, 0.04, 0.001, 0)
	before := b.PacingRate()
	beforeStartup := b.startup
	b.OnLoss(1.0)
	if b.PacingRate() != before || b.startup != beforeStartup {
		t.Fatal("BBR reacted to loss")
	}
}

func TestBBRStartupExits(t *testing.T) {
	b := NewBBR(1500)
	// Constant ack rate: bandwidth stops growing, startup must end.
	ackSeries(b, 2000, 0.04, 0.001, 0)
	if b.startup {
		t.Fatal("BBR still in startup after a flat bandwidth plateau")
	}
}

func TestScreamFastStartExitsOnQueueing(t *testing.T) {
	s := NewScream()
	// Base RTT 50 ms, no queueing: fast ramp.
	ackSeries(s, 50, 0.05, 0.001, 0)
	if !s.fastStart {
		t.Fatal("scream exited fast start without queueing")
	}
	w := s.Window()
	if w < 50 {
		t.Fatalf("fast start too slow: window %v after 50 acks", w)
	}
	// Queueing at 50% of target: fast start must end.
	s.OnAck(Ack{Now: 1, RTT: 0.05 + 0.03, Bytes: 1500})
	if s.fastStart {
		t.Fatal("scream stayed in fast start despite queueing")
	}
}

func TestScreamConvergesToTarget(t *testing.T) {
	s := NewScream()
	base := 0.04
	now := 0.0
	// Simulate a queue proportional to the window beyond 50 "BDP" packets:
	// qdelay = (cwnd-50)*1ms, clamped at 0.
	for i := 0; i < 5000; i++ {
		q := (s.Window() - 50) * 0.001
		if q < 0 {
			q = 0
		}
		now += 0.001
		s.OnAck(Ack{Now: now, RTT: base + q, Bytes: 1500})
	}
	q := (s.Window() - 50) * 0.001
	// Queue delay should have converged near the 60 ms target.
	if q < 0.03 || q > 0.09 {
		t.Fatalf("scream stabilized at qdelay %v, want near 0.06", q)
	}
}

func TestScreamLossHalves(t *testing.T) {
	s := NewScream()
	ackSeries(s, 100, 0.05, 0.001, 0)
	before := s.Window()
	s.OnLoss(1.0)
	if got := s.Window(); math.Abs(got-before/2) > 1e-9 {
		t.Fatalf("scream loss: %v, want %v", got, before/2)
	}
}

func TestAllProtocolsEnforceMinWindow(t *testing.T) {
	for name, factory := range Registry(1500) {
		p := factory()
		// Hammer with losses spaced beyond any cooldown.
		for i := 0; i < 100; i++ {
			p.OnAck(Ack{Now: float64(i), RTT: 0.05, Bytes: 1500})
			p.OnLoss(float64(i) + 0.5)
		}
		if p.Window() < minWindow && name != "bbr" {
			t.Errorf("%s: window %v below minimum", name, p.Window())
		}
		if p.Window() <= 0 {
			t.Errorf("%s: non-positive window", name)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry(1500)
	for _, name := range Names() {
		f, ok := reg[name]
		if !ok {
			t.Fatalf("registry missing %q", name)
		}
		p := f()
		if p.Name() != name {
			t.Fatalf("factory %q builds %q", name, p.Name())
		}
	}
	if Names()[0] != "scream" {
		t.Fatal("scream must be the first (protagonist) protocol")
	}
}

func TestSrttFilter(t *testing.T) {
	var f srttFilter
	f.update(0.1)
	if f.srtt != 0.1 {
		t.Fatalf("first sample: %v", f.srtt)
	}
	f.update(0.2)
	want := 0.875*0.1 + 0.125*0.2
	if math.Abs(f.srtt-want) > 1e-12 {
		t.Fatalf("srtt = %v, want %v", f.srtt, want)
	}
}
