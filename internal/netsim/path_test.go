package netsim

import (
	"math"
	"testing"

	"github.com/netml/alefb/internal/rng"
)

func twoHop(t *testing.T, sim *Simulator, rate1, rate2 float64) *Path {
	t.Helper()
	p, err := NewPath(sim, []LinkConfig{
		{RateMbps: rate1, DelayMs: 10, QueuePackets: 100},
		{RateMbps: rate2, DelayMs: 20, QueuePackets: 100},
	}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPathValidation(t *testing.T) {
	sim := NewSimulator()
	if _, err := NewPath(sim, nil, rng.New(1)); err == nil {
		t.Fatal("empty path accepted")
	}
	if _, err := NewPath(sim, []LinkConfig{{RateMbps: -1, DelayMs: 1, QueuePackets: 1}}, rng.New(1)); err == nil {
		t.Fatal("bad hop accepted")
	}
}

func TestPathDeliversThroughAllHops(t *testing.T) {
	sim := NewSimulator()
	p := twoHop(t, sim, 100, 100)
	var arrival, totalQD float64
	delivered := 0
	p.Deliver = func(pkt Packet, qd float64) {
		delivered++
		arrival = sim.Now()
		totalQD = qd
	}
	p.Send(Packet{FlowID: 0, Seq: 1, Size: 1500})
	sim.Run(1)
	if delivered != 1 {
		t.Fatalf("delivered %d", delivered)
	}
	tx := 1500.0 * 8 / 100e6
	want := 0.010 + 0.020 + 2*tx
	if math.Abs(arrival-want) > 1e-9 {
		t.Fatalf("arrival %v, want %v", arrival, want)
	}
	if math.Abs(totalQD-2*tx) > 1e-9 {
		t.Fatalf("accumulated queue delay %v, want %v", totalQD, 2*tx)
	}
	if p.InTransit() != 0 {
		t.Fatalf("in-transit bookkeeping leaked: %d", p.InTransit())
	}
}

func TestPathBottleneckIsSlowestHop(t *testing.T) {
	// Hop 1 at 100 Mbps, hop 2 at 10 Mbps: sustained delivery rate is
	// bound by hop 2.
	sim := NewSimulator()
	p := twoHop(t, sim, 100, 10)
	delivered := 0
	p.Deliver = func(pkt Packet, qd float64) { delivered++ }
	for i := 0; i < 2000; i++ {
		p.Send(Packet{Seq: int64(i), Size: 1500})
	}
	sim.Run(1.0)
	// 10 Mbps / 12000 bits ≈ 833 pkts/s; queue of 100 at each hop caps
	// acceptance; expect on the order of hop-2 rate, certainly < 900.
	if delivered > 900 {
		t.Fatalf("delivered %d; second hop should throttle to ~833/s", delivered)
	}
	if delivered < 100 {
		t.Fatalf("delivered %d; path stalled", delivered)
	}
}

func TestPathDropReportsHop(t *testing.T) {
	// Tiny queue at hop 2 only: drops must report hop 1 (0-based).
	sim := NewSimulator()
	p, err := NewPath(sim, []LinkConfig{
		{RateMbps: 100, DelayMs: 1, QueuePackets: 1000},
		{RateMbps: 1, DelayMs: 1, QueuePackets: 2},
	}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	dropHops := map[int]int{}
	p.OnDrop = func(pkt Packet, hop int, random bool) { dropHops[hop]++ }
	delivered := 0
	p.Deliver = func(pkt Packet, qd float64) { delivered++ }
	for i := 0; i < 200; i++ {
		p.Send(Packet{Seq: int64(i), Size: 1500})
	}
	sim.Run(2)
	if dropHops[0] != 0 {
		t.Fatalf("unexpected drops at hop 0: %v", dropHops)
	}
	if dropHops[1] == 0 {
		t.Fatalf("no drops at the constrained hop: %v (delivered %d)", dropHops, delivered)
	}
	if p.InTransit() != 0 {
		t.Fatalf("in-transit leaked after drops: %d", p.InTransit())
	}
}

func TestPathAccessors(t *testing.T) {
	sim := NewSimulator()
	p := twoHop(t, sim, 50, 50)
	if p.Hops() != 2 {
		t.Fatalf("hops = %d", p.Hops())
	}
	if p.TotalPropagationMs() != 30 {
		t.Fatalf("propagation = %v", p.TotalPropagationMs())
	}
	if p.Link(0).Config().DelayMs != 10 || p.Link(1).Config().DelayMs != 20 {
		t.Fatal("Link accessor wrong")
	}
}

func TestPathImmediateDropAtFirstHop(t *testing.T) {
	sim := NewSimulator()
	p, err := NewPath(sim, []LinkConfig{
		{RateMbps: 1, DelayMs: 1, QueuePackets: 1},
	}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	drops := 0
	p.OnDrop = func(pkt Packet, hop int, random bool) { drops++ }
	// Saturate instantly: first accepted, second queued, rest rejected.
	accepted := 0
	for i := 0; i < 10; i++ {
		if p.Send(Packet{Seq: int64(i), Size: 1500}) {
			accepted++
		}
	}
	if accepted != 2 {
		t.Fatalf("accepted %d, want 2 (1 transmitting + 1 queued)", accepted)
	}
	if drops != 8 {
		t.Fatalf("drops = %d", drops)
	}
}
