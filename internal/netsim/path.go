package netsim

import (
	"errors"

	"github.com/netml/alefb/internal/rng"
)

// Path chains several links in series (a "parking-lot" topology): a packet
// traverses every hop in order, accumulating queueing delay, and can be
// dropped at any hop. The single-bottleneck experiments in this repository
// do not need it, but multi-hop paths are where delay-based protocols'
// base-RTT estimates get interesting, so the substrate supports them.
type Path struct {
	sim   *Simulator
	links []*Link

	// Deliver is invoked at the far end with the total queueing (+
	// serialization) delay accumulated over all hops.
	Deliver func(p Packet, totalQueueDelay float64)
	// OnDrop is invoked when a packet dies at hop `hop` (0-based);
	// random reports random loss vs queue overflow.
	OnDrop func(p Packet, hop int, random bool)

	// inTransit accumulates per-packet queue delay across hops, keyed by
	// (FlowID, Seq).
	inTransit map[pathKey]float64
}

type pathKey struct {
	flow int
	seq  int64
}

// NewPath builds a serial chain of links on the simulator. Each hop gets
// an independent loss process split from r.
func NewPath(sim *Simulator, cfgs []LinkConfig, r *rng.Rand) (*Path, error) {
	if len(cfgs) == 0 {
		return nil, errors.New("netsim: path needs at least one hop")
	}
	p := &Path{sim: sim, inTransit: make(map[pathKey]float64)}
	for i, cfg := range cfgs {
		link, err := NewLink(sim, cfg, r.Split())
		if err != nil {
			return nil, err
		}
		p.links = append(p.links, link)
		hop := i
		link.OnDrop = func(pkt Packet, random bool) {
			delete(p.inTransit, pathKey{pkt.FlowID, pkt.Seq})
			if p.OnDrop != nil {
				p.OnDrop(pkt, hop, random)
			}
		}
	}
	for i, link := range p.links {
		hop := i
		link.Deliver = func(pkt Packet, qd float64) {
			key := pathKey{pkt.FlowID, pkt.Seq}
			p.inTransit[key] += qd
			if hop+1 < len(p.links) {
				p.links[hop+1].Send(pkt)
				return
			}
			total := p.inTransit[key]
			delete(p.inTransit, key)
			if p.Deliver != nil {
				p.Deliver(pkt, total)
			}
		}
	}
	return p, nil
}

// Send injects a packet at the first hop. It returns false if the packet
// was dropped immediately at hop 0.
func (p *Path) Send(pkt Packet) bool {
	p.inTransit[pathKey{pkt.FlowID, pkt.Seq}] = 0
	if !p.links[0].Send(pkt) {
		return false
	}
	return true
}

// Hops returns the number of links in the path.
func (p *Path) Hops() int { return len(p.links) }

// Link returns hop i's link for inspection.
func (p *Path) Link(i int) *Link { return p.links[i] }

// TotalPropagationMs sums the hops' one-way propagation delays.
func (p *Path) TotalPropagationMs() float64 {
	total := 0.0
	for _, l := range p.links {
		total += l.Config().DelayMs
	}
	return total
}

// InTransit returns the number of packets currently traversing the path
// (accepted at hop 0 and neither delivered nor dropped yet).
func (p *Path) InTransit() int { return len(p.inTransit) }
