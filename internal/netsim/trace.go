package netsim

import (
	"fmt"

	"github.com/netml/alefb/internal/rng"
)

// TraceConfig parameterizes synthetic bandwidth traces in the style of the
// cellular traces Pantheon/mahimahi replay: a mean-reverting random walk
// sampled at a fixed interval.
type TraceConfig struct {
	// Duration of the trace in seconds.
	Duration float64
	// Interval between rate changes in seconds (default 0.1).
	Interval float64
	// MeanMbps is the long-run average rate.
	MeanMbps float64
	// Volatility is the per-step standard deviation as a fraction of the
	// mean (default 0.25).
	Volatility float64
	// Reversion pulls the walk back toward the mean per step, in (0, 1]
	// (default 0.2).
	Reversion float64
	// MinMbps floors the rate (default MeanMbps/20, at least 0.1).
	MinMbps float64
}

func (c TraceConfig) withDefaults() TraceConfig {
	if c.Interval <= 0 {
		c.Interval = 0.1
	}
	if c.Volatility <= 0 {
		c.Volatility = 0.25
	}
	if c.Reversion <= 0 || c.Reversion > 1 {
		c.Reversion = 0.2
	}
	if c.MinMbps <= 0 {
		c.MinMbps = c.MeanMbps / 20
		if c.MinMbps < 0.1 {
			c.MinMbps = 0.1
		}
	}
	return c
}

// Validate reports configuration errors.
func (c TraceConfig) Validate() error {
	if c.Duration <= 0 {
		return fmt.Errorf("netsim: trace duration %v <= 0", c.Duration)
	}
	if c.MeanMbps <= 0 {
		return fmt.Errorf("netsim: trace mean rate %v <= 0", c.MeanMbps)
	}
	return nil
}

// GenerateCellularTrace produces a bandwidth schedule resembling a mobile
// link: rate steps every Interval seconds following a mean-reverting
// random walk (an AR(1)/Ornstein-Uhlenbeck discretization), floored at
// MinMbps. The result can be installed with Link.SetRateSchedule.
func GenerateCellularTrace(cfg TraceConfig, r *rng.Rand) ([]RateStep, error) {
	cfg = cfg.withDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	steps := make([]RateStep, 0, int(cfg.Duration/cfg.Interval)+1)
	rate := cfg.MeanMbps
	for t := 0.0; t <= cfg.Duration; t += cfg.Interval {
		rate += cfg.Reversion*(cfg.MeanMbps-rate) + r.Normal(0, cfg.Volatility*cfg.MeanMbps)
		if rate < cfg.MinMbps {
			rate = cfg.MinMbps
		}
		steps = append(steps, RateStep{At: t, RateMbps: rate})
	}
	return steps, nil
}

// TraceMeanMbps returns the time-weighted mean rate of a schedule over
// [0, duration], assuming the last step's rate holds to the end.
func TraceMeanMbps(steps []RateStep, duration float64) float64 {
	if len(steps) == 0 || duration <= 0 {
		return 0
	}
	total := 0.0
	for i, st := range steps {
		end := duration
		if i+1 < len(steps) && steps[i+1].At < duration {
			end = steps[i+1].At
		}
		if st.At >= duration {
			break
		}
		total += st.RateMbps * (end - st.At)
	}
	// Account for time before the first step at the first step's rate.
	if steps[0].At > 0 {
		total += steps[0].RateMbps * steps[0].At
	}
	return total / duration
}
