package netsim

import (
	"math"
	"testing"

	"github.com/netml/alefb/internal/netsim/cc"
	"github.com/netml/alefb/internal/rng"
)

func TestREDConfigValidate(t *testing.T) {
	bad := []REDConfig{
		{MinThresh: -1, MaxThresh: 10, MaxP: 0.1},
		{MinThresh: 10, MaxThresh: 10, MaxP: 0.1},
		{MinThresh: 5, MaxThresh: 15, MaxP: 0},
		{MinThresh: 5, MaxThresh: 15, MaxP: 1.5},
		{MinThresh: 5, MaxThresh: 15, MaxP: 0.1, Weight: 2},
	}
	for _, cfg := range bad {
		if cfg.Validate() == nil {
			t.Fatalf("config %+v should be invalid", cfg)
		}
	}
	good := REDConfig{MinThresh: 5, MaxThresh: 15, MaxP: 0.1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestLinkConfigValidatesRED(t *testing.T) {
	cfg := LinkConfig{
		RateMbps: 10, DelayMs: 10, QueuePackets: 100,
		AQM: AQMRED,
		RED: REDConfig{MinThresh: 10, MaxThresh: 5, MaxP: 0.1},
	}
	if cfg.Validate() == nil {
		t.Fatal("bad RED config accepted through LinkConfig")
	}
}

func TestRedStateRegions(t *testing.T) {
	s := &redState{cfg: REDConfig{MinThresh: 5, MaxThresh: 15, MaxP: 0.5, Weight: 1}.withDefaults()}
	constRand := func() float64 { return 0.99 } // never triggers probabilistic action
	// Below min: always enqueue.
	if got := s.onArrival(2, constRand); got != redEnqueue {
		t.Fatalf("below min: %v", got)
	}
	// Above max: always drop.
	if got := s.onArrival(50, constRand); got != redDrop {
		t.Fatalf("above max: %v", got)
	}
	// In between with rand ~ 0: action fires.
	zeroRand := func() float64 { return 0 }
	s2 := &redState{cfg: REDConfig{MinThresh: 5, MaxThresh: 15, MaxP: 0.5, Weight: 1, ECN: true}}
	if got := s2.onArrival(10, zeroRand); got != redMark {
		t.Fatalf("ECN RED should mark, got %v", got)
	}
	s3 := &redState{cfg: REDConfig{MinThresh: 5, MaxThresh: 15, MaxP: 0.5, Weight: 1}}
	if got := s3.onArrival(10, zeroRand); got != redDrop {
		t.Fatalf("non-ECN RED should drop, got %v", got)
	}
}

func TestRedEWMASmoothes(t *testing.T) {
	s := &redState{cfg: REDConfig{MinThresh: 5, MaxThresh: 15, MaxP: 0.5, Weight: 0.002}}
	r := func() float64 { return 0.99 }
	// A single large instantaneous queue barely moves the average.
	s.onArrival(1000, r)
	if s.avg > 5 {
		t.Fatalf("EWMA jumped to %v after one sample", s.avg)
	}
}

func TestAQMString(t *testing.T) {
	if AQMDropTail.String() != "droptail" || AQMRED.String() != "red" {
		t.Fatal("AQM names wrong")
	}
}

func TestREDMarksUnderLoad(t *testing.T) {
	// Saturate a RED+ECN link: some packets must be marked, far fewer
	// dropped than droptail would.
	sim := NewSimulator()
	link, err := NewLink(sim, LinkConfig{
		RateMbps: 12, DelayMs: 5, QueuePackets: 100,
		AQM: AQMRED,
		RED: REDConfig{MinThresh: 5, MaxThresh: 50, MaxP: 0.2, Weight: 0.05, ECN: true},
	}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	markedSeen := 0
	link.Deliver = func(p Packet, qd float64) {
		if p.ECN {
			markedSeen++
		}
	}
	for burst := 0; burst < 40; burst++ {
		for i := 0; i < 30; i++ {
			link.Send(Packet{Seq: int64(burst*30 + i), Size: 1500})
		}
		sim.Run(float64(burst+1) * 0.05)
	}
	sim.Run(10)
	if link.Marked() == 0 || markedSeen == 0 {
		t.Fatalf("RED+ECN never marked (marked=%d seen=%d)", link.Marked(), markedSeen)
	}
}

func TestECNKeepsQueueShortWithoutLoss(t *testing.T) {
	// Cubic over RED+ECN: the mark signal should keep the queue shorter
	// than droptail does, with (nearly) no packet loss.
	red := LinkConfig{
		RateMbps: 20, DelayMs: 20, QueuePackets: 400,
		AQM: AQMRED,
		RED: REDConfig{MinThresh: 10, MaxThresh: 60, MaxP: 0.1, Weight: 0.01, ECN: true},
	}
	droptail := LinkConfig{RateMbps: 20, DelayMs: 20, QueuePackets: 400}
	run := func(link LinkConfig) Result {
		res, err := Run(Config{Link: link, Flows: 1, Protocol: func() cc.Protocol { return cc.NewCubic() }, Duration: 3, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	withECN := run(red)
	plain := run(droptail)
	if withECN.MeanOWDMs >= plain.MeanOWDMs {
		t.Fatalf("ECN delay %.1f ms >= droptail %.1f ms", withECN.MeanOWDMs, plain.MeanOWDMs)
	}
	if withECN.LossRate > plain.LossRate {
		t.Fatalf("ECN loss %.3f exceeds droptail %.3f", withECN.LossRate, plain.LossRate)
	}
	if withECN.TotalThroughputMbps < 0.5*plain.TotalThroughputMbps {
		t.Fatalf("ECN throughput collapsed: %.2f vs %.2f", withECN.TotalThroughputMbps, plain.TotalThroughputMbps)
	}
}

func TestScreamReactsToECNGently(t *testing.T) {
	s := cc.NewScream()
	for i := 0; i < 100; i++ {
		s.OnAck(cc.Ack{Now: float64(i) * 0.01, RTT: 0.05, Bytes: 1500})
	}
	before := s.Window()
	s.OnAck(cc.Ack{Now: 2, RTT: 0.05, Bytes: 1500, ECN: true})
	after := s.Window()
	if math.Abs(after-before*0.8) > 1e-9 {
		t.Fatalf("scream ECN response: %v -> %v, want x0.8", before, after)
	}
	// Loss response (x0.5) must be stronger than the ECN response.
	s.OnLoss(3)
	if got := s.Window(); math.Abs(got-after*0.5) > 1e-9 {
		t.Fatalf("loss after ECN: %v -> %v, want x0.5", after, got)
	}
}

func TestRenoCubicTreatECNAsLoss(t *testing.T) {
	for _, p := range []cc.Protocol{cc.NewReno(), cc.NewCubic()} {
		for i := 0; i < 50; i++ {
			p.OnAck(cc.Ack{Now: float64(i) * 0.01, RTT: 0.05, Bytes: 1500})
		}
		before := p.Window()
		p.OnAck(cc.Ack{Now: 2, RTT: 0.05, Bytes: 1500, ECN: true})
		if p.Window() >= before {
			t.Fatalf("%s ignored ECN mark", p.Name())
		}
	}
}

func TestRateScheduleChangesThroughput(t *testing.T) {
	// 12 Mbps for 1 s, then 1.2 Mbps: delivered count in the second half
	// must collapse by ~10x.
	sim := NewSimulator()
	link, err := NewLink(sim, LinkConfig{RateMbps: 12, DelayMs: 0, QueuePackets: 1 << 20}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := link.SetRateSchedule([]RateStep{{At: 1.0, RateMbps: 1.2}}); err != nil {
		t.Fatal(err)
	}
	var firstHalf, secondHalf int
	link.Deliver = func(p Packet, qd float64) {
		if sim.Now() < 1.0 {
			firstHalf++
		} else {
			secondHalf++
		}
	}
	for i := 0; i < 5000; i++ {
		link.Send(Packet{Seq: int64(i), Size: 1500})
	}
	sim.Run(2.0)
	if firstHalf < 950 || firstHalf > 1050 {
		t.Fatalf("first half delivered %d, want ~1000", firstHalf)
	}
	if secondHalf < 80 || secondHalf > 120 {
		t.Fatalf("second half delivered %d, want ~100", secondHalf)
	}
}

func TestRateScheduleValidation(t *testing.T) {
	sim := NewSimulator()
	link, err := NewLink(sim, LinkConfig{RateMbps: 10, DelayMs: 1, QueuePackets: 10}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := link.SetRateSchedule([]RateStep{{At: 0, RateMbps: -1}}); err == nil {
		t.Fatal("negative rate accepted")
	}
	if err := link.SetRateSchedule([]RateStep{{At: 2, RateMbps: 1}, {At: 1, RateMbps: 1}}); err == nil {
		t.Fatal("unsorted steps accepted")
	}
}

func TestCurrentRate(t *testing.T) {
	sim := NewSimulator()
	link, _ := NewLink(sim, LinkConfig{RateMbps: 10, DelayMs: 1, QueuePackets: 10}, rng.New(1))
	if err := link.SetRateSchedule([]RateStep{{At: 1, RateMbps: 20}, {At: 2, RateMbps: 5}}); err != nil {
		t.Fatal(err)
	}
	cases := []struct{ t, want float64 }{{0, 10}, {0.99, 10}, {1, 20}, {1.5, 20}, {2, 5}, {99, 5}}
	for _, c := range cases {
		if got := link.currentRate(c.t); got != c.want {
			t.Fatalf("currentRate(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{1, 1, 1, 1}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("equal allocation index %v", got)
	}
	if got := JainIndex([]float64{1, 0, 0, 0}); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("hog allocation index %v", got)
	}
	if got := JainIndex(nil); got != 0 {
		t.Fatalf("empty index %v", got)
	}
	if got := JainIndex([]float64{0, 0}); got != 0 {
		t.Fatalf("all-zero index %v", got)
	}
}

func TestMultiFlowFairnessReported(t *testing.T) {
	res, err := Run(Config{
		Link:     LinkConfig{RateMbps: 10, DelayMs: 10, QueuePackets: 100},
		Flows:    4,
		Protocol: func() cc.Protocol { return cc.NewReno() },
		Duration: 3,
		Seed:     5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FairnessIndex < 0.5 || res.FairnessIndex > 1 {
		t.Fatalf("fairness index %v out of plausible range", res.FairnessIndex)
	}
}
