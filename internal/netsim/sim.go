// Package netsim is a discrete-event, packet-level network emulator
// standing in for the Pantheon testbed [54] the paper collects its
// congestion-control dataset from.
//
// The model is the canonical single-bottleneck dumbbell: N sender flows
// share one droptail bottleneck link with configurable rate, one-way
// propagation delay, queue capacity and i.i.d. random loss. Each flow runs
// a congestion-control protocol from the cc subpackage (Reno, Cubic,
// Vegas, BBR-lite, SCReAM-like); the emulator reports per-flow throughput
// and per-packet latency, from which the screamset package derives the
// "should I use SCReAM here?" labels.
package netsim

import (
	"container/heap"
	"fmt"
	"math"

	"github.com/netml/alefb/internal/rng"
)

// event is one scheduled callback.
type event struct {
	at  float64
	seq uint64 // tie-break so ordering is deterministic
	fn  func()
}

// eventQueue implements heap.Interface ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Simulator is a deterministic discrete-event scheduler. Time is in
// seconds. It is not safe for concurrent use.
type Simulator struct {
	now    float64
	nextID uint64
	queue  eventQueue
}

// NewSimulator returns an empty simulator at time 0.
func NewSimulator() *Simulator { return &Simulator{} }

// Now returns the current simulation time in seconds.
func (s *Simulator) Now() float64 { return s.now }

// Schedule runs fn after delay seconds (>= 0; negative delays are clamped
// to "now").
func (s *Simulator) Schedule(delay float64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.nextID++
	heap.Push(&s.queue, &event{at: s.now + delay, seq: s.nextID, fn: fn})
}

// Run processes events in order until the queue is empty or the next
// event is after `until` seconds; it then advances the clock to `until`.
func (s *Simulator) Run(until float64) {
	for len(s.queue) > 0 {
		e := s.queue[0]
		if e.at > until {
			break
		}
		heap.Pop(&s.queue)
		s.now = e.at
		e.fn()
	}
	if s.now < until {
		s.now = until
	}
}

// Packet is one data packet in flight.
type Packet struct {
	FlowID int
	Seq    int64
	Size   int // bytes
	// SentAt is the time the sender released the packet.
	SentAt float64
	// ECN is set when an AQM marked the packet (congestion experienced);
	// the receiver echoes it back to the sender in the ACK.
	ECN bool
}

// LinkConfig describes the bottleneck.
type LinkConfig struct {
	// RateMbps is the bottleneck rate in megabits per second.
	RateMbps float64
	// DelayMs is the one-way propagation delay in milliseconds.
	DelayMs float64
	// QueuePackets is the droptail buffer capacity in packets.
	QueuePackets int
	// LossRate is the i.i.d. probability a packet is dropped on entry.
	LossRate float64
	// AQM selects the queue discipline (default droptail).
	AQM AQM
	// RED parameterizes the RED discipline when AQM == AQMRED.
	RED REDConfig
}

// Validate reports configuration errors.
func (c LinkConfig) Validate() error {
	if c.RateMbps <= 0 {
		return fmt.Errorf("netsim: non-positive link rate %v", c.RateMbps)
	}
	if c.DelayMs < 0 {
		return fmt.Errorf("netsim: negative delay %v", c.DelayMs)
	}
	if c.QueuePackets < 1 {
		return fmt.Errorf("netsim: queue capacity %d < 1", c.QueuePackets)
	}
	if c.LossRate < 0 || c.LossRate >= 1 {
		return fmt.Errorf("netsim: loss rate %v outside [0,1)", c.LossRate)
	}
	if c.AQM == AQMRED {
		if err := c.RED.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// Link is a droptail bottleneck: packets are serialized at the configured
// rate, then delivered after the propagation delay. Random loss is applied
// on entry. Deliver is invoked at the receiver with the packet and the
// queueing delay it experienced.
type Link struct {
	sim  *Simulator
	cfg  LinkConfig
	rand *rng.Rand

	// Deliver receives (packet, queueDelaySeconds) at the far end.
	Deliver func(p Packet, queueDelay float64)
	// OnDrop, if non-nil, is invoked when a packet is lost (random loss
	// or queue overflow). The bool reports whether it was random loss.
	OnDrop func(p Packet, random bool)

	queue    []queuedPacket
	busy     bool
	dropped  int64
	randomL  int64
	sent     int64
	marked   int64
	red      *redState
	schedule []RateStep
}

type queuedPacket struct {
	p        Packet
	enqueued float64
}

// NewLink attaches a bottleneck link to the simulator. The rng drives the
// random-loss process only.
func NewLink(sim *Simulator, cfg LinkConfig, r *rng.Rand) (*Link, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	l := &Link{sim: sim, cfg: cfg, rand: r}
	if cfg.AQM == AQMRED {
		l.red = &redState{cfg: cfg.RED.withDefaults()}
	}
	return l, nil
}

// RateStep changes the link rate at a point in time (a bandwidth trace in
// the Pantheon/mahimahi style). Steps must be sorted by At.
type RateStep struct {
	At       float64 // seconds
	RateMbps float64
}

// SetRateSchedule installs a time-varying bandwidth trace. The configured
// RateMbps applies before the first step. Steps with non-positive rates
// are rejected.
func (l *Link) SetRateSchedule(steps []RateStep) error {
	for i, st := range steps {
		if st.RateMbps <= 0 {
			return fmt.Errorf("netsim: rate step %d has non-positive rate %v", i, st.RateMbps)
		}
		if i > 0 && steps[i].At < steps[i-1].At {
			return fmt.Errorf("netsim: rate steps not sorted at %d", i)
		}
	}
	l.schedule = append([]RateStep(nil), steps...)
	return nil
}

// currentRate returns the link rate in Mbps at time t.
func (l *Link) currentRate(t float64) float64 {
	rate := l.cfg.RateMbps
	for _, st := range l.schedule {
		if st.At > t {
			break
		}
		rate = st.RateMbps
	}
	return rate
}

// Config returns the link configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// QueueLen returns the number of packets waiting (excluding the one in
// transmission).
func (l *Link) QueueLen() int { return len(l.queue) }

// Drops returns total packets dropped (random + overflow).
func (l *Link) Drops() int64 { return l.dropped }

// Delivered returns total packets delivered to the far end.
func (l *Link) Delivered() int64 { return l.sent }

// Marked returns total packets ECN-marked by the AQM.
func (l *Link) Marked() int64 { return l.marked }

// transmissionTime returns the serialization time of a packet starting
// transmission now (rate traces change it over time).
func (l *Link) transmissionTime(size int) float64 {
	return float64(size*8) / (l.currentRate(l.sim.Now()) * 1e6)
}

// Send enqueues a packet. It returns false if the packet was dropped
// immediately (random loss or full buffer); drops are also reported via
// OnDrop.
func (l *Link) Send(p Packet) bool {
	if l.cfg.LossRate > 0 && l.rand.Bool(l.cfg.LossRate) {
		l.dropped++
		l.randomL++
		if l.OnDrop != nil {
			l.OnDrop(p, true)
		}
		return false
	}
	if l.red != nil {
		switch l.red.onArrival(len(l.queue), l.rand.Float64) {
		case redDrop:
			l.dropped++
			if l.OnDrop != nil {
				l.OnDrop(p, false)
			}
			return false
		case redMark:
			p.ECN = true
			l.marked++
		}
	}
	if len(l.queue) >= l.cfg.QueuePackets {
		l.dropped++
		if l.OnDrop != nil {
			l.OnDrop(p, false)
		}
		return false
	}
	l.queue = append(l.queue, queuedPacket{p: p, enqueued: l.sim.Now()})
	if !l.busy {
		l.transmitNext()
	}
	return true
}

// transmitNext starts serializing the head-of-line packet.
func (l *Link) transmitNext() {
	if len(l.queue) == 0 {
		l.busy = false
		return
	}
	l.busy = true
	qp := l.queue[0]
	l.queue = l.queue[1:]
	queueDelay := l.sim.Now() - qp.enqueued
	tx := l.transmissionTime(qp.p.Size)
	l.sim.Schedule(tx, func() {
		// Serialization finished: the packet departs; propagation happens
		// in parallel with the next packet's serialization.
		l.sim.Schedule(l.cfg.DelayMs/1e3, func() {
			l.sent++
			if l.Deliver != nil {
				l.Deliver(qp.p, queueDelay+tx)
			}
		})
		l.transmitNext()
	})
}

// BDPPackets returns the bandwidth-delay product of the link in packets of
// the given size (rounded up, at least 1).
func (c LinkConfig) BDPPackets(packetSize int) int {
	bdpBits := c.RateMbps * 1e6 * (2 * c.DelayMs / 1e3)
	pkts := int(math.Ceil(bdpBits / float64(packetSize*8)))
	if pkts < 1 {
		pkts = 1
	}
	return pkts
}
