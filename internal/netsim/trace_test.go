package netsim

import (
	"math"
	"testing"

	"github.com/netml/alefb/internal/netsim/cc"
	"github.com/netml/alefb/internal/rng"
)

func TestGenerateCellularTraceShape(t *testing.T) {
	r := rng.New(1)
	steps, err := GenerateCellularTrace(TraceConfig{Duration: 10, MeanMbps: 20}, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) < 90 {
		t.Fatalf("trace has %d steps for 10 s at 0.1 s interval", len(steps))
	}
	for i, st := range steps {
		if st.RateMbps <= 0 {
			t.Fatalf("step %d rate %v", i, st.RateMbps)
		}
		if i > 0 && st.At <= steps[i-1].At {
			t.Fatalf("steps not increasing at %d", i)
		}
	}
	// The long-run mean should be near the configured mean.
	mean := TraceMeanMbps(steps, 10)
	if math.Abs(mean-20) > 5 {
		t.Fatalf("trace mean %.2f, want ~20", mean)
	}
	// The trace must actually vary.
	varies := false
	for i := 1; i < len(steps); i++ {
		if math.Abs(steps[i].RateMbps-steps[0].RateMbps) > 1 {
			varies = true
			break
		}
	}
	if !varies {
		t.Fatal("trace is flat")
	}
}

func TestGenerateCellularTraceValidation(t *testing.T) {
	r := rng.New(2)
	if _, err := GenerateCellularTrace(TraceConfig{Duration: 0, MeanMbps: 10}, r); err == nil {
		t.Fatal("zero duration accepted")
	}
	if _, err := GenerateCellularTrace(TraceConfig{Duration: 5, MeanMbps: 0}, r); err == nil {
		t.Fatal("zero mean accepted")
	}
}

func TestTraceFloor(t *testing.T) {
	r := rng.New(3)
	steps, err := GenerateCellularTrace(TraceConfig{
		Duration: 20, MeanMbps: 5, Volatility: 2, MinMbps: 1,
	}, r)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range steps {
		if st.RateMbps < 1 {
			t.Fatalf("rate %v below floor", st.RateMbps)
		}
	}
}

func TestTraceMeanMbps(t *testing.T) {
	steps := []RateStep{{At: 0, RateMbps: 10}, {At: 5, RateMbps: 20}}
	if got := TraceMeanMbps(steps, 10); got != 15 {
		t.Fatalf("mean = %v, want 15", got)
	}
	if got := TraceMeanMbps(nil, 10); got != 0 {
		t.Fatalf("empty mean = %v", got)
	}
	// First step later than 0: its rate backfills the gap.
	steps = []RateStep{{At: 5, RateMbps: 10}}
	if got := TraceMeanMbps(steps, 10); got != 10 {
		t.Fatalf("backfilled mean = %v", got)
	}
}

func TestProtocolsSurviveVariableRate(t *testing.T) {
	// End-to-end: every protocol must keep working over a fluctuating
	// cellular-like link without crashing or stalling completely.
	r := rng.New(4)
	trace, err := GenerateCellularTrace(TraceConfig{Duration: 4, MeanMbps: 15}, r)
	if err != nil {
		t.Fatal(err)
	}
	for name, factory := range cc.Registry(1500) {
		sim := NewSimulator()
		link, err := NewLink(sim, LinkConfig{RateMbps: 15, DelayMs: 20, QueuePackets: 150}, rng.New(5))
		if err != nil {
			t.Fatal(err)
		}
		if err := link.SetRateSchedule(trace); err != nil {
			t.Fatal(err)
		}
		f := &Flow{
			id: 0, sim: sim, link: link, proto: factory(),
			pktSize: 1500, stopAt: 4, warmup: 0.5, srtt: 0.04,
		}
		link.Deliver = func(p Packet, qd float64) { f.onDeliver(p, qd) }
		link.OnDrop = func(p Packet, random bool) { f.onDrop(p) }
		sim.Schedule(0, f.start)
		sim.Run(4)
		if f.acked == 0 {
			t.Errorf("%s delivered nothing over a variable-rate link", name)
		}
	}
}
