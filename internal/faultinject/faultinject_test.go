package faultinject

import (
	"testing"
	"time"
)

func TestNilInjectorIsNoOp(t *testing.T) {
	var in *Injector
	if in.Fit(0) != None || in.Slow(3) != 0 || in.UnitFails(1) || in.Crash(0) {
		t.Fatal("nil injector injected something")
	}
	if in.HTTPFault(0) != None || in.HTTPLatency(0) != 0 || in.RetrainFails(1) {
		t.Fatal("nil injector injected an HTTP fault")
	}
	if in.SchedulerStall(0) != nil || in.RetrainFailsFor("m", 1) {
		t.Fatal("nil injector injected a scheduler fault")
	}
}

func TestZeroValueIsNoOp(t *testing.T) {
	var in Injector
	if in.Fit(0) != None || in.Slow(0) != 0 || in.UnitFails(0) || in.Crash(0) {
		t.Fatal("zero-value injector injected something")
	}
	if in.HTTPFault(0) != None || in.HTTPLatency(0) != 0 || in.RetrainFails(0) {
		t.Fatal("zero-value injector injected an HTTP fault")
	}
	if in.SchedulerStall(0) != nil || in.RetrainFailsFor("m", 0) {
		t.Fatal("zero-value injector injected a scheduler fault")
	}
}

func TestConfiguredHTTPFaults(t *testing.T) {
	in := New().
		WithHTTPFault(4, Panic).
		WithHTTPFault(7, Error).
		WithHTTPLatency(2, 150*time.Millisecond).
		WithRetrainFail(1).
		WithRetrainFail(3)
	if in.HTTPFault(4) != Panic || in.HTTPFault(7) != Error || in.HTTPFault(0) != None {
		t.Fatal("HTTP faults misrouted")
	}
	if in.HTTPLatency(2) != 150*time.Millisecond || in.HTTPLatency(4) != 0 {
		t.Fatal("HTTP latency misrouted")
	}
	if !in.RetrainFails(1) || in.RetrainFails(2) || !in.RetrainFails(3) {
		t.Fatal("retrain failures misrouted")
	}
}

func TestSchedulerStallAndScopedRetrainFaults(t *testing.T) {
	gate := make(chan struct{})
	in := New().
		WithSchedulerStall(2, gate).
		WithRetrainFailFor("tenant-b", 1)
	if in.SchedulerStall(2) == nil || in.SchedulerStall(0) != nil || in.SchedulerStall(1) != nil {
		t.Fatal("scheduler stall gates misrouted")
	}
	if !in.RetrainFailsFor("tenant-b", 1) || in.RetrainFailsFor("tenant-b", 2) || in.RetrainFailsFor("other", 1) {
		t.Fatal("scoped retrain failures misrouted")
	}
	// The global map still applies through the scoped accessor.
	in.WithRetrainFail(3)
	if !in.RetrainFailsFor("anything", 3) {
		t.Fatal("global retrain failure not honored by scoped accessor")
	}
}

func TestConfiguredFaults(t *testing.T) {
	in := New().
		WithFit(2, Panic).
		WithFit(5, NaN).
		WithSlowFit(3, 40*time.Millisecond).
		WithFailUnit(2).
		WithCrashBefore(1)
	if in.Fit(2) != Panic || in.Fit(5) != NaN || in.Fit(0) != None {
		t.Fatal("fit faults misrouted")
	}
	if in.Slow(3) != 40*time.Millisecond || in.Slow(2) != 0 {
		t.Fatal("slow faults misrouted")
	}
	if !in.UnitFails(2) || in.UnitFails(1) {
		t.Fatal("unit faults misrouted")
	}
	if !in.Crash(1) || in.Crash(0) || in.Crash(2) {
		t.Fatal("crash trigger misrouted")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{None: "none", Panic: "panic", Error: "error", NaN: "nan", Drop: "drop"} {
		if k.String() != want {
			t.Fatalf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}
