// Package faultinject provides deterministic fault injection for the
// robustness test suite. An *Injector is threaded into the AutoML search,
// the feedback loop and the experiment harness behind a nil no-op
// default: production code paths carry a nil injector and pay one nil
// check per injection point.
//
// Every injection point is keyed by a deterministic integer — the global
// candidate-evaluation index inside one AutoML search, the loop round, or
// the experiment trial index — never by wall clock or scheduling order,
// so an injected fault hits the exact same unit of work on every run and
// for every worker count. That is what lets the test suite make
// bit-identical claims about degraded runs.
//
// Injectors are configured once (the With* builders) and then only read,
// possibly from many worker goroutines at once; mutating an injector
// while a run uses it is a data race by design, as a mutex on the hot
// path would be pure overhead for the nil production case.
package faultinject

import (
	"errors"
	"time"
)

// ErrInjected is the error surfaced by Error-kind fit faults.
var ErrInjected = errors.New("faultinject: injected fault")

// ErrSimulatedCrash is returned by harness code when a crash-before-trial
// injection fires, standing in for the process dying mid-run. Tests treat
// it exactly like a kill: re-run with resume and compare outputs.
var ErrSimulatedCrash = errors.New("faultinject: simulated crash")

// Kind selects what happens to a faulted candidate fit.
type Kind int

const (
	// None leaves the fit untouched.
	None Kind = iota
	// Panic makes the fit panic, exercising panic isolation.
	Panic
	// Error makes the fit return ErrInjected.
	Error
	// NaN lets the fit succeed but forces the candidate's score to NaN,
	// exercising the NaN-drop path.
	NaN
	// Drop silently skips the candidate as if it had never been proposed.
	// It is the control arm of the degradation equivalence tests: a run
	// with Panic at index i must be bit-identical to a run with Drop at i.
	Drop
)

// String names the kind for logs.
func (k Kind) String() string {
	switch k {
	case Panic:
		return "panic"
	case Error:
		return "error"
	case NaN:
		return "nan"
	case Drop:
		return "drop"
	default:
		return "none"
	}
}

// Injector holds the configured faults. The zero value and the nil
// pointer both inject nothing.
type Injector struct {
	fit      map[int]Kind
	slow     map[int]time.Duration
	failUnit map[int]bool
	// crashBefore holds the crash trial index + 1, so the zero value
	// (and the nil pointer) means "never crash".
	crashBefore int

	// HTTP-layer fault points for the serving chaos suite. They are keyed
	// by the server's request sequence number — the order requests were
	// admitted to the handler chain — which is deterministic whenever the
	// test drives requests sequentially, and by the retrain attempt index
	// for retrain failures. Same contract as the fit faults: nil/zero
	// injects nothing, configure-then-read only.
	httpFault   map[int]Kind
	httpSlow    map[int]time.Duration
	retrainFail map[int]bool
	// retrainFailFor scopes retrain failures to one named model, so the
	// cross-tenant isolation suite can fail tenant B's attempt n while
	// tenant A retrains cleanly. The plain retrainFail map applies to
	// every model (the single-tenant behavior).
	retrainFailFor map[string]map[int]bool

	// WAL-layer fault points for the durable feedback store. They are
	// keyed by the store's record sequence number (0-based, monotone
	// across compactions) and by the store's fsync call count, both
	// deterministic for a fixed append order, so chaos tests can tear a
	// write-ahead log at an exact record without OS tricks. Same contract
	// as every other point: nil/zero injects nothing.
	walFault    map[int]Kind
	fsyncFault  map[int]bool
	replayFault map[int]bool

	// Snapshot-store fault points for the durable model store. Writes
	// are keyed by the snapshot version being persisted (deterministic:
	// versions are allocated monotonically per model); loads are keyed
	// by the store's load call count (0-based across LoadLatest and
	// LoadVersion decodes). Error fails a write cleanly before any byte
	// reaches the final path; Panic leaves a torn prefix at the final
	// path, as if the process died mid-write — recovery must skip it and
	// fall back to the prior version. Same contract as every other
	// point: nil/zero injects nothing.
	snapWrite map[int64]Kind
	snapLoad  map[int]bool

	// schedStall gates the predict micro-batch scheduler: the leader of
	// coalesced batch n keeps the batch open — ignoring the fast
	// everyone-joined flush — until the gate channel closes, the row cap
	// fills, or the batch-delay timer fires. Tests use it to pile a known
	// set of concurrent requests into one batch, or (with a gate that
	// never closes) to force the timer flush path, without wall-clock
	// sleeps. Keyed by the per-model batch sequence number.
	schedStall map[int]<-chan struct{}
}

// New returns an empty injector.
func New() *Injector {
	return &Injector{}
}

// WithFit arranges for candidate-evaluation index idx to suffer fault k.
func (in *Injector) WithFit(idx int, k Kind) *Injector {
	if in.fit == nil {
		in.fit = map[int]Kind{}
	}
	in.fit[idx] = k
	return in
}

// WithSlowFit makes candidate idx's fit sleep for d before running,
// deterministically simulating a straggler for per-candidate budgets.
func (in *Injector) WithSlowFit(idx int, d time.Duration) *Injector {
	if in.slow == nil {
		in.slow = map[int]time.Duration{}
	}
	in.slow[idx] = d
	return in
}

// WithFailUnit makes coarse unit n (a feedback-loop round, a retrain) fail
// with ErrInjected, exercising unit-level degradation.
func (in *Injector) WithFailUnit(n int) *Injector {
	if in.failUnit == nil {
		in.failUnit = map[int]bool{}
	}
	in.failUnit[n] = true
	return in
}

// WithCrashBefore makes the experiment harness return ErrSimulatedCrash
// before executing trial n (0-based), simulating a process kill between
// checkpoints.
func (in *Injector) WithCrashBefore(trial int) *Injector {
	in.crashBefore = trial + 1
	return in
}

// WithHTTPFault arranges for the HTTP request with sequence number seq to
// suffer fault k inside the handler chain: Panic makes the handler panic
// (exercising panic isolation into a structured error response), Error
// forces a 5xx before the real handler runs. NaN and Drop have no
// HTTP meaning and are ignored by the server.
func (in *Injector) WithHTTPFault(seq int, k Kind) *Injector {
	if in.httpFault == nil {
		in.httpFault = map[int]Kind{}
	}
	in.httpFault[seq] = k
	return in
}

// WithHTTPLatency makes the HTTP request with sequence number seq stall
// for d before its handler runs, deterministically simulating a slow
// handler for overload and drain tests.
func (in *Injector) WithHTTPLatency(seq int, d time.Duration) *Injector {
	if in.httpSlow == nil {
		in.httpSlow = map[int]time.Duration{}
	}
	in.httpSlow[seq] = d
	return in
}

// WithRetrainFail makes the serving layer's retrain attempt n (1-based)
// fail with ErrInjected instead of running the AutoML search, exercising
// last-good snapshot serving and the retrain circuit breaker.
func (in *Injector) WithRetrainFail(n int) *Injector {
	if in.retrainFail == nil {
		in.retrainFail = map[int]bool{}
	}
	in.retrainFail[n] = true
	return in
}

// WithRetrainFailFor makes retrain attempt n (1-based) of the named
// model fail with ErrInjected, leaving every other model's retrains
// untouched.
func (in *Injector) WithRetrainFailFor(model string, n int) *Injector {
	if in.retrainFailFor == nil {
		in.retrainFailFor = map[string]map[int]bool{}
	}
	if in.retrainFailFor[model] == nil {
		in.retrainFailFor[model] = map[int]bool{}
	}
	in.retrainFailFor[model][n] = true
	return in
}

// WithSchedulerStall holds coalesced predict batch n (0-based, per
// model) open until gate closes. While stalled the batch leader still
// honors the row cap and the MaxBatchDelay timer — a gate that never
// closes is exactly how the timer flush path is pinned deterministically.
// Nil/zero injects nothing, like every other fault point.
func (in *Injector) WithSchedulerStall(batch int, gate <-chan struct{}) *Injector {
	if in.schedStall == nil {
		in.schedStall = map[int]<-chan struct{}{}
	}
	in.schedStall[batch] = gate
	return in
}

// WithWALFault arranges for the append of WAL record rec (0-based store
// sequence number) to fail: Error fails cleanly before any byte reaches
// the log; Panic writes a torn prefix of the frame and then fails, as if
// the process died mid-write — replay on reopen must truncate the torn
// tail. Other kinds have no WAL meaning and are ignored.
func (in *Injector) WithWALFault(rec int, k Kind) *Injector {
	if in.walFault == nil {
		in.walFault = map[int]Kind{}
	}
	in.walFault[rec] = k
	return in
}

// WithFsyncFault makes the feedback store's n-th fsync call (0-based,
// counting data and checkpoint syncs alike) fail with ErrInjected,
// exercising the fsync-failure-is-fatal policy: the store marks itself
// dirty and refuses further appends until reopened.
func (in *Injector) WithFsyncFault(n int) *Injector {
	if in.fsyncFault == nil {
		in.fsyncFault = map[int]bool{}
	}
	in.fsyncFault[n] = true
	return in
}

// WithSnapshotWriteFault arranges for the persist of snapshot version v
// to fail: Error fails cleanly with nothing durable written; Panic
// leaves a torn prefix of the snapshot at its final path before
// failing, simulating a crash mid-write. Other kinds are ignored.
func (in *Injector) WithSnapshotWriteFault(v int64, k Kind) *Injector {
	if in.snapWrite == nil {
		in.snapWrite = map[int64]Kind{}
	}
	in.snapWrite[v] = k
	return in
}

// WithSnapshotLoadFault makes the model store's n-th snapshot decode
// (0-based load call count) fail as if the file were corrupt, driving
// the fall-back-to-prior-version recovery path without editing bytes on
// disk.
func (in *Injector) WithSnapshotLoadFault(n int) *Injector {
	if in.snapLoad == nil {
		in.snapLoad = map[int]bool{}
	}
	in.snapLoad[n] = true
	return in
}

// WithWALReplayFault makes replay fail with ErrInjected when it reaches
// WAL record rec, exercising the open-time error path (a present but
// unreadable log must surface, never be silently skipped).
func (in *Injector) WithWALReplayFault(rec int) *Injector {
	if in.replayFault == nil {
		in.replayFault = map[int]bool{}
	}
	in.replayFault[rec] = true
	return in
}

// Fit reports the fault for candidate-evaluation index idx. Nil-safe.
func (in *Injector) Fit(idx int) Kind {
	if in == nil {
		return None
	}
	return in.fit[idx]
}

// Slow reports the injected fit delay for candidate idx (0 none). Nil-safe.
func (in *Injector) Slow(idx int) time.Duration {
	if in == nil {
		return 0
	}
	return in.slow[idx]
}

// UnitFails reports whether coarse unit n should fail. Nil-safe.
func (in *Injector) UnitFails(n int) bool {
	return in != nil && in.failUnit[n]
}

// Crash reports whether the harness should simulate a crash before trial
// n. Nil-safe.
func (in *Injector) Crash(trial int) bool {
	return in != nil && in.crashBefore > 0 && trial == in.crashBefore-1
}

// HTTPFault reports the handler fault for request sequence number seq.
// Nil-safe.
func (in *Injector) HTTPFault(seq int) Kind {
	if in == nil {
		return None
	}
	return in.httpFault[seq]
}

// HTTPLatency reports the injected handler delay for request sequence
// number seq (0 none). Nil-safe.
func (in *Injector) HTTPLatency(seq int) time.Duration {
	if in == nil {
		return 0
	}
	return in.httpSlow[seq]
}

// RetrainFails reports whether retrain attempt n (1-based) should fail.
// Nil-safe.
func (in *Injector) RetrainFails(n int) bool {
	return in != nil && in.retrainFail[n]
}

// RetrainFailsFor reports whether the named model's retrain attempt n
// should fail, honoring both the model-scoped and the global maps.
// Nil-safe.
func (in *Injector) RetrainFailsFor(model string, n int) bool {
	if in == nil {
		return false
	}
	return in.retrainFail[n] || in.retrainFailFor[model][n]
}

// WALFault reports the append fault for WAL record rec. Nil-safe.
func (in *Injector) WALFault(rec int) Kind {
	if in == nil {
		return None
	}
	return in.walFault[rec]
}

// FsyncFault reports whether the store's n-th fsync should fail. Nil-safe.
func (in *Injector) FsyncFault(n int) bool {
	return in != nil && in.fsyncFault[n]
}

// SnapshotWriteFault reports the persist fault for snapshot version v.
// Nil-safe.
func (in *Injector) SnapshotWriteFault(v int64) Kind {
	if in == nil {
		return None
	}
	return in.snapWrite[v]
}

// SnapshotLoadFault reports whether the n-th snapshot decode should be
// treated as corrupt. Nil-safe.
func (in *Injector) SnapshotLoadFault(n int) bool {
	return in != nil && in.snapLoad[n]
}

// WALReplayFault reports whether replay should fail at record rec.
// Nil-safe.
func (in *Injector) WALReplayFault(rec int) bool {
	return in != nil && in.replayFault[rec]
}

// SchedulerStall reports the stall gate for coalesced batch n, nil when
// the batch runs unstalled. Nil-safe.
func (in *Injector) SchedulerStall(batch int) <-chan struct{} {
	if in == nil {
		return nil
	}
	return in.schedStall[batch]
}
