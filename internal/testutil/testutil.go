// Package testutil holds small helpers shared by the robustness test
// suites. It must not import any other internal package: the helpers are
// used from tests in parallel, automl, core and serve, and a dependency
// in the other direction would create an import cycle.
package testutil

import (
	"runtime"
	"testing"
	"time"
)

// LeakCheck snapshots the current goroutine count and returns a verify
// function to run at the end of the test (typically deferred). The verify
// function polls for up to two seconds while the runtime retires exiting
// goroutines, and fails the test if the count never returns to within two
// goroutines of the snapshot — the same tolerance the deadline tests in
// automl and parallel historically used inline, which absorbs the
// finalizer and timer goroutines the runtime may start lazily.
//
// Usage:
//
//	defer testutil.LeakCheck(t)()
//	// ... test body that starts and must drain goroutines ...
func LeakCheck(tb testing.TB) func() {
	tb.Helper()
	before := runtime.NumGoroutine()
	return func() {
		tb.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for {
			n := runtime.NumGoroutine()
			if n <= before+2 {
				return
			}
			if time.Now().After(deadline) {
				tb.Fatalf("testutil: goroutines leaked: %d before, %d after", before, n)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}
