// Package screamset generates the paper's "Scream vs rest" dataset (§2.1
// example 2, §4 Datasets) from the packet-level emulator instead of the
// Pantheon testbed.
//
// Each data point is a network condition — bottleneck bandwidth, one-way
// propagation latency, random loss rate, and the number of concurrent
// flows — and the binary label says whether the SCReAM-like protocol
// achieves the lowest end-to-end latency there among all protocols that
// still deliver reasonable throughput. Because the label comes from
// running the emulator, the feedback loop can ask for *any* point in the
// feature space and get a ground-truth label, exactly the "user has
// complete control and can collect any data" setting of §4.
package screamset

import (
	"fmt"
	"math"

	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/netsim"
	"github.com/netml/alefb/internal/netsim/cc"
	"github.com/netml/alefb/internal/rng"
)

// Feature indices into the schema.
const (
	FeatLinkRate = iota // config.link_rate, Mbps
	FeatDelay           // one-way propagation delay, ms
	FeatLoss            // i.i.d. loss rate
	FeatFlows           // concurrent flows
	numFeatures
)

// Class labels.
const (
	LabelOther  = 0 // some other protocol wins
	LabelScream = 1 // SCReAM achieves the lowest latency
)

// Schema returns the dataset schema with the paper's feature ranges.
// Figure 1's x-axis (link rate 0..~130 Mbps) fixes the first range.
func Schema() *data.Schema {
	return &data.Schema{
		Features: []data.Feature{
			{Name: "config.link_rate", Min: 1, Max: 130},
			{Name: "config.delay_ms", Min: 5, Max: 100},
			{Name: "config.loss_rate", Min: 0, Max: 0.04},
			{Name: "config.flows", Min: 1, Max: 8, Integer: true},
		},
		Classes: []string{"other", "scream"},
	}
}

// Generator labels network conditions by emulation.
type Generator struct {
	// Duration is the emulated seconds per protocol run. Zero (the
	// default) scales with the path RTT: 25 RTTs clamped to [1.5 s, 4 s],
	// enough for every protocol to leave its ramp-up phase.
	Duration float64
	// PacketSize in bytes. Zero (the default) scales with the link rate
	// so that the packet rate stays near 1200 packets/s, bounding the
	// event count per run without changing the protocols' dynamics in
	// packet units.
	PacketSize int
	// MinThroughputFraction disqualifies protocols below this fraction of
	// the best protocol's throughput before latency is compared (default
	// 0.6). Without it a protocol could "win" on latency by barely
	// sending.
	MinThroughputFraction float64
	// WinMargin is the relative latency advantage SCReAM needs over the
	// best other qualifying protocol for the point to be labelled
	// "scream" (default 0.1): deploying a niche protocol is only worth it
	// when it clearly wins, and the strict label reproduces the label
	// imbalance the paper reports for this dataset.
	WinMargin float64
	// MeasurementNoise makes every Label call an independent measurement
	// (a fresh emulation seed), as collecting a point on a real testbed
	// would be: conditions near the protocol-choice boundary get
	// unreliable labels. Disable it to make Label a pure function of the
	// condition. NewGenerator enables it.
	MeasurementNoise bool

	// nonce counts labelling measurements when MeasurementNoise is on.
	nonce uint64
	// BaseSeed decorrelates the emulator's loss processes from everything
	// else while keeping labels deterministic per point.
	BaseSeed uint64
}

// NewGenerator returns a Generator with the defaults used throughout the
// evaluation (auto-scaled duration and packet size).
func NewGenerator(baseSeed uint64) *Generator {
	return &Generator{
		MinThroughputFraction: 0.6,
		WinMargin:             0.1,
		MeasurementNoise:      true,
		BaseSeed:              baseSeed,
	}
}

// Fork returns a copy of g with its own measurement stream, a pure
// function of (g.BaseSeed, stream) rather than of how many measurements g
// has performed so far. Trial-level checkpointing depends on this: a
// resumed experiment skips completed trials' Label calls, so each trial
// must label through a forked generator or the later trials would see a
// shifted noise stream.
func (g *Generator) Fork(stream uint64) *Generator {
	c := *g
	c.nonce = 0
	c.BaseSeed = g.BaseSeed ^ (stream+1)*0x9e3779b97f4a7c15
	return &c
}

// durationFor returns the emulated seconds for a path: the configured
// Duration if set, else 25 RTTs clamped to [1.5 s, 4 s].
func (g *Generator) durationFor(delayMs float64) float64 {
	if g.Duration > 0 {
		return g.Duration
	}
	d := 25 * (2 * delayMs / 1e3)
	if d < 1.5 {
		d = 1.5
	}
	if d > 4 {
		d = 4
	}
	return d
}

// packetSizeFor returns the packet size for a link: the configured
// PacketSize if set, else scaled so the link carries ~1200 packets/s,
// clamped to [1500 B, 15000 B].
func (g *Generator) packetSizeFor(rateMbps float64) int {
	if g.PacketSize > 0 {
		return g.PacketSize
	}
	p := int(rateMbps * 1e6 / 8 / 1200)
	if p < 1500 {
		p = 1500
	}
	if p > 15000 {
		p = 15000
	}
	return p
}

// queueFor derives the droptail buffer from the condition: four times the
// BDP (a bufferbloat-prone deployment), clamped to a realistic range. It is intentionally NOT a feature — the
// paper's feature set is (bandwidth, latency, loss, flows) — so it adds no
// information the model could not see.
func (g *Generator) queueFor(link netsim.LinkConfig, pktSize int) int {
	q := 4 * link.BDPPackets(pktSize)
	if q < 40 {
		q = 40
	}
	if q > 1200 {
		q = 1200
	}
	return q
}

// linkFor converts a feature row into a link configuration plus the flow
// count and packet size for the run.
func (g *Generator) linkFor(x []float64) (link netsim.LinkConfig, flows, pktSize int, err error) {
	if len(x) != numFeatures {
		return netsim.LinkConfig{}, 0, 0, fmt.Errorf("screamset: row has %d features, want %d", len(x), numFeatures)
	}
	link = netsim.LinkConfig{
		RateMbps: x[FeatLinkRate],
		DelayMs:  x[FeatDelay],
		LossRate: x[FeatLoss],
	}
	pktSize = g.packetSizeFor(link.RateMbps)
	link.QueuePackets = g.queueFor(link, pktSize)
	flows = int(math.Round(x[FeatFlows]))
	if flows < 1 {
		flows = 1
	}
	if err := link.Validate(); err != nil {
		return netsim.LinkConfig{}, 0, 0, err
	}
	return link, flows, pktSize, nil
}

// ProtocolResult pairs a protocol name with its emulation outcome.
type ProtocolResult struct {
	Name      string
	Result    netsim.Result
	Qualified bool
}

// Evaluate runs every protocol under the given network condition and
// returns the winner plus per-protocol results. The winner is the
// qualifying protocol (throughput >= MinThroughputFraction of the best)
// with the lowest mean one-way delay.
func (g *Generator) Evaluate(x []float64) (winner string, results []ProtocolResult, err error) {
	link, flows, pktSize, err := g.linkFor(x)
	if err != nil {
		return "", nil, err
	}
	seed := g.BaseSeed ^ hashRow(x)
	if g.MeasurementNoise {
		// Each measurement is a fresh testbed run: mix in a counter so
		// repeated labelling of the same condition sees independent loss
		// realizations and start jitter.
		g.nonce++
		z := g.nonce * 0x9e3779b97f4a7c15
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		seed ^= z ^ (z >> 27)
	}
	reg := cc.Registry(pktSize)
	duration := g.durationFor(link.DelayMs)
	bestThroughput := 0.0
	for _, name := range cc.Names() {
		res, err := netsim.Run(netsim.Config{
			Link:       link,
			Flows:      flows,
			Protocol:   reg[name],
			PacketSize: pktSize,
			Duration:   duration,
			Seed:       seed, // same loss process for every protocol
		})
		if err != nil {
			return "", nil, fmt.Errorf("screamset: %s under %+v: %w", name, link, err)
		}
		results = append(results, ProtocolResult{Name: name, Result: res})
		if res.TotalThroughputMbps > bestThroughput {
			bestThroughput = res.TotalThroughputMbps
		}
	}
	minTp := g.MinThroughputFraction * bestThroughput
	bestDelay := math.Inf(1)
	for i := range results {
		r := &results[i]
		r.Qualified = r.Result.TotalThroughputMbps >= minTp && r.Result.TotalThroughputMbps > 0
		if r.Qualified && r.Result.MeanOWDMs < bestDelay {
			bestDelay = r.Result.MeanOWDMs
			winner = r.Name
		}
	}
	if winner == "" {
		winner = results[0].Name // nothing qualified: degenerate tie
	}
	return winner, results, nil
}

// Label implements the oracle interface used by the feedback loop: 1 iff
// SCReAM wins with at least WinMargin relative latency advantage over the
// best other qualifying protocol.
func (g *Generator) Label(x []float64) int {
	winner, results, err := g.Evaluate(x)
	if err != nil || winner != "scream" {
		return LabelOther
	}
	var screamDelay float64
	bestOther := math.Inf(1)
	for _, r := range results {
		if r.Name == "scream" {
			screamDelay = r.Result.MeanOWDMs
			continue
		}
		if r.Qualified && r.Result.MeanOWDMs < bestOther {
			bestOther = r.Result.MeanOWDMs
		}
	}
	if math.IsInf(bestOther, 1) {
		return LabelScream // nothing else qualified at all
	}
	if screamDelay < bestOther*(1-g.WinMargin) {
		return LabelScream
	}
	return LabelOther
}

// SampleCondition draws one network condition uniformly over the schema's
// feature ranges.
func SampleCondition(r *rng.Rand) []float64 {
	s := Schema()
	x := make([]float64, numFeatures)
	for j, f := range s.Features {
		v := r.Uniform(f.Min, f.Max)
		if f.Integer {
			v = math.Round(v)
		}
		x[j] = v
	}
	return x
}

// SampleProduction draws one network condition from a production-like
// distribution rather than uniformly: the developer of §2.2 collects data
// from the paths their application actually traverses — mid-range link
// rates, moderate-to-high delays, low loss, few concurrent flows — and
// "miss[es] observing unique cases". Link-rate extremes are rare here,
// which is what makes the committee disagree at low and high rates
// (Figure 1's x <= 45 ∪ x >= 99 regions).
func SampleProduction(r *rng.Rand) []float64 {
	s := Schema()
	clamp := func(v float64, f data.Feature) float64 {
		if v < f.Min {
			v = f.Min
		}
		if v > f.Max {
			v = f.Max
		}
		if f.Integer {
			v = math.Round(v)
		}
		return v
	}
	x := make([]float64, numFeatures)
	x[FeatLinkRate] = clamp(r.Normal(65, 22), s.Features[FeatLinkRate])
	x[FeatDelay] = clamp(r.Normal(55, 20), s.Features[FeatDelay])
	x[FeatLoss] = clamp(r.Exp(1/0.008), s.Features[FeatLoss])
	flowWeights := []float64{0, 0.25, 0.30, 0.20, 0.10, 0.05, 0.04, 0.03, 0.03}
	x[FeatFlows] = float64(r.Weighted(flowWeights))
	return x
}

// GenerateProduction draws n production-like conditions (SampleProduction)
// and labels each by emulation. This is the distribution the training and
// test sets come from in the evaluation; candidate pools use Generate
// (uniform) instead, as in the paper.
func (g *Generator) GenerateProduction(n int, r *rng.Rand) *data.Dataset {
	d := data.New(Schema())
	for i := 0; i < n; i++ {
		x := SampleProduction(r)
		d.Append(x, g.Label(x))
	}
	return d
}

// Generate draws n conditions uniformly and labels each by emulation.
func (g *Generator) Generate(n int, r *rng.Rand) *data.Dataset {
	d := data.New(Schema())
	for i := 0; i < n; i++ {
		x := SampleCondition(r)
		d.Append(x, g.Label(x))
	}
	return d
}

// hashRow derives a deterministic 64-bit seed from a feature row (FNV-1a
// over the float bit patterns), so the same condition always sees the same
// loss realization.
func hashRow(x []float64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, v := range x {
		bits := math.Float64bits(v)
		for s := 0; s < 64; s += 8 {
			h ^= (bits >> s) & 0xff
			h *= prime
		}
	}
	return h
}
