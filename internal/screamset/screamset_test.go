package screamset

import (
	"math"
	"testing"

	"github.com/netml/alefb/internal/netsim"
	"github.com/netml/alefb/internal/rng"
)

func fastGen(seed uint64) *Generator {
	g := NewGenerator(seed)
	g.Duration = 1.0
	g.MeasurementNoise = false
	return g
}

func TestSchemaShape(t *testing.T) {
	s := Schema()
	if s.NumFeatures() != numFeatures {
		t.Fatalf("features = %d", s.NumFeatures())
	}
	if s.NumClasses() != 2 {
		t.Fatalf("classes = %d", s.NumClasses())
	}
	if s.Features[FeatLinkRate].Name != "config.link_rate" {
		t.Fatal("link rate feature misnamed")
	}
	if !s.Features[FeatFlows].Integer {
		t.Fatal("flows must be an integer feature")
	}
}

func TestSampleConditionInRange(t *testing.T) {
	r := rng.New(1)
	s := Schema()
	for i := 0; i < 200; i++ {
		x := SampleCondition(r)
		for j, f := range s.Features {
			if x[j] < f.Min || x[j] > f.Max {
				t.Fatalf("feature %s = %v outside [%v,%v]", f.Name, x[j], f.Min, f.Max)
			}
		}
		if x[FeatFlows] != math.Round(x[FeatFlows]) {
			t.Fatal("flows not integral")
		}
	}
}

func TestLabelDeterministic(t *testing.T) {
	g := fastGen(7)
	x := []float64{40, 30, 0.005, 2}
	a := g.Label(x)
	b := g.Label(x)
	if a != b {
		t.Fatalf("same condition labelled %d then %d", a, b)
	}
}

func TestEvaluateReturnsAllProtocols(t *testing.T) {
	g := fastGen(3)
	winner, results, err := g.Evaluate([]float64{30, 25, 0.002, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("results for %d protocols, want 5", len(results))
	}
	found := false
	qualified := 0
	for _, r := range results {
		if r.Name == winner {
			found = true
			if !r.Qualified {
				t.Fatalf("winner %s not qualified", winner)
			}
		}
		if r.Qualified {
			qualified++
		}
		if r.Result.TotalThroughputMbps < 0 {
			t.Fatalf("%s: negative throughput", r.Name)
		}
	}
	if !found {
		t.Fatalf("winner %q not among results", winner)
	}
	if qualified == 0 {
		t.Fatal("no protocol qualified")
	}
}

func TestWinnerHasLowestQualifiedDelay(t *testing.T) {
	g := fastGen(5)
	winner, results, err := g.Evaluate([]float64{60, 40, 0.0, 3})
	if err != nil {
		t.Fatal(err)
	}
	var winnerDelay float64
	for _, r := range results {
		if r.Name == winner {
			winnerDelay = r.Result.MeanOWDMs
		}
	}
	for _, r := range results {
		if r.Qualified && r.Result.MeanOWDMs < winnerDelay-1e-9 {
			t.Fatalf("%s has lower delay (%.2f) than winner %s (%.2f)",
				r.Name, r.Result.MeanOWDMs, winner, winnerDelay)
		}
	}
}

func TestScreamWinsInBufferbloatConditions(t *testing.T) {
	// Deep buffers (derived from high BDP), no random loss: loss-based
	// protocols bloat the queue, the delay-sensitive protocols win.
	// Scream or vegas should take it; across a handful of such conditions
	// scream must win at least once (they are the two low-delay designs).
	g := NewGenerator(11) // auto duration: long enough to leave slow start
	g.MeasurementNoise = false
	screamWins := 0
	conditions := [][]float64{
		{60, 50, 0, 1},
		{80, 60, 0, 2},
		{50, 70, 0, 1},
		{100, 40, 0, 2},
		{70, 55, 0, 3},
	}
	for _, x := range conditions {
		winner, _, err := g.Evaluate(x)
		if err != nil {
			t.Fatal(err)
		}
		if winner == "scream" {
			screamWins++
		}
		if winner == "cubic" || winner == "reno" {
			t.Logf("note: loss-based %s won bufferbloat condition %v", winner, x)
		}
	}
	if screamWins == 0 {
		t.Fatal("scream never wins in bufferbloat-friendly conditions")
	}
}

func TestLabelsAreMixed(t *testing.T) {
	// Across a spread of conditions both labels must appear — otherwise
	// the learning problem is vacuous.
	g := fastGen(13)
	r := rng.New(17)
	counts := [2]int{}
	for i := 0; i < 30; i++ {
		x := SampleCondition(r)
		counts[g.Label(x)]++
	}
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("degenerate label distribution: %v", counts)
	}
}

func TestGenerate(t *testing.T) {
	g := fastGen(19)
	r := rng.New(23)
	d := g.Generate(15, r)
	if d.Len() != 15 {
		t.Fatalf("generated %d rows", d.Len())
	}
	for i, row := range d.X {
		if len(row) != numFeatures {
			t.Fatalf("row %d has %d features", i, len(row))
		}
		if d.Y[i] != LabelOther && d.Y[i] != LabelScream {
			t.Fatalf("row %d label %d", i, d.Y[i])
		}
	}
}

func TestLinkForRejectsBadRows(t *testing.T) {
	g := fastGen(29)
	if _, _, _, err := g.linkFor([]float64{1, 2}); err == nil {
		t.Fatal("short row accepted")
	}
	if _, _, _, err := g.linkFor([]float64{-5, 10, 0, 1}); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestQueueClamped(t *testing.T) {
	g := fastGen(31)
	small := g.queueFor(netsim.LinkConfig{RateMbps: 1, DelayMs: 5, QueuePackets: 1}, 1500)
	if small < 40 {
		t.Fatalf("queue %d below floor", small)
	}
	big := g.queueFor(netsim.LinkConfig{RateMbps: 130, DelayMs: 100, QueuePackets: 1}, 1500)
	if big > 1200 {
		t.Fatalf("queue %d above cap", big)
	}
}

func TestHashRowDistinct(t *testing.T) {
	a := hashRow([]float64{1, 2, 3, 4})
	b := hashRow([]float64{1, 2, 3, 5})
	c := hashRow([]float64{1, 2, 3, 4})
	if a == b {
		t.Fatal("different rows hash equal")
	}
	if a != c {
		t.Fatal("equal rows hash differently")
	}
}

func TestSampleProductionInRange(t *testing.T) {
	r := rng.New(41)
	s := Schema()
	for i := 0; i < 300; i++ {
		x := SampleProduction(r)
		for j, f := range s.Features {
			if x[j] < f.Min || x[j] > f.Max {
				t.Fatalf("production feature %s = %v outside [%v,%v]", f.Name, x[j], f.Min, f.Max)
			}
		}
		if x[FeatFlows] < 1 || x[FeatFlows] != math.Round(x[FeatFlows]) {
			t.Fatalf("production flows = %v", x[FeatFlows])
		}
	}
}

func TestProductionDistributionBiased(t *testing.T) {
	// The production sampler must be mid-rate heavy: link-rate extremes
	// (the Figure 1 confusion regions) are rare relative to uniform.
	r := rng.New(43)
	const n = 3000
	extremeProd, extremeUnif := 0, 0
	lowLoss := 0
	for i := 0; i < n; i++ {
		p := SampleProduction(r)
		u := SampleCondition(r)
		if p[FeatLinkRate] < 30 || p[FeatLinkRate] > 105 {
			extremeProd++
		}
		if u[FeatLinkRate] < 30 || u[FeatLinkRate] > 105 {
			extremeUnif++
		}
		if p[FeatLoss] < 0.01 {
			lowLoss++
		}
	}
	if extremeProd*2 >= extremeUnif {
		t.Fatalf("production rate extremes %d not rarer than uniform %d", extremeProd, extremeUnif)
	}
	if lowLoss < n/2 {
		t.Fatalf("production loss not low-heavy: %d/%d below 0.01", lowLoss, n)
	}
}

func TestGenerateProduction(t *testing.T) {
	g := fastGen(47)
	d := g.GenerateProduction(12, rng.New(49))
	if d.Len() != 12 {
		t.Fatalf("len = %d", d.Len())
	}
	for i := range d.X {
		if d.Y[i] != LabelOther && d.Y[i] != LabelScream {
			t.Fatalf("label %d", d.Y[i])
		}
	}
}

func TestMeasurementNoiseChangesSeeds(t *testing.T) {
	// With measurement noise on, labelling the same condition twice uses
	// different emulation seeds; the label may or may not flip, but the
	// nonce must advance deterministically.
	g := NewGenerator(51)
	g.Duration = 0.7
	x := []float64{40, 30, 0.02, 3}
	a1 := g.Label(x)
	h := NewGenerator(51)
	h.Duration = 0.7
	b1 := h.Label(x)
	if a1 != b1 {
		t.Fatal("same generator state produced different first labels")
	}
	// Disabled noise: labels are pure functions of the condition.
	g2 := fastGen(51)
	if g2.Label(x) != g2.Label(x) {
		t.Fatal("noise-free labels differ")
	}
}
