package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/netml/alefb/internal/rng"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

func TestAccuracy(t *testing.T) {
	if got := Accuracy([]int{0, 1, 1, 0}, []int{0, 1, 0, 0}); got != 0.75 {
		t.Fatalf("Accuracy = %v", got)
	}
	if !math.IsNaN(Accuracy(nil, nil)) {
		t.Fatal("empty Accuracy should be NaN")
	}
}

func TestConfusion(t *testing.T) {
	cm, err := NewConfusion(3, []int{0, 1, 2, 2}, []int{0, 2, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if cm.M[0][0] != 1 || cm.M[1][2] != 1 || cm.M[2][2] != 1 || cm.M[2][1] != 1 {
		t.Fatalf("confusion = %v", cm.M)
	}
	if _, err := NewConfusion(2, []int{0, 5}, []int{0, 1}); err == nil {
		t.Fatal("out-of-range label should error")
	}
}

func TestBalancedAccuracyImbalance(t *testing.T) {
	// 90 of class 0, 10 of class 1; classifier always predicts 0.
	yTrue := make([]int, 100)
	yPred := make([]int, 100)
	for i := 90; i < 100; i++ {
		yTrue[i] = 1
	}
	if got := Accuracy(yTrue, yPred); got != 0.9 {
		t.Fatalf("Accuracy = %v", got)
	}
	if got := BalancedAccuracy(2, yTrue, yPred); got != 0.5 {
		t.Fatalf("BalancedAccuracy = %v, want 0.5 for majority-vote classifier", got)
	}
}

func TestBalancedAccuracySkipsAbsentClasses(t *testing.T) {
	// k=3 declared but only classes 0 and 1 appear.
	got := BalancedAccuracy(3, []int{0, 0, 1, 1}, []int{0, 0, 1, 0})
	if !almost(got, 0.75) {
		t.Fatalf("BalancedAccuracy = %v, want 0.75", got)
	}
}

func TestBalancedAccuracyPerfect(t *testing.T) {
	y := []int{0, 1, 2, 0, 1, 2}
	if got := BalancedAccuracy(3, y, y); got != 1 {
		t.Fatalf("perfect BalancedAccuracy = %v", got)
	}
}

func TestPrecisionRecallF1(t *testing.T) {
	yTrue := []int{0, 0, 1, 1, 1}
	yPred := []int{0, 1, 1, 1, 0}
	p, r, f1, err := PrecisionRecallF1(2, yTrue, yPred)
	if err != nil {
		t.Fatal(err)
	}
	if !almost(p[1], 2.0/3.0) || !almost(r[1], 2.0/3.0) || !almost(f1[1], 2.0/3.0) {
		t.Fatalf("class1 p=%v r=%v f1=%v", p[1], r[1], f1[1])
	}
	if !almost(p[0], 0.5) || !almost(r[0], 0.5) {
		t.Fatalf("class0 p=%v r=%v", p[0], r[0])
	}
}

// TestBalancedAccuracySingleClass pins the zero-support convention for
// the degenerate holdout the AutoML engine can produce on tiny stratified
// splits: every true label is the same class. The score must be that
// class's recall — a defined value — never NaN, or the engine would drop
// a perfectly healthy candidate.
func TestBalancedAccuracySingleClass(t *testing.T) {
	yTrue := []int{1, 1, 1, 1}
	yPred := []int{1, 0, 1, 2}
	got := BalancedAccuracy(3, yTrue, yPred)
	if math.IsNaN(got) {
		t.Fatal("single-class BalancedAccuracy must be defined, got NaN")
	}
	if !almost(got, 0.5) {
		t.Fatalf("single-class BalancedAccuracy = %v, want 0.5 (class 1 recall)", got)
	}
}

// TestBalancedAccuracyZeroSupportClass: a class absent from yTrue is
// excluded from the mean instead of contributing an undefined recall.
func TestBalancedAccuracyZeroSupportClass(t *testing.T) {
	// k=3 but class 2 never occurs; recalls are 1.0 (class 0) and 0.5
	// (class 1), so the mean over supported classes is 0.75.
	yTrue := []int{0, 0, 1, 1}
	yPred := []int{0, 0, 1, 2}
	got := BalancedAccuracy(3, yTrue, yPred)
	if math.IsNaN(got) {
		t.Fatal("zero-support class must not make BalancedAccuracy NaN")
	}
	if !almost(got, 0.75) {
		t.Fatalf("BalancedAccuracy = %v, want 0.75", got)
	}
}

// TestMacroF1ZeroSupportClass mirrors the balanced-accuracy convention
// for the macro-F1 aggregate.
func TestMacroF1ZeroSupportClass(t *testing.T) {
	yTrue := []int{0, 0, 1, 1}
	yPred := []int{0, 0, 1, 1}
	if got := MacroF1(3, yTrue, yPred); math.IsNaN(got) || got != 1 {
		t.Fatalf("MacroF1 with absent class = %v, want 1", got)
	}
	if got := MacroF1(3, []int{1, 1}, []int{1, 0}); math.IsNaN(got) {
		t.Fatal("single-class MacroF1 must be defined, got NaN")
	}
}

// TestRecallZeroSupport: per-class slices never contain NaN, even for a
// class with no true samples and no predictions.
func TestRecallZeroSupport(t *testing.T) {
	p, r, f1, err := PrecisionRecallF1(3, []int{0, 1, 1}, []int{0, 1, 0})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 3; c++ {
		if math.IsNaN(p[c]) || math.IsNaN(r[c]) || math.IsNaN(f1[c]) {
			t.Fatalf("class %d: p=%v r=%v f1=%v contain NaN", c, p[c], r[c], f1[c])
		}
	}
	if r[2] != 0 || p[2] != 0 || f1[2] != 0 {
		t.Fatalf("zero-support class 2: p=%v r=%v f1=%v, want all 0", p[2], r[2], f1[2])
	}
}

// TestBalancedAccuracyNaNOnlyForEmptyOrInvalid pins the reserved NaN
// cases: no information (empty input) or malformed labels.
func TestBalancedAccuracyNaNOnlyForEmptyOrInvalid(t *testing.T) {
	if got := BalancedAccuracy(2, nil, nil); !math.IsNaN(got) {
		t.Fatalf("empty input = %v, want NaN", got)
	}
	if got := BalancedAccuracy(2, []int{5}, []int{0}); !math.IsNaN(got) {
		t.Fatalf("out-of-range label = %v, want NaN", got)
	}
}

func TestPrecisionZeroDivision(t *testing.T) {
	// Class 1 never predicted and never true: everything should be 0, not NaN.
	p, r, f1, err := PrecisionRecallF1(2, []int{0, 0}, []int{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if p[1] != 0 || r[1] != 0 || f1[1] != 0 {
		t.Fatalf("absent class: p=%v r=%v f1=%v", p[1], r[1], f1[1])
	}
}

func TestMacroF1(t *testing.T) {
	yTrue := []int{0, 0, 1, 1}
	yPred := []int{0, 0, 1, 1}
	if got := MacroF1(2, yTrue, yPred); got != 1 {
		t.Fatalf("MacroF1 perfect = %v", got)
	}
}

func TestLogLoss(t *testing.T) {
	proba := [][]float64{{0.9, 0.1}, {0.2, 0.8}}
	want := -(math.Log(0.9) + math.Log(0.8)) / 2
	if got := LogLoss(proba, []int{0, 1}); !almost(got, want) {
		t.Fatalf("LogLoss = %v, want %v", got, want)
	}
	// Zero probability must not produce +Inf.
	if got := LogLoss([][]float64{{0, 1}}, []int{0}); math.IsInf(got, 0) {
		t.Fatal("LogLoss with zero probability should be clipped")
	}
}

func TestArgmax(t *testing.T) {
	if got := Argmax([]float64{0.1, 0.7, 0.2}); got != 1 {
		t.Fatalf("Argmax = %d", got)
	}
	if got := Argmax([]float64{0.5, 0.5}); got != 0 {
		t.Fatalf("Argmax tie = %d, want first index", got)
	}
}

func TestQuickBalancedAccuracyBounds(t *testing.T) {
	r := rng.New(1)
	f := func(n uint8) bool {
		m := int(n%50) + 1
		yTrue := make([]int, m)
		yPred := make([]int, m)
		for i := 0; i < m; i++ {
			yTrue[i] = r.Intn(3)
			yPred[i] = r.Intn(3)
		}
		ba := BalancedAccuracy(3, yTrue, yPred)
		return ba >= 0 && ba <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickAccuracyMatchesBalancedOnBalancedData(t *testing.T) {
	// With equal class counts and a symmetric error pattern, plain accuracy
	// equals balanced accuracy for a perfect classifier.
	f := func(n uint8) bool {
		m := int(n%20)*2 + 2
		yTrue := make([]int, m)
		for i := range yTrue {
			yTrue[i] = i % 2
		}
		return almost(Accuracy(yTrue, yTrue), BalancedAccuracy(2, yTrue, yTrue))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestAUCPerfectAndRandom(t *testing.T) {
	// Perfectly separating scores.
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	yTrue := []int{0, 0, 1, 1}
	if got := AUC(scores, yTrue); got != 1 {
		t.Fatalf("perfect AUC = %v", got)
	}
	// Perfectly wrong.
	if got := AUC(scores, []int{1, 1, 0, 0}); got != 0 {
		t.Fatalf("inverted AUC = %v", got)
	}
	// All ties: AUC 0.5.
	if got := AUC([]float64{0.5, 0.5, 0.5, 0.5}, yTrue); got != 0.5 {
		t.Fatalf("tied AUC = %v", got)
	}
}

func TestAUCKnownValue(t *testing.T) {
	// scores: pos {0.9, 0.4}, neg {0.5, 0.1}: pairs (0.9>0.5, 0.9>0.1,
	// 0.4<0.5, 0.4>0.1) -> 3/4.
	got := AUC([]float64{0.9, 0.4, 0.5, 0.1}, []int{1, 1, 0, 0})
	if math.Abs(got-0.75) > 1e-12 {
		t.Fatalf("AUC = %v, want 0.75", got)
	}
}

func TestAUCDegenerate(t *testing.T) {
	if !math.IsNaN(AUC([]float64{0.5}, []int{1})) {
		t.Fatal("single-class AUC should be NaN")
	}
	if !math.IsNaN(AUC(nil, nil)) {
		t.Fatal("empty AUC should be NaN")
	}
	if !math.IsNaN(AUC([]float64{1, 2}, []int{0})) {
		t.Fatal("mismatched lengths should be NaN")
	}
}
