// Package metrics implements the classification quality measures the
// evaluation uses. The paper reports balanced accuracy everywhere "to avoid
// biases due to label imbalance" (§4); the remaining metrics support the
// wider test suite and the AutoML engine's internal model selection.
//
// # Zero-support convention
//
// A class with no true samples ("zero support") never poisons an otherwise
// well-defined score with NaN:
//
//   - BalancedAccuracy and MacroF1 average only over classes that appear
//     in yTrue; absent classes are excluded from the mean, so a holdout
//     that happens to contain a single class still scores that class's
//     recall rather than NaN.
//   - Per-class recall, precision and F1 report 0 for undefined ratios
//     (no true / no predicted instances), matching sklearn's
//     zero_division=0.
//
// NaN is reserved for inputs that carry no information at all: empty label
// slices, mismatched lengths, out-of-range labels, or (for AUC) a missing
// class. The AutoML engine relies on that boundary — a NaN score marks a
// candidate as undefined and drops it, so a merely imbalanced holdout must
// never produce one.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// ConfusionMatrix counts predictions: M[true][predicted].
type ConfusionMatrix struct {
	M [][]int
}

// NewConfusion builds a k-class confusion matrix from parallel label
// slices. It panics on length mismatch and returns an error for labels
// outside [0, k).
func NewConfusion(k int, yTrue, yPred []int) (*ConfusionMatrix, error) {
	if len(yTrue) != len(yPred) {
		panic("metrics: label slices have different lengths")
	}
	m := make([][]int, k)
	for i := range m {
		m[i] = make([]int, k)
	}
	for i := range yTrue {
		t, p := yTrue[i], yPred[i]
		if t < 0 || t >= k || p < 0 || p >= k {
			return nil, fmt.Errorf("metrics: label out of range at row %d: true=%d pred=%d k=%d", i, t, p, k)
		}
		m[t][p]++
	}
	return &ConfusionMatrix{M: m}, nil
}

// Accuracy returns the fraction of correct predictions.
func Accuracy(yTrue, yPred []int) float64 {
	if len(yTrue) == 0 {
		return math.NaN()
	}
	correct := 0
	for i := range yTrue {
		if yTrue[i] == yPred[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(yTrue))
}

// BalancedAccuracy returns the unweighted mean of per-class recalls over
// the classes that appear in yTrue. This is sklearn's balanced_accuracy and
// the headline metric of Table 1.
//
// Classes with zero support are excluded from the mean (see the package
// convention): a single-class yTrue scores that class's recall, never NaN.
// NaN is returned only for empty input or labels outside [0, k).
func BalancedAccuracy(k int, yTrue, yPred []int) float64 {
	cm, err := NewConfusion(k, yTrue, yPred)
	if err != nil || len(yTrue) == 0 {
		return math.NaN()
	}
	sum, present := 0.0, 0
	for c := 0; c < k; c++ {
		total := 0
		for p := 0; p < k; p++ {
			total += cm.M[c][p]
		}
		if total == 0 {
			continue
		}
		present++
		sum += float64(cm.M[c][c]) / float64(total)
	}
	if present == 0 {
		return math.NaN()
	}
	return sum / float64(present)
}

// PrecisionRecallF1 returns per-class precision, recall and F1.
// Undefined ratios (no predicted / no true instances) are reported as 0,
// matching sklearn's zero_division=0 behaviour: a zero-support class has
// recall 0, a never-predicted class has precision 0, and F1 is 0 whenever
// precision+recall is — the slices never contain NaN.
func PrecisionRecallF1(k int, yTrue, yPred []int) (precision, recall, f1 []float64, err error) {
	cm, err := NewConfusion(k, yTrue, yPred)
	if err != nil {
		return nil, nil, nil, err
	}
	precision = make([]float64, k)
	recall = make([]float64, k)
	f1 = make([]float64, k)
	for c := 0; c < k; c++ {
		tp := cm.M[c][c]
		predicted, actual := 0, 0
		for i := 0; i < k; i++ {
			predicted += cm.M[i][c]
			actual += cm.M[c][i]
		}
		if predicted > 0 {
			precision[c] = float64(tp) / float64(predicted)
		}
		if actual > 0 {
			recall[c] = float64(tp) / float64(actual)
		}
		if precision[c]+recall[c] > 0 {
			f1[c] = 2 * precision[c] * recall[c] / (precision[c] + recall[c])
		}
	}
	return precision, recall, f1, nil
}

// MacroF1 returns the unweighted mean F1 over classes present in yTrue.
// Like BalancedAccuracy it excludes zero-support classes from the mean and
// returns NaN only for empty or invalid input.
func MacroF1(k int, yTrue, yPred []int) float64 {
	_, _, f1, err := PrecisionRecallF1(k, yTrue, yPred)
	if err != nil {
		return math.NaN()
	}
	counts := make([]int, k)
	for _, y := range yTrue {
		counts[y]++
	}
	sum, present := 0.0, 0
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			continue
		}
		present++
		sum += f1[c]
	}
	if present == 0 {
		return math.NaN()
	}
	return sum / float64(present)
}

// LogLoss returns the mean negative log-likelihood of the true labels
// under predicted probability rows. Probabilities are clipped to
// [eps, 1-eps] to keep the loss finite.
func LogLoss(proba [][]float64, yTrue []int) float64 {
	if len(proba) == 0 || len(proba) != len(yTrue) {
		return math.NaN()
	}
	const eps = 1e-15
	sum := 0.0
	for i, row := range proba {
		p := row[yTrue[i]]
		if p < eps {
			p = eps
		}
		if p > 1-eps {
			p = 1 - eps
		}
		sum -= math.Log(p)
	}
	return sum / float64(len(proba))
}

// AUC returns the area under the ROC curve for a binary problem: scores
// are the predicted probabilities of the positive class, yTrue the 0/1
// labels. Ties are handled by midranks (the Mann-Whitney formulation).
// It returns NaN if either class is absent.
func AUC(scores []float64, yTrue []int) float64 {
	if len(scores) != len(yTrue) || len(scores) == 0 {
		return math.NaN()
	}
	type pair struct {
		s float64
		y int
	}
	ps := make([]pair, len(scores))
	nPos, nNeg := 0, 0
	for i := range scores {
		ps[i] = pair{scores[i], yTrue[i]}
		if yTrue[i] == 1 {
			nPos++
		} else {
			nNeg++
		}
	}
	if nPos == 0 || nNeg == 0 {
		return math.NaN()
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].s < ps[b].s })
	// Midranks over tied scores.
	rankSumPos := 0.0
	for i := 0; i < len(ps); {
		j := i
		for j < len(ps) && ps[j].s == ps[i].s {
			j++
		}
		mid := float64(i+j+1) / 2
		for k := i; k < j; k++ {
			if ps[k].y == 1 {
				rankSumPos += mid
			}
		}
		i = j
	}
	u := rankSumPos - float64(nPos)*float64(nPos+1)/2
	return u / (float64(nPos) * float64(nNeg))
}

// Argmax returns the index of the largest value in xs (first on ties).
func Argmax(xs []float64) int {
	best, bestV := 0, math.Inf(-1)
	for i, v := range xs {
		if v > bestV {
			best, bestV = i, v
		}
	}
	return best
}
