// Package active implements the feedback baselines the paper compares
// against in Table 1: uniform sampling, confidence-based (least-confidence)
// active learning, query-by-committee (QBC) with prediction entropy, and
// upsampling (random oversampling and SMOTE) for label imbalance.
//
// The pool-based methods mirror the paper's setup: they can only *score*
// points from a provided unlabeled candidate pool, whereas the ALE
// feedback in internal/core suggests entire subspaces of the feature
// domain — the distinction §4.1 credits for ALE's advantage.
package active

import (
	"math"
	"sort"

	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/metrics"
	"github.com/netml/alefb/internal/ml"
	"github.com/netml/alefb/internal/rng"
)

// Labeler provides labels for newly generated points (the emulator oracle
// in the Scream experiments).
type Labeler interface {
	Label(x []float64) int
}

// Uniform draws n points uniformly from the feature domain R(X) described
// by the schema and labels them with the oracle — the simplest baseline.
func Uniform(schema *data.Schema, n int, oracle Labeler, r *rng.Rand) *data.Dataset {
	d := data.New(schema)
	for i := 0; i < n; i++ {
		row := make([]float64, schema.NumFeatures())
		for j, f := range schema.Features {
			v := r.Uniform(f.Min, f.Max)
			if f.Integer {
				v = math.Round(v)
			}
			row[j] = v
		}
		d.Append(row, oracle.Label(row))
	}
	return d
}

// UniformPoints draws n unlabeled points uniformly from the feature
// domain. Used to build candidate pools for pool-based methods.
func UniformPoints(schema *data.Schema, n int, r *rng.Rand) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		row := make([]float64, schema.NumFeatures())
		for j, f := range schema.Features {
			v := r.Uniform(f.Min, f.Max)
			if f.Integer {
				v = math.Round(v)
			}
			row[j] = v
		}
		out[i] = row
	}
	return out
}

// scoredIndex pairs a pool index with its acquisition score.
type scoredIndex struct {
	idx   int
	score float64
}

// topN returns the indices of the n highest-scoring entries.
func topN(scored []scoredIndex, n int) []int {
	sort.SliceStable(scored, func(i, j int) bool { return scored[i].score > scored[j].score })
	if n > len(scored) {
		n = len(scored)
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = scored[i].idx
	}
	return out
}

// LeastConfidence scores every pool row by 1 - max-class probability under
// the model and returns the indices of the n least confident rows — the
// classic uncertainty-sampling strategy [Lewis & Gale].
func LeastConfidence(model ml.Classifier, pool [][]float64, n int) []int {
	scored := make([]scoredIndex, len(pool))
	for i, x := range pool {
		p := model.PredictProba(x)
		scored[i] = scoredIndex{idx: i, score: 1 - p[metrics.Argmax(p)]}
	}
	return topN(scored, n)
}

// MarginSampling scores every pool row by the (negated) margin between
// the two most probable classes under the model and returns the n rows
// with the smallest margins — another classic uncertainty-sampling
// strategy from the survey the paper cites [Settles 2009].
func MarginSampling(model ml.Classifier, pool [][]float64, n int) []int {
	scored := make([]scoredIndex, len(pool))
	for i, x := range pool {
		p := model.PredictProba(x)
		best, second := -1.0, -1.0
		for _, v := range p {
			if v > best {
				best, second = v, best
			} else if v > second {
				second = v
			}
		}
		scored[i] = scoredIndex{idx: i, score: -(best - second)}
	}
	return topN(scored, n)
}

// QBCMode selects the disagreement measure for query-by-committee.
type QBCMode int

const (
	// QBCVoteEntropy uses the entropy of the committee's hard votes —
	// the classic formulation [Seung et al.].
	QBCVoteEntropy QBCMode = iota
	// QBCSoftEntropy uses the entropy of the averaged class
	// probabilities (consensus entropy).
	QBCSoftEntropy
)

// QBC scores every pool row by committee disagreement and returns the
// indices of the n most-contested rows. The committee is the AutoML
// ensemble's models, as §2.2 proposes. This is the method the paper's
// ALE-variance feedback modifies: same committee, different disagreement
// measure, and crucially a per-point score rather than an interpretable
// region.
func QBC(committee []ml.Classifier, pool [][]float64, n int, mode QBCMode) []int {
	if len(committee) == 0 || len(pool) == 0 {
		return nil
	}
	k := len(committee[0].PredictProba(pool[0]))
	scored := make([]scoredIndex, len(pool))
	votes := make([]float64, k)
	avg := make([]float64, k)
	for i, x := range pool {
		for j := range votes {
			votes[j] = 0
			avg[j] = 0
		}
		for _, m := range committee {
			p := m.PredictProba(x)
			votes[metrics.Argmax(p)]++
			for j, v := range p {
				avg[j] += v
			}
		}
		var score float64
		switch mode {
		case QBCSoftEntropy:
			score = entropy(avg)
		default:
			score = entropy(votes)
		}
		scored[i] = scoredIndex{idx: i, score: score}
	}
	return topN(scored, n)
}

// entropy computes the Shannon entropy of an unnormalized distribution.
func entropy(counts []float64) float64 {
	total := 0.0
	for _, c := range counts {
		total += c
	}
	if total <= 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c <= 0 {
			continue
		}
		p := c / total
		h -= p * math.Log(p)
	}
	return h
}

// Oversample generates n synthetic minority-class rows by resampling
// (duplicate rows from under-represented classes) so that adding them
// moves the training set toward class balance. Classes are drawn inverse-
// proportionally to their current frequency.
func Oversample(train *data.Dataset, n int, r *rng.Rand) *data.Dataset {
	out := data.New(train.Schema)
	byClass := rowsByClass(train)
	weights := inverseFrequency(train, byClass)
	for i := 0; i < n; i++ {
		c := r.Weighted(weights)
		if len(byClass[c]) == 0 {
			continue
		}
		src := byClass[c][r.Intn(len(byClass[c]))]
		out.Append(append([]float64(nil), train.X[src]...), c)
	}
	return out
}

// SMOTE generates n synthetic minority-class rows by interpolating between
// a minority row and one of its k nearest same-class neighbours
// [Chawla et al. 2002], the upsampling technique the paper cites.
func SMOTE(train *data.Dataset, n, k int, r *rng.Rand) *data.Dataset {
	if k <= 0 {
		k = 5
	}
	out := data.New(train.Schema)
	byClass := rowsByClass(train)
	weights := inverseFrequency(train, byClass)
	for i := 0; i < n; i++ {
		c := r.Weighted(weights)
		rows := byClass[c]
		if len(rows) == 0 {
			continue
		}
		if len(rows) == 1 {
			out.Append(append([]float64(nil), train.X[rows[0]]...), c)
			continue
		}
		src := rows[r.Intn(len(rows))]
		neigh := nearestSameClass(train, rows, src, k)
		buddy := neigh[r.Intn(len(neigh))]
		frac := r.Float64()
		row := make([]float64, train.Schema.NumFeatures())
		for j := range row {
			row[j] = train.X[src][j] + frac*(train.X[buddy][j]-train.X[src][j])
			if train.Schema.Features[j].Integer {
				row[j] = math.Round(row[j])
			}
		}
		out.Append(row, c)
	}
	return out
}

func rowsByClass(d *data.Dataset) [][]int {
	byClass := make([][]int, d.Schema.NumClasses())
	for i, y := range d.Y {
		byClass[y] = append(byClass[y], i)
	}
	return byClass
}

// inverseFrequency returns sampling weights proportional to how far each
// class is below the majority count; classes at or above the majority get
// zero weight, absent classes get zero weight too.
func inverseFrequency(d *data.Dataset, byClass [][]int) []float64 {
	maxCount := 0
	for _, rows := range byClass {
		if len(rows) > maxCount {
			maxCount = len(rows)
		}
	}
	weights := make([]float64, len(byClass))
	total := 0.0
	for c, rows := range byClass {
		if len(rows) == 0 {
			continue
		}
		weights[c] = float64(maxCount - len(rows))
		total += weights[c]
	}
	if total == 0 {
		// Already balanced: sample uniformly over present classes.
		for c, rows := range byClass {
			if len(rows) > 0 {
				weights[c] = 1
			}
		}
	}
	return weights
}

// nearestSameClass returns (up to) the k nearest rows to src among rows,
// excluding src itself, by Euclidean distance.
func nearestSameClass(d *data.Dataset, rows []int, src, k int) []int {
	type cand struct {
		idx int
		d2  float64
	}
	cands := make([]cand, 0, len(rows)-1)
	for _, i := range rows {
		if i == src {
			continue
		}
		d2 := 0.0
		for j := range d.X[i] {
			diff := d.X[i][j] - d.X[src][j]
			d2 += diff * diff
		}
		cands = append(cands, cand{i, d2})
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].d2 < cands[b].d2 })
	if k > len(cands) {
		k = len(cands)
	}
	out := make([]int, k)
	for i := 0; i < k; i++ {
		out[i] = cands[i].idx
	}
	return out
}
