package active

import "testing"

func TestMarginSamplingPicksBoundary(t *testing.T) {
	pool := make([][]float64, 101)
	for i := range pool {
		pool[i] = []float64{float64(i) / 100, 0}
	}
	idx := MarginSampling(&confModel{}, pool, 10)
	if len(idx) != 10 {
		t.Fatalf("returned %d indices", len(idx))
	}
	for _, i := range idx {
		// The confModel's two class probabilities cross at x0 = 0.5; the
		// margin is smallest there.
		if pool[i][0] < 0.4 || pool[i][0] > 0.6 {
			t.Fatalf("margin sampling picked confident point x0=%v", pool[i][0])
		}
	}
}

func TestMarginSamplingCapsAtPool(t *testing.T) {
	pool := [][]float64{{0.5, 0}}
	if got := MarginSampling(&confModel{}, pool, 10); len(got) != 1 {
		t.Fatalf("returned %d", len(got))
	}
}

func TestMarginVsLeastConfidenceAgreeOnBinary(t *testing.T) {
	// For binary problems the two strategies induce the same ranking.
	pool := make([][]float64, 50)
	for i := range pool {
		pool[i] = []float64{float64(i) / 50, 0}
	}
	a := MarginSampling(&confModel{}, pool, 5)
	b := LeastConfidence(&confModel{}, pool, 5)
	seen := map[int]bool{}
	for _, i := range a {
		seen[i] = true
	}
	for _, i := range b {
		if !seen[i] {
			t.Fatalf("binary rankings differ: %v vs %v", a, b)
		}
	}
}
