package active

import (
	"math"
	"testing"

	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/ml"
	"github.com/netml/alefb/internal/rng"
)

type oracleFunc func(x []float64) int

func (f oracleFunc) Label(x []float64) int { return f(x) }

// confModel has confidence that grows with |x0 - 0.5| (certain at the
// extremes, uncertain at the boundary).
type confModel struct{}

func (c *confModel) Name() string                           { return "conf" }
func (c *confModel) Fit(d *data.Dataset, r *rng.Rand) error { return nil }
func (c *confModel) PredictProba(x []float64) []float64 {
	p := 0.5 + (x[0] - 0.5) // linear from 0 at x0=0 to 1 at x0=1
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return []float64{1 - p, p}
}

// biasModel always predicts a fixed class with certainty.
type biasModel struct{ class, k int }

func (b *biasModel) Name() string                           { return "bias" }
func (b *biasModel) Fit(d *data.Dataset, r *rng.Rand) error { return nil }
func (b *biasModel) PredictProba(x []float64) []float64 {
	p := make([]float64, b.k)
	p[b.class] = 1
	return p
}

func schema2() *data.Schema {
	return &data.Schema{
		Features: []data.Feature{
			{Name: "x0", Min: 0, Max: 1},
			{Name: "port", Min: 0, Max: 100, Integer: true},
		},
		Classes: []string{"a", "b"},
	}
}

func TestUniformRespectsSchema(t *testing.T) {
	r := rng.New(1)
	oracle := oracleFunc(func(x []float64) int {
		if x[0] > 0.5 {
			return 1
		}
		return 0
	})
	d := Uniform(schema2(), 100, oracle, r)
	if d.Len() != 100 {
		t.Fatalf("len = %d", d.Len())
	}
	for i, row := range d.X {
		if row[0] < 0 || row[0] > 1 || row[1] < 0 || row[1] > 100 {
			t.Fatalf("row out of range: %v", row)
		}
		if row[1] != math.Round(row[1]) {
			t.Fatalf("integer feature not rounded: %v", row[1])
		}
		if want := oracle.Label(row); d.Y[i] != want {
			t.Fatalf("label mismatch at %d", i)
		}
	}
}

func TestUniformPoints(t *testing.T) {
	pts := UniformPoints(schema2(), 50, rng.New(2))
	if len(pts) != 50 {
		t.Fatalf("len = %d", len(pts))
	}
	seenLow, seenHigh := false, false
	for _, p := range pts {
		if p[0] < 0.3 {
			seenLow = true
		}
		if p[0] > 0.7 {
			seenHigh = true
		}
	}
	if !seenLow || !seenHigh {
		t.Fatal("uniform points do not cover the range")
	}
}

func TestLeastConfidencePicksBoundary(t *testing.T) {
	pool := make([][]float64, 101)
	for i := range pool {
		pool[i] = []float64{float64(i) / 100, 0}
	}
	idx := LeastConfidence(&confModel{}, pool, 10)
	if len(idx) != 10 {
		t.Fatalf("returned %d indices", len(idx))
	}
	for _, i := range idx {
		if math.Abs(pool[i][0]-0.5) > 0.1 {
			t.Fatalf("least-confidence picked confident point x0=%v", pool[i][0])
		}
	}
}

func TestLeastConfidenceCapAtPoolSize(t *testing.T) {
	pool := [][]float64{{0.5, 0}, {0.6, 0}}
	if got := LeastConfidence(&confModel{}, pool, 10); len(got) != 2 {
		t.Fatalf("returned %d indices, want pool size 2", len(got))
	}
}

func TestQBCVoteEntropyPicksDisagreement(t *testing.T) {
	// Committee of two step models that disagree for x0 in (0.4, 0.6).
	committee := []ml.Classifier{
		stepAt(0.4), stepAt(0.6),
	}
	pool := make([][]float64, 101)
	for i := range pool {
		pool[i] = []float64{float64(i) / 100, 0}
	}
	idx := QBC(committee, pool, 10, QBCVoteEntropy)
	for _, i := range idx {
		x := pool[i][0]
		if x <= 0.4 || x > 0.6 {
			t.Fatalf("QBC picked agreement point x0=%v", x)
		}
	}
}

func TestQBCSoftEntropy(t *testing.T) {
	committee := []ml.Classifier{stepAt(0.4), stepAt(0.6)}
	pool := make([][]float64, 101)
	for i := range pool {
		pool[i] = []float64{float64(i) / 100, 0}
	}
	idx := QBC(committee, pool, 10, QBCSoftEntropy)
	if len(idx) != 10 {
		t.Fatalf("returned %d", len(idx))
	}
	// Soft entropy is maximized where the average probability is closest
	// to 0.5, i.e. between the cuts.
	for _, i := range idx {
		x := pool[i][0]
		if x <= 0.35 || x > 0.65 {
			t.Fatalf("soft QBC picked x0=%v", x)
		}
	}
}

func TestQBCEmpty(t *testing.T) {
	if QBC(nil, [][]float64{{1}}, 5, QBCVoteEntropy) != nil {
		t.Fatal("empty committee should return nil")
	}
	if QBC([]ml.Classifier{&confModel{}}, nil, 5, QBCVoteEntropy) != nil {
		t.Fatal("empty pool should return nil")
	}
}

// stepAt builds a step model with the given cut.
func stepAt(cut float64) ml.Classifier { return &stepModel{cut: cut} }

type stepModel struct{ cut float64 }

func (s *stepModel) Name() string                           { return "step" }
func (s *stepModel) Fit(d *data.Dataset, r *rng.Rand) error { return nil }
func (s *stepModel) PredictProba(x []float64) []float64 {
	if x[0] > s.cut {
		return []float64{0.1, 0.9}
	}
	return []float64{0.9, 0.1}
}

func imbalanced(r *rng.Rand) *data.Dataset {
	d := data.New(schema2())
	for i := 0; i < 180; i++ {
		d.Append([]float64{r.Float64() * 0.5, float64(r.Intn(100))}, 0)
	}
	for i := 0; i < 20; i++ {
		d.Append([]float64{0.5 + r.Float64()*0.5, float64(r.Intn(100))}, 1)
	}
	return d
}

func TestOversampleTargetsMinority(t *testing.T) {
	r := rng.New(3)
	d := imbalanced(r)
	add := Oversample(d, 100, r)
	counts := add.ClassCounts()
	if counts[1] < 95 {
		t.Fatalf("oversample added %v, want almost all minority", counts)
	}
	// Every synthetic row must equal an existing minority row.
	for i, row := range add.X {
		if add.Y[i] != 1 {
			continue
		}
		found := false
		for j, orig := range d.X {
			if d.Y[j] == 1 && orig[0] == row[0] && orig[1] == row[1] {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("oversampled row %v not in original data", row)
		}
	}
}

func TestSMOTEInterpolates(t *testing.T) {
	r := rng.New(4)
	d := imbalanced(r)
	add := SMOTE(d, 100, 5, r)
	if add.Len() != 100 {
		t.Fatalf("SMOTE len = %d", add.Len())
	}
	counts := add.ClassCounts()
	if counts[1] < 95 {
		t.Fatalf("SMOTE added %v, want almost all minority", counts)
	}
	// Synthetic minority rows must lie within the minority class's bounding
	// box (interpolation property).
	lo, hi := 1.0, 0.0
	for j, y := range d.Y {
		if y != 1 {
			continue
		}
		if d.X[j][0] < lo {
			lo = d.X[j][0]
		}
		if d.X[j][0] > hi {
			hi = d.X[j][0]
		}
	}
	for i, row := range add.X {
		if add.Y[i] != 1 {
			continue
		}
		if row[0] < lo-1e-9 || row[0] > hi+1e-9 {
			t.Fatalf("SMOTE row outside minority hull: %v not in [%v,%v]", row[0], lo, hi)
		}
		if row[1] != math.Round(row[1]) {
			t.Fatalf("SMOTE produced non-integer port %v", row[1])
		}
	}
}

func TestSMOTESingletonClass(t *testing.T) {
	d := data.New(schema2())
	r := rng.New(5)
	for i := 0; i < 50; i++ {
		d.Append([]float64{r.Float64(), 1}, 0)
	}
	d.Append([]float64{0.5, 2}, 1)
	add := SMOTE(d, 20, 5, r)
	// Singleton minority can only be duplicated, never interpolated.
	for i, row := range add.X {
		if add.Y[i] == 1 && (row[0] != 0.5 || row[1] != 2) {
			t.Fatalf("singleton SMOTE row %v", row)
		}
	}
}

func TestBalancedDataUniformWeights(t *testing.T) {
	d := data.New(schema2())
	r := rng.New(6)
	for i := 0; i < 50; i++ {
		d.Append([]float64{r.Float64(), 1}, 0)
		d.Append([]float64{r.Float64(), 1}, 1)
	}
	add := Oversample(d, 200, r)
	counts := add.ClassCounts()
	if counts[0] == 0 || counts[1] == 0 {
		t.Fatalf("balanced oversample starved a class: %v", counts)
	}
}

func TestEntropy(t *testing.T) {
	if e := entropy([]float64{1, 1}); math.Abs(e-math.Log(2)) > 1e-12 {
		t.Fatalf("entropy uniform = %v", e)
	}
	if e := entropy([]float64{5, 0}); e != 0 {
		t.Fatalf("entropy certain = %v", e)
	}
	if e := entropy([]float64{0, 0}); e != 0 {
		t.Fatalf("entropy empty = %v", e)
	}
}
