package stats

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/netml/alefb/internal/rng"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
	if !math.IsNaN(Mean(nil)) {
		t.Fatal("Mean(nil) should be NaN")
	}
}

func TestVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almost(got, 32.0/7.0, 1e-12) {
		t.Fatalf("Variance = %v, want %v", got, 32.0/7.0)
	}
	if got := PopStdDev(xs); !almost(got, 2, 1e-12) {
		t.Fatalf("PopStdDev = %v, want 2", got)
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Fatal("Variance of singleton should be NaN")
	}
	if !math.IsNaN(PopStdDev(nil)) {
		t.Fatal("PopStdDev(nil) should be NaN")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{3, 1, 2, 4}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {-1, 1}, {2, 4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almost(got, c.want, 1e-12) {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("Quantile(nil) should be NaN")
	}
	// Quantile must not mutate its input.
	if xs[0] != 3 {
		t.Fatal("Quantile mutated its input slice")
	}
}

func TestMedianOddEven(t *testing.T) {
	if got := Median([]float64{5, 1, 3}); got != 3 {
		t.Fatalf("Median odd = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Fatalf("Median even = %v", got)
	}
}

func TestWilcoxonErrors(t *testing.T) {
	if _, err := WilcoxonGreater([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("mismatched lengths should error")
	}
	if _, err := WilcoxonGreater([]float64{1, 2}, []float64{1, 2}); err != ErrNoData {
		t.Fatalf("all-zero differences should return ErrNoData, got %v", err)
	}
}

func TestWilcoxonExactSmall(t *testing.T) {
	// n=3, all positive differences: W+ = 6, P(W+ >= 6) = 1/8.
	x := []float64{0, 0, 0}
	y := []float64{1, 2, 3}
	res, err := WilcoxonGreater(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Exact {
		t.Fatal("expected exact test for n=3 untied")
	}
	if res.WPlus != 6 || res.WMinus != 0 {
		t.Fatalf("W+ = %v, W- = %v", res.WPlus, res.WMinus)
	}
	if !almost(res.P, 0.125, 1e-12) {
		t.Fatalf("P = %v, want 0.125", res.P)
	}
}

func TestWilcoxonExactAllNegative(t *testing.T) {
	// All differences negative: W+ = 0, P(W+ >= 0) = 1.
	res, err := WilcoxonGreater([]float64{1, 2, 3}, []float64{0, 1.2, 2.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.WPlus != 0 {
		t.Fatalf("W+ = %v, want 0", res.WPlus)
	}
	if !almost(res.P, 1, 1e-12) {
		t.Fatalf("P = %v, want 1", res.P)
	}
}

func TestWilcoxonSymmetry(t *testing.T) {
	// Reversing the comparison should give complementary evidence:
	// strong evidence one way means weak the other way.
	r := rng.New(1)
	x := make([]float64, 12)
	y := make([]float64, 12)
	for i := range x {
		x[i] = r.Float64()
		y[i] = x[i] + 0.5 + 0.1*r.Float64()
	}
	fwd, err := WilcoxonGreater(x, y)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := WilcoxonGreater(y, x)
	if err != nil {
		t.Fatal(err)
	}
	if fwd.P >= 0.01 {
		t.Fatalf("clear improvement had P = %v", fwd.P)
	}
	if rev.P <= 0.95 {
		t.Fatalf("reversed test had P = %v, want near 1", rev.P)
	}
}

func TestWilcoxonScipyReference(t *testing.T) {
	// Cross-checked against scipy.stats.wilcoxon(y, x, alternative='greater',
	// mode='exact'): x,y with n=8 untied differences.
	x := []float64{125, 115, 130, 140, 140, 115, 140, 125}
	y := []float64{110, 122, 125, 120, 140, 124, 123, 137}
	// diffs: -15, 7, -5, -20, 0, 9, -17, 12 -> n=7 after dropping the zero.
	res, err := WilcoxonGreater(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.N != 7 {
		t.Fatalf("N = %d, want 7", res.N)
	}
	// |d| sorted: 5,7,9,12,15,17,20 -> ranks 1..7.
	// positive diffs: 7(rank2), 9(rank3), 12(rank4) => W+ = 9.
	if res.WPlus != 9 {
		t.Fatalf("W+ = %v, want 9", res.WPlus)
	}
	// Exact: #subsets of {1..7} with sum >= 9 is 104 of 128 => 0.8125,
	// matching scipy.stats.wilcoxon(y, x, alternative='greater').
	if !almost(res.P, 0.8125, 1e-9) {
		t.Fatalf("P = %v, want 0.8125", res.P)
	}
}

func TestWilcoxonNormalApproxLargeN(t *testing.T) {
	// n=40 with a real shift: p should be very small and not exact.
	r := rng.New(2)
	x := make([]float64, 40)
	y := make([]float64, 40)
	for i := range x {
		x[i] = r.NormFloat64()
		y[i] = x[i] + 1
	}
	res, err := WilcoxonGreater(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Fatal("n=40 should use the normal approximation")
	}
	if res.P > 1e-6 {
		t.Fatalf("P = %v, want tiny", res.P)
	}
}

func TestWilcoxonTiesFallToNormal(t *testing.T) {
	// Tied absolute differences force the approximation path even for
	// small n.
	x := []float64{0, 0, 0, 0, 0, 0}
	y := []float64{1, 1, 1, -1, 2, 2}
	res, err := WilcoxonGreater(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if res.Exact {
		t.Fatal("tied data should not use exact distribution")
	}
	if res.P <= 0 || res.P >= 1 {
		t.Fatalf("P = %v out of (0,1)", res.P)
	}
}

func TestWilcoxonNoSignalPNearHalf(t *testing.T) {
	r := rng.New(3)
	ps := make([]float64, 0, 50)
	for trial := 0; trial < 50; trial++ {
		x := make([]float64, 15)
		y := make([]float64, 15)
		for i := range x {
			x[i] = r.NormFloat64()
			y[i] = r.NormFloat64()
		}
		res, err := WilcoxonGreater(x, y)
		if err != nil {
			t.Fatal(err)
		}
		ps = append(ps, res.P)
	}
	if m := Mean(ps); m < 0.3 || m > 0.7 {
		t.Fatalf("null p-values mean = %v, want ~0.5", m)
	}
}

func TestNormSF(t *testing.T) {
	cases := []struct{ z, want float64 }{
		{0, 0.5},
		{1.6448536269514722, 0.05},
		{-1.6448536269514722, 0.95},
		{2.3263478740408408, 0.01},
	}
	for _, c := range cases {
		if got := NormSF(c.z); !almost(got, c.want, 1e-9) {
			t.Fatalf("NormSF(%v) = %v, want %v", c.z, got, c.want)
		}
	}
}

func TestExactWilcoxonSumsToOne(t *testing.T) {
	// The exact SF at 0 must be exactly 1 for any n.
	for n := 1; n <= 15; n++ {
		if got := exactWilcoxonSF(n, 0); !almost(got, 1, 1e-12) {
			t.Fatalf("exactWilcoxonSF(%d, 0) = %v", n, got)
		}
		maxSum := float64(n * (n + 1) / 2)
		if got := exactWilcoxonSF(n, maxSum); !almost(got, math.Pow(2, -float64(n)), 1e-15) {
			t.Fatalf("exactWilcoxonSF(%d, max) = %v", n, got)
		}
	}
}

func TestQuickQuantileMonotone(t *testing.T) {
	r := rng.New(4)
	f := func(n uint8) bool {
		m := int(n%20) + 2
		xs := make([]float64, m)
		for i := range xs {
			xs[i] = r.NormFloat64()
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickWilcoxonPInUnitInterval(t *testing.T) {
	r := rng.New(5)
	f := func(n uint8) bool {
		m := int(n%30) + 2
		x := make([]float64, m)
		y := make([]float64, m)
		for i := range x {
			x[i] = r.NormFloat64()
			y[i] = r.NormFloat64()
		}
		res, err := WilcoxonGreater(x, y)
		if err != nil {
			return err == ErrNoData
		}
		return res.P >= 0 && res.P <= 1 && res.WPlus+res.WMinus > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	if s.Mean != 2 || !almost(s.Std, 1, 1e-12) {
		t.Fatalf("Summarize = %+v", s)
	}
}

func TestHolmBonferroniKnown(t *testing.T) {
	// Classic example: p = {0.01, 0.04, 0.03, 0.005} with m=4.
	// Sorted: 0.005*4=0.02, 0.01*3=0.03, 0.03*2=0.06, 0.04*1=0.04->0.06
	// (monotonicity). Original order: {0.03, 0.06, 0.06, 0.02}.
	got := HolmBonferroni([]float64{0.01, 0.04, 0.03, 0.005})
	want := []float64{0.03, 0.06, 0.06, 0.02}
	for i := range want {
		if !almost(got[i], want[i], 1e-12) {
			t.Fatalf("adjusted[%d] = %v, want %v (all: %v)", i, got[i], want[i], got)
		}
	}
}

func TestHolmBonferroniClipsAtOne(t *testing.T) {
	got := HolmBonferroni([]float64{0.5, 0.9, 0.8})
	for _, v := range got {
		if v > 1 {
			t.Fatalf("adjusted p %v > 1", v)
		}
	}
	if got[0] > got[1] && got[0] > got[2] {
		t.Fatalf("ordering broken: %v", got)
	}
}

func TestHolmBonferroniEmptyAndSingle(t *testing.T) {
	if HolmBonferroni(nil) != nil {
		t.Fatal("nil input should return nil")
	}
	got := HolmBonferroni([]float64{0.2})
	if len(got) != 1 || got[0] != 0.2 {
		t.Fatalf("single p adjusted to %v", got)
	}
}

func TestHolmBonferroniPreservesSignificanceOrder(t *testing.T) {
	r := rng.New(7)
	ps := make([]float64, 10)
	for i := range ps {
		ps[i] = r.Float64()
	}
	adj := HolmBonferroni(ps)
	// Adjusted values must respect the raw ordering (weakly).
	for i := range ps {
		for j := range ps {
			if ps[i] < ps[j] && adj[i] > adj[j]+1e-12 {
				t.Fatalf("order violated: p%v->%v vs p%v->%v", ps[i], adj[i], ps[j], adj[j])
			}
		}
	}
}
