// Package stats provides the descriptive statistics and hypothesis tests
// the evaluation harness needs: means, standard deviations, quantiles, and
// the one-sided Wilcoxon signed-rank test the paper uses to report the
// statistical significance of accuracy differences (Table 1 and §4.2).
package stats

import (
	"errors"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (NaN if len < 2).
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// PopStdDev returns the population (biased, 1/n) standard deviation.
// The ALE-variance feedback uses this form because each committee is the
// full population of models under consideration, not a sample.
func PopStdDev(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)))
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics (the same convention numpy
// defaults to). xs need not be sorted. It returns NaN for empty input.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 0.5-quantile of xs.
func Median(xs []float64) float64 { return Quantile(xs, 0.5) }

// ErrNoData is returned by tests that received no usable observations.
var ErrNoData = errors.New("stats: no usable observations")

// WilcoxonResult holds the outcome of a Wilcoxon signed-rank test.
type WilcoxonResult struct {
	// WPlus is the sum of ranks of positive differences (y - x > 0).
	WPlus float64
	// WMinus is the sum of ranks of negative differences.
	WMinus float64
	// N is the number of non-zero differences used.
	N int
	// P is the one-sided p-value for the alternative "y > x".
	P float64
	// Exact reports whether the exact null distribution was used
	// (possible only when there are no ties among |differences|).
	Exact bool
}

// WilcoxonGreater performs a one-sided Wilcoxon signed-rank test of the
// alternative hypothesis that paired observations y tend to be GREATER
// than x (i.e., median of y-x > 0). This matches the paper's usage, where
// P(no feedback, within ALE) is small when the ALE approach improves on
// no-feedback.
//
// Zero differences are dropped (the Wilcoxon convention). For n <= 25 with
// untied absolute differences the exact permutation distribution is used;
// otherwise the normal approximation with tie correction and continuity
// correction is applied.
func WilcoxonGreater(x, y []float64) (WilcoxonResult, error) {
	if len(x) != len(y) {
		return WilcoxonResult{}, errors.New("stats: Wilcoxon needs paired slices of equal length")
	}
	diffs := make([]float64, 0, len(x))
	for i := range x {
		d := y[i] - x[i]
		if d != 0 && !math.IsNaN(d) {
			diffs = append(diffs, d)
		}
	}
	n := len(diffs)
	if n == 0 {
		return WilcoxonResult{}, ErrNoData
	}

	type absDiff struct {
		abs  float64
		sign float64
	}
	ad := make([]absDiff, n)
	for i, d := range diffs {
		ad[i] = absDiff{math.Abs(d), math.Copysign(1, d)}
	}
	sort.Slice(ad, func(i, j int) bool { return ad[i].abs < ad[j].abs })

	// Midranks, tracking ties for the variance correction.
	ranks := make([]float64, n)
	tieCorrection := 0.0
	hasTies := false
	for i := 0; i < n; {
		j := i
		for j < n && ad[j].abs == ad[i].abs {
			j++
		}
		mid := float64(i+j+1) / 2 // average of ranks i+1..j
		for k := i; k < j; k++ {
			ranks[k] = mid
		}
		t := float64(j - i)
		if j-i > 1 {
			hasTies = true
			tieCorrection += t*t*t - t
		}
		i = j
	}

	wPlus, wMinus := 0.0, 0.0
	for i := range ad {
		if ad[i].sign > 0 {
			wPlus += ranks[i]
		} else {
			wMinus += ranks[i]
		}
	}

	res := WilcoxonResult{WPlus: wPlus, WMinus: wMinus, N: n}

	// One-sided alternative y > x is supported by large W+; the p-value is
	// P(W+ >= wPlus) under H0.
	if n <= 25 && !hasTies {
		res.Exact = true
		res.P = exactWilcoxonSF(n, wPlus)
	} else {
		mean := float64(n) * float64(n+1) / 4
		variance := float64(n)*float64(n+1)*float64(2*n+1)/24 - tieCorrection/48
		if variance <= 0 {
			// All differences tied at the same magnitude and sign pattern
			// degenerate; fall back to a coin-flip p-value.
			res.P = 0.5
			return res, nil
		}
		z := (wPlus - mean - 0.5) / math.Sqrt(variance)
		res.P = normSF(z)
	}
	if res.P < 0 {
		res.P = 0
	}
	if res.P > 1 {
		res.P = 1
	}
	return res, nil
}

// exactWilcoxonSF computes P(W+ >= w) exactly for n untied observations by
// dynamic programming over the 2^n sign assignments. Counts are exact in
// float64 for n <= 25 (max count 2^25).
func exactWilcoxonSF(n int, w float64) float64 {
	maxSum := n * (n + 1) / 2
	counts := make([]float64, maxSum+1)
	counts[0] = 1
	for r := 1; r <= n; r++ {
		for s := maxSum; s >= r; s-- {
			counts[s] += counts[s-r]
		}
	}
	threshold := int(math.Ceil(w - 1e-9))
	if threshold < 0 {
		threshold = 0
	}
	tail := 0.0
	for s := threshold; s <= maxSum; s++ {
		tail += counts[s]
	}
	return tail / math.Pow(2, float64(n))
}

// normSF is the standard normal survival function P(Z >= z).
func normSF(z float64) float64 {
	return 0.5 * math.Erfc(z/math.Sqrt2)
}

// NormSF exposes the standard normal survival function for other packages.
func NormSF(z float64) float64 { return normSF(z) }

// HolmBonferroni adjusts a family of p-values for multiple comparisons
// using Holm's step-down procedure: sort ascending, multiply the i-th
// smallest by (m-i), enforce monotonicity, clip at 1. The result is
// returned in the input's original order. Table 1 makes eight comparisons
// against the no-feedback baseline; the adjusted values are what a careful
// reading should threshold against alpha.
func HolmBonferroni(pvals []float64) []float64 {
	m := len(pvals)
	if m == 0 {
		return nil
	}
	order := make([]int, m)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return pvals[order[a]] < pvals[order[b]] })
	adjusted := make([]float64, m)
	running := 0.0
	for rank, idx := range order {
		v := float64(m-rank) * pvals[idx]
		if v < running {
			v = running // step-down monotonicity
		}
		if v > 1 {
			v = 1
		}
		running = v
		adjusted[idx] = v
	}
	return adjusted
}

// PairedSummary describes a set of paired accuracy measurements in the
// format Table 1 reports: mean ± std plus the p-values against reference
// algorithms.
type PairedSummary struct {
	Mean float64
	Std  float64
}

// Summarize returns the mean and sample standard deviation of xs.
func Summarize(xs []float64) PairedSummary {
	return PairedSummary{Mean: Mean(xs), Std: StdDev(xs)}
}
