package ml

import (
	"testing"

	"github.com/netml/alefb/internal/rng"
)

// batchProbes draws n probe rows from the blob feature range so batch
// benchmarks exercise realistic leaf diversity.
func batchProbes(n int, r *rng.Rand) [][]float64 {
	X := make([][]float64, n)
	for i := range X {
		X[i] = []float64{r.Uniform(-6, 6), r.Uniform(-6, 6)}
	}
	return X
}

// BenchmarkTreePredictBatch measures batch inference through a single
// decision tree (the unit the flattened engine compiles).
func BenchmarkTreePredictBatch(b *testing.B) {
	train := blobs(500, 3, rng.New(21))
	m := NewTree(TreeConfig{MaxDepth: 8})
	if err := m.Fit(train, rng.New(1)); err != nil {
		b.Fatal(err)
	}
	X := batchProbes(500, rng.New(22))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PredictProbaBatch(m, X)
	}
}

// BenchmarkForestPredictBatch measures batch inference through a random
// forest — the dominant cost of ALE/PDP committee sweeps.
func BenchmarkForestPredictBatch(b *testing.B) {
	train := blobs(500, 3, rng.New(23))
	m := NewRandomForest(20, 8)
	if err := m.Fit(train, rng.New(1)); err != nil {
		b.Fatal(err)
	}
	X := batchProbes(500, rng.New(24))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PredictProbaBatch(m, X)
	}
}

// BenchmarkGBDTPredictBatch measures batch inference through boosted trees.
func BenchmarkGBDTPredictBatch(b *testing.B) {
	train := blobs(500, 3, rng.New(25))
	m := NewGBDT(GBDTConfig{NumRounds: 20})
	if err := m.Fit(train, rng.New(1)); err != nil {
		b.Fatal(err)
	}
	X := batchProbes(500, rng.New(26))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PredictProbaBatch(m, X)
	}
}

// BenchmarkAdaBoostPredictBatch measures batch inference through the SAMME
// ensemble of weak trees.
func BenchmarkAdaBoostPredictBatch(b *testing.B) {
	train := blobs(500, 3, rng.New(27))
	m := NewAdaBoost(AdaBoostConfig{Rounds: 30, MaxDepth: 2})
	if err := m.Fit(train, rng.New(1)); err != nil {
		b.Fatal(err)
	}
	X := batchProbes(500, rng.New(28))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PredictProbaBatch(m, X)
	}
}
