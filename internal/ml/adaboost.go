package ml

import (
	"fmt"
	"math"

	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/metrics"
	"github.com/netml/alefb/internal/rng"
)

// AdaBoostConfig configures the SAMME multi-class AdaBoost classifier.
type AdaBoostConfig struct {
	// Rounds is the number of boosting rounds (default 50).
	Rounds int
	// MaxDepth of each weak-learner tree (default 2: decision stumps are
	// depth 1; slightly deeper trees handle multi-class splits better).
	MaxDepth int
	// LearningRate shrinks each round's vote (default 1.0).
	LearningRate float64
	// Engine selects the training engine (presort or histogram-binned)
	// for every weak learner; see TreeConfig.Engine.
	Engine TrainEngine
	// HistWorkers caps the hist engine's feature-parallel scans.
	HistWorkers int
}

func (c AdaBoostConfig) withDefaults() AdaBoostConfig {
	if c.Rounds <= 0 {
		c.Rounds = 50
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 2
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 1
	}
	return c
}

// AdaBoost is the SAMME variant of multi-class AdaBoost [Zhu et al. 2009]:
// weighted weak trees are combined by staged votes; a round's vote weight
// is log((1-err)/err) + log(K-1). Misclassified rows gain sample weight so
// later rounds focus on them.
type AdaBoost struct {
	Config AdaBoostConfig

	classes int
	trees   []*Tree
	alphas  []float64
}

// NewAdaBoost returns a SAMME AdaBoost classifier.
func NewAdaBoost(cfg AdaBoostConfig) *AdaBoost { return &AdaBoost{Config: cfg.withDefaults()} }

// Name implements Classifier.
func (a *AdaBoost) Name() string {
	return fmt.Sprintf("adaboost(rounds=%d,depth=%d)", a.Config.Rounds, a.Config.MaxDepth)
}

// Fit implements Classifier.
func (a *AdaBoost) Fit(d *data.Dataset, r *rng.Rand) error {
	if d.Len() == 0 {
		return ErrEmptyDataset
	}
	cfg := a.Config
	n := d.Len()
	k := d.Schema.NumClasses()
	a.classes = k
	a.trees = a.trees[:0]
	a.alphas = a.alphas[:0]

	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 1 / float64(n)
	}
	// Weak learners are trained on weighted resamples (weight-aware tree
	// fitting via resampling keeps the tree code unchanged and is the
	// standard randomized approximation). Every round's resample is a
	// projection of one shared master sort (see presort.go), so the rows
	// are never re-sorted after the initial presort.
	scratch := newSplitScratch(k)
	if cfg.Engine == EngineHist {
		scratch.ps.sortMaster(d.X, d.Schema.NumFeatures())
		scratch.hist.initHist(&scratch.ps, k, cfg.HistWorkers)
	} else {
		scratch.ps.presortMaster(d.X, d.Schema.NumFeatures())
	}
	idx := make([]int, n)
	for round := 0; round < cfg.Rounds; round++ {
		// One O(n) prefix-sum build amortized over n O(log n) draws: the
		// naive per-draw Weighted scan made every round's resample O(n²).
		sampler := rng.NewCumulative(weights)
		for i := range idx {
			idx[i] = sampler.Next(r)
		}
		sample := d.Subset(idx)
		tree := NewTree(TreeConfig{
			MaxDepth:       cfg.MaxDepth,
			MinSamplesLeaf: 1,
			Engine:         cfg.Engine,
			HistWorkers:    cfg.HistWorkers,
		})
		if cfg.Engine == EngineHist {
			scratch.hist.prepareSubset(&scratch.ps, idx)
		} else {
			scratch.ps.prepareSubset(idx)
		}
		if err := tree.fit(sample, r, scratch); err != nil {
			return fmt.Errorf("ml: adaboost round %d: %w", round, err)
		}
		// Weighted training error of this weak learner.
		errSum := 0.0
		pred := make([]int, n)
		for i, row := range d.X {
			pred[i] = PredictOne(tree, row)
			if pred[i] != d.Y[i] {
				errSum += weights[i]
			}
		}
		if errSum >= 1-1/float64(k) {
			// Worse than chance: skip this round (resampling will differ
			// next time).
			continue
		}
		if errSum < 1e-10 {
			// Perfect weak learner: give it a large but finite vote and
			// stop — additional rounds cannot improve.
			a.trees = append(a.trees, tree)
			a.alphas = append(a.alphas, cfg.LearningRate*10)
			break
		}
		alpha := cfg.LearningRate * (math.Log((1-errSum)/errSum) + math.Log(float64(k-1)))
		a.trees = append(a.trees, tree)
		a.alphas = append(a.alphas, alpha)
		// Reweight and renormalize.
		total := 0.0
		for i := range weights {
			if pred[i] != d.Y[i] {
				weights[i] *= math.Exp(alpha)
			}
			total += weights[i]
		}
		for i := range weights {
			weights[i] /= total
		}
	}
	if len(a.trees) == 0 {
		// Degenerate data (e.g. one class): fall back to a single tree.
		tree := NewTree(TreeConfig{MaxDepth: cfg.MaxDepth, Engine: cfg.Engine, HistWorkers: cfg.HistWorkers})
		if cfg.Engine == EngineHist {
			scratch.hist.prepareFull(&scratch.ps)
		} else {
			scratch.ps.prepareFull()
		}
		if err := tree.fit(d, r, scratch); err != nil {
			return err
		}
		a.trees = append(a.trees, tree)
		a.alphas = append(a.alphas, 1)
	}
	return nil
}

// PredictProba implements Classifier: softmax over the staged votes.
func (a *AdaBoost) PredictProba(x []float64) []float64 {
	out := make([]float64, a.classes)
	a.PredictProbaInto(x, out)
	return out
}

// PredictProbaInto implements IntoPredictor: votes accumulate in out, each
// weak learner's class read straight off its flattened leaf vector.
func (a *AdaBoost) PredictProbaInto(x, out []float64) {
	for i := range out {
		out[i] = 0
	}
	for t, tree := range a.trees {
		out[metrics.Argmax(tree.flat.leafFor(x))] += a.alphas[t]
	}
	// Scale votes into a temperatured softmax so probabilities are smooth.
	total := 0.0
	for _, v := range out {
		total += v
	}
	if total > 0 {
		for i := range out {
			out[i] = 3 * out[i] / total
		}
	}
	softmaxInto(out, out)
}

// PredictProbaBatchInto implements BatchPredictor, staging each weak
// learner across the whole batch: the depth-2 stumps are too short for
// per-row cross-tree pipelining to pay off (unlike Forest/GBDT), so the
// tree-outer sweep with four rows walked in lockstep wins here. Per-row
// vote order is unchanged, so results are bit-identical to the single-row
// path.
func (a *AdaBoost) PredictProbaBatchInto(X, out [][]float64) {
	for _, o := range out {
		for i := range o {
			o[i] = 0
		}
	}
	for t, tree := range a.trees {
		ft := &tree.flat
		proba := ft.leafProba
		k := ft.k
		alpha := a.alphas[t]
		r := 0
		for ; r+4 <= len(X); r += 4 {
			o0, o1, o2, o3 := ft.leafOff4(X[r], X[r+1], X[r+2], X[r+3])
			out[r][metrics.Argmax(proba[o0:int(o0)+k])] += alpha
			out[r+1][metrics.Argmax(proba[o1:int(o1)+k])] += alpha
			out[r+2][metrics.Argmax(proba[o2:int(o2)+k])] += alpha
			out[r+3][metrics.Argmax(proba[o3:int(o3)+k])] += alpha
		}
		for ; r < len(X); r++ {
			out[r][metrics.Argmax(ft.leafFor(X[r]))] += alpha
		}
	}
	for _, o := range out {
		total := 0.0
		for _, v := range o {
			total += v
		}
		if total > 0 {
			for i := range o {
				o[i] = 3 * o[i] / total
			}
		}
		softmaxInto(o, o)
	}
}
