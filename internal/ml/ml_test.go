package ml

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/metrics"
	"github.com/netml/alefb/internal/rng"
)

// blobs generates a well-separated k-class Gaussian blob problem.
func blobs(n, k int, r *rng.Rand) *data.Dataset {
	schema := &data.Schema{
		Features: []data.Feature{
			{Name: "x0", Min: -10, Max: 10},
			{Name: "x1", Min: -10, Max: 10},
		},
	}
	for c := 0; c < k; c++ {
		schema.Classes = append(schema.Classes, string(rune('A'+c)))
	}
	d := data.New(schema)
	centers := [][]float64{{-4, -4}, {4, 4}, {-4, 4}, {4, -4}}
	for i := 0; i < n; i++ {
		c := i % k
		d.Append([]float64{
			r.Normal(centers[c][0], 1),
			r.Normal(centers[c][1], 1),
		}, c)
	}
	return d
}

// xor generates the classic non-linearly-separable XOR problem.
func xor(n int, r *rng.Rand) *data.Dataset {
	schema := &data.Schema{
		Features: []data.Feature{
			{Name: "x0", Min: -2, Max: 2},
			{Name: "x1", Min: -2, Max: 2},
		},
		Classes: []string{"0", "1"},
	}
	d := data.New(schema)
	for i := 0; i < n; i++ {
		a, b := r.Uniform(-2, 2), r.Uniform(-2, 2)
		y := 0
		if (a > 0) != (b > 0) {
			y = 1
		}
		d.Append([]float64{a, b}, y)
	}
	return d
}

func holdoutAccuracy(t *testing.T, c Classifier, train, test *data.Dataset, seed uint64) float64 {
	t.Helper()
	if err := c.Fit(train, rng.New(seed)); err != nil {
		t.Fatalf("%s Fit: %v", c.Name(), err)
	}
	pred := Predict(c, test.X)
	return metrics.Accuracy(test.Y, pred)
}

func allModels() []Classifier {
	return []Classifier{
		NewTree(TreeConfig{MaxDepth: 8}),
		NewRandomForest(20, 8),
		NewExtraTrees(20, 8),
		NewGBDT(GBDTConfig{NumRounds: 20}),
		&Pipeline{Scaler: &StandardScaler{}, Model: NewKNN(KNNConfig{K: 5})},
		&Pipeline{Scaler: &StandardScaler{}, Model: NewLogReg(LogRegConfig{Epochs: 40})},
		NewGaussianNB(),
		&Pipeline{Scaler: &StandardScaler{}, Model: NewSVM(SVMConfig{Epochs: 30})},
		&Pipeline{Scaler: &StandardScaler{}, Model: NewMLP(MLPConfig{Epochs: 60})},
	}
}

func TestAllModelsLearnBlobs(t *testing.T) {
	r := rng.New(1)
	train := blobs(300, 3, r)
	test := blobs(150, 3, r)
	for _, m := range allModels() {
		acc := holdoutAccuracy(t, m, train, test, 7)
		if acc < 0.9 {
			t.Errorf("%s: blob accuracy %.3f < 0.9", m.Name(), acc)
		}
	}
}

func TestNonlinearModelsLearnXOR(t *testing.T) {
	r := rng.New(2)
	train := xor(500, r)
	test := xor(250, r)
	nonlinear := []Classifier{
		NewTree(TreeConfig{MaxDepth: 8}),
		NewRandomForest(25, 8),
		NewExtraTrees(40, 10),
		NewGBDT(GBDTConfig{NumRounds: 40}),
		&Pipeline{Scaler: &StandardScaler{}, Model: NewKNN(KNNConfig{K: 5})},
		&Pipeline{Scaler: &StandardScaler{}, Model: NewMLP(MLPConfig{Hidden: 24, Epochs: 150})},
	}
	for _, m := range nonlinear {
		acc := holdoutAccuracy(t, m, train, test, 11)
		if acc < 0.85 {
			t.Errorf("%s: XOR accuracy %.3f < 0.85", m.Name(), acc)
		}
	}
}

func TestLinearModelFailsXOR(t *testing.T) {
	// Sanity check that XOR really is non-separable: logistic regression
	// should hover near chance. Guards against a data-generation bug that
	// would make the non-linear tests vacuous.
	r := rng.New(3)
	train := xor(500, r)
	test := xor(250, r)
	m := &Pipeline{Scaler: &StandardScaler{}, Model: NewLogReg(LogRegConfig{Epochs: 40})}
	acc := holdoutAccuracy(t, m, train, test, 13)
	if acc > 0.65 {
		t.Fatalf("logreg on XOR = %.3f; expected near-chance", acc)
	}
}

func TestProbabilitiesSumToOne(t *testing.T) {
	r := rng.New(4)
	train := blobs(200, 3, r)
	for _, m := range allModels() {
		if err := m.Fit(train, rng.New(5)); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		for trial := 0; trial < 20; trial++ {
			x := []float64{r.Uniform(-10, 10), r.Uniform(-10, 10)}
			p := m.PredictProba(x)
			if len(p) != 3 {
				t.Fatalf("%s: proba len %d, want 3", m.Name(), len(p))
			}
			sum := 0.0
			for _, v := range p {
				if v < -1e-12 || math.IsNaN(v) {
					t.Fatalf("%s: invalid probability %v", m.Name(), p)
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("%s: probabilities sum to %v", m.Name(), sum)
			}
		}
	}
}

func TestEmptyDatasetErrors(t *testing.T) {
	empty := data.New(&data.Schema{
		Features: []data.Feature{{Name: "x", Min: 0, Max: 1}},
		Classes:  []string{"a", "b"},
	})
	for _, m := range allModels() {
		if err := m.Fit(empty, rng.New(1)); err == nil {
			t.Errorf("%s: Fit on empty dataset should fail", m.Name())
		}
	}
}

func TestDeterministicFit(t *testing.T) {
	r := rng.New(6)
	train := blobs(150, 2, r)
	probe := []float64{0.5, -0.3}
	for _, mk := range []func() Classifier{
		func() Classifier { return NewRandomForest(10, 6) },
		func() Classifier { return NewGBDT(GBDTConfig{NumRounds: 10}) },
		func() Classifier {
			return &Pipeline{Scaler: &StandardScaler{}, Model: NewMLP(MLPConfig{Epochs: 20})}
		},
	} {
		a, b := mk(), mk()
		if err := a.Fit(train, rng.New(42)); err != nil {
			t.Fatal(err)
		}
		if err := b.Fit(train, rng.New(42)); err != nil {
			t.Fatal(err)
		}
		pa, pb := a.PredictProba(probe), b.PredictProba(probe)
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("%s: same seed produced different models: %v vs %v", a.Name(), pa, pb)
			}
		}
	}
}

func TestSingleClassDataset(t *testing.T) {
	// All rows share one label out of two declared classes; predictions
	// should heavily favour that label and stay valid.
	schema := &data.Schema{
		Features: []data.Feature{{Name: "x", Min: 0, Max: 1}},
		Classes:  []string{"a", "b"},
	}
	d := data.New(schema)
	r := rng.New(7)
	for i := 0; i < 40; i++ {
		d.Append([]float64{r.Float64()}, 0)
	}
	for _, m := range allModels() {
		if err := m.Fit(d, rng.New(8)); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		p := m.PredictProba([]float64{0.5})
		if metrics.Argmax(p) != 0 {
			t.Errorf("%s: single-class dataset predicted class %d: %v", m.Name(), metrics.Argmax(p), p)
		}
	}
}

func TestTreeDepthRespectsConfig(t *testing.T) {
	r := rng.New(9)
	d := blobs(400, 4, r)
	tree := NewTree(TreeConfig{MaxDepth: 3})
	if err := tree.Fit(d, r); err != nil {
		t.Fatal(err)
	}
	if got := tree.Depth(); got > 3 {
		t.Fatalf("tree depth %d exceeds MaxDepth 3", got)
	}
}

func TestTreeMinLeafRespected(t *testing.T) {
	r := rng.New(10)
	d := blobs(100, 2, r)
	tree := NewTree(TreeConfig{MinSamplesLeaf: 30})
	if err := tree.Fit(d, r); err != nil {
		t.Fatal(err)
	}
	// With n=100 and leaves >= 30 the tree can split at most twice along
	// any path; depth must be small.
	if got := tree.Depth(); got > 2 {
		t.Fatalf("depth %d with MinSamplesLeaf=30 on 100 rows", got)
	}
}

func TestStandardScaler(t *testing.T) {
	s := &StandardScaler{}
	X := [][]float64{{1, 5}, {3, 5}, {5, 5}}
	s.FitScaler(X)
	got := s.Transform([]float64{3, 5})
	if got[0] != 0 {
		t.Fatalf("centered value = %v", got[0])
	}
	// Constant column: scale falls back to 1 so output is 0, not NaN.
	if got[1] != 0 || math.IsNaN(got[1]) {
		t.Fatalf("constant column transform = %v", got[1])
	}
	lo := s.Transform([]float64{1, 5})[0]
	hi := s.Transform([]float64{5, 5})[0]
	if math.Abs(lo+hi) > 1e-12 || hi <= 0 {
		t.Fatalf("scaling asymmetric: %v / %v", lo, hi)
	}
}

func TestMinMaxScaler(t *testing.T) {
	s := &MinMaxScaler{}
	s.FitScaler([][]float64{{0, 7}, {10, 7}})
	got := s.Transform([]float64{5, 7})
	if got[0] != 0.5 || got[1] != 0 {
		t.Fatalf("Transform = %v", got)
	}
}

func TestUnfittedScalerIdentity(t *testing.T) {
	var s StandardScaler
	x := []float64{1, 2}
	got := s.Transform(x)
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("unfitted Transform = %v", got)
	}
	got[0] = 99
	if x[0] == 99 {
		t.Fatal("Transform aliased its input")
	}
}

func TestKNNKLargerThanData(t *testing.T) {
	d := blobs(3, 2, rng.New(11))
	k := NewKNN(KNNConfig{K: 10})
	if err := k.Fit(d, rng.New(1)); err != nil {
		t.Fatal(err)
	}
	p := k.PredictProba([]float64{0, 0})
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("proba sum = %v", sum)
	}
}

func TestGaussianNBRecoverMoments(t *testing.T) {
	r := rng.New(12)
	schema := &data.Schema{
		Features: []data.Feature{{Name: "x", Min: -10, Max: 10}},
		Classes:  []string{"a", "b"},
	}
	d := data.New(schema)
	for i := 0; i < 2000; i++ {
		d.Append([]float64{r.Normal(2, 1)}, 0)
		d.Append([]float64{r.Normal(-2, 0.5)}, 1)
	}
	g := NewGaussianNB()
	if err := g.Fit(d, r); err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.Mean()[0][0]-2) > 0.1 || math.Abs(g.Mean()[1][0]+2) > 0.1 {
		t.Fatalf("means = %v", g.Mean())
	}
	if math.Abs(g.Variance()[0][0]-1) > 0.15 || math.Abs(g.Variance()[1][0]-0.25) > 0.1 {
		t.Fatalf("variances = %v", g.Variance())
	}
}

func TestPipelineName(t *testing.T) {
	p := &Pipeline{Scaler: &StandardScaler{}, Model: NewKNN(KNNConfig{K: 3})}
	if p.Name() != "std+knn(k=3,uniform)" {
		t.Fatalf("Name = %q", p.Name())
	}
	bare := &Pipeline{Model: NewGaussianNB()}
	if bare.Name() != "gnb" {
		t.Fatalf("bare Name = %q", bare.Name())
	}
}

func TestQuickForestProbaValid(t *testing.T) {
	train := blobs(120, 2, rng.New(13))
	f := NewRandomForest(10, 6)
	if err := f.Fit(train, rng.New(14)); err != nil {
		t.Fatal(err)
	}
	prop := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		p := f.PredictProba([]float64{a, b})
		sum := 0.0
		for _, v := range p {
			if v < 0 || v > 1 {
				return false
			}
			sum += v
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPredictHelpers(t *testing.T) {
	train := blobs(100, 2, rng.New(15))
	m := NewTree(TreeConfig{MaxDepth: 5})
	if err := m.Fit(train, rng.New(16)); err != nil {
		t.Fatal(err)
	}
	X := [][]float64{{-4, -4}, {4, 4}}
	preds := Predict(m, X)
	if preds[0] != 0 || preds[1] != 1 {
		t.Fatalf("Predict = %v", preds)
	}
	probas := PredictProbaBatch(m, X)
	if len(probas) != 2 || metrics.Argmax(probas[0]) != 0 {
		t.Fatalf("PredictProbaBatch = %v", probas)
	}
	if PredictOne(m, X[1]) != 1 {
		t.Fatal("PredictOne mismatch")
	}
}

func BenchmarkForestPredict(b *testing.B) {
	train := blobs(500, 3, rng.New(18))
	f := NewRandomForest(20, 8)
	if err := f.Fit(train, rng.New(1)); err != nil {
		b.Fatal(err)
	}
	x := []float64{1, -1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f.PredictProba(x)
	}
}

func TestAdaBoostLearnsBlobs(t *testing.T) {
	r := rng.New(31)
	train := blobs(300, 3, r)
	test := blobs(150, 3, r)
	a := NewAdaBoost(AdaBoostConfig{Rounds: 30, MaxDepth: 2})
	if acc := holdoutAccuracy(t, a, train, test, 33); acc < 0.9 {
		t.Fatalf("adaboost blob accuracy %.3f", acc)
	}
}

func TestAdaBoostLearnsXOR(t *testing.T) {
	r := rng.New(34)
	train := xor(500, r)
	test := xor(250, r)
	a := NewAdaBoost(AdaBoostConfig{Rounds: 60, MaxDepth: 3})
	if acc := holdoutAccuracy(t, a, train, test, 35); acc < 0.85 {
		t.Fatalf("adaboost XOR accuracy %.3f", acc)
	}
}

func TestAdaBoostSingleClass(t *testing.T) {
	schema := &data.Schema{
		Features: []data.Feature{{Name: "x", Min: 0, Max: 1}},
		Classes:  []string{"a", "b"},
	}
	d := data.New(schema)
	r := rng.New(36)
	for i := 0; i < 30; i++ {
		d.Append([]float64{r.Float64()}, 0)
	}
	a := NewAdaBoost(AdaBoostConfig{Rounds: 10})
	if err := a.Fit(d, r); err != nil {
		t.Fatal(err)
	}
	if got := metrics.Argmax(a.PredictProba([]float64{0.5})); got != 0 {
		t.Fatalf("single-class predicted %d", got)
	}
}

func TestAdaBoostProbaValid(t *testing.T) {
	r := rng.New(37)
	train := blobs(200, 3, r)
	a := NewAdaBoost(AdaBoostConfig{Rounds: 20})
	if err := a.Fit(train, rng.New(38)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		p := a.PredictProba([]float64{r.Uniform(-10, 10), r.Uniform(-10, 10)})
		sum := 0.0
		for _, v := range p {
			if v < 0 || math.IsNaN(v) {
				t.Fatalf("bad proba %v", p)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("proba sums to %v", sum)
		}
	}
}

func TestAdaBoostEmpty(t *testing.T) {
	schema := &data.Schema{
		Features: []data.Feature{{Name: "x", Min: 0, Max: 1}},
		Classes:  []string{"a", "b"},
	}
	if err := NewAdaBoost(AdaBoostConfig{}).Fit(data.New(schema), rng.New(1)); err == nil {
		t.Fatal("empty dataset accepted")
	}
}
