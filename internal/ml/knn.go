package ml

import (
	"fmt"
	"sort"

	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/rng"
)

// KNNConfig configures a k-nearest-neighbours classifier.
type KNNConfig struct {
	// K is the neighbour count (default 5).
	K int
	// DistanceWeighted weights votes by inverse distance.
	DistanceWeighted bool
}

// KNN is a k-nearest-neighbours classifier over Euclidean distance.
// It retains (a reference to) the training rows, as all k-NN models do.
// Pair it with a scaler in a Pipeline so no feature dominates the metric.
type KNN struct {
	Config KNNConfig

	X        [][]float64
	Y        []int
	nClasses int
}

// NewKNN returns a k-NN classifier.
func NewKNN(cfg KNNConfig) *KNN {
	if cfg.K <= 0 {
		cfg.K = 5
	}
	return &KNN{Config: cfg}
}

// Name implements Classifier.
func (k *KNN) Name() string {
	w := "uniform"
	if k.Config.DistanceWeighted {
		w = "dist"
	}
	return fmt.Sprintf("knn(k=%d,%s)", k.Config.K, w)
}

// Fit implements Classifier. It stores the dataset's rows by reference.
func (k *KNN) Fit(d *data.Dataset, r *rng.Rand) error {
	if d.Len() == 0 {
		return ErrEmptyDataset
	}
	k.X = d.X
	k.Y = d.Y
	k.nClasses = d.Schema.NumClasses()
	_ = r
	return nil
}

// neigh is one candidate neighbour: squared distance, label, and the
// training-row index used to break distance ties deterministically.
type neigh struct {
	d2 float64
	y  int
	i  int
}

// PredictProba implements Classifier.
func (k *KNN) PredictProba(x []float64) []float64 {
	out := make([]float64, k.nClasses)
	k.PredictProbaInto(x, out)
	return out
}

// scratchNeigh sizes a neighbour scratch for predictInto: selection is
// partial, so only K slots are ever held at once.
func (k *KNN) scratchNeigh() []neigh {
	kk := k.Config.K
	if kk > len(k.X) {
		kk = len(k.X)
	}
	return make([]neigh, kk)
}

// PredictProbaInto implements IntoPredictor. The neighbour scratch is
// O(K), not O(n): partial selection never materializes all distances.
func (k *KNN) PredictProbaInto(x, out []float64) {
	k.predictInto(x, out, k.scratchNeigh())
}

// PredictProbaBatchInto implements BatchPredictor with one neighbour
// scratch shared across all rows of the batch.
func (k *KNN) PredictProbaBatchInto(X, out [][]float64) {
	scratch := k.scratchNeigh()
	for i, x := range X {
		k.predictInto(x, out[i], scratch)
	}
}

// farther reports whether a is a worse neighbour than b. Equal distances
// (common on integer-valued features) tie-break on the training-row
// index, so the neighbour set is a strict total order that never depends
// on selection internals.
func farther(a, b neigh) bool {
	if a.d2 != b.d2 {
		return a.d2 > b.d2
	}
	return a.i > b.i
}

// siftDown restores the max-heap property (worst neighbour at the root,
// ordered by farther) after heap[i] is replaced.
func siftDown(heap []neigh, i int) {
	for {
		c := 2*i + 1
		if c >= len(heap) {
			return
		}
		if r := c + 1; r < len(heap) && farther(heap[r], heap[c]) {
			c = r
		}
		if !farther(heap[c], heap[i]) {
			return
		}
		heap[i], heap[c] = heap[c], heap[i]
		i = c
	}
}

func (k *KNN) predictInto(x, out []float64, neighbours []neigh) {
	kk := k.Config.K
	if kk > len(k.X) {
		kk = len(k.X)
	}
	// Partial selection of the kk nearest with a bounded max-heap keyed by
	// farther: O(n log kk) with concrete comparisons, against O(n log n)
	// through sort.Slice's reflection-based swapper for a full sort that
	// would discard all but kk entries anyway. The first kk rows seed the
	// heap; every later row only displaces the current worst.
	heap := neighbours[:0]
	for i, row := range k.X {
		d2 := 0.0
		for j, v := range row {
			diff := v - x[j]
			d2 += diff * diff
		}
		n := neigh{d2, k.Y[i], i}
		switch {
		case len(heap) < kk:
			heap = append(heap, n)
			if len(heap) == kk {
				for h := kk/2 - 1; h >= 0; h-- {
					siftDown(heap, h)
				}
			}
		case farther(heap[0], n):
			heap[0] = n
			siftDown(heap, 0)
		}
	}
	// Accumulate votes in ascending (d2, i) order — the order the old full
	// sort visited the winners in — so distance-weighted probabilities stay
	// bit-identical to the full-sort implementation.
	sort.Slice(heap, func(a, b int) bool { return farther(heap[b], heap[a]) })
	for i := range out {
		out[i] = 0
	}
	for _, n := range heap {
		w := 1.0
		if k.Config.DistanceWeighted {
			w = 1 / (n.d2 + 1e-9)
		}
		out[n.y] += w
	}
	normalize(out)
}
