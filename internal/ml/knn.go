package ml

import (
	"fmt"
	"sort"

	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/rng"
)

// KNNConfig configures a k-nearest-neighbours classifier.
type KNNConfig struct {
	// K is the neighbour count (default 5).
	K int
	// DistanceWeighted weights votes by inverse distance.
	DistanceWeighted bool
}

// KNN is a k-nearest-neighbours classifier over Euclidean distance.
// It retains (a reference to) the training rows, as all k-NN models do.
// Pair it with a scaler in a Pipeline so no feature dominates the metric.
type KNN struct {
	Config KNNConfig

	X        [][]float64
	Y        []int
	nClasses int
}

// NewKNN returns a k-NN classifier.
func NewKNN(cfg KNNConfig) *KNN {
	if cfg.K <= 0 {
		cfg.K = 5
	}
	return &KNN{Config: cfg}
}

// Name implements Classifier.
func (k *KNN) Name() string {
	w := "uniform"
	if k.Config.DistanceWeighted {
		w = "dist"
	}
	return fmt.Sprintf("knn(k=%d,%s)", k.Config.K, w)
}

// Fit implements Classifier. It stores the dataset's rows by reference.
func (k *KNN) Fit(d *data.Dataset, r *rng.Rand) error {
	if d.Len() == 0 {
		return ErrEmptyDataset
	}
	k.X = d.X
	k.Y = d.Y
	k.nClasses = d.Schema.NumClasses()
	_ = r
	return nil
}

// neigh is one candidate neighbour: squared distance, label, and the
// training-row index used to break distance ties deterministically.
type neigh struct {
	d2 float64
	y  int
	i  int
}

// PredictProba implements Classifier.
func (k *KNN) PredictProba(x []float64) []float64 {
	out := make([]float64, k.nClasses)
	k.PredictProbaInto(x, out)
	return out
}

// PredictProbaInto implements IntoPredictor. k-NN keeps the whole training
// set, so it still allocates its O(n) neighbour scratch per call; use the
// batch path to share that scratch across rows.
func (k *KNN) PredictProbaInto(x, out []float64) {
	k.predictInto(x, out, make([]neigh, len(k.X)))
}

// PredictProbaBatchInto implements BatchPredictor with one neighbour
// scratch shared across all rows of the batch.
func (k *KNN) PredictProbaBatchInto(X, out [][]float64) {
	scratch := make([]neigh, len(k.X))
	for i, x := range X {
		k.predictInto(x, out[i], scratch)
	}
}

func (k *KNN) predictInto(x, out []float64, neighbours []neigh) {
	for i, row := range k.X {
		d2 := 0.0
		for j, v := range row {
			diff := v - x[j]
			d2 += diff * diff
		}
		neighbours[i] = neigh{d2, k.Y[i], i}
	}
	kk := k.Config.K
	if kk > len(neighbours) {
		kk = len(neighbours)
	}
	// Partial selection of the kk nearest. Equal distances (common on
	// integer-valued features) tie-break on the training-row index, so the
	// neighbour set never depends on sort internals.
	sort.Slice(neighbours, func(a, b int) bool {
		if neighbours[a].d2 != neighbours[b].d2 {
			return neighbours[a].d2 < neighbours[b].d2
		}
		return neighbours[a].i < neighbours[b].i
	})
	for i := range out {
		out[i] = 0
	}
	for _, n := range neighbours[:kk] {
		w := 1.0
		if k.Config.DistanceWeighted {
			w = 1 / (n.d2 + 1e-9)
		}
		out[n.y] += w
	}
	normalize(out)
}
