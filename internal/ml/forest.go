package ml

import (
	"fmt"
	"math"

	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/rng"
)

// ForestConfig configures a bagged tree ensemble.
type ForestConfig struct {
	// NumTrees is the ensemble size (default 50).
	NumTrees int
	// MaxDepth bounds each tree; <= 0 means unbounded.
	MaxDepth int
	// MinSamplesLeaf for each tree (default 1).
	MinSamplesLeaf int
	// MaxFeatures per split; <= 0 means round(sqrt(nFeatures)).
	MaxFeatures int
	// Bootstrap resamples the training rows with replacement per tree
	// (true for random forests, typically false for extra-trees).
	Bootstrap bool
	// ExtraTrees draws random thresholds instead of exhaustive scans.
	ExtraTrees bool
}

func (c ForestConfig) withDefaults() ForestConfig {
	if c.NumTrees <= 0 {
		c.NumTrees = 50
	}
	if c.MinSamplesLeaf <= 0 {
		c.MinSamplesLeaf = 1
	}
	return c
}

// Forest is a bagged ensemble of decision trees (random forest or
// extra-trees depending on configuration).
type Forest struct {
	Config ForestConfig
	trees  []*Tree
}

// NewForest returns a forest with the given configuration.
func NewForest(cfg ForestConfig) *Forest { return &Forest{Config: cfg.withDefaults()} }

// NewRandomForest returns a standard random forest.
func NewRandomForest(numTrees, maxDepth int) *Forest {
	return NewForest(ForestConfig{NumTrees: numTrees, MaxDepth: maxDepth, Bootstrap: true})
}

// NewExtraTrees returns an extremely-randomized trees ensemble.
func NewExtraTrees(numTrees, maxDepth int) *Forest {
	return NewForest(ForestConfig{NumTrees: numTrees, MaxDepth: maxDepth, ExtraTrees: true})
}

// Name implements Classifier.
func (f *Forest) Name() string {
	kind := "rf"
	if f.Config.ExtraTrees {
		kind = "xt"
	}
	return fmt.Sprintf("%s(trees=%d,depth=%d)", kind, f.Config.NumTrees, f.Config.MaxDepth)
}

// Fit implements Classifier.
func (f *Forest) Fit(d *data.Dataset, r *rng.Rand) error {
	if d.Len() == 0 {
		return ErrEmptyDataset
	}
	cfg := f.Config
	maxFeatures := cfg.MaxFeatures
	if maxFeatures <= 0 {
		maxFeatures = int(math.Round(math.Sqrt(float64(d.Schema.NumFeatures()))))
		if maxFeatures < 1 {
			maxFeatures = 1
		}
	}
	f.trees = make([]*Tree, cfg.NumTrees)
	for t := range f.trees {
		tree := NewTree(TreeConfig{
			MaxDepth:         cfg.MaxDepth,
			MinSamplesLeaf:   cfg.MinSamplesLeaf,
			MaxFeatures:      maxFeatures,
			RandomThresholds: cfg.ExtraTrees,
		})
		train := d
		if cfg.Bootstrap {
			idx := make([]int, d.Len())
			for i := range idx {
				idx[i] = r.Intn(d.Len())
			}
			train = d.Subset(idx)
		}
		if err := tree.Fit(train, r); err != nil {
			return fmt.Errorf("ml: forest tree %d: %w", t, err)
		}
		f.trees[t] = tree
	}
	return nil
}

// PredictProba implements Classifier by averaging tree probabilities.
func (f *Forest) PredictProba(x []float64) []float64 {
	var sum []float64
	for _, t := range f.trees {
		p := t.PredictProba(x)
		if sum == nil {
			sum = make([]float64, len(p))
		}
		for i, v := range p {
			sum[i] += v
		}
	}
	normalize(sum)
	return sum
}
