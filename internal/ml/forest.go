package ml

import (
	"fmt"
	"math"

	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/rng"
)

// ForestConfig configures a bagged tree ensemble.
type ForestConfig struct {
	// NumTrees is the ensemble size (default 50).
	NumTrees int
	// MaxDepth bounds each tree; <= 0 means unbounded.
	MaxDepth int
	// MinSamplesLeaf for each tree (default 1).
	MinSamplesLeaf int
	// MaxFeatures per split; <= 0 means round(sqrt(nFeatures)).
	MaxFeatures int
	// Bootstrap resamples the training rows with replacement per tree
	// (true for random forests, typically false for extra-trees).
	Bootstrap bool
	// ExtraTrees draws random thresholds instead of exhaustive scans.
	ExtraTrees bool
	// Engine selects the training engine (presort or histogram-binned)
	// for every tree; see TreeConfig.Engine.
	Engine TrainEngine
	// HistWorkers caps the hist engine's feature-parallel scans.
	HistWorkers int
}

func (c ForestConfig) withDefaults() ForestConfig {
	if c.NumTrees <= 0 {
		c.NumTrees = 50
	}
	if c.MinSamplesLeaf <= 0 {
		c.MinSamplesLeaf = 1
	}
	return c
}

// Forest is a bagged ensemble of decision trees (random forest or
// extra-trees depending on configuration).
type Forest struct {
	Config   ForestConfig
	trees    []*Tree
	nClasses int
}

// NewForest returns a forest with the given configuration.
func NewForest(cfg ForestConfig) *Forest { return &Forest{Config: cfg.withDefaults()} }

// NewRandomForest returns a standard random forest.
func NewRandomForest(numTrees, maxDepth int) *Forest {
	return NewForest(ForestConfig{NumTrees: numTrees, MaxDepth: maxDepth, Bootstrap: true})
}

// NewExtraTrees returns an extremely-randomized trees ensemble.
func NewExtraTrees(numTrees, maxDepth int) *Forest {
	return NewForest(ForestConfig{NumTrees: numTrees, MaxDepth: maxDepth, ExtraTrees: true})
}

// Name implements Classifier.
func (f *Forest) Name() string {
	kind := "rf"
	if f.Config.ExtraTrees {
		kind = "xt"
	}
	return fmt.Sprintf("%s(trees=%d,depth=%d)", kind, f.Config.NumTrees, f.Config.MaxDepth)
}

// Fit implements Classifier.
func (f *Forest) Fit(d *data.Dataset, r *rng.Rand) error {
	if d.Len() == 0 {
		return ErrEmptyDataset
	}
	cfg := f.Config
	maxFeatures := cfg.MaxFeatures
	if maxFeatures <= 0 {
		maxFeatures = int(math.Round(math.Sqrt(float64(d.Schema.NumFeatures()))))
		if maxFeatures < 1 {
			maxFeatures = 1
		}
	}
	f.nClasses = d.Schema.NumClasses()
	f.trees = make([]*Tree, cfg.NumTrees)
	// One scratch — and one master sort of the training matrix — shared by
	// every tree: bootstrap trees project the master orderings through
	// their resample, extra-trees restore the full view by copy.
	scratch := newSplitScratch(f.nClasses)
	if cfg.Engine == EngineHist {
		scratch.ps.sortMaster(d.X, d.Schema.NumFeatures())
		scratch.hist.initHist(&scratch.ps, f.nClasses, cfg.HistWorkers)
	} else {
		scratch.ps.presortMaster(d.X, d.Schema.NumFeatures())
	}
	var idx []int
	if cfg.Bootstrap {
		idx = make([]int, d.Len())
	}
	for t := range f.trees {
		tree := NewTree(TreeConfig{
			MaxDepth:         cfg.MaxDepth,
			MinSamplesLeaf:   cfg.MinSamplesLeaf,
			MaxFeatures:      maxFeatures,
			RandomThresholds: cfg.ExtraTrees,
			Engine:           cfg.Engine,
			HistWorkers:      cfg.HistWorkers,
		})
		train := d
		if cfg.Bootstrap {
			for i := range idx {
				idx[i] = r.Intn(d.Len())
			}
			train = d.Subset(idx)
			if cfg.Engine == EngineHist {
				scratch.hist.prepareSubset(&scratch.ps, idx)
			} else {
				scratch.ps.prepareSubset(idx)
			}
		} else if cfg.Engine == EngineHist {
			scratch.hist.prepareFull(&scratch.ps)
		} else {
			scratch.ps.prepareFull()
		}
		if err := tree.fit(train, r, scratch); err != nil {
			return fmt.Errorf("ml: forest tree %d: %w", t, err)
		}
		f.trees[t] = tree
	}
	return nil
}

// PredictProba implements Classifier by averaging tree probabilities.
func (f *Forest) PredictProba(x []float64) []float64 {
	out := make([]float64, f.nClasses)
	f.PredictProbaInto(x, out)
	return out
}

// PredictProbaInto implements IntoPredictor: the flattened leaf vectors of
// every tree are accumulated directly into out, with no per-tree copy.
func (f *Forest) PredictProbaInto(x, out []float64) {
	for i := range out {
		out[i] = 0
	}
	for _, t := range f.trees {
		leaf := t.flat.leafFor(x)
		for i, v := range leaf {
			out[i] += v
		}
	}
	normalize(out)
}

// PredictProbaBatchInto implements BatchPredictor. Rows are processed in
// blocks of four: within a block each tree walks all four rows in lockstep
// (leafOff4), so four independent load chains are in flight while the
// block's output rows stay hot in cache. Per-row accumulation remains in
// tree order, so results are bit-identical to the single-row path.
func (f *Forest) PredictProbaBatchInto(X, out [][]float64) {
	r := 0
	for ; r+4 <= len(X); r += 4 {
		o0, o1, o2, o3 := out[r], out[r+1], out[r+2], out[r+3]
		for i := range o0 {
			o0[i], o1[i], o2[i], o3[i] = 0, 0, 0, 0
		}
		for _, t := range f.trees {
			ft := &t.flat
			proba := ft.leafProba
			p0, p1, p2, p3 := ft.leafOff4(X[r], X[r+1], X[r+2], X[r+3])
			for i := range o0 {
				o0[i] += proba[int(p0)+i]
				o1[i] += proba[int(p1)+i]
				o2[i] += proba[int(p2)+i]
				o3[i] += proba[int(p3)+i]
			}
		}
		normalize(o0)
		normalize(o1)
		normalize(o2)
		normalize(o3)
	}
	for ; r < len(X); r++ {
		f.PredictProbaInto(X[r], out[r])
	}
}
