package ml

import (
	"testing"

	"github.com/netml/alefb/internal/rng"
)

func TestMatrixRowsReuseAndIsolation(t *testing.T) {
	var m Matrix
	a := m.Rows(3, 4)
	if len(a) != 3 || len(a[0]) != 4 {
		t.Fatalf("Rows(3,4) shape = %dx%d", len(a), len(a[0]))
	}
	a[0][0], a[2][3] = 1.5, -2.5
	// A row is full-capacity-capped: appending to it must reallocate
	// instead of bleeding into its neighbor.
	grown := append(a[0], 99)
	if a[1][0] == 99 {
		t.Fatal("append on row 0 bled into row 1")
	}
	_ = grown
	// Shrinking then regrowing within capacity must not allocate a new
	// backing: the same cells come back (contents are not cleared).
	b := m.Rows(2, 4)
	if &b[0][0] != &a[0][0] {
		t.Fatal("shrink reallocated backing")
	}
	c := m.Rows(3, 4)
	if c[2][3] != -2.5 {
		t.Fatalf("regrow lost backing contents: %v", c[2][3])
	}
	if got := len(m.Backing()); got != 12 {
		t.Fatalf("Backing len = %d, want 12", got)
	}
}

func TestMatrixRowsZeroAllocSteadyState(t *testing.T) {
	var m Matrix
	m.Rows(64, 8)
	allocs := testing.AllocsPerRun(100, func() {
		m.Rows(64, 8)
	})
	if allocs != 0 {
		t.Fatalf("steady-state Rows allocates %.1f/op, want 0", allocs)
	}
}

// TestPipelineScratchBitIdentity pins the scratch-routed pipeline batch
// path to the allocating one, cell for cell, bit for bit — the scratch
// only moves where the scaled rows live.
func TestPipelineScratchBitIdentity(t *testing.T) {
	d := xor(400, rng.New(3))
	p := &Pipeline{Scaler: &StandardScaler{}, Model: NewRandomForest(12, 5)}
	if err := p.Fit(d, rng.New(7)); err != nil {
		t.Fatal(err)
	}
	r := rng.New(99)
	X := make([][]float64, 257) // spans the flat engine's internal blocking
	for i := range X {
		X[i] = []float64{r.Float64() * 4, r.Float64() * 4}
	}
	k := d.Schema.NumClasses()
	want := alloc2D(len(X), k)
	p.PredictProbaBatchInto(X, want)

	got := alloc2D(len(X), k)
	var sc BatchScratch
	p.PredictProbaBatchIntoScratch(X, got, &sc)
	for i := range want {
		for c := range want[i] {
			if want[i][c] != got[i][c] {
				t.Fatalf("row %d class %d: scratch %v != direct %v", i, c, got[i][c], want[i][c])
			}
		}
	}

	// Second sweep through the same scratch must be equally identical
	// (stale scaled rows from sweep one must be fully overwritten).
	got2 := alloc2D(len(X), k)
	p.PredictProbaBatchIntoScratch(X, got2, &sc)
	for i := range want {
		for c := range want[i] {
			if want[i][c] != got2[i][c] {
				t.Fatalf("row %d class %d: reused scratch diverged", i, c)
			}
		}
	}
}

func alloc2D(n, k int) [][]float64 {
	backing := make([]float64, n*k)
	out := make([][]float64, n)
	for i := range out {
		out[i] = backing[i*k : (i+1)*k : (i+1)*k]
	}
	return out
}
