// Package ml is a from-scratch machine-learning model zoo standing in for
// scikit-learn's estimators. It provides the diverse model families the
// AutoML engine searches over: decision trees, random forests,
// extra-trees, gradient-boosted trees, k-nearest neighbours, multinomial
// logistic regression, Gaussian naive Bayes, linear SVMs, and a small
// multilayer perceptron, plus the feature scaling they need.
//
// Every model implements Classifier and is deterministic given the
// *rng.Rand passed to Fit. Probability outputs always sum to one and have
// one entry per class in the training schema, even for classes absent from
// the training rows.
package ml

import (
	"errors"
	"fmt"

	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/metrics"
	"github.com/netml/alefb/internal/rng"
)

// Classifier is a trainable multi-class probabilistic classifier.
type Classifier interface {
	// Name returns a short human-readable identifier including the main
	// hyperparameters, used in feedback explanations and logs.
	Name() string
	// Fit trains on the dataset. Implementations must not retain the
	// dataset's row slices unless documented otherwise (k-NN does).
	Fit(d *data.Dataset, r *rng.Rand) error
	// PredictProba returns the class-probability vector for one row.
	// It must only be called after a successful Fit.
	PredictProba(x []float64) []float64
}

// ErrEmptyDataset is returned by Fit when given no rows.
var ErrEmptyDataset = errors.New("ml: empty training set")

// Predict returns argmax-probability class labels for every row of X.
func Predict(c Classifier, X [][]float64) []int {
	out := make([]int, len(X))
	for i, x := range X {
		out[i] = metrics.Argmax(c.PredictProba(x))
	}
	return out
}

// PredictProbaBatch returns the probability matrix for every row of X.
func PredictProbaBatch(c Classifier, X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, x := range X {
		out[i] = c.PredictProba(x)
	}
	return out
}

// PredictOne returns the argmax class for a single row.
func PredictOne(c Classifier, x []float64) int {
	return metrics.Argmax(c.PredictProba(x))
}

// Pipeline scales inputs with an optional Scaler before delegating to the
// wrapped classifier. It is the unit the AutoML search operates on.
type Pipeline struct {
	Scaler Scaler
	Model  Classifier
}

// Name describes the pipeline.
func (p *Pipeline) Name() string {
	if p.Scaler == nil {
		return p.Model.Name()
	}
	return fmt.Sprintf("%s+%s", p.Scaler.Name(), p.Model.Name())
}

// Fit fits the scaler on the data, transforms, and fits the model.
func (p *Pipeline) Fit(d *data.Dataset, r *rng.Rand) error {
	if d.Len() == 0 {
		return ErrEmptyDataset
	}
	if p.Scaler == nil {
		return p.Model.Fit(d, r)
	}
	p.Scaler.FitScaler(d.X)
	scaled := &data.Dataset{Schema: d.Schema, X: make([][]float64, d.Len()), Y: d.Y}
	for i, row := range d.X {
		scaled.X[i] = p.Scaler.Transform(row)
	}
	return p.Model.Fit(scaled, r)
}

// PredictProba scales the row and delegates.
func (p *Pipeline) PredictProba(x []float64) []float64 {
	if p.Scaler == nil {
		return p.Model.PredictProba(x)
	}
	return p.Model.PredictProba(p.Scaler.Transform(x))
}

// classPriors returns smoothed class frequencies; useful as a fallback
// prediction for degenerate inputs.
func classPriors(d *data.Dataset) []float64 {
	k := d.Schema.NumClasses()
	priors := make([]float64, k)
	for _, y := range d.Y {
		priors[y]++
	}
	total := float64(d.Len() + k)
	for i := range priors {
		priors[i] = (priors[i] + 1) / total
	}
	return priors
}

// normalize scales p in place to sum to one; if the sum is not positive it
// resets to uniform.
func normalize(p []float64) {
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if sum <= 0 {
		for i := range p {
			p[i] = 1 / float64(len(p))
		}
		return
	}
	for i := range p {
		p[i] /= sum
	}
}
