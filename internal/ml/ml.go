// Package ml is a from-scratch machine-learning model zoo standing in for
// scikit-learn's estimators. It provides the diverse model families the
// AutoML engine searches over: decision trees, random forests,
// extra-trees, gradient-boosted trees, k-nearest neighbours, multinomial
// logistic regression, Gaussian naive Bayes, linear SVMs, and a small
// multilayer perceptron, plus the feature scaling they need.
//
// Every model implements Classifier and is deterministic given the
// *rng.Rand passed to Fit. Probability outputs always sum to one and have
// one entry per class in the training schema, even for classes absent from
// the training rows.
package ml

import (
	"errors"
	"fmt"

	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/metrics"
	"github.com/netml/alefb/internal/rng"
)

// Classifier is a trainable multi-class probabilistic classifier.
type Classifier interface {
	// Name returns a short human-readable identifier including the main
	// hyperparameters, used in feedback explanations and logs.
	Name() string
	// Fit trains on the dataset. Implementations must not retain the
	// dataset's row slices unless documented otherwise (k-NN does).
	Fit(d *data.Dataset, r *rng.Rand) error
	// PredictProba returns the class-probability vector for one row.
	// It must only be called after a successful Fit.
	PredictProba(x []float64) []float64
}

// IntoPredictor is implemented by classifiers that can write their
// probability vector into a caller-owned buffer, avoiding PredictProba's
// per-call allocation. out must have one entry per class. Every classifier
// in this package (and Pipeline) implements it; the tree family is fully
// allocation-free on this path.
type IntoPredictor interface {
	Classifier
	PredictProbaInto(x, out []float64)
}

// BatchPredictor is implemented by classifiers with an optimized
// whole-matrix predict path that can share scratch buffers across rows.
// out[i] receives the probabilities of X[i]; every out row must be
// pre-sized to the class count.
type BatchPredictor interface {
	Classifier
	PredictProbaBatchInto(X, out [][]float64)
}

// ErrEmptyDataset is returned by Fit when given no rows.
var ErrEmptyDataset = errors.New("ml: empty training set")

// Predict returns argmax-probability class labels for every row of X.
func Predict(c Classifier, X [][]float64) []int {
	out := make([]int, len(X))
	if len(X) == 0 {
		return out
	}
	// The first row's (allocating) prediction reveals the class count; its
	// buffer is then reused for the remaining rows on the Into path.
	p := c.PredictProba(X[0])
	out[0] = metrics.Argmax(p)
	if ip, ok := c.(IntoPredictor); ok {
		for i := 1; i < len(X); i++ {
			ip.PredictProbaInto(X[i], p)
			out[i] = metrics.Argmax(p)
		}
		return out
	}
	for i := 1; i < len(X); i++ {
		out[i] = metrics.Argmax(c.PredictProba(X[i]))
	}
	return out
}

// PredictProbaBatch returns the probability matrix for every row of X,
// backed by one contiguous allocation and filled through the classifier's
// batch path when it has one.
func PredictProbaBatch(c Classifier, X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	if len(X) == 0 {
		return out
	}
	first := c.PredictProba(X[0])
	k := len(first)
	backing := make([]float64, len(X)*k)
	for i := range out {
		out[i] = backing[i*k : (i+1)*k : (i+1)*k]
	}
	copy(out[0], first)
	PredictProbaBatchInto(c, X[1:], out[1:])
	return out
}

// PredictProbaInto writes c's probability vector for x into out, using the
// classifier's allocation-free path when it has one.
func PredictProbaInto(c Classifier, x, out []float64) {
	if ip, ok := c.(IntoPredictor); ok {
		ip.PredictProbaInto(x, out)
		return
	}
	copy(out, c.PredictProba(x))
}

// PredictProbaBatchInto writes the probability matrix of X into out,
// dispatching to the classifier's batch path when it has one and falling
// back to row-at-a-time prediction otherwise.
func PredictProbaBatchInto(c Classifier, X, out [][]float64) {
	if bp, ok := c.(BatchPredictor); ok {
		bp.PredictProbaBatchInto(X, out)
		return
	}
	if ip, ok := c.(IntoPredictor); ok {
		for i, x := range X {
			ip.PredictProbaInto(x, out[i])
		}
		return
	}
	for i, x := range X {
		copy(out[i], c.PredictProba(x))
	}
}

// PredictOne returns the argmax class for a single row.
func PredictOne(c Classifier, x []float64) int {
	return metrics.Argmax(c.PredictProba(x))
}

// Pipeline scales inputs with an optional Scaler before delegating to the
// wrapped classifier. It is the unit the AutoML search operates on.
type Pipeline struct {
	Scaler Scaler
	Model  Classifier
}

// Name describes the pipeline.
func (p *Pipeline) Name() string {
	if p.Scaler == nil {
		return p.Model.Name()
	}
	return fmt.Sprintf("%s+%s", p.Scaler.Name(), p.Model.Name())
}

// Fit fits the scaler on the data, transforms, and fits the model.
func (p *Pipeline) Fit(d *data.Dataset, r *rng.Rand) error {
	if d.Len() == 0 {
		return ErrEmptyDataset
	}
	if p.Scaler == nil {
		return p.Model.Fit(d, r)
	}
	p.Scaler.FitScaler(d.X)
	scaled := &data.Dataset{Schema: d.Schema, X: make([][]float64, d.Len()), Y: d.Y}
	for i, row := range d.X {
		scaled.X[i] = p.Scaler.Transform(row)
	}
	return p.Model.Fit(scaled, r)
}

// PredictProba scales the row and delegates.
func (p *Pipeline) PredictProba(x []float64) []float64 {
	if p.Scaler == nil {
		return p.Model.PredictProba(x)
	}
	return p.Model.PredictProba(p.Scaler.Transform(x))
}

// PredictProbaInto implements IntoPredictor. With a scaler present it
// allocates one row buffer per call; the batch path shares that buffer
// across rows.
func (p *Pipeline) PredictProbaInto(x, out []float64) {
	if p.Scaler == nil {
		PredictProbaInto(p.Model, x, out)
		return
	}
	buf := make([]float64, len(x))
	p.Scaler.TransformInto(x, buf)
	PredictProbaInto(p.Model, buf, out)
}

// PredictProbaBatchInto implements BatchPredictor: rows are scaled through
// one shared buffer and the model's own batch path is used when it exists.
func (p *Pipeline) PredictProbaBatchInto(X, out [][]float64) {
	if p.Scaler == nil {
		PredictProbaBatchInto(p.Model, X, out)
		return
	}
	if len(X) == 0 {
		return
	}
	if bp, ok := p.Model.(BatchPredictor); ok {
		// The model's batch path wants the whole scaled matrix at once.
		backing := make([]float64, len(X)*len(X[0]))
		scaled := make([][]float64, len(X))
		for i, x := range X {
			row := backing[i*len(x) : (i+1)*len(x) : (i+1)*len(x)]
			p.Scaler.TransformInto(x, row)
			scaled[i] = row
		}
		bp.PredictProbaBatchInto(scaled, out)
		return
	}
	buf := make([]float64, len(X[0]))
	for i, x := range X {
		p.Scaler.TransformInto(x, buf)
		PredictProbaInto(p.Model, buf, out[i])
	}
}

// classPriors returns smoothed class frequencies; useful as a fallback
// prediction for degenerate inputs.
func classPriors(d *data.Dataset) []float64 {
	k := d.Schema.NumClasses()
	priors := make([]float64, k)
	for _, y := range d.Y {
		priors[y]++
	}
	total := float64(d.Len() + k)
	for i := range priors {
		priors[i] = (priors[i] + 1) / total
	}
	return priors
}

// normalize scales p in place to sum to one; if the sum is not positive it
// resets to uniform.
func normalize(p []float64) {
	sum := 0.0
	for _, v := range p {
		sum += v
	}
	if sum <= 0 {
		for i := range p {
			p[i] = 1 / float64(len(p))
		}
		return
	}
	for i := range p {
		p[i] /= sum
	}
}
