package ml

import (
	"fmt"
	"math"

	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/rng"
)

// GaussianNB is a Gaussian naive Bayes classifier: each feature is modelled
// as an independent normal per class. It is the model family the paper's
// domain-customization straw-man (encoding independence priors) speaks to;
// see internal/priors for that extension.
type GaussianNB struct {
	// VarSmoothing is added to every variance for numerical stability,
	// as a fraction of the largest feature variance (default 1e-9).
	VarSmoothing float64

	logPrior [][]float64 // singleton per class: log prior
	mean     [][]float64 // [class][feature]
	variance [][]float64 // [class][feature]
	classes  int
}

// NewGaussianNB returns a Gaussian naive Bayes classifier.
func NewGaussianNB() *GaussianNB { return &GaussianNB{VarSmoothing: 1e-9} }

// Name implements Classifier.
func (g *GaussianNB) Name() string { return "gnb" }

// Fit implements Classifier.
func (g *GaussianNB) Fit(d *data.Dataset, r *rng.Rand) error {
	if d.Len() == 0 {
		return ErrEmptyDataset
	}
	_ = r
	k := d.Schema.NumClasses()
	nf := d.Schema.NumFeatures()
	g.classes = k
	counts := make([]float64, k)
	g.mean = make([][]float64, k)
	g.variance = make([][]float64, k)
	for c := 0; c < k; c++ {
		g.mean[c] = make([]float64, nf)
		g.variance[c] = make([]float64, nf)
	}
	for i, row := range d.X {
		c := d.Y[i]
		counts[c]++
		for j, v := range row {
			g.mean[c][j] += v
		}
	}
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			continue
		}
		for j := range g.mean[c] {
			g.mean[c][j] /= counts[c]
		}
	}
	for i, row := range d.X {
		c := d.Y[i]
		for j, v := range row {
			dlt := v - g.mean[c][j]
			g.variance[c][j] += dlt * dlt
		}
	}
	// Global smoothing floor proportional to the largest feature variance.
	maxVar := 0.0
	for c := 0; c < k; c++ {
		if counts[c] == 0 {
			continue
		}
		for j := range g.variance[c] {
			g.variance[c][j] /= counts[c]
			if g.variance[c][j] > maxVar {
				maxVar = g.variance[c][j]
			}
		}
	}
	eps := g.VarSmoothing * maxVar
	if eps <= 0 {
		eps = 1e-12
	}
	for c := 0; c < k; c++ {
		for j := range g.variance[c] {
			g.variance[c][j] += eps
			if g.variance[c][j] <= 0 {
				g.variance[c][j] = eps
			}
		}
	}
	// Laplace-smoothed class priors keep absent classes representable.
	g.logPrior = [][]float64{make([]float64, k)}
	total := float64(d.Len()) + float64(k)
	for c := 0; c < k; c++ {
		g.logPrior[0][c] = math.Log((counts[c] + 1) / total)
	}
	return nil
}

// PredictProba implements Classifier.
func (g *GaussianNB) PredictProba(x []float64) []float64 {
	out := make([]float64, g.classes)
	g.PredictProbaInto(x, out)
	return out
}

// PredictProbaInto implements IntoPredictor; out doubles as the
// log-likelihood buffer before the in-place softmax.
func (g *GaussianNB) PredictProbaInto(x, out []float64) {
	for c := 0; c < g.classes; c++ {
		lp := g.logPrior[0][c]
		for j, v := range x {
			variance := g.variance[c][j]
			dlt := v - g.mean[c][j]
			lp += -0.5*math.Log(2*math.Pi*variance) - dlt*dlt/(2*variance)
		}
		out[c] = lp
	}
	softmaxInto(out, out)
}

// Mean returns the fitted per-class feature means (for priors extension).
func (g *GaussianNB) Mean() [][]float64 { return g.mean }

// Variance returns the fitted per-class feature variances.
func (g *GaussianNB) Variance() [][]float64 { return g.variance }

// MLPConfig configures a one-hidden-layer perceptron.
type MLPConfig struct {
	// Hidden is the hidden layer width (default 16).
	Hidden int
	// Epochs of SGD (default 100).
	Epochs int
	// LearningRate (default 0.05).
	LearningRate float64
	// L2 weight decay (default 1e-4).
	L2 float64
}

func (c MLPConfig) withDefaults() MLPConfig {
	if c.Hidden <= 0 {
		c.Hidden = 16
	}
	if c.Epochs <= 0 {
		c.Epochs = 100
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.05
	}
	if c.L2 <= 0 {
		c.L2 = 1e-4
	}
	return c
}

// MLP is a small fully-connected network with one ReLU hidden layer and a
// softmax output, trained with plain SGD. It adds a non-linear, non-tree
// member to the AutoML search space, increasing committee diversity.
type MLP struct {
	Config MLPConfig

	w1 [][]float64 // [hidden][in]
	b1 []float64
	w2 [][]float64 // [out][hidden]
	b2 []float64
}

// NewMLP returns an MLP classifier.
func NewMLP(cfg MLPConfig) *MLP { return &MLP{Config: cfg.withDefaults()} }

// Name implements Classifier.
func (m *MLP) Name() string {
	return fmt.Sprintf("mlp(hidden=%d,lr=%g)", m.Config.Hidden, m.Config.LearningRate)
}

// Fit implements Classifier.
func (m *MLP) Fit(d *data.Dataset, r *rng.Rand) error {
	if d.Len() == 0 {
		return ErrEmptyDataset
	}
	cfg := m.Config
	in := d.Schema.NumFeatures()
	out := d.Schema.NumClasses()
	h := cfg.Hidden

	initLayer := func(rows, cols int, scale float64) [][]float64 {
		w := make([][]float64, rows)
		for i := range w {
			w[i] = make([]float64, cols)
			for j := range w[i] {
				w[i][j] = r.Normal(0, scale)
			}
		}
		return w
	}
	m.w1 = initLayer(h, in, math.Sqrt(2/float64(in)))
	m.b1 = make([]float64, h)
	m.w2 = initLayer(out, h, math.Sqrt(2/float64(h)))
	m.b2 = make([]float64, out)

	hidden := make([]float64, h)
	scores := make([]float64, out)
	proba := make([]float64, out)
	dHidden := make([]float64, h)
	n := d.Len()
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		step := cfg.LearningRate / (1 + 0.01*float64(epoch))
		for _, i := range r.Perm(n) {
			x := d.X[i]
			// Forward.
			for hi := 0; hi < h; hi++ {
				s := m.b1[hi]
				for j, v := range x {
					s += m.w1[hi][j] * v
				}
				if s < 0 {
					s = 0
				}
				hidden[hi] = s
			}
			for o := 0; o < out; o++ {
				s := m.b2[o]
				for hi := 0; hi < h; hi++ {
					s += m.w2[o][hi] * hidden[hi]
				}
				scores[o] = s
			}
			softmaxInto(scores, proba)
			// Backward.
			for hi := range dHidden {
				dHidden[hi] = 0
			}
			for o := 0; o < out; o++ {
				grad := proba[o]
				if d.Y[i] == o {
					grad -= 1
				}
				for hi := 0; hi < h; hi++ {
					dHidden[hi] += grad * m.w2[o][hi]
					m.w2[o][hi] -= step * (grad*hidden[hi] + cfg.L2*m.w2[o][hi])
				}
				m.b2[o] -= step * grad
			}
			for hi := 0; hi < h; hi++ {
				if hidden[hi] <= 0 {
					continue // ReLU gradient is zero
				}
				g := dHidden[hi]
				for j, v := range x {
					m.w1[hi][j] -= step * (g*v + cfg.L2*m.w1[hi][j])
				}
				m.b1[hi] -= step * g
			}
		}
	}
	return nil
}

// PredictProba implements Classifier.
func (m *MLP) PredictProba(x []float64) []float64 {
	out := make([]float64, len(m.w2))
	m.PredictProbaInto(x, out)
	return out
}

// PredictProbaInto implements IntoPredictor. The forward pass needs a
// hidden-layer buffer, which this path allocates per call; the batch path
// shares it across rows.
func (m *MLP) PredictProbaInto(x, out []float64) {
	m.predictInto(x, out, make([]float64, len(m.w1)))
}

// PredictProbaBatchInto implements BatchPredictor with one hidden-layer
// buffer shared across all rows of the batch.
func (m *MLP) PredictProbaBatchInto(X, out [][]float64) {
	hidden := make([]float64, len(m.w1))
	for i, x := range X {
		m.predictInto(x, out[i], hidden)
	}
}

func (m *MLP) predictInto(x, out, hidden []float64) {
	h := len(m.w1)
	no := len(m.w2)
	for hi := 0; hi < h; hi++ {
		s := m.b1[hi]
		for j, v := range x {
			s += m.w1[hi][j] * v
		}
		if s < 0 {
			s = 0
		}
		hidden[hi] = s
	}
	for o := 0; o < no; o++ {
		s := m.b2[o]
		for hi := 0; hi < h; hi++ {
			s += m.w2[o][hi] * hidden[hi]
		}
		out[o] = s
	}
	softmaxInto(out, out)
}
