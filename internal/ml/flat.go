package ml

// This file implements the flattened, structure-of-arrays (SoA) form of
// the fitted decision trees and the scratch buffers that make tree
// *training* allocation-free per node.
//
// A fitted tree is compiled once, at the end of Fit, from its *treeNode /
// *regNode pointer graph into parallel arrays laid out in preorder:
//
//	feature[i]   split feature of node i, or -1 when node i is a leaf
//	threshold[i] split threshold (classification/regression nodes), or
//	             the predicted value (regression leaves)
//	left[i]      left-child index, or the leaf-payload offset into
//	             leafProba (classification leaves)
//	right[i]     right-child index
//
// All leaf probability vectors of one tree share a single contiguous
// backing array (leafProba), so an ensemble of T trees holds T+4 slices
// instead of one allocation per node. Predict paths walk the arrays with
// integer indices — no pointer chasing, no per-call allocation — and visit
// exactly the same nodes in the same order as the pointer traversal with
// unchanged float comparisons, so every probability is bit-identical to
// the pointer implementation (which predictProbaPointer retains as the
// reference for the equivalence tests).

// flatTree is the SoA-compiled form of a fitted classification tree.
type flatTree struct {
	feature   []int32
	threshold []float64
	left      []int32
	right     []int32
	leafProba []float64 // contiguous k-float payloads, indexed via left[i]
	k         int
}

// compileTree flattens a fitted pointer tree with k classes. Sibling nodes
// are reserved adjacently (right child index == left child index + 1), so
// traversal can select the child arithmetically — i = left[i] + b — with a
// conditional move instead of an unpredictable branch. The right array is
// still materialized for layout introspection and equivalence checks.
func compileTree(root *treeNode, k int) flatTree {
	f := flatTree{k: k}
	reserve := func() int32 {
		id := int32(len(f.feature))
		f.feature = append(f.feature, 0)
		f.threshold = append(f.threshold, 0)
		f.left = append(f.left, 0)
		f.right = append(f.right, 0)
		return id
	}
	var fill func(n *treeNode, id int32)
	fill = func(n *treeNode, id int32) {
		if n.proba != nil {
			f.feature[id] = -1
			f.left[id] = int32(len(f.leafProba))
			f.leafProba = append(f.leafProba, n.proba...)
			return
		}
		l := reserve()
		r := reserve() // always l+1: siblings are adjacent
		f.feature[id] = int32(n.feature)
		f.threshold[id] = n.threshold
		f.left[id] = l
		f.right[id] = r
		fill(n.left, l)
		fill(n.right, r)
	}
	fill(root, reserve())
	return f
}

// leafFor walks the flattened tree and returns the leaf's probability
// vector as a subslice of the shared backing array. Callers must not
// mutate the result. The slice headers are hoisted into locals and each
// node's feature is loaded once, which the compiler turns into a tight
// register loop.
func (f *flatTree) leafFor(x []float64) []float64 {
	feature, threshold, left := f.feature, f.threshold, f.left
	i := int32(0)
	for {
		ft := feature[i]
		if ft < 0 {
			break
		}
		// Branchless child select: b compiles to a conditional move, so the
		// data-dependent 50/50 split direction never mispredicts. The
		// predicate is the exact x <= threshold test of the pointer walk.
		b := int32(1)
		if x[ft] <= threshold[i] {
			b = 0
		}
		i = left[i] + b
	}
	off := int(left[i])
	return f.leafProba[off : off+f.k]
}

// leafOff4 walks four rows through the tree simultaneously and returns
// their leaf payload offsets into leafProba. A single walk is a chain of
// dependent loads (node -> feature -> child index), so its speed is bound
// by load latency; interleaving four independent walks lets the CPU
// overlap those chains. Cursors that reach a leaf early just re-test the
// leaf sentinel until all four are done.
func (f *flatTree) leafOff4(x0, x1, x2, x3 []float64) (o0, o1, o2, o3 int32) {
	feature, threshold, left := f.feature, f.threshold, f.left
	var i0, i1, i2, i3 int32
	for {
		done := true
		if ft := feature[i0]; ft >= 0 {
			b := int32(1)
			if x0[ft] <= threshold[i0] {
				b = 0
			}
			i0 = left[i0] + b
			done = false
		}
		if ft := feature[i1]; ft >= 0 {
			b := int32(1)
			if x1[ft] <= threshold[i1] {
				b = 0
			}
			i1 = left[i1] + b
			done = false
		}
		if ft := feature[i2]; ft >= 0 {
			b := int32(1)
			if x2[ft] <= threshold[i2] {
				b = 0
			}
			i2 = left[i2] + b
			done = false
		}
		if ft := feature[i3]; ft >= 0 {
			b := int32(1)
			if x3[ft] <= threshold[i3] {
				b = 0
			}
			i3 = left[i3] + b
			done = false
		}
		if done {
			return left[i0], left[i1], left[i2], left[i3]
		}
	}
}

// flatRegTree is the SoA-compiled form of a fitted regression tree; leaves
// store their predicted value in threshold.
type flatRegTree struct {
	feature   []int32
	threshold []float64
	left      []int32
	right     []int32
}

// compileRegTree flattens a fitted pointer regression tree with the same
// adjacent-sibling layout as compileTree (right child == left child + 1).
func compileRegTree(root *regNode) flatRegTree {
	var f flatRegTree
	reserve := func() int32 {
		id := int32(len(f.feature))
		f.feature = append(f.feature, 0)
		f.threshold = append(f.threshold, 0)
		f.left = append(f.left, 0)
		f.right = append(f.right, 0)
		return id
	}
	var fill func(n *regNode, id int32)
	fill = func(n *regNode, id int32) {
		if n.isLeaf {
			f.feature[id] = -1
			f.threshold[id] = n.value
			return
		}
		l := reserve()
		r := reserve() // always l+1: siblings are adjacent
		f.feature[id] = int32(n.feature)
		f.threshold[id] = n.threshold
		f.left[id] = l
		f.right[id] = r
		fill(n.left, l)
		fill(n.right, r)
	}
	fill(root, reserve())
	return f
}

// predict4 walks four rows through the regression tree in lockstep (same
// rationale as flatTree.leafOff4) and returns their leaf values.
func (f *flatRegTree) predict4(x0, x1, x2, x3 []float64) (v0, v1, v2, v3 float64) {
	feature, threshold, left := f.feature, f.threshold, f.left
	var i0, i1, i2, i3 int32
	for {
		done := true
		if ft := feature[i0]; ft >= 0 {
			b := int32(1)
			if x0[ft] <= threshold[i0] {
				b = 0
			}
			i0 = left[i0] + b
			done = false
		}
		if ft := feature[i1]; ft >= 0 {
			b := int32(1)
			if x1[ft] <= threshold[i1] {
				b = 0
			}
			i1 = left[i1] + b
			done = false
		}
		if ft := feature[i2]; ft >= 0 {
			b := int32(1)
			if x2[ft] <= threshold[i2] {
				b = 0
			}
			i2 = left[i2] + b
			done = false
		}
		if ft := feature[i3]; ft >= 0 {
			b := int32(1)
			if x3[ft] <= threshold[i3] {
				b = 0
			}
			i3 = left[i3] + b
			done = false
		}
		if done {
			return threshold[i0], threshold[i1], threshold[i2], threshold[i3]
		}
	}
}

// predict walks the flattened regression tree to its leaf value with the
// same branchless child select as flatTree.leafFor.
func (f *flatRegTree) predict(x []float64) float64 {
	feature, threshold, left := f.feature, f.threshold, f.left
	i := int32(0)
	for {
		ft := feature[i]
		if ft < 0 {
			break
		}
		b := int32(1)
		if x[ft] <= threshold[i] {
			b = 0
		}
		i = left[i] + b
	}
	return threshold[i]
}

// splitScratch holds the buffers one tree fit reuses across nodes and
// candidate features, so training no longer allocates per node per
// feature. An ensemble shares one scratch across all of its trees.
type splitScratch struct {
	pairs       []valueLabel
	leftCounts  []float64
	rightCounts []float64
	part        []int // transient storage for the stable in-place partition
	regPairs    []regPair
}

// newSplitScratch sizes a scratch for n training rows and k classes.
func newSplitScratch(n, k int) *splitScratch {
	return &splitScratch{
		pairs:       make([]valueLabel, n),
		leftCounts:  make([]float64, k),
		rightCounts: make([]float64, k),
		part:        make([]int, 0, n),
	}
}

// regScratch lazily sizes the regression-pair buffer (GBDT shares one
// scratch across every round and class).
func (s *splitScratch) regScratch(n int) []regPair {
	if cap(s.regPairs) < n {
		s.regPairs = make([]regPair, n)
	}
	return s.regPairs[:n]
}

// partitionStable splits idx in place into the rows with
// rows[i][feat] <= thr followed by the rest, preserving relative order on
// both sides (exactly the order the old append-based partition produced).
// The returned slices alias idx; part is transient storage with cap >=
// len(idx).
func partitionStable(rows [][]float64, idx []int, feat int, thr float64, part []int) (left, right []int) {
	tmp := part[:0]
	nl := 0
	for _, i := range idx {
		if rows[i][feat] <= thr {
			idx[nl] = i
			nl++
		} else {
			tmp = append(tmp, i)
		}
	}
	copy(idx[nl:], tmp)
	return idx[:nl], idx[nl:]
}

// regPair pairs one feature value with its row's regression target.
type regPair struct{ v, y float64 }
