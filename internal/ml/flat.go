package ml

// This file implements the flattened, structure-of-arrays (SoA) form of
// the fitted decision trees and the scratch buffers that make tree
// *training* allocation-free per node.
//
// A fitted tree is compiled once, at the end of Fit, from its *treeNode /
// *regNode pointer graph into parallel arrays laid out in preorder:
//
//	feature[i]   split feature of node i, or -1 when node i is a leaf
//	threshold[i] split threshold (classification/regression nodes), or
//	             the predicted value (regression leaves)
//	left[i]      left-child index, or the leaf-payload offset into
//	             leafProba (classification leaves)
//	right[i]     right-child index
//
// All leaf probability vectors of one tree share a single contiguous
// backing array (leafProba), so an ensemble of T trees holds T+4 slices
// instead of one allocation per node. Predict paths walk the arrays with
// integer indices — no pointer chasing, no per-call allocation — and visit
// exactly the same nodes in the same order as the pointer traversal with
// unchanged float comparisons, so every probability is bit-identical to
// the pointer implementation (which predictProbaPointer retains as the
// reference for the equivalence tests).

// flatTree is the SoA-compiled form of a fitted classification tree.
type flatTree struct {
	feature   []int32
	threshold []float64
	left      []int32
	right     []int32
	leafProba []float64 // contiguous k-float payloads, indexed via left[i]
	k         int
}

// compileTree flattens a fitted pointer tree with k classes. Sibling nodes
// are reserved adjacently (right child index == left child index + 1), so
// traversal can select the child arithmetically — i = left[i] + b — with a
// conditional move instead of an unpredictable branch. The right array is
// still materialized for layout introspection and equivalence checks.
func compileTree(root *treeNode, k int) flatTree {
	nodes, leaves := countTree(root)
	f := flatTree{
		k:         k,
		feature:   make([]int32, 0, nodes),
		threshold: make([]float64, 0, nodes),
		left:      make([]int32, 0, nodes),
		right:     make([]int32, 0, nodes),
		leafProba: make([]float64, 0, leaves*k),
	}
	reserve := func() int32 {
		id := int32(len(f.feature))
		f.feature = append(f.feature, 0)
		f.threshold = append(f.threshold, 0)
		f.left = append(f.left, 0)
		f.right = append(f.right, 0)
		return id
	}
	var fill func(n *treeNode, id int32)
	fill = func(n *treeNode, id int32) {
		if n.proba != nil {
			f.feature[id] = -1
			f.left[id] = int32(len(f.leafProba))
			f.leafProba = append(f.leafProba, n.proba...)
			return
		}
		l := reserve()
		r := reserve() // always l+1: siblings are adjacent
		f.feature[id] = int32(n.feature)
		f.threshold[id] = n.threshold
		f.left[id] = l
		f.right[id] = r
		fill(n.left, l)
		fill(n.right, r)
	}
	fill(root, reserve())
	return f
}

// countTree sizes a pointer tree so compileTree can allocate its arrays
// exactly once.
func countTree(n *treeNode) (nodes, leaves int) {
	if n.proba != nil {
		return 1, 1
	}
	ln, ll := countTree(n.left)
	rn, rl := countTree(n.right)
	return ln + rn + 1, ll + rl
}

// leafFor walks the flattened tree and returns the leaf's probability
// vector as a subslice of the shared backing array. Callers must not
// mutate the result. The slice headers are hoisted into locals and each
// node's feature is loaded once, which the compiler turns into a tight
// register loop.
func (f *flatTree) leafFor(x []float64) []float64 {
	feature, threshold, left := f.feature, f.threshold, f.left
	i := int32(0)
	for {
		ft := feature[i]
		if ft < 0 {
			break
		}
		// Branchless child select: b compiles to a conditional move, so the
		// data-dependent 50/50 split direction never mispredicts. The
		// predicate is the exact x <= threshold test of the pointer walk.
		b := int32(1)
		if x[ft] <= threshold[i] {
			b = 0
		}
		i = left[i] + b
	}
	off := int(left[i])
	return f.leafProba[off : off+f.k]
}

// leafOff4 walks four rows through the tree simultaneously and returns
// their leaf payload offsets into leafProba. A single walk is a chain of
// dependent loads (node -> feature -> child index), so its speed is bound
// by load latency; interleaving four independent walks lets the CPU
// overlap those chains. Cursors that reach a leaf early just re-test the
// leaf sentinel until all four are done.
func (f *flatTree) leafOff4(x0, x1, x2, x3 []float64) (o0, o1, o2, o3 int32) {
	feature, threshold, left := f.feature, f.threshold, f.left
	var i0, i1, i2, i3 int32
	for {
		done := true
		if ft := feature[i0]; ft >= 0 {
			b := int32(1)
			if x0[ft] <= threshold[i0] {
				b = 0
			}
			i0 = left[i0] + b
			done = false
		}
		if ft := feature[i1]; ft >= 0 {
			b := int32(1)
			if x1[ft] <= threshold[i1] {
				b = 0
			}
			i1 = left[i1] + b
			done = false
		}
		if ft := feature[i2]; ft >= 0 {
			b := int32(1)
			if x2[ft] <= threshold[i2] {
				b = 0
			}
			i2 = left[i2] + b
			done = false
		}
		if ft := feature[i3]; ft >= 0 {
			b := int32(1)
			if x3[ft] <= threshold[i3] {
				b = 0
			}
			i3 = left[i3] + b
			done = false
		}
		if done {
			return left[i0], left[i1], left[i2], left[i3]
		}
	}
}

// flatRegTree is the SoA-compiled form of a fitted regression tree; leaves
// store their predicted value in threshold.
type flatRegTree struct {
	feature   []int32
	threshold []float64
	left      []int32
	right     []int32
}

// compileRegTree flattens a fitted pointer regression tree with the same
// adjacent-sibling layout as compileTree (right child == left child + 1).
func compileRegTree(root *regNode) flatRegTree {
	nodes := countRegTree(root)
	f := flatRegTree{
		feature:   make([]int32, 0, nodes),
		threshold: make([]float64, 0, nodes),
		left:      make([]int32, 0, nodes),
		right:     make([]int32, 0, nodes),
	}
	reserve := func() int32 {
		id := int32(len(f.feature))
		f.feature = append(f.feature, 0)
		f.threshold = append(f.threshold, 0)
		f.left = append(f.left, 0)
		f.right = append(f.right, 0)
		return id
	}
	var fill func(n *regNode, id int32)
	fill = func(n *regNode, id int32) {
		if n.isLeaf {
			f.feature[id] = -1
			f.threshold[id] = n.value
			return
		}
		l := reserve()
		r := reserve() // always l+1: siblings are adjacent
		f.feature[id] = int32(n.feature)
		f.threshold[id] = n.threshold
		f.left[id] = l
		f.right[id] = r
		fill(n.left, l)
		fill(n.right, r)
	}
	fill(root, reserve())
	return f
}

// countRegTree sizes a pointer regression tree so compileRegTree can
// allocate its arrays exactly once.
func countRegTree(n *regNode) int {
	if n.isLeaf {
		return 1
	}
	return countRegTree(n.left) + countRegTree(n.right) + 1
}

// predict4 walks four rows through the regression tree in lockstep (same
// rationale as flatTree.leafOff4) and returns their leaf values.
func (f *flatRegTree) predict4(x0, x1, x2, x3 []float64) (v0, v1, v2, v3 float64) {
	feature, threshold, left := f.feature, f.threshold, f.left
	var i0, i1, i2, i3 int32
	for {
		done := true
		if ft := feature[i0]; ft >= 0 {
			b := int32(1)
			if x0[ft] <= threshold[i0] {
				b = 0
			}
			i0 = left[i0] + b
			done = false
		}
		if ft := feature[i1]; ft >= 0 {
			b := int32(1)
			if x1[ft] <= threshold[i1] {
				b = 0
			}
			i1 = left[i1] + b
			done = false
		}
		if ft := feature[i2]; ft >= 0 {
			b := int32(1)
			if x2[ft] <= threshold[i2] {
				b = 0
			}
			i2 = left[i2] + b
			done = false
		}
		if ft := feature[i3]; ft >= 0 {
			b := int32(1)
			if x3[ft] <= threshold[i3] {
				b = 0
			}
			i3 = left[i3] + b
			done = false
		}
		if done {
			return threshold[i0], threshold[i1], threshold[i2], threshold[i3]
		}
	}
}

// predict walks the flattened regression tree to its leaf value with the
// same branchless child select as flatTree.leafFor.
func (f *flatRegTree) predict(x []float64) float64 {
	feature, threshold, left := f.feature, f.threshold, f.left
	i := int32(0)
	for {
		ft := feature[i]
		if ft < 0 {
			break
		}
		b := int32(1)
		if x[ft] <= threshold[i] {
			b = 0
		}
		i = left[i] + b
	}
	return threshold[i]
}

// splitScratch holds the state one tree fit reuses across nodes and
// candidate features: the class-count buffers and feature-draw buffer of
// the split search, plus the presorted feature orderings the tree grows
// over (see presort.go). An ensemble shares one scratch — and thus one
// master sort of the training matrix — across all of its trees.
type splitScratch struct {
	leftCounts  []float64
	rightCounts []float64
	nodeCounts  []float64 // per-node class totals (hist engine, bestSplitHist)
	feats       []int     // per-node candidate-feature draw (rng.SampleInto)
	ps          presorted
	hist        histogram // bin maps + node-histogram arenas (hist.go)

	// Chunked arenas for the pointer nodes and leaf payloads the build
	// step produces: each chunk is handed out slot by slot and replaced —
	// never reused — when full, so returned pointers and slices stay valid
	// for the life of the fitted trees while costing one allocation per
	// chunk instead of one per node.
	nodeBuf  []treeNode
	regBuf   []regNode
	probaBuf []float64
}

// newSplitScratch returns a scratch for k classes; the presorted buffers
// size themselves when presortMaster sees the training matrix.
func newSplitScratch(k int) *splitScratch {
	return &splitScratch{
		leftCounts:  make([]float64, k),
		rightCounts: make([]float64, k),
		nodeCounts:  make([]float64, k),
	}
}

func (s *splitScratch) newNode() *treeNode {
	if len(s.nodeBuf) == cap(s.nodeBuf) {
		s.nodeBuf = make([]treeNode, 0, 512)
	}
	s.nodeBuf = s.nodeBuf[:len(s.nodeBuf)+1]
	return &s.nodeBuf[len(s.nodeBuf)-1]
}

func (s *splitScratch) newRegNode() *regNode {
	if len(s.regBuf) == cap(s.regBuf) {
		s.regBuf = make([]regNode, 0, 512)
	}
	s.regBuf = s.regBuf[:len(s.regBuf)+1]
	return &s.regBuf[len(s.regBuf)-1]
}

// newProba returns a zeroed k-float leaf payload carved from the proba
// arena, capped so appends can never bleed into a neighbouring leaf.
func (s *splitScratch) newProba(k int) []float64 {
	if len(s.probaBuf)+k > cap(s.probaBuf) {
		c := 2048
		if k > c {
			c = k
		}
		s.probaBuf = make([]float64, 0, c)
	}
	l := len(s.probaBuf)
	out := s.probaBuf[l : l+k : l+k]
	s.probaBuf = s.probaBuf[:l+k]
	return out
}
