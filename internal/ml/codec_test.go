package ml

import (
	"math"
	"strings"
	"testing"

	"github.com/netml/alefb/internal/rng"
	"github.com/netml/alefb/internal/wire"
)

// codecModels is the round-trip zoo: every family the codec supports,
// with both engines for the tree models and both scalers for pipelines.
func codecModels() []Classifier {
	return []Classifier{
		NewTree(TreeConfig{MaxDepth: 6}),
		NewTree(TreeConfig{MaxDepth: 6, Engine: EngineHist}),
		NewRandomForest(8, 6),
		NewExtraTrees(8, 6),
		NewGBDT(GBDTConfig{NumRounds: 8}),
		NewGBDT(GBDTConfig{NumRounds: 8, Engine: EngineHist}),
		NewAdaBoost(AdaBoostConfig{Rounds: 6}),
		NewKNN(KNNConfig{K: 5, DistanceWeighted: true}),
		NewGaussianNB(),
		&Pipeline{Scaler: &StandardScaler{}, Model: NewLogReg(LogRegConfig{Epochs: 30})},
		&Pipeline{Scaler: &MinMaxScaler{}, Model: NewSVM(SVMConfig{Epochs: 20})},
		&Pipeline{Scaler: &StandardScaler{}, Model: NewMLP(MLPConfig{Epochs: 30})},
		&Pipeline{Scaler: nil, Model: NewKNN(KNNConfig{K: 3})},
	}
}

// TestModelCodecRoundTrip is the tentpole equality suite: for 3 seeds ×
// every family, encode→decode must yield a model whose batch predictions
// are bit-identical (Float64bits) to the original's on the zero-alloc
// path. This is the guarantee that a snapshot restored after a crash
// serves exactly what the crashed process would have served.
func TestModelCodecRoundTrip(t *testing.T) {
	for _, seed := range []uint64{3, 11, 77} {
		train := blobs(240, 3, rng.New(seed))
		test := blobs(64, 3, rng.New(seed+1))
		for _, m := range codecModels() {
			if err := m.Fit(train, rng.New(seed)); err != nil {
				t.Fatalf("seed %d %s Fit: %v", seed, m.Name(), err)
			}
			buf, err := AppendModel(nil, m)
			if err != nil {
				t.Fatalf("seed %d %s encode: %v", seed, m.Name(), err)
			}
			r := wire.NewReader(buf)
			got, err := DecodeModel(r)
			if err != nil {
				t.Fatalf("seed %d %s decode: %v", seed, m.Name(), err)
			}
			if r.Remaining() != 0 {
				t.Fatalf("seed %d %s: %d bytes left after decode", seed, m.Name(), r.Remaining())
			}
			if got.Name() != m.Name() {
				t.Fatalf("seed %d: Name %q != %q", seed, got.Name(), m.Name())
			}
			want := PredictProbaBatch(m, test.X)
			have := PredictProbaBatch(got, test.X)
			for i := range want {
				for j := range want[i] {
					if math.Float64bits(want[i][j]) != math.Float64bits(have[i][j]) {
						t.Fatalf("seed %d %s: row %d class %d: %v != %v (bit mismatch)",
							seed, m.Name(), i, j, have[i][j], want[i][j])
					}
				}
			}
		}
	}
}

// TestModelCodecDeterministic pins that encoding the same fitted model
// twice produces identical bytes — the basis of snapshot fingerprints.
func TestModelCodecDeterministic(t *testing.T) {
	train := blobs(160, 3, rng.New(5))
	for _, m := range codecModels() {
		if err := m.Fit(train, rng.New(5)); err != nil {
			t.Fatalf("%s Fit: %v", m.Name(), err)
		}
		a, err := AppendModel(nil, m)
		if err != nil {
			t.Fatalf("%s encode: %v", m.Name(), err)
		}
		b, err := AppendModel(nil, m)
		if err != nil {
			t.Fatalf("%s encode twice: %v", m.Name(), err)
		}
		if string(a) != string(b) {
			t.Fatalf("%s: two encodings differ", m.Name())
		}
	}
}

// TestModelCodecTruncation decodes strict prefixes of a valid encoding:
// every one must fail cleanly, never panic or succeed.
func TestModelCodecTruncation(t *testing.T) {
	train := blobs(120, 3, rng.New(9))
	m := NewGBDT(GBDTConfig{NumRounds: 4})
	if err := m.Fit(train, rng.New(9)); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	buf, err := AppendModel(nil, m)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	for n := 0; n < len(buf); n += 7 {
		if _, err := DecodeModel(wire.NewReader(buf[:n])); err == nil {
			t.Fatalf("prefix %d of %d decoded without error", n, len(buf))
		}
	}
}

// TestModelCodecUnknownTag pins the error path for a foreign tag byte.
func TestModelCodecUnknownTag(t *testing.T) {
	if _, err := DecodeModel(wire.NewReader([]byte{0xEE})); err == nil ||
		!strings.Contains(err.Error(), "unknown model tag") {
		t.Fatalf("err = %v, want unknown model tag", err)
	}
	if _, err := AppendModel(nil, nil); err == nil {
		t.Fatal("AppendModel(nil classifier) must error")
	}
}

// TestModelCodecDecodedTreeDepth pins that a decoded tree (nil pointer
// root, flat arrays only) survives the auxiliary accessors used by logs
// and feedback explanations.
func TestModelCodecDecodedTreeDepth(t *testing.T) {
	train := blobs(120, 3, rng.New(4))
	m := NewTree(TreeConfig{MaxDepth: 5})
	if err := m.Fit(train, rng.New(4)); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	buf, err := AppendModel(nil, m)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeModel(wire.NewReader(buf))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	dt := got.(*Tree)
	if dt.Depth() != 0 {
		// The pointer graph is deliberately not persisted; Depth must
		// degrade to zero, not panic.
		t.Fatalf("decoded Depth = %d, want 0", dt.Depth())
	}
	if name := dt.Name(); name == "" {
		t.Fatal("decoded Name empty")
	}
}
