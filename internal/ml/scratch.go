package ml

// Matrix is a reusable row-major float64 matrix: one contiguous backing
// slice plus row views into it. Rows grows the backing geometrically and
// re-slices, so a steady stream of same-shaped requests settles into
// zero allocations — the building block of the serving layer's pooled
// scratch arenas.
type Matrix struct {
	backing []float64
	rows    [][]float64
}

// Rows returns an n×k matrix view over the reusable backing. The
// returned rows are full-capacity-capped so an append on one row can
// never bleed into its neighbor. Contents are NOT cleared; callers that
// accumulate must zero or overwrite every cell they read.
func (m *Matrix) Rows(n, k int) [][]float64 {
	need := n * k
	if cap(m.backing) < need {
		m.backing = make([]float64, need)
	}
	m.backing = m.backing[:need]
	if cap(m.rows) < n {
		m.rows = make([][]float64, n)
	}
	m.rows = m.rows[:n]
	for i := 0; i < n; i++ {
		m.rows[i] = m.backing[i*k : (i+1)*k : (i+1)*k]
	}
	return m.rows
}

// Backing returns the flat backing of the last Rows call (length n*k).
func (m *Matrix) Backing() []float64 { return m.backing }

// BatchScratch carries the reusable buffers of one shared-scratch batch
// predict sweep. Scaled receives Pipeline-scaled input rows, replacing
// the per-call backing allocation of Pipeline.PredictProbaBatchInto.
type BatchScratch struct {
	Scaled Matrix
}

// ScratchBatchPredictor is implemented by classifiers whose batch path
// can run entirely on caller-owned scratch, allocating nothing in the
// steady state.
type ScratchBatchPredictor interface {
	Classifier
	PredictProbaBatchIntoScratch(X, out [][]float64, sc *BatchScratch)
}

// PredictProbaBatchIntoScratch writes the probability matrix of X into
// out like PredictProbaBatchInto, but routes any per-call working memory
// (today: pipeline input scaling) through sc so repeated sweeps reuse it.
// Results are bit-identical to PredictProbaBatchInto — the scratch only
// changes where intermediate rows live, never the arithmetic.
func PredictProbaBatchIntoScratch(c Classifier, X, out [][]float64, sc *BatchScratch) {
	if sp, ok := c.(ScratchBatchPredictor); ok {
		sp.PredictProbaBatchIntoScratch(X, out, sc)
		return
	}
	PredictProbaBatchInto(c, X, out)
}

// PredictProbaBatchIntoScratch implements ScratchBatchPredictor: rows are
// scaled into the scratch matrix (instead of a fresh backing per call)
// and the wrapped model's batch path runs over the scaled views.
func (p *Pipeline) PredictProbaBatchIntoScratch(X, out [][]float64, sc *BatchScratch) {
	if p.Scaler == nil || len(X) == 0 {
		p.PredictProbaBatchInto(X, out)
		return
	}
	scaled := sc.Scaled.Rows(len(X), len(X[0]))
	for i, x := range X {
		p.Scaler.TransformInto(x, scaled[i])
	}
	// Models with a whole-matrix path sweep the scaled matrix at once;
	// the rest fall back to the same row-at-a-time predict the
	// unscratched method uses — per-row arithmetic is identical either
	// way, only the scaled rows' home changes.
	PredictProbaBatchInto(p.Model, scaled, out)
}
