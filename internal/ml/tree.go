package ml

import (
	"fmt"
	"math"

	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/rng"
)

// TreeConfig configures a CART decision-tree classifier.
type TreeConfig struct {
	// MaxDepth bounds the tree depth; <= 0 means unbounded.
	MaxDepth int
	// MinSamplesLeaf is the minimum rows in each child of a split.
	MinSamplesLeaf int
	// MinSamplesSplit is the minimum rows required to consider splitting.
	MinSamplesSplit int
	// MaxFeatures is the number of features examined per split; <= 0
	// means all features. Random forests set this to sqrt(nFeatures).
	MaxFeatures int
	// RandomThresholds picks one uniform threshold per candidate feature
	// instead of scanning all cut points (the extra-trees rule).
	RandomThresholds bool
}

func (c TreeConfig) withDefaults() TreeConfig {
	if c.MinSamplesLeaf <= 0 {
		c.MinSamplesLeaf = 1
	}
	if c.MinSamplesSplit < 2*c.MinSamplesLeaf {
		c.MinSamplesSplit = 2 * c.MinSamplesLeaf
	}
	return c
}

// Tree is a CART decision-tree classifier. Fit grows the tree with the
// presort-and-partition engine (see presort.go), builds the usual pointer
// tree and then compiles it into a flattened structure-of-arrays form
// (see flat.go) that every predict path traverses.
type Tree struct {
	Config TreeConfig

	root      *treeNode
	flat      flatTree
	nClasses  int
	nFeatures int
}

type treeNode struct {
	// Leaf payload: class-probability distribution.
	proba []float64
	// Internal payload: rows with x[feature] <= threshold go left.
	feature     int
	threshold   float64
	left, right *treeNode
}

// NewTree returns a tree classifier with the given configuration.
func NewTree(cfg TreeConfig) *Tree { return &Tree{Config: cfg.withDefaults()} }

// Name implements Classifier.
func (t *Tree) Name() string {
	kind := "cart"
	if t.Config.RandomThresholds {
		kind = "xtree"
	}
	return fmt.Sprintf("%s(depth=%d,leaf=%d)", kind, t.Config.MaxDepth, t.Config.MinSamplesLeaf)
}

// Fit implements Classifier.
func (t *Tree) Fit(d *data.Dataset, r *rng.Rand) error {
	if d.Len() == 0 {
		return ErrEmptyDataset
	}
	s := newSplitScratch(d.Schema.NumClasses())
	s.ps.presortMaster(d.X, d.Schema.NumFeatures())
	s.ps.prepareFull()
	return t.fit(d, r, s)
}

// fit trains the tree with caller-provided scratch whose presorted view
// has been prepared for exactly the rows of d (prepareFull, or
// prepareSubset with the index set d was built from), so ensembles share
// one master sort and one scratch across all of their trees.
func (t *Tree) fit(d *data.Dataset, r *rng.Rand, s *splitScratch) error {
	if d.Len() == 0 {
		return ErrEmptyDataset
	}
	t.nClasses = d.Schema.NumClasses()
	t.nFeatures = d.Schema.NumFeatures()
	t.root = t.build(d, 0, d.Len(), 0, r, s)
	t.flat = compileTree(t.root, t.nClasses)
	return nil
}

// PredictProba implements Classifier.
func (t *Tree) PredictProba(x []float64) []float64 {
	out := make([]float64, t.nClasses)
	t.PredictProbaInto(x, out)
	return out
}

// PredictProbaInto implements IntoPredictor via the flattened traversal.
func (t *Tree) PredictProbaInto(x, out []float64) {
	copy(out, t.flat.leafFor(x))
}

// PredictProbaBatchInto implements BatchPredictor.
func (t *Tree) PredictProbaBatchInto(X, out [][]float64) {
	for i, x := range X {
		copy(out[i], t.flat.leafFor(x))
	}
}

// predictProbaPointer is the original pointer-graph traversal, retained as
// the reference implementation for the flat-vs-pointer equivalence tests.
func (t *Tree) predictProbaPointer(x []float64) []float64 {
	n := t.root
	for n.proba == nil {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return append([]float64(nil), n.proba...)
}

func (t *Tree) leaf(d *data.Dataset, rows []int32, s *splitScratch) *treeNode {
	proba := s.newProba(t.nClasses)
	for _, i := range rows {
		proba[d.Y[i]]++
	}
	normalize(proba)
	n := s.newNode()
	n.proba = proba
	return n
}

// build grows the subtree for node segment [lo, hi) of the presorted
// working view in s.ps.
func (t *Tree) build(d *data.Dataset, lo, hi, depth int, r *rng.Rand, s *splitScratch) *treeNode {
	cfg := t.Config
	rows := s.ps.rows[lo:hi]
	if hi-lo < cfg.MinSamplesSplit || (cfg.MaxDepth > 0 && depth >= cfg.MaxDepth) || pure(d, rows) {
		return t.leaf(d, rows, s)
	}
	feat, thr, ok := t.bestSplit(d, lo, hi, r, s)
	if !ok {
		return t.leaf(d, rows, s)
	}
	nl := s.ps.markLeft(feat, lo, hi, thr)
	if nl < cfg.MinSamplesLeaf || hi-lo-nl < cfg.MinSamplesLeaf {
		return t.leaf(d, rows, s)
	}
	s.ps.partition(lo, hi)
	node := s.newNode()
	node.feature = feat
	node.threshold = thr
	node.left = t.build(d, lo, lo+nl, depth+1, r, s)
	node.right = t.build(d, lo+nl, hi, depth+1, r, s)
	return node
}

func pure(d *data.Dataset, rows []int32) bool {
	first := d.Y[rows[0]]
	for _, i := range rows[1:] {
		if d.Y[i] != first {
			return false
		}
	}
	return true
}

// bestSplit finds the (feature, threshold) pair with lowest weighted Gini
// impurity among a random subset of features, scanning each candidate's
// presorted segment directly — no per-node sort, no allocation.
func (t *Tree) bestSplit(d *data.Dataset, lo, hi int, r *rng.Rand, s *splitScratch) (feat int, thr float64, ok bool) {
	nf := t.nFeatures
	candidates := nf
	if t.Config.MaxFeatures > 0 && t.Config.MaxFeatures < nf {
		candidates = t.Config.MaxFeatures
	}
	s.feats = r.SampleInto(nf, candidates, s.feats)

	ps := &s.ps
	n, m := ps.n, hi-lo
	bestGini := math.Inf(1)
	for _, f := range s.feats {
		vals := ps.val[f*n+lo : f*n+hi]
		rows := ps.ord[f*n+lo : f*n+hi]
		if vals[0] == vals[m-1] {
			continue // constant feature in this node
		}
		if t.Config.RandomThresholds {
			cut := r.Uniform(vals[0], vals[m-1])
			g, valid := giniAt(vals, rows, d.Y, cut, t.Config.MinSamplesLeaf, s.leftCounts, s.rightCounts)
			if valid && g < bestGini {
				bestGini, feat, thr, ok = g, f, cut, true
			}
			continue
		}
		// Exhaustive scan: sweep the presorted values maintaining class
		// counts.
		leftCounts, rightCounts := s.leftCounts, s.rightCounts
		for i := range leftCounts {
			leftCounts[i], rightCounts[i] = 0, 0
		}
		for _, row := range rows {
			rightCounts[d.Y[row]]++
		}
		nn := float64(m)
		for i := 0; i < m-1; i++ {
			y := d.Y[rows[i]]
			leftCounts[y]++
			rightCounts[y]--
			if vals[i] == vals[i+1] {
				continue
			}
			nl := float64(i + 1)
			nr := nn - nl
			if int(nl) < t.Config.MinSamplesLeaf || int(nr) < t.Config.MinSamplesLeaf {
				continue
			}
			g := (nl*giniImpurity(leftCounts, nl) + nr*giniImpurity(rightCounts, nr)) / nn
			if g < bestGini {
				bestGini = g
				feat = f
				thr = (vals[i] + vals[i+1]) / 2
				ok = true
			}
		}
	}
	return feat, thr, ok
}

func giniImpurity(counts []float64, n float64) float64 {
	g := 1.0
	for _, c := range counts {
		p := c / n
		g -= p * p
	}
	return g
}

// giniAt evaluates a single threshold over one presorted feature segment,
// using the caller's count buffers as scratch.
func giniAt(vals []float64, rows []int32, y []int, cut float64, minLeaf int, leftCounts, rightCounts []float64) (float64, bool) {
	for i := range leftCounts {
		leftCounts[i], rightCounts[i] = 0, 0
	}
	nl, nr := 0.0, 0.0
	for i, v := range vals {
		if v <= cut {
			leftCounts[y[rows[i]]]++
			nl++
		} else {
			rightCounts[y[rows[i]]]++
			nr++
		}
	}
	if int(nl) < minLeaf || int(nr) < minLeaf {
		return 0, false
	}
	n := nl + nr
	return (nl*giniImpurity(leftCounts, nl) + nr*giniImpurity(rightCounts, nr)) / n, true
}

// Depth returns the depth of the fitted tree (0 for a lone leaf).
func (t *Tree) Depth() int { return nodeDepth(t.root) }

func nodeDepth(n *treeNode) int {
	if n == nil || n.proba != nil {
		return 0
	}
	l, r := nodeDepth(n.left), nodeDepth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// --- regression tree (used by gradient boosting) ---

// regTree is a small CART regression tree minimizing squared error.
type regTree struct {
	maxDepth       int
	minSamplesLeaf int
	root           *regNode
	flat           flatRegTree
}

type regNode struct {
	isLeaf      bool
	value       float64
	feature     int
	threshold   float64
	left, right *regNode
}

// fit trains the tree on targets y over the presorted working view
// prepared in s.ps (y is indexed by working row). The caller prepares the
// view, so GBDT reuses one master sort across every round and class.
func (t *regTree) fit(y []float64, s *splitScratch) {
	t.root = t.build(y, 0, s.ps.n, 0, s)
	t.flat = compileRegTree(t.root)
}

func (t *regTree) build(y []float64, lo, hi, depth int, s *splitScratch) *regNode {
	mean := 0.0
	for _, i := range s.ps.rows[lo:hi] {
		mean += y[i]
	}
	mean /= float64(hi - lo)
	if depth >= t.maxDepth || hi-lo < 2*t.minSamplesLeaf {
		return t.regLeaf(mean, s)
	}
	feat, thr, ok := t.bestSplit(y, lo, hi, s)
	if !ok {
		return t.regLeaf(mean, s)
	}
	nl := s.ps.markLeft(feat, lo, hi, thr)
	if nl < t.minSamplesLeaf || hi-lo-nl < t.minSamplesLeaf {
		return t.regLeaf(mean, s)
	}
	s.ps.partition(lo, hi)
	node := s.newRegNode()
	node.feature = feat
	node.threshold = thr
	node.left = t.build(y, lo, lo+nl, depth+1, s)
	node.right = t.build(y, lo+nl, hi, depth+1, s)
	return node
}

func (t *regTree) regLeaf(mean float64, s *splitScratch) *regNode {
	n := s.newRegNode()
	n.isLeaf = true
	n.value = mean
	return n
}

func (t *regTree) bestSplit(y []float64, lo, hi int, s *splitScratch) (feat int, thr float64, ok bool) {
	ps := &s.ps
	n, m := ps.n, hi-lo
	bestScore := math.Inf(1)
	for f := 0; f < ps.nf; f++ {
		vals := ps.val[f*n+lo : f*n+hi]
		rows := ps.ord[f*n+lo : f*n+hi]
		if vals[0] == vals[m-1] {
			continue
		}
		sumL, sumR, sqL, sqR := 0.0, 0.0, 0.0, 0.0
		for _, row := range rows {
			v := y[row]
			sumR += v
			sqR += v * v
		}
		nn := float64(m)
		for i := 0; i < m-1; i++ {
			v := y[rows[i]]
			sumL += v
			sqL += v * v
			sumR -= v
			sqR -= v * v
			if vals[i] == vals[i+1] {
				continue
			}
			nl := float64(i + 1)
			nr := nn - nl
			if int(nl) < t.minSamplesLeaf || int(nr) < t.minSamplesLeaf {
				continue
			}
			// Sum of squared errors around each child's mean.
			score := (sqL - sumL*sumL/nl) + (sqR - sumR*sumR/nr)
			if score < bestScore {
				bestScore = score
				feat = f
				thr = (vals[i] + vals[i+1]) / 2
				ok = true
			}
		}
	}
	return feat, thr, ok
}

// predict walks the flattened form (identical nodes, identical order, so
// identical values to the pointer walk below).
func (t *regTree) predict(x []float64) float64 {
	return t.flat.predict(x)
}

// predictPointer is the original pointer traversal, retained as the
// reference for the flat-vs-pointer equivalence tests.
func (t *regTree) predictPointer(x []float64) float64 {
	n := t.root
	for !n.isLeaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}
