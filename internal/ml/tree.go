package ml

import (
	"fmt"
	"math"

	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/rng"
)

// TreeConfig configures a CART decision-tree classifier.
type TreeConfig struct {
	// MaxDepth bounds the tree depth; <= 0 means unbounded.
	MaxDepth int
	// MinSamplesLeaf is the minimum rows in each child of a split.
	MinSamplesLeaf int
	// MinSamplesSplit is the minimum rows required to consider splitting.
	MinSamplesSplit int
	// MaxFeatures is the number of features examined per split; <= 0
	// means all features. Random forests set this to sqrt(nFeatures).
	MaxFeatures int
	// RandomThresholds picks one uniform threshold per candidate feature
	// instead of scanning all cut points (the extra-trees rule).
	RandomThresholds bool
	// Engine selects the training engine: EnginePresort (default) grows
	// nodes over presorted value runs, EngineHist over ≤256-bin feature
	// histograms with parent−sibling subtraction (hist.go). On columns
	// with at most 256 distinct values the two fit bit-identical trees.
	Engine TrainEngine
	// HistWorkers caps the feature-parallel histogram scans of the hist
	// engine; <= 1 stays serial (results are identical either way).
	HistWorkers int
}

func (c TreeConfig) withDefaults() TreeConfig {
	if c.MinSamplesLeaf <= 0 {
		c.MinSamplesLeaf = 1
	}
	if c.MinSamplesSplit < 2*c.MinSamplesLeaf {
		c.MinSamplesSplit = 2 * c.MinSamplesLeaf
	}
	return c
}

// Tree is a CART decision-tree classifier. Fit grows the tree with the
// presort-and-partition engine (see presort.go), builds the usual pointer
// tree and then compiles it into a flattened structure-of-arrays form
// (see flat.go) that every predict path traverses.
type Tree struct {
	Config TreeConfig

	root      *treeNode
	flat      flatTree
	nClasses  int
	nFeatures int
}

type treeNode struct {
	// Leaf payload: class-probability distribution.
	proba []float64
	// Internal payload: rows with x[feature] <= threshold go left.
	feature     int
	threshold   float64
	left, right *treeNode
}

// NewTree returns a tree classifier with the given configuration.
func NewTree(cfg TreeConfig) *Tree { return &Tree{Config: cfg.withDefaults()} }

// Name implements Classifier.
func (t *Tree) Name() string {
	kind := "cart"
	if t.Config.RandomThresholds {
		kind = "xtree"
	}
	return fmt.Sprintf("%s(depth=%d,leaf=%d)", kind, t.Config.MaxDepth, t.Config.MinSamplesLeaf)
}

// Fit implements Classifier.
func (t *Tree) Fit(d *data.Dataset, r *rng.Rand) error {
	if d.Len() == 0 {
		return ErrEmptyDataset
	}
	s := newSplitScratch(d.Schema.NumClasses())
	if t.Config.Engine == EngineHist {
		s.ps.sortMaster(d.X, d.Schema.NumFeatures())
		s.hist.initHist(&s.ps, d.Schema.NumClasses(), t.Config.HistWorkers)
		s.hist.prepareFull(&s.ps)
	} else {
		s.ps.presortMaster(d.X, d.Schema.NumFeatures())
		s.ps.prepareFull()
	}
	return t.fit(d, r, s)
}

// fit trains the tree with caller-provided scratch whose presorted view
// has been prepared for exactly the rows of d (prepareFull, or
// prepareSubset with the index set d was built from), so ensembles share
// one master sort and one scratch across all of their trees.
func (t *Tree) fit(d *data.Dataset, r *rng.Rand, s *splitScratch) error {
	if d.Len() == 0 {
		return ErrEmptyDataset
	}
	t.nClasses = d.Schema.NumClasses()
	t.nFeatures = d.Schema.NumFeatures()
	if t.Config.Engine == EngineHist {
		root := s.hist.slot(0)
		s.histScanClass(d.Y, 0, d.Len(), root, t.Config.HistWorkers)
		t.root = t.buildHist(d, 0, d.Len(), 0, r, s, root)
	} else {
		t.root = t.build(d, 0, d.Len(), 0, r, s)
	}
	t.flat = compileTree(t.root, t.nClasses)
	return nil
}

// PredictProba implements Classifier.
func (t *Tree) PredictProba(x []float64) []float64 {
	out := make([]float64, t.nClasses)
	t.PredictProbaInto(x, out)
	return out
}

// PredictProbaInto implements IntoPredictor via the flattened traversal.
func (t *Tree) PredictProbaInto(x, out []float64) {
	copy(out, t.flat.leafFor(x))
}

// PredictProbaBatchInto implements BatchPredictor.
func (t *Tree) PredictProbaBatchInto(X, out [][]float64) {
	for i, x := range X {
		copy(out[i], t.flat.leafFor(x))
	}
}

// predictProbaPointer is the original pointer-graph traversal, retained as
// the reference implementation for the flat-vs-pointer equivalence tests.
func (t *Tree) predictProbaPointer(x []float64) []float64 {
	n := t.root
	for n.proba == nil {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return append([]float64(nil), n.proba...)
}

func (t *Tree) leaf(d *data.Dataset, rows []int32, s *splitScratch) *treeNode {
	proba := s.newProba(t.nClasses)
	for _, i := range rows {
		proba[d.Y[i]]++
	}
	normalize(proba)
	n := s.newNode()
	n.proba = proba
	return n
}

// build grows the subtree for node segment [lo, hi) of the presorted
// working view in s.ps.
func (t *Tree) build(d *data.Dataset, lo, hi, depth int, r *rng.Rand, s *splitScratch) *treeNode {
	cfg := t.Config
	rows := s.ps.rows[lo:hi]
	if hi-lo < cfg.MinSamplesSplit || (cfg.MaxDepth > 0 && depth >= cfg.MaxDepth) || pure(d, rows) {
		return t.leaf(d, rows, s)
	}
	feat, thr, ok := t.bestSplit(d, lo, hi, r, s)
	if !ok {
		return t.leaf(d, rows, s)
	}
	nl := s.ps.markLeft(feat, lo, hi, thr)
	if nl < cfg.MinSamplesLeaf || hi-lo-nl < cfg.MinSamplesLeaf {
		return t.leaf(d, rows, s)
	}
	s.ps.partition(lo, hi)
	node := s.newNode()
	node.feature = feat
	node.threshold = thr
	node.left = t.build(d, lo, lo+nl, depth+1, r, s)
	node.right = t.build(d, lo+nl, hi, depth+1, r, s)
	return node
}

func pure(d *data.Dataset, rows []int32) bool {
	first := d.Y[rows[0]]
	for _, i := range rows[1:] {
		if d.Y[i] != first {
			return false
		}
	}
	return true
}

// bestSplit finds the (feature, threshold) pair with lowest weighted Gini
// impurity among a random subset of features, scanning each candidate's
// presorted segment directly — no per-node sort, no allocation.
func (t *Tree) bestSplit(d *data.Dataset, lo, hi int, r *rng.Rand, s *splitScratch) (feat int, thr float64, ok bool) {
	nf := t.nFeatures
	candidates := nf
	if t.Config.MaxFeatures > 0 && t.Config.MaxFeatures < nf {
		candidates = t.Config.MaxFeatures
	}
	s.feats = r.SampleInto(nf, candidates, s.feats)

	ps := &s.ps
	n, m := ps.n, hi-lo
	bestGini := math.Inf(1)
	for _, f := range s.feats {
		vals := ps.val[f*n+lo : f*n+hi]
		rows := ps.ord[f*n+lo : f*n+hi]
		if vals[0] == vals[m-1] {
			continue // constant feature in this node
		}
		if t.Config.RandomThresholds {
			cut := r.Uniform(vals[0], vals[m-1])
			g, valid := giniAt(vals, rows, d.Y, cut, t.Config.MinSamplesLeaf, s.leftCounts, s.rightCounts)
			if valid && g < bestGini {
				bestGini, feat, thr, ok = g, f, cut, true
			}
			continue
		}
		// Exhaustive scan: sweep the presorted values maintaining class
		// counts.
		leftCounts, rightCounts := s.leftCounts, s.rightCounts
		for i := range leftCounts {
			leftCounts[i], rightCounts[i] = 0, 0
		}
		for _, row := range rows {
			rightCounts[d.Y[row]]++
		}
		nn := float64(m)
		for i := 0; i < m-1; i++ {
			y := d.Y[rows[i]]
			leftCounts[y]++
			rightCounts[y]--
			if vals[i] == vals[i+1] {
				continue
			}
			nl := float64(i + 1)
			nr := nn - nl
			if int(nl) < t.Config.MinSamplesLeaf || int(nr) < t.Config.MinSamplesLeaf {
				continue
			}
			g := (nl*giniImpurity(leftCounts, nl) + nr*giniImpurity(rightCounts, nr)) / nn
			if g < bestGini {
				bestGini = g
				feat = f
				thr = (vals[i] + vals[i+1]) / 2
				ok = true
			}
		}
	}
	return feat, thr, ok
}

func giniImpurity(counts []float64, n float64) float64 {
	g := 1.0
	for _, c := range counts {
		p := c / n
		g -= p * p
	}
	return g
}

// giniAt evaluates a single threshold over one presorted feature segment,
// using the caller's count buffers as scratch.
func giniAt(vals []float64, rows []int32, y []int, cut float64, minLeaf int, leftCounts, rightCounts []float64) (float64, bool) {
	for i := range leftCounts {
		leftCounts[i], rightCounts[i] = 0, 0
	}
	nl, nr := 0.0, 0.0
	for i, v := range vals {
		if v <= cut {
			leftCounts[y[rows[i]]]++
			nl++
		} else {
			rightCounts[y[rows[i]]]++
			nr++
		}
	}
	if int(nl) < minLeaf || int(nr) < minLeaf {
		return 0, false
	}
	n := nl + nr
	return (nl*giniImpurity(leftCounts, nl) + nr*giniImpurity(rightCounts, nr)) / n, true
}

// buildHist grows the subtree for node segment [lo, hi) with the
// histogram engine: hist is this node's class-count histogram (one slot
// region per feature bin). After committing a split only the smaller
// child is scanned over its rows; the larger child's histogram is derived
// by parent−sibling subtraction. Children that cannot split (too small,
// or at the depth cap) get no histogram at all — their recursion hits the
// leaf guard before touching it.
func (t *Tree) buildHist(d *data.Dataset, lo, hi, depth int, r *rng.Rand, s *splitScratch, hist []float64) *treeNode {
	cfg := t.Config
	rows := s.ps.rows[lo:hi]
	if hi-lo < cfg.MinSamplesSplit || (cfg.MaxDepth > 0 && depth >= cfg.MaxDepth) || pure(d, rows) {
		return t.leaf(d, rows, s)
	}
	feat, splitBin, thr, ok := t.bestSplitHist(r, s, lo, hi, hist)
	if !ok {
		return t.leaf(d, rows, s)
	}
	nl := s.histMarkLeft(feat, splitBin, lo, hi)
	nr := hi - lo - nl
	if nl < cfg.MinSamplesLeaf || nr < cfg.MinSamplesLeaf {
		return t.leaf(d, rows, s)
	}
	s.histPartition(lo, hi)
	needL := nl >= cfg.MinSamplesSplit && (cfg.MaxDepth <= 0 || depth+1 < cfg.MaxDepth)
	needR := nr >= cfg.MinSamplesSplit && (cfg.MaxDepth <= 0 || depth+1 < cfg.MaxDepth)
	var hl, hr []float64
	switch {
	case needL && needR:
		hl, hr = s.hist.slot(2*(depth+1)), s.hist.slot(2*(depth+1)+1)
		if nl <= nr {
			s.histScanClass(d.Y, lo, lo+nl, hl, cfg.HistWorkers)
			histSubtract(hr, hist, hl)
		} else {
			s.histScanClass(d.Y, lo+nl, hi, hr, cfg.HistWorkers)
			histSubtract(hl, hist, hr)
		}
	case needL:
		hl = s.hist.slot(2 * (depth + 1))
		s.histScanClass(d.Y, lo, lo+nl, hl, cfg.HistWorkers)
	case needR:
		hr = s.hist.slot(2*(depth+1) + 1)
		s.histScanClass(d.Y, lo+nl, hi, hr, cfg.HistWorkers)
	}
	node := s.newNode()
	node.feature = feat
	node.threshold = thr
	node.left = t.buildHist(d, lo, lo+nl, depth+1, r, s, hl)
	node.right = t.buildHist(d, lo+nl, hi, depth+1, r, s, hr)
	return node
}

// bestSplitHist is bestSplit over the node histogram: candidates lie
// between consecutive node-non-empty bins, with the threshold
// reconstructed as (binHi[prev]+binLo[next])/2 — in lossless binning
// exactly the presort engine's midpoint of adjacent distinct values, with
// identical integer class counts feeding the identical Gini expression,
// so the same split wins. The rng draws (feature subset, extra-trees
// thresholds) replay the presort engine's stream.
func (t *Tree) bestSplitHist(r *rng.Rand, s *splitScratch, lo, hi int, node []float64) (feat, splitBin int, thr float64, ok bool) {
	nf := t.nFeatures
	candidates := nf
	if t.Config.MaxFeatures > 0 && t.Config.MaxFeatures < nf {
		candidates = t.Config.MaxFeatures
	}
	s.feats = r.SampleInto(nf, candidates, s.feats)

	h := &s.hist
	k := t.nClasses
	nn := float64(hi - lo)
	minLeaf := t.Config.MinSamplesLeaf
	// The node's class totals are identical on every feature's bin region
	// (each row appears once per feature) and are integer counts, whose
	// float64 sums are exact in any order — so one pass over the first
	// candidate's bins yields the right-side seed for every feature.
	totals := s.nodeCounts
	{
		f0 := s.feats[0]
		bins := node[int(h.binOff[f0])*k : int(h.binOff[f0+1])*k]
		for y := 0; y < k; y++ {
			totals[y] = 0
		}
		for off := 0; off < len(bins); off += k {
			for y := 0; y < k; y++ {
				totals[y] += bins[off+y]
			}
		}
	}
	bestGini := math.Inf(1)
	for _, f := range s.feats {
		base := int(h.binOff[f])
		bins := node[base*k : int(h.binOff[f+1])*k]
		nb := int(h.nBins[f])
		leftCounts, rightCounts := s.leftCounts, s.rightCounts
		if t.Config.RandomThresholds {
			// The uniform draw needs the node's value range, so random mode
			// locates the extreme non-empty bins with a two-ended scan; the
			// draw is skipped for constant features, which keeps the rng
			// stream aligned with the presort engine's.
			first, last := 0, nb-1
			for first < nb && binCount(bins, first, k) == 0 {
				first++
			}
			for last > first && binCount(bins, last, k) == 0 {
				last--
			}
			if first >= last {
				continue // constant feature in this node
			}
			copy(rightCounts, totals)
			cut := r.Uniform(h.binLo[base+first], h.binHi[base+last])
			g, sb, cthr, valid := t.giniAtHist(bins, base, first, last, cut, s)
			if valid && g < bestGini {
				bestGini, feat, splitBin, thr, ok = g, f, sb, cthr, true
			}
			continue
		}
		// Exhaustive mode: one sweep over the bins, evaluating the boundary
		// between each pair of consecutive non-empty bins.
		copy(rightCounts, totals)
		for y := 0; y < k; y++ {
			leftCounts[y] = 0
		}
		nl := 0.0
		prev := -1
		for b := 0; b < nb; b++ {
			off := b * k
			cnt := 0.0
			for y := 0; y < k; y++ {
				cnt += bins[off+y]
			}
			if cnt == 0 {
				continue
			}
			if prev >= 0 {
				nr := nn - nl
				if int(nl) >= minLeaf && int(nr) >= minLeaf {
					g := (nl*giniImpurity(leftCounts, nl) + nr*giniImpurity(rightCounts, nr)) / nn
					if g < bestGini {
						bestGini = g
						feat = f
						splitBin = prev
						thr = (h.binHi[base+prev] + h.binLo[base+b]) / 2
						ok = true
					}
				}
			}
			for y := 0; y < k; y++ {
				leftCounts[y] += bins[off+y]
				rightCounts[y] -= bins[off+y]
			}
			nl += cnt
			prev = b
		}
	}
	return feat, splitBin, thr, ok
}

// binCount sums one bin's class counts.
func binCount(bins []float64, b, k int) float64 {
	c := 0.0
	for y := 0; y < k; y++ {
		c += bins[b*k+y]
	}
	return c
}

// giniAtHist evaluates one random cut over the node histogram (the
// extra-trees rule): rows go left when their bin's upper bound is at most
// the cut, which in lossless binning is exactly value <= cut. The
// returned threshold is the cut itself unless the cut lands strictly
// inside a lossy bin, in which case it snaps to the split bin's upper
// bound so training and prediction stay consistent.
func (t *Tree) giniAtHist(bins []float64, base, first, last int, cut float64, s *splitScratch) (g float64, splitBin int, thr float64, valid bool) {
	h := &s.hist
	k := t.nClasses
	leftCounts, rightCounts := s.leftCounts, s.rightCounts
	// rightCounts already holds the node totals (caller initialized).
	nl, nn := 0.0, 0.0
	for y := 0; y < k; y++ {
		leftCounts[y] = 0
		nn += rightCounts[y]
	}
	splitBin, next := -1, -1
	for b := first; b <= last; b++ {
		cnt := binCount(bins, b, k)
		if cnt == 0 {
			continue
		}
		if h.binHi[base+b] > cut {
			next = b
			break
		}
		for y := 0; y < k; y++ {
			leftCounts[y] += bins[b*k+y]
		}
		nl += cnt
		splitBin = b
	}
	nr := nn - nl
	if int(nl) < t.Config.MinSamplesLeaf || int(nr) < t.Config.MinSamplesLeaf {
		return 0, 0, 0, false
	}
	for y := 0; y < k; y++ {
		rightCounts[y] -= leftCounts[y]
	}
	thr = cut
	if next >= 0 && cut >= h.binLo[base+next] {
		thr = h.binHi[base+splitBin]
	}
	g = (nl*giniImpurity(leftCounts, nl) + nr*giniImpurity(rightCounts, nr)) / nn
	return g, splitBin, thr, true
}

// Depth returns the depth of the fitted tree (0 for a lone leaf).
func (t *Tree) Depth() int { return nodeDepth(t.root) }

func nodeDepth(n *treeNode) int {
	if n == nil || n.proba != nil {
		return 0
	}
	l, r := nodeDepth(n.left), nodeDepth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// --- regression tree (used by gradient boosting) ---

// regTree is a small CART regression tree minimizing squared error.
type regTree struct {
	maxDepth       int
	minSamplesLeaf int
	engine         TrainEngine
	histWorkers    int
	root           *regNode
	flat           flatRegTree
}

type regNode struct {
	isLeaf      bool
	value       float64
	feature     int
	threshold   float64
	left, right *regNode
}

// fit trains the tree on targets y over the presorted working view
// prepared in s.ps (y is indexed by working row). The caller prepares the
// view, so GBDT reuses one master sort across every round and class.
func (t *regTree) fit(y []float64, s *splitScratch) {
	if t.engine == EngineHist {
		root := s.hist.slot(0)
		s.histScanReg(y, 0, s.ps.n, root, t.histWorkers)
		t.root = t.buildHist(y, 0, s.ps.n, 0, s, root)
	} else {
		t.root = t.build(y, 0, s.ps.n, 0, s)
	}
	t.flat = compileRegTree(t.root)
}

func (t *regTree) build(y []float64, lo, hi, depth int, s *splitScratch) *regNode {
	mean := 0.0
	for _, i := range s.ps.rows[lo:hi] {
		mean += y[i]
	}
	mean /= float64(hi - lo)
	if depth >= t.maxDepth || hi-lo < 2*t.minSamplesLeaf {
		return t.regLeaf(mean, s)
	}
	feat, thr, ok := t.bestSplit(y, lo, hi, s)
	if !ok {
		return t.regLeaf(mean, s)
	}
	nl := s.ps.markLeft(feat, lo, hi, thr)
	if nl < t.minSamplesLeaf || hi-lo-nl < t.minSamplesLeaf {
		return t.regLeaf(mean, s)
	}
	s.ps.partition(lo, hi)
	node := s.newRegNode()
	node.feature = feat
	node.threshold = thr
	node.left = t.build(y, lo, lo+nl, depth+1, s)
	node.right = t.build(y, lo+nl, hi, depth+1, s)
	return node
}

func (t *regTree) regLeaf(mean float64, s *splitScratch) *regNode {
	n := s.newRegNode()
	n.isLeaf = true
	n.value = mean
	return n
}

func (t *regTree) bestSplit(y []float64, lo, hi int, s *splitScratch) (feat int, thr float64, ok bool) {
	ps := &s.ps
	n, m := ps.n, hi-lo
	bestScore := math.Inf(1)
	for f := 0; f < ps.nf; f++ {
		vals := ps.val[f*n+lo : f*n+hi]
		rows := ps.ord[f*n+lo : f*n+hi]
		if vals[0] == vals[m-1] {
			continue
		}
		sumL, sumR, sqL, sqR := 0.0, 0.0, 0.0, 0.0
		for _, row := range rows {
			v := y[row]
			sumR += v
			sqR += v * v
		}
		nn := float64(m)
		for i := 0; i < m-1; i++ {
			v := y[rows[i]]
			sumL += v
			sqL += v * v
			sumR -= v
			sqR -= v * v
			if vals[i] == vals[i+1] {
				continue
			}
			nl := float64(i + 1)
			nr := nn - nl
			if int(nl) < t.minSamplesLeaf || int(nr) < t.minSamplesLeaf {
				continue
			}
			// Sum of squared errors around each child's mean.
			score := (sqL - sumL*sumL/nl) + (sqR - sumR*sumR/nr)
			if score < bestScore {
				bestScore = score
				feat = f
				thr = (vals[i] + vals[i+1]) / 2
				ok = true
			}
		}
	}
	return feat, thr, ok
}

// buildHist is build over the regression histogram (per bin: count, Σy,
// Σy²), with the same parent−sibling subtraction as the classification
// engine. Counts subtract exactly; the gradient sums subtract exactly for
// dyadic-rational targets and to within float64 rounding otherwise.
func (t *regTree) buildHist(y []float64, lo, hi, depth int, s *splitScratch, hist []float64) *regNode {
	mean := 0.0
	for _, i := range s.ps.rows[lo:hi] {
		mean += y[i]
	}
	mean /= float64(hi - lo)
	if depth >= t.maxDepth || hi-lo < 2*t.minSamplesLeaf {
		return t.regLeaf(mean, s)
	}
	feat, splitBin, thr, ok := t.bestSplitHist(lo, hi, s, hist)
	if !ok {
		return t.regLeaf(mean, s)
	}
	nl := s.histMarkLeft(feat, splitBin, lo, hi)
	nr := hi - lo - nl
	if nl < t.minSamplesLeaf || nr < t.minSamplesLeaf {
		return t.regLeaf(mean, s)
	}
	s.histPartition(lo, hi)
	needL := depth+1 < t.maxDepth && nl >= 2*t.minSamplesLeaf
	needR := depth+1 < t.maxDepth && nr >= 2*t.minSamplesLeaf
	var hl, hr []float64
	switch {
	case needL && needR:
		hl, hr = s.hist.slot(2*(depth+1)), s.hist.slot(2*(depth+1)+1)
		if nl <= nr {
			s.histScanReg(y, lo, lo+nl, hl, t.histWorkers)
			histSubtract(hr, hist, hl)
		} else {
			s.histScanReg(y, lo+nl, hi, hr, t.histWorkers)
			histSubtract(hl, hist, hr)
		}
	case needL:
		hl = s.hist.slot(2 * (depth + 1))
		s.histScanReg(y, lo, lo+nl, hl, t.histWorkers)
	case needR:
		hr = s.hist.slot(2*(depth+1) + 1)
		s.histScanReg(y, lo+nl, hi, hr, t.histWorkers)
	}
	node := s.newRegNode()
	node.feature = feat
	node.threshold = thr
	node.left = t.buildHist(y, lo, lo+nl, depth+1, s, hl)
	node.right = t.buildHist(y, lo+nl, hi, depth+1, s, hr)
	return node
}

// bestSplitHist is the regression bestSplit over the node histogram:
// identical candidate boundaries and the identical sum-of-squared-error
// score expression, fed by per-bin gradient sums instead of a row sweep.
func (t *regTree) bestSplitHist(lo, hi int, s *splitScratch, node []float64) (feat, splitBin int, thr float64, ok bool) {
	h := &s.hist
	nn := float64(hi - lo)
	// The node's (Σy, Σy²) totals are identical on every feature's bin
	// region; one pass over feature 0's bins seeds the right side for all
	// features. For the dyadic-rational targets of the exactness oracle
	// every partial sum is exact, so the association change relative to a
	// per-feature resummation is invisible.
	totSum, totSq := 0.0, 0.0
	for off, reg := 0, node[:int(h.binOff[1])*3]; off < len(reg); off += 3 {
		totSum += reg[off+1]
		totSq += reg[off+2]
	}
	bestScore := math.Inf(1)
	for f := 0; f < s.ps.nf; f++ {
		base := int(h.binOff[f])
		bins := node[base*3 : int(h.binOff[f+1])*3]
		nb := int(h.nBins[f])
		sumL, sqL, sumR, sqR := 0.0, 0.0, totSum, totSq
		nl := 0.0
		prev := -1
		for b := 0; b < nb; b++ {
			cnt := bins[b*3]
			if cnt == 0 {
				continue
			}
			if prev >= 0 {
				nr := nn - nl
				if int(nl) >= t.minSamplesLeaf && int(nr) >= t.minSamplesLeaf {
					score := (sqL - sumL*sumL/nl) + (sqR - sumR*sumR/nr)
					if score < bestScore {
						bestScore = score
						feat = f
						splitBin = prev
						thr = (h.binHi[base+prev] + h.binLo[base+b]) / 2
						ok = true
					}
				}
			}
			sumL += bins[b*3+1]
			sqL += bins[b*3+2]
			sumR -= bins[b*3+1]
			sqR -= bins[b*3+2]
			nl += cnt
			prev = b
		}
	}
	return feat, splitBin, thr, ok
}

// predict walks the flattened form (identical nodes, identical order, so
// identical values to the pointer walk below).
func (t *regTree) predict(x []float64) float64 {
	return t.flat.predict(x)
}

// predictPointer is the original pointer traversal, retained as the
// reference for the flat-vs-pointer equivalence tests.
func (t *regTree) predictPointer(x []float64) float64 {
	n := t.root
	for !n.isLeaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}
