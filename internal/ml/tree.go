package ml

import (
	"fmt"
	"math"
	"sort"

	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/rng"
)

// TreeConfig configures a CART decision-tree classifier.
type TreeConfig struct {
	// MaxDepth bounds the tree depth; <= 0 means unbounded.
	MaxDepth int
	// MinSamplesLeaf is the minimum rows in each child of a split.
	MinSamplesLeaf int
	// MinSamplesSplit is the minimum rows required to consider splitting.
	MinSamplesSplit int
	// MaxFeatures is the number of features examined per split; <= 0
	// means all features. Random forests set this to sqrt(nFeatures).
	MaxFeatures int
	// RandomThresholds picks one uniform threshold per candidate feature
	// instead of scanning all cut points (the extra-trees rule).
	RandomThresholds bool
}

func (c TreeConfig) withDefaults() TreeConfig {
	if c.MinSamplesLeaf <= 0 {
		c.MinSamplesLeaf = 1
	}
	if c.MinSamplesSplit < 2*c.MinSamplesLeaf {
		c.MinSamplesSplit = 2 * c.MinSamplesLeaf
	}
	return c
}

// Tree is a CART decision-tree classifier. Fit builds the usual pointer
// tree and then compiles it into a flattened structure-of-arrays form
// (see flat.go) that every predict path traverses.
type Tree struct {
	Config TreeConfig

	root      *treeNode
	flat      flatTree
	nClasses  int
	nFeatures int
}

type treeNode struct {
	// Leaf payload: class-probability distribution.
	proba []float64
	// Internal payload: rows with x[feature] <= threshold go left.
	feature     int
	threshold   float64
	left, right *treeNode
}

// NewTree returns a tree classifier with the given configuration.
func NewTree(cfg TreeConfig) *Tree { return &Tree{Config: cfg.withDefaults()} }

// Name implements Classifier.
func (t *Tree) Name() string {
	kind := "cart"
	if t.Config.RandomThresholds {
		kind = "xtree"
	}
	return fmt.Sprintf("%s(depth=%d,leaf=%d)", kind, t.Config.MaxDepth, t.Config.MinSamplesLeaf)
}

// Fit implements Classifier.
func (t *Tree) Fit(d *data.Dataset, r *rng.Rand) error {
	if d.Len() == 0 {
		return ErrEmptyDataset
	}
	return t.fit(d, r, newSplitScratch(d.Len(), d.Schema.NumClasses()))
}

// fit trains the tree with caller-provided scratch, so ensembles can share
// one scratch across all of their trees.
func (t *Tree) fit(d *data.Dataset, r *rng.Rand, s *splitScratch) error {
	if d.Len() == 0 {
		return ErrEmptyDataset
	}
	t.nClasses = d.Schema.NumClasses()
	t.nFeatures = d.Schema.NumFeatures()
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	t.root = t.build(d, idx, 0, r, s)
	t.flat = compileTree(t.root, t.nClasses)
	return nil
}

// PredictProba implements Classifier.
func (t *Tree) PredictProba(x []float64) []float64 {
	out := make([]float64, t.nClasses)
	t.PredictProbaInto(x, out)
	return out
}

// PredictProbaInto implements IntoPredictor via the flattened traversal.
func (t *Tree) PredictProbaInto(x, out []float64) {
	copy(out, t.flat.leafFor(x))
}

// PredictProbaBatchInto implements BatchPredictor.
func (t *Tree) PredictProbaBatchInto(X, out [][]float64) {
	for i, x := range X {
		copy(out[i], t.flat.leafFor(x))
	}
}

// predictProbaPointer is the original pointer-graph traversal, retained as
// the reference implementation for the flat-vs-pointer equivalence tests.
func (t *Tree) predictProbaPointer(x []float64) []float64 {
	n := t.root
	for n.proba == nil {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return append([]float64(nil), n.proba...)
}

func (t *Tree) leaf(d *data.Dataset, idx []int) *treeNode {
	proba := make([]float64, t.nClasses)
	for _, i := range idx {
		proba[d.Y[i]]++
	}
	normalize(proba)
	return &treeNode{proba: proba}
}

func (t *Tree) build(d *data.Dataset, idx []int, depth int, r *rng.Rand, s *splitScratch) *treeNode {
	cfg := t.Config
	if len(idx) < cfg.MinSamplesSplit || (cfg.MaxDepth > 0 && depth >= cfg.MaxDepth) || pure(d, idx) {
		return t.leaf(d, idx)
	}
	feat, thr, ok := t.bestSplit(d, idx, r, s)
	if !ok {
		return t.leaf(d, idx)
	}
	left, right := partitionStable(d.X, idx, feat, thr, s.part)
	if len(left) < cfg.MinSamplesLeaf || len(right) < cfg.MinSamplesLeaf {
		return t.leaf(d, idx)
	}
	return &treeNode{
		feature:   feat,
		threshold: thr,
		left:      t.build(d, left, depth+1, r, s),
		right:     t.build(d, right, depth+1, r, s),
	}
}

func pure(d *data.Dataset, idx []int) bool {
	first := d.Y[idx[0]]
	for _, i := range idx[1:] {
		if d.Y[i] != first {
			return false
		}
	}
	return true
}

// bestSplit finds the (feature, threshold) pair with lowest weighted Gini
// impurity among a random subset of features.
func (t *Tree) bestSplit(d *data.Dataset, idx []int, r *rng.Rand, s *splitScratch) (feat int, thr float64, ok bool) {
	nf := t.nFeatures
	candidates := nf
	if t.Config.MaxFeatures > 0 && t.Config.MaxFeatures < nf {
		candidates = t.Config.MaxFeatures
	}
	feats := r.Sample(nf, candidates)

	bestGini := math.Inf(1)
	pairs := s.pairs[:len(idx)]
	for _, f := range feats {
		for pi, i := range idx {
			pairs[pi] = valueLabel{d.X[i][f], d.Y[i]}
		}
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].v < pairs[b].v })
		if pairs[0].v == pairs[len(pairs)-1].v {
			continue // constant feature in this node
		}
		if t.Config.RandomThresholds {
			cut := r.Uniform(pairs[0].v, pairs[len(pairs)-1].v)
			g, valid := giniAt(pairs, cut, t.Config.MinSamplesLeaf, s.leftCounts, s.rightCounts)
			if valid && g < bestGini {
				bestGini, feat, thr, ok = g, f, cut, true
			}
			continue
		}
		// Exhaustive scan: sweep sorted values maintaining class counts.
		leftCounts, rightCounts := s.leftCounts, s.rightCounts
		for i := range leftCounts {
			leftCounts[i], rightCounts[i] = 0, 0
		}
		for _, p := range pairs {
			rightCounts[p.y]++
		}
		n := float64(len(pairs))
		for i := 0; i < len(pairs)-1; i++ {
			leftCounts[pairs[i].y]++
			rightCounts[pairs[i].y]--
			if pairs[i].v == pairs[i+1].v {
				continue
			}
			nl := float64(i + 1)
			nr := n - nl
			if int(nl) < t.Config.MinSamplesLeaf || int(nr) < t.Config.MinSamplesLeaf {
				continue
			}
			g := (nl*giniImpurity(leftCounts, nl) + nr*giniImpurity(rightCounts, nr)) / n
			if g < bestGini {
				bestGini = g
				feat = f
				thr = (pairs[i].v + pairs[i+1].v) / 2
				ok = true
			}
		}
	}
	return feat, thr, ok
}

func giniImpurity(counts []float64, n float64) float64 {
	g := 1.0
	for _, c := range counts {
		p := c / n
		g -= p * p
	}
	return g
}

// valueLabel pairs one feature value with its row's class label.
type valueLabel struct {
	v float64
	y int
}

// giniAt evaluates a single threshold over pre-sorted pairs, using the
// caller's count buffers as scratch.
func giniAt(pairs []valueLabel, cut float64, minLeaf int, leftCounts, rightCounts []float64) (float64, bool) {
	for i := range leftCounts {
		leftCounts[i], rightCounts[i] = 0, 0
	}
	nl, nr := 0.0, 0.0
	for _, p := range pairs {
		if p.v <= cut {
			leftCounts[p.y]++
			nl++
		} else {
			rightCounts[p.y]++
			nr++
		}
	}
	if int(nl) < minLeaf || int(nr) < minLeaf {
		return 0, false
	}
	n := nl + nr
	return (nl*giniImpurity(leftCounts, nl) + nr*giniImpurity(rightCounts, nr)) / n, true
}

// Depth returns the depth of the fitted tree (0 for a lone leaf).
func (t *Tree) Depth() int { return nodeDepth(t.root) }

func nodeDepth(n *treeNode) int {
	if n == nil || n.proba != nil {
		return 0
	}
	l, r := nodeDepth(n.left), nodeDepth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// --- regression tree (used by gradient boosting) ---

// regTree is a small CART regression tree minimizing squared error.
type regTree struct {
	maxDepth       int
	minSamplesLeaf int
	root           *regNode
	flat           flatRegTree
}

type regNode struct {
	isLeaf      bool
	value       float64
	feature     int
	threshold   float64
	left, right *regNode
}

func (t *regTree) fit(X [][]float64, y []float64, r *rng.Rand, s *splitScratch) {
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	t.root = t.build(X, y, idx, 0, s)
	t.flat = compileRegTree(t.root)
	_ = r
}

func (t *regTree) build(X [][]float64, y []float64, idx []int, depth int, s *splitScratch) *regNode {
	mean := 0.0
	for _, i := range idx {
		mean += y[i]
	}
	mean /= float64(len(idx))
	if depth >= t.maxDepth || len(idx) < 2*t.minSamplesLeaf {
		return &regNode{isLeaf: true, value: mean}
	}
	feat, thr, ok := t.bestSplit(X, y, idx, s)
	if !ok {
		return &regNode{isLeaf: true, value: mean}
	}
	left, right := partitionStable(X, idx, feat, thr, s.part)
	if len(left) < t.minSamplesLeaf || len(right) < t.minSamplesLeaf {
		return &regNode{isLeaf: true, value: mean}
	}
	return &regNode{
		feature:   feat,
		threshold: thr,
		left:      t.build(X, y, left, depth+1, s),
		right:     t.build(X, y, right, depth+1, s),
	}
}

func (t *regTree) bestSplit(X [][]float64, y []float64, idx []int, s *splitScratch) (feat int, thr float64, ok bool) {
	nf := len(X[idx[0]])
	pairs := s.regScratch(len(idx))
	bestScore := math.Inf(1)
	for f := 0; f < nf; f++ {
		for pi, i := range idx {
			pairs[pi] = regPair{X[i][f], y[i]}
		}
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].v < pairs[b].v })
		if pairs[0].v == pairs[len(pairs)-1].v {
			continue
		}
		sumL, sumR, sqL, sqR := 0.0, 0.0, 0.0, 0.0
		for _, p := range pairs {
			sumR += p.y
			sqR += p.y * p.y
		}
		n := float64(len(pairs))
		for i := 0; i < len(pairs)-1; i++ {
			sumL += pairs[i].y
			sqL += pairs[i].y * pairs[i].y
			sumR -= pairs[i].y
			sqR -= pairs[i].y * pairs[i].y
			if pairs[i].v == pairs[i+1].v {
				continue
			}
			nl := float64(i + 1)
			nr := n - nl
			if int(nl) < t.minSamplesLeaf || int(nr) < t.minSamplesLeaf {
				continue
			}
			// Sum of squared errors around each child's mean.
			score := (sqL - sumL*sumL/nl) + (sqR - sumR*sumR/nr)
			if score < bestScore {
				bestScore = score
				feat = f
				thr = (pairs[i].v + pairs[i+1].v) / 2
				ok = true
			}
		}
	}
	return feat, thr, ok
}

// predict walks the flattened form (identical nodes, identical order, so
// identical values to the pointer walk below).
func (t *regTree) predict(x []float64) float64 {
	return t.flat.predict(x)
}

// predictPointer is the original pointer traversal, retained as the
// reference for the flat-vs-pointer equivalence tests.
func (t *regTree) predictPointer(x []float64) float64 {
	n := t.root
	for !n.isLeaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}
