package ml

import (
	"fmt"
	"math"

	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/rng"
)

// LogRegConfig configures multinomial logistic regression trained with
// mini-batch SGD and L2 regularization.
type LogRegConfig struct {
	// Epochs over the training data (default 100).
	Epochs int
	// LearningRate for SGD (default 0.1).
	LearningRate float64
	// L2 is the weight-decay coefficient (default 1e-4).
	L2 float64
	// BatchSize for mini-batches (default 32).
	BatchSize int
}

func (c LogRegConfig) withDefaults() LogRegConfig {
	if c.Epochs <= 0 {
		c.Epochs = 100
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.1
	}
	if c.L2 < 0 {
		c.L2 = 0
	} else if c.L2 == 0 {
		c.L2 = 1e-4
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 32
	}
	return c
}

// LogReg is a multinomial (softmax) logistic-regression classifier.
// Use it inside a Pipeline with a StandardScaler for stable optimization.
type LogReg struct {
	Config LogRegConfig

	// W[k] are the weights for class k; B[k] the bias.
	W [][]float64
	B []float64
}

// NewLogReg returns a logistic-regression classifier.
func NewLogReg(cfg LogRegConfig) *LogReg { return &LogReg{Config: cfg.withDefaults()} }

// Name implements Classifier.
func (l *LogReg) Name() string {
	return fmt.Sprintf("logreg(lr=%g,l2=%g,epochs=%d)", l.Config.LearningRate, l.Config.L2, l.Config.Epochs)
}

// Fit implements Classifier.
func (l *LogReg) Fit(d *data.Dataset, r *rng.Rand) error {
	if d.Len() == 0 {
		return ErrEmptyDataset
	}
	cfg := l.Config
	k := d.Schema.NumClasses()
	nf := d.Schema.NumFeatures()
	l.W = make([][]float64, k)
	for c := range l.W {
		l.W[c] = make([]float64, nf)
		for j := range l.W[c] {
			l.W[c][j] = r.Normal(0, 0.01)
		}
	}
	l.B = make([]float64, k)

	scores := make([]float64, k)
	proba := make([]float64, k)
	n := d.Len()
	lr := cfg.LearningRate
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		order := r.Perm(n)
		// 1/t learning-rate decay keeps late epochs stable.
		step := lr / (1 + 0.01*float64(epoch))
		for start := 0; start < n; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > n {
				end = n
			}
			batch := order[start:end]
			scale := step / float64(len(batch))
			for _, i := range batch {
				x := d.X[i]
				l.rawScores(x, scores)
				softmaxInto(scores, proba)
				for c := 0; c < k; c++ {
					grad := proba[c]
					if d.Y[i] == c {
						grad -= 1
					}
					g := grad * scale
					wc := l.W[c]
					for j, v := range x {
						wc[j] -= g * v
					}
					l.B[c] -= g
				}
			}
			// L2 decay once per batch.
			if cfg.L2 > 0 {
				decay := 1 - step*cfg.L2
				for c := range l.W {
					for j := range l.W[c] {
						l.W[c][j] *= decay
					}
				}
			}
		}
	}
	return nil
}

func (l *LogReg) rawScores(x []float64, out []float64) {
	for c := range l.W {
		s := l.B[c]
		for j, v := range x {
			s += l.W[c][j] * v
		}
		out[c] = s
	}
}

// PredictProba implements Classifier.
func (l *LogReg) PredictProba(x []float64) []float64 {
	out := make([]float64, len(l.W))
	l.PredictProbaInto(x, out)
	return out
}

// PredictProbaInto implements IntoPredictor; out doubles as the raw-score
// buffer before the in-place softmax.
func (l *LogReg) PredictProbaInto(x, out []float64) {
	l.rawScores(x, out)
	softmaxInto(out, out)
}

// SVMConfig configures a linear one-vs-rest SVM trained with Pegasos-style
// subgradient descent on the hinge loss.
type SVMConfig struct {
	// Epochs over the training data (default 50).
	Epochs int
	// Lambda is the regularization strength (default 1e-3).
	Lambda float64
}

// SVM is a linear support-vector classifier. Probabilities are produced by
// a softmax over the margins scaled by a temperature calibrated on the
// training data — a lightweight stand-in for Platt scaling.
type SVM struct {
	Config SVMConfig

	W           [][]float64
	B           []float64
	temperature float64
}

// NewSVM returns a linear SVM classifier.
func NewSVM(cfg SVMConfig) *SVM {
	if cfg.Epochs <= 0 {
		cfg.Epochs = 50
	}
	if cfg.Lambda <= 0 {
		cfg.Lambda = 1e-3
	}
	return &SVM{Config: cfg}
}

// Name implements Classifier.
func (s *SVM) Name() string {
	return fmt.Sprintf("svm(lambda=%g,epochs=%d)", s.Config.Lambda, s.Config.Epochs)
}

// Fit implements Classifier.
func (s *SVM) Fit(d *data.Dataset, r *rng.Rand) error {
	if d.Len() == 0 {
		return ErrEmptyDataset
	}
	k := d.Schema.NumClasses()
	nf := d.Schema.NumFeatures()
	s.W = make([][]float64, k)
	for c := range s.W {
		s.W[c] = make([]float64, nf)
	}
	s.B = make([]float64, k)
	n := d.Len()
	lambda := s.Config.Lambda
	t := 1.0
	for epoch := 0; epoch < s.Config.Epochs; epoch++ {
		for _, i := range r.Perm(n) {
			x := d.X[i]
			eta := 1 / (lambda * t)
			t++
			for c := 0; c < k; c++ {
				yc := -1.0
				if d.Y[i] == c {
					yc = 1
				}
				margin := s.B[c]
				wc := s.W[c]
				for j, v := range x {
					margin += wc[j] * v
				}
				// Subgradient step with weight decay.
				decay := 1 - eta*lambda
				if decay < 0 {
					decay = 0
				}
				for j := range wc {
					wc[j] *= decay
				}
				if yc*margin < 1 {
					for j, v := range x {
						wc[j] += eta * yc * v
					}
					s.B[c] += eta * yc * 0.1 // smaller bias step stabilizes Pegasos
				}
			}
		}
	}
	// Calibrate a softmax temperature so margins map to reasonable
	// probabilities: match the scale of the margins.
	maxAbs := 1e-9
	scores := make([]float64, k)
	for i := 0; i < n; i++ {
		s.margins(d.X[i], scores)
		for _, v := range scores {
			if a := math.Abs(v); a > maxAbs {
				maxAbs = a
			}
		}
	}
	s.temperature = 2 / maxAbs
	return nil
}

func (s *SVM) margins(x []float64, out []float64) {
	for c := range s.W {
		m := s.B[c]
		for j, v := range x {
			m += s.W[c][j] * v
		}
		out[c] = m
	}
}

// PredictProba implements Classifier.
func (s *SVM) PredictProba(x []float64) []float64 {
	out := make([]float64, len(s.W))
	s.PredictProbaInto(x, out)
	return out
}

// PredictProbaInto implements IntoPredictor; out doubles as the margin
// buffer before the in-place temperature softmax.
func (s *SVM) PredictProbaInto(x, out []float64) {
	s.margins(x, out)
	for i := range out {
		out[i] *= s.temperature
	}
	softmaxInto(out, out)
}
