package ml

import (
	"math"
	"testing"

	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/rng"
)

// The histogram engine's correctness contract has two tiers, mirroring
// the presort engine's legacy-oracle suites (presort_test.go):
//
//   - On columns with at most 256 distinct values binning is lossless
//     (one bin per distinct value), and hist fits must be bit-identical
//     to presort fits: same splits, same thresholds, same leaves, same
//     rng stream consumption. Proven by structural == below across
//     3 seeds × all five tree families, plus dyadic-rational fuzzing.
//
//   - On continuous columns binning is lossy and the contract weakens to
//     statistical parity: train accuracy within a small tolerance of the
//     presort engine's.

// discreteBlobs is fitBlobs quantized to a half-unit grid clamped to
// [-12, 12]: at most 97 distinct values per column, so histogram binning
// is provably lossless and hist-vs-presort equality is exact.
func discreteBlobs(n, nf, k int, r *rng.Rand) *data.Dataset {
	d := fitBlobs(n, nf, k, r)
	for _, row := range d.X {
		for f, v := range row {
			q := math.Round(v*2) / 2
			if q > 12 {
				q = 12
			}
			if q < -12 {
				q = -12
			}
			row[f] = q
		}
	}
	return d
}

func withHist(cfg TreeConfig) TreeConfig { cfg.Engine = EngineHist; return cfg }

func TestHistTreeFitMatchesPresort(t *testing.T) {
	cfgs := []TreeConfig{
		{MaxDepth: 6},
		{MaxDepth: 4, MaxFeatures: 2},
		{MaxDepth: 8, MinSamplesLeaf: 3},
		{MaxDepth: 5, MaxFeatures: 3, RandomThresholds: true},
	}
	for _, seed := range presortSeeds {
		d := discreteBlobs(150, 6, 3, rng.New(seed))
		for ci, cfg := range cfgs {
			want := NewTree(cfg)
			if err := want.Fit(d, rng.New(seed*31+uint64(ci))); err != nil {
				t.Fatal(err)
			}
			got := NewTree(withHist(cfg))
			if err := got.Fit(d, rng.New(seed*31+uint64(ci))); err != nil {
				t.Fatal(err)
			}
			assertTreeEqual(t, got.root, want.root, "root")
		}
	}
}

func TestHistForestFitMatchesPresort(t *testing.T) {
	cfgs := []ForestConfig{
		{NumTrees: 10, MaxDepth: 5, Bootstrap: true},
		{NumTrees: 10, MaxDepth: 5, ExtraTrees: true},
	}
	for _, seed := range presortSeeds {
		d := discreteBlobs(120, 5, 3, rng.New(seed))
		for ci, cfg := range cfgs {
			want := NewForest(cfg)
			if err := want.Fit(d, rng.New(seed*37+uint64(ci))); err != nil {
				t.Fatal(err)
			}
			histCfg := cfg
			histCfg.Engine = EngineHist
			got := NewForest(histCfg)
			if err := got.Fit(d, rng.New(seed*37+uint64(ci))); err != nil {
				t.Fatal(err)
			}
			if len(got.trees) != len(want.trees) {
				t.Fatalf("tree count %d != %d", len(got.trees), len(want.trees))
			}
			for ti := range want.trees {
				assertTreeEqual(t, got.trees[ti].root, want.trees[ti].root, "root")
			}
		}
	}
}

// TestHistGBDTRegTreeMatchesPresort is the GBDT family's exact-equality
// suite, pitched at the engine that GBDT actually exercises: its
// regression-tree trainer, over both working-view preparations (full and
// row-subset). Targets are dyadic rationals, where every per-bin sum and
// every parent−sibling subtraction is exact in float64, so the fitted
// trees must be structurally identical. Full-pipeline GBDT feeds softmax
// residuals instead, whose duplicated values make many split scores
// exactly tied in real arithmetic — there the tie falls to float
// association order, which legitimately differs between a sequential row
// sweep and per-bin accumulation; TestHistGBDTParity pins that the
// resulting models still agree to prediction level.
func TestHistGBDTRegTreeMatchesPresort(t *testing.T) {
	for _, seed := range presortSeeds {
		r := rng.New(seed * 61)
		n, nf := 120, 5
		X := make([][]float64, n)
		y := make([]float64, n)
		for i := range X {
			X[i] = make([]float64, nf)
			for f := range X[i] {
				X[i][f] = float64(r.Intn(33)-16) * 0.25
			}
			y[i] = float64(r.Intn(65)-32) * 0.25
		}
		idx := make([]int, 80)
		for i := range idx {
			idx[i] = r.Intn(n)
		}
		subY := make([]float64, len(idx))
		for j, o := range idx {
			subY[j] = y[o]
		}

		sp := newSplitScratch(1)
		sp.ps.presortMaster(X, nf)
		sh := newSplitScratch(1)
		sh.ps.sortMaster(X, nf)
		sh.hist.initHist(&sh.ps, 3, 1)
		for _, tc := range []struct{ depth, leaf int }{{3, 5}, {5, 1}} {
			sp.ps.prepareFull()
			want := &regTree{maxDepth: tc.depth, minSamplesLeaf: tc.leaf}
			want.fit(y, sp)
			sh.hist.prepareFull(&sh.ps)
			got := &regTree{maxDepth: tc.depth, minSamplesLeaf: tc.leaf, engine: EngineHist}
			got.fit(y, sh)
			assertRegTreeEqual(t, got.root, want.root, "full/root")

			sp.ps.prepareSubset(idx)
			want = &regTree{maxDepth: tc.depth, minSamplesLeaf: tc.leaf}
			want.fit(subY, sp)
			sh.hist.prepareSubset(&sh.ps, idx)
			got = &regTree{maxDepth: tc.depth, minSamplesLeaf: tc.leaf, engine: EngineHist}
			got.fit(subY, sh)
			assertRegTreeEqual(t, got.root, want.root, "subset/root")
		}
	}
}

// TestHistGBDTParity pins the full GBDT pipeline on discrete data: the
// base scores are bit-identical, and the fitted ensembles agree at
// prediction level (observed max probability delta is ~0.02; the bound
// here is 0.05) with equal training accuracy to within two rows.
func TestHistGBDTParity(t *testing.T) {
	cfgs := []GBDTConfig{
		{NumRounds: 8, MaxDepth: 3},
		{NumRounds: 6, MaxDepth: 3, Subsample: 0.7},
	}
	for _, seed := range presortSeeds {
		d := discreteBlobs(120, 5, 3, rng.New(seed))
		for ci, cfg := range cfgs {
			want := NewGBDT(cfg)
			if err := want.Fit(d, rng.New(seed*41+uint64(ci))); err != nil {
				t.Fatal(err)
			}
			histCfg := cfg
			histCfg.Engine = EngineHist
			got := NewGBDT(histCfg)
			if err := got.Fit(d, rng.New(seed*41+uint64(ci))); err != nil {
				t.Fatal(err)
			}
			for k, b := range want.base {
				if got.base[k] != b {
					t.Fatalf("base[%d] = %v != %v", k, got.base[k], b)
				}
			}
			accW, accG := 0, 0
			for i, x := range d.X {
				pw, pg := want.PredictProba(x), got.PredictProba(x)
				for c := range pw {
					if diff := math.Abs(pw[c] - pg[c]); diff > 0.05 {
						t.Fatalf("seed %d cfg %d row %d class %d: proba %v vs %v (diff %v)",
							seed, ci, i, c, pw[c], pg[c], diff)
					}
				}
				if PredictOne(want, x) == d.Y[i] {
					accW++
				}
				if PredictOne(got, x) == d.Y[i] {
					accG++
				}
			}
			if diff := accW - accG; diff > 2 || diff < -2 {
				t.Fatalf("seed %d cfg %d: train accuracy %d vs %d", seed, ci, accW, accG)
			}
		}
	}
}

func TestHistAdaBoostFitMatchesPresort(t *testing.T) {
	for _, seed := range presortSeeds {
		d := discreteBlobs(120, 5, 3, rng.New(seed))
		cfg := AdaBoostConfig{Rounds: 8, MaxDepth: 2}
		want := NewAdaBoost(cfg)
		if err := want.Fit(d, rng.New(seed*43)); err != nil {
			t.Fatal(err)
		}
		histCfg := cfg
		histCfg.Engine = EngineHist
		got := NewAdaBoost(histCfg)
		if err := got.Fit(d, rng.New(seed*43)); err != nil {
			t.Fatal(err)
		}
		if len(got.trees) != len(want.trees) {
			t.Fatalf("tree count %d != %d", len(got.trees), len(want.trees))
		}
		for ti := range want.trees {
			if got.alphas[ti] != want.alphas[ti] {
				t.Fatalf("alpha[%d] = %v != %v", ti, got.alphas[ti], want.alphas[ti])
			}
			assertTreeEqual(t, got.trees[ti].root, want.trees[ti].root, "root")
		}
	}
}

// TestHistWorkersDeterminism pins the feature-parallel scans: fits must
// be bit-identical at HistWorkers=1 and 8. The dataset is continuous and
// large enough (rows×features ≥ histParallelWork) that the parallel
// branch actually runs for binning, root builds and top splits.
func TestHistWorkersDeterminism(t *testing.T) {
	d := fitBlobs(2048, 10, 3, rng.New(17))
	if n := d.Len() * d.Schema.NumFeatures(); n < histParallelWork {
		t.Fatalf("dataset too small to exercise parallel scans: %d < %d", n, histParallelWork)
	}
	t.Run("tree", func(t *testing.T) {
		serial := NewTree(TreeConfig{MaxDepth: 8, Engine: EngineHist, HistWorkers: 1})
		if err := serial.Fit(d, rng.New(5)); err != nil {
			t.Fatal(err)
		}
		par := NewTree(TreeConfig{MaxDepth: 8, Engine: EngineHist, HistWorkers: 8})
		if err := par.Fit(d, rng.New(5)); err != nil {
			t.Fatal(err)
		}
		assertTreeEqual(t, par.root, serial.root, "root")
	})
	t.Run("gbdt", func(t *testing.T) {
		serial := NewGBDT(GBDTConfig{NumRounds: 4, Engine: EngineHist, HistWorkers: 1})
		if err := serial.Fit(d, rng.New(6)); err != nil {
			t.Fatal(err)
		}
		par := NewGBDT(GBDTConfig{NumRounds: 4, Engine: EngineHist, HistWorkers: 8})
		if err := par.Fit(d, rng.New(6)); err != nil {
			t.Fatal(err)
		}
		for ri := range serial.rounds {
			for k := range serial.rounds[ri] {
				assertRegTreeEqual(t, par.rounds[ri][k].root, serial.rounds[ri][k].root, "root")
			}
		}
	})
}

// TestHistStatisticalParity is the lossy-mode contract: on continuous
// columns (here ~600 distinct values per feature, well past the 256-bin
// budget) the hist engine must match the presort engine's training
// accuracy within a small tolerance.
func TestHistStatisticalParity(t *testing.T) {
	accuracy := func(c Classifier, d *data.Dataset) float64 {
		correct := 0
		for i, x := range d.X {
			if PredictOne(c, x) == d.Y[i] {
				correct++
			}
		}
		return float64(correct) / float64(d.Len())
	}
	for _, seed := range presortSeeds {
		d := fitBlobs(600, 8, 3, rng.New(seed))
		builds := []struct {
			name    string
			presort Classifier
			hist    Classifier
		}{
			{"forest",
				NewForest(ForestConfig{NumTrees: 15, MaxDepth: 8, Bootstrap: true}),
				NewForest(ForestConfig{NumTrees: 15, MaxDepth: 8, Bootstrap: true, Engine: EngineHist})},
			{"gbdt",
				NewGBDT(GBDTConfig{NumRounds: 15}),
				NewGBDT(GBDTConfig{NumRounds: 15, Engine: EngineHist})},
		}
		for _, b := range builds {
			if err := b.presort.Fit(d, rng.New(seed*51)); err != nil {
				t.Fatal(err)
			}
			if err := b.hist.Fit(d, rng.New(seed*51)); err != nil {
				t.Fatal(err)
			}
			ap, ah := accuracy(b.presort, d), accuracy(b.hist, d)
			if diff := math.Abs(ap - ah); diff > 0.05 {
				t.Fatalf("seed %d %s: presort accuracy %.4f vs hist %.4f (diff %.4f > 0.05)",
					seed, b.name, ap, ah, diff)
			}
		}
	}
}

// --- fuzz: hist engine vs presort engine on lossless (dyadic) columns ---

// FuzzHistTreeMatchesPresort grows full (small) classification trees with
// both engines over the dyadic fuzz datasets of presort_test.go — every
// column has at most 17 distinct values, so binning is lossless and the
// trees must be structurally identical, including the extra-trees rng
// stream.
func FuzzHistTreeMatchesPresort(f *testing.F) {
	f.Add([]byte{1, 3, 0, 7, 2, 9, 5, 5, 1, 8, 8, 0, 3, 3, 2, 250, 4, 16, 9})
	f.Add([]byte{2, 0, 0, 0, 1, 1, 1, 2, 2, 2, 0, 0, 1, 1, 2, 2, 0, 1, 2, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 10 {
			t.Skip()
		}
		d := fuzzDataset(raw)
		if d == nil {
			t.Skip()
		}
		for _, cfg := range []TreeConfig{
			{MaxDepth: 4, MinSamplesLeaf: 1},
			{MaxDepth: 4, MinSamplesLeaf: 2, MaxFeatures: 1},
			{MaxDepth: 4, MinSamplesLeaf: 1, RandomThresholds: true},
		} {
			want := NewTree(cfg)
			if err := want.Fit(d, rng.New(77)); err != nil {
				t.Fatal(err)
			}
			got := NewTree(withHist(cfg))
			if err := got.Fit(d, rng.New(77)); err != nil {
				t.Fatal(err)
			}
			assertTreeEqual(t, got.root, want.root, "root")
		}
	})
}

// FuzzHistRegTreeMatchesPresort fits regression trees with both engines
// on dyadic features AND targets: every per-bin sum and every
// parent−sibling subtraction is exact in float64, so the fitted trees
// must match structurally.
func FuzzHistRegTreeMatchesPresort(f *testing.F) {
	f.Add([]byte{1, 3, 0, 7, 2, 9, 5, 5, 1, 8, 8, 0, 3, 3, 2, 250, 4, 16, 9, 30, 31})
	f.Add([]byte{2, 0, 5, 0, 1, 1, 1, 2, 2, 2, 0, 0, 1, 1, 2, 2, 0, 1, 2, 0, 9, 9, 9})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 12 {
			t.Skip()
		}
		nf := int(raw[0]%3) + 1
		rows := (len(raw) - 1) / (nf + 1)
		if rows < 4 {
			t.Skip()
		}
		if rows > 64 {
			rows = 64
		}
		X := make([][]float64, rows)
		y := make([]float64, rows)
		p := 1
		for i := 0; i < rows; i++ {
			X[i] = make([]float64, nf)
			for f := range X[i] {
				X[i][f] = float64(int(raw[p])%17-8) * 0.25
				p++
			}
			y[i] = float64(int(raw[p])%33-16) * 0.25
			p++
		}
		sp := newSplitScratch(1)
		sp.ps.presortMaster(X, nf)
		sp.ps.prepareFull()
		want := &regTree{maxDepth: 3, minSamplesLeaf: 1}
		want.fit(y, sp)

		sh := newSplitScratch(1)
		sh.ps.sortMaster(X, nf)
		sh.hist.initHist(&sh.ps, 3, 1)
		sh.hist.prepareFull(&sh.ps)
		got := &regTree{maxDepth: 3, minSamplesLeaf: 1, engine: EngineHist}
		got.fit(y, sh)
		assertRegTreeEqual(t, got.root, want.root, "root")
	})
}

// --- allocation contract: the warm hist fit steady state allocates nothing ---

func TestHistBestSplitZeroAllocs(t *testing.T) {
	d := fitBlobs(256, 8, 3, rng.New(7))
	tree := NewTree(TreeConfig{MaxFeatures: 3, Engine: EngineHist})
	tree.nClasses, tree.nFeatures = 3, 8
	s := newSplitScratch(3)
	s.ps.sortMaster(d.X, 8)
	s.hist.initHist(&s.ps, 3, 1)
	s.hist.prepareFull(&s.ps)
	root := s.hist.slot(0)
	s.histScanClass(d.Y, 0, d.Len(), root, 1)
	r := rng.New(1)
	tree.bestSplitHist(r, s, 0, d.Len(), root) // warm s.feats
	if allocs := testing.AllocsPerRun(50, func() {
		tree.bestSplitHist(r, s, 0, d.Len(), root)
	}); allocs != 0 {
		t.Fatalf("warm hist bestSplit allocates %v/op, want 0", allocs)
	}
}

func TestHistRegBestSplitZeroAllocs(t *testing.T) {
	d := fitBlobs(256, 8, 3, rng.New(8))
	y := make([]float64, d.Len())
	r := rng.New(2)
	for i := range y {
		y[i] = r.Normal(0, 1)
	}
	s := newSplitScratch(1)
	s.ps.sortMaster(d.X, 8)
	s.hist.initHist(&s.ps, 3, 1)
	s.hist.prepareFull(&s.ps)
	root := s.hist.slot(0)
	s.histScanReg(y, 0, d.Len(), root, 1)
	tr := &regTree{maxDepth: 3, minSamplesLeaf: 1, engine: EngineHist}
	if allocs := testing.AllocsPerRun(50, func() {
		tr.bestSplitHist(0, d.Len(), s, root)
	}); allocs != 0 {
		t.Fatalf("warm hist regression bestSplit allocates %v/op, want 0", allocs)
	}
}

// TestHistNodeStepZeroAllocs pins the whole per-node commit: mark +
// partition + smaller-child scan + parent−sibling subtraction, on warm
// slots.
func TestHistNodeStepZeroAllocs(t *testing.T) {
	d := fitBlobs(256, 8, 3, rng.New(9))
	s := newSplitScratch(3)
	s.ps.sortMaster(d.X, 8)
	s.hist.initHist(&s.ps, 3, 1)
	s.hist.prepareFull(&s.ps)
	root := s.hist.slot(0)
	// Warm the child slots once; later trees of an ensemble reuse them.
	hl, hr := s.hist.slot(2), s.hist.slot(3)
	splitBin := int(s.hist.nBins[0]) / 2
	if allocs := testing.AllocsPerRun(50, func() {
		s.hist.prepareFull(&s.ps)
		s.histScanClass(d.Y, 0, d.Len(), root, 1)
		nl := s.histMarkLeft(0, splitBin, 0, s.ps.n)
		s.histPartition(0, s.ps.n)
		hl, hr = s.hist.slot(2), s.hist.slot(3)
		s.histScanClass(d.Y, 0, nl, hl, 1)
		histSubtract(hr, root, hl)
	}); allocs != 0 {
		t.Fatalf("warm hist node step allocates %v/op, want 0", allocs)
	}
}

// TestHistPrepareSubsetZeroAllocs pins the bootstrap/resample path: a
// warm bin-index gather must not allocate.
func TestHistPrepareSubsetZeroAllocs(t *testing.T) {
	d := fitBlobs(256, 8, 3, rng.New(10))
	s := newSplitScratch(3)
	s.ps.sortMaster(d.X, 8)
	s.hist.initHist(&s.ps, 3, 1)
	r := rng.New(3)
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = r.Intn(d.Len())
	}
	s.hist.prepareSubset(&s.ps, idx)
	if allocs := testing.AllocsPerRun(50, func() {
		s.hist.prepareSubset(&s.ps, idx)
	}); allocs != 0 {
		t.Fatalf("warm hist prepareSubset allocates %v/op, want 0", allocs)
	}
}

// TestHistLosslessBinning pins the exactness boundary itself: a column
// with at most 256 distinct values gets exactly one bin per distinct
// value with binLo == binHi, and one with more gets at most 256 bins
// covering every value.
func TestHistLosslessBinning(t *testing.T) {
	r := rng.New(4)
	n := 1000
	X := make([][]float64, n)
	for i := range X {
		X[i] = []float64{
			float64(i%40) * 0.25, // 40 distinct: lossless
			r.Normal(0, 1),       // ~1000 distinct: lossy
		}
	}
	var s splitScratch
	s.ps.sortMaster(X, 2)
	s.hist.initHist(&s.ps, 3, 1)
	h := &s.hist
	if got := int(h.nBins[0]); got != 40 {
		t.Fatalf("discrete column: %d bins, want 40", got)
	}
	for b := 0; b < 40; b++ {
		lo, hi := h.binLo[b], h.binHi[b]
		if lo != hi {
			t.Fatalf("discrete bin %d: lo %v != hi %v (lossless bins hold one value)", b, lo, hi)
		}
		if want := float64(b) * 0.25; lo != want {
			t.Fatalf("discrete bin %d: value %v, want %v", b, lo, want)
		}
	}
	if got := int(h.nBins[1]); got > maxHistBins {
		t.Fatalf("continuous column: %d bins exceeds budget %d", got, maxHistBins)
	}
	// Every row's bin must contain its value.
	base := int(h.binOff[1])
	for i := range X {
		b := base + int(h.masterBin[n+i])
		if v := X[i][1]; v < h.binLo[b] || v > h.binHi[b] {
			t.Fatalf("row %d: value %v outside bin [%v, %v]", i, v, h.binLo[b], h.binHi[b])
		}
	}
}
