package ml

import (
	"flag"
	"testing"

	"github.com/netml/alefb/internal/rng"
)

// mlEngine selects the engine the *Hist fit benchmarks run, defaulting to
// the histogram engine. The committed baseline lines for these benchmarks
// are generated with -ml.engine=presort on the identical workloads (the
// same convention as bench-serve's -serve.batch=off|on), so the recorded
// speedup isolates histogram binning itself — same data, same configs,
// same rng streams.
var mlEngine = flag.String("ml.engine", "hist", "train engine for the *Hist fit benchmarks (presort or hist)")

func benchEngine(b *testing.B) TrainEngine {
	b.Helper()
	e, err := ParseTrainEngine(*mlEngine)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkTreeFitHist is BenchmarkTreeFit on the selected engine.
func BenchmarkTreeFitHist(b *testing.B) {
	e := benchEngine(b)
	train := fitBlobs(800, 10, 3, rng.New(31))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewTree(TreeConfig{MaxDepth: 10, Engine: e})
		if err := m.Fit(train, rng.New(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForestFitHist is BenchmarkForestFit on the selected engine.
func BenchmarkForestFitHist(b *testing.B) {
	e := benchEngine(b)
	train := fitBlobs(800, 10, 3, rng.New(32))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewForest(ForestConfig{NumTrees: 20, MaxDepth: 8, Bootstrap: true, Engine: e})
		if err := m.Fit(train, rng.New(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtraTreesFitHist is BenchmarkExtraTreesFit on the selected
// engine.
func BenchmarkExtraTreesFitHist(b *testing.B) {
	e := benchEngine(b)
	train := fitBlobs(800, 10, 3, rng.New(33))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewForest(ForestConfig{NumTrees: 20, MaxDepth: 8, ExtraTrees: true, Engine: e})
		if err := m.Fit(train, rng.New(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGBDTFitHist is BenchmarkGBDTFit on the selected engine.
func BenchmarkGBDTFitHist(b *testing.B) {
	e := benchEngine(b)
	train := fitBlobs(800, 10, 3, rng.New(34))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewGBDT(GBDTConfig{NumRounds: 20, MaxDepth: 3, Engine: e})
		if err := m.Fit(train, rng.New(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdaBoostFitHist is BenchmarkAdaBoostFit on the selected engine.
func BenchmarkAdaBoostFitHist(b *testing.B) {
	e := benchEngine(b)
	train := fitBlobs(800, 10, 3, rng.New(35))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewAdaBoost(AdaBoostConfig{Rounds: 20, MaxDepth: 2, Engine: e})
		if err := m.Fit(train, rng.New(1)); err != nil {
			b.Fatal(err)
		}
	}
}
