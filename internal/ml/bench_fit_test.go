package ml

import (
	"testing"

	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/rng"
)

// fitBlobs generates a training set with nf informative features so fit
// benchmarks exercise realistic split searches (the 2-feature blobs used
// by the predict benchmarks would leave most of the presort engine idle).
func fitBlobs(n, nf, k int, r *rng.Rand) *data.Dataset {
	schema := &data.Schema{}
	for f := 0; f < nf; f++ {
		schema.Features = append(schema.Features, data.Feature{
			Name: "x" + string(rune('0'+f%10)), Min: -10, Max: 10,
		})
	}
	for c := 0; c < k; c++ {
		schema.Classes = append(schema.Classes, string(rune('A'+c)))
	}
	d := data.New(schema)
	for i := 0; i < n; i++ {
		c := i % k
		row := make([]float64, nf)
		for f := range row {
			center := float64((c+f)%k)*3 - 3
			row[f] = r.Normal(center, 1.5)
		}
		d.Append(row, c)
	}
	return d
}

// BenchmarkTreeFit measures training one CART tree: the unit cost every
// ensemble below multiplies.
func BenchmarkTreeFit(b *testing.B) {
	train := fitBlobs(800, 10, 3, rng.New(31))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewTree(TreeConfig{MaxDepth: 10})
		if err := m.Fit(train, rng.New(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkForestFit measures training a bootstrap random forest — the
// most common AutoML candidate family.
func BenchmarkForestFit(b *testing.B) {
	train := fitBlobs(800, 10, 3, rng.New(32))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewForest(ForestConfig{NumTrees: 20, MaxDepth: 8, Bootstrap: true})
		if err := m.Fit(train, rng.New(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtraTreesFit measures the no-bootstrap extra-trees path,
// which reuses one presorted view across the whole ensemble.
func BenchmarkExtraTreesFit(b *testing.B) {
	train := fitBlobs(800, 10, 3, rng.New(33))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewExtraTrees(20, 8)
		if err := m.Fit(train, rng.New(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGBDTFit measures boosted-tree training: every round fits one
// regression tree per class over all features, the hottest fit path in
// the AutoML search.
func BenchmarkGBDTFit(b *testing.B) {
	train := fitBlobs(800, 10, 3, rng.New(34))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewGBDT(GBDTConfig{NumRounds: 20, MaxDepth: 3})
		if err := m.Fit(train, rng.New(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAdaBoostFit measures SAMME boosting with weighted-resample
// weak learners.
func BenchmarkAdaBoostFit(b *testing.B) {
	train := fitBlobs(800, 10, 3, rng.New(35))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := NewAdaBoost(AdaBoostConfig{Rounds: 20, MaxDepth: 2})
		if err := m.Fit(train, rng.New(1)); err != nil {
			b.Fatal(err)
		}
	}
}
