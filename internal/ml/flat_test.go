package ml

import (
	"sort"
	"testing"

	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/metrics"
	"github.com/netml/alefb/internal/rng"
)

// The flattened SoA traversal must be a pure layout change: every model
// that compiles its trees at Fit time has to produce float64-for-float64
// identical probabilities to the original pointer-graph traversal, which
// is retained (predictProbaPointer / predictPointer) exactly for these
// tests.

// forestProbaPointer recomputes Forest.PredictProba through the pointer
// traversal, mirroring the accumulation order of PredictProbaInto.
func forestProbaPointer(f *Forest, x []float64) []float64 {
	out := make([]float64, f.nClasses)
	for _, t := range f.trees {
		p := t.predictProbaPointer(x)
		for i, v := range p {
			out[i] += v
		}
	}
	normalize(out)
	return out
}

// gbdtProbaPointer recomputes GBDT.PredictProba through the pointer
// traversal of every round's regression trees.
func gbdtProbaPointer(g *GBDT, x []float64) []float64 {
	out := make([]float64, g.nClasses)
	copy(out, g.base)
	for _, trees := range g.rounds {
		for k, t := range trees {
			out[k] += g.Config.LearningRate * t.predictPointer(x)
		}
	}
	softmaxInto(out, out)
	return out
}

// adaProbaPointer recomputes AdaBoost.PredictProba through the pointer
// traversal of every weak learner.
func adaProbaPointer(a *AdaBoost, x []float64) []float64 {
	out := make([]float64, a.classes)
	for t, tree := range a.trees {
		out[metrics.Argmax(tree.predictProbaPointer(x))] += a.alphas[t]
	}
	total := 0.0
	for _, v := range out {
		total += v
	}
	if total > 0 {
		for i := range out {
			out[i] = 3 * out[i] / total
		}
	}
	softmaxInto(out, out)
	return out
}

// probeRows mixes training rows with fresh random rows so both seen and
// unseen inputs exercise every leaf path.
func probeRows(d *data.Dataset, r *rng.Rand, extra int) [][]float64 {
	rows := append([][]float64(nil), d.X...)
	for i := 0; i < extra; i++ {
		rows = append(rows, []float64{r.Uniform(-12, 12), r.Uniform(-12, 12)})
	}
	return rows
}

func requireSameProba(t *testing.T, name string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: proba length %d != %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: class %d: flat %v != pointer %v", name, i, got[i], want[i])
		}
	}
}

func TestFlatMatchesPointerExactly(t *testing.T) {
	for _, seed := range []uint64{1, 77, 4242} {
		r := rng.New(seed)
		train := blobs(240, 3, r)
		probes := probeRows(train, r, 80)

		tree := NewTree(TreeConfig{MaxDepth: 7})
		rf := NewForest(ForestConfig{NumTrees: 12, MaxDepth: 6})
		xt := NewExtraTrees(12, 6)
		gb := NewGBDT(GBDTConfig{NumRounds: 12, MaxDepth: 3})
		ab := NewAdaBoost(AdaBoostConfig{Rounds: 12, MaxDepth: 2})
		for _, m := range []Classifier{tree, rf, xt, gb, ab} {
			if err := m.Fit(train, rng.New(seed+9)); err != nil {
				t.Fatalf("seed %d: %s Fit: %v", seed, m.Name(), err)
			}
		}
		for _, x := range probes {
			requireSameProba(t, tree.Name(), tree.PredictProba(x), tree.predictProbaPointer(x))
			requireSameProba(t, rf.Name(), rf.PredictProba(x), forestProbaPointer(rf, x))
			requireSameProba(t, xt.Name(), xt.PredictProba(x), forestProbaPointer(xt, x))
			requireSameProba(t, gb.Name(), gb.PredictProba(x), gbdtProbaPointer(gb, x))
			requireSameProba(t, ab.Name(), ab.PredictProba(x), adaProbaPointer(ab, x))
		}
	}
}

// TestPredictProbaIntoZeroAllocs proves the tentpole's core claim: the
// flattened traversal plus in-place softmax/normalize makes steady-state
// single-row inference allocation-free for the whole tree family and the
// linear/Bayes models.
func TestPredictProbaIntoZeroAllocs(t *testing.T) {
	r := rng.New(5)
	train := blobs(200, 3, r)
	x := train.X[17]

	models := []IntoPredictor{
		NewTree(TreeConfig{MaxDepth: 6}),
		NewForest(ForestConfig{NumTrees: 10, MaxDepth: 5}),
		NewExtraTrees(10, 5),
		NewGBDT(GBDTConfig{NumRounds: 8, MaxDepth: 3}),
		NewAdaBoost(AdaBoostConfig{Rounds: 8, MaxDepth: 2}),
		NewLogReg(LogRegConfig{Epochs: 5}),
		NewSVM(SVMConfig{Epochs: 5}),
		NewGaussianNB(),
	}
	for _, m := range models {
		if err := m.Fit(train, rng.New(11)); err != nil {
			t.Fatalf("%s Fit: %v", m.Name(), err)
		}
		out := make([]float64, 3)
		m.PredictProbaInto(x, out) // warm up any lazy state
		if allocs := testing.AllocsPerRun(100, func() { m.PredictProbaInto(x, out) }); allocs != 0 {
			t.Errorf("%s: PredictProbaInto allocates %.1f objects per call, want 0", m.Name(), allocs)
		}
	}
}

// TestBatchIntoZeroAllocsPipeline checks the batch dispatcher itself adds
// no per-row allocations for a zero-alloc model.
func TestBatchIntoZeroAllocsPipeline(t *testing.T) {
	r := rng.New(6)
	train := blobs(200, 3, r)
	f := NewForest(ForestConfig{NumTrees: 10, MaxDepth: 5})
	if err := f.Fit(train, rng.New(12)); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	X := train.X[:64]
	out := make([][]float64, len(X))
	backing := make([]float64, len(X)*3)
	for i := range out {
		out[i] = backing[i*3 : (i+1)*3]
	}
	if allocs := testing.AllocsPerRun(50, func() { PredictProbaBatchInto(f, X, out) }); allocs != 0 {
		t.Errorf("PredictProbaBatchInto allocates %.1f objects per call, want 0", allocs)
	}
}

// TestPredictProbaBatchContiguous verifies the batch matrix is built from
// one backing array: the whole call costs a handful of allocations no
// matter how many rows it predicts (per-row allocation would cost 60+
// here), and every row matches the single-row path exactly.
func TestPredictProbaBatchContiguous(t *testing.T) {
	r := rng.New(7)
	train := blobs(60, 3, r)
	f := NewForest(ForestConfig{NumTrees: 5, MaxDepth: 4})
	if err := f.Fit(train, rng.New(13)); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	out := PredictProbaBatch(f, train.X)
	if len(out) != train.Len() {
		t.Fatalf("batch rows %d != %d", len(out), train.Len())
	}
	for i, x := range train.X {
		requireSameProba(t, "batch row", out[i], f.PredictProba(x))
	}
	if allocs := testing.AllocsPerRun(20, func() { PredictProbaBatch(f, train.X) }); allocs > 4 {
		t.Errorf("PredictProbaBatch allocates %.1f objects for 60 rows, want <= 4 (row-count independent)", allocs)
	}
}

// TestKNNDeterministicOnTies locks in the tie-break fix: with many exactly
// duplicated training rows, equal distances used to be ordered by
// sort.Slice internals (an unstable pdqsort), so the neighbour set could
// depend on slice layout. Ties now break on training-row index.
func TestKNNDeterministicOnTies(t *testing.T) {
	schema := &data.Schema{
		Features: []data.Feature{{Name: "x0", Min: 0, Max: 4}, {Name: "x1", Min: 0, Max: 4}},
		Classes:  []string{"a", "b", "c"},
	}
	d := data.New(schema)
	// 30 copies of the same three points with rotating labels: every probe
	// distance is massively tied, the worst case for an unstable sort.
	for i := 0; i < 30; i++ {
		d.Append([]float64{1, 1}, i%3)
		d.Append([]float64{3, 3}, (i+1)%3)
		d.Append([]float64{1, 3}, (i+2)%3)
	}
	probe := []float64{2, 2}

	ref := NewKNN(KNNConfig{K: 7})
	if err := ref.Fit(d, rng.New(1)); err != nil {
		t.Fatalf("Fit: %v", err)
	}
	want := ref.PredictProba(probe)

	// The prediction must be identical regardless of history: repeated
	// calls, fresh fits, and interleaved other queries (which reorder any
	// shared scratch) all agree.
	for trial := 0; trial < 20; trial++ {
		k := NewKNN(KNNConfig{K: 7})
		if err := k.Fit(d, rng.New(uint64(trial))); err != nil {
			t.Fatalf("Fit: %v", err)
		}
		k.PredictProba([]float64{float64(trial%5) - 1, 0.5}) // perturb scratch
		got := k.PredictProba(probe)
		requireSameProba(t, "knn ties", got, want)
		// Batch path must agree with the single-row path.
		batch := PredictProbaBatch(k, [][]float64{probe, probe})
		requireSameProba(t, "knn ties batch", batch[0], want)
		requireSameProba(t, "knn ties batch", batch[1], want)
	}

	// The probe is equidistant from all 90 rows, so with index tie-breaking
	// the 7 nearest are exactly training rows 0..6, whose rotating labels
	// are 0,1,2,1,2,0,2 — a deterministic 2/7, 2/7, 3/7 vote split.
	if want[0] != 2.0/7 || want[1] != 2.0/7 || want[2] != 3.0/7 {
		t.Fatalf("tie-break vote split = %v, want [2/7 2/7 3/7]", want)
	}
}

// TestKNNHeapSelectionMatchesFullSort pins the bounded-heap partial
// selection against a full sort of every distance under the same
// (d2, index) total order: the kk winners, their accumulation order, and
// therefore the probabilities must be bit-identical, in both weight modes,
// on data with heavy distance ties and with K larger than the dataset.
func TestKNNHeapSelectionMatchesFullSort(t *testing.T) {
	r := rng.New(99)
	schema := &data.Schema{
		Features: []data.Feature{{Name: "x0", Min: -4, Max: 4}, {Name: "x1", Min: -4, Max: 4}, {Name: "x2", Min: -4, Max: 4}},
		Classes:  []string{"a", "b", "c", "d"},
	}
	d := data.New(schema)
	for i := 0; i < 120; i++ {
		// Integer-valued features make exact distance ties common.
		row := []float64{float64(r.Intn(7) - 3), float64(r.Intn(7) - 3), float64(r.Intn(7) - 3)}
		d.Append(row, r.Intn(4))
	}
	fullSort := func(k *KNN, x []float64) []float64 {
		type cand struct {
			d2 float64
			y  int
			i  int
		}
		all := make([]cand, len(k.X))
		for i, row := range k.X {
			d2 := 0.0
			for j, v := range row {
				diff := v - x[j]
				d2 += diff * diff
			}
			all[i] = cand{d2, k.Y[i], i}
		}
		sort.Slice(all, func(a, b int) bool {
			if all[a].d2 != all[b].d2 {
				return all[a].d2 < all[b].d2
			}
			return all[a].i < all[b].i
		})
		kk := k.Config.K
		if kk > len(all) {
			kk = len(all)
		}
		out := make([]float64, k.nClasses)
		for _, n := range all[:kk] {
			w := 1.0
			if k.Config.DistanceWeighted {
				w = 1 / (n.d2 + 1e-9)
			}
			out[n.y] += w
		}
		normalize(out)
		return out
	}
	for _, weighted := range []bool{false, true} {
		for _, kk := range []int{1, 5, 20, 200} { // 200 > len(d): selection degenerates to all rows
			k := NewKNN(KNNConfig{K: kk, DistanceWeighted: weighted})
			if err := k.Fit(d, rng.New(1)); err != nil {
				t.Fatalf("Fit: %v", err)
			}
			for probe := 0; probe < 40; probe++ {
				x := []float64{r.Uniform(-4, 4), r.Uniform(-4, 4), float64(r.Intn(7) - 3)}
				got := k.PredictProba(x)
				want := fullSort(k, x)
				for c := range want {
					if got[c] != want[c] {
						t.Fatalf("k=%d weighted=%v probe %d: heap selection diverged from full sort: %v vs %v", kk, weighted, probe, got, want)
					}
				}
			}
		}
	}
}
