package ml

import (
	"fmt"
	"math"

	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/rng"
)

// GBDTConfig configures gradient-boosted decision trees.
type GBDTConfig struct {
	// NumRounds is the number of boosting rounds (default 50).
	NumRounds int
	// LearningRate shrinks each tree's contribution (default 0.1).
	LearningRate float64
	// MaxDepth of each regression tree (default 3).
	MaxDepth int
	// MinSamplesLeaf of each regression tree (default 5).
	MinSamplesLeaf int
	// Subsample is the row fraction per round, (0,1]; default 1.
	Subsample float64
	// Engine selects the training engine (presort or histogram-binned)
	// for every regression tree; see TreeConfig.Engine.
	Engine TrainEngine
	// HistWorkers caps the hist engine's feature-parallel scans.
	HistWorkers int
}

func (c GBDTConfig) withDefaults() GBDTConfig {
	if c.NumRounds <= 0 {
		c.NumRounds = 50
	}
	if c.LearningRate <= 0 {
		c.LearningRate = 0.1
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 3
	}
	if c.MinSamplesLeaf <= 0 {
		c.MinSamplesLeaf = 5
	}
	if c.Subsample <= 0 || c.Subsample > 1 {
		c.Subsample = 1
	}
	return c
}

// GBDT is a multi-class gradient boosting classifier with softmax loss:
// each round fits one regression tree per class to the probability
// residuals, following Friedman's multinomial deviance recipe.
type GBDT struct {
	Config GBDTConfig

	nClasses int
	base     []float64    // initial log-odds per class
	rounds   [][]*regTree // rounds[t][k]
}

// NewGBDT returns a boosted-trees classifier.
func NewGBDT(cfg GBDTConfig) *GBDT { return &GBDT{Config: cfg.withDefaults()} }

// Name implements Classifier.
func (g *GBDT) Name() string {
	return fmt.Sprintf("gbdt(rounds=%d,lr=%g,depth=%d)", g.Config.NumRounds, g.Config.LearningRate, g.Config.MaxDepth)
}

// Fit implements Classifier.
func (g *GBDT) Fit(d *data.Dataset, r *rng.Rand) error {
	if d.Len() == 0 {
		return ErrEmptyDataset
	}
	cfg := g.Config
	n := d.Len()
	g.nClasses = d.Schema.NumClasses()

	// Base score: log of smoothed class priors.
	priors := classPriors(d)
	g.base = make([]float64, g.nClasses)
	for k, p := range priors {
		g.base[k] = math.Log(p)
	}

	// scores[i][k] is the current raw (log-odds) score.
	scores := make([][]float64, n)
	for i := range scores {
		scores[i] = append([]float64(nil), g.base...)
	}

	g.rounds = make([][]*regTree, 0, cfg.NumRounds)
	residual := make([]float64, n)
	proba := make([]float64, g.nClasses)
	// One scratch — and one master sort of the training matrix — shared
	// across every round and class: full-row rounds restore the presorted
	// view by copy, subsampled rounds project it through the row draw.
	scratch := newSplitScratch(g.nClasses)
	if cfg.Engine == EngineHist {
		scratch.ps.sortMaster(d.X, d.Schema.NumFeatures())
		scratch.hist.initHist(&scratch.ps, 3, cfg.HistWorkers)
	} else {
		scratch.ps.presortMaster(d.X, d.Schema.NumFeatures())
	}
	subsampled := cfg.Subsample < 1
	var subY []float64
	if subsampled {
		subY = make([]float64, n)
	}
	for round := 0; round < cfg.NumRounds; round++ {
		// Optional stochastic row subsample for this round.
		var rowIdx []int
		if subsampled {
			m := int(math.Max(1, cfg.Subsample*float64(n)))
			rowIdx = r.Sample(n, m)
		}

		trees := make([]*regTree, g.nClasses)
		for k := 0; k < g.nClasses; k++ {
			t := &regTree{
				maxDepth:       cfg.MaxDepth,
				minSamplesLeaf: cfg.MinSamplesLeaf,
				engine:         cfg.Engine,
				histWorkers:    cfg.HistWorkers,
			}
			if subsampled {
				// Residual = one-hot(y) - softmax(scores) for class k,
				// gathered into subsample order (working row si is d row
				// rowIdx[si]).
				for si, i := range rowIdx {
					softmaxInto(scores[i], proba)
					target := 0.0
					if d.Y[i] == k {
						target = 1
					}
					subY[si] = target - proba[k]
				}
				if cfg.Engine == EngineHist {
					scratch.hist.prepareSubset(&scratch.ps, rowIdx)
				} else {
					scratch.ps.prepareSubset(rowIdx)
				}
				t.fit(subY[:len(rowIdx)], scratch)
			} else {
				for i := 0; i < n; i++ {
					softmaxInto(scores[i], proba)
					target := 0.0
					if d.Y[i] == k {
						target = 1
					}
					residual[i] = target - proba[k]
				}
				if cfg.Engine == EngineHist {
					scratch.hist.prepareFull(&scratch.ps)
				} else {
					scratch.ps.prepareFull()
				}
				t.fit(residual, scratch)
			}
			trees[k] = t
		}
		// Update all scores (not only the subsample) so residuals stay
		// consistent across rounds.
		for i := 0; i < n; i++ {
			for k := 0; k < g.nClasses; k++ {
				scores[i][k] += cfg.LearningRate * trees[k].predict(d.X[i])
			}
		}
		g.rounds = append(g.rounds, trees)
	}
	return nil
}

// PredictProba implements Classifier.
func (g *GBDT) PredictProba(x []float64) []float64 {
	out := make([]float64, g.nClasses)
	g.PredictProbaInto(x, out)
	return out
}

// PredictProbaInto implements IntoPredictor: out doubles as the raw-score
// accumulator, and the in-place softmax (safe: softmaxInto reads index i
// before writing it) turns the scores into probabilities with no scratch.
func (g *GBDT) PredictProbaInto(x, out []float64) {
	copy(out, g.base)
	for _, trees := range g.rounds {
		for k, t := range trees {
			out[k] += g.Config.LearningRate * t.flat.predict(x)
		}
	}
	softmaxInto(out, out)
}

// PredictProbaBatchInto implements BatchPredictor with the same 4-row
// blocking as Forest.PredictProbaBatchInto: each regression tree walks four
// rows in lockstep, keeping four independent load chains in flight. Per-row
// accumulation stays in (round, class) order, so results are bit-identical
// to the single-row path.
func (g *GBDT) PredictProbaBatchInto(X, out [][]float64) {
	lr := g.Config.LearningRate
	r := 0
	for ; r+4 <= len(X); r += 4 {
		o0, o1, o2, o3 := out[r], out[r+1], out[r+2], out[r+3]
		copy(o0, g.base)
		copy(o1, g.base)
		copy(o2, g.base)
		copy(o3, g.base)
		for _, trees := range g.rounds {
			for k, t := range trees {
				v0, v1, v2, v3 := t.flat.predict4(X[r], X[r+1], X[r+2], X[r+3])
				o0[k] += lr * v0
				o1[k] += lr * v1
				o2[k] += lr * v2
				o3[k] += lr * v3
			}
		}
		softmaxInto(o0, o0)
		softmaxInto(o1, o1)
		softmaxInto(o2, o2)
		softmaxInto(o3, o3)
	}
	for ; r < len(X); r++ {
		g.PredictProbaInto(X[r], out[r])
	}
}

// softmaxInto writes softmax(scores) into out (same length).
func softmaxInto(scores, out []float64) {
	maxS := math.Inf(-1)
	for _, s := range scores {
		if s > maxS {
			maxS = s
		}
	}
	sum := 0.0
	for i, s := range scores {
		e := math.Exp(s - maxS)
		out[i] = e
		sum += e
	}
	for i := range out {
		out[i] /= sum
	}
}
