package ml

// Oracle suite for the presort-and-partition training engine.
//
// The functions prefixed "legacy" are verbatim copies of the trainer this
// engine replaced: sort.Slice over (value, label) pairs at every node for
// every candidate feature, plus the append-based stable partition. The
// tests below fit the same models with both trainers from identical rng
// seeds and require the resulting trees to be *structurally bit-identical*
// — every split feature, every threshold, every leaf payload compared with
// ==, across the whole tree family (CART, extra-trees, forests, GBDT,
// AdaBoost). That is the contract that lets the presorted engine replace
// the old one without regenerating a single golden file.
//
// The fuzz targets quantize inputs to dyadic rationals (multiples of 0.25
// with bounded magnitude), which makes every sum the regression scorer
// forms exact in float64 — so oracle equality is provable even for inputs
// dense with duplicate values, the one regime where accumulation order
// could otherwise wiggle low bits.

import (
	"math"
	"sort"
	"testing"

	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/metrics"
	"github.com/netml/alefb/internal/rng"
)

// --- legacy trainer (the pre-presort implementation, kept as the oracle) ---

type legacyPair struct {
	v float64
	y int
}

type legacyRegPair struct{ v, y float64 }

type legacyScratch struct {
	pairs       []legacyPair
	leftCounts  []float64
	rightCounts []float64
	part        []int
	regPairs    []legacyRegPair
}

func newLegacyScratch(n, k int) *legacyScratch {
	return &legacyScratch{
		pairs:       make([]legacyPair, n),
		leftCounts:  make([]float64, k),
		rightCounts: make([]float64, k),
		part:        make([]int, 0, n),
	}
}

func (s *legacyScratch) regScratch(n int) []legacyRegPair {
	if cap(s.regPairs) < n {
		s.regPairs = make([]legacyRegPair, n)
	}
	return s.regPairs[:n]
}

func legacyPartitionStable(rows [][]float64, idx []int, feat int, thr float64, part []int) (left, right []int) {
	tmp := part[:0]
	nl := 0
	for _, i := range idx {
		if rows[i][feat] <= thr {
			idx[nl] = i
			nl++
		} else {
			tmp = append(tmp, i)
		}
	}
	copy(idx[nl:], tmp)
	return idx[:nl], idx[nl:]
}

func legacyGiniAt(pairs []legacyPair, cut float64, minLeaf int, leftCounts, rightCounts []float64) (float64, bool) {
	for i := range leftCounts {
		leftCounts[i], rightCounts[i] = 0, 0
	}
	nl, nr := 0.0, 0.0
	for _, p := range pairs {
		if p.v <= cut {
			leftCounts[p.y]++
			nl++
		} else {
			rightCounts[p.y]++
			nr++
		}
	}
	if int(nl) < minLeaf || int(nr) < minLeaf {
		return 0, false
	}
	n := nl + nr
	return (nl*giniImpurity(leftCounts, nl) + nr*giniImpurity(rightCounts, nr)) / n, true
}

func legacyBestSplit(cfg TreeConfig, nFeatures int, d *data.Dataset, idx []int, r *rng.Rand, s *legacyScratch) (feat int, thr float64, ok bool) {
	candidates := nFeatures
	if cfg.MaxFeatures > 0 && cfg.MaxFeatures < nFeatures {
		candidates = cfg.MaxFeatures
	}
	feats := r.Sample(nFeatures, candidates)

	bestGini := math.Inf(1)
	pairs := s.pairs[:len(idx)]
	for _, f := range feats {
		for pi, i := range idx {
			pairs[pi] = legacyPair{d.X[i][f], d.Y[i]}
		}
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].v < pairs[b].v })
		if pairs[0].v == pairs[len(pairs)-1].v {
			continue
		}
		if cfg.RandomThresholds {
			cut := r.Uniform(pairs[0].v, pairs[len(pairs)-1].v)
			g, valid := legacyGiniAt(pairs, cut, cfg.MinSamplesLeaf, s.leftCounts, s.rightCounts)
			if valid && g < bestGini {
				bestGini, feat, thr, ok = g, f, cut, true
			}
			continue
		}
		leftCounts, rightCounts := s.leftCounts, s.rightCounts
		for i := range leftCounts {
			leftCounts[i], rightCounts[i] = 0, 0
		}
		for _, p := range pairs {
			rightCounts[p.y]++
		}
		n := float64(len(pairs))
		for i := 0; i < len(pairs)-1; i++ {
			leftCounts[pairs[i].y]++
			rightCounts[pairs[i].y]--
			if pairs[i].v == pairs[i+1].v {
				continue
			}
			nl := float64(i + 1)
			nr := n - nl
			if int(nl) < cfg.MinSamplesLeaf || int(nr) < cfg.MinSamplesLeaf {
				continue
			}
			g := (nl*giniImpurity(leftCounts, nl) + nr*giniImpurity(rightCounts, nr)) / n
			if g < bestGini {
				bestGini = g
				feat = f
				thr = (pairs[i].v + pairs[i+1].v) / 2
				ok = true
			}
		}
	}
	return feat, thr, ok
}

func legacyLeaf(d *data.Dataset, idx []int, k int) *treeNode {
	proba := make([]float64, k)
	for _, i := range idx {
		proba[d.Y[i]]++
	}
	normalize(proba)
	return &treeNode{proba: proba}
}

func legacyPure(d *data.Dataset, idx []int) bool {
	first := d.Y[idx[0]]
	for _, i := range idx[1:] {
		if d.Y[i] != first {
			return false
		}
	}
	return true
}

func legacyBuild(cfg TreeConfig, nClasses, nFeatures int, d *data.Dataset, idx []int, depth int, r *rng.Rand, s *legacyScratch) *treeNode {
	if len(idx) < cfg.MinSamplesSplit || (cfg.MaxDepth > 0 && depth >= cfg.MaxDepth) || legacyPure(d, idx) {
		return legacyLeaf(d, idx, nClasses)
	}
	feat, thr, ok := legacyBestSplit(cfg, nFeatures, d, idx, r, s)
	if !ok {
		return legacyLeaf(d, idx, nClasses)
	}
	left, right := legacyPartitionStable(d.X, idx, feat, thr, s.part)
	if len(left) < cfg.MinSamplesLeaf || len(right) < cfg.MinSamplesLeaf {
		return legacyLeaf(d, idx, nClasses)
	}
	return &treeNode{
		feature:   feat,
		threshold: thr,
		left:      legacyBuild(cfg, nClasses, nFeatures, d, left, depth+1, r, s),
		right:     legacyBuild(cfg, nClasses, nFeatures, d, right, depth+1, r, s),
	}
}

func legacyTreeFit(cfg TreeConfig, d *data.Dataset, r *rng.Rand, s *legacyScratch) *treeNode {
	cfg = cfg.withDefaults()
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	return legacyBuild(cfg, d.Schema.NumClasses(), d.Schema.NumFeatures(), d, idx, 0, r, s)
}

func legacyRegBestSplit(maxDepth, minLeaf int, X [][]float64, y []float64, idx []int, s *legacyScratch) (feat int, thr float64, ok bool) {
	_ = maxDepth
	nf := len(X[idx[0]])
	pairs := s.regScratch(len(idx))
	bestScore := math.Inf(1)
	for f := 0; f < nf; f++ {
		for pi, i := range idx {
			pairs[pi] = legacyRegPair{X[i][f], y[i]}
		}
		sort.Slice(pairs, func(a, b int) bool { return pairs[a].v < pairs[b].v })
		if pairs[0].v == pairs[len(pairs)-1].v {
			continue
		}
		sumL, sumR, sqL, sqR := 0.0, 0.0, 0.0, 0.0
		for _, p := range pairs {
			sumR += p.y
			sqR += p.y * p.y
		}
		n := float64(len(pairs))
		for i := 0; i < len(pairs)-1; i++ {
			sumL += pairs[i].y
			sqL += pairs[i].y * pairs[i].y
			sumR -= pairs[i].y
			sqR -= pairs[i].y * pairs[i].y
			if pairs[i].v == pairs[i+1].v {
				continue
			}
			nl := float64(i + 1)
			nr := n - nl
			if int(nl) < minLeaf || int(nr) < minLeaf {
				continue
			}
			score := (sqL - sumL*sumL/nl) + (sqR - sumR*sumR/nr)
			if score < bestScore {
				bestScore = score
				feat = f
				thr = (pairs[i].v + pairs[i+1].v) / 2
				ok = true
			}
		}
	}
	return feat, thr, ok
}

func legacyRegBuild(maxDepth, minLeaf int, X [][]float64, y []float64, idx []int, depth int, s *legacyScratch) *regNode {
	mean := 0.0
	for _, i := range idx {
		mean += y[i]
	}
	mean /= float64(len(idx))
	if depth >= maxDepth || len(idx) < 2*minLeaf {
		return &regNode{isLeaf: true, value: mean}
	}
	feat, thr, ok := legacyRegBestSplit(maxDepth, minLeaf, X, y, idx, s)
	if !ok {
		return &regNode{isLeaf: true, value: mean}
	}
	left, right := legacyPartitionStable(X, idx, feat, thr, s.part)
	if len(left) < minLeaf || len(right) < minLeaf {
		return &regNode{isLeaf: true, value: mean}
	}
	return &regNode{
		feature:   feat,
		threshold: thr,
		left:      legacyRegBuild(maxDepth, minLeaf, X, y, left, depth+1, s),
		right:     legacyRegBuild(maxDepth, minLeaf, X, y, right, depth+1, s),
	}
}

func legacyRegTreeFit(maxDepth, minLeaf int, X [][]float64, y []float64, s *legacyScratch) *regNode {
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	return legacyRegBuild(maxDepth, minLeaf, X, y, idx, 0, s)
}

func legacyForestFit(cfg ForestConfig, d *data.Dataset, r *rng.Rand) []*treeNode {
	cfg = cfg.withDefaults()
	maxFeatures := cfg.MaxFeatures
	if maxFeatures <= 0 {
		maxFeatures = int(math.Round(math.Sqrt(float64(d.Schema.NumFeatures()))))
		if maxFeatures < 1 {
			maxFeatures = 1
		}
	}
	roots := make([]*treeNode, cfg.NumTrees)
	scratch := newLegacyScratch(d.Len(), d.Schema.NumClasses())
	for t := range roots {
		tcfg := TreeConfig{
			MaxDepth:         cfg.MaxDepth,
			MinSamplesLeaf:   cfg.MinSamplesLeaf,
			MaxFeatures:      maxFeatures,
			RandomThresholds: cfg.ExtraTrees,
		}
		train := d
		if cfg.Bootstrap {
			idx := make([]int, d.Len())
			for i := range idx {
				idx[i] = r.Intn(d.Len())
			}
			train = d.Subset(idx)
		}
		roots[t] = legacyTreeFit(tcfg, train, r, scratch)
	}
	return roots
}

func legacyRegPredict(n *regNode, x []float64) float64 {
	for !n.isLeaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

func legacyGBDTFit(cfg GBDTConfig, d *data.Dataset, r *rng.Rand) (base []float64, rounds [][]*regNode) {
	cfg = cfg.withDefaults()
	n := d.Len()
	k := d.Schema.NumClasses()
	priors := classPriors(d)
	base = make([]float64, k)
	for c, p := range priors {
		base[c] = math.Log(p)
	}
	scores := make([][]float64, n)
	for i := range scores {
		scores[i] = append([]float64(nil), base...)
	}
	residual := make([]float64, n)
	proba := make([]float64, k)
	scratch := newLegacyScratch(n, k)
	for round := 0; round < cfg.NumRounds; round++ {
		rows := d.X
		rowIdx := make([]int, n)
		for i := range rowIdx {
			rowIdx[i] = i
		}
		if cfg.Subsample < 1 {
			m := int(math.Max(1, cfg.Subsample*float64(n)))
			rowIdx = r.Sample(n, m)
		}
		trees := make([]*regNode, k)
		for c := 0; c < k; c++ {
			subX := make([][]float64, len(rowIdx))
			subY := make([]float64, len(rowIdx))
			for si, i := range rowIdx {
				softmaxInto(scores[i], proba)
				target := 0.0
				if d.Y[i] == c {
					target = 1
				}
				residual[i] = target - proba[c]
				subX[si] = rows[i]
				subY[si] = residual[i]
			}
			trees[c] = legacyRegTreeFit(cfg.MaxDepth, cfg.MinSamplesLeaf, subX, subY, scratch)
		}
		for i := 0; i < n; i++ {
			for c := 0; c < k; c++ {
				scores[i][c] += cfg.LearningRate * legacyRegPredict(trees[c], rows[i])
			}
		}
		rounds = append(rounds, trees)
	}
	return base, rounds
}

func legacyLeafProba(n *treeNode, x []float64) []float64 {
	for n.proba == nil {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.proba
}

func legacyAdaBoostFit(cfg AdaBoostConfig, d *data.Dataset, r *rng.Rand) (roots []*treeNode, alphas []float64) {
	cfg = cfg.withDefaults()
	n := d.Len()
	k := d.Schema.NumClasses()
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = 1 / float64(n)
	}
	for round := 0; round < cfg.Rounds; round++ {
		idx := make([]int, n)
		for i := range idx {
			idx[i] = r.Weighted(weights)
		}
		sample := d.Subset(idx)
		root := legacyTreeFit(TreeConfig{MaxDepth: cfg.MaxDepth, MinSamplesLeaf: 1}, sample, r, newLegacyScratch(sample.Len(), k))
		errSum := 0.0
		pred := make([]int, n)
		for i, row := range d.X {
			pred[i] = metrics.Argmax(legacyLeafProba(root, row))
			if pred[i] != d.Y[i] {
				errSum += weights[i]
			}
		}
		if errSum >= 1-1/float64(k) {
			continue
		}
		if errSum < 1e-10 {
			roots = append(roots, root)
			alphas = append(alphas, cfg.LearningRate*10)
			break
		}
		alpha := cfg.LearningRate * (math.Log((1-errSum)/errSum) + math.Log(float64(k-1)))
		roots = append(roots, root)
		alphas = append(alphas, alpha)
		total := 0.0
		for i := range weights {
			if pred[i] != d.Y[i] {
				weights[i] *= math.Exp(alpha)
			}
			total += weights[i]
		}
		for i := range weights {
			weights[i] /= total
		}
	}
	if len(roots) == 0 {
		root := legacyTreeFit(TreeConfig{MaxDepth: cfg.MaxDepth}, d, r, newLegacyScratch(n, k))
		roots = append(roots, root)
		alphas = append(alphas, 1)
	}
	return roots, alphas
}

// --- structural bit-equality helpers ---

func assertTreeEqual(t *testing.T, got, want *treeNode, path string) {
	t.Helper()
	if (got.proba == nil) != (want.proba == nil) {
		t.Fatalf("%s: node kind mismatch (leaf=%v vs leaf=%v)", path, got.proba != nil, want.proba != nil)
	}
	if got.proba != nil {
		if len(got.proba) != len(want.proba) {
			t.Fatalf("%s: leaf width %d != %d", path, len(got.proba), len(want.proba))
		}
		for i := range got.proba {
			if got.proba[i] != want.proba[i] {
				t.Fatalf("%s: leaf proba[%d] = %v != %v", path, i, got.proba[i], want.proba[i])
			}
		}
		return
	}
	if got.feature != want.feature || got.threshold != want.threshold {
		t.Fatalf("%s: split (%d, %v) != (%d, %v)", path, got.feature, got.threshold, want.feature, want.threshold)
	}
	assertTreeEqual(t, got.left, want.left, path+"L")
	assertTreeEqual(t, got.right, want.right, path+"R")
}

func assertRegTreeEqual(t *testing.T, got, want *regNode, path string) {
	t.Helper()
	if got.isLeaf != want.isLeaf {
		t.Fatalf("%s: node kind mismatch (leaf=%v vs leaf=%v)", path, got.isLeaf, want.isLeaf)
	}
	if got.isLeaf {
		if got.value != want.value {
			t.Fatalf("%s: leaf value %v != %v", path, got.value, want.value)
		}
		return
	}
	if got.feature != want.feature || got.threshold != want.threshold {
		t.Fatalf("%s: split (%d, %v) != (%d, %v)", path, got.feature, got.threshold, want.feature, want.threshold)
	}
	assertRegTreeEqual(t, got.left, want.left, path+"L")
	assertRegTreeEqual(t, got.right, want.right, path+"R")
}

// --- exact-equality suites: presorted engine vs legacy trainer ---

var presortSeeds = []uint64{3, 11, 202}

func TestTreeFitMatchesLegacy(t *testing.T) {
	cfgs := []TreeConfig{
		{MaxDepth: 6},
		{MaxDepth: 4, MaxFeatures: 2},
		{MaxDepth: 8, MinSamplesLeaf: 3},
		{MaxDepth: 5, MaxFeatures: 3, RandomThresholds: true},
	}
	for _, seed := range presortSeeds {
		d := fitBlobs(150, 6, 3, rng.New(seed))
		for ci, cfg := range cfgs {
			tree := NewTree(cfg)
			if err := tree.Fit(d, rng.New(seed*31+uint64(ci))); err != nil {
				t.Fatal(err)
			}
			want := legacyTreeFit(cfg, d, rng.New(seed*31+uint64(ci)), newLegacyScratch(d.Len(), 3))
			assertTreeEqual(t, tree.root, want, "root")
		}
	}
}

func TestForestFitMatchesLegacy(t *testing.T) {
	cfgs := []ForestConfig{
		{NumTrees: 10, MaxDepth: 5, Bootstrap: true},
		{NumTrees: 10, MaxDepth: 5, ExtraTrees: true},
	}
	for _, seed := range presortSeeds {
		d := fitBlobs(120, 5, 3, rng.New(seed))
		for ci, cfg := range cfgs {
			f := NewForest(cfg)
			if err := f.Fit(d, rng.New(seed*37+uint64(ci))); err != nil {
				t.Fatal(err)
			}
			want := legacyForestFit(cfg, d, rng.New(seed*37+uint64(ci)))
			if len(f.trees) != len(want) {
				t.Fatalf("tree count %d != %d", len(f.trees), len(want))
			}
			for ti := range want {
				assertTreeEqual(t, f.trees[ti].root, want[ti], "root")
			}
		}
	}
}

func TestGBDTFitMatchesLegacy(t *testing.T) {
	cfgs := []GBDTConfig{
		{NumRounds: 8, MaxDepth: 3},
		{NumRounds: 6, MaxDepth: 3, Subsample: 0.7},
	}
	for _, seed := range presortSeeds {
		d := fitBlobs(120, 5, 3, rng.New(seed))
		for ci, cfg := range cfgs {
			g := NewGBDT(cfg)
			if err := g.Fit(d, rng.New(seed*41+uint64(ci))); err != nil {
				t.Fatal(err)
			}
			base, rounds := legacyGBDTFit(cfg, d, rng.New(seed*41+uint64(ci)))
			for k, b := range base {
				if g.base[k] != b {
					t.Fatalf("base[%d] = %v != %v", k, g.base[k], b)
				}
			}
			if len(g.rounds) != len(rounds) {
				t.Fatalf("round count %d != %d", len(g.rounds), len(rounds))
			}
			for ri := range rounds {
				for k := range rounds[ri] {
					assertRegTreeEqual(t, g.rounds[ri][k].root, rounds[ri][k], "root")
				}
			}
		}
	}
}

func TestAdaBoostFitMatchesLegacy(t *testing.T) {
	for _, seed := range presortSeeds {
		d := fitBlobs(120, 5, 3, rng.New(seed))
		cfg := AdaBoostConfig{Rounds: 8, MaxDepth: 2}
		a := NewAdaBoost(cfg)
		if err := a.Fit(d, rng.New(seed*43)); err != nil {
			t.Fatal(err)
		}
		roots, alphas := legacyAdaBoostFit(cfg, d, rng.New(seed*43))
		if len(a.trees) != len(roots) {
			t.Fatalf("tree count %d != %d", len(a.trees), len(roots))
		}
		for ti := range roots {
			if a.alphas[ti] != alphas[ti] {
				t.Fatalf("alpha[%d] = %v != %v", ti, a.alphas[ti], alphas[ti])
			}
			assertTreeEqual(t, a.trees[ti].root, roots[ti], "root")
		}
	}
}

// TestPrepareSubsetProjection pins the counting-projection invariants
// directly: for a multiset subset (bootstrap-style duplicates included),
// every feature's working ordering must be sorted by value and contain
// exactly the subset's rows.
func TestPrepareSubsetProjection(t *testing.T) {
	d := fitBlobs(60, 4, 3, rng.New(5))
	var ps presorted
	ps.presortMaster(d.X, 4)
	r := rng.New(9)
	idx := make([]int, 45)
	for i := range idx {
		idx[i] = r.Intn(d.Len()) // with replacement: duplicates expected
	}
	ps.prepareSubset(idx)
	if ps.n != len(idx) {
		t.Fatalf("n = %d, want %d", ps.n, len(idx))
	}
	for f := 0; f < ps.nf; f++ {
		vals := ps.val[f*ps.n : (f+1)*ps.n]
		rows := ps.ord[f*ps.n : (f+1)*ps.n]
		seen := make([]bool, len(idx))
		for i, row := range rows {
			if vals[i] != d.X[idx[row]][f] {
				t.Fatalf("feature %d pos %d: value %v does not match row", f, i, vals[i])
			}
			if i > 0 && vals[i] < vals[i-1] {
				t.Fatalf("feature %d pos %d: ordering not sorted", f, i)
			}
			if seen[row] {
				t.Fatalf("feature %d: working row %d emitted twice", f, row)
			}
			seen[row] = true
		}
	}
}

// --- fuzz: presorted bestSplit vs the legacy sort-per-node oracle ---

// fuzzDataset decodes raw fuzz bytes into a small dataset whose feature
// values are dyadic rationals (multiples of 0.25), deliberately dense with
// exact duplicates so tie handling is exercised hard.
func fuzzDataset(raw []byte) *data.Dataset {
	nf := int(raw[0]%3) + 1
	rows := (len(raw) - 1) / (nf + 1)
	if rows < 4 {
		return nil
	}
	if rows > 64 {
		rows = 64
	}
	schema := &data.Schema{}
	for f := 0; f < nf; f++ {
		schema.Features = append(schema.Features, data.Feature{Name: "x", Min: -4, Max: 4})
	}
	schema.Classes = []string{"a", "b", "c"}
	d := data.New(schema)
	p := 1
	for i := 0; i < rows; i++ {
		row := make([]float64, nf)
		for f := range row {
			row[f] = float64(int(raw[p])%17-8) * 0.25
			p++
		}
		d.Append(row, int(raw[p])%3)
		p++
	}
	return d
}

func FuzzBestSplitMatchesLegacy(f *testing.F) {
	f.Add([]byte{1, 3, 0, 7, 2, 9, 5, 5, 1, 8, 8, 0, 3, 3, 2, 250, 4, 16, 9})
	f.Add([]byte{2, 0, 0, 0, 1, 1, 1, 2, 2, 2, 0, 0, 1, 1, 2, 2, 0, 1, 2, 0})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 10 {
			t.Skip()
		}
		d := fuzzDataset(raw)
		if d == nil {
			t.Skip()
		}
		nf := d.Schema.NumFeatures()
		for _, cfg := range []TreeConfig{
			{MinSamplesLeaf: 1},
			{MinSamplesLeaf: 2, MaxFeatures: 1},
			{MinSamplesLeaf: 1, RandomThresholds: true},
		} {
			cfg = cfg.withDefaults()
			tree := NewTree(cfg)
			tree.nClasses, tree.nFeatures = 3, nf
			s := newSplitScratch(3)
			s.ps.presortMaster(d.X, nf)
			s.ps.prepareFull()
			feat, thr, ok := tree.bestSplit(d, 0, d.Len(), rng.New(77), s)

			idx := make([]int, d.Len())
			for i := range idx {
				idx[i] = i
			}
			lfeat, lthr, lok := legacyBestSplit(cfg, nf, d, idx, rng.New(77), newLegacyScratch(d.Len(), 3))
			if feat != lfeat || thr != lthr || ok != lok {
				t.Fatalf("cfg %+v: presorted (%d, %v, %v) != legacy (%d, %v, %v)",
					cfg, feat, thr, ok, lfeat, lthr, lok)
			}
		}
	})
}

func FuzzRegTreeMatchesLegacy(f *testing.F) {
	f.Add([]byte{1, 3, 0, 7, 2, 9, 5, 5, 1, 8, 8, 0, 3, 3, 2, 250, 4, 16, 9, 30, 31})
	f.Add([]byte{2, 0, 5, 0, 1, 1, 1, 2, 2, 2, 0, 0, 1, 1, 2, 2, 0, 1, 2, 0, 9, 9, 9})
	f.Fuzz(func(t *testing.T, raw []byte) {
		if len(raw) < 12 {
			t.Skip()
		}
		nf := int(raw[0]%3) + 1
		rows := (len(raw) - 1) / (nf + 1)
		if rows < 4 {
			t.Skip()
		}
		if rows > 64 {
			rows = 64
		}
		// Dyadic features AND targets: every sum the scorer forms is exact
		// in float64, so the oracle comparison is order-independent even
		// with heavy duplication.
		X := make([][]float64, rows)
		y := make([]float64, rows)
		p := 1
		for i := 0; i < rows; i++ {
			X[i] = make([]float64, nf)
			for f := range X[i] {
				X[i][f] = float64(int(raw[p])%17-8) * 0.25
				p++
			}
			y[i] = float64(int(raw[p])%33-16) * 0.25
			p++
		}
		s := newSplitScratch(1)
		s.ps.presortMaster(X, nf)
		s.ps.prepareFull()
		tr := &regTree{maxDepth: 3, minSamplesLeaf: 1}
		tr.fit(y, s)
		want := legacyRegTreeFit(3, 1, X, y, newLegacyScratch(rows, 1))
		assertRegTreeEqual(t, tr.root, want, "root")
	})
}

// --- allocation contract: the warm split search allocates nothing ---

func TestBestSplitZeroAllocs(t *testing.T) {
	d := fitBlobs(256, 8, 3, rng.New(7))
	tree := NewTree(TreeConfig{MaxFeatures: 3})
	tree.nClasses, tree.nFeatures = 3, 8
	s := newSplitScratch(3)
	s.ps.presortMaster(d.X, 8)
	s.ps.prepareFull()
	r := rng.New(1)
	tree.bestSplit(d, 0, d.Len(), r, s) // warm s.feats
	if allocs := testing.AllocsPerRun(50, func() {
		tree.bestSplit(d, 0, d.Len(), r, s)
	}); allocs != 0 {
		t.Fatalf("warm classification bestSplit allocates %v/op, want 0", allocs)
	}
}

func TestRegBestSplitZeroAllocs(t *testing.T) {
	d := fitBlobs(256, 8, 3, rng.New(8))
	y := make([]float64, d.Len())
	r := rng.New(2)
	for i := range y {
		y[i] = r.Normal(0, 1)
	}
	s := newSplitScratch(1)
	s.ps.presortMaster(d.X, 8)
	s.ps.prepareFull()
	tr := &regTree{maxDepth: 3, minSamplesLeaf: 1}
	if allocs := testing.AllocsPerRun(50, func() {
		tr.bestSplit(y, 0, d.Len(), s)
	}); allocs != 0 {
		t.Fatalf("warm regression bestSplit allocates %v/op, want 0", allocs)
	}
}

// TestPartitionZeroAllocs pins the other per-node step: committing a
// split (markLeft + partition) must not allocate either, so the whole
// node loop is allocation-free once the scratch is warm.
func TestPartitionZeroAllocs(t *testing.T) {
	d := fitBlobs(256, 8, 3, rng.New(9))
	var ps presorted
	ps.presortMaster(d.X, 8)
	thr := d.X[0][0]
	if allocs := testing.AllocsPerRun(50, func() {
		ps.prepareFull()
		nl := ps.markLeft(0, 0, ps.n, thr)
		ps.partition(0, ps.n)
		_ = nl
	}); allocs != 0 {
		t.Fatalf("warm markLeft+partition allocates %v/op, want 0", allocs)
	}
}
