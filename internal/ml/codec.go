package ml

// This file is the fitted-state codec of every classifier family: the
// serialization half of the durable model snapshot store. Unlike
// automl.Description — which persists a spec + seed and *refits* on load
// — AppendModel encodes the trained parameters themselves (flat SoA tree
// arrays, weight matrices, class statistics, retained k-NN rows), so
// DecodeModel rebuilds a model that predicts without touching the
// training data again.
//
// The contract is bit-identity on the zero-alloc predict path: a decoded
// model's PredictProbaInto/PredictProbaBatchInto output must equal the
// original's byte for byte. The tree families guarantee this by
// construction — their predict paths read only the flatTree/flatRegTree
// arrays, which are stored verbatim as float64/int32 bit patterns — and
// the parametric families store every fitted field the same way. The
// pointer node graphs (Tree.root, regTree.root) are deliberately NOT
// persisted: they exist only as the reference oracle for freshly fitted
// trees (predictProbaPointer, Depth), and a decoded tree carries a nil
// root, which those paths tolerate.
//
// The encoding has no framing, checksums or versioning of its own —
// it is a payload format. internal/modelstore wraps it in length+CRC-32
// sections (the feedback-WAL discipline) and a format-versioned file
// header; corruption is detected there, so a Reader error here means the
// section passed its CRC but carries an impossible structure, which is
// reported, never tolerated.

import (
	"fmt"

	"github.com/netml/alefb/internal/wire"
)

// Model tags. Stable on-disk identifiers: append new families, never
// renumber.
const (
	codecTree byte = iota + 1
	codecForest
	codecGBDT
	codecAdaBoost
	codecKNN
	codecLogReg
	codecGaussianNB
	codecSVM
	codecMLP
	codecPipeline
)

// Scaler tags.
const (
	codecScalerNone byte = iota
	codecScalerStandard
	codecScalerMinMax
)

// AppendModel encodes the fitted state of c onto buf and returns the
// extended slice. It fails on classifier types outside the repository's
// model zoo — persisting an unknown model silently would corrupt the
// snapshot's restore guarantee.
func AppendModel(buf []byte, c Classifier) ([]byte, error) {
	switch m := c.(type) {
	case *Tree:
		return appendTree(append(buf, codecTree), m), nil
	case *Forest:
		buf = append(buf, codecForest)
		buf = wire.AppendI64(buf, int64(m.Config.NumTrees))
		buf = wire.AppendI64(buf, int64(m.Config.MaxDepth))
		buf = wire.AppendI64(buf, int64(m.Config.MinSamplesLeaf))
		buf = wire.AppendI64(buf, int64(m.Config.MaxFeatures))
		buf = wire.AppendBool(buf, m.Config.Bootstrap)
		buf = wire.AppendBool(buf, m.Config.ExtraTrees)
		buf = wire.AppendI64(buf, int64(m.Config.Engine))
		buf = wire.AppendI64(buf, int64(m.Config.HistWorkers))
		buf = wire.AppendI64(buf, int64(m.nClasses))
		buf = wire.AppendU32(buf, uint32(len(m.trees)))
		for _, t := range m.trees {
			buf = appendTree(buf, t)
		}
		return buf, nil
	case *GBDT:
		buf = append(buf, codecGBDT)
		buf = wire.AppendI64(buf, int64(m.Config.NumRounds))
		buf = wire.AppendF64(buf, m.Config.LearningRate)
		buf = wire.AppendI64(buf, int64(m.Config.MaxDepth))
		buf = wire.AppendI64(buf, int64(m.Config.MinSamplesLeaf))
		buf = wire.AppendF64(buf, m.Config.Subsample)
		buf = wire.AppendI64(buf, int64(m.Config.Engine))
		buf = wire.AppendI64(buf, int64(m.Config.HistWorkers))
		buf = wire.AppendI64(buf, int64(m.nClasses))
		buf = wire.AppendF64s(buf, m.base)
		buf = wire.AppendU32(buf, uint32(len(m.rounds)))
		for _, round := range m.rounds {
			buf = wire.AppendU32(buf, uint32(len(round)))
			for _, t := range round {
				buf = appendRegTree(buf, t)
			}
		}
		return buf, nil
	case *AdaBoost:
		buf = append(buf, codecAdaBoost)
		buf = wire.AppendI64(buf, int64(m.Config.Rounds))
		buf = wire.AppendI64(buf, int64(m.Config.MaxDepth))
		buf = wire.AppendF64(buf, m.Config.LearningRate)
		buf = wire.AppendI64(buf, int64(m.Config.Engine))
		buf = wire.AppendI64(buf, int64(m.Config.HistWorkers))
		buf = wire.AppendI64(buf, int64(m.classes))
		buf = wire.AppendF64s(buf, m.alphas)
		buf = wire.AppendU32(buf, uint32(len(m.trees)))
		for _, t := range m.trees {
			buf = appendTree(buf, t)
		}
		return buf, nil
	case *KNN:
		buf = append(buf, codecKNN)
		buf = wire.AppendI64(buf, int64(m.Config.K))
		buf = wire.AppendBool(buf, m.Config.DistanceWeighted)
		buf = wire.AppendI64(buf, int64(m.nClasses))
		buf = wire.AppendF64Matrix(buf, m.X)
		buf = wire.AppendInts(buf, m.Y)
		return buf, nil
	case *LogReg:
		buf = append(buf, codecLogReg)
		buf = wire.AppendI64(buf, int64(m.Config.Epochs))
		buf = wire.AppendF64(buf, m.Config.LearningRate)
		buf = wire.AppendF64(buf, m.Config.L2)
		buf = wire.AppendI64(buf, int64(m.Config.BatchSize))
		buf = wire.AppendF64Matrix(buf, m.W)
		buf = wire.AppendF64s(buf, m.B)
		return buf, nil
	case *GaussianNB:
		buf = append(buf, codecGaussianNB)
		buf = wire.AppendF64(buf, m.VarSmoothing)
		buf = wire.AppendI64(buf, int64(m.classes))
		buf = wire.AppendF64Matrix(buf, m.logPrior)
		buf = wire.AppendF64Matrix(buf, m.mean)
		buf = wire.AppendF64Matrix(buf, m.variance)
		return buf, nil
	case *SVM:
		buf = append(buf, codecSVM)
		buf = wire.AppendI64(buf, int64(m.Config.Epochs))
		buf = wire.AppendF64(buf, m.Config.Lambda)
		buf = wire.AppendF64Matrix(buf, m.W)
		buf = wire.AppendF64s(buf, m.B)
		buf = wire.AppendF64(buf, m.temperature)
		return buf, nil
	case *MLP:
		buf = append(buf, codecMLP)
		buf = wire.AppendI64(buf, int64(m.Config.Hidden))
		buf = wire.AppendI64(buf, int64(m.Config.Epochs))
		buf = wire.AppendF64(buf, m.Config.LearningRate)
		buf = wire.AppendF64(buf, m.Config.L2)
		buf = wire.AppendF64Matrix(buf, m.w1)
		buf = wire.AppendF64s(buf, m.b1)
		buf = wire.AppendF64Matrix(buf, m.w2)
		buf = wire.AppendF64s(buf, m.b2)
		return buf, nil
	case *Pipeline:
		buf = append(buf, codecPipeline)
		var err error
		if buf, err = appendScaler(buf, m.Scaler); err != nil {
			return nil, err
		}
		return AppendModel(buf, m.Model)
	default:
		return nil, fmt.Errorf("ml: no fitted-state codec for %T", c)
	}
}

// DecodeModel decodes one model from r, the inverse of AppendModel. A
// structural problem (unknown tag, truncated input) is returned as an
// error; the caller owns CRC verification, so errors here indicate a
// format bug or an impossible payload, not routine disk corruption.
func DecodeModel(r *wire.Reader) (Classifier, error) {
	tag := r.U8()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("ml: decode model tag: %w", err)
	}
	var c Classifier
	switch tag {
	case codecTree:
		c = decodeTree(r)
	case codecForest:
		m := &Forest{}
		m.Config.NumTrees = int(r.I64())
		m.Config.MaxDepth = int(r.I64())
		m.Config.MinSamplesLeaf = int(r.I64())
		m.Config.MaxFeatures = int(r.I64())
		m.Config.Bootstrap = r.Bool()
		m.Config.ExtraTrees = r.Bool()
		m.Config.Engine = TrainEngine(r.I64())
		m.Config.HistWorkers = int(r.I64())
		m.nClasses = int(r.I64())
		if n := int(r.U32()); n > 0 && r.Err() == nil {
			m.trees = make([]*Tree, n)
			for i := range m.trees {
				m.trees[i] = decodeTree(r)
			}
		}
		c = m
	case codecGBDT:
		m := &GBDT{}
		m.Config.NumRounds = int(r.I64())
		m.Config.LearningRate = r.F64()
		m.Config.MaxDepth = int(r.I64())
		m.Config.MinSamplesLeaf = int(r.I64())
		m.Config.Subsample = r.F64()
		m.Config.Engine = TrainEngine(r.I64())
		m.Config.HistWorkers = int(r.I64())
		m.nClasses = int(r.I64())
		m.base = r.F64s()
		if n := int(r.U32()); n > 0 && r.Err() == nil {
			m.rounds = make([][]*regTree, n)
			for i := range m.rounds {
				k := int(r.U32())
				if r.Err() != nil {
					break
				}
				m.rounds[i] = make([]*regTree, k)
				for j := range m.rounds[i] {
					m.rounds[i][j] = decodeRegTree(r)
				}
			}
		}
		c = m
	case codecAdaBoost:
		m := &AdaBoost{}
		m.Config.Rounds = int(r.I64())
		m.Config.MaxDepth = int(r.I64())
		m.Config.LearningRate = r.F64()
		m.Config.Engine = TrainEngine(r.I64())
		m.Config.HistWorkers = int(r.I64())
		m.classes = int(r.I64())
		m.alphas = r.F64s()
		if n := int(r.U32()); n > 0 && r.Err() == nil {
			m.trees = make([]*Tree, n)
			for i := range m.trees {
				m.trees[i] = decodeTree(r)
			}
		}
		c = m
	case codecKNN:
		m := &KNN{}
		m.Config.K = int(r.I64())
		m.Config.DistanceWeighted = r.Bool()
		m.nClasses = int(r.I64())
		m.X = r.F64Matrix()
		m.Y = r.Ints()
		c = m
	case codecLogReg:
		m := &LogReg{}
		m.Config.Epochs = int(r.I64())
		m.Config.LearningRate = r.F64()
		m.Config.L2 = r.F64()
		m.Config.BatchSize = int(r.I64())
		m.W = r.F64Matrix()
		m.B = r.F64s()
		c = m
	case codecGaussianNB:
		m := &GaussianNB{}
		m.VarSmoothing = r.F64()
		m.classes = int(r.I64())
		m.logPrior = r.F64Matrix()
		m.mean = r.F64Matrix()
		m.variance = r.F64Matrix()
		c = m
	case codecSVM:
		m := &SVM{}
		m.Config.Epochs = int(r.I64())
		m.Config.Lambda = r.F64()
		m.W = r.F64Matrix()
		m.B = r.F64s()
		m.temperature = r.F64()
		c = m
	case codecMLP:
		m := &MLP{}
		m.Config.Hidden = int(r.I64())
		m.Config.Epochs = int(r.I64())
		m.Config.LearningRate = r.F64()
		m.Config.L2 = r.F64()
		m.w1 = r.F64Matrix()
		m.b1 = r.F64s()
		m.w2 = r.F64Matrix()
		m.b2 = r.F64s()
		c = m
	case codecPipeline:
		scaler, err := decodeScaler(r)
		if err != nil {
			return nil, err
		}
		inner, err := DecodeModel(r)
		if err != nil {
			return nil, err
		}
		c = &Pipeline{Scaler: scaler, Model: inner}
	default:
		return nil, fmt.Errorf("ml: unknown model tag %d", tag)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("ml: decode model: %w", err)
	}
	return c, nil
}

// appendTree encodes one fitted classification tree (config, shape
// metadata and the flat SoA arrays the predict path reads).
func appendTree(buf []byte, t *Tree) []byte {
	buf = wire.AppendI64(buf, int64(t.Config.MaxDepth))
	buf = wire.AppendI64(buf, int64(t.Config.MinSamplesLeaf))
	buf = wire.AppendI64(buf, int64(t.Config.MinSamplesSplit))
	buf = wire.AppendI64(buf, int64(t.Config.MaxFeatures))
	buf = wire.AppendBool(buf, t.Config.RandomThresholds)
	buf = wire.AppendI64(buf, int64(t.Config.Engine))
	buf = wire.AppendI64(buf, int64(t.Config.HistWorkers))
	buf = wire.AppendI64(buf, int64(t.nClasses))
	buf = wire.AppendI64(buf, int64(t.nFeatures))
	return appendFlatTree(buf, &t.flat)
}

func decodeTree(r *wire.Reader) *Tree {
	t := &Tree{}
	t.Config.MaxDepth = int(r.I64())
	t.Config.MinSamplesLeaf = int(r.I64())
	t.Config.MinSamplesSplit = int(r.I64())
	t.Config.MaxFeatures = int(r.I64())
	t.Config.RandomThresholds = r.Bool()
	t.Config.Engine = TrainEngine(r.I64())
	t.Config.HistWorkers = int(r.I64())
	t.nClasses = int(r.I64())
	t.nFeatures = int(r.I64())
	t.flat = decodeFlatTree(r)
	return t
}

// appendFlatTree stores the SoA arrays verbatim — the exact bits the
// branchless traversal reads, which is what makes a loaded model
// bit-identical on the predict path.
func appendFlatTree(buf []byte, f *flatTree) []byte {
	buf = wire.AppendI32s(buf, f.feature)
	buf = wire.AppendF64s(buf, f.threshold)
	buf = wire.AppendI32s(buf, f.left)
	buf = wire.AppendI32s(buf, f.right)
	buf = wire.AppendF64s(buf, f.leafProba)
	return wire.AppendI64(buf, int64(f.k))
}

func decodeFlatTree(r *wire.Reader) flatTree {
	return flatTree{
		feature:   r.I32s(),
		threshold: r.F64s(),
		left:      r.I32s(),
		right:     r.I32s(),
		leafProba: r.F64s(),
		k:         int(r.I64()),
	}
}

// appendRegTree encodes one fitted regression tree of a GBDT round.
func appendRegTree(buf []byte, t *regTree) []byte {
	buf = wire.AppendI64(buf, int64(t.maxDepth))
	buf = wire.AppendI64(buf, int64(t.minSamplesLeaf))
	buf = wire.AppendI64(buf, int64(t.engine))
	buf = wire.AppendI64(buf, int64(t.histWorkers))
	buf = wire.AppendI32s(buf, t.flat.feature)
	buf = wire.AppendF64s(buf, t.flat.threshold)
	buf = wire.AppendI32s(buf, t.flat.left)
	return wire.AppendI32s(buf, t.flat.right)
}

func decodeRegTree(r *wire.Reader) *regTree {
	t := &regTree{
		maxDepth:       int(r.I64()),
		minSamplesLeaf: int(r.I64()),
		engine:         TrainEngine(r.I64()),
		histWorkers:    int(r.I64()),
	}
	t.flat.feature = r.I32s()
	t.flat.threshold = r.F64s()
	t.flat.left = r.I32s()
	t.flat.right = r.I32s()
	return t
}

// appendScaler encodes a Pipeline scaler (nil allowed).
func appendScaler(buf []byte, s Scaler) ([]byte, error) {
	switch sc := s.(type) {
	case nil:
		return append(buf, codecScalerNone), nil
	case *StandardScaler:
		buf = append(buf, codecScalerStandard)
		buf = wire.AppendF64s(buf, sc.mean)
		return wire.AppendF64s(buf, sc.scale), nil
	case *MinMaxScaler:
		buf = append(buf, codecScalerMinMax)
		buf = wire.AppendF64s(buf, sc.min)
		return wire.AppendF64s(buf, sc.span), nil
	default:
		return nil, fmt.Errorf("ml: no fitted-state codec for scaler %T", s)
	}
}

func decodeScaler(r *wire.Reader) (Scaler, error) {
	switch tag := r.U8(); tag {
	case codecScalerNone:
		return nil, nil
	case codecScalerStandard:
		return &StandardScaler{mean: r.F64s(), scale: r.F64s()}, nil
	case codecScalerMinMax:
		return &MinMaxScaler{min: r.F64s(), span: r.F64s()}, nil
	default:
		return nil, fmt.Errorf("ml: unknown scaler tag %d", tag)
	}
}
