package ml

import "math"

// Scaler is a fitted feature transformation.
type Scaler interface {
	// Name identifies the scaler in pipeline descriptions.
	Name() string
	// FitScaler learns the transformation parameters from rows.
	FitScaler(X [][]float64)
	// Transform returns a scaled copy of x; it never mutates x.
	Transform(x []float64) []float64
	// TransformInto writes the scaled row into out (len(out) == len(x))
	// without allocating; it never mutates x.
	TransformInto(x, out []float64)
}

// StandardScaler centres each feature to zero mean and unit variance.
// Constant features are left centred with unit denominator.
type StandardScaler struct {
	mean, scale []float64
}

// Name implements Scaler.
func (s *StandardScaler) Name() string { return "std" }

// FitScaler implements Scaler.
func (s *StandardScaler) FitScaler(X [][]float64) {
	if len(X) == 0 {
		return
	}
	nf := len(X[0])
	s.mean = make([]float64, nf)
	s.scale = make([]float64, nf)
	for _, row := range X {
		for j, v := range row {
			s.mean[j] += v
		}
	}
	n := float64(len(X))
	for j := range s.mean {
		s.mean[j] /= n
	}
	for _, row := range X {
		for j, v := range row {
			d := v - s.mean[j]
			s.scale[j] += d * d
		}
	}
	for j := range s.scale {
		s.scale[j] = math.Sqrt(s.scale[j] / n)
		if s.scale[j] == 0 {
			s.scale[j] = 1
		}
	}
}

// Transform implements Scaler.
func (s *StandardScaler) Transform(x []float64) []float64 {
	out := make([]float64, len(x))
	s.TransformInto(x, out)
	return out
}

// TransformInto implements Scaler.
func (s *StandardScaler) TransformInto(x, out []float64) {
	if s.mean == nil {
		copy(out, x)
		return
	}
	for j, v := range x {
		out[j] = (v - s.mean[j]) / s.scale[j]
	}
}

// MinMaxScaler maps each feature to [0, 1] based on the fitted range.
// Constant features map to 0.
type MinMaxScaler struct {
	min, span []float64
}

// Name implements Scaler.
func (s *MinMaxScaler) Name() string { return "minmax" }

// FitScaler implements Scaler.
func (s *MinMaxScaler) FitScaler(X [][]float64) {
	if len(X) == 0 {
		return
	}
	nf := len(X[0])
	s.min = make([]float64, nf)
	s.span = make([]float64, nf)
	for j := 0; j < nf; j++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, row := range X {
			if row[j] < lo {
				lo = row[j]
			}
			if row[j] > hi {
				hi = row[j]
			}
		}
		s.min[j] = lo
		s.span[j] = hi - lo
		if s.span[j] == 0 {
			s.span[j] = 1
		}
	}
}

// Transform implements Scaler.
func (s *MinMaxScaler) Transform(x []float64) []float64 {
	out := make([]float64, len(x))
	s.TransformInto(x, out)
	return out
}

// TransformInto implements Scaler.
func (s *MinMaxScaler) TransformInto(x, out []float64) {
	if s.min == nil {
		copy(out, x)
		return
	}
	for j, v := range x {
		out[j] = (v - s.min[j]) / s.span[j]
	}
}
