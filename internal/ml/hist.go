package ml

import (
	"fmt"

	"github.com/netml/alefb/internal/parallel"
)

// This file implements the histogram-binned training engine layered on
// top of the presort engine (presort.go). Instead of scanning O(rows)
// presorted runs at every node, each feature column is quantized once per
// fit into at most 256 bins (cut points read off the presorted master
// columns, so binning reuses the one master sort the presort engine
// already pays for); rows carry their bin index as a column-major []uint8
// working set, and every node is grown by scanning O(bins) class-count
// (or gradient-sum) histograms.
//
// Two properties keep the engine fast and exact:
//
//   - Parent−sibling subtraction: a split's two child histograms satisfy
//     parent = left + right elementwise, so only the smaller child is
//     ever scanned over its rows; the larger child's histogram is derived
//     by subtraction in O(bins). Class counts are integers, for which
//     float64 subtraction is exact at any tree depth.
//
//   - Lossless binning on discrete columns: when a column has at most
//     histLosslessBins (128) distinct values, every distinct value
//     receives its own bin (binLo == binHi), the candidate-threshold set
//     collapses to exactly the presort engine's
//     midpoints-of-adjacent-distinct-values, and the fitted trees are
//     bit-identical to the presort engine's (proven by the oracle suites
//     in hist_test.go). On continuous columns greedy quantile binning
//     caps the bins at histContinuousBins (64) and the presort engine
//     serves as a statistical-parity oracle instead.
//
// Determinism: bin construction and histogram scans parallelize across
// features (each feature owns a disjoint slot range of the histogram), so
// results are bit-identical at any worker count; the per-node rng draws
// (feature subsets, extra-trees thresholds) are issued in exactly the
// presort engine's order.

// TrainEngine selects the tree-growing engine used by Fit.
type TrainEngine uint8

const (
	// EnginePresort grows nodes over presorted value runs (presort.go).
	EnginePresort TrainEngine = iota
	// EngineHist grows nodes over ≤256-bin feature histograms with
	// parent−sibling subtraction (this file).
	EngineHist
)

// String implements fmt.Stringer; the names round-trip ParseTrainEngine.
func (e TrainEngine) String() string {
	if e == EngineHist {
		return "hist"
	}
	return "presort"
}

// ParseTrainEngine parses a -trainengine flag value.
func ParseTrainEngine(s string) (TrainEngine, error) {
	switch s {
	case "presort", "":
		return EnginePresort, nil
	case "hist":
		return EngineHist, nil
	}
	return EnginePresort, fmt.Errorf("ml: unknown train engine %q (want presort or hist)", s)
}

// maxHistBins is the hard bin cap per feature — the uint8 row→bin index
// representation cannot address more. No quantization path reaches it
// (lossless tops out at histLosslessBins, greedy at histContinuousBins);
// it exists as the representation invariant the other two budgets must
// stay under.
const maxHistBins = 256

// histLosslessBins is the lossless threshold: a column with at most this
// many distinct values gets one bin per distinct value (binLo == binHi),
// which makes histogram split finding bit-identical to the presort
// engine on that column. 128 rather than the uint8 cap is deliberate —
// near the cap, a small continuous dataset (every value distinct, n just
// under 256) would be "losslessly" binned into ≈n singleton bins, and the
// engine would degenerate into presort plus histogram overhead. Capping
// losslessness at 128 keeps genuinely discrete columns exact while small
// continuous columns fall through to quantile binning.
const histLosslessBins = 128

// histContinuousBins is the greedy quantile budget for columns with more
// than histLosslessBins distinct values. Deliberately coarse: 64
// near-uniform quantiles already locate a split to ~1.6% of the node
// mass, while every per-node cost — region zeroing, split sweeps,
// subtraction — shrinks 4x versus a 256-bin layout.
const histContinuousBins = 64

// histParallelWork is the minimum rows×features product before a
// histogram scan fans out across features; below it the parallel fork
// overhead exceeds the scan itself.
const histParallelWork = 1 << 14

// histogram holds the per-fit binning of one training matrix plus the
// node-histogram arenas one tree fit reuses. It lives inside splitScratch
// next to the presorted view, sharing its rows/mask/tmp scratch.
type histogram struct {
	// width is the number of float64 slots per bin: nClasses for
	// classification counts, 3 (count, Σy, Σy²) for regression.
	width int

	// nBins[f] is feature f's bin count; binOff is its prefix sum
	// (len nf+1), so feature f owns histogram slots
	// [binOff[f], binOff[f+1]) — a ragged layout sized to the actual
	// distinct-value structure, not nf×256.
	nBins  []int32
	binOff []int32

	// binLo/binHi bound each bin's value range over the whole master
	// matrix (equal when the bin holds a single distinct value, which is
	// every bin in lossless mode). Thresholds are reconstructed from
	// them: the candidate between adjacent non-empty bins p < c is
	// (binHi[p]+binLo[c])/2, exactly the presort engine's
	// midpoint-of-adjacent-distinct-values when binning is lossless.
	binLo []float64
	binHi []float64

	// masterBin[f*masterRows+row] is master row's bin on feature f.
	// bin is the working view with the same layout over working rows:
	// an alias of masterBin after prepareFull, a gather through the
	// subset into binOwned after prepareSubset. Bins are immutable while
	// a tree grows — only ps.rows is partitioned.
	masterBin []uint8
	binOwned  []uint8
	bin       []uint8

	// levels holds node histograms, two slots per depth: a node at depth
	// d passes slots 2(d+1) and 2(d+1)+1 to its children, so a sibling's
	// histogram survives the first child's whole subtree recursion (the
	// subtraction trick needs both children live at once).
	levels [][]float64
}

// initHist sizes the binning for the master matrix in ps (sortMaster must
// have run) and quantizes every feature column: cut points from the
// sorted runs, then the row→bin index map. Both passes parallelize across
// features; each feature's outputs are disjoint, so the result is
// identical at any worker count.
func (h *histogram) initHist(ps *presorted, width, workers int) {
	nf, n0 := ps.nf, ps.masterRows
	h.width = width
	if cap(h.nBins) < nf {
		h.nBins = make([]int32, nf)
	}
	h.nBins = h.nBins[:nf]
	if cap(h.binOff) < nf+1 {
		h.binOff = make([]int32, nf+1)
	}
	h.binOff = h.binOff[:nf+1]
	if cap(h.masterBin) < nf*n0 {
		h.masterBin = make([]uint8, nf*n0)
		h.binOwned = make([]uint8, nf*n0)
	}
	h.masterBin = h.masterBin[:nf*n0]

	w := histWorkerCount(workers, n0*nf)
	if w == 1 {
		for f := 0; f < nf; f++ {
			h.nBins[f] = int32(quantizeColumn(ps.masterVal[f*n0:(f+1)*n0], nil, nil, nil, nil))
		}
	} else {
		_ = parallel.ForEach(nf, w, func(f int) error {
			h.nBins[f] = int32(quantizeColumn(ps.masterVal[f*n0:(f+1)*n0], nil, nil, nil, nil))
			return nil
		})
	}
	h.binOff[0] = 0
	for f := 0; f < nf; f++ {
		h.binOff[f+1] = h.binOff[f] + h.nBins[f]
	}
	total := int(h.binOff[nf])
	if cap(h.binLo) < total {
		h.binLo = make([]float64, total)
		h.binHi = make([]float64, total)
	}
	h.binLo, h.binHi = h.binLo[:total], h.binHi[:total]
	fill := func(f int) {
		lo, hi := h.binOff[f], h.binOff[f+1]
		quantizeColumn(ps.masterVal[f*n0:(f+1)*n0], ps.masterOrd[f*n0:(f+1)*n0],
			h.binLo[lo:hi], h.binHi[lo:hi], h.masterBin[f*n0:(f+1)*n0])
	}
	if w == 1 {
		for f := 0; f < nf; f++ {
			fill(f)
		}
	} else {
		_ = parallel.ForEach(nf, w, func(f int) error {
			fill(f)
			return nil
		})
	}
}

// quantizeColumn bins one presorted feature column. With nil outputs it
// only counts the bins (sizing pass); otherwise it fills the bin bounds
// and every row's bin index. Columns with at most histLosslessBins
// distinct values get one bin per distinct value (lossless); otherwise greedy
// quantile packing closes a bin whenever it holds at least
// remaining/binsLeft rows, which telescopes to at most histContinuousBins
// bins while keeping bin populations near-uniform.
func quantizeColumn(val []float64, ord []int32, binLo, binHi []float64, binOut []uint8) int {
	n := len(val)
	nd := 1
	for i := 1; i < n; i++ {
		if val[i] != val[i-1] {
			nd++
		}
	}
	b := 0
	if nd <= histLosslessBins {
		start := 0
		for i := 1; i <= n; i++ {
			if i == n || val[i] != val[start] {
				if binOut != nil {
					binLo[b], binHi[b] = val[start], val[start]
					for p := start; p < i; p++ {
						binOut[int(ord[p])] = uint8(b)
					}
				}
				b++
				start = i
			}
		}
		return b
	}
	remaining, binsLeft := n, histContinuousBins
	start := 0
	for i := 0; i < n; {
		j := i + 1
		for j < n && val[j] == val[i] {
			j++
		}
		if acc := j - start; float64(acc) >= float64(remaining)/float64(binsLeft) || j == n {
			if binOut != nil {
				binLo[b], binHi[b] = val[start], val[j-1]
				for p := start; p < j; p++ {
					binOut[int(ord[p])] = uint8(b)
				}
			}
			b++
			remaining -= acc
			binsLeft--
			start = j
		}
		i = j
	}
	return b
}

// prepareFull selects the full master matrix as the working view. The
// master bin map is shared by alias — bins are never mutated during a
// fit — and the presorted side only needs its identity rows ordering.
func (h *histogram) prepareFull(ps *presorted) {
	n0 := ps.masterRows
	ps.n = n0
	for i := 0; i < n0; i++ {
		ps.rows[i] = int32(i)
	}
	h.bin = h.masterBin
}

// prepareSubset selects the rows idx (a multiset of master rows; working
// row j stands for master row idx[j]) as the working view: one O(nf×|idx|)
// gather of bin indices, with no value copies and no counting projection.
func (h *histogram) prepareSubset(ps *presorted, idx []int) {
	n0, m := ps.masterRows, len(idx)
	ps.n = m
	for j := 0; j < m; j++ {
		ps.rows[j] = int32(j)
	}
	h.bin = h.binOwned[:ps.nf*m]
	for f := 0; f < ps.nf; f++ {
		src := h.masterBin[f*n0 : (f+1)*n0]
		dst := h.bin[f*m : (f+1)*m]
		for j, o := range idx {
			dst[j] = src[o]
		}
	}
}

// slot returns node-histogram arena slot i sized for the current binning,
// growing the arena lazily (a slot allocated for one tree is reused by
// every later tree of the ensemble, so steady state allocates nothing).
// Slots are returned dirty; scans zero their own regions and subtraction
// overwrites every element.
func (h *histogram) slot(i int) []float64 {
	for len(h.levels) <= i {
		h.levels = append(h.levels, nil)
	}
	n := int(h.binOff[len(h.binOff)-1]) * h.width
	if cap(h.levels[i]) < n {
		h.levels[i] = make([]float64, n)
	}
	return h.levels[i][:n]
}

// histWorkerCount gates feature-parallel scans: the knob must opt in
// (workers > 1) and the rows×features work volume must be large enough
// for the fork to pay for itself. Workers <= 1 — the default everywhere a
// fit already runs inside the AutoML worker pool — stays strictly inline,
// which is also the zero-allocation steady-state path.
func histWorkerCount(workers, work int) int {
	if workers <= 1 || work < histParallelWork {
		return 1
	}
	return workers
}

// scanClassFeature accumulates one feature's region of a class-count node
// histogram: slot (binOff[f]+bin)*k+class counts the segment rows in that
// bin with that class. The region is zeroed first, so features are
// independent and the caller may run them on any number of workers with
// bit-identical results.
func (s *splitScratch) scanClassFeature(f int, Y []int, rows []int32, out []float64) {
	ps, h := &s.ps, &s.hist
	m, k := ps.n, h.width
	col := h.bin[f*m : (f+1)*m]
	base := int(h.binOff[f]) * k
	reg := out[base : int(h.binOff[f+1])*k]
	for i := range reg {
		reg[i] = 0
	}
	for _, row := range rows {
		out[base+int(col[row])*k+Y[row]]++
	}
}

// histScanClass builds the class-count histogram of node segment [lo, hi)
// into out, fanning out across features when the segment is large and the
// worker knob allows it.
func (s *splitScratch) histScanClass(Y []int, lo, hi int, out []float64, workers int) {
	nf := s.ps.nf
	rows := s.ps.rows[lo:hi]
	if histWorkerCount(workers, len(rows)*nf) == 1 {
		for f := 0; f < nf; f++ {
			s.scanClassFeature(f, Y, rows, out)
		}
		return
	}
	_ = parallel.ForEach(nf, workers, func(f int) error {
		s.scanClassFeature(f, Y, rows, out)
		return nil
	})
}

// scanRegFeature accumulates one feature's region of a regression node
// histogram: per bin, slots (count, Σy, Σy²) over the segment rows.
func (s *splitScratch) scanRegFeature(f int, y []float64, rows []int32, out []float64) {
	ps, h := &s.ps, &s.hist
	m := ps.n
	col := h.bin[f*m : (f+1)*m]
	base := int(h.binOff[f]) * 3
	reg := out[base : int(h.binOff[f+1])*3]
	for i := range reg {
		reg[i] = 0
	}
	for _, row := range rows {
		slot := base + int(col[row])*3
		v := y[row]
		out[slot]++
		out[slot+1] += v
		out[slot+2] += v * v
	}
}

// histScanReg builds the regression histogram of node segment [lo, hi)
// into out, fanning out across features like histScanClass.
func (s *splitScratch) histScanReg(y []float64, lo, hi int, out []float64, workers int) {
	nf := s.ps.nf
	rows := s.ps.rows[lo:hi]
	if histWorkerCount(workers, len(rows)*nf) == 1 {
		for f := 0; f < nf; f++ {
			s.scanRegFeature(f, y, rows, out)
		}
		return
	}
	_ = parallel.ForEach(nf, workers, func(f int) error {
		s.scanRegFeature(f, y, rows, out)
		return nil
	})
}

// histSubtract derives the larger child's histogram from the parent's:
// out = parent − sib elementwise. For classification the slots are
// integer counts, so the subtraction is exact at any depth.
func histSubtract(out, parent, sib []float64) {
	_ = out[len(parent)-1]
	_ = sib[len(parent)-1]
	for i, p := range parent {
		out[i] = p - sib[i]
	}
}

// histMarkLeft records, for the committed split (feature f, bin ≤
// splitBin), which rows of node segment [lo, hi) go left, and returns the
// left-child size — the histogram engine's counterpart of
// presorted.markLeft.
func (s *splitScratch) histMarkLeft(f, splitBin, lo, hi int) int {
	ps := &s.ps
	col := s.hist.bin[f*ps.n : (f+1)*ps.n]
	sb := uint8(splitBin)
	nl := 0
	for _, row := range ps.rows[lo:hi] {
		left := col[row] <= sb
		ps.mask[row] = left
		if left {
			nl++
		}
	}
	return nl
}

// histPartition commits the membership recorded by histMarkLeft. Only the
// identity rows ordering is partitioned — bin indices are addressed by
// row, so the O(rows × features) value partition of the presort engine
// disappears entirely.
func (s *splitScratch) histPartition(lo, hi int) {
	ps := &s.ps
	seg := ps.rows[lo:hi]
	w, t := 0, 0
	for _, row := range seg {
		if ps.mask[row] {
			seg[w] = row
			w++
		} else {
			ps.tmpOrd[t] = row
			t++
		}
	}
	copy(seg[w:], ps.tmpOrd[:t])
}
