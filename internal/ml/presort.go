package ml

import "sort"

// This file implements the presort-and-partition training engine shared
// by the whole tree family (CART, extra-trees, forests, GBDT regression
// trees, AdaBoost stumps).
//
// The old trainer re-sorted (value, row) pairs from scratch at every node
// for every candidate feature — O(m log m) comparisons and a sort.Slice
// allocation per (node, feature). The presorted engine instead sorts each
// feature column exactly once at Fit time into a column-major (SoA) view:
// for every feature, an array of row indices in ascending value order
// plus the values themselves, laid out contiguously. A node owns the same
// contiguous segment [lo, hi) of every feature's ordering. Growing a node
// walks its presorted segments directly; committing a split stably
// partitions every segment into left rows followed by right rows, so both
// children again own contiguous presorted segments.
//
// The engine selects the same best splits as the per-node sort it
// replaces and therefore fits bit-identical trees (proven by the legacy
// oracle suites in presort_test.go):
//
//   - Candidate thresholds are midpoints of adjacent *distinct* sorted
//     values, identical in both layouts.
//   - Gini scans accumulate integer class counts, which are exact in
//     float64 and independent of the order of equal values; regression
//     scans accumulate in ascending (value, row) order.
//   - An extra identity ordering — the node's rows by ascending row index
//     — is partitioned in tandem, so leaf statistics (class counts,
//     target means) visit rows in exactly the order the old recursive
//     index lists did.
//   - The rng stream is untouched: the per-node feature draw goes through
//     rng.SampleInto, which is stream-compatible with the rng.Sample call
//     it replaces, and extra-trees thresholds still draw one Uniform per
//     non-constant candidate feature.
//
// One master copy of the sorted orderings survives the whole ensemble
// fit; each tree trains on a working copy (partitioning is destructive),
// restored by memcpy — or, for trees trained on a row subset (bootstrap
// resamples, GBDT subsampling, AdaBoost reweighted samples), by a linear
// counting projection of the master ordering through the subset, which
// replaces the per-tree re-sort with two O(rows) passes per feature.

// presorted holds the sorted feature orderings for one training matrix
// plus the working state one tree fit partitions. It lives inside
// splitScratch so an ensemble shares a single master sort.
type presorted struct {
	// masterRows and nf describe the matrix presortMaster covered.
	masterRows int
	nf         int
	// masterOrd/masterVal hold, per feature f, the block [f*masterRows,
	// (f+1)*masterRows) of row indices sorted ascending by (value, row)
	// and the values in that order (the column-major view).
	masterOrd []int32
	masterVal []float64

	// n is the number of rows in the current working view (== masterRows
	// after prepareFull, == len(idx) after prepareSubset).
	n int
	// ord/val are the working orderings, stride n, partitioned in place
	// as the tree grows.
	ord []int32
	val []float64
	// rows is the identity ordering: the working rows of each node
	// segment in ascending row order, partitioned in tandem with ord.
	rows []int32

	// mask marks rows routed to the left child of the split being
	// committed; tmpOrd/tmpVal stage the right half of a stable
	// partition.
	mask   []bool
	tmpOrd []int32
	tmpVal []float64

	// bucketStart/bucketEnd/bucketJ are the counting-projection scratch:
	// for every master row, the working positions that reference it.
	bucketStart []int32
	bucketEnd   []int32
	bucketJ     []int32

	sorter featSorter
}

// featSorter sorts one feature's (ord, val) block ascending by value with
// row index as the tie-break, giving every feature a total, deterministic
// order. It is a value inside presorted so the interface conversion in
// sort.Sort does not allocate.
type featSorter struct {
	ord []int32
	val []float64
}

func (p *featSorter) Len() int { return len(p.ord) }
func (p *featSorter) Less(i, j int) bool {
	if p.val[i] != p.val[j] {
		return p.val[i] < p.val[j]
	}
	return p.ord[i] < p.ord[j]
}
func (p *featSorter) Swap(i, j int) {
	p.ord[i], p.ord[j] = p.ord[j], p.ord[i]
	p.val[i], p.val[j] = p.val[j], p.val[i]
}

// presortMaster sorts every feature column of X once and sizes the
// working orderings the presort engine partitions. Callers then select a
// working view with prepareFull or prepareSubset before each tree fit.
func (ps *presorted) presortMaster(X [][]float64, nf int) {
	ps.sortMaster(X, nf)
	need := ps.masterRows * nf
	if cap(ps.ord) < need {
		ps.ord = make([]int32, need)
		ps.val = make([]float64, need)
	}
}

// sortMaster sorts every feature column of X once into the master
// orderings, without allocating the presort engine's working copies. The
// histogram engine (hist.go) calls it directly: it reads the sorted
// master columns to place its bin cut points but never partitions value
// orderings, so the O(rows×features) working arrays would be dead weight.
func (ps *presorted) sortMaster(X [][]float64, nf int) {
	n0 := len(X)
	ps.masterRows, ps.nf = n0, nf
	need := n0 * nf
	if cap(ps.masterOrd) < need {
		ps.masterOrd = make([]int32, need)
		ps.masterVal = make([]float64, need)
	}
	ps.masterOrd = ps.masterOrd[:need]
	ps.masterVal = ps.masterVal[:need]
	if cap(ps.rows) < n0 {
		ps.rows = make([]int32, n0)
		ps.mask = make([]bool, n0)
		ps.tmpOrd = make([]int32, n0)
		ps.tmpVal = make([]float64, n0)
		ps.bucketEnd = make([]int32, n0)
		ps.bucketJ = make([]int32, n0)
	}
	if cap(ps.bucketStart) < n0+1 {
		ps.bucketStart = make([]int32, n0+1)
	}
	for f := 0; f < nf; f++ {
		ord := ps.masterOrd[f*n0 : (f+1)*n0]
		val := ps.masterVal[f*n0 : (f+1)*n0]
		for i := 0; i < n0; i++ {
			ord[i] = int32(i)
			val[i] = X[i][f]
		}
		ps.sorter.ord, ps.sorter.val = ord, val
		sort.Sort(&ps.sorter)
	}
	ps.sorter.ord, ps.sorter.val = nil, nil
}

// prepareFull selects the full master matrix as the working view: a
// memcpy restore of the sorted orderings (partitioning during the
// previous fit destroyed the working copy, never the master).
func (ps *presorted) prepareFull() {
	n0 := ps.masterRows
	ps.n = n0
	copy(ps.ord[:n0*ps.nf], ps.masterOrd)
	copy(ps.val[:n0*ps.nf], ps.masterVal)
	for i := 0; i < n0; i++ {
		ps.rows[i] = int32(i)
	}
}

// prepareSubset selects the rows idx (a multiset of master rows; working
// row j stands for master row idx[j]) as the working view. Each feature's
// working ordering is produced by walking the master ordering once and
// emitting every working row that references the master row — a counting
// projection that inherits the master's sort in O(masterRows + len(idx))
// per feature instead of re-sorting.
func (ps *presorted) prepareSubset(idx []int) {
	n0, m := ps.masterRows, len(idx)
	ps.n = m
	start, end := ps.bucketStart[:n0+1], ps.bucketEnd[:n0]
	for i := range start {
		start[i] = 0
	}
	for _, o := range idx {
		start[o+1]++
	}
	for i := 0; i < n0; i++ {
		start[i+1] += start[i]
		end[i] = start[i]
	}
	slots := ps.bucketJ[:m]
	for j, o := range idx {
		slots[end[o]] = int32(j)
		end[o]++
	}
	// end[o] is now one past master row o's last slot; start[o] its first.
	for f := 0; f < ps.nf; f++ {
		mOrd := ps.masterOrd[f*n0 : (f+1)*n0]
		mVal := ps.masterVal[f*n0 : (f+1)*n0]
		ord := ps.ord[f*m : (f+1)*m]
		val := ps.val[f*m : (f+1)*m]
		k := 0
		for p, orig := range mOrd {
			for _, j := range slots[start[orig]:end[orig]] {
				ord[k] = j
				val[k] = mVal[p]
				k++
			}
		}
	}
	for j := 0; j < m; j++ {
		ps.rows[j] = int32(j)
	}
}

// markLeft computes, for the split (f <= thr) of node segment [lo, hi),
// which rows go left, and returns the left-child size. The caller checks
// leaf-size floors against the result before committing with partition.
func (ps *presorted) markLeft(f, lo, hi int, thr float64) int {
	n := ps.n
	vals := ps.val[f*n+lo : f*n+hi]
	rows := ps.ord[f*n+lo : f*n+hi]
	nl := 0
	for i, row := range rows {
		left := vals[i] <= thr
		ps.mask[row] = left
		if left {
			nl++
		}
	}
	return nl
}

// partition commits the membership recorded by markLeft: every feature's
// segment [lo, hi) and the identity ordering are stably split into left
// rows followed by right rows, preserving ascending value order on both
// sides, so the children are valid presorted views.
func (ps *presorted) partition(lo, hi int) {
	n := ps.n
	for f := 0; f < ps.nf; f++ {
		ord := ps.ord[f*n+lo : f*n+hi]
		val := ps.val[f*n+lo : f*n+hi]
		w, t := 0, 0
		for i, row := range ord {
			if ps.mask[row] {
				ord[w] = row
				val[w] = val[i]
				w++
			} else {
				ps.tmpOrd[t] = row
				ps.tmpVal[t] = val[i]
				t++
			}
		}
		copy(ord[w:], ps.tmpOrd[:t])
		copy(val[w:], ps.tmpVal[:t])
	}
	seg := ps.rows[lo:hi]
	w, t := 0, 0
	for _, row := range seg {
		if ps.mask[row] {
			seg[w] = row
			w++
		} else {
			ps.tmpOrd[t] = row
			t++
		}
	}
	copy(seg[w:], ps.tmpOrd[:t])
}
