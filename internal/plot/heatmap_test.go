package plot

import (
	"strings"
	"testing"
)

func demoHeatmap() *Heatmap {
	return &Heatmap{
		Title:  "interaction surface",
		XLabel: "x0",
		YLabel: "x1",
		X:      []float64{0, 0.5, 1},
		Y:      []float64{0, 0.5, 1},
		Values: [][]float64{
			{0.5, 0, -0.5},
			{0, 0, 0},
			{-0.5, 0, 0.5},
		},
	}
}

func TestHeatmapASCII(t *testing.T) {
	out := demoHeatmap().RenderASCII()
	if !strings.Contains(out, "interaction surface") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "legend") {
		t.Fatal("missing legend")
	}
	// Strong positive and negative cells must render distinctly.
	if !strings.Contains(out, "#") || !strings.Contains(out, "N") {
		t.Fatalf("shading missing:\n%s", out)
	}
}

func TestHeatmapASCIIEmpty(t *testing.T) {
	h := &Heatmap{Title: "empty"}
	if out := h.RenderASCII(); !strings.Contains(out, "(empty)") {
		t.Fatal("empty heatmap render broken")
	}
}

func TestHeatmapSVG(t *testing.T) {
	out := demoHeatmap().RenderSVG(400, 300)
	if strings.Count(out, "<rect") < 9 {
		t.Fatal("missing cells")
	}
	if !strings.Contains(out, "</svg>") {
		t.Fatal("unterminated svg")
	}
	// Positive extreme red, negative extreme blue.
	if !strings.Contains(out, "#ff0000") || !strings.Contains(out, "#0000ff") {
		t.Fatal("diverging colour extremes missing")
	}
}

func TestDivergingColor(t *testing.T) {
	if got := divergingColor(0); got != "#ffffff" {
		t.Fatalf("zero colour %s", got)
	}
	if got := divergingColor(1); got != "#ff0000" {
		t.Fatalf("positive colour %s", got)
	}
	if got := divergingColor(-1); got != "#0000ff" {
		t.Fatalf("negative colour %s", got)
	}
	// Out-of-range values clamp.
	if divergingColor(5) != divergingColor(1) {
		t.Fatal("clamp broken")
	}
}

func TestHeatmapAllZeros(t *testing.T) {
	h := &Heatmap{
		X: []float64{0, 1}, Y: []float64{0, 1},
		Values: [][]float64{{0, 0}, {0, 0}},
	}
	// Must not divide by zero.
	_ = h.RenderASCII()
	_ = h.RenderSVG(200, 200)
}
