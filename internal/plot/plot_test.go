package plot

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func demoPlot() *Plot {
	return &Plot{
		Title:  "ALE for config.link_rate",
		XLabel: "config.link_rate",
		YLabel: "ALE",
		Series: []Series{{
			Label: "mean ALE",
			X:     []float64{0, 25, 50, 75, 100, 125},
			Y:     []float64{-0.2, -0.1, 0, 0.05, 0.1, 0.2},
			YErr:  []float64{0.08, 0.02, 0.01, 0.01, 0.03, 0.09},
		}},
		HLines: []float64{0.02},
	}
}

func TestRenderASCIIContainsStructure(t *testing.T) {
	out := demoPlot().RenderASCII(60, 12)
	if !strings.Contains(out, "ALE for config.link_rate") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "*") {
		t.Fatal("missing data marker")
	}
	if !strings.Contains(out, "|") {
		t.Fatal("missing error bars")
	}
	if !strings.Contains(out, "-") {
		t.Fatal("missing threshold line")
	}
	if !strings.Contains(out, "mean ALE") {
		t.Fatal("missing legend")
	}
	lines := strings.Split(out, "\n")
	if len(lines) < 14 {
		t.Fatalf("too few lines: %d", len(lines))
	}
}

func TestRenderASCIITinyDimensionsClamped(t *testing.T) {
	out := demoPlot().RenderASCII(1, 1)
	if len(out) == 0 {
		t.Fatal("empty render")
	}
}

func TestRenderASCIIEmptyPlot(t *testing.T) {
	p := &Plot{Title: "empty"}
	out := p.RenderASCII(40, 8)
	if !strings.Contains(out, "empty") {
		t.Fatal("empty plot render broken")
	}
}

func TestRenderSVGWellFormed(t *testing.T) {
	out := demoPlot().RenderSVG(640, 400)
	for _, want := range []string{"<svg", "</svg>", "<polyline", "<polygon", "stroke-dasharray"} {
		if !strings.Contains(out, want) {
			t.Fatalf("SVG missing %q", want)
		}
	}
	if strings.Count(out, "<svg") != 1 {
		t.Fatal("multiple svg roots")
	}
}

func TestSVGEscapesLabels(t *testing.T) {
	p := &Plot{
		Title:  `a<b & "c"`,
		Series: []Series{{X: []float64{0, 1}, Y: []float64{0, 1}}},
	}
	out := p.RenderSVG(200, 200)
	if strings.Contains(out, `a<b`) {
		t.Fatal("title not escaped")
	}
	if !strings.Contains(out, "a&lt;b &amp; &quot;c&quot;") {
		t.Fatal("escape output wrong")
	}
}

func TestWriteSVGFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "fig.svg")
	if err := demoPlot().WriteSVGFile(path, 640, 400); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(string(b), "<svg") {
		t.Fatal("file does not start with <svg")
	}
}

func TestWriteSVGFileBadPath(t *testing.T) {
	if err := demoPlot().WriteSVGFile("/nonexistent-dir/fig.svg", 100, 100); err == nil {
		t.Fatal("expected error for bad path")
	}
}

func TestDegenerateRanges(t *testing.T) {
	p := &Plot{Series: []Series{{X: []float64{5, 5}, Y: []float64{3, 3}}}}
	// Must not panic or divide by zero.
	_ = p.RenderASCII(40, 8)
	_ = p.RenderSVG(300, 200)
}

func TestMultipleSeriesMarkers(t *testing.T) {
	p := &Plot{Series: []Series{
		{Label: "a", X: []float64{0, 1}, Y: []float64{0, 1}},
		{Label: "b", X: []float64{0, 1}, Y: []float64{1, 0}},
	}}
	out := p.RenderASCII(40, 8)
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Fatal("series markers not distinct")
	}
}
