// Package plot renders the ALE plots the feedback solution shows its
// users (paper Figures 1 and 2): line charts with error bars/bands, as
// ASCII for terminals and SVG for reports. Only the standard library is
// used; the SVG output is plain hand-assembled markup.
package plot

import (
	"fmt"
	"math"
	"os"
	"strings"
)

// Series is one curve: Y over X with optional symmetric error YErr.
type Series struct {
	Label string
	X, Y  []float64
	YErr  []float64
}

// Plot is a single chart.
type Plot struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// HLines draws horizontal reference lines (e.g. the threshold T).
	HLines []float64
}

// bounds computes the data extent including error bars and HLines.
func (p *Plot) bounds() (xmin, xmax, ymin, ymax float64) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range p.Series {
		for i := range s.X {
			e := 0.0
			if i < len(s.YErr) {
				e = s.YErr[i]
			}
			xmin = math.Min(xmin, s.X[i])
			xmax = math.Max(xmax, s.X[i])
			ymin = math.Min(ymin, s.Y[i]-e)
			ymax = math.Max(ymax, s.Y[i]+e)
		}
	}
	for _, h := range p.HLines {
		ymin = math.Min(ymin, h)
		ymax = math.Max(ymax, h)
	}
	if math.IsInf(xmin, 1) {
		xmin, xmax, ymin, ymax = 0, 1, 0, 1
	}
	if xmin == xmax {
		xmax = xmin + 1
	}
	if ymin == ymax {
		ymax = ymin + 1
	}
	return xmin, xmax, ymin, ymax
}

// markers cycles through per-series ASCII glyphs.
var markers = []byte{'*', 'o', '+', 'x', '#'}

// RenderASCII draws the plot into a width x height character canvas
// (excluding axis labels). Error bars render as vertical '|' spans.
func (p *Plot) RenderASCII(width, height int) string {
	if width < 16 {
		width = 16
	}
	if height < 6 {
		height = 6
	}
	xmin, xmax, ymin, ymax := p.bounds()
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	col := func(x float64) int {
		c := int((x - xmin) / (xmax - xmin) * float64(width-1))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	row := func(y float64) int {
		rr := int((ymax - y) / (ymax - ymin) * float64(height-1))
		if rr < 0 {
			rr = 0
		}
		if rr >= height {
			rr = height - 1
		}
		return rr
	}
	for _, h := range p.HLines {
		rr := row(h)
		for c := 0; c < width; c++ {
			grid[rr][c] = '-'
		}
	}
	for si, s := range p.Series {
		mark := markers[si%len(markers)]
		for i := range s.X {
			c := col(s.X[i])
			if i < len(s.YErr) && s.YErr[i] > 0 {
				top, bot := row(s.Y[i]+s.YErr[i]), row(s.Y[i]-s.YErr[i])
				for rr := top; rr <= bot; rr++ {
					if grid[rr][c] == ' ' || grid[rr][c] == '-' {
						grid[rr][c] = '|'
					}
				}
			}
			grid[row(s.Y[i])][c] = mark
		}
	}
	var sb strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&sb, "%s\n", p.Title)
	}
	for _, line := range grid {
		fmt.Fprintf(&sb, "  |%s\n", string(line))
	}
	fmt.Fprintf(&sb, "  +%s\n", strings.Repeat("-", width))
	fmt.Fprintf(&sb, "   %-*.4g%*.4g\n", width/2, xmin, width-width/2, xmax)
	if p.XLabel != "" || p.YLabel != "" {
		fmt.Fprintf(&sb, "   x: %s   y: %s (%.4g..%.4g)\n", p.XLabel, p.YLabel, ymin, ymax)
	}
	for si, s := range p.Series {
		if s.Label != "" {
			fmt.Fprintf(&sb, "   %c %s\n", markers[si%len(markers)], s.Label)
		}
	}
	return sb.String()
}

// seriesColors cycles through SVG stroke colours.
var seriesColors = []string{"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e"}

// RenderSVG draws the plot as a standalone SVG document. Error bars render
// as a translucent band around each series.
func (p *Plot) RenderSVG(width, height int) string {
	const margin = 50
	xmin, xmax, ymin, ymax := p.bounds()
	px := func(x float64) float64 {
		return margin + (x-xmin)/(xmax-xmin)*float64(width-2*margin)
	}
	py := func(y float64) float64 {
		return float64(height-margin) - (y-ymin)/(ymax-ymin)*float64(height-2*margin)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", width, height, width, height)
	fmt.Fprintf(&sb, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	if p.Title != "" {
		fmt.Fprintf(&sb, `<text x="%d" y="20" text-anchor="middle" font-family="sans-serif" font-size="14">%s</text>`+"\n", width/2, xmlEscape(p.Title))
	}
	// Axes.
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", margin, height-margin, width-margin, height-margin)
	fmt.Fprintf(&sb, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="black"/>`+"\n", margin, margin, margin, height-margin)
	// Tick labels at the extremes.
	fmt.Fprintf(&sb, `<text x="%d" y="%d" font-family="sans-serif" font-size="10">%.4g</text>`+"\n", margin, height-margin+15, xmin)
	fmt.Fprintf(&sb, `<text x="%d" y="%d" text-anchor="end" font-family="sans-serif" font-size="10">%.4g</text>`+"\n", width-margin, height-margin+15, xmax)
	fmt.Fprintf(&sb, `<text x="%d" y="%d" text-anchor="end" font-family="sans-serif" font-size="10">%.4g</text>`+"\n", margin-5, height-margin, ymin)
	fmt.Fprintf(&sb, `<text x="%d" y="%d" text-anchor="end" font-family="sans-serif" font-size="10">%.4g</text>`+"\n", margin-5, margin+5, ymax)
	if p.XLabel != "" {
		fmt.Fprintf(&sb, `<text x="%d" y="%d" text-anchor="middle" font-family="sans-serif" font-size="12">%s</text>`+"\n", width/2, height-10, xmlEscape(p.XLabel))
	}
	if p.YLabel != "" {
		fmt.Fprintf(&sb, `<text x="15" y="%d" text-anchor="middle" font-family="sans-serif" font-size="12" transform="rotate(-90 15 %d)">%s</text>`+"\n", height/2, height/2, xmlEscape(p.YLabel))
	}
	for _, h := range p.HLines {
		fmt.Fprintf(&sb, `<line x1="%d" y1="%.2f" x2="%d" y2="%.2f" stroke="gray" stroke-dasharray="4 3"/>`+"\n", margin, py(h), width-margin, py(h))
	}
	for si, s := range p.Series {
		color := seriesColors[si%len(seriesColors)]
		if len(s.YErr) == len(s.Y) && len(s.Y) > 1 {
			var pts []string
			for i := range s.X {
				pts = append(pts, fmt.Sprintf("%.2f,%.2f", px(s.X[i]), py(s.Y[i]+s.YErr[i])))
			}
			for i := len(s.X) - 1; i >= 0; i-- {
				pts = append(pts, fmt.Sprintf("%.2f,%.2f", px(s.X[i]), py(s.Y[i]-s.YErr[i])))
			}
			fmt.Fprintf(&sb, `<polygon points="%s" fill="%s" fill-opacity="0.18" stroke="none"/>`+"\n", strings.Join(pts, " "), color)
		}
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.2f,%.2f", px(s.X[i]), py(s.Y[i])))
		}
		fmt.Fprintf(&sb, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n", strings.Join(pts, " "), color)
		if s.Label != "" {
			fmt.Fprintf(&sb, `<text x="%d" y="%d" font-family="sans-serif" font-size="11" fill="%s">%s</text>`+"\n", width-margin-150, margin+15*(si+1), color, xmlEscape(s.Label))
		}
	}
	sb.WriteString("</svg>\n")
	return sb.String()
}

// WriteSVGFile renders the plot and writes it to path.
func (p *Plot) WriteSVGFile(path string, width, height int) error {
	if err := os.WriteFile(path, []byte(p.RenderSVG(width, height)), 0o644); err != nil {
		return fmt.Errorf("plot: write %s: %w", path, err)
	}
	return nil
}

// xmlEscape escapes the five XML special characters.
func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;", "'", "&apos;")
	return r.Replace(s)
}
