package plot

import (
	"fmt"
	"math"
	"strings"
)

// Heatmap renders a matrix (e.g. a second-order ALE surface) as a colour
// grid. Values[i][j] is drawn at (X[i], Y[j]); the colour scale is a
// symmetric blue-white-red diverging map centred at zero.
type Heatmap struct {
	Title  string
	XLabel string
	YLabel string
	X, Y   []float64
	Values [][]float64
}

// valueRange returns the symmetric colour-scale bound.
func (h *Heatmap) valueRange() float64 {
	bound := 0.0
	for _, row := range h.Values {
		for _, v := range row {
			if a := math.Abs(v); a > bound {
				bound = a
			}
		}
	}
	if bound == 0 {
		bound = 1
	}
	return bound
}

// divergingColor maps t in [-1, 1] to a blue-white-red hex colour.
func divergingColor(t float64) string {
	if t < -1 {
		t = -1
	}
	if t > 1 {
		t = 1
	}
	var r, g, b int
	if t < 0 {
		// blue (0,0,255) -> white
		f := 1 + t
		r = int(255 * f)
		g = int(255 * f)
		b = 255
	} else {
		// white -> red (255,0,0)
		f := 1 - t
		r = 255
		g = int(255 * f)
		b = int(255 * f)
	}
	return fmt.Sprintf("#%02x%02x%02x", r, g, b)
}

// asciiShades maps |t| in [0,1] to a density glyph.
var asciiShades = []byte{' ', '.', ':', '+', '*', '#'}

// RenderASCII draws the heatmap with +/- glyph densities: '#' is a strong
// effect, sign shown by the leading row legend.
func (h *Heatmap) RenderASCII() string {
	var sb strings.Builder
	if h.Title != "" {
		fmt.Fprintf(&sb, "%s\n", h.Title)
	}
	if len(h.Values) == 0 {
		sb.WriteString("  (empty)\n")
		return sb.String()
	}
	bound := h.valueRange()
	// Render with Y on rows (descending) and X on columns.
	cols := len(h.Values)
	rows := len(h.Values[0])
	for j := rows - 1; j >= 0; j-- {
		sb.WriteString("  |")
		for i := 0; i < cols; i++ {
			v := h.Values[i][j] / bound
			idx := int(math.Abs(v) * float64(len(asciiShades)-1))
			if idx >= len(asciiShades) {
				idx = len(asciiShades) - 1
			}
			ch := asciiShades[idx]
			if v < -0.2 {
				// Negative cells render as '-' flavoured shades.
				switch {
				case idx >= 4:
					ch = 'N'
				case idx >= 2:
					ch = 'n'
				default:
					ch = '-'
				}
			}
			sb.WriteByte(ch)
		}
		sb.WriteString("|\n")
	}
	fmt.Fprintf(&sb, "  +%s+\n", strings.Repeat("-", cols))
	fmt.Fprintf(&sb, "  x: %s (%.4g..%.4g)  y: %s (%.4g..%.4g)  |max|=%.4g\n",
		h.XLabel, first(h.X), last(h.X), h.YLabel, first(h.Y), last(h.Y), bound)
	sb.WriteString("  legend: ' .:+*#' positive, '-nN' negative\n")
	return sb.String()
}

// RenderSVG draws the heatmap as an SVG grid.
func (h *Heatmap) RenderSVG(width, height int) string {
	const margin = 50
	var sb strings.Builder
	fmt.Fprintf(&sb, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", width, height, width, height)
	fmt.Fprintf(&sb, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	if h.Title != "" {
		fmt.Fprintf(&sb, `<text x="%d" y="20" text-anchor="middle" font-family="sans-serif" font-size="14">%s</text>`+"\n", width/2, xmlEscape(h.Title))
	}
	if len(h.Values) == 0 {
		sb.WriteString("</svg>\n")
		return sb.String()
	}
	bound := h.valueRange()
	cols := len(h.Values)
	rows := len(h.Values[0])
	cw := float64(width-2*margin) / float64(cols)
	ch := float64(height-2*margin) / float64(rows)
	for i := 0; i < cols; i++ {
		for j := 0; j < rows; j++ {
			x := float64(margin) + float64(i)*cw
			y := float64(height-margin) - float64(j+1)*ch
			fmt.Fprintf(&sb, `<rect x="%.2f" y="%.2f" width="%.2f" height="%.2f" fill="%s"/>`+"\n",
				x, y, cw+0.5, ch+0.5, divergingColor(h.Values[i][j]/bound))
		}
	}
	fmt.Fprintf(&sb, `<text x="%d" y="%d" text-anchor="middle" font-family="sans-serif" font-size="12">%s</text>`+"\n", width/2, height-10, xmlEscape(h.XLabel))
	fmt.Fprintf(&sb, `<text x="15" y="%d" text-anchor="middle" font-family="sans-serif" font-size="12" transform="rotate(-90 15 %d)">%s</text>`+"\n", height/2, height/2, xmlEscape(h.YLabel))
	fmt.Fprintf(&sb, `<text x="%d" y="%d" font-family="sans-serif" font-size="10">%.4g</text>`+"\n", margin, height-margin+15, first(h.X))
	fmt.Fprintf(&sb, `<text x="%d" y="%d" text-anchor="end" font-family="sans-serif" font-size="10">%.4g</text>`+"\n", width-margin, height-margin+15, last(h.X))
	sb.WriteString("</svg>\n")
	return sb.String()
}

func first(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return xs[0]
}

func last(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return xs[len(xs)-1]
}
