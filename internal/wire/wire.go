// Package wire implements the little-endian binary primitives shared by
// the durable encoders of this repository — the fitted-model codec in
// internal/ml, the ensemble codec in internal/automl, and the snapshot
// store in internal/modelstore.
//
// The encoding is deliberately boring: fixed-width little-endian
// integers, float64 bit patterns, and u32-length-prefixed slices. No
// varints, no reflection, no schema evolution magic — determinism and
// byte-for-byte reproducibility are the contract (the same value always
// encodes to the same bytes, which is what lets snapshot fingerprints
// and the round-trip equality suites compare raw output), and corruption
// detection belongs to the layer above (each snapshot section is framed
// with a CRC-32, exactly like the feedback WAL).
//
// Appenders grow a caller-owned []byte; the Reader consumes one with a
// sticky error, so decode paths check Err once at the end instead of
// after every field. Length prefixes are validated against the remaining
// input before any allocation, so a corrupt length can never make a
// decoder allocate gigabytes (the same maxFeatures rule the WAL applies).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrCorrupt is the sticky Reader error: the input ended early or a
// length prefix pointed past it.
var ErrCorrupt = errors.New("wire: corrupt or truncated input")

// --- appenders ------------------------------------------------------------

// AppendU64 appends v as 8 little-endian bytes.
func AppendU64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

// AppendI64 appends v as 8 little-endian bytes (two's complement).
func AppendI64(b []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(b, uint64(v))
}

// AppendU32 appends v as 4 little-endian bytes.
func AppendU32(b []byte, v uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, v)
}

// AppendF64 appends the IEEE-754 bit pattern of v — exact, including
// NaN payloads and signed zeros.
func AppendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

// AppendBool appends one byte, 0 or 1.
func AppendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

// AppendString appends a u32 length prefix and the raw bytes.
func AppendString(b []byte, s string) []byte {
	b = AppendU32(b, uint32(len(s)))
	return append(b, s...)
}

// AppendF64s appends a u32 length prefix and each element's bit pattern.
func AppendF64s(b []byte, v []float64) []byte {
	b = AppendU32(b, uint32(len(v)))
	for _, x := range v {
		b = AppendF64(b, x)
	}
	return b
}

// AppendI32s appends a u32 length prefix and each element as 4 bytes.
func AppendI32s(b []byte, v []int32) []byte {
	b = AppendU32(b, uint32(len(v)))
	for _, x := range v {
		b = AppendU32(b, uint32(x))
	}
	return b
}

// AppendInts appends a u32 length prefix and each element as an i64.
func AppendInts(b []byte, v []int) []byte {
	b = AppendU32(b, uint32(len(v)))
	for _, x := range v {
		b = AppendI64(b, int64(x))
	}
	return b
}

// AppendF64Matrix appends a u32 row count and each row as an F64s.
func AppendF64Matrix(b []byte, m [][]float64) []byte {
	b = AppendU32(b, uint32(len(m)))
	for _, row := range m {
		b = AppendF64s(b, row)
	}
	return b
}

// AppendStrings appends a u32 length prefix and each element as a String.
func AppendStrings(b []byte, v []string) []byte {
	b = AppendU32(b, uint32(len(v)))
	for _, s := range v {
		b = AppendString(b, s)
	}
	return b
}

// --- reader ---------------------------------------------------------------

// Reader consumes a byte slice encoded by the appenders above. The first
// failed read sets a sticky error; every later read returns zero values,
// so decoders can run straight-line and check Err once.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over b. The Reader aliases b; callers must
// not mutate it while decoding.
func NewReader(b []byte) *Reader { return &Reader{buf: b} }

// Err returns the sticky decode error, nil while all reads succeeded.
func (r *Reader) Err() error { return r.err }

// Remaining returns the unread byte count.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// fail records the sticky error (first failure wins).
func (r *Reader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("%w (offset %d of %d)", ErrCorrupt, r.off, len(r.buf))
	}
}

// take returns the next n raw bytes, or nil after setting the sticky
// error when fewer remain.
func (r *Reader) take(n int) []byte {
	if n < 0 || r.Remaining() < n || r.err != nil {
		r.fail()
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U64 reads 8 bytes.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads 8 bytes as a signed integer.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// U8 reads one raw byte (type tags).
func (r *Reader) U8() byte {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads 4 bytes.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// F64 reads 8 bytes as an IEEE-754 bit pattern.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Bool reads one byte.
func (r *Reader) Bool() bool {
	b := r.take(1)
	return b != nil && b[0] != 0
}

// sliceLen reads a u32 length prefix and validates it against the
// remaining input at elemSize bytes per element.
func (r *Reader) sliceLen(elemSize int) int {
	n := int(r.U32())
	if r.err != nil {
		return 0
	}
	if n < 0 || n*elemSize > r.Remaining() {
		r.fail()
		return 0
	}
	return n
}

// String reads a u32-length-prefixed string.
func (r *Reader) String() string {
	n := r.sliceLen(1)
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// F64s reads a length-prefixed float64 slice; length 0 decodes to nil,
// matching the zero value of an unfitted field.
func (r *Reader) F64s() []float64 {
	n := r.sliceLen(8)
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.F64()
	}
	return out
}

// I32s reads a length-prefixed int32 slice; length 0 decodes to nil.
func (r *Reader) I32s() []int32 {
	n := r.sliceLen(4)
	if n == 0 {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(r.U32())
	}
	return out
}

// Ints reads a length-prefixed int slice; length 0 decodes to nil.
func (r *Reader) Ints() []int {
	n := r.sliceLen(8)
	if n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(r.I64())
	}
	return out
}

// F64Matrix reads a row-count-prefixed matrix; 0 rows decode to nil.
func (r *Reader) F64Matrix() [][]float64 {
	// Each row carries at least its own 4-byte length prefix.
	n := r.sliceLen(4)
	if n == 0 {
		return nil
	}
	out := make([][]float64, n)
	for i := range out {
		out[i] = r.F64s()
	}
	return out
}

// Strings reads a count-prefixed string slice; 0 entries decode to nil.
func (r *Reader) Strings() []string {
	n := r.sliceLen(4)
	if n == 0 {
		return nil
	}
	out := make([]string, n)
	for i := range out {
		out[i] = r.String()
	}
	return out
}
