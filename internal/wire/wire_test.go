package wire

import (
	"errors"
	"math"
	"testing"
)

// TestWireRoundTrip encodes one value of every primitive and reads the
// sequence back.
func TestWireRoundTrip(t *testing.T) {
	var b []byte
	b = AppendU64(b, 0xdeadbeefcafe)
	b = AppendI64(b, -42)
	b = AppendU32(b, 7)
	b = AppendF64(b, math.Pi)
	b = AppendF64(b, math.Inf(-1))
	b = AppendBool(b, true)
	b = AppendBool(b, false)
	b = AppendString(b, "scream")
	b = AppendString(b, "")
	b = AppendF64s(b, []float64{1.5, math.Copysign(0, -1), math.MaxFloat64})
	b = AppendI32s(b, []int32{-1, 0, math.MaxInt32})
	b = AppendInts(b, []int{9, -9})
	b = AppendF64Matrix(b, [][]float64{{1, 2}, {3}})
	b = AppendStrings(b, []string{"a", "bb"})

	r := NewReader(b)
	if got := r.U64(); got != 0xdeadbeefcafe {
		t.Fatalf("U64 = %x", got)
	}
	if got := r.I64(); got != -42 {
		t.Fatalf("I64 = %d", got)
	}
	if got := r.U32(); got != 7 {
		t.Fatalf("U32 = %d", got)
	}
	if got := r.F64(); got != math.Pi {
		t.Fatalf("F64 = %v", got)
	}
	if got := r.F64(); !math.IsInf(got, -1) {
		t.Fatalf("F64 inf = %v", got)
	}
	if !r.Bool() || r.Bool() {
		t.Fatalf("Bool order wrong")
	}
	if got := r.String(); got != "scream" {
		t.Fatalf("String = %q", got)
	}
	if got := r.String(); got != "" {
		t.Fatalf("empty String = %q", got)
	}
	f := r.F64s()
	if len(f) != 3 || f[0] != 1.5 || math.Float64bits(f[1]) != math.Float64bits(math.Copysign(0, -1)) || f[2] != math.MaxFloat64 {
		t.Fatalf("F64s = %v", f)
	}
	i32 := r.I32s()
	if len(i32) != 3 || i32[0] != -1 || i32[2] != math.MaxInt32 {
		t.Fatalf("I32s = %v", i32)
	}
	ints := r.Ints()
	if len(ints) != 2 || ints[0] != 9 || ints[1] != -9 {
		t.Fatalf("Ints = %v", ints)
	}
	m := r.F64Matrix()
	if len(m) != 2 || len(m[0]) != 2 || m[1][0] != 3 {
		t.Fatalf("F64Matrix = %v", m)
	}
	ss := r.Strings()
	if len(ss) != 2 || ss[0] != "a" || ss[1] != "bb" {
		t.Fatalf("Strings = %v", ss)
	}
	if r.Remaining() != 0 {
		t.Fatalf("%d bytes left over", r.Remaining())
	}
	if err := r.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
}

// TestWireEmptySlicesDecodeNil pins that a length-0 slice decodes to
// nil, matching the zero value of an unfitted model field — required
// for the byte-compare round-trip suites.
func TestWireEmptySlicesDecodeNil(t *testing.T) {
	var b []byte
	b = AppendF64s(b, nil)
	b = AppendI32s(b, []int32{})
	b = AppendInts(b, nil)
	b = AppendF64Matrix(b, nil)
	b = AppendStrings(b, nil)
	r := NewReader(b)
	if got := r.F64s(); got != nil {
		t.Fatalf("F64s(empty) = %v, want nil", got)
	}
	if got := r.I32s(); got != nil {
		t.Fatalf("I32s(empty) = %v, want nil", got)
	}
	if got := r.Ints(); got != nil {
		t.Fatalf("Ints(empty) = %v, want nil", got)
	}
	if got := r.F64Matrix(); got != nil {
		t.Fatalf("F64Matrix(empty) = %v, want nil", got)
	}
	if got := r.Strings(); got != nil {
		t.Fatalf("Strings(empty) = %v, want nil", got)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
}

// TestWireTruncation decodes every strict prefix of a valid encoding and
// requires a sticky ErrCorrupt — never a panic, never a silent success.
func TestWireTruncation(t *testing.T) {
	var b []byte
	b = AppendU64(b, 1)
	b = AppendString(b, "hello")
	b = AppendF64s(b, []float64{1, 2, 3})
	b = AppendF64Matrix(b, [][]float64{{4, 5}, {6}})

	for n := 0; n < len(b); n++ {
		r := NewReader(b[:n])
		r.U64()
		_ = r.String()
		r.F64s()
		r.F64Matrix()
		if err := r.Err(); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("prefix %d: Err = %v, want ErrCorrupt", n, err)
		}
	}
}

// TestWireHugeLengthPrefix pins the alloc bound: a corrupt length prefix
// claiming more elements than bytes remain must fail before allocating.
func TestWireHugeLengthPrefix(t *testing.T) {
	b := AppendU32(nil, math.MaxUint32)
	r := NewReader(b)
	if got := r.F64s(); got != nil {
		t.Fatalf("F64s = %v, want nil", got)
	}
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("Err = %v, want ErrCorrupt", r.Err())
	}
}

// TestWireStickyError pins that reads after a failure keep returning
// zero values and the first error.
func TestWireStickyError(t *testing.T) {
	r := NewReader(nil)
	if got := r.U64(); got != 0 {
		t.Fatalf("U64 on empty = %d", got)
	}
	first := r.Err()
	if first == nil {
		t.Fatal("expected error")
	}
	if got := r.F64(); got != 0 {
		t.Fatalf("F64 after error = %v", got)
	}
	if r.Err() != first {
		t.Fatalf("error replaced: %v != %v", r.Err(), first)
	}
}

// TestWireDeterminism pins byte-for-byte determinism: encoding the same
// values twice yields identical bytes (the fingerprint contract).
func TestWireDeterminism(t *testing.T) {
	enc := func() []byte {
		var b []byte
		b = AppendF64s(b, []float64{math.Pi, math.NaN(), -0.0})
		b = AppendStrings(b, []string{"x", "y"})
		b = AppendU64(b, 99)
		return b
	}
	a, c := enc(), enc()
	if string(a) != string(c) {
		t.Fatal("same values encoded to different bytes")
	}
}
