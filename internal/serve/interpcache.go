package serve

// Snapshot-keyed interpretation cache. ALE curves and region feedback
// are pure functions of (snapshot, request parameters): for a fixed
// published snapshot, every /v1/ale and /v1/regions request with the
// same parameters recomputes byte-identical output. Each Model carries
// at most one interpState — the cache for its currently published
// snapshot — reached through an atomic pointer:
//
//   - A request whose loaded snapshot IS the cached one reads/populates
//     the cache (single-flighted per key, so a thundering herd computes
//     once).
//   - A request holding a NEWER snapshot than the cached state swaps in
//     a fresh empty state for its snapshot; the old state (and every
//     curve in it) is unreachable from that point — this is the whole
//     invalidation story for retrain publishes, rollbacks (a rollback
//     installs a new higher version, never rewinds) and crash recovery.
//   - A request holding an OLDER snapshot than the cached state (it
//     raced a swap mid-request) computes directly, uncached. It must not
//     evict the newer state, and serving it cached entries from a
//     different version would be exactly the stale-curve bug the chaos
//     suite hunts.
//
// LRU tenant eviction drops the whole *Model, and the reload path builds
// a fresh Model, so an evicted tenant's cache dies with it by
// construction. The contract throughout: a response labelled version V
// is computed from snapshot V's ensemble and training data, cached or
// not.

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"github.com/netml/alefb/internal/core"
)

// memoBound caps each response-level memo map so request-controlled
// parameters (bins, thresholds) cannot grow server memory without limit;
// past it, unseen keys compute without being stored.
const memoBound = 256

// memoEntry is a single-flight slot (see core.CurveCache for the
// pattern): the claimant computes and closes done, followers wait.
type memoEntry[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// memo is a bounded, single-flighted, hit-counting map of computed
// responses. Context errors are never stored: the entry is removed so a
// later caller retries, while deterministic errors (constant feature)
// cache like values.
type memo[K comparable, V any] struct {
	mu      sync.Mutex
	entries map[K]*memoEntry[V]

	hits, misses atomic.Int64
}

func (c *memo[K, V]) get(ctx context.Context, key K, compute func(context.Context) (V, error)) (V, error) {
	for {
		c.mu.Lock()
		if c.entries == nil {
			c.entries = make(map[K]*memoEntry[V])
		}
		e, ok := c.entries[key]
		if !ok {
			if len(c.entries) >= memoBound {
				c.mu.Unlock()
				c.misses.Add(1)
				return compute(ctx)
			}
			e = &memoEntry[V]{done: make(chan struct{})}
			c.entries[key] = e
			c.mu.Unlock()
			c.misses.Add(1)
			val, err := compute(ctx)
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				c.mu.Lock()
				delete(c.entries, key)
				c.mu.Unlock()
				e.err = err
				close(e.done)
				var zero V
				return zero, err
			}
			e.val, e.err = val, err
			close(e.done)
			return val, err
		}
		c.mu.Unlock()
		select {
		case <-e.done:
			if errors.Is(e.err, context.Canceled) || errors.Is(e.err, context.DeadlineExceeded) {
				continue // claimant was cancelled and removed the entry
			}
			c.hits.Add(1)
			return e.val, e.err
		case <-ctx.Done():
			var zero V
			return zero, ctx.Err()
		}
	}
}

// aleKey identifies one cached ALE response of a snapshot. The method is
// server-wide configuration, constant for the server's lifetime, so it
// is not part of the key.
type aleKey struct {
	feature, class, bins int
}

// regionsKey identifies one cached regions response. The threshold is
// keyed by its bit pattern (float64 keys with NaN semantics are a trap;
// request thresholds are validated finite upstream).
type regionsKey struct {
	bins      int
	threshold uint64
}

// interpState is the interpretation cache of one published snapshot:
// the committee-curve cache shared by ALE, regions and warm-start shift
// detection, plus response-level memos for the two read endpoints.
type interpState struct {
	snap   *Snapshot
	curves *core.CurveCache

	ale     memo[aleKey, ALEResponse]
	regions memo[regionsKey, RegionsResponse]
}

func newInterpState(snap *Snapshot) *interpState {
	return &interpState{
		snap:   snap,
		curves: core.NewCurveCache(snap.Ensemble.Models(), snap.Train),
	}
}

// stats sums lookup hits and misses across the state's memo layers (the
// two response memos plus the underlying curve cache).
func (st *interpState) stats() (hits, misses int64) {
	ch, cm := st.curves.Stats()
	hits = st.ale.hits.Load() + st.regions.hits.Load() + ch
	misses = st.ale.misses.Load() + st.regions.misses.Load() + cm
	return hits, misses
}

// interpFor returns the interpretation cache to use for a request that
// loaded snap, or nil when the request must compute uncached: caching is
// disabled, or the request holds an older snapshot than the cached
// state (it raced a swap; see the package comment above). When snap is
// newer than the cached state, a fresh state is swapped in — the
// invalidation point for publishes, rollbacks and recovery.
func (s *Server) interpFor(m *Model, snap *Snapshot) *interpState {
	if s.cfg.DisableInterpCache {
		return nil
	}
	for {
		st := m.interp.Load()
		if st != nil {
			if st.snap == snap {
				return st
			}
			if st.snap.Version >= snap.Version {
				return nil
			}
		}
		fresh := newInterpState(snap)
		if m.interp.CompareAndSwap(st, fresh) {
			return fresh
		}
	}
}
