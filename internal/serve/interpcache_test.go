package serve

// Tests of the snapshot-keyed interpretation cache: bit-identity with
// the uncached seed path, hit accounting, cross-endpoint curve sharing,
// and — the part that earns the cache its keep — invalidation. A cached
// curve may only ever be served for the exact snapshot it was computed
// from: publish, rollback and tenant eviction must each drop it, and the
// chaos test hunts for any interleaving that serves a curve from the
// wrong version.

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"github.com/netml/alefb/internal/automl"
	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/interpret"
)

// aleOracle computes the uncached ALE answer for one snapshot with the
// server's effective options — the ground truth every cached response
// must match bit for bit.
func aleOracle(t *testing.T, s *Server, ens *automl.Ensemble, train *data.Dataset, feature, class, bins int) interpret.CommitteeCurve {
	t.Helper()
	opts := interpret.Options{Bins: bins, Class: class, Workers: s.cfg.Feedback.Workers}
	if opts.Bins <= 0 {
		opts.Bins = s.cfg.Feedback.Bins
	}
	cc, err := interpret.CommitteeCtx(context.Background(), ens.Models(), train, feature,
		s.cfg.Feedback.Method, opts)
	if err != nil {
		t.Fatalf("oracle ALE: %v", err)
	}
	return cc
}

// getALE posts an ALE query to the given endpoint URL (".../v1/ale" or a
// named-model variant) and decodes the 200 response.
func getALE(t *testing.T, url string, req ALERequest) ALEResponse {
	t.Helper()
	status, _, body := doReq(t, http.MethodPost, url, req)
	if status != http.StatusOK {
		t.Fatalf("ale = %d (body %s)", status, body)
	}
	var ar ALEResponse
	if err := json.Unmarshal(body, &ar); err != nil {
		t.Fatal(err)
	}
	return ar
}

func wantCurve(t *testing.T, what string, ar ALEResponse, cc interpret.CommitteeCurve) {
	t.Helper()
	if !reflect.DeepEqual(ar.Grid, cc.Grid) || !reflect.DeepEqual(ar.Mean, cc.Mean) ||
		!reflect.DeepEqual(ar.Std, cc.Std) {
		t.Fatalf("%s: cached ALE response differs from the uncached oracle", what)
	}
}

// TestALECacheBitIdentityAndHits pins the core cache contract: repeated
// queries return bit-identical curves, the repeat is a recorded hit, and
// defaulted options (bins 0) share the entry of their explicit form.
func TestALECacheBitIdentityAndHits(t *testing.T) {
	train, ens, _ := fixture(t)
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	first := getALE(t, ts.URL+"/v1/ale", ALERequest{Feature: 0, Class: 1})
	second := getALE(t, ts.URL+"/v1/ale", ALERequest{Feature: 0, Class: 1})
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("repeated ALE differs: %+v vs %+v", first, second)
	}
	wantCurve(t, "first", first, aleOracle(t, s, ens, train, 0, 1, 0))
	// Explicit bins equal to the server default normalizes onto the same
	// cache entry.
	third := getALE(t, ts.URL+"/v1/ale", ALERequest{Feature: 0, Class: 1, Bins: s.cfg.Feedback.Bins})
	if !reflect.DeepEqual(first, third) {
		t.Fatalf("explicit default bins missed the cache entry: %+v vs %+v", first, third)
	}

	ist := s.Model(DefaultModel).interp.Load()
	if ist == nil {
		t.Fatal("no interpretation cache after ALE requests")
	}
	hits, misses := ist.stats()
	if hits < 2 || misses == 0 {
		t.Fatalf("cache stats hits=%d misses=%d, want >=2 hits and >0 misses", hits, misses)
	}
	var ms ModelStatus
	_, _, body := doReq(t, http.MethodGet, ts.URL+"/v1/status", nil)
	if err := json.Unmarshal(body, &ms); err != nil {
		t.Fatal(err)
	}
	if ms.InterpCacheHits < 2 || ms.InterpCacheMisses == 0 {
		t.Fatalf("status cache counters = %d/%d, want them surfaced", ms.InterpCacheHits, ms.InterpCacheMisses)
	}

	// The escape hatch really disables caching.
	s2 := newTestServer(t, func(c *Config) { c.DisableInterpCache = true })
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	plain := getALE(t, ts2.URL+"/v1/ale", ALERequest{Feature: 0, Class: 1})
	plain.Version = first.Version // independent installs may differ in version only
	if !reflect.DeepEqual(first, plain) {
		t.Fatal("cached and uncached servers disagree on the same snapshot content")
	}
	if s2.Model(DefaultModel).interp.Load() != nil {
		t.Fatal("DisableInterpCache still built an interpState")
	}
}

// TestRegionsCachedAndPrimesALE pins cross-endpoint sharing: a regions
// request computes every feature's committee curve through the snapshot's
// curve cache, so a subsequent ALE request for any feature is a curve-
// level hit, and a repeated regions request is a response-level hit.
func TestRegionsCachedAndPrimesALE(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, _, body := doReq(t, http.MethodPost, ts.URL+"/v1/regions", RegionsRequest{})
	if status != http.StatusOK {
		t.Fatalf("regions = %d (%s)", status, body)
	}
	var first RegionsResponse
	if err := json.Unmarshal(body, &first); err != nil {
		t.Fatal(err)
	}
	ist := s.Model(DefaultModel).interp.Load()
	if ist == nil {
		t.Fatal("regions did not build the interpretation cache")
	}
	_, cm := ist.curves.Stats()
	if cm == 0 {
		t.Fatal("regions did not compute through the curve cache")
	}

	// ALE for a feature the regions pass analysed: the committee curve is
	// already cached, so curve-level hits must grow.
	ch0, _ := ist.curves.Stats()
	getALE(t, ts.URL+"/v1/ale", ALERequest{Feature: 0, Class: 1})
	if ch1, _ := ist.curves.Stats(); ch1 <= ch0 {
		t.Fatalf("ALE after regions recomputed the curve (hits %d -> %d)", ch0, ch1)
	}

	status, _, body = doReq(t, http.MethodPost, ts.URL+"/v1/regions", RegionsRequest{})
	if status != http.StatusOK {
		t.Fatalf("second regions = %d", status)
	}
	var second RegionsResponse
	if err := json.Unmarshal(body, &second); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("repeated regions response differs")
	}
	if h := ist.regions.hits.Load(); h == 0 {
		t.Fatal("repeated regions request was not a response-level hit")
	}
	// Distinct parameters are distinct entries, not collisions.
	status, _, body = doReq(t, http.MethodPost, ts.URL+"/v1/regions", RegionsRequest{Bins: 4})
	if status != http.StatusOK {
		t.Fatalf("regions bins=4 = %d", status)
	}
	var coarse RegionsResponse
	if err := json.Unmarshal(body, &coarse); err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(first.Features, coarse.Features) {
		t.Fatal("bins=4 regions identical to default bins; key collision?")
	}
}

// TestInterpCacheInvalidationOnPublishAndRollback walks a snapshot
// through install → rollback and demands fresh curves at every version:
// the cached state must follow the published snapshot, never serving
// version N's curves labelled N+1.
func TestInterpCacheInvalidationOnPublishAndRollback(t *testing.T) {
	train, ensA, ensB := fixture(t)
	dir := t.TempDir()
	s := newTestServer(t, func(c *Config) { c.SnapshotDir = dir })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	oracleA := aleOracle(t, s, ensA, train, 0, 1, 0)
	oracleB := aleOracle(t, s, ensB, train, 0, 1, 0)
	if reflect.DeepEqual(oracleA.Std, oracleB.Std) {
		t.Fatal("fixture ensembles have identical ALE curves; staleness would be undetectable")
	}

	v1 := getALE(t, ts.URL+"/v1/ale", ALERequest{Feature: 0, Class: 1})
	if v1.Version != 1 {
		t.Fatalf("version = %d, want 1", v1.Version)
	}
	wantCurve(t, "v1", v1, oracleA)

	// Publish ensB. The old interpState keys snapshot v1 and must be
	// abandoned, not consulted.
	s.Install(ensB, train)
	v2 := getALE(t, ts.URL+"/v1/ale", ALERequest{Feature: 0, Class: 1})
	if v2.Version != 2 {
		t.Fatalf("version = %d, want 2", v2.Version)
	}
	wantCurve(t, "v2 after publish", v2, oracleB)

	// Rollback republishes v1's CONTENT as v3; the curves must be ensA's
	// again even though an interpState for ensB's snapshot exists.
	status, _, body := doReq(t, http.MethodPost, ts.URL+"/v1/rollback", RollbackRequest{})
	if status != http.StatusOK {
		t.Fatalf("rollback = %d (%s)", status, body)
	}
	v3 := getALE(t, ts.URL+"/v1/ale", ALERequest{Feature: 0, Class: 1})
	if v3.Version != 3 {
		t.Fatalf("version = %d, want 3", v3.Version)
	}
	wantCurve(t, "v3 after rollback", v3, oracleA)

	if ist := s.Model(DefaultModel).interp.Load(); ist == nil || ist.snap.Version != 3 {
		t.Fatalf("cached state tracks wrong snapshot after rollback")
	}
}

// TestInterpCacheEvictionRebuild pins the tenant-eviction leg: LRU
// eviction drops the Model and its cache wholesale, and the disk reload
// serves correct curves from a rebuilt cache.
func TestInterpCacheEvictionRebuild(t *testing.T) {
	train, ensA, ensB := fixture(t)
	dir := t.TempDir()
	s := newTestServer(t, func(c *Config) {
		c.SnapshotDir = dir
		c.MaxModels = 1
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	s.InstallModel("tenant-a", ensA, train)
	ma := s.Model("tenant-a")
	getALE(t, ts.URL+"/v1/models/tenant-a/ale", ALERequest{Feature: 0, Class: 1})
	if ma.interp.Load() == nil {
		t.Fatal("tenant-a has no cache before eviction")
	}
	s.InstallModel("tenant-b", ensB, train) // evicts tenant-a

	// Reload: fresh Model, fresh (initially empty) cache, correct curves.
	got := getALE(t, ts.URL+"/v1/models/tenant-a/ale", ALERequest{Feature: 0, Class: 1})
	mb := s.Model("tenant-a")
	if mb == nil || mb == ma {
		t.Fatal("eviction + reload did not produce a fresh Model")
	}
	snap := mb.snap.Current()
	wantCurve(t, "reloaded", got, aleOracle(t, s, snap.Ensemble, snap.Train, 0, 1, 0))
	again := getALE(t, ts.URL+"/v1/models/tenant-a/ale", ALERequest{Feature: 0, Class: 1})
	if !reflect.DeepEqual(got, again) {
		t.Fatal("reloaded cache serves differing curves")
	}
	if h, _ := func() (int64, int64) { return mb.interp.Load().stats() }(); h == 0 {
		t.Fatal("second request on reloaded model was not a hit")
	}
}

// TestALEStaleCurveChaos is the stale-curve hunt: snapshots alternate
// underneath concurrent ALE readers, and every response must carry the
// curves of exactly the version it claims — a cached curve from the
// other snapshot is a correctness bug, not a staleness quirk. Run with
// -race by make test-interp-cache.
func TestALEStaleCurveChaos(t *testing.T) {
	train, ensA, ensB := fixture(t)
	s := newTestServer(t, nil)
	snapA := &Snapshot{Ensemble: ensA, Train: train, Version: 1, ValScore: ensA.ValScore}
	snapB := &Snapshot{Ensemble: ensB, Train: train, Version: 2, ValScore: ensB.ValScore}
	want := map[int64]interpret.CommitteeCurve{
		1: aleOracle(t, s, ensA, train, 0, 1, 0),
		2: aleOracle(t, s, ensB, train, 0, 1, 0),
	}
	if reflect.DeepEqual(want[1].Std, want[2].Std) {
		t.Fatal("fixture ensembles have identical curves; stale reads would be undetectable")
	}
	s.def.snap.Publish(snapA)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	stop := make(chan struct{})
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				s.def.snap.Publish(snapB)
			} else {
				s.def.snap.Publish(snapA)
			}
		}
	}()

	var readerWG sync.WaitGroup
	errCh := make(chan string, 64)
	for w := 0; w < 4; w++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for i := 0; i < 40; i++ {
				status, _, raw := doReq(t, http.MethodPost, ts.URL+"/v1/ale", ALERequest{Feature: 0, Class: 1})
				if status != http.StatusOK {
					errCh <- string(raw)
					return
				}
				var ar ALEResponse
				if err := json.Unmarshal(raw, &ar); err != nil {
					errCh <- err.Error()
					return
				}
				exp, ok := want[ar.Version]
				if !ok {
					errCh <- fmt.Sprintf("impossible version %d", ar.Version)
					return
				}
				if !reflect.DeepEqual(ar.Grid, exp.Grid) || !reflect.DeepEqual(ar.Mean, exp.Mean) ||
					!reflect.DeepEqual(ar.Std, exp.Std) {
					errCh <- fmt.Sprintf("stale curve: response claims v%d but carries other curves", ar.Version)
					return
				}
			}
		}()
	}
	readerWG.Wait()
	close(stop)
	writerWG.Wait()
	select {
	case msg := <-errCh:
		t.Fatal(msg)
	default:
	}
}
