package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/netml/alefb/internal/automl"
	"github.com/netml/alefb/internal/core"
	"github.com/netml/alefb/internal/faultinject"
	"github.com/netml/alefb/internal/feedback"
)

// bandRows returns n deterministic labelled rows inside the confusable
// band of serveProblem, where the fixture committee genuinely disagrees
// — the rows that make the drift monitor fire.
func bandRows(n int) ([][]float64, []int) {
	rows := make([][]float64, n)
	labels := make([]int, n)
	for i := range rows {
		f := float64(i) / float64(n)
		rows[i] = []float64{0.4 + 0.2*f, f}
		labels[i] = i % 2
	}
	return rows, labels
}

func TestFeedbackIngestAndStatus(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rows, labels := bandRows(5)
	status, _, body := doReq(t, "POST", ts.URL+"/v1/feedback", FeedbackRequest{Rows: rows, Labels: labels})
	if status != 200 {
		t.Fatalf("feedback status = %d (body %s)", status, body)
	}
	var fr FeedbackResponse
	if err := json.Unmarshal(body, &fr); err != nil {
		t.Fatal(err)
	}
	if fr.Seq != 5 || fr.StoreRows != 5 || fr.Durable {
		t.Fatalf("response = %+v, want seq 5, rows 5, memory-only", fr)
	}
	// The ingest is visible in the status endpoint; no drift monitoring
	// is configured, so nothing retrains.
	status, _, body = doReq(t, "GET", ts.URL+"/v1/status", nil)
	if status != 200 {
		t.Fatalf("status endpoint = %d", status)
	}
	var ms ModelStatus
	if err := json.Unmarshal(body, &ms); err != nil {
		t.Fatal(err)
	}
	if ms.FeedbackRows != 5 || ms.Version != 1 || ms.RetrainState != "idle" || ms.DriftThreshold != 0 {
		t.Fatalf("status = %+v, want 5 feedback rows at v1, idle, drift off", ms)
	}
}

func TestFeedbackValidation(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st, _, body := doReq(t, "POST", ts.URL+"/v1/feedback", FeedbackRequest{Rows: [][]float64{{0.5, 0.5}}, Labels: []int{0, 1}})
	wantError(t, st, body, 400, "bad_request")
	st, _, body = doReq(t, "POST", ts.URL+"/v1/feedback", FeedbackRequest{Rows: [][]float64{{0.5, 0.5}}, Labels: []int{7}})
	wantError(t, st, body, 400, "bad_request")
	st, _, body = doReq(t, "POST", ts.URL+"/v1/feedback", FeedbackRequest{Rows: [][]float64{{0.5}}, Labels: []int{0}})
	wantError(t, st, body, 400, "bad_request")
}

// TestFeedbackDurableAcrossRestart proves the replay half of the loop: a
// second server process over the same feedback directory reconstructs
// the store byte-identically and folds the replayed rows into its
// bootstrap training set.
func TestFeedbackDurableAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s1 := newTestServer(t, func(c *Config) { c.FeedbackDir = dir })
	ts1 := httptest.NewServer(s1.Handler())

	rows, labels := bandRows(9)
	status, _, body := doReq(t, "POST", ts1.URL+"/v1/feedback", FeedbackRequest{Rows: rows, Labels: labels})
	if status != 200 {
		t.Fatalf("ingest = %d (body %s)", status, body)
	}
	var fr FeedbackResponse
	if err := json.Unmarshal(body, &fr); err != nil {
		t.Fatal(err)
	}
	if !fr.Durable {
		t.Fatal("durable store reported memory-only")
	}
	m := s1.Model(DefaultModel)
	m.fbMu.Lock()
	wantFP := m.fb.Fingerprint()
	m.fbMu.Unlock()
	ts1.Close()
	if err := s1.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh server over the same directory bootstraps the
	// default model; the replayed rows join the training set.
	train, _, _ := fixture(t)
	s2 := newTestServer(t, func(c *Config) { c.FeedbackDir = dir })
	if err := s2.Bootstrap(context.Background(), train); err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown(context.Background())
	m2 := s2.Model(DefaultModel)
	m2.fbMu.Lock()
	gotFP := m2.fb.Fingerprint()
	gotLen := m2.fb.Len()
	m2.fbMu.Unlock()
	if gotFP != wantFP || gotLen != 9 {
		t.Fatalf("replayed store fingerprint %x (%d rows), want %x (9 rows)", gotFP, gotLen, wantFP)
	}
	snap := m2.snap.Current()
	if snap.FeedbackRows != 9 || snap.Train.Len() != train.Len()+9 {
		t.Fatalf("bootstrap folded %d rows into %d-row train, want 9 into %d",
			snap.FeedbackRows, snap.Train.Len(), train.Len()+9)
	}
}

// pollVersion waits until the model's served snapshot reaches version v.
func pollVersion(t *testing.T, m *Model, v int64, within time.Duration) *Snapshot {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if snap := m.snap.Current(); snap != nil && snap.Version >= v {
			return snap
		}
		if reason := m.degraded.Load(); reason != nil {
			t.Fatalf("model degraded instead of publishing v%d: %s", v, *reason)
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("model never reached version %d (at v%d)", v, m.snap.Current().Version)
	return nil
}

// TestDriftRetrainWarmStartBitIdentity is the acceptance test of the
// always-on loop: ingesting disagreement-band rows past the drift
// threshold triggers a background warm-start retrain, and re-running the
// same retrain COLD — from the replayed durable store, outside the
// server — produces a bit-identical model.
func TestDriftRetrainWarmStartBitIdentity(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, func(c *Config) {
		c.FeedbackDir = dir
		c.DriftThreshold = 1e-9 // any committee disagreement fires
		c.DriftWindow = 32
		c.Feedback = core.Config{Bins: 8}
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	rows, labels := bandRows(12)
	status, _, body := doReq(t, "POST", ts.URL+"/v1/feedback", FeedbackRequest{Rows: rows, Labels: labels})
	if status != 200 {
		t.Fatalf("ingest = %d (body %s)", status, body)
	}
	var fr FeedbackResponse
	if err := json.Unmarshal(body, &fr); err != nil {
		t.Fatal(err)
	}
	// Drift evaluation is off the request path now: the ack reports the
	// evaluation as pending (or, if the evaluator won the race, already
	// covering this ingest) and the retrain fires in the background.
	if !fr.DriftPending && fr.DriftEvalSeq != fr.Seq {
		t.Fatalf("response = %+v, want a pending or completed drift evaluation", fr)
	}

	m := s.Model(DefaultModel)
	snap := pollVersion(t, m, 2, 60*time.Second)
	if snap.FeedbackRows != 12 {
		t.Fatalf("snapshot folded %d feedback rows, want 12", snap.FeedbackRows)
	}
	if m.driftRetrains.Load() != 1 {
		t.Fatalf("drift retrains = %d, want 1", m.driftRetrains.Load())
	}
	probe, _ := bandRows(40)
	liveProba := make([][]float64, len(probe))
	for i, x := range probe {
		liveProba[i] = snap.Ensemble.PredictProba(x)
	}
	ts.Close()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	// Cold replay: reopen the store from disk, rebuild the retrain inputs
	// from scratch, and run the identical warm start with the attempt-1
	// seed. Everything must match bit for bit.
	st, err := feedback.Open(feedback.Config{Dir: dir + "/" + DefaultModel})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.Len() != 12 {
		t.Fatalf("replayed store has %d rows, want 12", st.Len())
	}
	train, ensA, _ := fixture(t)
	reRows, reLabels := st.RowsAfter(0)
	newTrain := train.Clone()
	for i, row := range reRows {
		if err := newTrain.AppendRow(row, reLabels[i]); err != nil {
			t.Fatal(err)
		}
	}
	seed := serveAutoML(11).Seed + 1*131 // attempt 1 of the server's derivation
	ws := core.WarmStartConfig{Feedback: core.Config{Bins: 8}, RefitSeed: seed}
	cold, rep, err := core.WarmStartCtx(context.Background(), ensA, train, newTrain, ws)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FellBack {
		mlCfg := serveAutoML(11)
		mlCfg.Seed = seed
		if cold, err = automl.RunCtx(context.Background(), newTrain, mlCfg); err != nil {
			t.Fatal(err)
		}
	}
	for i, x := range probe {
		got := cold.PredictProba(x)
		for c := range got {
			if got[c] != liveProba[i][c] {
				t.Fatalf("probe %d class %d: cold %v != live %v (warm start not deterministic)",
					i, c, got[c], liveProba[i][c])
			}
		}
	}
}

// TestDriftRetrainFailureDegrades checks the degradation policy: an
// injected failure of the drift-triggered attempt keeps last-good
// serving, marks the model degraded and feeds the breaker.
func TestDriftRetrainFailureDegrades(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.DriftThreshold = 1e-9
		c.Feedback = core.Config{Bins: 8}
		c.Fault = faultinject.New().WithRetrainFail(1)
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	rows, labels := bandRows(10)
	status, _, body := doReq(t, "POST", ts.URL+"/v1/feedback", FeedbackRequest{Rows: rows, Labels: labels})
	if status != 200 {
		t.Fatalf("ingest = %d (body %s)", status, body)
	}
	var fr FeedbackResponse
	if err := json.Unmarshal(body, &fr); err != nil {
		t.Fatal(err)
	}
	if !fr.DriftPending && fr.DriftEvalSeq != fr.Seq {
		t.Fatalf("response = %+v, want a pending or completed drift evaluation", fr)
	}
	m := s.Model(DefaultModel)
	deadline := time.Now().Add(30 * time.Second)
	for m.degraded.Load() == nil && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if reason := m.degraded.Load(); reason == nil {
		t.Fatal("model never degraded after injected retrain failure")
	}
	if snap := m.snap.Current(); snap.Version != 1 {
		t.Fatalf("failed retrain published v%d", snap.Version)
	}
	st, _, body := doReq(t, "GET", ts.URL+"/v1/status", nil)
	if st != 200 {
		t.Fatalf("status endpoint = %d", st)
	}
	var ms ModelStatus
	if err := json.Unmarshal(body, &ms); err != nil {
		t.Fatal(err)
	}
	if ms.Status != "degraded" || ms.DegradedReason == "" {
		t.Fatalf("status = %+v, want degraded with reason", ms)
	}
}

// TestFeedbackWALFaultSurfacesStructured drives the WAL fault points
// through the HTTP layer: a torn write answers 500, and the poisoned
// store then sheds with 503 until reopened.
func TestFeedbackWALFaultSurfacesStructured(t *testing.T) {
	dir := t.TempDir()
	s := newTestServer(t, func(c *Config) {
		c.FeedbackDir = dir
		c.Fault = faultinject.New().WithWALFault(2, faultinject.Panic)
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Shutdown(context.Background())

	rows, labels := bandRows(2)
	status, _, body := doReq(t, "POST", ts.URL+"/v1/feedback", FeedbackRequest{Rows: rows, Labels: labels})
	if status != 200 {
		t.Fatalf("first ingest = %d (body %s)", status, body)
	}
	one := FeedbackRequest{Rows: [][]float64{{0.5, 0.5}}, Labels: []int{0}}
	st, _, body := doReq(t, "POST", ts.URL+"/v1/feedback", one)
	wantError(t, st, body, 500, "feedback_append_failed")
	st, _, body = doReq(t, "POST", ts.URL+"/v1/feedback", one)
	wantError(t, st, body, 503, "feedback_store_dirty")

	// Reopen repairs: only the two acknowledged rows survive.
	s.Model(DefaultModel).closeFeedback()
	re, err := feedback.Open(feedback.Config{Dir: dir + "/" + DefaultModel})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Len() != 2 {
		t.Fatalf("repaired store has %d rows, want 2", re.Len())
	}
}

// TestFeedbackChaosConcurrent is the race-clean chaos test: concurrent
// ingestion, predicts and status reads on one model while drift-triggered
// retrains fire in the background. Run under -race by make test-feedback.
func TestFeedbackChaosConcurrent(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.DriftThreshold = 1e-9
		c.DriftWindow = 16
		c.Feedback = core.Config{Bins: 8}
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const workers, iters = 3, 8
	var wg sync.WaitGroup
	errs := make(chan error, workers*iters*3)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				rows, labels := bandRows(4)
				st, _, body := doReq(t, "POST", ts.URL+"/v1/feedback", FeedbackRequest{Rows: rows, Labels: labels})
				if st != 200 {
					errs <- fmt.Errorf("worker %d ingest %d: status %d (%s)", w, i, st, body)
				}
				st, _, body = doReq(t, "POST", ts.URL+"/v1/predict", PredictRequest{Rows: rows})
				if st != 200 {
					errs <- fmt.Errorf("worker %d predict %d: status %d (%s)", w, i, st, body)
				}
				st, _, _ = doReq(t, "GET", ts.URL+"/v1/status", nil)
				if st != 200 {
					errs <- fmt.Errorf("worker %d status %d: status %d", w, i, st)
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Every acknowledged ingest is in the store; drift retrains fold rows
	// without losing any. Check before Shutdown closes the stores.
	m := s.Model(DefaultModel)
	m.fbMu.Lock()
	fb := m.fb
	m.fbMu.Unlock()
	if fb == nil {
		t.Fatal("no feedback store after chaos run")
	}
	if got := fb.Len(); got != workers*iters*4 {
		t.Fatalf("store has %d rows after chaos, want %d", got, workers*iters*4)
	}
	ts.Close()
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

func TestClientFeedbackAndStatus(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL, 7)

	rows, labels := bandRows(3)
	fr, err := c.Feedback(context.Background(), FeedbackRequest{Rows: rows, Labels: labels})
	if err != nil {
		t.Fatal(err)
	}
	if fr.Seq != 3 {
		t.Fatalf("seq = %d, want 3", fr.Seq)
	}
	ms, err := c.Status(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ms.FeedbackRows != 3 || ms.Name != DefaultModel {
		t.Fatalf("status = %+v, want 3 feedback rows on %q", ms, DefaultModel)
	}
}

// TestLoadFeedbackMix drives the loadgen's mixed predict+feedback
// traffic mode and checks the per-endpoint breakdown: feedback requests
// actually land (the store grows), and PerKind carries separate latency
// and status histograms for each exercised endpoint.
func TestLoadFeedbackMix(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	report, err := RunLoad(context.Background(), LoadConfig{
		Base:        ts.URL,
		Concurrency: 2,
		Requests:    60,
		Rows:        3,
		Seed:        9,
		Mix:         Mix{Predict: 2, Feedback: 1},
		Timeout:     30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if report.ByKind["feedback"] == 0 || report.ByKind["predict"] == 0 {
		t.Fatalf("mix did not exercise both kinds: %v", report.ByKind)
	}
	for _, kind := range []string{"predict", "feedback"} {
		ks := report.PerKind[kind]
		if ks == nil || ks.Requests != report.ByKind[kind] {
			t.Fatalf("PerKind[%s] = %+v, want %d requests", kind, ks, report.ByKind[kind])
		}
		if ks.ByStatus[200] != ks.Requests {
			t.Fatalf("kind %s: statuses %v over %d requests", kind, ks.ByStatus, ks.Requests)
		}
		if ks.MaxMS <= 0 || ks.P50 > ks.P99 {
			t.Fatalf("kind %s: broken latency stats %+v", kind, ks)
		}
	}
	m := s.Model(DefaultModel)
	m.fbMu.Lock()
	fb := m.fb
	m.fbMu.Unlock()
	if fb == nil || fb.Len() != report.ByKind["feedback"]*3 {
		t.Fatalf("store did not absorb the feedback traffic (want %d rows)", report.ByKind["feedback"]*3)
	}
}

// TestClientFeedbackShedOnlyRetries pins the retry policy: a 500 is a
// real append verdict and must NOT be retried (the append is not
// idempotent), unlike 429/503 sheds.
func TestClientFeedbackShedOnlyRetries(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.Fault = faultinject.New().WithHTTPFault(0, faultinject.Error)
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL, 7)
	var slept int
	c.Sleep = func(time.Duration) { slept++ }

	rows, labels := bandRows(1)
	_, err := c.Feedback(context.Background(), FeedbackRequest{Rows: rows, Labels: labels})
	if err == nil {
		t.Fatal("injected 500 did not surface")
	}
	if slept != 0 {
		t.Fatalf("client retried a 500 %d times; feedback must be shed-only", slept)
	}
}
