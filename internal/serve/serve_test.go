package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/netml/alefb/internal/faultinject"
)

// doReq issues one request against a test server and returns status,
// headers and body.
func doReq(t *testing.T, method, url string, payload interface{}) (int, http.Header, []byte) {
	t.Helper()
	var body *bytes.Reader
	if payload != nil {
		raw, err := json.Marshal(payload)
		if err != nil {
			t.Fatal(err)
		}
		body = bytes.NewReader(raw)
	} else {
		body = bytes.NewReader(nil)
	}
	req, err := http.NewRequest(method, url, body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, buf.Bytes()
}

// wantError asserts a structured error envelope with the given status and
// code — the "no naked 5xx" invariant in assertable form.
func wantError(t *testing.T, status int, raw []byte, wantStatus int, wantCode string) ErrorBody {
	t.Helper()
	if status != wantStatus {
		t.Fatalf("status = %d, want %d (body %s)", status, wantStatus, raw)
	}
	var eb ErrorBody
	if err := json.Unmarshal(raw, &eb); err != nil {
		t.Fatalf("response is not a structured error envelope: %v (body %s)", err, raw)
	}
	if eb.Error.Code != wantCode || eb.Error.Status != wantStatus || eb.Error.Message == "" {
		t.Fatalf("error = %+v, want code %q status %d", eb.Error, wantCode, wantStatus)
	}
	return eb
}

func TestHealthzAlwaysOK(t *testing.T) {
	s := New(Config{}) // no snapshot at all
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	status, _, raw := doReq(t, http.MethodGet, ts.URL+"/healthz", nil)
	if status != http.StatusOK {
		t.Fatalf("healthz = %d: %s", status, raw)
	}
	var h HealthResponse
	if err := json.Unmarshal(raw, &h); err != nil || h.Status != "ok" {
		t.Fatalf("healthz body %s (err %v)", raw, err)
	}
}

func TestReadyzUnavailableBeforeBootstrap(t *testing.T) {
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	status, _, raw := doReq(t, http.MethodGet, ts.URL+"/readyz", nil)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("readyz = %d, want 503", status)
	}
	var rr ReadyResponse
	if err := json.Unmarshal(raw, &rr); err != nil || rr.Status != "unavailable" {
		t.Fatalf("readyz body %s (err %v)", raw, err)
	}
	// /v1 endpoints answer 503 with the structured envelope.
	status, hdr, raw := doReq(t, http.MethodPost, ts.URL+"/v1/predict", PredictRequest{Rows: [][]float64{{0.1, 0.2}}})
	wantError(t, status, raw, http.StatusServiceUnavailable, "unavailable")
	if hdr.Get("Retry-After") == "" {
		t.Fatal("503 unavailable missing Retry-After")
	}
}

func TestReadyzReady(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	status, _, raw := doReq(t, http.MethodGet, ts.URL+"/readyz", nil)
	if status != http.StatusOK {
		t.Fatalf("readyz = %d: %s", status, raw)
	}
	var rr ReadyResponse
	if err := json.Unmarshal(raw, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Status != "ready" || rr.Version != 1 || rr.Members == 0 || rr.TrainRows != 200 || rr.Breaker != "closed" {
		t.Fatalf("readyz = %+v", rr)
	}
}

func TestSchema(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	status, _, raw := doReq(t, http.MethodGet, ts.URL+"/v1/schema", nil)
	if status != http.StatusOK {
		t.Fatalf("schema = %d: %s", status, raw)
	}
	var sr SchemaResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatal(err)
	}
	if len(sr.Features) != 2 || sr.Features[0].Name != "x0" || len(sr.Classes) != 2 {
		t.Fatalf("schema = %+v", sr)
	}
}

func TestPredictBatch(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	rows := [][]float64{{0.1, 0.5}, {0.9, 0.5}, {0.5, 0.5}}
	status, _, raw := doReq(t, http.MethodPost, ts.URL+"/v1/predict", PredictRequest{Rows: rows})
	if status != http.StatusOK {
		t.Fatalf("predict = %d: %s", status, raw)
	}
	var pr PredictResponse
	if err := json.Unmarshal(raw, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Version != 1 || len(pr.Labels) != 3 || len(pr.Proba) != 3 {
		t.Fatalf("predict = %+v", pr)
	}
	for i, p := range pr.Proba {
		if len(p) != 2 {
			t.Fatalf("row %d proba width %d", i, len(p))
		}
		sum := p[0] + p[1]
		if sum < 0.999 || sum > 1.001 {
			t.Fatalf("row %d proba sums to %v", i, sum)
		}
		if pr.Labels[i] != 0 && pr.Labels[i] != 1 {
			t.Fatalf("row %d label %d", i, pr.Labels[i])
		}
	}
	// Far from the band the model should be confident and correct.
	if pr.Labels[0] != 0 || pr.Labels[1] != 1 {
		t.Fatalf("labels = %v, want [0 1 _]", pr.Labels)
	}
}

func TestPredictValidation(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxBatchRows = 4 })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	cases := []struct {
		name    string
		payload interface{}
		status  int
		code    string
	}{
		{"empty", PredictRequest{}, http.StatusBadRequest, "bad_request"},
		{"width", PredictRequest{Rows: [][]float64{{0.1}}}, http.StatusBadRequest, "bad_request"},
		{"nan", map[string]interface{}{"rows": [][]interface{}{{0.1, "NaN"}}}, http.StatusBadRequest, "bad_request"},
		{"toolarge", PredictRequest{Rows: [][]float64{{0, 0}, {0, 0}, {0, 0}, {0, 0}, {0, 0}}}, http.StatusBadRequest, "batch_too_large"},
		{"unknownfield", map[string]interface{}{"rowz": 1}, http.StatusBadRequest, "bad_request"},
	}
	for _, tc := range cases {
		status, _, raw := doReq(t, http.MethodPost, ts.URL+"/v1/predict", tc.payload)
		wantError(t, status, raw, tc.status, tc.code)
	}
	// JSON can't carry NaN directly; exercise the finiteness check with a
	// raw body using a huge exponent that parses to +Inf... it does not —
	// encoding/json rejects it. Use a handcrafted large value instead:
	// validate via in-process handler call on an Inf row.
	rec := httptest.NewRecorder()
	snap := s.def.snap.Current()
	if s.validateRows(rec, snap, [][]float64{{1, fInf()}}) {
		t.Fatal("validateRows accepted an infinite value")
	}
	var eb ErrorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &eb); err != nil || eb.Error.Code != "non_finite" {
		t.Fatalf("inf row error = %s (err %v)", rec.Body.Bytes(), err)
	}
}

func fInf() float64 { f := 1.0; return f / (f - 1) }

func TestBodyTooLarge(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxBodyBytes = 256 })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	rows := make([][]float64, 64)
	for i := range rows {
		rows[i] = []float64{0.123456789, 0.987654321}
	}
	status, _, raw := doReq(t, http.MethodPost, ts.URL+"/v1/predict", PredictRequest{Rows: rows})
	wantError(t, status, raw, http.StatusRequestEntityTooLarge, "body_too_large")
}

func TestALEEndpoint(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	status, _, raw := doReq(t, http.MethodPost, ts.URL+"/v1/ale", ALERequest{Name: "x0", Class: 1, Bins: 8})
	if status != http.StatusOK {
		t.Fatalf("ale = %d: %s", status, raw)
	}
	var ar ALEResponse
	if err := json.Unmarshal(raw, &ar); err != nil {
		t.Fatal(err)
	}
	if ar.Feature != 0 || ar.Name != "x0" || len(ar.Grid) == 0 ||
		len(ar.Grid) != len(ar.Mean) || len(ar.Mean) != len(ar.Std) {
		t.Fatalf("ale = %+v", ar)
	}
	for i, sd := range ar.Std {
		if sd < 0 {
			t.Fatalf("std[%d] = %v < 0", i, sd)
		}
	}

	// Validation errors.
	status, _, raw = doReq(t, http.MethodPost, ts.URL+"/v1/ale", ALERequest{Name: "nope"})
	wantError(t, status, raw, http.StatusBadRequest, "unknown_feature")
	status, _, raw = doReq(t, http.MethodPost, ts.URL+"/v1/ale", ALERequest{Feature: 9})
	wantError(t, status, raw, http.StatusBadRequest, "bad_request")
	status, _, raw = doReq(t, http.MethodPost, ts.URL+"/v1/ale", ALERequest{Class: 7})
	wantError(t, status, raw, http.StatusBadRequest, "bad_request")
}

func TestRegionsEndpoint(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	status, _, raw := doReq(t, http.MethodPost, ts.URL+"/v1/regions", RegionsRequest{Bins: 12})
	if status != http.StatusOK {
		t.Fatalf("regions = %d: %s", status, raw)
	}
	var rr RegionsResponse
	if err := json.Unmarshal(raw, &rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Features) != 2 || rr.Threshold <= 0 || rr.Explain == "" {
		t.Fatalf("regions = %+v", rr)
	}
	for _, f := range rr.Features {
		if f.Flagged && len(f.Intervals) == 0 {
			t.Fatalf("feature %s flagged without intervals", f.Name)
		}
		for _, iv := range f.Intervals {
			if iv.Lo > iv.Hi {
				t.Fatalf("feature %s interval [%v, %v]", f.Name, iv.Lo, iv.Hi)
			}
		}
	}
}

func TestRetrainSuccessBumpsVersion(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	req := RetrainRequest{
		Rows:   [][]float64{{0.45, 0.5}, {0.55, 0.5}},
		Labels: []int{0, 1},
	}
	status, _, raw := doReq(t, http.MethodPost, ts.URL+"/v1/retrain", req)
	if status != http.StatusOK {
		t.Fatalf("retrain = %d: %s", status, raw)
	}
	var rr RetrainResponse
	if err := json.Unmarshal(raw, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Version != 2 || rr.TrainRows != 202 || rr.Members == 0 {
		t.Fatalf("retrain = %+v", rr)
	}
	// The fixture dataset itself must be untouched (retrain clones).
	if got := fixTrain.Len(); got != 200 {
		t.Fatalf("fixture dataset grew to %d rows", got)
	}
	// Version visible on subsequent reads.
	status, _, raw = doReq(t, http.MethodPost, ts.URL+"/v1/predict", PredictRequest{Rows: [][]float64{{0.2, 0.2}}})
	if status != http.StatusOK {
		t.Fatalf("predict after retrain = %d", status)
	}
	var pr PredictResponse
	if err := json.Unmarshal(raw, &pr); err != nil || pr.Version != 2 {
		t.Fatalf("predict version = %+v (err %v)", pr, err)
	}
}

func TestRetrainValidation(t *testing.T) {
	s := newTestServer(t, func(c *Config) { c.MaxBatchRows = 8 })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	// Mismatched rows/labels.
	status, _, raw := doReq(t, http.MethodPost, ts.URL+"/v1/retrain",
		RetrainRequest{Rows: [][]float64{{0.1, 0.2}}, Labels: []int{0, 1}})
	wantError(t, status, raw, http.StatusBadRequest, "bad_request")
	// A bad row must be rejected by the AppendRow boundary without
	// touching the served snapshot or counting a retrain attempt.
	status, _, raw = doReq(t, http.MethodPost, ts.URL+"/v1/retrain",
		RetrainRequest{Rows: [][]float64{{0.1, 0.2}}, Labels: []int{9}})
	eb := wantError(t, status, raw, http.StatusBadRequest, "bad_request")
	if !strings.Contains(eb.Error.Message, "row 0") {
		t.Fatalf("message %q does not locate the bad row", eb.Error.Message)
	}
	if got := s.def.retrains.Load(); got != 0 {
		t.Fatalf("validation failure consumed retrain attempt %d", got)
	}
	if v := s.def.snap.Current().Version; v != 1 {
		t.Fatalf("snapshot version = %d after rejected retrain", v)
	}
}

func TestInjectedErrorAndPanicAreStructured(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.Fault = faultinject.New().
			WithHTTPFault(0, faultinject.Error).
			WithHTTPFault(1, faultinject.Panic)
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body := PredictRequest{Rows: [][]float64{{0.1, 0.2}}}

	// seq 0: forced 5xx — must carry the structured envelope.
	status, _, raw := doReq(t, http.MethodPost, ts.URL+"/v1/predict", body)
	wantError(t, status, raw, http.StatusInternalServerError, "injected")

	// seq 1: handler panic — recovered into a structured 500, and the
	// server keeps serving afterwards.
	status, _, raw = doReq(t, http.MethodPost, ts.URL+"/v1/predict", body)
	eb := wantError(t, status, raw, http.StatusInternalServerError, "panic")
	if !strings.Contains(eb.Error.Message, "injected handler panic") {
		t.Fatalf("panic message %q", eb.Error.Message)
	}

	// seq 2: healthy again.
	status, _, _ = doReq(t, http.MethodPost, ts.URL+"/v1/predict", body)
	if status != http.StatusOK {
		t.Fatalf("server did not recover after panic: %d", status)
	}
}

func TestMethodNotAllowedAndNotFound(t *testing.T) {
	s := newTestServer(t, nil)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	status, _, _ := doReq(t, http.MethodGet, ts.URL+"/v1/predict", nil)
	if status != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/predict = %d, want 405", status)
	}
	status, _, _ = doReq(t, http.MethodGet, ts.URL+"/nope", nil)
	if status != http.StatusNotFound {
		t.Fatalf("GET /nope = %d, want 404", status)
	}
}

// TestStatusWriterForwardsOptionalInterfaces checks guard's response
// wrapper does not strip the wrapped writer's optional capabilities: a
// direct Flush reaches the underlying Flusher (committing the response,
// so the panic middleware knows a structured 500 is no longer possible),
// and Unwrap exposes the original writer to http.ResponseController.
func TestStatusWriterForwardsOptionalInterfaces(t *testing.T) {
	rec := httptest.NewRecorder()
	sw := &statusWriter{ResponseWriter: rec}
	sw.Flush()
	if !rec.Flushed {
		t.Fatal("Flush did not reach the wrapped writer")
	}
	if !sw.wrote || sw.status != http.StatusOK {
		t.Fatalf("Flush did not commit the response: wrote=%v status=%d", sw.wrote, sw.status)
	}
	if sw.Unwrap() != http.ResponseWriter(rec) {
		t.Fatal("Unwrap did not return the wrapped writer")
	}
	if err := http.NewResponseController(sw).Flush(); err != nil {
		t.Fatalf("ResponseController.Flush through the wrapper: %v", err)
	}
}
