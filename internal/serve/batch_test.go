package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/netml/alefb/internal/faultinject"
	"github.com/netml/alefb/internal/rng"
	"github.com/netml/alefb/internal/testutil"
)

// postJSON is the goroutine-safe request helper of the coalescing suite:
// unlike doReq it returns errors instead of calling t.Fatal, so dozens of
// concurrent predicts can use it.
func postJSON(url string, payload interface{}) (int, []byte, error) {
	raw, err := json.Marshal(payload)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, body, nil
}

// waitPending polls the scheduler's forming-batch gauge until it reads
// want — the no-sleep handshake that lets tests assemble an exact batch
// composition behind a stall gate.
func waitPending(t *testing.T, b *batcher, want int64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for b.pending.Load() != want {
		if time.Now().After(deadline) {
			t.Fatalf("scheduler pending = %d, want %d", b.pending.Load(), want)
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// predictPayloads builds n deterministic predict requests of rowsPer rows
// each, drawn from rng.Derive(seed, request index).
func predictPayloads(seed uint64, n, rowsPer int) []PredictRequest {
	reqs := make([]PredictRequest, n)
	for i := range reqs {
		r := rng.Derive(seed, uint64(i))
		rows := make([][]float64, rowsPer)
		for j := range rows {
			rows[j] = []float64{r.Float64(), r.Float64()}
		}
		reqs[i] = PredictRequest{Rows: rows}
	}
	return reqs
}

// referenceResponses replays the payloads sequentially against a
// DisableCoalescing server — the legacy per-request row-major sweep — and
// returns the raw response bytes each payload earned.
func referenceResponses(t *testing.T, payloads []PredictRequest) [][]byte {
	t.Helper()
	s := newTestServer(t, func(c *Config) { c.DisableCoalescing = true })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	out := make([][]byte, len(payloads))
	for i, p := range payloads {
		status, body, err := postJSON(ts.URL+"/v1/predict", p)
		if err != nil || status != http.StatusOK {
			t.Fatalf("reference predict %d: status %d err %v body %s", i, status, err, body)
		}
		out[i] = body
	}
	return out
}

// coalescedResponses fires the payloads concurrently at a server whose
// batch 0 is held open by a stall gate, releases the gate once every
// request has joined, and returns each payload's raw response bytes.
func coalescedResponses(t *testing.T, s *Server, base string, gate chan struct{}, payloads []PredictRequest) [][]byte {
	t.Helper()
	out := make([][]byte, len(payloads))
	errs := make([]error, len(payloads))
	var wg sync.WaitGroup
	for i, p := range payloads {
		wg.Add(1)
		go func(i int, p PredictRequest) {
			defer wg.Done()
			status, body, err := postJSON(base+"/v1/predict", p)
			if err == nil && status != http.StatusOK {
				err = fmt.Errorf("status %d: %s", status, body)
			}
			out[i], errs[i] = body, err
		}(i, p)
	}
	waitPending(t, s.def.batcher, int64(len(payloads)))
	close(gate)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("coalesced predict %d: %v", i, err)
		}
	}
	return out
}

// TestCoalescedBitIdentity is the determinism headline: responses from a
// single coalesced batch are byte-for-byte identical to the legacy
// per-request sweep, across seeds, batch compositions and sweep worker
// counts. Any float64 divergence in the member-major scratch engine —
// reordered additions, a torn scratch row, a chunk boundary that depends
// on the worker count — shows up here as a byte diff.
func TestCoalescedBitIdentity(t *testing.T) {
	defer testutil.LeakCheck(t)()
	compositions := []struct{ reqs, rowsPer int }{
		{1, 5},
		{7, 3},
		{64, 7}, // 448 rows: spans multiple 256-row sweep chunks
	}
	for _, seed := range []uint64{1, 2, 3} {
		for _, comp := range compositions {
			payloads := predictPayloads(seed, comp.reqs, comp.rowsPer)
			ref := referenceResponses(t, payloads)
			for _, workers := range []int{1, 8} {
				name := fmt.Sprintf("seed%d_reqs%d_rows%d_workers%d", seed, comp.reqs, comp.rowsPer, workers)
				t.Run(name, func(t *testing.T) {
					gate := make(chan struct{})
					s := newTestServer(t, func(c *Config) {
						c.PredictWorkers = workers
						c.MaxBatchDelay = 30 * time.Second
						c.Fault = faultinject.New().WithSchedulerStall(0, gate)
					})
					ts := httptest.NewServer(s.Handler())
					defer ts.Close()
					got := coalescedResponses(t, s, ts.URL, gate, payloads)
					for i := range payloads {
						if !bytes.Equal(got[i], ref[i]) {
							t.Fatalf("request %d: coalesced response diverges from per-request sweep\ncoalesced: %s\nreference: %s",
								i, got[i], ref[i])
						}
					}
					if got := s.def.batcher.batches.Load(); got != 1 {
						t.Fatalf("batches = %d, want 1 (stall gate should coalesce everything)", got)
					}
					if got := s.def.batcher.batchedReqs.Load(); got != int64(comp.reqs) {
						t.Fatalf("batchedReqs = %d, want %d", got, comp.reqs)
					}
					if got := s.def.batcher.rowsSwept.Load(); got != int64(comp.reqs*comp.rowsPer) {
						t.Fatalf("rowsSwept = %d, want %d", got, comp.reqs*comp.rowsPer)
					}
				})
			}
		}
	}
}

// TestBatchTimerFlush pins the MaxBatchDelay path deterministically: a
// stall gate that never closes suppresses the everyone-joined flush, so
// the only way the lone request's batch can complete is the delay timer.
func TestBatchTimerFlush(t *testing.T) {
	defer testutil.LeakCheck(t)()
	gate := make(chan struct{}) // never closed
	s := newTestServer(t, func(c *Config) {
		c.MaxBatchDelay = 10 * time.Millisecond
		c.Fault = faultinject.New().WithSchedulerStall(0, gate)
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	payloads := predictPayloads(5, 1, 4)
	ref := referenceResponses(t, payloads)
	status, body, err := postJSON(ts.URL+"/v1/predict", payloads[0])
	if err != nil || status != http.StatusOK {
		t.Fatalf("predict through timer flush: status %d err %v body %s", status, err, body)
	}
	if !bytes.Equal(body, ref[0]) {
		t.Fatalf("timer-flushed response diverges:\n%s\nwant %s", body, ref[0])
	}
	if got := s.def.batcher.timerFlushes.Load(); got != 1 {
		t.Fatalf("timerFlushes = %d, want 1", got)
	}
}

// TestBatchRowCapSplits verifies the scheduler honors MaxBatchRows even
// while stalled: six 3-row requests against an 8-row cap must split into
// at least two batches, with every response still bit-identical to the
// per-request sweep.
func TestBatchRowCapSplits(t *testing.T) {
	defer testutil.LeakCheck(t)()
	payloads := predictPayloads(9, 6, 3)
	ref := referenceResponses(t, payloads)
	gate := make(chan struct{}) // never closed: only the row cap ends batch 0
	s := newTestServer(t, func(c *Config) {
		c.MaxBatchRows = 8
		c.MaxBatchDelay = 30 * time.Second
		c.Fault = faultinject.New().WithSchedulerStall(0, gate)
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	out := make([][]byte, len(payloads))
	errs := make([]error, len(payloads))
	var wg sync.WaitGroup
	for i, p := range payloads {
		wg.Add(1)
		go func(i int, p PredictRequest) {
			defer wg.Done()
			status, body, err := postJSON(ts.URL+"/v1/predict", p)
			if err == nil && status != http.StatusOK {
				err = fmt.Errorf("status %d: %s", status, body)
			}
			out[i], errs[i] = body, err
		}(i, p)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("predict %d: %v", i, err)
		}
		if !bytes.Equal(out[i], ref[i]) {
			t.Fatalf("request %d diverges under row-cap splitting:\n%s\nwant %s", i, out[i], ref[i])
		}
	}
	if got := s.def.batcher.batches.Load(); got < 2 {
		t.Fatalf("batches = %d, want >= 2 (18 rows cannot fit one 8-row batch)", got)
	}
	if got := s.def.batcher.rowsSwept.Load(); got != 18 {
		t.Fatalf("rowsSwept = %d, want 18", got)
	}
	if got := s.def.batcher.batchedReqs.Load(); got != 6 {
		t.Fatalf("batchedReqs = %d, want 6", got)
	}
}

// TestSnapshotSwapMidBatch is the no-torn-batches contract: a snapshot
// published while a coalesced batch is still collecting must either miss
// the batch entirely or serve all of it — never a mix. The batch executor
// loads the snapshot pointer exactly once, after collection, so every
// response of the held batch must echo the new version and the new
// ensemble's exact probabilities.
func TestSnapshotSwapMidBatch(t *testing.T) {
	defer testutil.LeakCheck(t)()
	train, _, ensB := fixture(t)
	payloads := predictPayloads(21, 4, 3)

	// Reference: ensB as version 2, per-request sweep.
	refSrv := newTestServer(t, func(c *Config) { c.DisableCoalescing = true })
	refSrv.Install(ensB, train) // version 2
	refTS := httptest.NewServer(refSrv.Handler())
	defer refTS.Close()
	ref := make([][]byte, len(payloads))
	for i, p := range payloads {
		status, body, err := postJSON(refTS.URL+"/v1/predict", p)
		if err != nil || status != http.StatusOK {
			t.Fatalf("reference predict %d: status %d err %v", i, status, err)
		}
		ref[i] = body
	}

	gate := make(chan struct{})
	s := newTestServer(t, func(c *Config) { // ensA installed as version 1
		c.MaxBatchDelay = 30 * time.Second
		c.Fault = faultinject.New().WithSchedulerStall(0, gate)
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	out := make([][]byte, len(payloads))
	errs := make([]error, len(payloads))
	var wg sync.WaitGroup
	for i, p := range payloads {
		wg.Add(1)
		go func(i int, p PredictRequest) {
			defer wg.Done()
			status, body, err := postJSON(ts.URL+"/v1/predict", p)
			if err == nil && status != http.StatusOK {
				err = fmt.Errorf("status %d: %s", status, body)
			}
			out[i], errs[i] = body, err
		}(i, p)
	}
	waitPending(t, s.def.batcher, int64(len(payloads)))
	// Every request is inside the held batch; swap the snapshot under it.
	if v := s.Install(ensB, train); v != 2 {
		t.Fatalf("install returned version %d, want 2", v)
	}
	close(gate)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("predict %d: %v", i, err)
		}
		var pr PredictResponse
		if uerr := json.Unmarshal(out[i], &pr); uerr != nil {
			t.Fatalf("predict %d: bad body %s", i, out[i])
		}
		if pr.Version != 2 {
			t.Fatalf("predict %d echoes version %d, want 2 (batch executed after publish)", i, pr.Version)
		}
		if !bytes.Equal(out[i], ref[i]) {
			t.Fatalf("request %d: held-batch response not identical to ensB reference\n%s\nwant %s", i, out[i], ref[i])
		}
	}
	if got := s.def.batcher.batches.Load(); got != 1 {
		t.Fatalf("batches = %d, want 1", got)
	}
}

// TestSweepPanicFailsWholeBatchStructured: a panic inside the coalesced
// sweep must fail every request of the batch with a structured error —
// no stranded followers holding admission slots, no naked 5xx — and the
// model must serve again once a good snapshot is published.
func TestSweepPanicFailsWholeBatchStructured(t *testing.T) {
	defer testutil.LeakCheck(t)()
	train, ensA, _ := fixture(t)
	gate := make(chan struct{})
	s := newTestServer(t, func(c *Config) {
		c.MaxBatchDelay = 30 * time.Second
		c.Fault = faultinject.New().WithSchedulerStall(0, gate)
	})
	// A snapshot with a nil ensemble: validation passes (it only needs the
	// schema) but the sweep dereferences the ensemble and panics.
	s.def.snap.Publish(&Snapshot{Ensemble: nil, Train: train, Version: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	payloads := predictPayloads(33, 2, 3)
	statuses := make([]int, len(payloads))
	bodies := make([][]byte, len(payloads))
	errs := make([]error, len(payloads))
	var wg sync.WaitGroup
	for i, p := range payloads {
		wg.Add(1)
		go func(i int, p PredictRequest) {
			defer wg.Done()
			statuses[i], bodies[i], errs[i] = postJSON(ts.URL+"/v1/predict", p)
		}(i, p)
	}
	waitPending(t, s.def.batcher, int64(len(payloads)))
	close(gate)
	wg.Wait()

	for i := range payloads {
		if errs[i] != nil {
			t.Fatalf("predict %d transport error: %v", i, errs[i])
		}
		if statuses[i] != http.StatusInternalServerError {
			t.Fatalf("predict %d status = %d, want 500", i, statuses[i])
		}
		var eb ErrorBody
		if err := json.Unmarshal(bodies[i], &eb); err != nil || eb.Error.Code == "" {
			t.Fatalf("predict %d: naked 5xx, body %s", i, bodies[i])
		}
		if eb.Error.Code != "panic" && eb.Error.Code != "batch_failed" {
			t.Fatalf("predict %d error code %q, want panic or batch_failed", i, eb.Error.Code)
		}
	}

	// Recovery: publish a good snapshot, the scheduler keeps working.
	s.Install(ensA, train)
	status, body, err := postJSON(ts.URL+"/v1/predict", payloads[0])
	if err != nil || status != http.StatusOK {
		t.Fatalf("predict after recovery: status %d err %v body %s", status, err, body)
	}
}
