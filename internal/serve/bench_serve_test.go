package serve

import (
	"context"
	"flag"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"github.com/netml/alefb/internal/automl"
	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/ml"
	"github.com/netml/alefb/internal/rng"
)

// serveBatch selects the predict path under benchmark: "on" (default)
// runs the coalescing micro-batch scheduler, "off" the legacy
// per-request sweep. `make bench-serve` runs the same benchmark twice —
// off into results/bench_serve_baseline.txt, on into
// results/bench_serve_current.txt — and cmd/benchjson derives the
// speedup into BENCH_SERVE.json.
var serveBatch = flag.String("serve.batch", "on", "predict path under benchmark: on=coalescing scheduler, off=per-request sweep")

// benchEnsemble hand-builds a forest committee (rather than running an
// AutoML search) so the benchmark's compute profile is fixed: four
// 256-tree depth-13 forests fit on 16000 confusable-band rows, equal
// weights — a forest-heavy serving workload whose flattened trees far
// exceed the cache, so every walk is bound by load latency (the regime
// real traffic-classification forests live in). The flat SoA engine
// overlaps four independent row walks per tree in lockstep, but the
// 3-row requests below are too small to fill a block on their own: the
// per-request baseline degrades to the serial walk while the coalescing
// scheduler concatenates concurrent requests into full blocks. Fitting
// this committee is expensive, so it is memoized across benchmark
// rounds (b.N re-invocations) — it is deterministic either way.
var (
	benchEnsOnce  sync.Once
	benchEns      *automl.Ensemble
	benchEnsTrain *data.Dataset
	benchEnsErr   error
)

func benchEnsemble(b *testing.B) (*automl.Ensemble, *data.Dataset) {
	b.Helper()
	benchEnsOnce.Do(func() {
		train := serveProblem(16000, 7)
		members := make([]automl.Member, 4)
		for i := range members {
			f := ml.NewRandomForest(256, 13)
			if benchEnsErr = f.Fit(train, rng.New(uint64(100+i))); benchEnsErr != nil {
				return
			}
			members[i] = automl.Member{Model: f, Weight: 0.25, ValScore: 0.9}
		}
		benchEns = &automl.Ensemble{Members: members, NumClasses: 2, ValScore: 0.9}
		benchEnsTrain = train
	})
	if benchEnsErr != nil {
		b.Fatal(benchEnsErr)
	}
	return benchEns, benchEnsTrain
}

// BenchmarkServePredictLoad64 measures end-to-end predict throughput at
// 64 concurrent closed-loop clients, 32 rows per request. One op is one
// HTTP request, so ns/op is the inverse of request throughput.
func BenchmarkServePredictLoad64(b *testing.B) {
	ens, train := benchEnsemble(b)
	s := New(Config{
		MaxInFlight:       128,
		MaxQueue:          256,
		DisableCoalescing: *serveBatch == "off",
	})
	s.Install(ens, train)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	b.ReportAllocs()
	b.ResetTimer()
	report, err := RunLoad(context.Background(), LoadConfig{
		Base:        ts.URL,
		Concurrency: 64,
		Requests:    b.N,
		Rows:        3,
		Seed:        42,
		Mix:         Mix{Predict: 1},
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	for status, n := range report.ByStatus {
		if status != http.StatusOK {
			b.Fatalf("status %d x%d under benchmark load:\n%s", status, n, report)
		}
	}
	b.ReportMetric(float64(report.Requests)/report.Elapsed.Seconds(), "req/s")
	if s.def.batcher.batches.Load() > 0 {
		b.ReportMetric(float64(s.def.batcher.batchedReqs.Load())/float64(s.def.batcher.batches.Load()), "reqs/batch")
	}
}
