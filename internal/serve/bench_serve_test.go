package serve

import (
	"context"
	"flag"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/netml/alefb/internal/automl"
	"github.com/netml/alefb/internal/core"
	"github.com/netml/alefb/internal/data"
	"github.com/netml/alefb/internal/ml"
	"github.com/netml/alefb/internal/rng"
)

// serveBatch selects the predict path under benchmark: "on" (default)
// runs the coalescing micro-batch scheduler, "off" the legacy
// per-request sweep. `make bench-serve` runs the same benchmark twice —
// off into results/bench_serve_baseline.txt, on into
// results/bench_serve_current.txt — and cmd/benchjson derives the
// speedup into BENCH_SERVE.json.
var serveBatch = flag.String("serve.batch", "on", "predict path under benchmark: on=coalescing scheduler, off=per-request sweep")

// serveDrift selects the drift-evaluation path for the ingest benchmark:
// "async" (default) the off-path debounced evaluator, "sync" the legacy
// inline evaluation on the request path. serveInterp toggles the
// snapshot-keyed ALE/regions cache for the interpretation benchmark.
// `make bench-serve` runs baseline with both legacy paths and current
// with both new ones, alongside -serve.batch.
var (
	serveDrift  = flag.String("serve.drift", "async", "drift evaluation under benchmark: async=off-path debounced, sync=inline legacy")
	serveInterp = flag.String("serve.interp", "on", "interpretation cache under benchmark: on=snapshot-keyed memo, off=recompute per request")
)

// benchEnsemble hand-builds a forest committee (rather than running an
// AutoML search) so the benchmark's compute profile is fixed: four
// 256-tree depth-13 forests fit on 16000 confusable-band rows, equal
// weights — a forest-heavy serving workload whose flattened trees far
// exceed the cache, so every walk is bound by load latency (the regime
// real traffic-classification forests live in). The flat SoA engine
// overlaps four independent row walks per tree in lockstep, but the
// 3-row requests below are too small to fill a block on their own: the
// per-request baseline degrades to the serial walk while the coalescing
// scheduler concatenates concurrent requests into full blocks. Fitting
// this committee is expensive, so it is memoized across benchmark
// rounds (b.N re-invocations) — it is deterministic either way.
var (
	benchEnsOnce  sync.Once
	benchEns      *automl.Ensemble
	benchEnsTrain *data.Dataset
	benchEnsErr   error
)

func benchEnsemble(b *testing.B) (*automl.Ensemble, *data.Dataset) {
	b.Helper()
	benchEnsOnce.Do(func() {
		train := serveProblem(16000, 7)
		members := make([]automl.Member, 4)
		for i := range members {
			f := ml.NewRandomForest(256, 13)
			if benchEnsErr = f.Fit(train, rng.New(uint64(100+i))); benchEnsErr != nil {
				return
			}
			members[i] = automl.Member{Model: f, Weight: 0.25, ValScore: 0.9}
		}
		benchEns = &automl.Ensemble{Members: members, NumClasses: 2, ValScore: 0.9}
		benchEnsTrain = train
	})
	if benchEnsErr != nil {
		b.Fatal(benchEnsErr)
	}
	return benchEns, benchEnsTrain
}

// BenchmarkServePredictLoad64 measures end-to-end predict throughput at
// 64 concurrent closed-loop clients, 32 rows per request. One op is one
// HTTP request, so ns/op is the inverse of request throughput.
func BenchmarkServePredictLoad64(b *testing.B) {
	ens, train := benchEnsemble(b)
	s := New(Config{
		MaxInFlight:       128,
		MaxQueue:          256,
		DisableCoalescing: *serveBatch == "off",
	})
	s.Install(ens, train)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	b.ReportAllocs()
	b.ResetTimer()
	report, err := RunLoad(context.Background(), LoadConfig{
		Base:        ts.URL,
		Concurrency: 64,
		Requests:    b.N,
		Rows:        3,
		Seed:        42,
		Mix:         Mix{Predict: 1},
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	for status, n := range report.ByStatus {
		if status != http.StatusOK {
			b.Fatalf("status %d x%d under benchmark load:\n%s", status, n, report)
		}
	}
	b.ReportMetric(float64(report.Requests)/report.Elapsed.Seconds(), "req/s")
	if s.def.batcher.batches.Load() > 0 {
		b.ReportMetric(float64(s.def.batcher.batchedReqs.Load())/float64(s.def.batcher.batches.Load()), "reqs/batch")
	}
}

// benchInterpEnsemble is a lighter committee for the interpretation
// benchmark: an uncached committee-ALE sweep over the predict
// benchmark's 16000-row/1024-tree committee takes tens of seconds —
// long past any sane request timeout — so the baseline would only
// measure client timeouts. Four 64-tree depth-10 forests on 4000 rows
// keep the uncached recompute expensive but servable, which is exactly
// the regime the snapshot-keyed cache targets.
var (
	benchInterpOnce  sync.Once
	benchInterpEns   *automl.Ensemble
	benchInterpTrain *data.Dataset
	benchInterpErr   error
)

func benchInterpEnsemble(b *testing.B) (*automl.Ensemble, *data.Dataset) {
	b.Helper()
	benchInterpOnce.Do(func() {
		train := serveProblem(4000, 7)
		members := make([]automl.Member, 4)
		for i := range members {
			f := ml.NewRandomForest(64, 10)
			if benchInterpErr = f.Fit(train, rng.New(uint64(200+i))); benchInterpErr != nil {
				return
			}
			members[i] = automl.Member{Model: f, Weight: 0.25, ValScore: 0.9}
		}
		benchInterpEns = &automl.Ensemble{Members: members, NumClasses: 2, ValScore: 0.9}
		benchInterpTrain = train
	})
	if benchInterpErr != nil {
		b.Fatal(benchInterpErr)
	}
	return benchInterpEns, benchInterpTrain
}

// BenchmarkFeedbackIngestDrift measures feedback-ingest throughput with
// the drift monitor enabled: 32 concurrent closed-loop clients POSTing
// labelled batches. One op is one acknowledged ingest. The threshold is
// set astronomically high so the committee's window disagreement is
// evaluated (the cost under measurement) but never triggers a retrain —
// the benchmark isolates monitoring, not retraining. With
// -serve.drift=sync every ack waits out the evaluation inline (the seed
// behavior); with async (default) the ack returns after the durable
// append and evaluations debounce off-path.
func BenchmarkFeedbackIngestDrift(b *testing.B) {
	ens, train := benchEnsemble(b)
	s := New(Config{
		MaxInFlight:    128,
		MaxQueue:       256,
		RequestTimeout: 2 * time.Minute,
		DriftThreshold: 1e9,
		DriftWindow:    64,
		SyncDriftEval:  *serveDrift == "sync",
		Feedback:       core.Config{Bins: 16},
	})
	s.Install(ens, train)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	b.ReportAllocs()
	b.ResetTimer()
	report, err := RunLoad(context.Background(), LoadConfig{
		Base:        ts.URL,
		Concurrency: 32,
		Requests:    b.N,
		Rows:        4,
		Seed:        42,
		Mix:         Mix{Feedback: 1},
		Timeout:     2 * time.Minute,
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	for status, n := range report.ByStatus {
		if status != http.StatusOK {
			b.Fatalf("status %d x%d under ingest benchmark:\n%s", status, n, report)
		}
	}
	b.ReportMetric(float64(report.Requests)/report.Elapsed.Seconds(), "req/s")
	if d := report.Drift; d != nil {
		b.ReportMetric(float64(d.Evals), "evals")
		b.ReportMetric(float64(d.Coalesced), "coalesced")
	}
	ts.Close()
	if err := s.Shutdown(context.Background()); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkInterpretLoad32 measures repeated-interpretation throughput:
// 32 concurrent clients issuing an ALE-heavy ALE+regions mix against one
// published snapshot — the dashboard-refresh workload. One op is one
// HTTP request. With -serve.interp=off every request recomputes the
// committee curves from scratch (the seed behavior); with on (default)
// requests after the first hit the snapshot-keyed cache.
func BenchmarkInterpretLoad32(b *testing.B) {
	ens, train := benchInterpEnsemble(b)
	s := New(Config{
		MaxInFlight:        128,
		MaxQueue:           256,
		RequestTimeout:     2 * time.Minute,
		DisableInterpCache: *serveInterp == "off",
		Feedback:           core.Config{Bins: 16},
	})
	s.Install(ens, train)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	b.ReportAllocs()
	b.ResetTimer()
	report, err := RunLoad(context.Background(), LoadConfig{
		Base:        ts.URL,
		Concurrency: 32,
		Requests:    b.N,
		Seed:        42,
		Mix:         Mix{ALE: 4, Regions: 1},
		Timeout:     2 * time.Minute,
	})
	b.StopTimer()
	if err != nil {
		b.Fatal(err)
	}
	for status, n := range report.ByStatus {
		if status != http.StatusOK {
			b.Fatalf("status %d x%d under interpretation benchmark:\n%s", status, n, report)
		}
	}
	b.ReportMetric(float64(report.Requests)/report.Elapsed.Seconds(), "req/s")
	if ist := s.def.interp.Load(); ist != nil {
		hits, misses := ist.stats()
		b.ReportMetric(float64(hits), "hits")
		b.ReportMetric(float64(misses), "misses")
	}
}
