package serve

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/netml/alefb/internal/feedback"
)

// DefaultModel is the name of the pinned model behind the unprefixed
// /v1 endpoints. It is listed in /v1/models like any other tenant but is
// never evicted.
const DefaultModel = "default"

// Model is one tenant of the serving layer: an independently versioned
// snapshot store plus all the mutable serving state that must never be
// shared across tenants — the retrain circuit breaker, the retrain
// single-flight, the degraded marker, and the predict micro-batch
// scheduler. The isolation suite's contract is exactly this struct: a
// failed retrain, an open breaker, or a panicking handler on one Model
// touches nothing another Model reads.
type Model struct {
	name string
	snap snapStore

	breaker *Breaker
	batcher *batcher

	// degraded holds the reason this model is serving a stale snapshot,
	// nil while healthy — the per-tenant twin of
	// core.LoopResult.Degraded/DegradedReason.
	degraded atomic.Pointer[string]
	// retrains counts retrain attempts that actually ran (1-based); it
	// keys retrain fault injection per model. Breaker-shed and
	// conflicting requests do not consume attempt numbers.
	retrains atomic.Int64
	// retrainBusy single-flights retrains: concurrent triggers get 409.
	retrainBusy atomic.Bool

	// fb is the model's feedback store, opened lazily on first use (the
	// directory is derived from the model name). fbMu guards the open;
	// the store itself is internally synchronized.
	fbMu sync.Mutex
	fb   *feedback.Store

	// drift holds the most recent sliding-window drift evaluation, nil
	// before the first one.
	drift atomic.Pointer[DriftStatus]
	// interp is the interpretation cache for the currently published
	// snapshot (see interpcache.go), nil until the first cacheable
	// interpretation request. Swapping a new snapshot in swaps the whole
	// state out, which is the cache-invalidation mechanism.
	interp atomic.Pointer[interpState]
	// driftEval is the model's debounced off-path drift evaluator, created
	// lazily under driftEvalMu on the first drift-monitored ingest.
	driftEvalMu sync.Mutex
	driftEval   *driftEvaluator
	// driftRetrains counts retrains triggered by the drift monitor (as
	// opposed to operator /retrain calls).
	driftRetrains atomic.Int64
	// retraining is true while a drift-triggered background retrain runs;
	// surfaced as retrain_state in the status endpoints.
	retraining atomic.Bool

	// snapMeta describes the newest durably persisted snapshot of this
	// model (version, seed, wall-clock write time), nil before the first
	// persist or when persistence is disabled. Status endpoints read it;
	// the shutdown flush uses it to skip models already up to date.
	snapMeta atomic.Pointer[SnapMeta]

	// lastUsed is the registry's LRU clock tick of the most recent
	// request routed to this model.
	lastUsed atomic.Int64
	// pinned models are exempt from LRU eviction (the default model).
	pinned bool
}

// Name returns the model's registry name.
func (m *Model) Name() string { return m.name }

// closeFeedback closes the model's feedback store if one was opened.
func (m *Model) closeFeedback() {
	m.fbMu.Lock()
	defer m.fbMu.Unlock()
	if m.fb != nil {
		_ = m.fb.Close()
		m.fb = nil
	}
}

// modelRegistry is the multi-tenant model table. Lookups touch an LRU
// tick; creating a model beyond the capacity evicts the coldest
// unpinned one. The mutex only guards the name table — per-model state
// is reached lock-free through the *Model, so an eviction never blocks
// or invalidates requests already holding the pointer: they finish on
// the snapshot they loaded, and only later lookups see the 404.
type modelRegistry struct {
	mu     sync.Mutex
	models map[string]*Model
	tick   atomic.Int64
	// max bounds the number of unpinned models; <=0 means unbounded.
	max int
}

func newModelRegistry(max int) *modelRegistry {
	return &modelRegistry{models: map[string]*Model{}, max: max}
}

// lookup returns the named model and touches its LRU tick, or nil.
func (r *modelRegistry) lookup(name string) *Model {
	r.mu.Lock()
	m := r.models[name]
	r.mu.Unlock()
	if m != nil {
		m.lastUsed.Store(r.tick.Add(1))
	}
	return m
}

// getOrCreate returns the named model, creating it with mk when absent.
// Creating an unpinned model beyond the capacity evicts the
// least-recently-used unpinned model, which is returned for logging.
func (r *modelRegistry) getOrCreate(name string, mk func() *Model) (m *Model, evicted *Model) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m = r.models[name]; m != nil {
		m.lastUsed.Store(r.tick.Add(1))
		return m, nil
	}
	m = mk()
	m.name = name
	m.lastUsed.Store(r.tick.Add(1))
	if !m.pinned && r.max > 0 {
		unpinned := 0
		for _, old := range r.models {
			if !old.pinned {
				unpinned++
			}
		}
		if unpinned >= r.max {
			evicted = r.coldest()
			if evicted != nil {
				delete(r.models, evicted.name)
			}
		}
	}
	r.models[name] = m
	return m, evicted
}

// coldest returns the unpinned model with the oldest LRU tick. Callers
// hold r.mu.
func (r *modelRegistry) coldest() *Model {
	var victim *Model
	for _, m := range r.models {
		if m.pinned {
			continue
		}
		if victim == nil || m.lastUsed.Load() < victim.lastUsed.Load() ||
			(m.lastUsed.Load() == victim.lastUsed.Load() && m.name < victim.name) {
			victim = m
		}
	}
	return victim
}

// list returns every registered model sorted by name.
func (r *modelRegistry) list() []*Model {
	r.mu.Lock()
	out := make([]*Model, 0, len(r.models))
	for _, m := range r.models {
		out = append(out, m)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// len reports the number of registered models.
func (r *modelRegistry) len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.models)
}

// validModelName bounds registry keys: path-safe, short, non-empty.
func validModelName(name string) error {
	if name == "" || len(name) > 64 {
		return fmt.Errorf("model name must be 1-64 characters")
	}
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return fmt.Errorf("model name %q: only letters, digits, '-', '_', '.' allowed", name)
		}
	}
	return nil
}
