package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/netml/alefb/internal/faultinject"
	"github.com/netml/alefb/internal/testutil"
)

// TestOverloadShedsDontQueue drives more concurrency than the admission
// queue admits and checks the shed-don't-queue invariant: every request
// is answered, the overflow gets 429 + Retry-After + a structured body,
// and nothing waits beyond the configured bound.
func TestOverloadShedsDontQueue(t *testing.T) {
	defer testutil.LeakCheck(t)()
	const n = 8
	fault := faultinject.New()
	for i := 0; i < n; i++ {
		fault = fault.WithHTTPLatency(i, 300*time.Millisecond)
	}
	s := newTestServer(t, func(c *Config) {
		c.MaxInFlight = 1
		c.MaxQueue = 1
		c.Fault = fault
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type result struct {
		status     int
		retryAfter string
		body       []byte
	}
	results := make([]result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, hdr, raw := doReq(t, http.MethodPost, ts.URL+"/v1/predict",
				PredictRequest{Rows: [][]float64{{0.1, 0.2}}})
			results[i] = result{status, hdr.Get("Retry-After"), raw}
		}(i)
	}
	wg.Wait()

	var ok200, shed429 int
	for i, r := range results {
		switch r.status {
		case http.StatusOK:
			ok200++
		case http.StatusTooManyRequests:
			shed429++
			if r.retryAfter == "" {
				t.Fatalf("request %d: 429 without Retry-After", i)
			}
			var eb ErrorBody
			if err := json.Unmarshal(r.body, &eb); err != nil || eb.Error.Code != "overloaded" {
				t.Fatalf("request %d: 429 body %s (err %v)", i, r.body, err)
			}
		default:
			t.Fatalf("request %d: unexpected status %d: %s", i, r.status, r.body)
		}
	}
	// 1 in flight + 1 queued can succeed (later arrivals may also slip in
	// after a release); the bulk of the burst must shed.
	if ok200 < 1 || shed429 < n-4 {
		t.Fatalf("got %d OK / %d shed of %d", ok200, shed429, n)
	}
	if ok200+shed429 != n {
		t.Fatalf("unaccounted responses: %d + %d != %d", ok200, shed429, n)
	}
}

// TestRetrainFailureDegradesAndRecovers is the last-good-snapshot chaos
// scenario: a failed retrain must keep serving the previous snapshot
// byte-for-byte, flag /readyz degraded with the reason, and a subsequent
// successful retrain must clear the degradation and bump the version.
func TestRetrainFailureDegradesAndRecovers(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.Fault = faultinject.New().WithRetrainFail(1)
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	probe := PredictRequest{Rows: [][]float64{{0.3, 0.7}, {0.62, 0.4}}}

	// Baseline prediction from snapshot v1.
	status, _, before := doReq(t, http.MethodPost, ts.URL+"/v1/predict", probe)
	if status != http.StatusOK {
		t.Fatalf("baseline predict = %d", status)
	}

	// Attempt 1 is injected to fail.
	status, _, raw := doReq(t, http.MethodPost, ts.URL+"/v1/retrain", RetrainRequest{})
	eb := wantError(t, status, raw, http.StatusInternalServerError, "retrain_failed")
	if !strings.Contains(eb.Error.Message, "still serving snapshot v1") {
		t.Fatalf("failure message %q does not state last-good serving", eb.Error.Message)
	}

	// Readiness reports degraded with the reason.
	status, _, raw = doReq(t, http.MethodGet, ts.URL+"/readyz", nil)
	if status != http.StatusOK {
		t.Fatalf("readyz after failed retrain = %d (degraded is still serving)", status)
	}
	var rr ReadyResponse
	if err := json.Unmarshal(raw, &rr); err != nil {
		t.Fatal(err)
	}
	if rr.Status != "degraded" || !strings.Contains(rr.DegradedReason, "retrain 1 failed") || rr.Version != 1 {
		t.Fatalf("readyz = %+v", rr)
	}

	// Reads still serve the identical v1 snapshot.
	status, _, after := doReq(t, http.MethodPost, ts.URL+"/v1/predict", probe)
	if status != http.StatusOK || string(after) != string(before) {
		t.Fatalf("prediction changed across failed retrain:\n before %s\n after  %s", before, after)
	}

	// Attempt 2 is healthy: version bumps, degradation clears.
	status, _, raw = doReq(t, http.MethodPost, ts.URL+"/v1/retrain", RetrainRequest{})
	if status != http.StatusOK {
		t.Fatalf("recovery retrain = %d: %s", status, raw)
	}
	var rt RetrainResponse
	if err := json.Unmarshal(raw, &rt); err != nil || rt.Version != 2 || rt.Attempt != 2 {
		t.Fatalf("recovery retrain = %+v (err %v)", rt, err)
	}
	status, _, raw = doReq(t, http.MethodGet, ts.URL+"/readyz", nil)
	var recovered ReadyResponse
	if err := json.Unmarshal(raw, &recovered); err != nil || status != http.StatusOK {
		t.Fatal(status, err)
	}
	if recovered.Status != "ready" || recovered.DegradedReason != "" || recovered.Version != 2 {
		t.Fatalf("readyz after recovery = %+v", recovered)
	}
}

// TestBreakerShedsRetrains trips the retrain breaker over HTTP with a
// deterministic clock: two injected failures open it, further retrains
// are shed with 503 + Retry-After without consuming attempts, and after
// the cooldown a half-open probe succeeds and closes it.
func TestBreakerShedsRetrains(t *testing.T) {
	clk := newFakeClock()
	s := newTestServer(t, func(c *Config) {
		c.BreakerThreshold = 2
		c.BreakerCooldown = 30 * time.Second
		c.Fault = faultinject.New().WithRetrainFail(1).WithRetrainFail(2)
		c.now = clk.Now
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 1; i <= 2; i++ {
		status, _, raw := doReq(t, http.MethodPost, ts.URL+"/v1/retrain", RetrainRequest{})
		wantError(t, status, raw, http.StatusInternalServerError, "retrain_failed")
	}
	if st := s.def.breaker.State(); st != BreakerOpen {
		t.Fatalf("breaker = %v after 2 failures, want open", st)
	}

	// Open breaker sheds without running the search or consuming attempts.
	status, hdr, raw := doReq(t, http.MethodPost, ts.URL+"/v1/retrain", RetrainRequest{})
	wantError(t, status, raw, http.StatusServiceUnavailable, "breaker_open")
	if hdr.Get("Retry-After") == "" {
		t.Fatal("breaker 503 without Retry-After")
	}
	if got := s.def.retrains.Load(); got != 2 {
		t.Fatalf("shed retrain consumed an attempt: %d", got)
	}
	status, _, raw = doReq(t, http.MethodGet, ts.URL+"/readyz", nil)
	var rr ReadyResponse
	if err := json.Unmarshal(raw, &rr); err != nil || status != http.StatusOK {
		t.Fatal(status, err)
	}
	if rr.Breaker != "open" {
		t.Fatalf("readyz breaker = %q, want open", rr.Breaker)
	}

	// After the cooldown, the probe retrain (attempt 3, not injected)
	// succeeds and closes the breaker.
	clk.Advance(31 * time.Second)
	status, _, raw = doReq(t, http.MethodPost, ts.URL+"/v1/retrain", RetrainRequest{})
	if status != http.StatusOK {
		t.Fatalf("probe retrain = %d: %s", status, raw)
	}
	if st := s.def.breaker.State(); st != BreakerClosed {
		t.Fatalf("breaker = %v after probe success, want closed", st)
	}
}

// TestRetrainExemptFromRequestTimeout pins the deadline split: the
// read-path RequestTimeout must not cap /v1/retrain, whose only deadline
// is RetrainTimeout. If guard wrapped retrain too, any search longer
// than RequestTimeout would fail with DeadlineExceeded, count against
// the breaker and mark the service degraded — with a nanosecond timeout
// this retrain could never succeed.
func TestRetrainExemptFromRequestTimeout(t *testing.T) {
	s := newTestServer(t, func(c *Config) {
		c.RequestTimeout = time.Nanosecond
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	status, _, raw := doReq(t, http.MethodPost, ts.URL+"/v1/retrain", RetrainRequest{})
	if status != http.StatusOK {
		t.Fatalf("retrain under tiny RequestTimeout = %d: %s", status, raw)
	}
	if st := s.def.breaker.State(); st != BreakerClosed {
		t.Fatalf("breaker = %v after successful retrain, want closed", st)
	}

	// The read path, by contrast, is capped by the same timeout.
	status, _, raw = doReq(t, http.MethodPost, ts.URL+"/v1/ale", ALERequest{Name: "x0", Class: 1})
	wantError(t, status, raw, http.StatusGatewayTimeout, "deadline")
}

// TestCanceledRetrainProbeReleasesBreaker covers the probe-slot leak: a
// half-open probe whose client disconnects before the search finishes
// records no verdict, and without releasing the slot every later retrain
// would be shed with 503 until process restart.
func TestCanceledRetrainProbeReleasesBreaker(t *testing.T) {
	clk := newFakeClock()
	s := newTestServer(t, func(c *Config) {
		c.BreakerThreshold = 1
		c.BreakerCooldown = 10 * time.Second
		c.Fault = faultinject.New().WithRetrainFail(1)
		c.now = clk.Now
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Attempt 1 is injected to fail; threshold 1 opens the breaker.
	status, _, raw := doReq(t, http.MethodPost, ts.URL+"/v1/retrain", RetrainRequest{})
	wantError(t, status, raw, http.StatusInternalServerError, "retrain_failed")
	if st := s.def.breaker.State(); st != BreakerOpen {
		t.Fatalf("breaker = %v after failure, want open", st)
	}

	// Cooldown elapses; the next retrain is the half-open probe, but its
	// client has already gone away, so the attempt ends retrain_canceled
	// with no Success/Failure verdict.
	clk.Advance(11 * time.Second)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	body, err := json.Marshal(RetrainRequest{})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/retrain", bytes.NewReader(body)).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	wantError(t, rec.Code, rec.Body.Bytes(), http.StatusInternalServerError, "retrain_canceled")
	// The service is still degraded from attempt 1's failure; the canceled
	// attempt 2 must not have recorded a verdict of its own.
	if reason := s.def.degraded.Load(); reason == nil || !strings.Contains(*reason, "retrain 1 failed") {
		t.Fatalf("degraded reason = %v, want attempt 1's failure untouched", reason)
	}

	// The canceled probe must have released its slot: the next retrain is
	// admitted as a fresh probe, succeeds, and closes the breaker.
	status, _, raw = doReq(t, http.MethodPost, ts.URL+"/v1/retrain", RetrainRequest{})
	if status != http.StatusOK {
		t.Fatalf("retrain after canceled probe = %d: %s", status, raw)
	}
	if st := s.def.breaker.State(); st != BreakerClosed {
		t.Fatalf("breaker = %v after recovered probe, want closed", st)
	}
}

// TestNoTornSnapshotReads hammers /v1/predict while a writer flips the
// published snapshot between two different ensembles. Every response must
// be internally consistent: the proba it carries must exactly match the
// ensemble of the version it claims (float64 JSON round-trips are exact,
// so equality is byte-level meaningful).
func TestNoTornSnapshotReads(t *testing.T) {
	defer testutil.LeakCheck(t)()
	train, ensA, ensB := fixture(t)
	probe := [][]float64{{0.42, 0.3}, {0.58, 0.8}, {0.5, 0.5}}

	expect := func(e [2]*Snapshot, rows [][]float64) map[int64][][]float64 {
		out := map[int64][][]float64{}
		for _, snap := range e {
			k := snap.Ensemble.NumClasses
			proba := make([][]float64, len(rows))
			backing := make([]float64, len(rows)*k)
			for i := range proba {
				proba[i] = backing[i*k : (i+1)*k]
			}
			snap.Ensemble.PredictProbaBatchInto(rows, proba)
			out[snap.Version] = proba
		}
		return out
	}
	snapA := &Snapshot{Ensemble: ensA, Train: train, Version: 1, ValScore: ensA.ValScore}
	snapB := &Snapshot{Ensemble: ensB, Train: train, Version: 2, ValScore: ensB.ValScore}
	want := expect([2]*Snapshot{snapA, snapB}, probe)
	if same := func(a, b [][]float64) bool {
		for i := range a {
			for j := range a[i] {
				if a[i][j] != b[i][j] {
					return false
				}
			}
		}
		return true
	}(want[1], want[2]); same {
		t.Fatal("fixture ensembles predict identically; torn reads would be undetectable")
	}

	s := newTestServer(t, nil)
	s.def.snap.Publish(snapA)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	stop := make(chan struct{})
	var writerWG sync.WaitGroup
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				s.def.snap.Publish(snapB)
			} else {
				s.def.snap.Publish(snapA)
			}
		}
	}()

	var readerWG sync.WaitGroup
	errCh := make(chan string, 64)
	for w := 0; w < 4; w++ {
		readerWG.Add(1)
		go func() {
			defer readerWG.Done()
			for i := 0; i < 50; i++ {
				status, _, raw := doReq(t, http.MethodPost, ts.URL+"/v1/predict", PredictRequest{Rows: probe})
				if status != http.StatusOK {
					errCh <- string(raw)
					return
				}
				var pr PredictResponse
				if err := json.Unmarshal(raw, &pr); err != nil {
					errCh <- err.Error()
					return
				}
				exp, ok := want[pr.Version]
				if !ok {
					errCh <- "impossible version"
					return
				}
				for r := range exp {
					for c := range exp[r] {
						if pr.Proba[r][c] != exp[r][c] {
							errCh <- "torn read: proba does not match claimed version"
							return
						}
					}
				}
			}
		}()
	}
	readerWG.Wait()
	close(stop)
	writerWG.Wait()
	select {
	case msg := <-errCh:
		t.Fatal(msg)
	default:
	}
}

// TestGracefulShutdownDrains starts a real listener, parks one request in
// a slow handler, shuts the server down mid-request and checks the
// request still completes, new connections are refused, and no goroutines
// leak.
func TestGracefulShutdownDrains(t *testing.T) {
	defer testutil.LeakCheck(t)()
	s := newTestServer(t, func(c *Config) {
		c.Fault = faultinject.New().WithHTTPLatency(0, 300*time.Millisecond)
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(l) }()
	base := "http://" + l.Addr().String()

	cli := &http.Client{}
	defer cli.CloseIdleConnections()
	type reply struct {
		status int
		err    error
	}
	got := make(chan reply, 1)
	go func() {
		resp, err := cli.Post(base+"/v1/predict", "application/json",
			strings.NewReader(`{"rows":[[0.1,0.2]]}`))
		if err != nil {
			got <- reply{0, err}
			return
		}
		resp.Body.Close()
		got <- reply{resp.StatusCode, nil}
	}()

	time.Sleep(50 * time.Millisecond) // let the slow request enter the handler
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	r := <-got
	if r.err != nil || r.status != http.StatusOK {
		t.Fatalf("in-flight request during shutdown: status %d err %v", r.status, r.err)
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve returned %v after graceful shutdown", err)
	}
	// The listener is closed: new requests must fail to connect.
	if _, err := cli.Get(base + "/healthz"); err == nil {
		t.Fatal("server still accepting connections after shutdown")
	}
}
