package serve

import (
	"sync/atomic"

	"github.com/netml/alefb/internal/automl"
	"github.com/netml/alefb/internal/data"
)

// Snapshot is one immutable published state of the model service: the
// ensemble being served, the training data it was fitted on (the
// background data for ALE/feedback queries), and a monotonically
// increasing version. Snapshots are never mutated after publication —
// readers load the pointer once and use every field from that one load,
// so a concurrent retrain can never hand a request the ensemble of one
// version and the background data of another (no torn reads).
type Snapshot struct {
	// Ensemble is the model committee served by /v1/predict and
	// interpreted by /v1/ale and /v1/regions.
	Ensemble *automl.Ensemble
	// Train is the training set the ensemble was fitted on. It doubles as
	// the background dataset for interpretation queries and as the base
	// that /v1/retrain appends newly labelled rows to.
	Train *data.Dataset
	// Version counts publications, starting at 1 for the bootstrap model.
	Version int64
	// ValScore repeats the ensemble's holdout balanced accuracy.
	ValScore float64
}

// registry is the atomic snapshot store. Readers pay one atomic load;
// writers publish with one atomic store. The last-good contract of the
// serving layer rests on a single rule: only a fully constructed snapshot
// is ever stored, and a failed retrain stores nothing.
type registry struct {
	cur atomic.Pointer[Snapshot]
}

// Current returns the published snapshot, or nil before bootstrap.
func (g *registry) Current() *Snapshot { return g.cur.Load() }

// Publish installs next as the served snapshot and returns it.
func (g *registry) Publish(next *Snapshot) *Snapshot {
	g.cur.Store(next)
	return next
}

// NextVersion returns the version a new snapshot should carry.
func (g *registry) NextVersion() int64 {
	if cur := g.cur.Load(); cur != nil {
		return cur.Version + 1
	}
	return 1
}
