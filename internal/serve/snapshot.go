package serve

import (
	"sync/atomic"

	"github.com/netml/alefb/internal/automl"
	"github.com/netml/alefb/internal/data"
)

// Snapshot is one immutable published state of a served model: the
// ensemble being served, the training data it was fitted on (the
// background data for ALE/feedback queries), and a monotonically
// increasing version. Snapshots are never mutated after publication —
// readers load the pointer once and use every field from that one load,
// so a concurrent retrain can never hand a request the ensemble of one
// version and the background data of another (no torn reads). The batch
// scheduler leans on the same rule one level up: one coalesced batch
// loads the pointer once and serves every row in it from that single
// snapshot, so a swap mid-batch can never tear a batch across versions.
type Snapshot struct {
	// Ensemble is the model committee served by /v1/predict and
	// interpreted by /v1/ale and /v1/regions.
	Ensemble *automl.Ensemble
	// Train is the training set the ensemble was fitted on. It doubles as
	// the background dataset for interpretation queries and as the base
	// that /v1/retrain appends newly labelled rows to.
	Train *data.Dataset
	// Version counts publications, starting at 1 for the bootstrap model.
	Version int64
	// ValScore repeats the ensemble's holdout balanced accuracy.
	ValScore float64
	// FeedbackRows is how many rows of the model's feedback store are
	// already folded into Train. A drift retrain folds only the store
	// suffix past this mark, so rows are never trained on twice no matter
	// how retrains, restarts and replays interleave.
	FeedbackRows int64
}

// snapStore is the atomic snapshot store of one model. Readers pay one
// atomic load; writers publish with one atomic store. The last-good
// contract of the serving layer rests on a single rule: only a fully
// constructed snapshot is ever stored, and a failed retrain stores
// nothing.
type snapStore struct {
	cur atomic.Pointer[Snapshot]
}

// Current returns the published snapshot, or nil before bootstrap.
func (g *snapStore) Current() *Snapshot { return g.cur.Load() }

// Publish installs next as the served snapshot and returns it.
func (g *snapStore) Publish(next *Snapshot) *Snapshot {
	g.cur.Store(next)
	return next
}

// NextVersion returns the version a new snapshot should carry.
func (g *snapStore) NextVersion() int64 {
	if cur := g.cur.Load(); cur != nil {
		return cur.Version + 1
	}
	return 1
}
